// Tests for the LIF synthesizer and measurement harness.

#include <gtest/gtest.h>

#include <algorithm>

#include "data/datasets.h"
#include "lif/measure.h"
#include "lif/synthesizer.h"

namespace li::lif {
namespace {

TEST(MeasureTest, NsPerOpIsPositiveAndSane) {
  std::vector<uint64_t> queries(1000, 7);
  volatile uint64_t sink = 0;
  const double ns = MeasureNsPerOp(queries, 3, [&](uint64_t q) {
    sink = sink + q;
    return q;
  });
  EXPECT_GT(ns, 0.0);
  EXPECT_LT(ns, 10'000.0);  // a no-op lambda is not microseconds
}

TEST(TableTest, FactorFormatting) {
  EXPECT_EQ(Table::WithFactor(12.5, 2.0), "12.50 (2.00x)");
  EXPECT_EQ(Table::WithFactor(1.0, 0.5, 1), "1.0 (0.50x)");
  EXPECT_EQ(Table::WithPercent(134, 50.8), "134 (50.8%)");
}

TEST(BenchScaleTest, DefaultAndOverride) {
  unsetenv("REPRO_SCALE_M");
  EXPECT_EQ(BenchScaleKeys(2), 2'000'000u);
  setenv("REPRO_SCALE_M", "5", 1);
  EXPECT_EQ(BenchScaleKeys(2), 5'000'000u);
  unsetenv("REPRO_SCALE_M");
}

TEST(SynthesizerTest, FindsWorkingIndexAndReportsAllCandidates) {
  const auto keys = data::GenLognormal(50'000, 61);
  SynthesisSpec spec;
  spec.stage2_sizes = {500, 2000};
  spec.nn_hidden = {{8}};
  spec.nn_epochs = 6;
  spec.eval_queries = 2000;
  SynthesizedIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  // linear + multivariate + 1 NN config, per stage2 size.
  EXPECT_EQ(index.reports().size(), 2u * 3u);
  EXPECT_FALSE(index.description().empty());
  // The synthesized index must be correct.
  for (size_t i = 0; i < keys.size(); i += 37) {
    EXPECT_EQ(index.LowerBound(keys[i]), i);
  }
}

TEST(SynthesizerTest, SizeBudgetIsRespected) {
  const auto keys = data::GenLognormal(50'000, 62);
  SynthesisSpec spec;
  spec.stage2_sizes = {100, 10'000};
  spec.nn_hidden = {};
  spec.try_multivariate_top = false;
  spec.eval_queries = 1000;
  spec.size_budget_bytes = 100 * 32 + 1024;  // only the 100-leaf config fits
  SynthesizedIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  EXPECT_LE(index.SizeBytes(), spec.size_budget_bytes);
}

TEST(SynthesizerTest, ImpossibleBudgetFails) {
  const auto keys = data::GenLognormal(10'000, 63);
  SynthesisSpec spec;
  spec.stage2_sizes = {1000};
  spec.nn_hidden = {};
  spec.try_multivariate_top = false;
  spec.eval_queries = 500;
  spec.size_budget_bytes = 16;  // nothing fits
  SynthesizedIndex index;
  EXPECT_FALSE(index.Synthesize(keys, spec).ok());
}

TEST(SynthesizerTest, EmptyKeysRejected) {
  SynthesizedIndex index;
  EXPECT_FALSE(index.Synthesize({}, SynthesisSpec{}).ok());
}

}  // namespace
}  // namespace li::lif
