// Tests for the LIF synthesizer (all three index classes) and the
// measurement harness.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/datasets.h"
#include "data/strings.h"
#include "lif/measure.h"
#include "lif/synthesizer.h"
#include "rangefilter/workload.h"

namespace li::lif {
namespace {

TEST(MeasureTest, NsPerOpIsPositiveAndSane) {
  std::vector<uint64_t> queries(1000, 7);
  volatile uint64_t sink = 0;
  const double ns = MeasureNsPerOp(queries, 3, [&](uint64_t q) {
    sink = sink + q;
    return q;
  });
  EXPECT_GT(ns, 0.0);
  EXPECT_LT(ns, 10'000.0);  // a no-op lambda is not microseconds
}

TEST(TableTest, FactorFormatting) {
  EXPECT_EQ(Table::WithFactor(12.5, 2.0), "12.50 (2.00x)");
  EXPECT_EQ(Table::WithFactor(1.0, 0.5, 1), "1.0 (0.50x)");
  EXPECT_EQ(Table::WithPercent(134, 50.8), "134 (50.8%)");
}

TEST(BenchScaleTest, DefaultAndOverride) {
  unsetenv("REPRO_SCALE_M");
  EXPECT_EQ(BenchScaleKeys(2), 2'000'000u);
  setenv("REPRO_SCALE_M", "5", 1);
  EXPECT_EQ(BenchScaleKeys(2), 5'000'000u);
  unsetenv("REPRO_SCALE_M");
}

TEST(SynthesizerTest, FindsWorkingIndexAndReportsAllCandidates) {
  const auto keys = data::GenLognormal(50'000, 61);
  SynthesisSpec spec;
  spec.stage2_sizes = {500, 2000};
  spec.nn_hidden = {{8}};
  spec.nn_epochs = 6;
  spec.eval_queries = 2000;
  SynthesizedIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  // linear + multivariate + 1 NN config, per stage2 size.
  EXPECT_EQ(index.reports().size(), 2u * 3u);
  EXPECT_FALSE(index.description().empty());
  // The synthesized index must be correct.
  for (size_t i = 0; i < keys.size(); i += 37) {
    EXPECT_EQ(index.LowerBound(keys[i]), i);
  }
}

TEST(SynthesizerTest, SizeBudgetIsRespected) {
  const auto keys = data::GenLognormal(50'000, 62);
  SynthesisSpec spec;
  spec.stage2_sizes = {100, 10'000};
  spec.nn_hidden = {};
  spec.try_multivariate_top = false;
  spec.eval_queries = 1000;
  spec.size_budget_bytes = 100 * 32 + 1024;  // only the 100-leaf config fits
  SynthesizedIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  EXPECT_LE(index.SizeBytes(), spec.size_budget_bytes);
}

TEST(SynthesizerTest, ImpossibleBudgetFails) {
  const auto keys = data::GenLognormal(10'000, 63);
  SynthesisSpec spec;
  spec.stage2_sizes = {1000};
  spec.nn_hidden = {};
  spec.try_multivariate_top = false;
  spec.eval_queries = 500;
  spec.size_budget_bytes = 16;  // nothing fits
  SynthesizedIndex index;
  EXPECT_FALSE(index.Synthesize(keys, spec).ok());
}

TEST(SynthesizerTest, EmptyKeysRejected) {
  SynthesizedIndex index;
  EXPECT_FALSE(index.Synthesize({}, SynthesisSpec{}).ok());
}

TEST(WritableSynthesizerTest, QualifiesDeltaWrappedCandidatesOnMixedLoad) {
  const auto keys = data::GenLognormal(40'000, 64);
  WritableSynthesisSpec spec;
  spec.stage2_sizes = {500, 2000};
  spec.btree_pages = {128};
  spec.insert_ratio = 0.10;
  spec.eval_ops = 8'000;
  SynthesizedWritableIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  // 2 delta-RMI configs + 1 delta-BTree config, all reported.
  EXPECT_EQ(index.reports().size(), 3u);
  EXPECT_FALSE(index.description().empty());
  for (const auto& r : index.reports()) {
    EXPECT_GT(r.mixed_ns, 0.0) << r.description;
    EXPECT_GT(r.lookup_ns, 0.0) << r.description;
  }
  // The winner is rebuilt over the FULL key set: ranks must match
  // std::lower_bound over the original keys, and writes must work.
  for (size_t i = 0; i < keys.size(); i += 41) {
    ASSERT_EQ(index.Lookup(keys[i]), i);
    ASSERT_TRUE(index.Contains(keys[i]));
  }
  const uint64_t fresh = keys.back() + 17;
  EXPECT_TRUE(index.Insert(fresh));
  EXPECT_TRUE(index.Contains(fresh));
  EXPECT_EQ(index.size(), keys.size() + 1);
  EXPECT_TRUE(index.Merge().ok());
  EXPECT_TRUE(index.Contains(fresh));
  EXPECT_EQ(index.Scan(fresh, 5), (std::vector<uint64_t>{fresh}));
  EXPECT_GT(index.Stats().merges, 0u);
}

TEST(WritableSynthesizerTest, ConcurrentAxisQualifiesUnderThreadedStream) {
  const auto keys = data::GenLognormal(30'000, 66);
  WritableSynthesisSpec spec;
  spec.stage2_sizes = {500};
  spec.btree_pages = {};
  spec.try_delta_btree = false;
  spec.try_concurrent = true;
  spec.try_sharded = true;
  spec.shard_counts = {2, 4};
  spec.eval_threads = 2;
  spec.insert_ratio = 0.10;
  spec.eval_ops = 6'000;
  spec.log_cap = 256;
  SynthesizedWritableIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  // 1 delta-RMI + 1 concurrent + 2 sharded configs, all reported.
  ASSERT_EQ(index.reports().size(), 4u);
  size_t threaded = 0;
  for (const auto& r : index.reports()) {
    EXPECT_GT(r.mixed_ns, 0.0) << r.description;
    if (r.threads > 1) ++threaded;
  }
  EXPECT_EQ(threaded, 3u) << "concurrent candidates carry their thread count";
  // Whatever won is a fully functional writable index over the full keys.
  for (size_t i = 0; i < keys.size(); i += 97) {
    ASSERT_EQ(index.Lookup(keys[i]), i);
  }
  const uint64_t fresh = keys.back() + 23;
  EXPECT_TRUE(index.Insert(fresh));
  EXPECT_TRUE(index.Contains(fresh));
  EXPECT_TRUE(index.Merge().ok());
  EXPECT_TRUE(index.Contains(fresh));
}

TEST(WritableSynthesizerTest, RebalanceAxisQualifiesUnderSkewedStream) {
  const auto keys = data::GenLognormal(30'000, 67);
  WritableSynthesisSpec spec;
  spec.stage2_sizes = {500};
  spec.btree_pages = {};
  spec.try_delta_rmi = false;
  spec.try_delta_btree = false;
  spec.try_sharded = true;
  spec.shard_counts = {4};
  spec.shard_imbalance_factors = {0.0, 2.0};  // fixed vs adaptive boundaries
  spec.insert_skew.kind = InsertSkew::Kind::kZipf;
  spec.insert_skew.zipf_s = 1.2;
  spec.eval_threads = 2;
  spec.insert_ratio = 0.5;
  spec.eval_ops = 6'000;
  spec.log_cap = 256;
  SynthesizedWritableIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  // One sharded candidate per imbalance factor, both reported.
  ASSERT_EQ(index.reports().size(), 2u);
  EXPECT_EQ(index.reports()[0].description.find("rebal@"), std::string::npos);
  EXPECT_NE(index.reports()[1].description.find("rebal@"), std::string::npos);
  for (const auto& r : index.reports()) {
    EXPECT_GT(r.mixed_ns, 0.0) << r.description;
    EXPECT_EQ(r.threads, 2u) << r.description;
  }
  // The winner rebuilt over the full key set keeps exact semantics.
  for (size_t i = 0; i < keys.size(); i += 97) {
    ASSERT_EQ(index.Lookup(keys[i]), i);
  }
  const uint64_t fresh = keys.back() + 29;
  EXPECT_TRUE(index.Insert(fresh));
  EXPECT_TRUE(index.Contains(fresh));
  EXPECT_TRUE(index.Merge().ok());
  EXPECT_TRUE(index.Contains(fresh));
}

TEST(WritableSynthesizerTest, BadInputsRejected) {
  SynthesizedWritableIndex index;
  EXPECT_FALSE(index.Synthesize({}, WritableSynthesisSpec{}).ok());
  const auto keys = data::GenLognormal(5'000, 65);
  WritableSynthesisSpec spec;
  spec.insert_ratio = 1.5;
  EXPECT_FALSE(index.Synthesize(keys, spec).ok());
  spec.insert_ratio = 0.1;
  spec.size_budget_bytes = 16;  // nothing fits
  EXPECT_FALSE(index.Synthesize(keys, spec).ok());
}

TEST(PointSynthesizerTest, EnumeratesAllFamiliesAndFindsCorrectIndex) {
  const auto keys = data::GenMaps(40'000, 71);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], i, 0});
  }
  PointSynthesisSpec spec;
  spec.slot_percents = {75, 100};
  spec.cdf_leaf_models = 2000;
  spec.eval_queries = 2000;
  SynthesizedPointIndex index;
  ASSERT_TRUE(index.Synthesize(records, spec).ok());
  // 2 hash families x (2 chained slot budgets + inplace) + 2 cuckoo modes.
  EXPECT_EQ(index.reports().size(), 2u * 3u + 2u);
  EXPECT_FALSE(index.description().empty());
  // The synthesized index must be correct for hits and misses.
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  for (size_t i = 0; i < keys.size(); i += 37) {
    const hash::Record* r = index.Find(keys[i]);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->key, keys[i]);
  }
  uint64_t absent = 1;
  while (keyset.count(absent)) ++absent;
  EXPECT_EQ(index.Find(absent), nullptr);
  // Batch probes route through the erased winner too.
  std::vector<const hash::Record*> out(keys.size());
  index.FindBatch(keys, out);
  for (size_t i = 0; i < keys.size(); i += 53) {
    ASSERT_EQ(out[i], index.Find(keys[i]));
  }
  EXPECT_GT(index.SizeBytes(), 0u);
  EXPECT_GT(index.Stats().num_slots, 0u);
}

TEST(PointSynthesizerTest, BudgetExcludesOversizedCandidates) {
  const auto keys = data::GenLognormal(20'000, 72);
  std::vector<hash::Record> records;
  for (size_t i = 0; i < keys.size(); ++i) records.push_back({keys[i], i, 0});
  PointSynthesisSpec spec;
  spec.slot_percents = {100, 125};
  spec.try_learned_hash = false;
  spec.try_cuckoo = false;
  spec.eval_queries = 1000;
  // Fits the 100% chained map and the inplace map, not the 125% table.
  spec.size_budget_bytes = (keys.size() + keys.size() / 20) * 32;
  SynthesizedPointIndex index;
  ASSERT_TRUE(index.Synthesize(records, spec).ok());
  EXPECT_LE(index.SizeBytes(), spec.size_budget_bytes);
  bool saw_over_budget = false;
  for (const auto& r : index.reports()) saw_over_budget |= !r.within_budget;
  EXPECT_TRUE(saw_over_budget);
}

TEST(PointSynthesizerTest, EmptyRecordsRejected) {
  SynthesizedPointIndex index;
  EXPECT_FALSE(index.Synthesize({}, PointSynthesisSpec{}).ok());
}

TEST(PointSynthesizerTest, ConcurrentAxisQualifiesWrappersAtFourThreads) {
  // The concurrent axis wraps the chained and cuckoo families in
  // ConcurrentPointIndex and qualifies them under a 4-thread mixed
  // stream. MeasureConcurrentPointCandidate finishes with an exact-map
  // oracle pass over the quiesced index and returns an error Status on
  // any disagreement, so Synthesize().ok() here *is* the oracle gate.
  const auto keys = data::GenMaps(30'000, 74);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], i, 0});
  }
  PointSynthesisSpec spec;
  spec.slot_percents = {100};
  spec.try_learned_hash = false;
  spec.try_inplace = false;
  spec.try_concurrent = true;
  spec.eval_threads = 4;
  spec.eval_queries = 2000;
  spec.eval_ops = 8'000;
  spec.log_cap = 256;
  spec.rebuild_entries = 512;
  SynthesizedPointIndex index;
  ASSERT_TRUE(index.Synthesize(records, spec).ok());
  size_t concurrent_reports = 0;
  for (const auto& r : index.reports()) {
    if (r.description.rfind("concurrent-point", 0) == 0) {
      ++concurrent_reports;
      EXPECT_EQ(r.threads, 4u) << r.description;
      EXPECT_GT(r.mixed_ns, 0.0) << r.description;
      EXPECT_GT(r.size_bytes, 0u) << r.description;
    } else {
      EXPECT_EQ(r.threads, 1u) << r.description;
    }
  }
  EXPECT_EQ(concurrent_reports, 2u) << "chained + cuckoo wrappers";
  // Report-only: the erased winner still serves single-threaded
  // pointer-returning probes from the static grid.
  for (size_t i = 0; i < keys.size(); i += 37) {
    const hash::Record* r = index.Find(keys[i]);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->key, keys[i]);
  }
}

class ExistenceSynthesizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = data::GenUrls(8000, 12'000, 73);
    const size_t third = corpus_.random_negatives.size() / 3;
    train_neg_.assign(corpus_.random_negatives.begin(),
                      corpus_.random_negatives.begin() + third);
    valid_neg_.assign(corpus_.random_negatives.begin() + third,
                      corpus_.random_negatives.begin() + 2 * third);
    test_neg_.assign(corpus_.random_negatives.begin() + 2 * third,
                     corpus_.random_negatives.end());
  }

  data::UrlCorpus corpus_;
  std::vector<std::string> train_neg_, valid_neg_, test_neg_;
};

TEST_F(ExistenceSynthesizerTest, SweepsConstructionsAndMeetsFprTarget) {
  ExistenceSynthesisSpec spec;
  spec.target_fpr = 0.01;
  spec.ngram_buckets = {1024, 4096};
  SynthesizedExistenceIndex index;
  ASSERT_TRUE(index.Synthesize(corpus_.keys, train_neg_, valid_neg_,
                               test_neg_, spec)
                  .ok());
  // plain + per-capacity (learned + 2 bitmap sizes).
  EXPECT_EQ(index.reports().size(), 1u + 2u * 3u);
  EXPECT_FALSE(index.description().empty());
  // Zero false negatives — the winner must keep the §5 invariant.
  for (const auto& k : corpus_.keys) {
    ASSERT_TRUE(index.MightContain(k)) << k;
  }
  EXPECT_GT(index.SizeBytes(), 0u);
  // The winner is the smallest candidate qualifying on the validation
  // split (the same gate the synthesizer applies; the eval-split r.fpr is
  // reporting only).
  EXPECT_LE(index.MeasuredFpr(valid_neg_), spec.target_fpr * spec.fpr_slack);
  for (const auto& r : index.reports()) {
    if (r.within_budget && r.valid_fpr <= spec.target_fpr * spec.fpr_slack) {
      EXPECT_LE(index.SizeBytes(), r.size_bytes) << r.description;
    }
  }
}

TEST_F(ExistenceSynthesizerTest, LearnedCandidateBeatsPlainBloomOnUrls) {
  // The §5.2 headline must fall out of the synthesizer: on a learnable
  // corpus some learned candidate is smaller than the plain filter.
  ExistenceSynthesisSpec spec;
  spec.target_fpr = 0.01;
  SynthesizedExistenceIndex index;
  ASSERT_TRUE(index.Synthesize(corpus_.keys, train_neg_, valid_neg_,
                               test_neg_, spec)
                  .ok());
  size_t plain_bytes = 0;
  for (const auto& r : index.reports()) {
    if (r.description == "plain bloom") plain_bytes = r.size_bytes;
  }
  ASSERT_GT(plain_bytes, 0u);
  EXPECT_LT(index.SizeBytes(), plain_bytes);
}

TEST_F(ExistenceSynthesizerTest, ConcurrentAxisQualifiesFiltersAtFourThreads) {
  // Concurrent axis: plain and learned constructions wrapped in
  // RebuildableExistence, driven by 4 threads of mixed insert/probe
  // traffic. MeasureConcurrentExistenceCandidate verifies zero false
  // negatives over corpus + executed inserts once quiesced and fails
  // Synthesize on a violation, so a passing status carries the §5
  // guarantee extended to online keys.
  ExistenceSynthesisSpec spec;
  spec.target_fpr = 0.01;
  spec.ngram_buckets = {1024};
  spec.try_model_hash = false;
  spec.try_concurrent = true;
  spec.eval_threads = 4;
  spec.eval_ops = 6'000;
  spec.side_log_cap = 256;
  spec.rebuild_staleness = 0.02;
  SynthesizedExistenceIndex index;
  ASSERT_TRUE(index.Synthesize(corpus_.keys, train_neg_, valid_neg_,
                               test_neg_, spec)
                  .ok());
  size_t concurrent_reports = 0;
  for (const auto& r : index.reports()) {
    if (r.description.rfind("concurrent-existence", 0) == 0) {
      ++concurrent_reports;
      EXPECT_EQ(r.threads, 4u) << r.description;
      EXPECT_GT(r.mixed_ns, 0.0) << r.description;
      if (r.description.find("plain bloom") != std::string::npos) {
        // Rebuilds re-target the plain filter at 1%; the measured FPR
        // over the held-out negatives must stay near that calibration.
        EXPECT_LT(r.fpr, 0.05) << r.description;
      }
    }
  }
  EXPECT_GE(concurrent_reports, 2u) << "plain bloom + learned wrappers";
  // Report-only: the static winner keeps the zero-false-negative
  // invariant untouched by the concurrent sweep.
  for (const auto& k : corpus_.keys) {
    ASSERT_TRUE(index.MightContain(k)) << k;
  }
}

TEST_F(ExistenceSynthesizerTest, BadInputsRejected) {
  SynthesizedExistenceIndex index;
  ExistenceSynthesisSpec spec;
  EXPECT_FALSE(
      index.Synthesize({}, train_neg_, valid_neg_, test_neg_, spec).ok());
  EXPECT_FALSE(
      index.Synthesize(corpus_.keys, train_neg_, {}, test_neg_, spec).ok());
  spec.target_fpr = 0.0;
  EXPECT_FALSE(
      index.Synthesize(corpus_.keys, train_neg_, valid_neg_, test_neg_, spec)
          .ok());
}

TEST_F(ExistenceSynthesizerTest, RangeAxisSweepsFiltersAndKeepsZeroFn) {
  // The range-query axis: sweep both src/rangefilter/ constructions over
  // an adversarially gapped integer key set. The winner must be the
  // smallest qualifying candidate, every report row must be populated,
  // and the no-false-negative contract must hold through the erased
  // handle (the synthesizer's internal witness oracle already failed the
  // sweep if any candidate dropped a range — this re-checks the winner
  // independently).
  const std::vector<uint64_t> keys =
      rangefilter::GenAdversarialGapKeys(30'000, 81);
  RangeFilterSynthesisSpec spec;
  spec.bits_per_key = {8.0, 16.0, 32.0};
  spec.keys_per_segment = {256};
  SynthesizedExistenceIndex index;
  ASSERT_TRUE(index.SynthesizeRange(keys, spec).ok());

  // learned (1 kps) + interval, per budget.
  EXPECT_EQ(index.range_reports().size(), 2u * 3u);
  EXPECT_FALSE(index.range_description().empty());
  EXPECT_GT(index.RangeSizeBytes(), 0u);
  for (const auto& r : index.range_reports()) {
    EXPECT_GT(r.size_bytes, 0u) << r.description;
    EXPECT_GE(r.fpr, 0.0) << r.description;
    if (r.within_budget && r.valid_fpr <= spec.target_range_fpr * spec.fpr_slack) {
      EXPECT_LE(index.RangeSizeBytes(), r.size_bytes) << r.description;
    }
  }
  // Zero false negatives through the winner: witness ranges around
  // built keys must always answer true.
  for (const index::RangeQuery& w :
       rangefilter::GenWitnessRanges(keys, 82, 5'000)) {
    ASSERT_TRUE(index.MightContainRange(w.lo, w.hi))
        << "[" << w.lo << ", " << w.hi << ")";
  }
  // The winner qualifies on its own generated validation mix; a fresh
  // empty-query set from a different seed must measure in the same
  // regime (the slack absorbs the split wobble).
  const auto empties = rangefilter::GenEmptyRanges(keys, 83);
  EXPECT_LE(index.MeasuredRangeFpr(empties),
            spec.target_range_fpr * spec.fpr_slack * 2.0);

  // The point sweep is untouched by the range sweep and vice versa.
  EXPECT_TRUE(index.reports().empty());
}

TEST_F(ExistenceSynthesizerTest, RangeAxisRejectsBadInputs) {
  SynthesizedExistenceIndex index;
  RangeFilterSynthesisSpec spec;
  EXPECT_FALSE(index.SynthesizeRange({}, spec).ok());
  spec.target_range_fpr = 0.0;
  const std::vector<uint64_t> keys = rangefilter::GenUniformKeys(1'000, 84);
  EXPECT_FALSE(index.SynthesizeRange(keys, spec).ok());
  // An unreachable FPR target under an impossible budget reports
  // NotFound, leaving the handle empty (= the empty set).
  RangeFilterSynthesisSpec tight;
  tight.size_budget_bytes = 1;
  EXPECT_FALSE(index.SynthesizeRange(keys, tight).ok());
  EXPECT_FALSE(index.MightContainRange(0, ~uint64_t{0}));
}

}  // namespace
}  // namespace li::lif
