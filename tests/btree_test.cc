// Tests for every B-Tree-family baseline: read-only B+-Tree, FAST-style
// tree, lookup table, interpolation B-Tree, string B-Tree and the dynamic
// B+-Tree map. The master property: LowerBound == std::lower_bound for all
// query classes, across datasets and page sizes.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "btree/dynamic_btree.h"
#include "btree/fast_tree.h"
#include "btree/interpolation_btree.h"
#include "btree/lookup_table.h"
#include "btree/readonly_btree.h"
#include "btree/string_btree.h"
#include "common/random.h"
#include "data/datasets.h"
#include "data/strings.h"

namespace li::btree {
namespace {

size_t StdLowerBound(const std::vector<uint64_t>& v, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

/// Queries covering present keys, neighbours, range extremes.
std::vector<uint64_t> MixedQueries(const std::vector<uint64_t>& keys,
                                   size_t count, uint64_t seed) {
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> qs;
  qs.reserve(count + 4);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    switch (rng.NextBounded(4)) {
      case 0: qs.push_back(k); break;
      case 1: qs.push_back(k + 1); break;
      case 2: qs.push_back(k == 0 ? 0 : k - 1); break;
      default: qs.push_back(rng.NextBounded(keys.back() + 1000)); break;
    }
  }
  qs.push_back(0);
  qs.push_back(keys.front());
  qs.push_back(keys.back());
  qs.push_back(keys.back() + 12345);
  return qs;
}

struct BTreeCase {
  data::DatasetKind kind;
  size_t page;
};

class ReadOnlyBTreeTest : public ::testing::TestWithParam<BTreeCase> {};

TEST_P(ReadOnlyBTreeTest, LowerBoundMatchesStd) {
  const auto keys = data::Generate(GetParam().kind, 20'000, 77);
  ReadOnlyBTree tree;
  ASSERT_TRUE(tree.Build(keys, GetParam().page).ok());
  for (const uint64_t q : MixedQueries(keys, 20'000, 5)) {
    ASSERT_EQ(tree.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReadOnlyBTreeTest,
    ::testing::Values(BTreeCase{data::DatasetKind::kMaps, 32},
                      BTreeCase{data::DatasetKind::kMaps, 128},
                      BTreeCase{data::DatasetKind::kWeblog, 64},
                      BTreeCase{data::DatasetKind::kWeblog, 512},
                      BTreeCase{data::DatasetKind::kLognormal, 128},
                      BTreeCase{data::DatasetKind::kLognormal, 256}));

TEST(ReadOnlyBTreeTest, SizeShrinksWithPageSize) {
  const auto keys = data::GenUniform(100'000, 1);
  ReadOnlyBTree small, large;
  ASSERT_TRUE(small.Build(keys, 32).ok());
  ASSERT_TRUE(large.Build(keys, 256).ok());
  EXPECT_GT(small.SizeBytes(), large.SizeBytes());
  // Roughly n/page * 8 bytes for the leaf-most level.
  EXPECT_NEAR(static_cast<double>(large.SizeBytes()),
              100'000.0 / 256 * 8, 100'000.0 / 256 * 8 * 0.2);
}

TEST(ReadOnlyBTreeTest, RejectsBadInput) {
  std::vector<uint64_t> unsorted = {5, 3, 1};
  ReadOnlyBTree tree;
  EXPECT_FALSE(tree.Build(unsorted, 32).ok());
  std::vector<uint64_t> sorted = {1, 2, 3};
  EXPECT_FALSE(tree.Build(sorted, 1).ok());
}

TEST(ReadOnlyBTreeTest, EmptyAndTiny) {
  ReadOnlyBTree tree;
  ASSERT_TRUE(tree.Build({}, 32).ok());
  EXPECT_EQ(tree.LowerBound(7), 0u);
  std::vector<uint64_t> one = {10};
  ASSERT_TRUE(tree.Build(one, 32).ok());
  EXPECT_EQ(tree.LowerBound(9), 0u);
  EXPECT_EQ(tree.LowerBound(10), 0u);
  EXPECT_EQ(tree.LowerBound(11), 1u);
}

TEST(ReadOnlyBTreeTest, FindPageIsConsistentWithSearch) {
  const auto keys = data::GenUniform(10'000, 3);
  ReadOnlyBTree tree;
  ASSERT_TRUE(tree.Build(keys, 64).ok());
  Xorshift128Plus rng(4);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t q = keys[rng.NextBounded(keys.size())];
    const size_t page = tree.FindPage(q);
    const size_t pos = tree.SearchInPage(page, q);
    EXPECT_EQ(pos, StdLowerBound(keys, q));
    EXPECT_EQ(pos / 64, page);  // present keys are inside their page
  }
}

class FastTreeTest : public ::testing::TestWithParam<data::DatasetKind> {};

TEST_P(FastTreeTest, LowerBoundMatchesStd) {
  const auto keys = data::Generate(GetParam(), 20'000, 42);
  FastTree tree;
  ASSERT_TRUE(tree.Build(keys).ok());
  for (const uint64_t q : MixedQueries(keys, 20'000, 6)) {
    if (q == UINT64_MAX) continue;  // sentinel-reserved
    ASSERT_EQ(tree.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastTreeTest,
                         ::testing::Values(data::DatasetKind::kMaps,
                                           data::DatasetKind::kWeblog,
                                           data::DatasetKind::kLognormal));

TEST(FastTreeTest, PowerOfTwoBlowUp) {
  const auto keys = data::GenUniform(100'000, 9);
  FastTree tree;
  ASSERT_TRUE(tree.Build(keys).ok());
  EXPECT_GE(tree.SizeBytes(), tree.UsefulBytes());
  // Allocation is a sum of powers of two.
  EXPECT_LE(tree.SizeBytes(), 4 * tree.UsefulBytes());
}

class LookupTableTest : public ::testing::TestWithParam<data::DatasetKind> {};

TEST_P(LookupTableTest, LowerBoundMatchesStd) {
  const auto keys = data::Generate(GetParam(), 20'000, 43);
  LookupTable table;
  ASSERT_TRUE(table.Build(keys).ok());
  for (const uint64_t q : MixedQueries(keys, 20'000, 7)) {
    ASSERT_EQ(table.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LookupTableTest,
                         ::testing::Values(data::DatasetKind::kMaps,
                                           data::DatasetKind::kWeblog,
                                           data::DatasetKind::kLognormal));

TEST(LookupTableTest, SizeIsTwoSparseLevels) {
  const auto keys = data::GenUniform(64 * 64 * 10, 3);
  LookupTable table;
  ASSERT_TRUE(table.Build(keys).ok());
  // second: n/64 entries (plus padding), top: n/64/64.
  const size_t expect = (keys.size() / 64 + keys.size() / 64 / 64 + 64) * 8;
  EXPECT_NEAR(static_cast<double>(table.SizeBytes()),
              static_cast<double>(expect), 64.0 * 8);
}

class InterpolationBTreeTest
    : public ::testing::TestWithParam<data::DatasetKind> {};

TEST_P(InterpolationBTreeTest, LowerBoundMatchesStd) {
  const auto keys = data::Generate(GetParam(), 20'000, 44);
  InterpolationBTree tree;
  ASSERT_TRUE(tree.Build(keys, 16 * 1024).ok());
  for (const uint64_t q : MixedQueries(keys, 20'000, 8)) {
    ASSERT_EQ(tree.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InterpolationBTreeTest,
                         ::testing::Values(data::DatasetKind::kMaps,
                                           data::DatasetKind::kWeblog,
                                           data::DatasetKind::kLognormal));

TEST(InterpolationBTreeTest, RespectsSizeBudget) {
  const auto keys = data::GenLognormal(200'000, 5);
  for (const size_t budget : {4096u, 65536u, 1u << 20}) {
    InterpolationBTree tree;
    ASSERT_TRUE(tree.Build(keys, budget).ok());
    EXPECT_LE(tree.SizeBytes(), budget + budget / 8) << budget;
  }
}

TEST(StringBTreeTest, LowerBoundMatchesStd) {
  const auto ids = data::GenDocIds(20'000, 11);
  StringBTree tree;
  ASSERT_TRUE(tree.Build(ids, 64).ok());
  Xorshift128Plus rng(12);
  for (int i = 0; i < 10'000; ++i) {
    std::string q = ids[rng.NextBounded(ids.size())];
    if (rng.NextBounded(2)) q.back() = static_cast<char>(q.back() + 1);
    const size_t expect = static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), q) - ids.begin());
    ASSERT_EQ(tree.LowerBound(q), expect) << q;
  }
  EXPECT_EQ(tree.LowerBound(""), 0u);
  EXPECT_EQ(tree.LowerBound("zzzz"), ids.size());
}

TEST(StringBTreeTest, SizeScalesInverselyWithPage) {
  const auto ids = data::GenDocIds(50'000, 11);
  StringBTree small, large;
  ASSERT_TRUE(small.Build(ids, 32).ok());
  ASSERT_TRUE(large.Build(ids, 256).ok());
  EXPECT_GT(small.SizeBytes(), 4 * large.SizeBytes());
}

TEST(BTreeMapTest, InsertFindRoundTrip) {
  BTreeMap map;
  Xorshift128Plus rng(1);
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 50'000; ++i) {
    const uint64_t k = rng.NextBounded(1'000'000);
    ref[k] = i;
    map.Insert(k, i);
  }
  EXPECT_EQ(map.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto found = map.Find(k);
    ASSERT_TRUE(found.has_value()) << k;
    EXPECT_EQ(*found, v);
  }
  EXPECT_FALSE(map.Find(2'000'000).has_value());
}

TEST(BTreeMapTest, IterationIsSortedAndComplete) {
  BTreeMap map;
  Xorshift128Plus rng(2);
  std::map<uint64_t, uint64_t> ref;
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t k = rng.Next();
    ref[k] = i;
    map.Insert(k, i);
  }
  auto it = map.Begin();
  auto rit = ref.begin();
  size_t n = 0;
  while (it.Valid()) {
    ASSERT_NE(rit, ref.end());
    EXPECT_EQ(it.key(), rit->first);
    EXPECT_EQ(it.value(), rit->second);
    it.Next();
    ++rit;
    ++n;
  }
  EXPECT_EQ(n, ref.size());
}

TEST(BTreeMapTest, LowerBoundSemantics) {
  BTreeMap map;
  for (uint64_t k = 0; k < 1000; ++k) map.Insert(k * 10, k);
  auto it = map.LowerBound(55);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 60u);
  it = map.LowerBound(60);
  EXPECT_EQ(it.key(), 60u);
  it = map.LowerBound(99'999);
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeMapTest, OverwriteKeepsSize) {
  BTreeMap map;
  map.Insert(7, 1);
  map.Insert(7, 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.Find(7), 2u);
}

TEST(BTreeMapTest, SequentialInsertHeightLogarithmic) {
  BTreeMap map;
  for (uint64_t k = 0; k < 100'000; ++k) map.Insert(k, k);
  EXPECT_EQ(map.size(), 100'000u);
  EXPECT_LE(map.height(), 5u);
  for (uint64_t k = 0; k < 100'000; k += 997) {
    ASSERT_TRUE(map.Find(k).has_value());
  }
}

}  // namespace
}  // namespace li::btree
