// Conformance suite for the library-wide ExistenceIndex contract: every
// filter — standard Bloom, learned Bloom (classifier + overflow, §5.1.1),
// model-hash sandwich (§5.1.2) — is (a) statically asserted to satisfy
// the index::ExistenceIndex concept and (b) driven over the same URL
// corpus through identical dynamic checks: zero false negatives for every
// inserted key, MeasuredFpr consistent with a manual probe count and
// bounded for a calibrated filter, and the type-erased AnyExistenceIndex
// answering exactly like the concrete filter it wraps.
//
// The same CheckContract core drives concurrent::RebuildableExistence —
// the insertable wrapper must pass the read-only matrix verbatim, keep
// inserted keys visible through background filter rebuilds (the
// no-false-negative invariant extends to the side set), and answer
// identically through the AnyConcurrentExistenceIndex erasure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "bloom/model_hash_bloom.h"
#include "classifier/ngram_logistic.h"
#include "concurrent/rebuildable_existence.h"
#include "data/strings.h"
#include "index/concurrent_existence_index.h"
#include "index/existence_index.h"

namespace li {
namespace {

// ---- Static acceptance gate: the contract holds for every filter ----
static_assert(index::ExistenceIndex<bloom::BloomFilter>);
static_assert(
    index::ExistenceIndex<bloom::LearnedBloomFilter<classifier::NgramLogistic>>);
static_assert(index::ExistenceIndex<
              bloom::ModelHashBloomFilter<classifier::NgramLogistic>>);
// The erased handle itself satisfies the concept, so erased filters can
// be re-erased / stored wherever a concrete filter is expected.
static_assert(index::ExistenceIndex<index::AnyExistenceIndex>);
// The insertable wrapper satisfies both the read-only and the concurrent
// contract, as does its erasure.
static_assert(index::ExistenceIndex<
              concurrent::RebuildableExistence<bloom::BloomFilter>>);
static_assert(index::ConcurrentExistenceIndex<
              concurrent::RebuildableExistence<bloom::BloomFilter>>);
static_assert(index::ExistenceIndex<index::AnyConcurrentExistenceIndex>);
static_assert(
    index::ConcurrentExistenceIndex<index::AnyConcurrentExistenceIndex>);

class ExistenceConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new data::UrlCorpus(data::GenUrls(15'000, 24'000, 61));
    const size_t third = corpus_->random_negatives.size() / 3;
    train_neg_ = new std::vector<std::string>(
        corpus_->random_negatives.begin(),
        corpus_->random_negatives.begin() + third);
    valid_neg_ = new std::vector<std::string>(
        corpus_->random_negatives.begin() + third,
        corpus_->random_negatives.begin() + 2 * third);
    test_neg_ = new std::vector<std::string>(
        corpus_->random_negatives.begin() + 2 * third,
        corpus_->random_negatives.end());
    model_ = new classifier::NgramLogistic();
    classifier::NgramConfig config;
    config.num_buckets = 2048;
    ASSERT_TRUE(model_->Train(corpus_->keys, *train_neg_, config).ok());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete test_neg_;
    delete valid_neg_;
    delete train_neg_;
    delete corpus_;
    model_ = nullptr;
    corpus_ = nullptr;
    train_neg_ = valid_neg_ = test_neg_ = nullptr;
  }

  /// The shared dynamic checks, applied to concrete and erased handles
  /// alike (the contract surface is identical).
  template <typename F>
  static void CheckContract(const F& filter, double fpr_bound) {
    // Zero false negatives — the non-negotiable §5 invariant.
    for (const auto& k : corpus_->keys) {
      ASSERT_TRUE(filter.MightContain(k)) << k;
    }
    // MeasuredFpr agrees with a manual probe count.
    size_t fp = 0;
    for (const auto& s : *test_neg_) {
      fp += filter.MightContain(std::string_view(s));
    }
    const double manual =
        static_cast<double>(fp) / static_cast<double>(test_neg_->size());
    EXPECT_DOUBLE_EQ(filter.MeasuredFpr(*test_neg_), manual);
    EXPECT_LE(manual, fpr_bound);
    EXPECT_GT(filter.SizeBytes(), 0u);
  }

  static data::UrlCorpus* corpus_;
  static std::vector<std::string>* train_neg_;
  static std::vector<std::string>* valid_neg_;
  static std::vector<std::string>* test_neg_;
  static classifier::NgramLogistic* model_;
};

data::UrlCorpus* ExistenceConformanceTest::corpus_ = nullptr;
std::vector<std::string>* ExistenceConformanceTest::train_neg_ = nullptr;
std::vector<std::string>* ExistenceConformanceTest::valid_neg_ = nullptr;
std::vector<std::string>* ExistenceConformanceTest::test_neg_ = nullptr;
classifier::NgramLogistic* ExistenceConformanceTest::model_ = nullptr;

TEST_F(ExistenceConformanceTest, PlainBloomSatisfiesContract) {
  bloom::BloomFilter filter;
  ASSERT_TRUE(filter.Init(corpus_->keys.size(), 0.01).ok());
  for (const auto& k : corpus_->keys) filter.Add(std::string_view(k));
  CheckContract(filter, 0.03);

  const index::AnyExistenceIndex erased(std::move(filter));
  CheckContract(erased, 0.03);
}

TEST_F(ExistenceConformanceTest, LearnedBloomSatisfiesContract) {
  bloom::LearnedBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(filter.Build(model_, corpus_->keys, *valid_neg_, 0.01).ok());
  CheckContract(filter, 0.05);

  // Erasure preserves every answer bit-for-bit.
  bloom::LearnedBloomFilter<classifier::NgramLogistic> twin;
  ASSERT_TRUE(twin.Build(model_, corpus_->keys, *valid_neg_, 0.01).ok());
  const index::AnyExistenceIndex erased(std::move(twin));
  for (size_t i = 0; i < test_neg_->size(); i += 7) {
    ASSERT_EQ(erased.MightContain((*test_neg_)[i]),
              filter.MightContain((*test_neg_)[i]));
  }
  CheckContract(erased, 0.05);
}

TEST_F(ExistenceConformanceTest, ModelHashBloomSatisfiesContract) {
  bloom::ModelHashBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(
      filter.Build(model_, corpus_->keys, *valid_neg_, 0.01, 500'000).ok());
  CheckContract(filter, 0.05);

  const index::AnyExistenceIndex erased(std::move(filter));
  CheckContract(erased, 0.05);
}

// ---- The concurrent wrapper through the same matrix ----

TEST_F(ExistenceConformanceTest, RebuildableBloomSatisfiesContract) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0;  // rebuilds only when the test asks
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());
  EXPECT_EQ(filter.num_keys(), corpus_->keys.size());
  CheckContract(filter, 0.03);
}

TEST_F(ExistenceConformanceTest, RebuildableBloomInsertsSurviveRebuilds) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0;
  config.log_cap = 64;  // force side-log freezes during the churn
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());

  // Exact-membership semantics: a corpus key is already present, a fresh
  // key inserts exactly once.
  ASSERT_FALSE(filter.Insert(corpus_->keys.front()));
  std::vector<std::string> fresh;
  for (int i = 0; i < 1'000; ++i) {
    fresh.push_back("http://inserted.example/" + std::to_string(i));
  }
  for (const std::string& k : fresh) {
    ASSERT_TRUE(filter.Insert(k)) << k;
    ASSERT_FALSE(filter.Insert(k)) << k;  // duplicate is a no-op
    ASSERT_TRUE(filter.MightContain(k)) << k;  // immediately visible
  }
  EXPECT_EQ(filter.num_keys(), corpus_->keys.size() + fresh.size());

  // A background rebuild folds the side set into a fresh filter; the
  // no-false-negative invariant must hold before, across, and after.
  filter.RequestRebuild();
  filter.WaitForRebuilds();
  ASSERT_TRUE(filter.last_rebuild_status().ok())
      << filter.last_rebuild_status().message();
  EXPECT_GT(filter.ConcurrentStats().background_merges, 0u);
  for (const std::string& k : fresh) {
    ASSERT_TRUE(filter.MightContain(k)) << k << " lost by rebuild";
  }
  CheckContract(filter, 0.03);
  EXPECT_EQ(filter.num_keys(), corpus_->keys.size() + fresh.size());

  // Inserts keep landing after a rebuild cycle.
  ASSERT_TRUE(filter.Insert("http://post.rebuild/0"));
  EXPECT_TRUE(filter.MightContain("http://post.rebuild/0"));
}

TEST_F(ExistenceConformanceTest, RebuildableBloomAutoRebuildsAtStaleness) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0.02;  // 2% of 15k keys = 300 side keys arm it
  config.min_side_keys = 256;
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(filter.Insert("http://stale.example/" + std::to_string(i)));
  }
  filter.WaitForRebuilds();
  ASSERT_TRUE(filter.last_rebuild_status().ok());
  EXPECT_GT(filter.ConcurrentStats().background_merges, 0u);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(filter.MightContain("http://stale.example/" +
                                    std::to_string(i)));
  }
  CheckContract(filter, 0.03);
}

TEST_F(ExistenceConformanceTest, ErasedConcurrentHandleForwardsEverything) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0;
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());
  index::AnyConcurrentExistenceIndex erased(std::move(filter));
  EXPECT_FALSE(erased.empty());
  EXPECT_EQ(erased.num_keys(), corpus_->keys.size());
  CheckContract(erased, 0.03);
  ASSERT_TRUE(erased.Insert("http://erased.example/0"));
  EXPECT_TRUE(erased.MightContain("http://erased.example/0"));
  erased.RequestRebuild();
  erased.WaitForRebuilds();
  EXPECT_TRUE(erased.MightContain("http://erased.example/0"));
  EXPECT_GT(erased.ConcurrentStats().inserts, 0u);
}

TEST_F(ExistenceConformanceTest, EmptyConcurrentHandlesDropEverything) {
  index::AnyConcurrentExistenceIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.MightContain("anything"));
  EXPECT_FALSE(empty.Insert("anything"));
  EXPECT_EQ(empty.num_keys(), 0u);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  empty.RequestRebuild();
  empty.WaitForRebuilds();

  // A never-built RebuildableExistence behaves the same way.
  concurrent::RebuildableExistence<bloom::BloomFilter> unbuilt;
  EXPECT_FALSE(unbuilt.MightContain("anything"));
  EXPECT_FALSE(unbuilt.Insert("anything"));
  EXPECT_EQ(unbuilt.num_keys(), 0u);
}

TEST_F(ExistenceConformanceTest, EmptyHandleIsTheEmptySet) {
  index::AnyExistenceIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.MightContain("anything"));
  EXPECT_EQ(empty.SizeBytes(), 0u);
  EXPECT_DOUBLE_EQ(empty.MeasuredFpr(*test_neg_), 0.0);
}

TEST_F(ExistenceConformanceTest, NeverBuiltFiltersAnswerEmptySet) {
  // Contract edge: a default-constructed learned filter has no classifier
  // and must behave like a filter over the empty set, not crash.
  bloom::LearnedBloomFilter<classifier::NgramLogistic> learned;
  EXPECT_FALSE(learned.MightContain("x"));
  bloom::ModelHashBloomFilter<classifier::NgramLogistic> model_hash;
  EXPECT_FALSE(model_hash.MightContain("x"));
}

}  // namespace
}  // namespace li
