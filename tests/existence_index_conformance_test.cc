// Conformance suite for the library-wide ExistenceIndex contract: every
// filter — standard Bloom, learned Bloom (classifier + overflow, §5.1.1),
// model-hash sandwich (§5.1.2) — is (a) statically asserted to satisfy
// the index::ExistenceIndex concept and (b) driven over the same URL
// corpus through identical dynamic checks: zero false negatives for every
// inserted key, MeasuredFpr consistent with a manual probe count and
// bounded for a calibrated filter, and the type-erased AnyExistenceIndex
// answering exactly like the concrete filter it wraps.
//
// The same CheckContract core drives concurrent::RebuildableExistence —
// the insertable wrapper must pass the read-only matrix verbatim, keep
// inserted keys visible through background filter rebuilds (the
// no-false-negative invariant extends to the side set), and answer
// identically through the AnyConcurrentExistenceIndex erasure.
//
// The family edges ride at the bottom: never-built and empty-built
// filters answer as the empty set (a leg the suite long lacked — it hid
// a plain-Bloom "contains everything" bug), out-of-domain probes stay
// at the filter's FPR, and the range filters' degenerate point path
// (src/rangefilter/) passes the same matrix through a typed suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "bloom/model_hash_bloom.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "concurrent/rebuildable_existence.h"
#include "data/strings.h"
#include "index/concurrent_existence_index.h"
#include "index/existence_index.h"
#include "rangefilter/interval_bitmap_filter.h"
#include "rangefilter/learned_range_filter.h"
#include "rangefilter/workload.h"

namespace li {
namespace {

// ---- Static acceptance gate: the contract holds for every filter ----
static_assert(index::ExistenceIndex<bloom::BloomFilter>);
static_assert(
    index::ExistenceIndex<bloom::LearnedBloomFilter<classifier::NgramLogistic>>);
static_assert(index::ExistenceIndex<
              bloom::ModelHashBloomFilter<classifier::NgramLogistic>>);
// The erased handle itself satisfies the concept, so erased filters can
// be re-erased / stored wherever a concrete filter is expected.
static_assert(index::ExistenceIndex<index::AnyExistenceIndex>);
// The insertable wrapper satisfies both the read-only and the concurrent
// contract, as does its erasure.
static_assert(index::ExistenceIndex<
              concurrent::RebuildableExistence<bloom::BloomFilter>>);
static_assert(index::ConcurrentExistenceIndex<
              concurrent::RebuildableExistence<bloom::BloomFilter>>);
static_assert(index::ExistenceIndex<index::AnyConcurrentExistenceIndex>);
static_assert(
    index::ConcurrentExistenceIndex<index::AnyConcurrentExistenceIndex>);

class ExistenceConformanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new data::UrlCorpus(data::GenUrls(15'000, 24'000, 61));
    const size_t third = corpus_->random_negatives.size() / 3;
    train_neg_ = new std::vector<std::string>(
        corpus_->random_negatives.begin(),
        corpus_->random_negatives.begin() + third);
    valid_neg_ = new std::vector<std::string>(
        corpus_->random_negatives.begin() + third,
        corpus_->random_negatives.begin() + 2 * third);
    test_neg_ = new std::vector<std::string>(
        corpus_->random_negatives.begin() + 2 * third,
        corpus_->random_negatives.end());
    model_ = new classifier::NgramLogistic();
    classifier::NgramConfig config;
    config.num_buckets = 2048;
    ASSERT_TRUE(model_->Train(corpus_->keys, *train_neg_, config).ok());
  }
  static void TearDownTestSuite() {
    delete model_;
    delete test_neg_;
    delete valid_neg_;
    delete train_neg_;
    delete corpus_;
    model_ = nullptr;
    corpus_ = nullptr;
    train_neg_ = valid_neg_ = test_neg_ = nullptr;
  }

  /// The shared dynamic checks, applied to concrete and erased handles
  /// alike (the contract surface is identical).
  template <typename F>
  static void CheckContract(const F& filter, double fpr_bound) {
    // Zero false negatives — the non-negotiable §5 invariant.
    for (const auto& k : corpus_->keys) {
      ASSERT_TRUE(filter.MightContain(k)) << k;
    }
    // MeasuredFpr agrees with a manual probe count.
    size_t fp = 0;
    for (const auto& s : *test_neg_) {
      fp += filter.MightContain(std::string_view(s));
    }
    const double manual =
        static_cast<double>(fp) / static_cast<double>(test_neg_->size());
    EXPECT_DOUBLE_EQ(filter.MeasuredFpr(*test_neg_), manual);
    EXPECT_LE(manual, fpr_bound);
    EXPECT_GT(filter.SizeBytes(), 0u);
  }

  static data::UrlCorpus* corpus_;
  static std::vector<std::string>* train_neg_;
  static std::vector<std::string>* valid_neg_;
  static std::vector<std::string>* test_neg_;
  static classifier::NgramLogistic* model_;
};

data::UrlCorpus* ExistenceConformanceTest::corpus_ = nullptr;
std::vector<std::string>* ExistenceConformanceTest::train_neg_ = nullptr;
std::vector<std::string>* ExistenceConformanceTest::valid_neg_ = nullptr;
std::vector<std::string>* ExistenceConformanceTest::test_neg_ = nullptr;
classifier::NgramLogistic* ExistenceConformanceTest::model_ = nullptr;

TEST_F(ExistenceConformanceTest, PlainBloomSatisfiesContract) {
  bloom::BloomFilter filter;
  ASSERT_TRUE(filter.Init(corpus_->keys.size(), 0.01).ok());
  for (const auto& k : corpus_->keys) filter.Add(std::string_view(k));
  CheckContract(filter, 0.03);

  const index::AnyExistenceIndex erased(std::move(filter));
  CheckContract(erased, 0.03);
}

TEST_F(ExistenceConformanceTest, LearnedBloomSatisfiesContract) {
  bloom::LearnedBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(filter.Build(model_, corpus_->keys, *valid_neg_, 0.01).ok());
  CheckContract(filter, 0.05);

  // Erasure preserves every answer bit-for-bit.
  bloom::LearnedBloomFilter<classifier::NgramLogistic> twin;
  ASSERT_TRUE(twin.Build(model_, corpus_->keys, *valid_neg_, 0.01).ok());
  const index::AnyExistenceIndex erased(std::move(twin));
  for (size_t i = 0; i < test_neg_->size(); i += 7) {
    ASSERT_EQ(erased.MightContain((*test_neg_)[i]),
              filter.MightContain((*test_neg_)[i]));
  }
  CheckContract(erased, 0.05);
}

TEST_F(ExistenceConformanceTest, ModelHashBloomSatisfiesContract) {
  bloom::ModelHashBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(
      filter.Build(model_, corpus_->keys, *valid_neg_, 0.01, 500'000).ok());
  CheckContract(filter, 0.05);

  const index::AnyExistenceIndex erased(std::move(filter));
  CheckContract(erased, 0.05);
}

// ---- The concurrent wrapper through the same matrix ----

TEST_F(ExistenceConformanceTest, RebuildableBloomSatisfiesContract) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0;  // rebuilds only when the test asks
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());
  EXPECT_EQ(filter.num_keys(), corpus_->keys.size());
  CheckContract(filter, 0.03);
}

TEST_F(ExistenceConformanceTest, RebuildableBloomInsertsSurviveRebuilds) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0;
  config.log_cap = 64;  // force side-log freezes during the churn
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());

  // Exact-membership semantics: a corpus key is already present, a fresh
  // key inserts exactly once.
  ASSERT_FALSE(filter.Insert(corpus_->keys.front()));
  std::vector<std::string> fresh;
  for (int i = 0; i < 1'000; ++i) {
    fresh.push_back("http://inserted.example/" + std::to_string(i));
  }
  for (const std::string& k : fresh) {
    ASSERT_TRUE(filter.Insert(k)) << k;
    ASSERT_FALSE(filter.Insert(k)) << k;  // duplicate is a no-op
    ASSERT_TRUE(filter.MightContain(k)) << k;  // immediately visible
  }
  EXPECT_EQ(filter.num_keys(), corpus_->keys.size() + fresh.size());

  // A background rebuild folds the side set into a fresh filter; the
  // no-false-negative invariant must hold before, across, and after.
  filter.RequestRebuild();
  filter.WaitForRebuilds();
  ASSERT_TRUE(filter.last_rebuild_status().ok())
      << filter.last_rebuild_status().message();
  EXPECT_GT(filter.ConcurrentStats().background_merges, 0u);
  for (const std::string& k : fresh) {
    ASSERT_TRUE(filter.MightContain(k)) << k << " lost by rebuild";
  }
  CheckContract(filter, 0.03);
  EXPECT_EQ(filter.num_keys(), corpus_->keys.size() + fresh.size());

  // Inserts keep landing after a rebuild cycle.
  ASSERT_TRUE(filter.Insert("http://post.rebuild/0"));
  EXPECT_TRUE(filter.MightContain("http://post.rebuild/0"));
}

TEST_F(ExistenceConformanceTest, RebuildableBloomAutoRebuildsAtStaleness) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0.02;  // 2% of 15k keys = 300 side keys arm it
  config.min_side_keys = 256;
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(filter.Insert("http://stale.example/" + std::to_string(i)));
  }
  filter.WaitForRebuilds();
  ASSERT_TRUE(filter.last_rebuild_status().ok());
  EXPECT_GT(filter.ConcurrentStats().background_merges, 0u);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(filter.MightContain("http://stale.example/" +
                                    std::to_string(i)));
  }
  CheckContract(filter, 0.03);
}

TEST_F(ExistenceConformanceTest, ErasedConcurrentHandleForwardsEverything) {
  concurrent::RebuildableExistence<bloom::BloomFilter> filter;
  concurrent::RebuildableExistence<bloom::BloomFilter>::Config config;
  config.rebuild = concurrent::PlainBloomRebuilder(0.01);
  config.staleness = 0;
  ASSERT_TRUE(filter.Build(corpus_->keys, config).ok());
  index::AnyConcurrentExistenceIndex erased(std::move(filter));
  EXPECT_FALSE(erased.empty());
  EXPECT_EQ(erased.num_keys(), corpus_->keys.size());
  CheckContract(erased, 0.03);
  ASSERT_TRUE(erased.Insert("http://erased.example/0"));
  EXPECT_TRUE(erased.MightContain("http://erased.example/0"));
  erased.RequestRebuild();
  erased.WaitForRebuilds();
  EXPECT_TRUE(erased.MightContain("http://erased.example/0"));
  EXPECT_GT(erased.ConcurrentStats().inserts, 0u);
}

TEST_F(ExistenceConformanceTest, EmptyConcurrentHandlesDropEverything) {
  index::AnyConcurrentExistenceIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.MightContain("anything"));
  EXPECT_FALSE(empty.Insert("anything"));
  EXPECT_EQ(empty.num_keys(), 0u);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  empty.RequestRebuild();
  empty.WaitForRebuilds();

  // A never-built RebuildableExistence behaves the same way.
  concurrent::RebuildableExistence<bloom::BloomFilter> unbuilt;
  EXPECT_FALSE(unbuilt.MightContain("anything"));
  EXPECT_FALSE(unbuilt.Insert("anything"));
  EXPECT_EQ(unbuilt.num_keys(), 0u);
}

TEST_F(ExistenceConformanceTest, EmptyHandleIsTheEmptySet) {
  index::AnyExistenceIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.MightContain("anything"));
  EXPECT_EQ(empty.SizeBytes(), 0u);
  EXPECT_DOUBLE_EQ(empty.MeasuredFpr(*test_neg_), 0.0);
}

TEST_F(ExistenceConformanceTest, NeverBuiltFiltersAnswerEmptySet) {
  // Contract edge: a default-constructed learned filter has no classifier
  // and must behave like a filter over the empty set, not crash.
  bloom::LearnedBloomFilter<classifier::NgramLogistic> learned;
  EXPECT_FALSE(learned.MightContain("x"));
  bloom::ModelHashBloomFilter<classifier::NgramLogistic> model_hash;
  EXPECT_FALSE(model_hash.MightContain("x"));
  // The plain Bloom filter used to FAIL this leg: with num_hashes_ == 0
  // its probe loop ran zero iterations and answered "contains
  // everything" — the exact opposite of the empty set.
  bloom::BloomFilter plain;
  EXPECT_FALSE(plain.MightContain("x"));
  EXPECT_FALSE(plain.MightContain(uint64_t{42}));
  std::vector<std::string> probes = {"a", "b", "c"};
  EXPECT_DOUBLE_EQ(plain.MeasuredFpr(probes), 0.0);
}

TEST_F(ExistenceConformanceTest, EmptyBuiltFiltersAnswerEmptySet) {
  // A filter *built over zero keys* (Init'ed but nothing added) is a
  // distinct edge from never-built: sized state exists, yet every probe
  // must still miss with overwhelming probability — and the no-FN
  // contract is vacuous, so a strict empty-set answer is required of
  // the probe math, not just permitted.
  bloom::BloomFilter plain;
  ASSERT_TRUE(plain.Init(1, 0.01).ok());  // minimal sizing, zero Adds
  size_t hits = 0;
  for (const auto& s : *test_neg_) hits += plain.MightContain(s);
  EXPECT_EQ(hits, 0u) << "empty-built bloom answered true";

  const std::vector<std::string> no_keys;
  bloom::LearnedBloomFilter<classifier::NgramLogistic> learned;
  // Building over an empty key set may legitimately refuse; if it
  // builds, it must answer like the empty set at the overflow stage
  // (the classifier can still false-positive — that is its FPR budget,
  // bounded like any other candidate's).
  if (learned.Build(model_, no_keys, *valid_neg_, 0.01).ok()) {
    EXPECT_LE(learned.MeasuredFpr(*test_neg_), 0.05);
  }
}

TEST_F(ExistenceConformanceTest, OutOfDomainProbesStayBounded) {
  // Keys far outside the build corpus's shape (different scheme, length,
  // alphabet) must miss at the filter's FPR, not systematically hit —
  // the suite previously only probed lookalike negatives. The probes
  // must be *diverse*: a shared prefix would feed every probe the same
  // n-grams and make the classifier's 2000 verdicts one correlated coin
  // flip, which no statistical bound survives.
  Xorshift128Plus rng(0xA11E17);
  std::vector<std::string> alien;
  for (int i = 0; i < 2'000; ++i) {
    std::string s;
    const size_t len = 8 + rng.NextBounded(56);
    switch (i % 4) {
      case 0:  // uppercase words with spaces — no URL corpus has either
        for (size_t j = 0; j < len; ++j)
          s.push_back(j % 7 == 6 ? ' '
                                 : static_cast<char>('A' + rng.NextBounded(26)));
        break;
      case 1:  // long digit runs
        for (size_t j = 0; j < len; ++j)
          s.push_back(static_cast<char>('0' + rng.NextBounded(10)));
        break;
      case 2:  // full printable-ASCII noise
        for (size_t j = 0; j < len; ++j)
          s.push_back(static_cast<char>(0x20 + rng.NextBounded(95)));
        break;
      default:  // high-bit / control bytes, never URL-legal
        for (size_t j = 0; j < len; ++j)
          s.push_back(static_cast<char>(rng.NextBounded(0x1F) + 0x80));
        break;
    }
    alien.push_back(std::move(s));
  }

  bloom::BloomFilter plain;
  ASSERT_TRUE(plain.Init(corpus_->keys.size(), 0.01).ok());
  for (const auto& k : corpus_->keys) plain.Add(std::string_view(k));
  EXPECT_LE(plain.MeasuredFpr(alien), 0.03);

  bloom::LearnedBloomFilter<classifier::NgramLogistic> learned;
  ASSERT_TRUE(learned.Build(model_, corpus_->keys, *valid_neg_, 0.01).ok());
  // The classifier never saw this distribution; the §5.2 caveat is that
  // out-of-distribution FPR blows past the calibrated target (measured
  // ~0.8 here — every seed above is fixed, so the number is stable).
  // The two bounds below pin the caveat from both sides: the learned
  // filter degrades measurably worse than the hash-only baseline on
  // alien shapes, yet stays a filter rather than a yes-machine.
  const double learned_ood = learned.MeasuredFpr(alien);
  EXPECT_GT(learned_ood, plain.MeasuredFpr(alien));
  EXPECT_LE(learned_ood, 0.95);
}

// ---- The range filters' point path through the same family matrix ----
// MightContain(k) on a range filter is the degenerate [k, k+1) range;
// the existence-family edges (never-built / empty-built / out-of-domain)
// must hold for them exactly as for the string filters above.

template <typename F>
class RangeFilterPointPathTest : public ::testing::Test {};

using RangeFilterTypes = ::testing::Types<rangefilter::LearnedRangeFilter,
                                          rangefilter::IntervalBitmapFilter>;
TYPED_TEST_SUITE(RangeFilterPointPathTest, RangeFilterTypes);

TYPED_TEST(RangeFilterPointPathTest, PointPathMatchesExistenceContract) {
  // Never-built and empty-built both answer as the empty set.
  TypeParam unbuilt;
  EXPECT_FALSE(unbuilt.MightContain(0));
  EXPECT_FALSE(unbuilt.MightContain(~uint64_t{0}));
  TypeParam empty;
  ASSERT_TRUE(empty.Build({}).ok());
  EXPECT_FALSE(empty.MightContain(12345));

  // Built: zero false negatives on every key; probes outside the
  // covered domain [min, max] are definitively false for a filter whose
  // bitmap only spans the domain.
  const std::vector<uint64_t> keys =
      rangefilter::GenUniformKeys(10'000, 77, uint64_t{1} << 32);
  TypeParam filter;
  ASSERT_TRUE(filter.Build(keys).ok());
  for (size_t i = 0; i < keys.size(); i += 3) {
    ASSERT_TRUE(filter.MightContain(keys[i])) << keys[i];
  }
  Xorshift128Plus rng(78);
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t below = rng.NextBounded(keys.front());
    EXPECT_FALSE(filter.MightContain(below)) << below;
    const uint64_t above = keys.back() + 1 + rng.NextBounded(uint64_t{1}
                                                             << 40);
    EXPECT_FALSE(filter.MightContain(above)) << above;
  }
}

}  // namespace
}  // namespace li
