// Tests for the learned sort (§7 "Beyond Indexing"): output must equal
// std::sort across distributions, sizes, and degenerate inputs.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/datasets.h"
#include "sort/learned_sort.h"

namespace li::sort {
namespace {

class LearnedSortTest : public ::testing::TestWithParam<data::DatasetKind> {};

TEST_P(LearnedSortTest, MatchesStdSort) {
  auto keys = data::Generate(GetParam(), 100'000, 51);
  // Shuffle so the sorter has real work to do.
  Xorshift128Plus rng(52);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  ASSERT_TRUE(LearnedSort(&keys).ok());
  EXPECT_EQ(keys, expect);
}

INSTANTIATE_TEST_SUITE_P(Distributions, LearnedSortTest,
                         ::testing::Values(data::DatasetKind::kMaps,
                                           data::DatasetKind::kWeblog,
                                           data::DatasetKind::kLognormal));

TEST(LearnedSortEdgeTest, EmptySingleAndTiny) {
  std::vector<uint64_t> v;
  EXPECT_TRUE(LearnedSort(&v).ok());
  v = {5};
  EXPECT_TRUE(LearnedSort(&v).ok());
  EXPECT_EQ(v, (std::vector<uint64_t>{5}));
  v = {9, 1, 5};
  EXPECT_TRUE(LearnedSort(&v).ok());
  EXPECT_EQ(v, (std::vector<uint64_t>{1, 5, 9}));
}

TEST(LearnedSortEdgeTest, AllEqualKeys) {
  std::vector<uint64_t> v(10'000, 42);
  EXPECT_TRUE(LearnedSort(&v).ok());
  for (const auto x : v) EXPECT_EQ(x, 42u);
}

TEST(LearnedSortEdgeTest, AlreadySortedAndReversed) {
  std::vector<uint64_t> v(50'000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = i * 3;
  auto expect = v;
  ASSERT_TRUE(LearnedSort(&v).ok());
  EXPECT_EQ(v, expect);
  std::reverse(v.begin(), v.end());
  ASSERT_TRUE(LearnedSort(&v).ok());
  EXPECT_EQ(v, expect);
}

TEST(LearnedSortEdgeTest, DuplicateHeavyInput) {
  Xorshift128Plus rng(9);
  std::vector<uint64_t> v(100'000);
  for (auto& x : v) x = rng.NextBounded(100);  // only 100 distinct values
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  ASSERT_TRUE(LearnedSort(&v).ok());
  EXPECT_EQ(v, expect);
}

TEST(LearnedSortConfigTest, SmallSampleStillCorrect) {
  auto keys = data::GenLognormal(50'000, 53);
  Xorshift128Plus rng(54);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  LearnedSortConfig config;
  config.sample_size = 100;
  config.elems_per_bucket = 4;
  ASSERT_TRUE(LearnedSort(&keys, config).ok());
  EXPECT_EQ(keys, expect);
}

}  // namespace
}  // namespace li::sort
