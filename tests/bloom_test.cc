// Tests for the existence indexes (§5): standard Bloom filter, learned
// Bloom filter (classifier + overflow), and the model-hash variant.
// The non-negotiable invariant everywhere: zero false negatives.

#include <gtest/gtest.h>

#include <cmath>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "bloom/model_hash_bloom.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "data/strings.h"

namespace li::bloom {
namespace {

TEST(BloomFilterTest, NoFalseNegativesIntKeys) {
  BloomFilter filter;
  ASSERT_TRUE(filter.Init(10'000, 0.01).ok());
  Xorshift128Plus rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10'000; ++i) keys.push_back(rng.Next());
  for (const auto k : keys) filter.Add(k);
  for (const auto k : keys) EXPECT_TRUE(filter.MightContain(k));
}

TEST(BloomFilterTest, FprNearTarget) {
  for (const double target : {0.1, 0.01, 0.001}) {
    BloomFilter filter;
    ASSERT_TRUE(filter.Init(50'000, target).ok());
    Xorshift128Plus rng(2);
    for (int i = 0; i < 50'000; ++i) filter.Add(rng.Next() | 1);  // odd keys
    size_t fp = 0;
    const int probes = 200'000;
    for (int i = 0; i < probes; ++i) fp += filter.MightContain(rng.Next() & ~uint64_t{1});
    const double fpr = static_cast<double>(fp) / probes;
    EXPECT_LT(fpr, target * 1.6) << target;
    EXPECT_GT(fpr, target * 0.3) << target;
  }
}

TEST(BloomFilterTest, SizeMatchesTextbookFormula) {
  BloomFilter filter;
  ASSERT_TRUE(filter.Init(1'000'000, 0.01).ok());
  // ~9.585 bits/key at 1%.
  const double bits_per_key =
      static_cast<double>(filter.num_bits()) / 1'000'000.0;
  EXPECT_NEAR(bits_per_key, 9.585, 0.05);
  EXPECT_EQ(filter.num_hashes(), 7);
}

TEST(BloomFilterTest, PaperHeadlineSizes) {
  // §5: "for one billion records roughly 1.76 GB are needed; for a FPR of
  // 0.01% we would require 2.23 GB". Verify the geometry reproduces them.
  BloomFilter one_pct, hundredth_pct;
  ASSERT_TRUE(one_pct.Init(1'000'000'000, 0.01).ok());
  ASSERT_TRUE(hundredth_pct.Init(1'000'000'000, 0.0001).ok());
  EXPECT_NEAR(one_pct.SizeBytes() / 1e9, 1.2, 0.05);     // 1% -> ~1.2 GB
  EXPECT_NEAR(hundredth_pct.SizeBytes() / 1e9, 2.4, 0.1);  // 0.01% -> ~2.4 GB
}

TEST(BloomFilterTest, StringKeysSupported) {
  BloomFilter filter;
  ASSERT_TRUE(filter.Init(1000, 0.01).ok());
  filter.Add(std::string_view("hello"));
  EXPECT_TRUE(filter.MightContain(std::string_view("hello")));
}

TEST(BloomFilterTest, BadParamsRejected) {
  BloomFilter filter;
  EXPECT_FALSE(filter.Init(0, 0.01).ok());
  EXPECT_FALSE(filter.Init(10, 0.0).ok());
  EXPECT_FALSE(filter.Init(10, 1.0).ok());
}

class LearnedBloomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = data::GenUrls(20'000, 30'000, 41);
    // Split negatives: train / validation / test (the §5.2 protocol).
    const size_t third = corpus_.random_negatives.size() / 3;
    train_neg_.assign(corpus_.random_negatives.begin(),
                      corpus_.random_negatives.begin() + third);
    valid_neg_.assign(corpus_.random_negatives.begin() + third,
                      corpus_.random_negatives.begin() + 2 * third);
    test_neg_.assign(corpus_.random_negatives.begin() + 2 * third,
                     corpus_.random_negatives.end());
    // Size the classifier's hashed feature table for the key-set scale —
    // at 20k keys a 64 KB table would dwarf the Bloom filter it replaces.
    classifier::NgramConfig config;
    config.num_buckets = 2048;
    ASSERT_TRUE(model_.Train(corpus_.keys, train_neg_, config).ok());
  }

  data::UrlCorpus corpus_;
  std::vector<std::string> train_neg_, valid_neg_, test_neg_;
  classifier::NgramLogistic model_;
};

TEST_F(LearnedBloomTest, ZeroFalseNegativesStructurally) {
  LearnedBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(filter.Build(&model_, corpus_.keys, valid_neg_, 0.01).ok());
  for (const auto& k : corpus_.keys) {
    ASSERT_TRUE(filter.MightContain(k)) << k;
  }
}

TEST_F(LearnedBloomTest, TestFprNearTarget) {
  for (const double target : {0.05, 0.01}) {
    LearnedBloomFilter<classifier::NgramLogistic> filter;
    ASSERT_TRUE(filter.Build(&model_, corpus_.keys, valid_neg_, target).ok());
    const double fpr = filter.MeasuredFpr(test_neg_);
    EXPECT_LE(fpr, target * 2.5) << target;  // validated threshold transfers
  }
}

TEST_F(LearnedBloomTest, SmallerThanStandardBloomAtSameFpr) {
  // The §5.2 headline: model + spillover < plain Bloom filter.
  const double target = 0.01;
  LearnedBloomFilter<classifier::NgramLogistic> learned;
  ASSERT_TRUE(learned.Build(&model_, corpus_.keys, valid_neg_, target).ok());
  BloomFilter plain;
  ASSERT_TRUE(plain.Init(corpus_.keys.size(), target).ok());
  EXPECT_LT(learned.SizeBytes(), plain.SizeBytes());
}

TEST_F(LearnedBloomTest, FnrDrivesOverflowSize) {
  LearnedBloomFilter<classifier::NgramLogistic> strict, loose;
  ASSERT_TRUE(strict.Build(&model_, corpus_.keys, valid_neg_, 0.001).ok());
  ASSERT_TRUE(loose.Build(&model_, corpus_.keys, valid_neg_, 0.05).ok());
  // A stricter FPR target raises tau, creating more false negatives and a
  // bigger overflow filter.
  EXPECT_GE(strict.fnr(), loose.fnr());
  EXPECT_GE(strict.OverflowBytes(), loose.OverflowBytes());
}

TEST_F(LearnedBloomTest, BuildValidation) {
  LearnedBloomFilter<classifier::NgramLogistic> filter;
  EXPECT_FALSE(filter.Build(nullptr, corpus_.keys, valid_neg_, 0.01).ok());
  EXPECT_FALSE(filter.Build(&model_, corpus_.keys, valid_neg_, 0.0).ok());
  EXPECT_FALSE(filter.Build(&model_, corpus_.keys, {}, 0.01).ok());
}

TEST_F(LearnedBloomTest, ModelHashVariantNoFalseNegatives) {
  ModelHashBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(
      filter.Build(&model_, corpus_.keys, valid_neg_, 0.01, 1'000'000).ok());
  for (const auto& k : corpus_.keys) {
    ASSERT_TRUE(filter.MightContain(k)) << k;
  }
}

TEST_F(LearnedBloomTest, ModelHashFprBounded) {
  ModelHashBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(
      filter.Build(&model_, corpus_.keys, valid_neg_, 0.01, 1'000'000).ok());
  EXPECT_LE(filter.MeasuredFpr(test_neg_), 0.03);
  // A cleanly separable corpus can drive the bitmap FPR to zero.
  EXPECT_GE(filter.fpr_m(), 0.0);
  EXPECT_LT(filter.fpr_m(), 1.0);
}

TEST_F(LearnedBloomTest, ModelHashBadArgsRejected) {
  ModelHashBloomFilter<classifier::NgramLogistic> filter;
  EXPECT_FALSE(filter.Build(&model_, corpus_.keys, valid_neg_, 0.01, 0).ok());
  EXPECT_FALSE(
      filter.Build(nullptr, corpus_.keys, valid_neg_, 0.01, 1000).ok());
}

}  // namespace
}  // namespace li::bloom
