// Edge-case coverage for every §3.4 search strategy: empty windows,
// single-element windows, and keys below/above every element — the
// degenerate shapes learned windows actually produce (empty leaves,
// perfect models, absent keys at the extremes) — plus the FindInWindow
// dispatch including its boundary fix-up.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "index/approx.h"
#include "search/search.h"

namespace li::search {
namespace {

const std::vector<uint64_t> kKeys = {10, 20, 30, 40, 50, 60, 70, 80};

TEST(SearchEdgeTest, EmptyWindowReturnsLo) {
  // A window [3, 3) holds nothing: lower_bound inside it is lo itself.
  for (const uint64_t q : {0ull, 35ull, 200ull}) {
    EXPECT_EQ(BinarySearch(kKeys.data(), 3, 3, q), 3u);
    EXPECT_EQ(UpperBound(kKeys.data(), 3, 3, q), 3u);
    EXPECT_EQ(BiasedBinarySearch(kKeys.data(), 3, 3, q, 3), 3u);
    EXPECT_EQ(BiasedQuaternarySearch(kKeys.data(), 3, 3, q, 3, 2), 3u);
    EXPECT_EQ(InterpolationSearch(kKeys.data(), 3, 3, q), 3u);
  }
  // The window-free strategies degenerate at n == 0.
  EXPECT_EQ(ExponentialSearch(kKeys.data(), 0, uint64_t{35}, 0), 0u);
  EXPECT_EQ(BranchFreeScan(kKeys.data(), 0, 35), 0u);
}

TEST(SearchEdgeTest, SingleElementWindow) {
  // Window [4, 5) holds only kKeys[4] == 50.
  struct Case {
    uint64_t q;
    size_t expect;
  };
  for (const Case c : {Case{49, 4}, Case{50, 4}, Case{51, 5}}) {
    EXPECT_EQ(BinarySearch(kKeys.data(), 4, 5, c.q), c.expect) << c.q;
    EXPECT_EQ(BiasedBinarySearch(kKeys.data(), 4, 5, c.q, 4), c.expect) << c.q;
    EXPECT_EQ(BiasedQuaternarySearch(kKeys.data(), 4, 5, c.q, 4, 1), c.expect)
        << c.q;
    EXPECT_EQ(InterpolationSearch(kKeys.data(), 4, 5, c.q), c.expect) << c.q;
    // BranchFreeScan counts elements < q within the window.
    EXPECT_EQ(4 + BranchFreeScan(kKeys.data() + 4, 1, c.q), c.expect) << c.q;
  }
  // Exponential over a single-element array.
  const std::vector<uint64_t> one = {50};
  EXPECT_EQ(ExponentialSearch(one.data(), 1, uint64_t{49}, 0), 0u);
  EXPECT_EQ(ExponentialSearch(one.data(), 1, uint64_t{50}, 0), 0u);
  EXPECT_EQ(ExponentialSearch(one.data(), 1, uint64_t{51}, 0), 1u);
}

TEST(SearchEdgeTest, KeyBelowAllElements) {
  const size_t n = kKeys.size();
  for (const uint64_t q : {0ull, 9ull}) {
    EXPECT_EQ(BinarySearch(kKeys.data(), 0, n, q), 0u);
    EXPECT_EQ(UpperBound(kKeys.data(), 0, n, q), 0u);
    // Deliberately bad predictions: the hint must not break correctness.
    EXPECT_EQ(BiasedBinarySearch(kKeys.data(), 0, n, q, n - 1), 0u);
    EXPECT_EQ(BiasedQuaternarySearch(kKeys.data(), 0, n, q, n - 1, 3), 0u);
    EXPECT_EQ(ExponentialSearch(kKeys.data(), n, q, n - 1), 0u);
    EXPECT_EQ(InterpolationSearch(kKeys.data(), 0, n, q), 0u);
    EXPECT_EQ(BranchFreeScan(kKeys.data(), n, q), 0u);
  }
}

TEST(SearchEdgeTest, KeyAboveAllElements) {
  const size_t n = kKeys.size();
  for (const uint64_t q : {81ull, 10'000ull}) {
    EXPECT_EQ(BinarySearch(kKeys.data(), 0, n, q), n);
    EXPECT_EQ(UpperBound(kKeys.data(), 0, n, q), n);
    EXPECT_EQ(BiasedBinarySearch(kKeys.data(), 0, n, q, 0), n);
    EXPECT_EQ(BiasedQuaternarySearch(kKeys.data(), 0, n, q, 0, 3), n);
    EXPECT_EQ(ExponentialSearch(kKeys.data(), n, q, 0), n);
    EXPECT_EQ(InterpolationSearch(kKeys.data(), 0, n, q), n);
    EXPECT_EQ(BranchFreeScan(kKeys.data(), n, q), n);
  }
}

// ---- FindInWindow: the shared Approx-consuming dispatch ----

constexpr Strategy kAllStrategies[] = {
    Strategy::kBinary, Strategy::kBiasedBinary, Strategy::kBiasedQuaternary,
    Strategy::kExponential, Strategy::kInterpolation};

TEST(FindInWindowTest, CorrectWindowAllStrategies) {
  const auto keys = data::GenUniform(5000, 31, 1'000'000);
  Xorshift128Plus rng(32);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    const size_t truth = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    // A realistic window: truth +- a small error, clamped to the array.
    const size_t err = 2 + rng.NextBounded(30);
    index::Approx a;
    a.lo = truth > err ? truth - err : 0;
    a.hi = std::min(truth + err + 1, keys.size());
    a.pos = std::min(truth, keys.size() - 1);
    for (const Strategy s : kAllStrategies) {
      EXPECT_EQ(FindInWindow(s, keys.data(), keys.size(), q, a, 4), truth)
          << StrategyName(s) << " q=" << q;
    }
  }
}

TEST(FindInWindowTest, BoundaryFixupRecoversFromWrongWindows) {
  const auto keys = data::GenUniform(5000, 33, 1'000'000);
  Xorshift128Plus rng(34);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    const size_t truth = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    // A window that may exclude the truth entirely (the non-monotonic
    // model case): the fix-up must still land on the right answer.
    const size_t start = rng.NextBounded(keys.size() - 8);
    const index::Approx a{start + 4, start, start + 8};
    for (const Strategy s : kAllStrategies) {
      EXPECT_EQ(FindInWindow(s, keys.data(), keys.size(), q, a, 2), truth)
          << StrategyName(s) << " q=" << q;
    }
  }
}

TEST(FindInWindowTest, WorksForStringKeys) {
  // Non-arithmetic keys: interpolation silently degrades to binary.
  const std::vector<std::string> keys = {"alpha", "beta", "delta", "gamma"};
  const std::string q = "canary";
  const index::Approx a{1, 0, keys.size()};
  for (const Strategy s : kAllStrategies) {
    EXPECT_EQ(FindInWindow(s, keys.data(), keys.size(), q, a), 2u)
        << StrategyName(s);
  }
}

}  // namespace
}  // namespace li::search
