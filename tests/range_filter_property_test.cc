// Randomized property leg for the RangeFilter contract: where the
// conformance suite checks hand-picked edges, this one drives thousands
// of seeded random (build set, query range) cases per filter config
// against a std::set brute-force oracle and asserts the two properties
// that define the contract:
//
//   * soundness — a range the oracle says is non-empty is NEVER denied
//     (zero false negatives, the hard invariant);
//   * point/range agreement — MightContain(k) == MightContainRange(k,
//     k+1) for every probed key.
//
// Seeds funnel through tests/test_seed.h: deterministic by default, one
// LI_TEST_SEED knob re-seeds every case for nightly sweeps with the
// failing seed always printed in the log.
//
// The snapshot round-trip property rides along: a filter written to disk
// and reopened (zero-copy mapped) must answer bit-identically to the
// original on every probe — equality of behavior, not just of metadata.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/range_filter.h"
#include "rangefilter/interval_bitmap_filter.h"
#include "rangefilter/learned_range_filter.h"
#include "rangefilter/workload.h"
#include "test_seed.h"

namespace li {
namespace {

Status BuildFilter(rangefilter::LearnedRangeFilter& f,
                   std::span<const uint64_t> keys, double bits_per_key,
                   size_t keys_per_segment) {
  rangefilter::LearnedRangeFilterConfig cfg;
  cfg.bits_per_key = bits_per_key;
  cfg.keys_per_segment = keys_per_segment;
  return f.Build(keys, cfg);
}
Status BuildFilter(rangefilter::IntervalBitmapFilter& f,
                   std::span<const uint64_t> keys, double bits_per_key,
                   size_t /*keys_per_segment*/) {
  rangefilter::IntervalBitmapFilterConfig cfg;
  cfg.bits_per_key = bits_per_key;
  return f.Build(keys, cfg);
}

bool OracleNonEmpty(const std::set<uint64_t>& keys, uint64_t lo,
                    uint64_t hi) {
  if (hi <= lo) return false;
  const auto it = keys.lower_bound(lo);
  return it != keys.end() && *it < hi;
}

/// One random case: a fresh key set (one of the four shapes, rotated by
/// case index) and a burst of random ranges + point probes, all held
/// against the oracle.
template <typename F>
void RunCase(uint64_t seed, double bits_per_key, size_t keys_per_segment,
             int shape, size_t ranges_per_case) {
  Xorshift128Plus rng(seed);
  const size_t n = 64 + rng.NextBounded(2'000);
  std::vector<uint64_t> keys;
  switch (shape) {
    case 0: keys = rangefilter::GenUniformKeys(n, seed); break;
    case 1: keys = rangefilter::GenZipfKeys(n, seed); break;
    case 2: keys = rangefilter::GenDuplicateHeavyKeys(n, seed); break;
    default:
      keys = rangefilter::GenAdversarialGapKeys(n, seed, 64);
      break;
  }
  F filter;
  ASSERT_TRUE(BuildFilter(filter, keys, bits_per_key, keys_per_segment).ok());
  const std::set<uint64_t> oracle(keys.begin(), keys.end());
  const uint64_t lo_key = *oracle.begin();
  const uint64_t hi_key = *oracle.rbegin();
  const uint64_t spread = hi_key - lo_key + 1024;

  for (size_t i = 0; i < ranges_per_case; ++i) {
    // Bias lo near the covered domain (where false negatives could
    // hide), with occasional fully wild endpoints.
    const uint64_t lo = (rng.Next() & 7) == 0
                            ? rng.Next()
                            : lo_key + rng.NextBounded(spread);
    const uint64_t width = rng.NextBounded(uint64_t{1} << (rng.Next() % 20));
    const uint64_t hi = lo + width < lo ? ~uint64_t{0} : lo + width;
    if (OracleNonEmpty(oracle, lo, hi)) {
      ASSERT_TRUE(filter.MightContainRange(lo, hi))
          << "false negative on [" << lo << ", " << hi << ") seed=" << seed;
    }
    if (lo < ~uint64_t{0}) {
      ASSERT_EQ(filter.MightContain(lo), filter.MightContainRange(lo, lo + 1))
          << "point/range disagreement at " << lo << " seed=" << seed;
    }
  }
  // Every built key must be found, always.
  for (const uint64_t k : keys) {
    ASSERT_TRUE(filter.MightContain(k))
        << "false negative on built key " << k << " seed=" << seed;
  }
}

/// The config grid: 2 budgets x 2 segmentations x 4 dataset shapes, with
/// enough cases per grid point that each filter config sees > 10^3
/// randomized (build set, query) cases per run.
template <typename F>
void RunGrid(uint64_t base_seed) {
  const double budgets[] = {4.0, 8.0};
  const size_t segmentations[] = {64, 256};
  constexpr int kCasesPerPoint = 18;
  constexpr size_t kRangesPerCase = 400;
  int case_id = 0;
  for (const double bpk : budgets) {
    for (const size_t kps : segmentations) {
      for (int shape = 0; shape < 4; ++shape) {
        for (int c = 0; c < kCasesPerPoint; ++c) {
          RunCase<F>(base_seed + 1'000'003 * ++case_id, bpk, kps, shape,
                     kRangesPerCase);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(RangeFilterPropertyTest, LearnedFilterNeverFalseNegative) {
  RunGrid<rangefilter::LearnedRangeFilter>(testing::TestSeed(0xF17E1));
}

TEST(RangeFilterPropertyTest, IntervalFilterNeverFalseNegative) {
  RunGrid<rangefilter::IntervalBitmapFilter>(testing::TestSeed(0xF17E2));
}

// ---- Snapshot round-trip property ----

std::string SnapshotPath(const char* name) {
  return ::testing::TempDir() + "li_range_filter_prop_" + name;
}

/// Reopened filters must answer bit-identically on random probes — the
/// mapped-view query path is the same code as the owned path, and this
/// pins that equivalence behaviorally.
template <typename F>
void CheckSnapshotRoundTrip(const char* tag, uint64_t seed) {
  const std::vector<uint64_t> keys =
      rangefilter::GenAdversarialGapKeys(4'000, seed, 128);
  F original;
  ASSERT_TRUE(BuildFilter(original, keys, 8.0, 128).ok());
  const std::string path = SnapshotPath(tag);
  ASSERT_TRUE(original.WriteSnapshot(path).ok());
  auto reopened = F::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().SizeBytes(), original.SizeBytes());

  Xorshift128Plus rng(seed + 1);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t lo = rng.NextBounded(keys.back() + 4'096);
    const uint64_t hi = lo + rng.NextBounded(uint64_t{1} << 16);
    ASSERT_EQ(original.MightContainRange(lo, hi),
              reopened.value().MightContainRange(lo, hi))
        << "[" << lo << ", " << hi << ") seed=" << seed;
    ASSERT_EQ(original.MightContain(lo), reopened.value().MightContain(lo))
        << lo << " seed=" << seed;
  }
  std::remove(path.c_str());
}

TEST(RangeFilterPropertyTest, LearnedSnapshotRoundTripIsBitIdentical) {
  CheckSnapshotRoundTrip<rangefilter::LearnedRangeFilter>(
      "learned", testing::TestSeed(0xF17E3));
}

TEST(RangeFilterPropertyTest, IntervalSnapshotRoundTripIsBitIdentical) {
  CheckSnapshotRoundTrip<rangefilter::IntervalBitmapFilter>(
      "interval", testing::TestSeed(0xF17E4));
}

TEST(RangeFilterPropertyTest, EmptyFilterSnapshotRoundTrips) {
  rangefilter::LearnedRangeFilter empty;
  ASSERT_TRUE(empty.Build({}).ok());
  const std::string path = SnapshotPath("empty");
  ASSERT_TRUE(empty.WriteSnapshot(path).ok());
  auto reopened = rangefilter::LearnedRangeFilter::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_FALSE(reopened.value().MightContainRange(0, ~uint64_t{0}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace li
