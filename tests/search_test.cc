// Property tests for the §3.4 search strategies: every strategy must agree
// with std::lower_bound for present keys, absent keys, and out-of-range
// keys, across predictions of arbitrary quality.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "search/search.h"

namespace li::search {
namespace {

std::vector<uint64_t> TestKeys() {
  return data::GenUniform(5000, /*seed=*/21, 1'000'000);
}

size_t StdLowerBound(const std::vector<uint64_t>& v, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

TEST(BinarySearchTest, MatchesStdLowerBound) {
  const auto keys = TestKeys();
  Xorshift128Plus rng(1);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    EXPECT_EQ(BinarySearch(keys.data(), 0, keys.size(), q),
              StdLowerBound(keys, q));
  }
}

TEST(UpperBoundTest, MatchesStdUpperBound) {
  const auto keys = TestKeys();
  Xorshift128Plus rng(2);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    const size_t expect = static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
    EXPECT_EQ(UpperBound(keys.data(), 0, keys.size(), q), expect);
  }
}

/// Parameterized over prediction error magnitude: biased strategies must be
/// correct whether the hint is perfect or garbage.
class BiasedSearchTest : public ::testing::TestWithParam<int> {};

TEST_P(BiasedSearchTest, BiasedBinaryMatchesStd) {
  const auto keys = TestKeys();
  const int64_t max_off = GetParam();
  Xorshift128Plus rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    const size_t truth = StdLowerBound(keys, q);
    const int64_t off = static_cast<int64_t>(rng.NextBounded(2 * max_off + 1)) -
                        max_off;
    const size_t pred = static_cast<size_t>(std::clamp<int64_t>(
        static_cast<int64_t>(truth) + off, 0,
        static_cast<int64_t>(keys.size()) - 1));
    EXPECT_EQ(BiasedBinarySearch(keys.data(), 0, keys.size(), q, pred), truth);
  }
}

TEST_P(BiasedSearchTest, BiasedQuaternaryMatchesStd) {
  const auto keys = TestKeys();
  const int64_t max_off = GetParam();
  Xorshift128Plus rng(4);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    const size_t truth = StdLowerBound(keys, q);
    const int64_t off = static_cast<int64_t>(rng.NextBounded(2 * max_off + 1)) -
                        max_off;
    const size_t pred = static_cast<size_t>(std::clamp<int64_t>(
        static_cast<int64_t>(truth) + off, 0,
        static_cast<int64_t>(keys.size()) - 1));
    EXPECT_EQ(BiasedQuaternarySearch(keys.data(), 0, keys.size(), q, pred,
                                     static_cast<size_t>(max_off) / 2 + 1),
              truth);
  }
}

TEST_P(BiasedSearchTest, ExponentialMatchesStd) {
  const auto keys = TestKeys();
  const int64_t max_off = GetParam();
  Xorshift128Plus rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    const size_t truth = StdLowerBound(keys, q);
    const int64_t off = static_cast<int64_t>(rng.NextBounded(2 * max_off + 1)) -
                        max_off;
    const size_t pred = static_cast<size_t>(std::clamp<int64_t>(
        static_cast<int64_t>(truth) + off, 0,
        static_cast<int64_t>(keys.size()) - 1));
    EXPECT_EQ(ExponentialSearch(keys.data(), keys.size(), q, pred), truth);
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorMagnitudes, BiasedSearchTest,
                         ::testing::Values(0, 1, 8, 100, 5000));

TEST(InterpolationSearchTest, MatchesStdOnUniform) {
  const auto keys = TestKeys();
  Xorshift128Plus rng(6);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    EXPECT_EQ(InterpolationSearch(keys.data(), 0, keys.size(), q),
              StdLowerBound(keys, q));
  }
}

TEST(InterpolationSearchTest, MatchesStdOnSkewed) {
  const auto keys = data::GenLognormal(5000, 9);
  Xorshift128Plus rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t q = keys[rng.NextBounded(keys.size())] +
                       rng.NextBounded(3) - 1;
    EXPECT_EQ(InterpolationSearch(keys.data(), 0, keys.size(), q),
              StdLowerBound(keys, q));
  }
}

TEST(BranchFreeScanTest, CountsStrictlySmaller) {
  const std::vector<uint64_t> keys = {1, 3, 3, 7, 9, 100};
  EXPECT_EQ(BranchFreeScan(keys.data(), keys.size(), 0), 0u);
  EXPECT_EQ(BranchFreeScan(keys.data(), keys.size(), 1), 0u);
  EXPECT_EQ(BranchFreeScan(keys.data(), keys.size(), 3), 1u);
  EXPECT_EQ(BranchFreeScan(keys.data(), keys.size(), 4), 3u);
  EXPECT_EQ(BranchFreeScan(keys.data(), keys.size(), 1000), 6u);
}

TEST(BranchFreeScanTest, EqualsLowerBoundOnSortedData) {
  const auto keys = TestKeys();
  Xorshift128Plus rng(8);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t q = rng.NextBounded(1'100'000);
    EXPECT_EQ(BranchFreeScan(keys.data(), keys.size(), q),
              StdLowerBound(keys, q));
  }
}

TEST(SearchTest, EmptyAndSingleElementWindows) {
  const std::vector<uint64_t> one = {42};
  EXPECT_EQ(BinarySearch(one.data(), 0, 0, uint64_t{5}), 0u);
  EXPECT_EQ(BinarySearch(one.data(), 0, 1, uint64_t{5}), 0u);
  EXPECT_EQ(BinarySearch(one.data(), 0, 1, uint64_t{42}), 0u);
  EXPECT_EQ(BinarySearch(one.data(), 0, 1, uint64_t{43}), 1u);
  EXPECT_EQ(BiasedBinarySearch(one.data(), 0, 1, uint64_t{43}, 0), 1u);
  EXPECT_EQ(ExponentialSearch(one.data(), 1, uint64_t{43}, 0), 1u);
  EXPECT_EQ(ExponentialSearch(one.data(), 1, uint64_t{5}, 0), 0u);
}

TEST(SearchTest, StringsWorkWithTemplatedSearch) {
  std::vector<std::string> keys = {"alpha", "beta", "delta", "gamma"};
  const std::string q = "canary";
  EXPECT_EQ(BinarySearch(keys.data(), 0, keys.size(), q), 2u);
  EXPECT_EQ(BiasedBinarySearch(keys.data(), 0, keys.size(), q, 3), 2u);
  EXPECT_EQ(ExponentialSearch(keys.data(), keys.size(), q, 0), 2u);
}

TEST(StrategyNameTest, AllNamed) {
  EXPECT_STREQ(StrategyName(Strategy::kBinary), "binary");
  EXPECT_STREQ(StrategyName(Strategy::kBiasedBinary), "biased-binary");
  EXPECT_STREQ(StrategyName(Strategy::kBiasedQuaternary), "biased-quaternary");
  EXPECT_STREQ(StrategyName(Strategy::kExponential), "exponential");
  EXPECT_STREQ(StrategyName(Strategy::kInterpolation), "interpolation");
}

}  // namespace
}  // namespace li::search
