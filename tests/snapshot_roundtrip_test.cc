// Snapshot round-trip conformance: every index class with a
// WriteSnapshot/OpenSnapshot pair is built, persisted, reopened
// zero-copy, and driven through the same query stream as the original —
// results must be bit-identical, not merely plausible (the reopened
// structure serves from the mmapped file, so any layout drift shows up
// as a divergent answer). Writable classes additionally accept writes
// and merges *after* reopening, proving a mapped base composes with
// fresh mutable deltas. Datasets cover uniform-random, skewed
// (zipf-like power-law with heavy duplication), and the paper's
// maps/weblog/lognormal shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "data/strings.h"
#include "dynamic/delta_range_index.h"
#include "dynamic/merge_policy.h"
#include "hash/chained_hash_map.h"
#include "lif/synthesizer.h"
#include "rmi/rmi.h"
#include "snapshot/snapshot.h"

namespace li {
namespace {

using rmi::LinearRmi;
using DeltaRmi = dynamic::DeltaRangeIndex<LinearRmi>;
using ConcRmi = concurrent::ConcurrentWritableIndex<LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

std::string TmpSnap(const std::string& name) {
  return ::testing::TempDir() + "li_roundtrip_" + name + ".snap";
}

size_t StdLowerBound(const std::vector<uint64_t>& v, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

/// Present keys, near-misses, and uniform probes — the standard mixed
/// query stream used by the RMI conformance tests.
std::vector<uint64_t> MixedQueries(const std::vector<uint64_t>& keys,
                                   size_t count, uint64_t seed) {
  std::vector<uint64_t> qs;
  qs.reserve(count + 4);
  Xorshift128Plus rng(seed);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    switch (rng.NextBounded(4)) {
      case 0: qs.push_back(k); break;
      case 1: qs.push_back(k + 1); break;
      case 2: qs.push_back(k == 0 ? 0 : k - 1); break;
      default: qs.push_back(rng.Next()); break;
    }
  }
  qs.push_back(0);
  qs.push_back(keys.front());
  qs.push_back(keys.back());
  qs.push_back(~uint64_t{0});
  return qs;
}

/// Zipf-like skew: key = floor(space / rank^~1) over random ranks, which
/// yields a heavily duplicated head and a long sparse tail.
std::vector<uint64_t> GenZipfish(size_t n, uint64_t seed) {
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t rank = rng.NextBounded(1'000'000) + 1;
    keys.push_back(uint64_t{1'000'000'000'000} / rank);
  }
  std::sort(keys.begin(), keys.end());
  return keys;  // duplicates intentionally kept
}

// ---- RMI ----

class RmiRoundTripTest : public ::testing::TestWithParam<data::DatasetKind> {};

TEST_P(RmiRoundTripTest, ReopenedLookupsBitIdentical) {
  const auto keys = data::Generate(GetParam(), 60'000, 17);
  rmi::RmiConfig config;
  config.num_leaf_models = 600;
  LinearRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  EXPECT_FALSE(built.FromSnapshot());

  const std::string path = TmpSnap(data::DatasetName(GetParam()));
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = LinearRmi::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(reopened.value().FromSnapshot());
  EXPECT_EQ(reopened.value().SizeBytes(), built.SizeBytes());

  for (const uint64_t q : MixedQueries(keys, 20'000, 3)) {
    ASSERT_EQ(reopened.value().LowerBound(q), built.LowerBound(q)) << q;
    ASSERT_EQ(reopened.value().LowerBound(q), StdLowerBound(keys, q)) << q;
  }
  // Batch path serves from the mapping too.
  const auto qs = MixedQueries(keys, 4'096, 5);
  std::vector<size_t> got(qs.size()), want(qs.size());
  reopened.value().LookupBatch(qs, got);
  built.LookupBatch(qs, want);
  EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Datasets, RmiRoundTripTest,
                         ::testing::Values(data::DatasetKind::kMaps,
                                           data::DatasetKind::kWeblog,
                                           data::DatasetKind::kLognormal));

TEST(RmiRoundTripTest, DuplicateHeavyZipfKeys) {
  const auto keys = GenZipfish(50'000, 23);
  rmi::RmiConfig config;
  config.num_leaf_models = 500;
  LinearRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  const std::string path = TmpSnap("zipf");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = LinearRmi::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  for (const uint64_t q : MixedQueries(keys, 20'000, 29)) {
    ASSERT_EQ(reopened.value().LowerBound(q), StdLowerBound(keys, q)) << q;
  }
  std::remove(path.c_str());
}

TEST(RmiRoundTripTest, DoubleKeys) {
  const auto raw = data::GenLognormal(40'000, 31);
  std::vector<double> keys;
  keys.reserve(raw.size());
  for (const uint64_t k : raw) keys.push_back(static_cast<double>(k) * 0.5);
  rmi::RmiConfig config;
  config.num_leaf_models = 400;
  rmi::DoubleRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  const std::string path = TmpSnap("double");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = rmi::DoubleRmi::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  Xorshift128Plus rng(37);
  for (int i = 0; i < 20'000; ++i) {
    const double q = keys[rng.NextBounded(keys.size())] +
                     static_cast<double>(rng.NextBounded(3)) - 1.0;
    ASSERT_EQ(reopened.value().LowerBound(q), built.LowerBound(q)) << q;
  }
  std::remove(path.c_str());
}

TEST(RmiRoundTripTest, CorruptSnapshotRejectedCleanly) {
  const auto keys = data::GenLognormal(10'000, 41);
  rmi::RmiConfig config;
  config.num_leaf_models = 100;
  LinearRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  const std::string path = TmpSnap("corrupt");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());

  // Truncate to half: the envelope check fires, Open returns a Status.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long half = std::ftell(f) / 2;
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), half), 0);
  }
  EXPECT_FALSE(LinearRmi::OpenSnapshot(path).ok());
  std::remove(path.c_str());
}

// ---- Bloom ----

TEST(BloomRoundTripTest, BitmapIdenticalAfterReopen) {
  bloom::BloomFilter built;
  ASSERT_TRUE(built.Init(20'000, 0.01).ok());
  Xorshift128Plus rng(47);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20'000; ++i) keys.push_back(rng.Next());
  for (const uint64_t k : keys) built.Add(k);

  const std::string path = TmpSnap("bloom");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = bloom::BloomFilter::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();

  for (const uint64_t k : keys) {
    ASSERT_TRUE(reopened.value().MightContain(k));
  }
  // Any probe — positive or negative — answers identically: same bits,
  // same hashes.
  for (int i = 0; i < 50'000; ++i) {
    const uint64_t probe = rng.Next();
    ASSERT_EQ(reopened.value().MightContain(probe), built.MightContain(probe));
  }
  std::remove(path.c_str());
}

class LearnedBloomRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = data::GenUrls(20'000, 30'000, 41);
    const size_t third = corpus_.random_negatives.size() / 3;
    train_neg_.assign(corpus_.random_negatives.begin(),
                      corpus_.random_negatives.begin() + third);
    valid_neg_.assign(corpus_.random_negatives.begin() + third,
                      corpus_.random_negatives.begin() + 2 * third);
    test_neg_.assign(corpus_.random_negatives.begin() + 2 * third,
                     corpus_.random_negatives.end());
    classifier::NgramConfig config;
    config.num_buckets = 2048;
    ASSERT_TRUE(model_.Train(corpus_.keys, train_neg_, config).ok());
  }

  data::UrlCorpus corpus_;
  std::vector<std::string> train_neg_, valid_neg_, test_neg_;
  classifier::NgramLogistic model_;
};

TEST_F(LearnedBloomRoundTripTest, ReopenWithResuppliedClassifier) {
  bloom::LearnedBloomFilter<classifier::NgramLogistic> built;
  ASSERT_TRUE(built.Build(&model_, corpus_.keys, valid_neg_, 0.01).ok());

  const std::string path = TmpSnap("learned_bloom");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  // The classifier is not serialized (it is shared, caller-owned state);
  // the caller re-supplies it at open.
  auto reopened = bloom::LearnedBloomFilter<classifier::NgramLogistic>::
      OpenSnapshot(path, &model_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();

  for (const auto& k : corpus_.keys) {
    ASSERT_TRUE(reopened.value().MightContain(k)) << k;
  }
  for (const auto& n : test_neg_) {
    ASSERT_EQ(reopened.value().MightContain(n), built.MightContain(n)) << n;
  }
  std::remove(path.c_str());
}

// ---- Hash ----

std::vector<hash::Record> MakeRecords(const std::vector<uint64_t>& keys) {
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(
        hash::Record{keys[i], i, static_cast<uint32_t>(i & 0xFFFF)});
  }
  return records;
}

class HashRoundTripTest : public ::testing::TestWithParam<hash::HashKind> {};

TEST_P(HashRoundTripTest, FindIdenticalAfterReopen) {
  auto keys = data::GenUniform(30'000, 53);
  // Inject duplicates: Build keeps the first record per key, and the
  // reopened table must preserve exactly that choice.
  keys.resize(29'000);
  for (int i = 0; i < 1'000; ++i) keys.push_back(keys[i]);
  const auto records = MakeRecords(keys);

  hash::ChainedHashMapConfig config;
  config.num_slots = 24'000;
  config.hash.kind = GetParam();
  config.hash.seed = 59;
  hash::ChainedHashMap built;
  ASSERT_TRUE(built.Build(records, config).ok());

  const std::string path = TmpSnap(
      GetParam() == hash::HashKind::kRandom ? "hash_rand" : "hash_cdf");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = hash::ChainedHashMap::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().num_records(), built.num_records());

  Xorshift128Plus rng(61);
  for (const auto& r : records) {
    const hash::Record* a = built.Find(r.key);
    const hash::Record* b = reopened.value().Find(r.key);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->payload, b->payload) << r.key;  // keep-first preserved
  }
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t probe = rng.Next();
    const hash::Record* a = built.Find(probe);
    const hash::Record* b = reopened.value().Find(probe);
    ASSERT_EQ(a == nullptr, b == nullptr) << probe;
    if (a != nullptr) ASSERT_EQ(a->payload, b->payload) << probe;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Kinds, HashRoundTripTest,
                         ::testing::Values(hash::HashKind::kRandom,
                                           hash::HashKind::kLearnedCdf));

// ---- Delta / concurrent / sharded writable wrappers ----

std::vector<uint64_t> SeedKeys(size_t n, uint64_t seed) {
  auto keys = data::GenLognormal(n, seed);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Compares idx against the oracle set on ranks, membership, and a full
/// scan, then proves the reopened index still *writes*: inserts, erases
/// and an explicit merge against a mapped base.
template <typename Idx>
void CheckAndMutate(Idx& idx, std::set<uint64_t>& oracle, uint64_t seed) {
  std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  ASSERT_EQ(idx.Scan(0, ref.size() + 1), ref);
  Xorshift128Plus rng(seed);
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    ASSERT_EQ(idx.Lookup(q), StdLowerBound(ref, q)) << q;
    ASSERT_EQ(idx.Contains(q), oracle.count(q) > 0) << q;
  }
  // Post-reopen writes: the mapped base composes with a fresh delta.
  for (int i = 0; i < 3'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0) << "op " << i;
    } else {
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second) << "op " << i;
    }
  }
  ASSERT_TRUE(idx.Merge().ok());  // consolidates into an owned base
  ref.assign(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    ASSERT_EQ(idx.Lookup(q), StdLowerBound(ref, q)) << q;
  }
}

TEST(DeltaRoundTripTest, SnapshotMidStreamThenKeepWriting) {
  const auto keys = SeedKeys(20'000, 67);
  dynamic::MergePolicy policy;
  policy.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi::Config config;
  config.base.num_leaf_models = 256;
  config.policy = policy;
  DeltaRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());

  // Mutate before snapshotting so the delta buffer has live content —
  // inserts, erases of base keys, and tombstones all serialize.
  Xorshift128Plus rng(71);
  for (int i = 0; i < 4'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(built.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(built.Insert(k), oracle.insert(k).second);
    }
  }

  const std::string path = TmpSnap("delta");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = DeltaRmi::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  CheckAndMutate(reopened.value(), oracle, 73);
  std::remove(path.c_str());
}

TEST(ConcurrentRoundTripTest, QuiesceSnapshotReopenAndWrite) {
  const auto keys = SeedKeys(20'000, 79);
  ConcRmi::Config config;
  config.base.num_leaf_models = 256;
  config.policy.trigger = dynamic::MergeTrigger::kManual;
  config.log_cap = 64;  // force freeze folds before the snapshot
  ConcRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(83);
  for (int i = 0; i < 4'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(built.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(built.Insert(k), oracle.insert(k).second);
    }
  }

  const std::string path = TmpSnap("concurrent");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  // The snapshot is a point-in-time capture: the original keeps serving
  // and writing after the quiesce window closes.
  ASSERT_TRUE(built.Insert(3'000'000'001ull));

  auto reopened = ConcRmi::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  CheckAndMutate(reopened.value(), oracle, 89);
  std::remove(path.c_str());
}

TEST(ShardedRoundTripTest, ManifestComposesPerShardSnapshots) {
  const auto keys = SeedKeys(30'000, 97);
  ShardedRmi::Config config;
  config.inner.base.num_leaf_models = 128;
  config.inner.policy.trigger = dynamic::MergeTrigger::kManual;
  config.num_shards = 4;
  ShardedRmi built;
  ASSERT_TRUE(built.Build(keys, config).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(101);
  for (int i = 0; i < 4'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(built.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(built.Insert(k), oracle.insert(k).second);
    }
  }

  const std::string path = TmpSnap("sharded");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = ShardedRmi::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().num_shards(), built.num_shards());
  CheckAndMutate(reopened.value(), oracle, 103);
  std::remove(path.c_str());
}

// ---- LIF winner ----

TEST(LifRoundTripTest, LinearWinnerReopensViaKindTag) {
  const auto keys = data::GenLognormal(40'000, 107);
  lif::SynthesisSpec spec;
  spec.stage2_sizes = {1'000};
  spec.try_multivariate_top = false;  // constrain the grid to the one
  spec.nn_hidden = {};                // family with a flat snapshot form
  spec.eval_queries = 1'000;
  lif::SynthesizedIndex built;
  ASSERT_TRUE(built.Synthesize(keys, spec).ok());

  const std::string path = TmpSnap("lif");
  ASSERT_TRUE(built.WriteSnapshot(path).ok());
  auto reopened = lif::SynthesizedIndex::OpenSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value().description(), built.description());

  for (const uint64_t q : MixedQueries(keys, 20'000, 109)) {
    ASSERT_EQ(reopened.value().LowerBound(q), built.LowerBound(q)) << q;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace li
