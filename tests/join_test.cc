// Tests for the learned join primitives: all three intersection algorithms
// must agree with a std::set_intersection oracle across overlap regimes.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "rmi/rmi.h"
#include "sort/learned_join.h"

namespace li::sort {
namespace {

struct JoinFixture {
  std::vector<uint64_t> big, small, expect;
  rmi::LinearRmi index;

  /// `overlap` fraction of `small` drawn from `big`, rest random.
  void Init(size_t big_n, size_t small_n, double overlap, uint64_t seed) {
    big = data::GenLognormal(big_n, seed);
    Xorshift128Plus rng(seed + 1);
    small.clear();
    for (size_t i = 0; i < small_n; ++i) {
      if (rng.NextDouble() < overlap) {
        small.push_back(big[rng.NextBounded(big.size())]);
      } else {
        small.push_back(rng.NextBounded(big.back() + 1000));
      }
    }
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());
    expect.clear();
    std::set_intersection(small.begin(), small.end(), big.begin(), big.end(),
                          std::back_inserter(expect));
    rmi::RmiConfig config;
    config.num_leaf_models = std::max<size_t>(64, big_n / 200);
    ASSERT_TRUE(index.Build(big, config).ok());
  }
};

class JoinTest : public ::testing::TestWithParam<double> {};

TEST_P(JoinTest, AllAlgorithmsMatchOracle) {
  JoinFixture f;
  f.Init(100'000, 5000, GetParam(), 11);
  std::vector<uint64_t> merge_out, probe_out, skip_out;
  EXPECT_EQ(LinearMergeIntersect(f.small, f.big, &merge_out),
            f.expect.size());
  EXPECT_EQ(LearnedProbeIntersect(f.small, f.index, &probe_out),
            f.expect.size());
  EXPECT_EQ(LearnedSkipIntersect(f.small, f.index, &skip_out),
            f.expect.size());
  EXPECT_EQ(merge_out, f.expect);
  EXPECT_EQ(probe_out, f.expect);
  EXPECT_EQ(skip_out, f.expect);
}

INSTANTIATE_TEST_SUITE_P(OverlapSweep, JoinTest,
                         ::testing::Values(0.0, 0.3, 0.9, 1.0));

TEST(JoinEdgeTest, EmptyAndDisjointSides) {
  JoinFixture f;
  f.Init(10'000, 100, 0.5, 3);
  std::vector<uint64_t> empty;
  EXPECT_EQ(LinearMergeIntersect(empty, f.big), 0u);
  EXPECT_EQ(LearnedProbeIntersect(std::span<const uint64_t>(), f.index), 0u);
  EXPECT_EQ(LearnedSkipIntersect(std::span<const uint64_t>(), f.index), 0u);
  // Fully disjoint small side (keys beyond big's range).
  std::vector<uint64_t> beyond = {f.big.back() + 1, f.big.back() + 2};
  EXPECT_EQ(LearnedProbeIntersect(beyond, f.index), 0u);
  EXPECT_EQ(LearnedSkipIntersect(beyond, f.index), 0u);
}

TEST(JoinEdgeTest, IdenticalSides) {
  JoinFixture f;
  f.Init(20'000, 1, 1.0, 5);
  std::vector<uint64_t> out;
  EXPECT_EQ(LearnedSkipIntersect(f.big, f.index, &out), f.big.size());
  EXPECT_EQ(out.size(), f.big.size());
}

}  // namespace
}  // namespace li::sort
