// End-to-end integration tests spanning modules: the three §2/§4/§5 index
// families driven through realistic multi-step scenarios, plus randomized
// configuration fuzzing of the RMI build/lookup contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bloom/learned_bloom.h"
#include "btree/readonly_btree.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "data/datasets.h"
#include "data/strings.h"
#include "hash/chained_hash_map.h"
#include "hash/hash_fn.h"
#include "lif/synthesizer.h"
#include "rmi/hybrid.h"
#include "rmi/rmi.h"

namespace li {
namespace {

TEST(IntegrationTest, AnalyticsPipelineOverWeblog) {
  // Build a secondary index over timestamps, answer a batch of time-range
  // aggregation queries, and cross-check every answer against a B-Tree.
  const auto ts = data::GenWeblog(200'000, 77);
  rmi::RmiConfig rmi_cfg;
  rmi_cfg.num_leaf_models = 2000;
  rmi::LinearRmi learned;
  ASSERT_TRUE(learned.Build(ts, rmi_cfg).ok());
  btree::ReadOnlyBTree btree;
  ASSERT_TRUE(btree.Build(ts, 128).ok());

  Xorshift128Plus rng(78);
  for (int q = 0; q < 500; ++q) {
    const uint64_t start = ts[rng.NextBounded(ts.size())];
    const uint64_t end = start + rng.NextBounded(uint64_t{3600} * 1'000'000);
    const size_t a = learned.LowerBound(start);
    const size_t b = learned.LowerBound(end);
    EXPECT_EQ(a, btree.LowerBound(start));
    EXPECT_EQ(b, btree.LowerBound(end));
    EXPECT_LE(a, b);
  }
}

TEST(IntegrationTest, SynthesizedIndexServesPointAndRange) {
  // LIF picks a configuration; the resulting index must serve both query
  // types correctly.
  const auto keys = data::GenMaps(100'000, 79);
  lif::SynthesisSpec spec;
  spec.stage2_sizes = {500, 2000};
  spec.nn_hidden = {};
  spec.eval_queries = 2000;
  lif::SynthesizedIndex index;
  ASSERT_TRUE(index.Synthesize(keys, spec).ok());
  Xorshift128Plus rng(80);
  for (int i = 0; i < 5000; ++i) {
    const size_t idx = rng.NextBounded(keys.size());
    EXPECT_EQ(index.LowerBound(keys[idx]), idx);
  }
  // Range scan: count via two lower bounds equals brute force.
  const uint64_t lo = keys[1000], hi = keys[4321];
  EXPECT_EQ(index.LowerBound(hi) - index.LowerBound(lo), 4321u - 1000u);
}

TEST(IntegrationTest, HashMapBuiltFromRangeIndexKeys) {
  // The same key set indexed as a range index and a point index must agree
  // on membership for 20k probes.
  const auto keys = data::GenLognormal(100'000, 81);
  rmi::RmiConfig config;
  config.num_leaf_models = 1000;
  rmi::LinearRmi range_index;
  ASSERT_TRUE(range_index.Build(keys, config).ok());

  std::vector<hash::Record> records;
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], i, 0});
  }
  hash::ChainedHashMapConfig map_cfg;
  map_cfg.num_slots = keys.size();
  map_cfg.hash.kind = hash::HashKind::kLearnedCdf;
  map_cfg.hash.cdf_leaf_models = 10'000;
  hash::ChainedHashMap map;
  ASSERT_TRUE(map.Build(records, map_cfg).ok());

  Xorshift128Plus rng(82);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t probe = rng.NextBounded(keys.back() + 100);
    EXPECT_EQ(range_index.Contains(probe), map.Find(probe) != nullptr)
        << probe;
  }
}

TEST(IntegrationTest, BloomGuardsColdStorageLookups) {
  // §5 scenario: the existence index filters lookups before they hit the
  // (expensive) key store; zero false negatives means no lost reads.
  auto corpus = data::GenUrls(10'000, 10'000, 83);
  const size_t half = corpus.random_negatives.size() / 2;
  std::vector<std::string> train_neg(corpus.random_negatives.begin(),
                                     corpus.random_negatives.begin() + half);
  std::vector<std::string> live_neg(corpus.random_negatives.begin() + half,
                                    corpus.random_negatives.end());
  classifier::NgramConfig ncfg;
  ncfg.num_buckets = 2048;
  classifier::NgramLogistic model;
  ASSERT_TRUE(model.Train(corpus.keys, train_neg, ncfg).ok());
  bloom::LearnedBloomFilter<classifier::NgramLogistic> filter;
  ASSERT_TRUE(filter.Build(&model, corpus.keys, train_neg, 0.02).ok());

  // Key store = sorted vector; the filter must never hide a real key.
  std::sort(corpus.keys.begin(), corpus.keys.end());
  size_t store_hits = 0, filtered = 0;
  for (const auto& k : corpus.keys) {
    ASSERT_TRUE(filter.MightContain(k));
    store_hits += std::binary_search(corpus.keys.begin(), corpus.keys.end(), k);
  }
  EXPECT_EQ(store_hits, corpus.keys.size());
  for (const auto& u : live_neg) filtered += !filter.MightContain(u);
  // The filter should block the vast majority of absent probes.
  EXPECT_GT(filtered, live_neg.size() * 9 / 10);
}

TEST(IntegrationTest, RandomizedRmiConfigFuzz) {
  // Property fuzz: random datasets x random configurations; LowerBound
  // must equal std::lower_bound on every probe.
  Xorshift128Plus rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const auto kind = static_cast<data::DatasetKind>(rng.NextBounded(3));
    const size_t n = 2000 + rng.NextBounded(60'000);
    const auto keys = data::Generate(kind, n, 1000 + trial);
    rmi::RmiConfig config;
    config.num_leaf_models = 1 + rng.NextBounded(3 * n);
    config.strategy = static_cast<search::Strategy>(rng.NextBounded(5));
    rmi::LinearRmi index;
    ASSERT_TRUE(index.Build(keys, config).ok()) << trial;
    for (int probe = 0; probe < 3000; ++probe) {
      uint64_t q;
      switch (rng.NextBounded(3)) {
        case 0: q = keys[rng.NextBounded(keys.size())]; break;
        case 1: q = keys[rng.NextBounded(keys.size())] + 1; break;
        default: q = rng.NextBounded(keys.back() + 1000); break;
      }
      const size_t expect = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
      ASSERT_EQ(index.LowerBound(q), expect)
          << "trial " << trial << " q=" << q << " leaves "
          << config.num_leaf_models << " strategy "
          << search::StrategyName(config.strategy);
    }
  }
}

TEST(IntegrationTest, MonotonicTopRmi) {
  // Isotonic (monotone) top model — the §3.4 monotonicity option — slots
  // into the same RMI template and stays correct.
  const auto keys = data::GenWeblog(100'000, 85);
  rmi::RmiConfig config;
  config.num_leaf_models = 1000;
  rmi::Rmi<models::IsotonicModel> index;
  ASSERT_TRUE(index.Build(keys, config).ok());
  Xorshift128Plus rng(86);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t q = rng.NextBounded(keys.back() + 1000);
    const size_t expect = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    ASSERT_EQ(index.LowerBound(q), expect) << q;
  }
}

TEST(IntegrationTest, HybridWorstCaseOnAdversarialData) {
  // Adversarial distribution: alternating dense runs and huge gaps breaks
  // linear leaves; hybrid must stay correct and bounded.
  Xorshift128Plus rng(87);
  std::vector<uint64_t> keys;
  uint64_t base = 0;
  while (keys.size() < 100'000) {
    base += uint64_t{1} << (20 + rng.NextBounded(20));  // erratic gaps
    const size_t run = 1 + rng.NextBounded(50);
    for (size_t i = 0; i < run && keys.size() < 100'000; ++i) {
      keys.push_back(base + i * (1 + rng.NextBounded(3)));
    }
    base = keys.back();
  }
  data::MakeStrictlyIncreasing(&keys);
  rmi::HybridConfig config;
  config.rmi.num_leaf_models = 500;
  config.threshold = 32;
  rmi::HybridRmi<models::LinearModel> hybrid;
  ASSERT_TRUE(hybrid.Build(keys, config).ok());
  EXPECT_GT(hybrid.num_btree_leaves(), 0u);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t q = keys[rng.NextBounded(keys.size())];
    const size_t expect = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    ASSERT_EQ(hybrid.LowerBound(q), expect);
  }
}

}  // namespace
}  // namespace li
