// Differential property tests: structurally different index
// implementations answering the same query stream must agree exactly.
// This catches semantic drift that per-module unit tests can miss —
// the B-Tree family, the RMI family and std::lower_bound are mutually
// cross-checked over randomized datasets, seeds and configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "btree/fast_tree.h"
#include "btree/lookup_table.h"
#include "btree/readonly_btree.h"
#include "common/random.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"
#include "rmi/multistage.h"
#include "rmi/quantized_rmi.h"
#include "rmi/rmi.h"
#include "test_seed.h"

namespace li {
namespace {

/// Every range index over the same keys must agree with std::lower_bound
/// on every query — parameterized over dataset seeds.
class RangeIndexDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RangeIndexDifferentialTest, SixImplementationsAgree) {
  const uint64_t seed = testing::TestSeed(GetParam());
  Xorshift128Plus rng(seed);
  const auto kind = static_cast<data::DatasetKind>(rng.NextBounded(3));
  const size_t n = 10'000 + rng.NextBounded(40'000);
  const auto keys = data::Generate(kind, n, seed);

  btree::ReadOnlyBTree btree;
  ASSERT_TRUE(btree.Build(keys, 64 + rng.NextBounded(200)).ok());
  btree::FastTree fast;
  ASSERT_TRUE(fast.Build(keys).ok());
  btree::LookupTable lookup;
  ASSERT_TRUE(lookup.Build(keys).ok());
  rmi::LinearRmi rmi;
  rmi::RmiConfig rmi_cfg;
  rmi_cfg.num_leaf_models = 1 + rng.NextBounded(2 * n);
  ASSERT_TRUE(rmi.Build(keys, rmi_cfg).ok());
  rmi::QuantizedRmi quantized;
  ASSERT_TRUE(quantized.Build(keys, rmi_cfg, models::QuantLevel::kInt16).ok());
  rmi::MultiStageRmi multi;
  rmi::MultiStageConfig ms_cfg;
  ms_cfg.stage_sizes = {1 + rng.NextBounded(64), 1 + rng.NextBounded(n)};
  ASSERT_TRUE(multi.Build(keys, ms_cfg).ok());

  for (int probe = 0; probe < 5000; ++probe) {
    uint64_t q;
    switch (rng.NextBounded(4)) {
      case 0: q = keys[rng.NextBounded(keys.size())]; break;
      case 1: q = keys[rng.NextBounded(keys.size())] + 1; break;
      case 2: q = keys[rng.NextBounded(keys.size())] - 1; break;
      default: q = rng.NextBounded(keys.back() + 1000); break;
    }
    const size_t expect = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    ASSERT_EQ(btree.LowerBound(q), expect) << "btree q=" << q;
    ASSERT_EQ(fast.LowerBound(q), expect) << "fast q=" << q;
    ASSERT_EQ(lookup.LowerBound(q), expect) << "lookup q=" << q;
    ASSERT_EQ(rmi.LowerBound(q), expect) << "rmi q=" << q;
    ASSERT_EQ(quantized.LowerBound(q), expect) << "quantized q=" << q;
    ASSERT_EQ(multi.LowerBound(q), expect) << "multistage q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeIndexDifferentialTest,
                         ::testing::Values(101, 202, 303, 404, 505));

/// Every hash map over the same records must agree with an
/// unordered_map oracle on hits and misses.
class HashMapDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashMapDifferentialTest, ThreeImplementationsAgree) {
  const uint64_t seed = testing::TestSeed(GetParam());
  const auto keys = data::GenUniform(30'000, seed, uint64_t{1} << 44);
  std::vector<hash::Record> records;
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], i, 0});
    oracle[keys[i]] = i;
  }

  hash::ChainedHashMapConfig chained_cfg;
  chained_cfg.num_slots = keys.size();
  chained_cfg.hash.seed = seed;
  hash::ChainedHashMap chained;
  ASSERT_TRUE(chained.Build(records, chained_cfg).ok());
  hash::InplaceChainedMapConfig inplace_cfg;
  inplace_cfg.hash.seed = seed + 1;
  hash::InplaceChainedMap inplace;
  ASSERT_TRUE(inplace.Build(records, inplace_cfg).ok());
  hash::CuckooMap<hash::Record> cuckoo;
  ASSERT_TRUE(cuckoo.Build(records, {}).ok());

  Xorshift128Plus rng(seed + 2);
  for (int probe = 0; probe < 30'000; ++probe) {
    const uint64_t q = rng.NextBounded(2) ? keys[rng.NextBounded(keys.size())]
                                          : rng.Next();
    const auto it = oracle.find(q);
    const bool expect = it != oracle.end();
    const hash::Record* a = chained.Find(q);
    const hash::Record* b = inplace.Find(q);
    const hash::Record* c = cuckoo.Find(q);
    ASSERT_EQ(a != nullptr, expect) << q;
    ASSERT_EQ(b != nullptr, expect) << q;
    ASSERT_EQ(c != nullptr, expect) << q;
    if (expect) {
      EXPECT_EQ(a->payload, it->second);
      EXPECT_EQ(b->payload, it->second);
      EXPECT_EQ(c->payload, it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashMapDifferentialTest,
                         ::testing::Values(11, 22, 33));

/// Range scans via two lower bounds must count exactly the in-range keys,
/// for every index, across range widths.
TEST(RangeScanPropertyTest, CountsMatchBruteForce) {
  const auto keys = data::GenWeblog(50'000, 7);
  rmi::LinearRmi rmi;
  rmi::RmiConfig config;
  config.num_leaf_models = 500;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  btree::ReadOnlyBTree btree;
  ASSERT_TRUE(btree.Build(keys, 128).ok());

  Xorshift128Plus rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t a = keys[rng.NextBounded(keys.size())];
    const uint64_t b = a + rng.NextBounded(uint64_t{1} << (10 + trial % 30));
    size_t expect = 0;
    for (const uint64_t k : keys) expect += (k >= a && k < b);
    ASSERT_EQ(rmi.LowerBound(b) - rmi.LowerBound(a), expect);
    ASSERT_EQ(btree.LowerBound(b) - btree.LowerBound(a), expect);
  }
}

/// Determinism: identical build inputs produce identical lookup behaviour
/// and sizes across separate instances (no hidden global state).
TEST(DeterminismTest, RebuildIsBitIdentical) {
  const auto keys = data::GenLognormal(30'000, 12);
  rmi::RmiConfig config;
  config.num_leaf_models = 300;
  config.train.nn.hidden = {8};
  config.train.nn.epochs = 5;
  rmi::NeuralRmi a, b;
  ASSERT_TRUE(a.Build(keys, config).ok());
  ASSERT_TRUE(b.Build(keys, config).ok());
  EXPECT_EQ(a.SizeBytes(), b.SizeBytes());
  Xorshift128Plus rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t q = rng.NextBounded(keys.back() + 7);
    const auto pa = a.Predict(q);
    const auto pb = b.Predict(q);
    ASSERT_EQ(pa.pos, pb.pos);
    ASSERT_EQ(pa.lo, pb.lo);
    ASSERT_EQ(pa.hi, pb.hi);
    ASSERT_EQ(a.LowerBound(q), b.LowerBound(q));
  }
}

/// Hostile key sets: extreme magnitudes, dense runs at the uint64 edges,
/// huge gaps — all indexes must stay correct.
TEST(AdversarialKeysTest, ExtremesAndGaps) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 1000; ++i) keys.push_back(i);  // dense at 0
  for (uint64_t i = 0; i < 1000; ++i) {
    keys.push_back((uint64_t{1} << 62) + i * 3);  // sparse middle
  }
  for (uint64_t i = 0; i < 1000; ++i) {
    keys.push_back(UINT64_MAX - 2000 + i);  // dense at the top
  }
  data::MakeStrictlyIncreasing(&keys);

  rmi::LinearRmi rmi;
  rmi::RmiConfig config;
  config.num_leaf_models = 64;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  btree::ReadOnlyBTree btree;
  ASSERT_TRUE(btree.Build(keys, 32).ok());

  Xorshift128Plus rng(14);
  for (int i = 0; i < 20'000; ++i) {
    uint64_t q;
    switch (rng.NextBounded(3)) {
      case 0: q = keys[rng.NextBounded(keys.size())]; break;
      case 1: q = rng.Next(); break;
      default: q = keys[rng.NextBounded(keys.size())] + rng.NextBounded(5);
    }
    const size_t expect = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    ASSERT_EQ(rmi.LowerBound(q), expect) << q;
    ASSERT_EQ(btree.LowerBound(q), expect) << q;
  }
  // The exact extremes: 0 is a stored key; UINT64_MAX is above all keys
  // (the top run ends at UINT64_MAX - 1001).
  EXPECT_EQ(rmi.LowerBound(0), 0u);
  EXPECT_TRUE(rmi.Contains(0));
  EXPECT_EQ(rmi.LowerBound(UINT64_MAX), keys.size());
  EXPECT_FALSE(rmi.Contains(UINT64_MAX));
  EXPECT_TRUE(rmi.Contains(keys.back()));
}

}  // namespace
}  // namespace li
