// Online shard re-balancing under skewed insert streams (the drift case
// ShardedIndex's split/coalesce machinery exists to absorb), TSan-able
// like the rest of the concurrent suite.
//
// Coverage:
//  * append/moving-hotspot and zipf insert skews vs a std::set oracle,
//    free-racing writers (disjoint owned key slices, so return values
//    stay exactly checkable with no external serialization) +
//    free-running readers, with linearizable snapshot checks landing
//    *between* split/coalesce publishes (the rebalance worker keeps
//    running while the snapshots are verified);
//  * the post-rebalance invariant: max/mean shard mass bounded by the
//    configured imbalance factor once the worker quiesces;
//  * coalescing of erase-drained shards;
//  * fixed boundaries when rebalancing is disabled (the pre-PR-5
//    behavior stays available);
//  * shard-grouped LookupBatch == per-key Lookup across publishes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"
#include "test_seed.h"

namespace li {
namespace {

using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

static_assert(ShardedRmi::kRebalanceCapable);

/// First failure observed by any thread; asserted on the main thread
/// (gtest asserts are not thread-safe off-thread).
class FailureLog {
 public:
  void Record(const std::string& msg) {
    std::lock_guard<std::mutex> lk(mu_);
    if (first_.empty()) first_ = msg;
  }
  bool ok() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_.empty();
  }
  std::string first() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  std::string first_;
};

std::vector<uint64_t> SeedKeys(size_t n, uint64_t seed) {
  auto keys = data::GenLognormal(n, seed);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Small shards, aggressive thresholds: splits and coalesces fire within
/// a few thousand ops instead of millions.
ShardedRmi::Config RebalancingConfig(size_t shards, double factor) {
  ShardedRmi::Config cfg;
  cfg.inner.base.num_leaf_models = 64;
  cfg.inner.policy.min_delta_entries = 256;
  cfg.inner.policy.max_delta_entries = 512;
  cfg.inner.log_cap = 128;
  cfg.num_shards = shards;
  cfg.rebalance.enabled = true;
  cfg.rebalance.max_imbalance = factor;
  cfg.rebalance.min_split_keys = 512;
  cfg.rebalance.check_stride = 64;
  cfg.rebalance.scan_chunk = 4096;
  return cfg;
}

/// Free-running reader: invariants that hold at any instant, even with
/// writes, merges and rebalance publishes in flight. Every 64th op runs
/// the shard-grouped batch path so cutovers race it under TSan.
void ReaderBody(const ShardedRmi& idx, const std::atomic<bool>& stop,
                FailureLog& log, uint64_t seed, size_t max_live,
                uint64_t key_space) {
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> batch(32);
  std::vector<size_t> ranks(32);
  uint64_t ops = 0;
  while (!stop.load(std::memory_order_relaxed) && log.ok()) {
    const uint64_t q = rng.NextBounded(key_space);
    const size_t rank = idx.Lookup(q);
    if (rank > max_live) {
      log.Record("Lookup rank " + std::to_string(rank) +
                 " exceeds live-count envelope");
      return;
    }
    (void)idx.Contains(q);
    if ((ops & 63) == 0) {
      for (auto& b : batch) b = rng.NextBounded(key_space);
      idx.LookupBatch(batch, ranks);
      for (const size_t r : ranks) {
        if (r > max_live) {
          log.Record("LookupBatch rank exceeds live-count envelope");
          return;
        }
      }
      const auto scan = idx.Scan(q, 24);
      for (size_t i = 0; i + 1 < scan.size(); ++i) {
        if (!(scan[i] < scan[i + 1])) {
          log.Record("Scan not strictly ascending across shards");
          return;
        }
      }
    }
    ++ops;
  }
}

/// Quiesced-writer snapshot check: exact oracle equivalence. The
/// rebalance worker may still be publishing new ShardMaps underneath —
/// reads must stay exact because no write is in flight.
void VerifySnapshot(const ShardedRmi& idx, const std::set<uint64_t>& oracle,
                    uint64_t seed, uint64_t key_space) {
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  ASSERT_EQ(idx.Scan(0, ref.size() + 10), ref);
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> probes;
  for (int p = 0; p < 400; ++p) probes.push_back(rng.NextBounded(key_space));
  std::vector<size_t> batched(probes.size());
  idx.LookupBatch(probes, batched);
  for (size_t p = 0; p < probes.size(); ++p) {
    const uint64_t q = probes[p];
    const size_t want = static_cast<size_t>(
        std::lower_bound(ref.begin(), ref.end(), q) - ref.begin());
    ASSERT_EQ(idx.Lookup(q), want) << "probe " << q;
    ASSERT_EQ(batched[p], want) << "batched probe " << q;
    ASSERT_EQ(idx.Contains(q), oracle.count(q) > 0) << "probe " << q;
  }
}

/// Full quiesce: one request catches drift the last check_stride
/// missed, and the self-re-arming worker drains every remaining
/// split/coalesce before WaitForRebalances returns.
void DrainRebalances(ShardedRmi& idx) {
  idx.RequestRebalance();
  idx.WaitForRebalances();
  idx.WaitForMerges();
  ASSERT_TRUE(idx.last_rebalance_status().ok());
}

/// Skewed writers + readers + live rebalancing, with NO external writer
/// serialization: writer w owns the insert-stream positions congruent
/// to w (disjoint, duplicate-free, fresh keys), so Insert/Erase return
/// values are exactly checkable without any lock while the writers
/// genuinely race each other — and the seal/dual-write/cutover
/// machinery — through the index. The oracle is folded in post-hoc per
/// round (deterministic from the ownership scheme); erases tombstone
/// every 5th owned key so splits replay both op kinds.
void RunSkewedStress(ShardedRmi& idx, const std::vector<uint64_t>& base,
                     const std::vector<uint64_t>& inserts, size_t writers,
                     uint64_t key_space, uint64_t seed) {
  std::set<uint64_t> oracle(base.begin(), base.end());
  FailureLog log;
  std::atomic<bool> stop{false};
  const size_t max_live = base.size() + inserts.size() + 1;

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      ReaderBody(idx, stop, log, seed * 31 + r, max_live, key_space);
    });
  }
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    const size_t lo = round * inserts.size() / kRounds;
    const size_t hi = (round + 1) * inserts.size() / kRounds;
    std::vector<std::thread> pool;
    for (size_t w = 0; w < writers; ++w) {
      pool.emplace_back([&, w] {
        for (size_t i = lo + w; i < hi && log.ok(); i += writers) {
          if (!idx.Insert(inserts[i])) {
            log.Record("Insert of owned fresh key returned false");
            return;
          }
        }
        for (size_t i = lo + w; i < hi && log.ok(); i += 5 * writers) {
          if (!idx.Erase(inserts[i])) {
            log.Record("Erase of owned live key returned false");
            return;
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    ASSERT_TRUE(log.ok()) << log.first();
    for (size_t i = lo; i < hi; ++i) oracle.insert(inserts[i]);
    for (size_t w = 0; w < writers; ++w) {
      for (size_t i = lo + w; i < hi; i += 5 * writers) {
        oracle.erase(inserts[i]);
      }
    }
    // Linearizable snapshot between publishes, readers still hammering.
    VerifySnapshot(idx, oracle, seed ^ (round + 1), key_space);
    if (::testing::Test::HasFatalFailure()) break;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  DrainRebalances(idx);
  VerifySnapshot(idx, oracle, seed ^ 0xabcd, key_space);
}

TEST(ShardRebalanceTest, AppendHotspotSplitsAndBoundsImbalance) {
  // Pure append beyond the max build key: every insert lands in the
  // rightmost shard — the unbounded-head-shard case.
  const auto keys = SeedKeys(16'000, testing::TestSeed(71));
  auto cfg = RebalancingConfig(4, 2.0);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  uint64_t next = keys.back() + 1;
  Xorshift128Plus rng(testing::TestSeed(711));
  for (int i = 0; i < 16'000; ++i) {
    const uint64_t k = next;
    next += 1 + rng.NextBounded(16);
    ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
  }
  DrainRebalances(idx);
  const auto cs = idx.ConcurrentStats();
  EXPECT_GT(cs.shard_splits, 0u);
  EXPECT_GT(cs.shards, 4u);
  EXPECT_GT(cs.shard_maps_published, 1u);
  EXPECT_LE(cs.shard_imbalance, cfg.rebalance.max_imbalance + 0.05);
  VerifySnapshot(idx, oracle, 0x71, next + 100);
}

TEST(ShardRebalanceTest, EraseDrainedShardsCoalesce) {
  const auto keys = SeedKeys(24'000, testing::TestSeed(73));
  auto cfg = RebalancingConfig(8, 2.0);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  // Drain everything below the 6/8 quantile: the left shards empty out
  // and must coalesce away.
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  const uint64_t cut = keys[keys.size() * 6 / 8];
  for (const uint64_t k : keys) {
    if (k < cut) {
      ASSERT_TRUE(idx.Erase(k));
      oracle.erase(k);
    }
  }
  DrainRebalances(idx);
  const auto cs = idx.ConcurrentStats();
  EXPECT_GT(cs.shard_coalesces, 0u);
  EXPECT_LT(cs.shards, 8u);
  VerifySnapshot(idx, oracle, 0x73, keys.back() + 100);
}

TEST(ShardRebalanceTest, DisabledRebalanceKeepsBoundariesFixed) {
  const auto keys = SeedKeys(8'000, testing::TestSeed(79));
  auto cfg = RebalancingConfig(4, 2.0);
  cfg.rebalance.enabled = false;
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  uint64_t next = keys.back() + 1;
  for (int i = 0; i < 8'000; ++i) idx.Insert(next += 2);
  idx.WaitForRebalances();
  idx.WaitForMerges();
  const auto cs = idx.ConcurrentStats();
  EXPECT_EQ(cs.shard_splits, 0u);
  EXPECT_EQ(cs.shard_coalesces, 0u);
  EXPECT_EQ(cs.shard_maps_published, 1u);
  EXPECT_EQ(cs.shards, 4u);
  EXPECT_GT(cs.shard_imbalance, 2.0);  // the drift rebalancing would fix
}

TEST(ShardRebalanceTest, ZipfInsertStressAgainstOracle) {
  const auto keys = SeedKeys(16'000, testing::TestSeed(83));
  lif::InsertSkew skew;
  skew.kind = lif::InsertSkew::Kind::kZipf;
  skew.zipf_s = 1.2;
  const lif::ReadWriteWorkload w = lif::MakeSkewedReadWriteWorkload(
      keys, 12'000, 1.0, 64, 833, skew);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(w.base, RebalancingConfig(4, 2.0)).ok());
  RunSkewedStress(idx, w.base, w.inserts, /*writers=*/3,
                  /*key_space=*/keys.back() + 200'000,
                  /*seed=*/testing::TestSeed(3003));
  EXPECT_GT(idx.ConcurrentStats().shard_splits, 0u);
}

TEST(ShardRebalanceTest, MovingHotspotStressAgainstOracle) {
  const auto keys = SeedKeys(16'000, testing::TestSeed(89));
  lif::InsertSkew skew;
  skew.kind = lif::InsertSkew::Kind::kMovingHotspot;
  skew.hotspot_fraction = 0.05;
  const lif::ReadWriteWorkload w = lif::MakeSkewedReadWriteWorkload(
      keys, 12'000, 1.0, 64, 899, skew);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(w.base, RebalancingConfig(4, 2.0)).ok());
  RunSkewedStress(idx, w.base, w.inserts, /*writers=*/3,
                  /*key_space=*/keys.back() + 200'000,
                  /*seed=*/testing::TestSeed(4004));
}

TEST(ShardRebalanceTest, ManualRequestWorksWithAutoTriggerOff) {
  const auto keys = SeedKeys(12'000, testing::TestSeed(97));
  auto cfg = RebalancingConfig(2, 1.4);
  cfg.rebalance.enabled = false;  // no writer-side trigger...
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  uint64_t next = keys.back() + 1;
  for (int i = 0; i < 16'000; ++i) idx.Insert(next += 2);
  // ...but an explicit request still rebalances.
  DrainRebalances(idx);
  EXPECT_GT(idx.ConcurrentStats().shard_splits, 0u);
  EXPECT_LE(idx.CurrentImbalance(), cfg.rebalance.max_imbalance + 0.05);
}

}  // namespace
}  // namespace li
