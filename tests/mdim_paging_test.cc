// Tests for the multi-dimensional learned index (Morton curve + BIGMIN +
// learned seeks vs grid baseline) and the Appendix-D.2 paged index.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "mdim/mdim_index.h"
#include "mdim/morton.h"
#include "paging/paged_index.h"

namespace li {
namespace {

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Xorshift128Plus rng(1);
  for (int i = 0; i < 100'000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.Next());
    const uint32_t y = static_cast<uint32_t>(rng.Next());
    uint32_t dx, dy;
    mdim::MortonDecode(mdim::MortonEncode(x, y), &dx, &dy);
    ASSERT_EQ(dx, x);
    ASSERT_EQ(dy, y);
  }
}

TEST(MortonTest, OrderIsMonotonePerDimension) {
  // Growing one coordinate never decreases the z-code.
  Xorshift128Plus rng(2);
  for (int i = 0; i < 10'000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBounded(1u << 30));
    const uint32_t y = static_cast<uint32_t>(rng.NextBounded(1u << 30));
    EXPECT_LT(mdim::MortonEncode(x, y), mdim::MortonEncode(x + 1, y));
    EXPECT_LT(mdim::MortonEncode(x, y), mdim::MortonEncode(x, y + 1));
  }
}

TEST(MortonTest, InRectMatchesCoordinateCheck) {
  Xorshift128Plus rng(3);
  for (int i = 0; i < 50'000; ++i) {
    const uint32_t x0 = static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t y0 = static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t x1 = x0 + static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t y1 = y0 + static_cast<uint32_t>(rng.NextBounded(1000));
    const uint32_t px = static_cast<uint32_t>(rng.NextBounded(2500));
    const uint32_t py = static_cast<uint32_t>(rng.NextBounded(2500));
    const bool expect = px >= x0 && px <= x1 && py >= y0 && py <= y1;
    EXPECT_EQ(mdim::MortonInRect(mdim::MortonEncode(px, py),
                                 mdim::MortonEncode(x0, y0),
                                 mdim::MortonEncode(x1, y1)),
              expect);
  }
}

TEST(MortonTest, BigMinAgainstBruteForce) {
  // Exhaustive check on a small grid: BIGMIN must equal the smallest
  // in-rectangle z-code strictly greater than the probe code.
  const uint32_t kGrid = 16;
  Xorshift128Plus rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t x0 = static_cast<uint32_t>(rng.NextBounded(kGrid));
    const uint32_t y0 = static_cast<uint32_t>(rng.NextBounded(kGrid));
    const uint32_t x1 =
        x0 + static_cast<uint32_t>(rng.NextBounded(kGrid - x0));
    const uint32_t y1 =
        y0 + static_cast<uint32_t>(rng.NextBounded(kGrid - y0));
    const uint64_t zmin = mdim::MortonEncode(x0, y0);
    const uint64_t zmax = mdim::MortonEncode(x1, y1);
    // All in-rect codes, sorted.
    std::vector<uint64_t> inside;
    for (uint32_t x = x0; x <= x1; ++x) {
      for (uint32_t y = y0; y <= y1; ++y) {
        inside.push_back(mdim::MortonEncode(x, y));
      }
    }
    std::sort(inside.begin(), inside.end());
    for (uint64_t code = zmin; code <= zmax; ++code) {
      bool valid = false;
      const uint64_t got = mdim::BigMin(code, zmin, zmax, &valid);
      const auto it = std::upper_bound(inside.begin(), inside.end(), code);
      if (it == inside.end()) {
        EXPECT_FALSE(valid) << "code=" << code;
      } else {
        ASSERT_TRUE(valid) << "code=" << code;
        EXPECT_EQ(got, *it) << "code=" << code << " rect=(" << x0 << ","
                            << y0 << ")-(" << x1 << "," << y1 << ")";
      }
    }
  }
}

std::vector<mdim::Point> RandomPoints(size_t n, uint64_t seed,
                                      uint32_t range) {
  Xorshift128Plus rng(seed);
  std::vector<mdim::Point> pts(n);
  for (auto& p : pts) {
    p.x = static_cast<uint32_t>(rng.NextBounded(range));
    p.y = static_cast<uint32_t>(rng.NextBounded(range));
  }
  return pts;
}

TEST(LearnedZIndexTest, RangeQueryMatchesBruteForce) {
  const auto pts = RandomPoints(50'000, 5, 1u << 20);
  mdim::LearnedZIndex index;
  ASSERT_TRUE(index.Build(pts, 2048).ok());
  Xorshift128Plus rng(6);
  std::vector<mdim::Point> got;
  for (int trial = 0; trial < 200; ++trial) {
    mdim::Rect rect;
    rect.x0 = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    rect.y0 = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    rect.x1 = rect.x0 + static_cast<uint32_t>(rng.NextBounded(1u << 16));
    rect.y1 = rect.y0 + static_cast<uint32_t>(rng.NextBounded(1u << 16));
    index.RangeQuery(rect, &got);
    // Brute force (dedup exactly like the index does).
    std::set<uint64_t> expect;
    for (const auto& p : pts) {
      if (p.x >= rect.x0 && p.x <= rect.x1 && p.y >= rect.y0 &&
          p.y <= rect.y1) {
        expect.insert(mdim::MortonEncode(p.x, p.y));
      }
    }
    ASSERT_EQ(got.size(), expect.size()) << "trial " << trial;
    for (const auto& p : got) {
      EXPECT_TRUE(expect.count(mdim::MortonEncode(p.x, p.y)));
    }
  }
}

TEST(LearnedZIndexTest, ContainsSemantics) {
  const auto pts = RandomPoints(20'000, 7, 1u << 16);
  mdim::LearnedZIndex index;
  ASSERT_TRUE(index.Build(pts, 1024).ok());
  for (size_t i = 0; i < pts.size(); i += 13) {
    EXPECT_TRUE(index.Contains(pts[i]));
  }
  std::set<uint64_t> codes;
  for (const auto& p : pts) codes.insert(mdim::MortonEncode(p.x, p.y));
  Xorshift128Plus rng(8);
  for (int i = 0; i < 10'000; ++i) {
    mdim::Point p{static_cast<uint32_t>(rng.NextBounded(1u << 16)),
                  static_cast<uint32_t>(rng.NextBounded(1u << 16))};
    if (!codes.count(mdim::MortonEncode(p.x, p.y))) {
      EXPECT_FALSE(index.Contains(p));
    }
  }
}

TEST(GridIndexTest, MatchesLearnedIndexResults) {
  const auto pts = RandomPoints(30'000, 9, 1u << 18);
  mdim::LearnedZIndex learned;
  mdim::GridIndex grid;
  ASSERT_TRUE(learned.Build(pts, 1024).ok());
  ASSERT_TRUE(grid.Build(pts, 128).ok());
  Xorshift128Plus rng(10);
  std::vector<mdim::Point> a, b;
  for (int trial = 0; trial < 100; ++trial) {
    mdim::Rect rect;
    rect.x0 = static_cast<uint32_t>(rng.NextBounded(1u << 18));
    rect.y0 = static_cast<uint32_t>(rng.NextBounded(1u << 18));
    rect.x1 = rect.x0 + static_cast<uint32_t>(rng.NextBounded(1u << 14));
    rect.y1 = rect.y0 + static_cast<uint32_t>(rng.NextBounded(1u << 14));
    learned.RangeQuery(rect, &a);
    grid.RangeQuery(rect, &b);
    // Grid may report duplicates of duplicated input points; compare sets.
    std::set<uint64_t> sa, sb;
    for (const auto& p : a) sa.insert(mdim::MortonEncode(p.x, p.y));
    for (const auto& p : b) sb.insert(mdim::MortonEncode(p.x, p.y));
    ASSERT_EQ(sa, sb) << "trial " << trial;
  }
}

TEST(SimulatedDiskTest, StoreAndReadBack) {
  const auto keys = data::GenUniform(10'000, 11);
  paging::SimulatedDisk disk;
  ASSERT_TRUE(disk.Store(keys, 256).ok());
  EXPECT_EQ(disk.num_pages(), (keys.size() + 255) / 256);
  // Logical page p starts at keys[p * 256].
  for (size_t lp = 0; lp < disk.num_logical_pages(); ++lp) {
    EXPECT_EQ(disk.FirstKeyOfLogicalPage(lp), keys[lp * 256]);
    const auto page = disk.ReadPage(disk.PhysicalPageOf(lp));
    ASSERT_FALSE(page.empty());
    EXPECT_EQ(page.front(), keys[lp * 256]);
  }
  EXPECT_EQ(disk.page_reads(), disk.num_logical_pages());
}

TEST(SimulatedDiskTest, SliceAccounting) {
  const auto keys = data::GenUniform(1024, 12);
  paging::SimulatedDisk disk;
  ASSERT_TRUE(disk.Store(keys, 256).ok());
  disk.ResetCounters();
  const auto slice = disk.ReadPageSlice(disk.PhysicalPageOf(0), 10, 20);
  EXPECT_EQ(slice.size(), 10u);
  EXPECT_EQ(disk.bytes_read(), 10 * sizeof(uint64_t));
  EXPECT_EQ(disk.page_reads(), 1u);
}

TEST(PagedIndexTest, FindsEveryKeyWithOnePageRead) {
  const auto keys = data::GenWeblog(100'000, 13);
  paging::SimulatedDisk disk;
  ASSERT_TRUE(disk.Store(keys, 512).ok());
  paging::PagedLearnedIndex index;
  ASSERT_TRUE(index.Build(keys, &disk, 2048).ok());
  disk.ResetCounters();
  size_t probes = 0;
  for (size_t i = 0; i < keys.size(); i += 7) {
    const auto pos = index.Find(keys[i]);
    ASSERT_TRUE(pos.has_value()) << i;
    EXPECT_EQ(*pos, i);
    ++probes;
  }
  // The error-bounded slice should almost always hit on the first read.
  EXPECT_LT(static_cast<double>(disk.page_reads()),
            static_cast<double>(probes) * 1.2);
}

TEST(PagedIndexTest, SliceReadsBeatFullPages) {
  // Appendix D.2: the min/max error window shrinks the bytes read.
  const auto keys = data::GenMaps(100'000, 14);
  paging::SimulatedDisk disk;
  ASSERT_TRUE(disk.Store(keys, 1024).ok());
  paging::PagedLearnedIndex index;
  ASSERT_TRUE(index.Build(keys, &disk, 4096).ok());
  disk.ResetCounters();
  const size_t probes = 5000;
  for (size_t i = 0; i < probes; ++i) {
    index.Find(keys[(i * 37) % keys.size()]);
  }
  const double bytes_per_probe =
      static_cast<double>(disk.bytes_read()) / probes;
  EXPECT_LT(bytes_per_probe, 1024 * sizeof(uint64_t) / 4.0);
}

TEST(PagedIndexTest, AbsentKeysReturnNullopt) {
  const auto keys = data::GenUniform(20'000, 15, uint64_t{1} << 40);
  paging::SimulatedDisk disk;
  ASSERT_TRUE(disk.Store(keys, 256).ok());
  paging::PagedLearnedIndex index;
  ASSERT_TRUE(index.Build(keys, &disk, 1024).ok());
  std::set<uint64_t> keyset(keys.begin(), keys.end());
  Xorshift128Plus rng(16);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) {
      EXPECT_FALSE(index.Find(probe).has_value());
    }
  }
}

TEST(PagedIndexTest, CountRangeMatchesBruteForce) {
  const auto keys = data::GenLognormal(50'000, 17);
  paging::SimulatedDisk disk;
  ASSERT_TRUE(disk.Store(keys, 256).ok());
  paging::PagedLearnedIndex index;
  ASSERT_TRUE(index.Build(keys, &disk, 1024).ok());
  Xorshift128Plus rng(18);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t a = keys[rng.NextBounded(keys.size())];
    const uint64_t b = keys[rng.NextBounded(keys.size())];
    const uint64_t lo = std::min(a, b), hi = std::max(a, b);
    size_t expect = 0;
    for (const uint64_t k : keys) expect += (k >= lo && k < hi);
    ASSERT_EQ(index.CountRange(lo, hi), expect) << trial;
  }
}

}  // namespace
}  // namespace li
