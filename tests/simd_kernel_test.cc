// SIMD kernel conformance suite: every compiled-and-supported dispatch
// level must agree bit-for-bit with the scalar reference kernels — on edge
// inputs (empty / 1-key / odd-length batches, duplicate keys, window ends,
// denormal and extreme doubles, NaN/infinity products) and end-to-end
// (RmiIndex::LookupBatch, hash SlotBatch/FindBatch) under forced-level
// dispatch. The concurrent point wrapper rides the same matrix: its
// overlay-aware Find/FindBatch must stay bit-exact across levels when
// quiesced, and level-pinned batch reads must hold the payload invariant
// while a writer floods inserts and background rehashes republish the
// base mid-probe. The CI matrix runs this suite under ASan/UBSan and in
// the portable LI_NATIVE_ARCH=OFF build at forced-scalar and forced-AVX2.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_point_index.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"
#include "rmi/rmi.h"
#include "simd/dispatch.h"

namespace li::simd {
namespace {

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels;
  for (int l = 0; l < kNumLevels; ++l) {
    const auto level = static_cast<Level>(l);
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

// Batch lengths straddling every vector width and remainder shape.
const size_t kBatchSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64,
                              65, 100, 127, 128, 129};

std::vector<double> EdgeDoubles(size_t n, uint64_t seed) {
  const double specials[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      1.5,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      4503599627370495.5,   // 2^52 - 0.5: largest non-integer double
      4503599627370496.0,   // 2^52
      9007199254740993.0,   // 2^53 + 1 territory
      1e18,
      -1e18,
  };
  std::vector<double> xs(n);
  Xorshift128Plus rng(seed);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBounded(4) == 0) {
      xs[i] = specials[rng.NextBounded(std::size(specials))];
    } else {
      xs[i] = (rng.NextDouble() - 0.5) * 2e12;
    }
  }
  return xs;
}

std::vector<uint64_t> EdgeUints(size_t n, uint64_t seed) {
  const uint64_t specials[] = {
      0,
      1,
      2,
      (uint64_t{1} << 52) - 1,
      uint64_t{1} << 52,
      (uint64_t{1} << 52) + 1,
      (uint64_t{1} << 53) + 1,
      uint64_t{1} << 63,
      (uint64_t{1} << 63) + 1,
      std::numeric_limits<uint64_t>::max(),
      std::numeric_limits<uint64_t>::max() - 1,
  };
  std::vector<uint64_t> keys(n);
  Xorshift128Plus rng(seed);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.NextBounded(4) == 0 ? specials[rng.NextBounded(
                                            std::size(specials))]
                                      : rng.Next();
  }
  return keys;
}

// Model coefficient sets covering benign, degenerate, overflowing, and
// NaN-producing regimes.
struct Coeffs {
  double slope, intercept;
};
const Coeffs kCoeffs[] = {
    {1e-6, 100.0},     {0.0, 0.0},           {0.0, 42.5},
    {-3.5, 1e6},       {1e300, 1e300},       {-1e300, -1e300},
    {1.0, std::numeric_limits<double>::quiet_NaN()},
    {std::numeric_limits<double>::infinity(), 0.0},
    {2.5e-13, -17.0},
};

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndForceRoundTrips) {
  EXPECT_TRUE(LevelSupported(Level::kScalar));
  EXPECT_FALSE(IsForced());
  {
    ScopedLevel pin(Level::kScalar);
    ASSERT_TRUE(pin.status().ok());
    EXPECT_TRUE(IsForced());
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
    EXPECT_STREQ(GetKernels().name, "scalar");
  }
  EXPECT_FALSE(IsForced());
}

TEST(SimdDispatchTest, ForcingUnsupportedLevelFails) {
  for (int l = 0; l < kNumLevels; ++l) {
    const auto level = static_cast<Level>(l);
    if (LevelSupported(level)) continue;
    EXPECT_FALSE(ForceLevel(level).ok()) << LevelName(level);
    EXPECT_FALSE(IsForced());
  }
}

TEST(SimdDispatchTest, KernelsForUnsupportedFallsBackToScalar) {
  for (int l = 0; l < kNumLevels; ++l) {
    const auto level = static_cast<Level>(l);
    if (!LevelSupported(level)) {
      EXPECT_STREQ(KernelsFor(level).name, "scalar") << LevelName(level);
    }
  }
}

TEST(SimdKernelTest, RouteMatchesScalarOnEdgeInputs) {
  const Kernels& ref = KernelsFor(Level::kScalar);
  for (const Level level : SupportedLevels()) {
    const Kernels& k = KernelsFor(level);
    for (const size_t n : kBatchSizes) {
      const auto xs = EdgeDoubles(n, 1000 + n);
      for (const Coeffs& c : kCoeffs) {
        for (const uint32_t max_leaf : {0u, 1u, 9999u, 0x7FFFFFFEu,
                                        0xFFFFFFFEu}) {
          std::vector<uint32_t> got(n + 1, 0xABABABAB);
          std::vector<uint32_t> want(n + 1, 0xABABABAB);
          k.route(xs.data(), n, c.slope, c.intercept, 0.37, max_leaf,
                  got.data());
          ref.route(xs.data(), n, c.slope, c.intercept, 0.37, max_leaf,
                    want.data());
          ASSERT_EQ(got, want) << k.name << " n=" << n << " slope="
                               << c.slope << " max_leaf=" << max_leaf;
        }
      }
    }
  }
}

TEST(SimdKernelTest, PredictRunMatchesScalarOnEdgeInputs) {
  const Kernels& ref = KernelsFor(Level::kScalar);
  for (const Level level : SupportedLevels()) {
    const Kernels& k = KernelsFor(level);
    for (const size_t n : kBatchSizes) {
      const auto xs = EdgeDoubles(n, 2000 + n);
      for (const Coeffs& c : kCoeffs) {
        for (const uint64_t max_pos :
             {uint64_t{0}, uint64_t{1}, uint64_t{999'999},
              (uint64_t{1} << 52) - 1, uint64_t{1} << 52,
              std::numeric_limits<uint64_t>::max()}) {
          std::vector<uint64_t> got(n + 1, 0xCDCDCDCD);
          std::vector<uint64_t> want(n + 1, 0xCDCDCDCD);
          k.predict_run(xs.data(), n, c.slope, c.intercept, max_pos,
                        got.data());
          ref.predict_run(xs.data(), n, c.slope, c.intercept, max_pos,
                          want.data());
          ASSERT_EQ(got, want) << k.name << " n=" << n << " slope="
                               << c.slope << " max_pos=" << max_pos;
        }
      }
    }
  }
}

TEST(SimdKernelTest, BoundedSearchesMatchStdAlgorithms) {
  // Sorted u64 data with heavy duplicates; windows of every width around
  // the scan-handoff threshold, pinned at array ends and mid-array.
  std::vector<uint64_t> data;
  Xorshift128Plus rng(77);
  uint64_t v = 0;
  for (size_t i = 0; i < 400; ++i) {
    v += rng.NextBounded(3);  // duplicates with p ~ 1/3
    data.push_back(v);
  }
  std::vector<double> ddata(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ddata[i] = static_cast<double>(data[i]) * 0.25;
  }
  const size_t n = data.size();
  const size_t windows[][2] = {{0, 0},     {0, 1},   {0, n},     {n, n},
                               {5, 5},     {5, 6},   {10, 70},   {10, 74},
                               {10, 75},   {3, 130}, {n - 1, n}, {n - 64, n},
                               {100, 101}, {0, 63},  {0, 64},    {0, 65}};
  for (const Level level : SupportedLevels()) {
    const Kernels& k = KernelsFor(level);
    for (const auto& w : windows) {
      const size_t lo = w[0], hi = w[1];
      for (size_t qi = 0; qi < 200; ++qi) {
        const uint64_t q = qi < data.size() ? data[qi] + qi % 3 - 1
                                            : rng.NextBounded(v + 10);
        const size_t want_lb = static_cast<size_t>(
            std::lower_bound(data.begin() + lo, data.begin() + hi, q) -
            data.begin());
        const size_t want_ub = static_cast<size_t>(
            std::upper_bound(data.begin() + lo, data.begin() + hi, q) -
            data.begin());
        ASSERT_EQ(k.lower_bound_u64(data.data(), lo, hi, q), want_lb)
            << k.name << " [" << lo << "," << hi << ") q=" << q;
        ASSERT_EQ(k.upper_bound_u64(data.data(), lo, hi, q), want_ub)
            << k.name << " [" << lo << "," << hi << ") q=" << q;
        const double dq = static_cast<double>(q) * 0.25;
        const size_t want_flb = static_cast<size_t>(
            std::lower_bound(ddata.begin() + lo, ddata.begin() + hi, dq) -
            ddata.begin());
        ASSERT_EQ(k.lower_bound_f64(ddata.data(), lo, hi, dq), want_flb)
            << k.name << " [" << lo << "," << hi << ") q=" << dq;
      }
    }
  }
}

TEST(SimdKernelTest, LowerBoundF64HandlesDenormalsAndExtremes) {
  std::vector<double> data = {-std::numeric_limits<double>::max(),
                              -1.0,
                              -std::numeric_limits<double>::denorm_min(),
                              0.0,
                              std::numeric_limits<double>::denorm_min(),
                              std::numeric_limits<double>::min(),
                              1.0,
                              std::numeric_limits<double>::max()};
  // Pad to exercise the vector sweep, keeping sortedness.
  while (data.size() < 96) {
    data.push_back(data.back());
  }
  for (const Level level : SupportedLevels()) {
    const Kernels& k = KernelsFor(level);
    for (const double q : data) {
      const size_t want = static_cast<size_t>(
          std::lower_bound(data.begin(), data.end(), q) - data.begin());
      ASSERT_EQ(k.lower_bound_f64(data.data(), 0, data.size(), q), want)
          << k.name << " q=" << q;
    }
  }
}

TEST(SimdKernelTest, U64ToF64MatchesStaticCastOverFullRange) {
  const Kernels& ref = KernelsFor(Level::kScalar);
  for (const Level level : SupportedLevels()) {
    const Kernels& k = KernelsFor(level);
    for (const size_t n : kBatchSizes) {
      const auto keys = EdgeUints(n, 3000 + n);
      std::vector<double> got(n + 1, -1.0);
      std::vector<double> want(n + 1, -1.0);
      k.u64_to_f64(keys.data(), n, got.data());
      ref.u64_to_f64(keys.data(), n, want.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << k.name << " key=" << keys[i];
        ASSERT_EQ(want[i], static_cast<double>(keys[i]));
      }
    }
  }
}

TEST(SimdKernelTest, HashAndCuckooSlotsMatchScalar) {
  const Kernels& ref = KernelsFor(Level::kScalar);
  for (const Level level : SupportedLevels()) {
    const Kernels& k = KernelsFor(level);
    for (const size_t n : kBatchSizes) {
      const auto keys = EdgeUints(n, 4000 + n);
      for (const uint64_t slots :
           {uint64_t{1}, uint64_t{2}, uint64_t{1000},
            uint64_t{1} << 32, std::numeric_limits<uint64_t>::max()}) {
        std::vector<uint64_t> got(n + 1, 7), want(n + 1, 7);
        k.hash_slots(keys.data(), n, /*seed=*/5, slots, got.data());
        ref.hash_slots(keys.data(), n, /*seed=*/5, slots, want.data());
        ASSERT_EQ(got, want) << k.name << " n=" << n << " slots=" << slots;
        std::vector<uint64_t> g1(n + 1, 7), g2(n + 1, 7), w1(n + 1, 7),
            w2(n + 1, 7);
        k.cuckoo_slots(keys.data(), n, /*seed=*/9, slots, g1.data(),
                       g2.data());
        ref.cuckoo_slots(keys.data(), n, /*seed=*/9, slots, w1.data(),
                         w2.data());
        ASSERT_EQ(g1, w1) << k.name;
        ASSERT_EQ(g2, w2) << k.name;
      }
    }
  }
}

// ---- end-to-end: the batch entry points at every forced level ----------

TEST(SimdEndToEndTest, RmiLookupBatchBitExactAcrossLevels) {
  const auto keys = data::GenLognormal(60'000, /*seed=*/11);
  rmi::LinearRmi index;
  rmi::RmiConfig config;
  config.num_leaf_models = 500;
  ASSERT_TRUE(index.Build(keys, config).ok());

  // Query mix: hits, misses, and out-of-range probes — unsorted, so leaf
  // runs are short and the run-detection fallback is exercised too.
  std::vector<uint64_t> queries = EdgeUints(10'000, 55);
  Xorshift128Plus rng(66);
  for (size_t i = 0; i < queries.size(); i += 2) {
    queries[i] = keys[rng.NextBounded(keys.size())] + rng.NextBounded(3) - 1;
  }

  std::vector<size_t> ref(queries.size());
  {
    ScopedLevel pin(Level::kScalar);
    ASSERT_TRUE(pin.status().ok());
    index.LookupBatch(queries, ref);
    // The scalar batch path must agree with the single-key path.
    for (size_t i = 0; i < 512; ++i) {
      ASSERT_EQ(ref[i], index.Lookup(queries[i])) << "i=" << i;
    }
  }
  for (const Level level : SupportedLevels()) {
    ScopedLevel pin(level);
    ASSERT_TRUE(pin.status().ok());
    std::vector<size_t> got(queries.size());
    index.LookupBatch(queries, got);
    ASSERT_EQ(got, ref) << LevelName(level);
  }
}

TEST(SimdEndToEndTest, DoubleKeyRmiLookupBatchBitExactAcrossLevels) {
  std::vector<double> keys(40'000);
  Xorshift128Plus rng(13);
  for (auto& k : keys) k = rng.NextGaussian() * 1e6;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  rmi::DoubleRmi index;
  rmi::RmiConfig config;
  config.num_leaf_models = 300;
  ASSERT_TRUE(index.Build(keys, config).ok());

  std::vector<double> queries(8'000);
  for (auto& q : queries) {
    q = rng.NextBounded(2) ? keys[rng.NextBounded(keys.size())]
                           : rng.NextGaussian() * 1e6;
  }
  std::vector<size_t> ref(queries.size());
  {
    ScopedLevel pin(Level::kScalar);
    ASSERT_TRUE(pin.status().ok());
    index.LookupBatch(queries, ref);
  }
  for (const Level level : SupportedLevels()) {
    ScopedLevel pin(level);
    ASSERT_TRUE(pin.status().ok());
    std::vector<size_t> got(queries.size());
    index.LookupBatch(queries, got);
    ASSERT_EQ(got, ref) << LevelName(level);
  }
}

TEST(SimdEndToEndTest, PointHashSlotBatchMatchesSingleKeyAtEveryLevel) {
  const auto keys = data::GenLognormal(20'000, /*seed=*/3);
  for (const hash::HashKind kind :
       {hash::HashKind::kRandom, hash::HashKind::kLearnedCdf}) {
    hash::PointHash fn;
    hash::HashConfig hc;
    hc.kind = kind;
    hc.seed = 17;
    ASSERT_TRUE(fn.Build(keys, /*num_slots=*/30'000, hc).ok());
    const auto queries = EdgeUints(5'000, 8);
    for (const Level level : SupportedLevels()) {
      ScopedLevel pin(level);
      ASSERT_TRUE(pin.status().ok());
      std::vector<uint64_t> slots(queries.size());
      fn.SlotBatch(queries.data(), queries.size(), slots.data());
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(slots[i], fn(queries[i]))
            << LevelName(level) << " kind="
            << (kind == hash::HashKind::kRandom ? "random" : "learned")
            << " i=" << i;
      }
    }
  }
}

TEST(SimdEndToEndTest, HashMapFindBatchBitExactAcrossLevels) {
  const auto keys = data::GenUniform(30'000, /*seed=*/23);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(hash::Record{keys[i], i, 0});
  }
  std::vector<uint64_t> queries = EdgeUints(6'000, 31);
  Xorshift128Plus rng(37);
  for (size_t i = 0; i < queries.size(); i += 2) {
    queries[i] = keys[rng.NextBounded(keys.size())];
  }

  const auto check = [&](const auto& map) {
    std::vector<const hash::Record*> ref(queries.size());
    {
      ScopedLevel pin(Level::kScalar);
      ASSERT_TRUE(pin.status().ok());
      map.FindBatch(queries, ref);
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(ref[i], map.Find(queries[i])) << "i=" << i;
    }
    for (const Level level : SupportedLevels()) {
      ScopedLevel pin(level);
      ASSERT_TRUE(pin.status().ok());
      std::vector<const hash::Record*> got(queries.size());
      map.FindBatch(queries, got);
      ASSERT_EQ(got, ref) << LevelName(level);
    }
  };

  for (const hash::HashKind kind :
       {hash::HashKind::kRandom, hash::HashKind::kLearnedCdf}) {
    {
      hash::ChainedHashMapConfig config;
      config.num_slots = keys.size();
      config.hash.kind = kind;
      hash::ChainedHashMap map;
      ASSERT_TRUE(map.Build(records, config).ok());
      check(map);
    }
    {
      hash::InplaceChainedMapConfig config;
      config.hash.kind = kind;
      hash::InplaceChainedMap map;
      ASSERT_TRUE(map.Build(records, config).ok());
      check(map);
    }
  }
}

TEST(SimdEndToEndTest, CuckooFindBatchBitExactAcrossLevels) {
  const auto keys = data::GenUniform(25'000, /*seed=*/41);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(hash::Record{keys[i], i, 0});
  }
  hash::CuckooMap<hash::Record> map;
  hash::CuckooMapConfig config;
  config.load_factor = 0.9;
  ASSERT_TRUE(map.Build(records, config).ok());

  std::vector<uint64_t> queries = EdgeUints(6'000, 43);
  Xorshift128Plus rng(47);
  for (size_t i = 0; i < queries.size(); i += 2) {
    queries[i] = keys[rng.NextBounded(keys.size())];
  }
  std::vector<const hash::Record*> ref(queries.size());
  {
    ScopedLevel pin(Level::kScalar);
    ASSERT_TRUE(pin.status().ok());
    map.FindBatch(queries, ref);
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(ref[i], map.Find(queries[i])) << "i=" << i;
  }
  for (const Level level : SupportedLevels()) {
    ScopedLevel pin(level);
    ASSERT_TRUE(pin.status().ok());
    std::vector<const hash::Record*> got(queries.size());
    map.FindBatch(queries, got);
    ASSERT_EQ(got, ref) << LevelName(level);
  }
}

// The concurrent wrapper's read path funnels into the same batch kernels
// (slot hashing, probe loops) but layers the write-log and frozen-delta
// scan on top. Quiesced, every forced level must produce identical
// found-flags and record copies over a state whose overlay is live (log
// appends, frozen folds, tombstones) — the overlay scan is scalar and
// must splice into the SIMD base probe without divergence.
TEST(SimdEndToEndTest, ConcurrentPointFindBatchBitExactAcrossLevels) {
  const auto keys = data::GenUniform(30'000, /*seed=*/83);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(hash::Record{keys[i], i, 0});
  }

  const auto check = [&](auto& map) {
    // Put the overlay in play: tombstone every 50th base key, insert a
    // fresh strided range (some frozen, some still in the live log).
    for (size_t i = 0; i < keys.size(); i += 50) {
      ASSERT_TRUE(map.Erase(keys[i]));
    }
    for (uint64_t k = 0; k < 2'000; ++k) {
      ASSERT_TRUE(map.Insert({(uint64_t{1} << 50) + k, k, 0}));
    }
    std::vector<uint64_t> queries = EdgeUints(6'000, 89);
    Xorshift128Plus rng(97);
    for (size_t i = 0; i < queries.size(); i += 2) {
      queries[i] = (i % 4 == 0) ? (uint64_t{1} << 50) + rng.NextBounded(2'500)
                                : keys[rng.NextBounded(keys.size())];
    }
    std::vector<hash::Record> ref_recs(queries.size());
    std::vector<uint8_t> ref_found(queries.size(), 2);
    {
      ScopedLevel pin(Level::kScalar);
      ASSERT_TRUE(pin.status().ok());
      map.FindBatch(queries, ref_recs, ref_found);
      // The scalar batch path must agree with the single-key path.
      for (size_t i = 0; i < queries.size(); ++i) {
        hash::Record rec{};
        ASSERT_EQ(ref_found[i] != 0, map.Find(queries[i], &rec)) << i;
        if (ref_found[i] != 0) ASSERT_EQ(ref_recs[i].payload, rec.payload);
      }
    }
    for (const Level level : SupportedLevels()) {
      ScopedLevel pin(level);
      ASSERT_TRUE(pin.status().ok());
      std::vector<hash::Record> got_recs(queries.size());
      std::vector<uint8_t> got_found(queries.size(), 3);
      map.FindBatch(queries, got_recs, got_found);
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(got_found[i] != 0, ref_found[i] != 0)
            << LevelName(level) << " i=" << i;
        if (ref_found[i] != 0) {
          ASSERT_EQ(got_recs[i].key, ref_recs[i].key)
              << LevelName(level) << " i=" << i;
          ASSERT_EQ(got_recs[i].payload, ref_recs[i].payload)
              << LevelName(level) << " i=" << i;
        }
      }
    }
  };

  {
    concurrent::ConcurrentPointIndex<hash::ChainedHashMap> map;
    concurrent::ConcurrentPointIndex<hash::ChainedHashMap>::Config cfg;
    cfg.base.num_slots = keys.size();
    cfg.log_cap = 256;        // live log + frozen folds both populated
    cfg.rebuild_entries = 0;  // keep the overlay in place while probing
    ASSERT_TRUE(map.Build(records, cfg).ok());
    check(map);
  }
  {
    concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>> map;
    concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>::Config
        cfg;
    cfg.base.load_factor = 0.9;
    cfg.log_cap = 256;
    cfg.rebuild_entries = 0;
    ASSERT_TRUE(map.Build(records, cfg).ok());
    check(map);
  }
}

// Level-pinned reads racing a rehash: one writer floods fresh keys and
// keeps the background rebuild churning (small rebuild_entries), while
// the main thread walks every forced level probing base keys the writer
// never touches. Whatever version or kernel a probe lands on, a stable
// key must be found with its exact build-time payload — the epoch-
// protected publish may never tear a batch mid-flight.
TEST(SimdEndToEndTest, ConcurrentPointBatchReadsStableMidRehash) {
  const auto keys = data::GenUniform(20'000, /*seed=*/101, uint64_t{1} << 40);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(hash::Record{keys[i], keys[i] * 3 + 1, 0});
  }
  using Conc = concurrent::ConcurrentPointIndex<hash::ChainedHashMap>;
  Conc map;
  Conc::Config cfg;
  cfg.base.num_slots = keys.size();
  cfg.log_cap = 128;          // frequent freezes under the flood
  cfg.rebuild_entries = 512;  // rehash storms throughout the probe loop
  ASSERT_TRUE(map.Build(records, cfg).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t k = uint64_t{1} << 50;  // disjoint from every probed key
    // At least 32 bursts even if the probe loop wins every race — the
    // final rebuild-happened assertion must not depend on scheduling.
    for (int bursts = 0;
         bursts < 32 || !stop.load(std::memory_order_relaxed); ++bursts) {
      for (int burst = 0; burst < 256; ++burst) {
        map.Insert({k, k + 1, 0});
        ++k;
      }
      map.RequestRebuild();
    }
  });

  Xorshift128Plus rng(103);
  std::vector<uint64_t> probes(512);
  std::vector<hash::Record> recs(probes.size());
  std::vector<uint8_t> found(probes.size());
  // Probe until the worker has republished under us a few times (or a
  // generous round cap on starved machines).
  for (int round = 0;
       round < 400 && map.ConcurrentStats().background_merges < 3;
       ++round) {
    for (const Level level : SupportedLevels()) {
      ScopedLevel pin(level);
      ASSERT_TRUE(pin.status().ok());
      for (uint64_t& p : probes) p = keys[rng.NextBounded(keys.size())];
      map.FindBatch(probes, recs, found);
      for (size_t i = 0; i < probes.size(); ++i) {
        ASSERT_NE(found[i], 0)
            << LevelName(level) << " lost stable key " << probes[i];
        ASSERT_EQ(recs[i].key, probes[i]) << LevelName(level);
        ASSERT_EQ(recs[i].payload, probes[i] * 3 + 1) << LevelName(level);
      }
      hash::Record rec{};
      ASSERT_TRUE(map.Find(probes[0], &rec)) << LevelName(level);
      ASSERT_EQ(rec.payload, probes[0] * 3 + 1) << LevelName(level);
    }
  }
  stop.store(true);
  writer.join();
  map.WaitForRebuilds();
  ASSERT_TRUE(map.last_rebuild_status().ok())
      << map.last_rebuild_status().message();
  EXPECT_GT(map.ConcurrentStats().background_merges, 0u);
}

}  // namespace
}  // namespace li::simd
