// Tests for the dataset generators: sortedness, uniqueness, determinism,
// and the distributional properties each paper dataset is supposed to have.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/datasets.h"
#include "data/strings.h"

namespace li::data {
namespace {

class IntegerDatasetTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(IntegerDatasetTest, SortedStrictlyIncreasingAndSized) {
  const auto keys = Generate(GetParam(), 50'000, /*seed=*/1);
  ASSERT_EQ(keys.size(), 50'000u);
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]) << "at " << i;
  }
}

TEST_P(IntegerDatasetTest, DeterministicInSeed) {
  const auto a = Generate(GetParam(), 10'000, 7);
  const auto b = Generate(GetParam(), 10'000, 7);
  EXPECT_EQ(a, b);
  const auto c = Generate(GetParam(), 10'000, 8);
  EXPECT_NE(a, c);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IntegerDatasetTest,
                         ::testing::Values(DatasetKind::kMaps,
                                           DatasetKind::kWeblog,
                                           DatasetKind::kLognormal),
                         [](const auto& info) {
                           switch (info.param) {
                             case DatasetKind::kMaps: return "Maps";
                             case DatasetKind::kWeblog: return "Weblog";
                             case DatasetKind::kLognormal: return "Lognormal";
                           }
                           return "?";
                         });

TEST(LognormalTest, HeavyRightTail) {
  const auto keys = GenLognormal(100'000, 3);
  // Median far below mean for sigma = 2.
  const double median = static_cast<double>(keys[keys.size() / 2]);
  double mean = 0;
  for (const auto k : keys) mean += static_cast<double>(k) / keys.size();
  EXPECT_GT(mean, 4.0 * median);
}

TEST(MapsTest, MassConcentratedInClusters) {
  const auto keys = GenMaps(100'000, 3);
  // Population clusters mean the middle 80% of keys span far less than 80%
  // of the full key range.
  const double lo = static_cast<double>(keys[keys.size() / 10]);
  const double hi = static_cast<double>(keys[keys.size() * 9 / 10]);
  const double full = static_cast<double>(keys.back() - keys.front());
  EXPECT_LT((hi - lo) / full, 0.95);
}

TEST(WeblogTest, ArrivalGapsAreBursty) {
  const auto keys = GenWeblog(100'000, 3);
  // Diurnal/weekly gaps: the max inter-arrival gap must dwarf the median
  // gap (nights and breaks are quiet).
  std::vector<uint64_t> gaps;
  for (size_t i = 1; i < keys.size(); ++i) gaps.push_back(keys[i] - keys[i - 1]);
  std::sort(gaps.begin(), gaps.end());
  const uint64_t median = gaps[gaps.size() / 2];
  EXPECT_GT(gaps.back(), 50 * std::max<uint64_t>(median, 1));
}

TEST(SequentialTest, DenseKeys) {
  const auto keys = GenSequential(1000, 5);
  EXPECT_EQ(keys.front(), 5u);
  EXPECT_EQ(keys.back(), 1004u);
}

TEST(UniformTest, CoversRange) {
  const auto keys = GenUniform(100'000, 1, 1'000'000);
  EXPECT_LT(keys.front(), 100u * 1000);
  EXPECT_GT(keys.back(), 900u * 1000);
}

TEST(MakeStrictlyIncreasingTest, BumpsDuplicates) {
  std::vector<Key> keys = {5, 5, 5, 2, 9};
  MakeStrictlyIncreasing(&keys);
  EXPECT_EQ(keys, (std::vector<Key>{2, 5, 6, 7, 9}));
}

TEST(SampleKeysTest, OnlyExistingKeys) {
  const auto keys = GenUniform(1000, 1);
  const auto sample = SampleKeys(keys, 500, 2);
  ASSERT_EQ(sample.size(), 500u);
  const std::set<Key> keyset(keys.begin(), keys.end());
  for (const Key k : sample) EXPECT_TRUE(keyset.count(k));
}

TEST(SampleRangeTest, WithinKeyRange) {
  const auto keys = GenUniform(1000, 1);
  const auto sample = SampleRange(keys, 500, 2);
  for (const Key k : sample) {
    EXPECT_GE(k, keys.front());
    EXPECT_LE(k, keys.back());
  }
}

TEST(DocIdsTest, SortedUniqueHierarchical) {
  const auto ids = GenDocIds(20'000, 1);
  ASSERT_EQ(ids.size(), 20'000u);
  for (size_t i = 1; i < ids.size(); ++i) ASSERT_LT(ids[i - 1], ids[i]);
  // Hierarchy: every id has at least two '/' separators.
  for (size_t i = 0; i < ids.size(); i += 997) {
    EXPECT_GE(std::count(ids[i].begin(), ids[i].end(), '/'), 2) << ids[i];
  }
}

TEST(DocIdsTest, SharedPrefixesExist) {
  const auto ids = GenDocIds(5000, 1);
  size_t shared = 0;
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i].compare(0, 5, ids[i - 1], 0, 5) == 0) ++shared;
  }
  EXPECT_GT(shared, ids.size() / 4);  // skewed fan-out => long prefix runs
}

TEST(UrlsTest, CorpusShapesAndDeterminism) {
  const UrlCorpus a = GenUrls(5000, 5000, 3);
  EXPECT_GT(a.keys.size(), 4000u);  // dedup may drop a few
  EXPECT_EQ(a.random_negatives.size(), 5000u);
  EXPECT_EQ(a.whitelisted.size(), 2500u);
  const UrlCorpus b = GenUrls(5000, 5000, 3);
  EXPECT_EQ(a.keys, b.keys);
}

TEST(UrlsTest, ClassesAreLexicallyDistinct) {
  const UrlCorpus c = GenUrls(2000, 2000, 9);
  // Benign URLs live on www. hosts; phishing mostly does not.
  size_t benign_www = 0, phish_www = 0;
  for (const auto& u : c.random_negatives) benign_www += u.starts_with("www.");
  for (const auto& u : c.keys) phish_www += u.starts_with("www.");
  EXPECT_EQ(benign_www, c.random_negatives.size());
  // ~18% of phishing keys mimic compromised legitimate hosts.
  EXPECT_LT(phish_www, c.keys.size() / 4);
  EXPECT_GT(phish_www, c.keys.size() / 20);
}

}  // namespace
}  // namespace li::data
