// Conformance suite for the library-wide RangeIndex contract: every
// implementation — the RMI family and every B-Tree variant — is (a)
// statically asserted to satisfy the index::RangeIndex concept and (b)
// driven over the same sorted dataset through identical dynamic checks:
// Lookup must match std::lower_bound for present/absent/extreme keys, and
// ApproxPos must return a valid window (lo <= pos <= hi <= n, with the
// true position of every stored key inside [lo, hi)) — the §3.4
// guarantee that makes any model with error bounds a B-Tree-grade index.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "btree/dynamic_btree.h"
#include "btree/fast_tree.h"
#include "btree/interpolation_btree.h"
#include "btree/lookup_table.h"
#include "btree/readonly_btree.h"
#include "btree/string_btree.h"
#include "common/random.h"
#include "data/datasets.h"
#include "data/strings.h"
#include "dynamic/delta_range_index.h"
#include "index/any_range_index.h"
#include "index/range_index.h"
#include "rmi/hybrid.h"
#include "rmi/multistage.h"
#include "rmi/quantized_rmi.h"
#include "rmi/rmi.h"
#include "rmi/string_rmi.h"

namespace li {
namespace {

// ---- Static acceptance gate: the contract holds for every index ----
static_assert(index::RangeIndex<rmi::LinearRmi>);
static_assert(index::RangeIndex<rmi::MultivariateRmi>);
static_assert(index::RangeIndex<rmi::NeuralRmi>);
static_assert(index::RangeIndex<rmi::DoubleRmi>);
static_assert(index::RangeIndex<rmi::PrefixStringRmi>);
static_assert(index::RangeIndex<rmi::HybridRmi<models::LinearModel>>);
static_assert(index::RangeIndex<rmi::QuantizedRmi>);
static_assert(index::RangeIndex<rmi::StringRmi>);
static_assert(index::RangeIndex<rmi::MultiStageRmi>);
static_assert(index::RangeIndex<btree::ReadOnlyBTree>);
static_assert(index::RangeIndex<btree::BTreeMap>);
static_assert(index::RangeIndex<btree::InterpolationBTree>);
static_assert(index::RangeIndex<btree::FastTree>);
static_assert(index::RangeIndex<btree::StringBTree>);
static_assert(index::RangeIndex<btree::LookupTable>);
// The writable wrapper is a full RangeIndex too (with an empty delta it
// must behave exactly like its base), over any base.
static_assert(index::RangeIndex<dynamic::DeltaRangeIndex<rmi::LinearRmi>>);
static_assert(
    index::RangeIndex<dynamic::DeltaRangeIndex<btree::ReadOnlyBTree>>);
// The RMI core carries the native batched hot path.
static_assert(index::HasNativeLookupBatch<rmi::LinearRmi>);
static_assert(!index::HasNativeLookupBatch<btree::ReadOnlyBTree>);
static_assert(
    index::HasNativeLookupBatch<dynamic::DeltaRangeIndex<rmi::LinearRmi>>);

// ---- Per-implementation default configs for a ~40k-key dataset ----
template <typename I>
typename I::config_type DefaultConfig() {
  return typename I::config_type{};
}

template <>
rmi::RmiConfig DefaultConfig<rmi::LinearRmi>() {
  rmi::RmiConfig c;
  c.num_leaf_models = 500;
  return c;
}
template <>
rmi::HybridConfig DefaultConfig<rmi::HybridRmi<models::LinearModel>>() {
  rmi::HybridConfig c;
  c.rmi.num_leaf_models = 200;
  c.threshold = 64;
  return c;
}
template <>
rmi::QuantizedRmiConfig DefaultConfig<rmi::QuantizedRmi>() {
  rmi::QuantizedRmiConfig c;
  c.rmi.num_leaf_models = 500;
  c.level = models::QuantLevel::kFloat32;
  return c;
}
template <>
rmi::MultiStageConfig DefaultConfig<rmi::MultiStageRmi>() {
  rmi::MultiStageConfig c;
  c.stage_sizes = {64, 512};
  return c;
}
template <>
btree::ReadOnlyBTreeConfig DefaultConfig<btree::ReadOnlyBTree>() {
  return btree::ReadOnlyBTreeConfig{128};
}
template <>
btree::InterpolationBTreeConfig DefaultConfig<btree::InterpolationBTree>() {
  return btree::InterpolationBTreeConfig{64 * 1024};
}
template <>
dynamic::DeltaRangeIndex<rmi::LinearRmi>::Config
DefaultConfig<dynamic::DeltaRangeIndex<rmi::LinearRmi>>() {
  dynamic::DeltaRangeIndex<rmi::LinearRmi>::Config c;
  c.base.num_leaf_models = 500;
  return c;
}

const std::vector<uint64_t>& SharedDataset() {
  static const std::vector<uint64_t> keys = [] {
    std::vector<uint64_t> k = data::GenWeblog(40'000, 71);
    k.erase(std::unique(k.begin(), k.end()), k.end());
    return k;
  }();
  return keys;
}

std::vector<uint64_t> SharedQueries() {
  const auto& keys = SharedDataset();
  Xorshift128Plus rng(72);
  std::vector<uint64_t> qs;
  for (size_t i = 0; i < 20'000; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    switch (rng.NextBounded(4)) {
      case 0: qs.push_back(k); break;
      case 1: qs.push_back(k + 1); break;
      case 2: qs.push_back(k == 0 ? 0 : k - 1); break;
      default: qs.push_back(rng.NextBounded(keys.back() + 1000)); break;
    }
  }
  qs.push_back(0);
  qs.push_back(keys.front());
  qs.push_back(keys.back());
  qs.push_back(keys.back() + 999);
  return qs;
}

size_t StdLowerBound(const std::vector<uint64_t>& v, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

template <typename I>
class Uint64ConformanceTest : public ::testing::Test {};

using Uint64Impls =
    ::testing::Types<rmi::LinearRmi, rmi::HybridRmi<models::LinearModel>,
                     rmi::QuantizedRmi, rmi::MultiStageRmi,
                     btree::ReadOnlyBTree, btree::BTreeMap,
                     btree::InterpolationBTree, btree::FastTree,
                     btree::LookupTable,
                     dynamic::DeltaRangeIndex<rmi::LinearRmi>>;
TYPED_TEST_SUITE(Uint64ConformanceTest, Uint64Impls);

TYPED_TEST(Uint64ConformanceTest, LookupMatchesStdLowerBound) {
  const auto& keys = SharedDataset();
  TypeParam idx;
  ASSERT_TRUE(
      idx.Build(std::span<const uint64_t>(keys), DefaultConfig<TypeParam>())
          .ok());
  for (const uint64_t q : SharedQueries()) {
    ASSERT_EQ(idx.Lookup(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

TYPED_TEST(Uint64ConformanceTest, ApproxWindowsAreValidForStoredKeys) {
  const auto& keys = SharedDataset();
  TypeParam idx;
  ASSERT_TRUE(
      idx.Build(std::span<const uint64_t>(keys), DefaultConfig<TypeParam>())
          .ok());
  for (size_t i = 0; i < keys.size(); i += 13) {
    const index::Approx a = idx.ApproxPos(keys[i]);
    ASSERT_LE(a.lo, a.pos) << "i=" << i;
    ASSERT_LE(a.pos, a.hi) << "i=" << i;
    ASSERT_LE(a.hi, keys.size()) << "i=" << i;
    ASSERT_TRUE(a.Contains(i))
        << "i=" << i << " window=[" << a.lo << "," << a.hi << ")";
  }
}

TYPED_TEST(Uint64ConformanceTest, BatchedLookupMatchesSingleKey) {
  const auto& keys = SharedDataset();
  TypeParam idx;
  ASSERT_TRUE(
      idx.Build(std::span<const uint64_t>(keys), DefaultConfig<TypeParam>())
          .ok());
  const auto qs = SharedQueries();
  std::vector<size_t> out(qs.size());
  index::LookupBatch(idx, std::span<const uint64_t>(qs),
                     std::span<size_t>(out));
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], idx.Lookup(qs[i])) << "q=" << qs[i];
  }
}

TYPED_TEST(Uint64ConformanceTest, EmptyBuildAnswersZero) {
  TypeParam idx;
  ASSERT_TRUE(idx.Build(std::span<const uint64_t>{}, DefaultConfig<TypeParam>())
                  .ok());
  EXPECT_EQ(idx.Lookup(42), 0u);
  const index::Approx a = idx.ApproxPos(42);
  EXPECT_EQ(a.lo, 0u);
  EXPECT_EQ(a.hi, 0u);
}

// ---- String-keyed implementations share the same contract ----

TEST(StringConformanceTest, AllStringIndexesMatchStd) {
  const auto ids = data::GenDocIds(12'000, 81);
  const std::span<const std::string> span(ids);

  rmi::StringRmiConfig nn_cfg;
  nn_cfg.num_leaf_models = 200;
  nn_cfg.top_nn.epochs = 4;
  rmi::StringRmi nn_rmi;
  ASSERT_TRUE(nn_rmi.Build(span, nn_cfg).ok());

  // The key-generic RMI core over std::string via KeyTraits (prefix-8
  // feature): same implementation as the integer index.
  rmi::RmiConfig generic_cfg;
  generic_cfg.num_leaf_models = 200;
  rmi::PrefixStringRmi generic_rmi;
  ASSERT_TRUE(generic_rmi.Build(span, generic_cfg).ok());

  btree::StringBTree tree;
  ASSERT_TRUE(tree.Build(span, btree::StringBTreeConfig{32}).ok());

  Xorshift128Plus rng(82);
  for (int i = 0; i < 4000; ++i) {
    std::string q = ids[rng.NextBounded(ids.size())];
    if (rng.NextBounded(2)) q += "x";  // absent variant
    const size_t expect = static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), q) - ids.begin());
    ASSERT_EQ(nn_rmi.Lookup(q), expect) << q;
    ASSERT_EQ(generic_rmi.Lookup(q), expect) << q;
    ASSERT_EQ(tree.Lookup(q), expect) << q;
  }
}

// ---- The double-keyed instantiation of the generic core ----

TEST(DoubleKeyConformanceTest, GenericCoreServesDoubleKeys) {
  std::vector<double> keys;
  Xorshift128Plus rng(91);
  double x = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    x += 1e-3 + static_cast<double>(rng.NextBounded(1000)) / 997.0;
    keys.push_back(x);
  }
  rmi::RmiConfig cfg;
  cfg.num_leaf_models = 300;
  rmi::DoubleRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  for (size_t i = 0; i < keys.size(); i += 7) {
    ASSERT_EQ(idx.Lookup(keys[i]), i);
    const double absent = keys[i] + 1e-6;
    const size_t expect = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), absent) - keys.begin());
    ASSERT_EQ(idx.Lookup(absent), expect);
  }
}

// ---- Type erasure: heterogeneous backends behind one handle ----

TEST(AnyRangeIndexTest, ErasesHeterogeneousBackends) {
  const auto& keys = SharedDataset();

  rmi::LinearRmi rmi_idx;
  ASSERT_TRUE(rmi_idx.Build(std::span<const uint64_t>(keys),
                            DefaultConfig<rmi::LinearRmi>())
                  .ok());
  btree::ReadOnlyBTree tree;
  ASSERT_TRUE(tree.Build(keys, btree::ReadOnlyBTreeConfig{64}).ok());

  std::vector<index::AnyRangeIndex> erased;
  erased.emplace_back(std::move(rmi_idx));
  erased.emplace_back(std::move(tree));

  Xorshift128Plus rng(101);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t q = rng.NextBounded(keys.back() + 500);
    const size_t expect = StdLowerBound(keys, q);
    for (const auto& e : erased) {
      ASSERT_EQ(e.Lookup(q), expect) << "q=" << q;
      ASSERT_EQ(e.LowerBound(q), expect) << "q=" << q;
    }
  }
  for (const auto& e : erased) EXPECT_GT(e.SizeBytes(), 0u);

  // Batched lookups dispatch through the erased handle too.
  const auto qs = SharedQueries();
  std::vector<size_t> out(qs.size());
  for (const auto& e : erased) {
    e.LookupBatch(qs, out);
    for (size_t i = 0; i < qs.size(); ++i) {
      ASSERT_EQ(out[i], StdLowerBound(keys, qs[i]));
    }
  }
}

TEST(AnyRangeIndexTest, EmptyHandleAnswersLikeEmptyIndex) {
  index::AnyRangeIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Lookup(7), 0u);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  std::vector<uint64_t> qs = {1, 2, 3};
  std::vector<size_t> out(3, 99);
  empty.LookupBatch(qs, out);
  EXPECT_EQ(out, (std::vector<size_t>{0, 0, 0}));
}

TEST(ApproxTest, HelpersAndExactWindow) {
  const index::Approx a{10, 8, 15};
  EXPECT_EQ(a.Width(), 7u);
  EXPECT_TRUE(a.Contains(8));
  EXPECT_TRUE(a.Contains(14));
  EXPECT_FALSE(a.Contains(15));
  const index::Approx exact = index::Approx::Exact(4, 10);
  EXPECT_EQ(exact.pos, 4u);
  EXPECT_EQ(exact.lo, 4u);
  EXPECT_EQ(exact.hi, 5u);
  // Past-the-end estimates clamp the window to n.
  const index::Approx end = index::Approx::Exact(10, 10);
  EXPECT_EQ(end.hi, 10u);
}

}  // namespace
}  // namespace li
