// WAL unit suite: on-disk framing (roundtrip, torn tail, bit flips,
// header corruption), writer semantics (LSN continuity, group commit,
// truncation rotation, reopen-after-tear), the CrashFileBackend fault
// layer driven in-process (kill_process = false), and the durable index
// classes end to end — snapshot + log replay equals a std::set oracle
// for DeltaRangeIndex, ConcurrentWritableIndex and the directory-based
// ShardedIndex (including a durable rebalance cutover). Process-death
// crash injection lives in crash_recovery_test.cc; this file covers
// every failure mode that can be exercised without dying.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/delta_range_index.h"
#include "index/durable_index.h"
#include "rmi/rmi.h"
#include "wal/file_backend.h"
#include "wal/wal.h"
#include "wal/wal_format.h"

namespace li {
namespace {

using DeltaRmi = dynamic::DeltaRangeIndex<rmi::LinearRmi>;
using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

// ---- Static acceptance gate ----
static_assert(index::DurableIndex<DeltaRmi>);
static_assert(index::DurableIndex<ConcRmi>);
static_assert(DeltaRmi::kDurabilityCapable);
static_assert(ConcRmi::kDurabilityCapable);
static_assert(ShardedRmi::kDurabilityCapable);

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "li_wal_" + name;
}

struct Rec {
  wal::WalRecordType type;
  uint64_t lsn;
  std::vector<uint8_t> payload;
};

Result<std::pair<wal::WalReplayResult, std::vector<Rec>>> ReplayAll(
    const std::string& path) {
  std::vector<Rec> recs;
  auto r = wal::Replay(path, [&](wal::WalRecordType t, uint64_t lsn,
                                 const void* p, size_t n) {
    Rec rec;
    rec.type = t;
    rec.lsn = lsn;
    rec.payload.assign(static_cast<const uint8_t*>(p),
                       static_cast<const uint8_t*>(p) + n);
    recs.push_back(std::move(rec));
    return Status::OK();
  });
  if (!r.ok()) return r.status();
  return std::make_pair(r.value(), std::move(recs));
}

int64_t FileSize(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f.good() ? static_cast<int64_t>(f.tellg()) : -1;
}

void Truncate(const std::string& path, int64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), size), 0);
}

void FlipByte(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekg(offset);
  char c = 0;
  f.read(&c, 1);
  c ^= 0x40;
  f.seekp(offset);
  f.write(&c, 1);
}

// ---- Format / writer ----

TEST(WalFormatTest, AppendReplayRoundtrip) {
  const std::string path = TmpPath("roundtrip.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  auto w = wal::WalWriter::Create(path, /*base_lsn=*/0, sizeof(uint64_t),
                                  cfg);
  ASSERT_TRUE(w.ok()) << w.status().message();
  wal::WalWriter writer = w.take();
  for (uint64_t k = 0; k < 100; ++k) {
    const auto type = (k % 3 == 0) ? wal::WalRecordType::kErase
                                   : wal::WalRecordType::kInsert;
    auto lsn = writer.Append(type, &k, sizeof(k));
    ASSERT_TRUE(lsn.ok()) << lsn.status().message();
    EXPECT_EQ(lsn.value(), k + 1);  // strictly monotonic from base + 1
  }
  EXPECT_EQ(writer.stats().appends, 100u);
  EXPECT_EQ(writer.stats().last_lsn, 100u);
  EXPECT_EQ(writer.stats().last_synced_lsn, 100u);  // fsync_every_n = 1

  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  const auto& [res, recs] = replayed.value();
  EXPECT_EQ(res.records, 100u);
  EXPECT_EQ(res.base_lsn, 0u);
  EXPECT_EQ(res.last_lsn, 100u);
  EXPECT_FALSE(res.torn_tail);
  EXPECT_EQ(res.valid_bytes, res.file_bytes);
  ASSERT_EQ(recs.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(recs[k].lsn, k + 1);
    EXPECT_EQ(recs[k].type, (k % 3 == 0) ? wal::WalRecordType::kErase
                                         : wal::WalRecordType::kInsert);
    uint64_t got = 0;
    ASSERT_EQ(recs[k].payload.size(), sizeof(got));
    std::memcpy(&got, recs[k].payload.data(), sizeof(got));
    EXPECT_EQ(got, k);
  }
}

TEST(WalFormatTest, MissingFileIsNotFound) {
  auto r = wal::Replay(TmpPath("nope.wal"), nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(WalFormatTest, CorruptHeaderIsInvalidArgument) {
  const std::string path = TmpPath("badheader.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  {
    auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
    ASSERT_TRUE(w.ok());
    wal::WalWriter writer = w.take();
    const uint64_t k = 7;
    ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  }
  FlipByte(path, 3);  // inside the magic
  auto r = wal::Replay(path, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalFormatTest, TornTailStopsCleanly) {
  const std::string path = TmpPath("torn.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  {
    auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
    ASSERT_TRUE(w.ok());
    wal::WalWriter writer = w.take();
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
    }
  }
  const int64_t full = FileSize(path);
  const int64_t frame =
      static_cast<int64_t>(sizeof(wal::WalRecordHeader)) + 8;
  // Tear off half of the last record: 9 valid records + garbage tail.
  Truncate(path, full - frame / 2);
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  const auto& [res, recs] = replayed.value();
  EXPECT_TRUE(res.torn_tail);
  EXPECT_EQ(res.records, 9u);
  EXPECT_EQ(res.last_lsn, 9u);
  EXPECT_EQ(recs.size(), 9u);
  EXPECT_LT(res.valid_bytes, res.file_bytes);
}

TEST(WalFormatTest, BitFlipStopsAtCorruptRecord) {
  const std::string path = TmpPath("bitflip.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  {
    auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
    ASSERT_TRUE(w.ok());
    wal::WalWriter writer = w.take();
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
    }
  }
  const int64_t frame =
      static_cast<int64_t>(sizeof(wal::WalRecordHeader)) + 8;
  // Flip one payload byte inside record 6 (0-based 5).
  FlipByte(path, 64 + 5 * frame + sizeof(wal::WalRecordHeader) + 2);
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed.value().first.torn_tail);
  EXPECT_EQ(replayed.value().first.records, 5u);
}

TEST(WalWriterTest, OpenResumesAfterTornTail) {
  const std::string path = TmpPath("resume.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  {
    auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
    ASSERT_TRUE(w.ok());
    wal::WalWriter writer = w.take();
    for (uint64_t k = 0; k < 5; ++k) {
      ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
    }
  }
  Truncate(path, FileSize(path) - 3);  // tear the 5th record
  wal::WalReplayResult scan;
  auto w = wal::WalWriter::Open(path, cfg, &scan);
  ASSERT_TRUE(w.ok()) << w.status().message();
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.last_lsn, 4u);
  wal::WalWriter writer = w.take();
  const uint64_t k = 99;
  auto lsn = writer.Append(wal::WalRecordType::kInsert, &k, 8);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 5u);  // LSNs resume after the last valid record
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_FALSE(replayed.value().first.torn_tail);  // tear truncated away
  EXPECT_EQ(replayed.value().first.records, 5u);
}

TEST(WalWriterTest, GroupCommitSyncsEveryNth) {
  const std::string path = TmpPath("group.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  cfg.fsync_every_n = 4;
  auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  ASSERT_TRUE(w.ok());
  wal::WalWriter writer = w.take();
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  }
  // 10 appends, policy fires at 4 and 8 (+1 sync at create time is not
  // counted in stats.syncs).
  EXPECT_EQ(writer.stats().syncs, 2u);
  EXPECT_EQ(writer.stats().last_lsn, 10u);
  EXPECT_EQ(writer.stats().last_synced_lsn, 8u);
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(writer.stats().syncs, 3u);
  EXPECT_EQ(writer.stats().last_synced_lsn, 10u);
  ASSERT_TRUE(writer.Sync().ok());  // nothing new: no extra fdatasync
  EXPECT_EQ(writer.stats().syncs, 3u);
}

TEST(WalWriterTest, ResetToCarriesNewerRecords) {
  const std::string path = TmpPath("reset.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  ASSERT_TRUE(w.ok());
  wal::WalWriter writer = w.take();
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  }
  ASSERT_TRUE(writer.ResetTo(6).ok());  // snapshot covered lsn 1..6
  EXPECT_EQ(writer.stats().base_lsn, 6u);
  EXPECT_EQ(writer.stats().resets, 1u);
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  const auto& [res, recs] = replayed.value();
  EXPECT_EQ(res.base_lsn, 6u);
  ASSERT_EQ(recs.size(), 4u);  // lsns 7..10 carried over
  EXPECT_EQ(recs.front().lsn, 7u);
  EXPECT_EQ(recs.back().lsn, 10u);
  // Appends continue where the pre-rotation stream left off.
  const uint64_t k = 11;
  auto lsn = writer.Append(wal::WalRecordType::kInsert, &k, 8);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 11u);
  // Covering everything empties the log.
  ASSERT_TRUE(writer.ResetTo(11).ok());
  replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().first.records, 0u);
  EXPECT_EQ(replayed.value().first.base_lsn, 11u);
}

TEST(WalWriterTest, PayloadSizeMismatchRejected) {
  const std::string path = TmpPath("paysize.wal");
  wal::DurabilityConfig cfg;
  cfg.path = path;
  auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  ASSERT_TRUE(w.ok());
  wal::WalWriter writer = w.take();
  const uint32_t small = 1;
  auto lsn = writer.Append(wal::WalRecordType::kInsert, &small, 4);
  EXPECT_FALSE(lsn.ok());
}

// ---- CrashFileBackend (in-process: kill_process = false) ----

TEST(CrashBackendTest, InjectedWriteFailureIsStickyOnTheLog) {
  const std::string path = TmpPath("crashwrite.wal");
  wal::CrashFileBackend::Plan plan;
  plan.mode = wal::CrashFileBackend::Mode::kBeforeWrite;
  plan.trigger_at = 3;  // third record write (header I/O bypasses the
                        // backend, so ordinals count records exactly)
  plan.kill_process = false;
  wal::CrashFileBackend backend(plan);
  wal::DurabilityConfig cfg;
  cfg.path = path;
  cfg.backend = &backend;
  auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  ASSERT_TRUE(w.ok());
  wal::WalWriter writer = w.take();
  uint64_t k = 1;
  ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  k = 2;
  ASSERT_TRUE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  k = 3;
  EXPECT_FALSE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  EXPECT_TRUE(backend.crashed());
  // Sticky: later appends fail without touching the file.
  k = 4;
  EXPECT_FALSE(writer.Append(wal::WalRecordType::kInsert, &k, 8).ok());
  // The two acknowledged records replay fine.
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().first.records, 2u);
}

TEST(CrashBackendTest, DropTailTruncatesToSyncedSize) {
  const std::string path = TmpPath("droptail.wal");
  wal::CrashFileBackend::Plan plan;
  plan.mode = wal::CrashFileBackend::Mode::kDropTail;
  plan.trigger_at = 6;  // records 1..5 land; 6th write triggers the drop
  plan.kill_process = false;
  wal::CrashFileBackend backend(plan);
  wal::DurabilityConfig cfg;
  cfg.path = path;
  cfg.backend = &backend;
  cfg.fsync_every_n = 2;  // only even records are on "stable storage"
  auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  ASSERT_TRUE(w.ok());
  wal::WalWriter writer = w.take();
  Status last;
  for (uint64_t k = 1; k <= 6; ++k) {
    last = writer.Append(wal::WalRecordType::kInsert, &k, 8).status();
  }
  EXPECT_FALSE(last.ok());
  EXPECT_TRUE(backend.crashed());
  // The file was cut back to the last fdatasync boundary: 4 records
  // (lsn 4 was the last even append), not the 5 acknowledged ones — the
  // OS-crash model where the page cache dies with the machine.
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().first.records, 4u);
  EXPECT_EQ(replayed.value().first.last_lsn, 4u);
}

TEST(CrashBackendTest, TornWritePersistsAPrefixOfTheRecord) {
  const std::string path = TmpPath("tornwrite.wal");
  wal::CrashFileBackend::Plan plan;
  plan.mode = wal::CrashFileBackend::Mode::kTornWrite;
  plan.trigger_at = 4;
  plan.torn_bytes = 7;  // half the header survives
  plan.kill_process = false;
  wal::CrashFileBackend backend(plan);
  wal::DurabilityConfig cfg;
  cfg.path = path;
  cfg.backend = &backend;
  auto w = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  ASSERT_TRUE(w.ok());
  wal::WalWriter writer = w.take();
  Status last;
  for (uint64_t k = 1; k <= 4; ++k) {
    last = writer.Append(wal::WalRecordType::kInsert, &k, 8).status();
  }
  EXPECT_FALSE(last.ok());
  // Replay sees 3 valid records and a torn tail — never UB, never a
  // phantom 4th record.
  auto replayed = ReplayAll(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().first.records, 3u);
  EXPECT_TRUE(replayed.value().first.torn_tail);
  // An Open on the torn file truncates and resumes at lsn 4.
  wal::DurabilityConfig clean;
  clean.path = path;
  wal::WalReplayResult scan;
  auto reopened = wal::WalWriter::Open(path, clean, &scan);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(scan.torn_tail);
  wal::WalWriter writer2 = reopened.take();
  const uint64_t k = 40;
  auto lsn = writer2.Append(wal::WalRecordType::kInsert, &k, 8);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 4u);
}

// ---- Durable index classes ----

TEST(DurableDeltaTest, SnapshotPlusReplayMatchesOracle) {
  const std::string snap = TmpPath("delta.snap");
  const std::string log = TmpPath("delta.wal");
  auto keys = data::GenLognormal(20'000, 41);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::set<uint64_t> oracle(keys.begin(), keys.end());

  DeltaRmi idx;
  DeltaRmi::Config cfg;
  cfg.base.num_leaf_models = 64;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  ASSERT_FALSE(idx.durable());
  // Baseline snapshot, then attach the log: every later write must be
  // recoverable from snapshot + replay.
  ASSERT_TRUE(idx.WriteSnapshot(snap).ok());
  wal::DurabilityConfig dcfg;
  dcfg.path = log;
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());
  ASSERT_TRUE(idx.durable());

  Xorshift128Plus rng(4242);
  for (int i = 0; i < 5'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
  }
  ASSERT_TRUE(idx.wal_status().ok());
  EXPECT_EQ(idx.DurabilityStats().appends, 5'000u);

  // Recover: snapshot (covered lsn 0) + full replay.
  auto re = DeltaRmi::OpenSnapshot(snap);
  ASSERT_TRUE(re.ok()) << re.status().message();
  DeltaRmi rec = re.take();
  ASSERT_TRUE(rec.RecoverFromWal(dcfg).ok());
  ASSERT_TRUE(rec.durable());
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(rec.size(), ref.size());
  ASSERT_EQ(rec.Scan(0, ref.size() + 1), ref);
  for (int p = 0; p < 2'000; ++p) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    ASSERT_EQ(rec.Lookup(q),
              static_cast<size_t>(std::lower_bound(ref.begin(), ref.end(),
                                                   q) -
                                  ref.begin()));
  }
}

TEST(DurableDeltaTest, SnapshotTruncatesTheLogBehindIt) {
  const std::string snap = TmpPath("deltatrunc.snap");
  const std::string log = TmpPath("deltatrunc.wal");
  auto keys = data::GenLognormal(5'000, 43);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  DeltaRmi idx;
  DeltaRmi::Config cfg;
  cfg.base.num_leaf_models = 32;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  wal::DurabilityConfig dcfg;
  dcfg.path = log;
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(77);
  for (int i = 0; i < 1'000; ++i) {
    const uint64_t k = rng.NextBounded(1u << 30);
    idx.Insert(k);
    oracle.insert(k);
  }
  // Publish: the snapshot carries covered_lsn = 1000 and the log
  // rotates to an empty file behind it.
  ASSERT_TRUE(idx.WriteSnapshot(snap).ok());
  EXPECT_EQ(idx.DurabilityStats().resets, 1u);
  EXPECT_EQ(idx.DurabilityStats().base_lsn, 1'000u);
  auto replayed = ReplayAll(log);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value().first.records, 0u);

  // Tail writes after the publish...
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.NextBounded(1u << 30);
    idx.Insert(k);
    oracle.insert(k);
  }
  // ...are replayed on top of the covered snapshot; LSNs 1..1000 are
  // filtered (they're inside the snapshot already).
  auto re = DeltaRmi::OpenSnapshot(snap);
  ASSERT_TRUE(re.ok());
  DeltaRmi rec = re.take();
  ASSERT_TRUE(rec.RecoverFromWal(dcfg).ok());
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(rec.size(), ref.size());
  ASSERT_EQ(rec.Scan(0, ref.size() + 1), ref);
}

TEST(DurableDeltaTest, RecoveryToleratesTornTail) {
  const std::string snap = TmpPath("deltatorn.snap");
  const std::string log = TmpPath("deltatorn.wal");
  auto keys = data::GenLognormal(2'000, 47);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  DeltaRmi idx;
  DeltaRmi::Config cfg;
  cfg.base.num_leaf_models = 32;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  ASSERT_TRUE(idx.WriteSnapshot(snap).ok());
  wal::DurabilityConfig dcfg;
  dcfg.path = log;
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(78);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < 100; ++i) {
    const uint64_t k = rng.NextBounded(1u << 30);
    idx.Insert(k);
    inserted.push_back(k);
  }
  // Tear the last record in half — the crash landed mid-write.
  Truncate(log, FileSize(log) - 12);
  auto re = DeltaRmi::OpenSnapshot(snap);
  ASSERT_TRUE(re.ok());
  DeltaRmi rec = re.take();
  ASSERT_TRUE(rec.RecoverFromWal(dcfg).ok());
  // All but the torn 100th insert recovered.
  for (int i = 0; i < 99; ++i) oracle.insert(inserted[static_cast<size_t>(i)]);
  ASSERT_EQ(rec.size(), oracle.size());
  // And the recovered index resumes logging on the truncated file.
  ASSERT_TRUE(rec.durable());
  const uint64_t extra = 123456;
  rec.Insert(extra);
  ASSERT_TRUE(rec.wal_status().ok());
}

TEST(DurableConcurrentTest, SnapshotPlusReplayMatchesOracle) {
  const std::string snap = TmpPath("conc.snap");
  const std::string log = TmpPath("conc.wal");
  auto keys = data::GenLognormal(20'000, 51);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::set<uint64_t> oracle(keys.begin(), keys.end());

  ConcRmi idx;
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = 64;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  wal::DurabilityConfig dcfg;
  dcfg.path = log;
  dcfg.fsync_every_n = 8;  // exercise group commit under the writer lock
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());

  Xorshift128Plus rng(5151);
  for (int i = 0; i < 4'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
  }
  ASSERT_TRUE(idx.wal_status().ok());
  // Quiesce merges, snapshot (truncates), keep writing, recover.
  idx.WaitForMerges();
  ASSERT_TRUE(idx.WriteSnapshot(snap).ok());
  EXPECT_EQ(idx.DurabilityStats().resets, 1u);
  for (int i = 0; i < 1'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
  }
  ASSERT_TRUE(idx.SyncWal().ok());

  auto re = ConcRmi::OpenSnapshot(snap);
  ASSERT_TRUE(re.ok()) << re.status().message();
  ConcRmi rec = re.take();
  ASSERT_TRUE(rec.RecoverFromWal(dcfg).ok());
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(rec.size(), ref.size());
  ASSERT_EQ(rec.Scan(0, ref.size() + 1), ref);
  for (int p = 0; p < 2'000; ++p) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    ASSERT_EQ(rec.Lookup(q),
              static_cast<size_t>(std::lower_bound(ref.begin(), ref.end(),
                                                   q) -
                                  ref.begin()));
  }
}

TEST(DurableShardedTest, CheckpointRecoverMatchesOracle) {
  const std::string dir = TmpPath("sharded_dir");
  auto keys = data::GenLognormal(30'000, 61);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::set<uint64_t> oracle(keys.begin(), keys.end());

  ShardedRmi idx;
  ShardedRmi::Config cfg;
  cfg.num_shards = 4;
  cfg.inner.base.num_leaf_models = 64;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  wal::DurabilityConfig dcfg;
  dcfg.path = dir;
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());
  ASSERT_TRUE(idx.durable());
  EXPECT_FALSE(idx.EnableDurability(dcfg).ok());  // second attach rejected

  Xorshift128Plus rng(6161);
  for (int i = 0; i < 4'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
  }
  ASSERT_TRUE(idx.wal_status().ok());
  EXPECT_EQ(idx.DurabilityStats().appends, 4'000u);
  ASSERT_TRUE(idx.Checkpoint().ok());
  // Checkpoint truncated every shard's log.
  EXPECT_EQ(idx.DurabilityStats().appends, 4'000u);
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0);
    } else {
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
  }
  ASSERT_TRUE(idx.SyncWal().ok());

  auto re = ShardedRmi::RecoverDurable(dcfg);
  ASSERT_TRUE(re.ok()) << re.status().message();
  ShardedRmi rec = re.take();
  ASSERT_TRUE(rec.durable());
  EXPECT_EQ(rec.num_shards(), 4u);
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(rec.size(), ref.size());
  ASSERT_EQ(rec.Scan(0, ref.size() + 1), ref);
  for (int p = 0; p < 2'000; ++p) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    ASSERT_EQ(rec.Lookup(q),
              static_cast<size_t>(std::lower_bound(ref.begin(), ref.end(),
                                                   q) -
                                  ref.begin()));
  }
  // The recovered index keeps logging: one more cycle of write + crash-
  // free recovery.
  rec.Insert(424242);
  oracle.insert(424242);
  ASSERT_TRUE(rec.SyncWal().ok());
  auto re2 = ShardedRmi::RecoverDurable(dcfg);
  ASSERT_TRUE(re2.ok());
  ASSERT_EQ(re2.value().size(), oracle.size());
}

TEST(DurableShardedTest, RebalanceCutoverCommitsThroughManifest) {
  const std::string dir = TmpPath("sharded_reb_dir");
  auto keys = data::GenLognormal(20'000, 71);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::set<uint64_t> oracle(keys.begin(), keys.end());

  ShardedRmi idx;
  ShardedRmi::Config cfg;
  cfg.num_shards = 2;
  cfg.inner.base.num_leaf_models = 32;
  cfg.rebalance.enabled = true;
  cfg.rebalance.max_imbalance = 1.2;
  cfg.rebalance.min_split_keys = 1024;
  cfg.rebalance.check_stride = 64;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  wal::DurabilityConfig dcfg;
  dcfg.path = dir;
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());

  // Hammer one end of the key space until the rebalancer splits: the
  // cutover must route the catch-up records into the new shards' logs
  // and flip MANIFEST before publishing.
  Xorshift128Plus rng(7171);
  const uint64_t hot_base = 3'000'000'000'000'000'000ULL;
  for (int i = 0; i < 12'000; ++i) {
    const uint64_t k = hot_base + rng.NextBounded(1u << 24);
    if (idx.Insert(k)) oracle.insert(k);
  }
  idx.WaitForRebalances();
  ASSERT_TRUE(idx.last_rebalance_status().ok())
      << idx.last_rebalance_status().message();
  EXPECT_GT(idx.ConcurrentStats().shard_splits, 0u);
  ASSERT_TRUE(idx.SyncWal().ok());
  const size_t shards_after = idx.num_shards();

  auto re = ShardedRmi::RecoverDurable(dcfg);
  ASSERT_TRUE(re.ok()) << re.status().message();
  ShardedRmi rec = re.take();
  // The recovered routing table is the post-split one.
  EXPECT_EQ(rec.num_shards(), shards_after);
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(rec.size(), ref.size());
  ASSERT_EQ(rec.Scan(0, ref.size() + 1), ref);
  for (int p = 0; p < 2'000; ++p) {
    const uint64_t q = hot_base + rng.NextBounded(1u << 25);
    ASSERT_EQ(rec.Lookup(q),
              static_cast<size_t>(std::lower_bound(ref.begin(), ref.end(),
                                                   q) -
                                  ref.begin()));
  }
}

}  // namespace
}  // namespace li
