// Unit tests for the dense linear-algebra kernel (Cholesky / least squares).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/matrix.h"

namespace li::linalg {
namespace {

TEST(MatrixTest, IndexingRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 7;
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 7);
  EXPECT_DOUBLE_EQ(m(0, 1), 0);
}

TEST(MatrixTest, GramIsXtX) {
  Matrix x(3, 2);
  // x = [[1,2],[3,4],[5,6]]
  x(0, 0) = 1; x(0, 1) = 2;
  x(1, 0) = 3; x(1, 1) = 4;
  x(2, 0) = 5; x(2, 1) = 6;
  const Matrix g = x.Gram();
  EXPECT_DOUBLE_EQ(g(0, 0), 35);   // 1+9+25
  EXPECT_DOUBLE_EQ(g(0, 1), 44);   // 2+12+30
  EXPECT_DOUBLE_EQ(g(1, 0), 44);
  EXPECT_DOUBLE_EQ(g(1, 1), 56);   // 4+16+36
}

TEST(CholeskyTest, FactorsIdentity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
  EXPECT_TRUE(CholeskyFactor(&a));
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a(i, i), 1.0);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;
  EXPECT_FALSE(CholeskyFactor(&a));
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  // A = [[4,2],[2,3]], x = [1, -2] -> b = [0, -4]
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(CholeskySolve(a, {0, -4}, &x).ok());
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], -2.0, 1e-12);
}

TEST(CholeskyTest, DimensionMismatchRejected) {
  Matrix a(2, 2);
  a(0, 0) = a(1, 1) = 1;
  std::vector<double> x;
  EXPECT_FALSE(CholeskySolve(a, {1.0, 2.0, 3.0}, &x).ok());
}

TEST(LeastSquaresTest, ExactLineRecovered) {
  // y = 3x + 1 sampled exactly.
  Matrix design(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = i;
    y[i] = 3.0 * i + 1.0;
  }
  std::vector<double> w;
  ASSERT_TRUE(LeastSquares(design, y, &w).ok());
  EXPECT_NEAR(w[0], 1.0, 1e-8);
  EXPECT_NEAR(w[1], 3.0, 1e-8);
}

TEST(LeastSquaresTest, NoisyFitCloseToTruth) {
  Xorshift128Plus rng(5);
  const int n = 2000;
  Matrix design(n, 2);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextDouble() * 10.0;
    design(i, 0) = 1.0;
    design(i, 1) = x;
    y[i] = 2.5 * x - 4.0 + rng.NextGaussian() * 0.1;
  }
  std::vector<double> w;
  ASSERT_TRUE(LeastSquares(design, y, &w).ok());
  EXPECT_NEAR(w[0], -4.0, 0.05);
  EXPECT_NEAR(w[1], 2.5, 0.02);
}

TEST(LeastSquaresTest, UnderdeterminedRejected) {
  Matrix design(1, 2);
  design(0, 0) = 1.0;
  design(0, 1) = 2.0;
  std::vector<double> w;
  EXPECT_FALSE(LeastSquares(design, {1.0}, &w).ok());
}

TEST(LeastSquaresTest, CollinearColumnsHandledByRidge) {
  // Second and third columns identical: singular Gram without ridge.
  Matrix design(10, 3);
  std::vector<double> y(10);
  for (int i = 0; i < 10; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = i;
    design(i, 2) = i;
    y[i] = 2.0 * i;
  }
  std::vector<double> w;
  ASSERT_TRUE(LeastSquares(design, y, &w).ok());
  // Prediction must still be right even if the split between the two
  // collinear weights is arbitrary.
  for (int i = 0; i < 10; ++i) {
    const double pred = w[0] + w[1] * i + w[2] * i;
    EXPECT_NEAR(pred, 2.0 * i, 1e-3);
  }
}

}  // namespace
}  // namespace li::linalg
