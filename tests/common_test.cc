// Unit tests for src/common: Status/Result, PRNGs, stats, bit utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"

namespace li {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_NE(s.ToString().find("INVALID_ARGUMENT"), std::string::npos);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    LI_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(RandomTest, DeterministicForSeed) {
  Xorshift128Plus a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xorshift128Plus a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, BoundedStaysInBound) {
  Xorshift128Plus rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Xorshift128Plus rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Xorshift128Plus rng(11);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RandomTest, ExponentialMeanMatchesRate) {
  Xorshift128Plus rng(13);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.Add(rng.NextExponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RandomTest, ZipfRanksInRangeAndHeadHeavy) {
  constexpr size_t kN = 1'000;
  ZipfGenerator zipf(kN, 1.1, 17);
  std::vector<int> hist(kN, 0);
  for (int i = 0; i < 100'000; ++i) {
    const size_t r = zipf.Next();
    ASSERT_LT(r, kN);
    ++hist[r];
  }
  // Head-heavy: rank 0 beats the middle rank by a wide margin, and the
  // top decile holds the majority of the mass (s = 1.1).
  EXPECT_GT(hist[0], hist[kN / 2] * 10);
  int top_decile = 0;
  for (size_t r = 0; r < kN / 10; ++r) top_decile += hist[r];
  EXPECT_GT(top_decile, 50'000);
}

TEST(RandomTest, ZipfZeroExponentIsRoughlyUniform) {
  constexpr size_t kN = 100;
  ZipfGenerator zipf(kN, 0.0, 23);
  std::vector<int> hist(kN, 0);
  for (int i = 0; i < 100'000; ++i) ++hist[zipf.Next()];
  for (const int c : hist) EXPECT_NEAR(c, 1'000, 250);
}

TEST(MurmurTest, FinalizerIsBijectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 10'000; ++k) seen.insert(Murmur3Fmix64(k));
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(MurmurTest, StringHashDependsOnAllBytes) {
  const uint64_t h1 = MurmurHash64("hello world", 11);
  const uint64_t h2 = MurmurHash64("hello worle", 11);
  const uint64_t h3 = MurmurHash64("hello world", 10);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 5; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, MergeEqualsSinglePass) {
  Xorshift128Plus rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> v = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
}

TEST(BitsTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
}

TEST(BitsTest, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(1024), 10u);
}

}  // namespace
}  // namespace li
