// Conformance suite for the library-wide PointIndex contract: every map
// family — separate-chaining, in-place chained, bucketized cuckoo (both
// careful modes) — is (a) statically asserted to satisfy the
// index::PointIndex concept and (b) driven over the same dataset (with
// duplicate keys) through identical dynamic checks: Find must agree with
// an unordered_map oracle under first-record-wins semantics for present,
// absent, and extreme keys; FindBatch must match Find; a never-built map
// answers nullptr; Stats must be internally consistent. The chained
// family additionally sweeps the Figure-11 slot budgets (75/100/125%)
// under both hash families.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"
#include "index/point_index.h"

namespace li {
namespace {

// ---- Static acceptance gate: the contract holds for every map ----
static_assert(index::PointIndex<hash::ChainedHashMap>);
static_assert(index::PointIndex<hash::InplaceChainedMap>);
static_assert(index::PointIndex<hash::CuckooMap<hash::Record>>);
// Every family ships the software-pipelined batch probe.
static_assert(index::HasNativeFindBatch<hash::ChainedHashMap>);
static_assert(index::HasNativeFindBatch<hash::InplaceChainedMap>);
static_assert(index::HasNativeFindBatch<hash::CuckooMap<hash::Record>>);

// ---- Shared dataset: 30k records with ~10% duplicate keys ----
const std::vector<hash::Record>& SharedRecords() {
  static const std::vector<hash::Record> records = [] {
    const auto keys = data::GenUniform(30'000, 51, uint64_t{1} << 44);
    std::vector<hash::Record> r;
    r.reserve(keys.size() + keys.size() / 10);
    for (size_t i = 0; i < keys.size(); ++i) {
      r.push_back({keys[i], i, 0});
    }
    // Duplicates carry a poisoned payload: first record must win.
    for (size_t i = 0; i < keys.size(); i += 10) {
      r.push_back({keys[i], 0xDEAD0000 + i, 0});
    }
    return r;
  }();
  return records;
}

const std::unordered_map<uint64_t, uint64_t>& Oracle() {
  static const std::unordered_map<uint64_t, uint64_t> oracle = [] {
    std::unordered_map<uint64_t, uint64_t> o;
    for (const hash::Record& r : SharedRecords()) {
      o.emplace(r.key, r.payload);  // emplace keeps the first record
    }
    return o;
  }();
  return oracle;
}

std::vector<uint64_t> SharedProbes() {
  std::vector<uint64_t> probes;
  Xorshift128Plus rng(52);
  const auto& records = SharedRecords();
  for (int i = 0; i < 20'000; ++i) {
    probes.push_back(rng.NextBounded(2)
                         ? records[rng.NextBounded(records.size())].key
                         : rng.Next());
  }
  probes.push_back(0);
  probes.push_back(~uint64_t{0});
  return probes;
}

// ---- Per-implementation build configs (both hash/careful variants) ----
template <typename I>
std::vector<std::pair<std::string, typename I::config_type>> Configs();

template <>
std::vector<std::pair<std::string, hash::ChainedHashMapConfig>>
Configs<hash::ChainedHashMap>() {
  hash::ChainedHashMapConfig random_cfg;
  random_cfg.hash.seed = 7;
  hash::ChainedHashMapConfig learned_cfg;
  learned_cfg.hash.kind = hash::HashKind::kLearnedCdf;
  learned_cfg.hash.cdf_leaf_models = 2000;
  return {{"random", random_cfg}, {"learned-cdf", learned_cfg}};
}

template <>
std::vector<std::pair<std::string, hash::InplaceChainedMapConfig>>
Configs<hash::InplaceChainedMap>() {
  hash::InplaceChainedMapConfig random_cfg;
  random_cfg.hash.seed = 8;
  hash::InplaceChainedMapConfig learned_cfg;
  learned_cfg.hash.kind = hash::HashKind::kLearnedCdf;
  learned_cfg.hash.cdf_leaf_models = 2000;
  return {{"random", random_cfg}, {"learned-cdf", learned_cfg}};
}

template <>
std::vector<std::pair<std::string, hash::CuckooMapConfig>>
Configs<hash::CuckooMap<hash::Record>>() {
  hash::CuckooMapConfig fast;
  fast.load_factor = 0.99;
  hash::CuckooMapConfig careful;
  careful.load_factor = 0.95;
  careful.careful = true;
  return {{"avx-style", fast}, {"careful", careful}};
}

template <typename I>
class PointConformanceTest : public ::testing::Test {};

using PointImpls =
    ::testing::Types<hash::ChainedHashMap, hash::InplaceChainedMap,
                     hash::CuckooMap<hash::Record>>;
TYPED_TEST_SUITE(PointConformanceTest, PointImpls);

TYPED_TEST(PointConformanceTest, FindMatchesOracleFirstRecordWins) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    EXPECT_EQ(map.num_records(), Oracle().size()) << name;
    for (const uint64_t q : SharedProbes()) {
      const hash::Record* r = map.Find(q);
      const auto it = Oracle().find(q);
      if (it == Oracle().end()) {
        ASSERT_EQ(r, nullptr) << name << " q=" << q;
      } else {
        ASSERT_NE(r, nullptr) << name << " q=" << q;
        ASSERT_EQ(r->payload, it->second) << name << " q=" << q;
      }
    }
  }
}

TYPED_TEST(PointConformanceTest, FindBatchMatchesFind) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    const auto probes = SharedProbes();
    std::vector<const hash::Record*> out(probes.size());
    index::FindBatch(map, probes, out);
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(out[i], map.Find(probes[i])) << name << " q=" << probes[i];
    }
  }
}

TYPED_TEST(PointConformanceTest, NeverBuiltMapAnswersNull) {
  TypeParam map;
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_EQ(map.num_records(), 0u);
  std::vector<uint64_t> probes = {1, 2, 3};
  std::vector<const hash::Record*> out(3, reinterpret_cast<const hash::Record*>(1));
  index::FindBatch(map, probes, out);
  for (const hash::Record* r : out) EXPECT_EQ(r, nullptr);
}

TYPED_TEST(PointConformanceTest, StatsAreConsistent) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    const index::PointIndexStats stats = map.Stats();
    EXPECT_GT(stats.num_slots, 0u) << name;
    EXPECT_LE(stats.empty_slots, stats.num_slots) << name;
    // Non-empty primary slots plus overflow must cover every record (the
    // cuckoo stash and chained overflow live outside primary slots).
    EXPECT_GE(stats.num_slots - stats.empty_slots + stats.overflow,
              map.num_records())
        << name;
    EXPECT_GE(stats.mean_probe, 1.0) << name;
    EXPECT_GE(stats.utilization(), 0.0) << name;
    EXPECT_LE(stats.utilization(), 1.0) << name;
    EXPECT_GT(map.SizeBytes(), 0u) << name;
  }
}

// ---- The Figure-11 slot sweep under both hash families ----

TEST(ChainedSlotSweepTest, CorrectAcrossSlotBudgetsAndHashKinds) {
  const auto& records = SharedRecords();
  for (const auto& [name, base_cfg] : Configs<hash::ChainedHashMap>()) {
    for (const int pct : {75, 100, 125}) {
      hash::ChainedHashMapConfig config = base_cfg;
      config.num_slots = records.size() * pct / 100;
      hash::ChainedHashMap map;
      ASSERT_TRUE(map.Build(records, config).ok()) << name << " " << pct;
      EXPECT_EQ(map.num_slots(), config.num_slots);
      EXPECT_EQ(map.num_records(), Oracle().size());
      for (const uint64_t q : SharedProbes()) {
        const hash::Record* r = map.Find(q);
        const auto it = Oracle().find(q);
        ASSERT_EQ(r != nullptr, it != Oracle().end())
            << name << " " << pct << "% q=" << q;
        if (r != nullptr) ASSERT_EQ(r->payload, it->second);
      }
      // Undersized tables must chain; oversized learned tables waste less
      // than their random counterpart (checked in hash_test) — here we
      // only require the stats to reflect the geometry.
      if (pct < 100) EXPECT_GT(map.Stats().overflow, 0u) << name;
    }
  }
}

// ---- Type erasure: heterogeneous map families behind one handle ----

TEST(AnyPointIndexTest, ErasesHeterogeneousFamilies) {
  const auto& records = SharedRecords();
  std::vector<index::AnyPointIndex> erased;
  {
    hash::ChainedHashMap chained;
    ASSERT_TRUE(
        chained.Build(records, Configs<hash::ChainedHashMap>()[1].second)
            .ok());
    erased.emplace_back(std::move(chained));
  }
  {
    hash::InplaceChainedMap inplace;
    ASSERT_TRUE(
        inplace.Build(records, Configs<hash::InplaceChainedMap>()[0].second)
            .ok());
    erased.emplace_back(std::move(inplace));
  }
  {
    hash::CuckooMap<hash::Record> cuckoo;
    ASSERT_TRUE(
        cuckoo
            .Build(records, Configs<hash::CuckooMap<hash::Record>>()[0].second)
            .ok());
    erased.emplace_back(std::move(cuckoo));
  }

  const auto probes = SharedProbes();
  std::vector<const hash::Record*> out(probes.size());
  for (const auto& e : erased) {
    EXPECT_FALSE(e.empty());
    EXPECT_EQ(e.num_records(), Oracle().size());
    EXPECT_GT(e.SizeBytes(), 0u);
    e.FindBatch(probes, out);
    for (size_t i = 0; i < probes.size(); ++i) {
      const auto it = Oracle().find(probes[i]);
      const hash::Record* r = e.Find(probes[i]);
      ASSERT_EQ(r != nullptr, it != Oracle().end()) << probes[i];
      ASSERT_EQ(out[i], r) << probes[i];
      if (r != nullptr) ASSERT_EQ(r->payload, it->second);
    }
  }
}

TEST(AnyPointIndexTest, EmptyHandleAnswersLikeNeverBuiltMap) {
  index::AnyPointIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Find(7), nullptr);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  EXPECT_EQ(empty.num_records(), 0u);
  std::vector<uint64_t> probes = {1, 2, 3};
  std::vector<const hash::Record*> out(3,
                                       reinterpret_cast<const hash::Record*>(1));
  empty.FindBatch(probes, out);
  for (const hash::Record* r : out) EXPECT_EQ(r, nullptr);
}

}  // namespace
}  // namespace li
