// Conformance suite for the library-wide PointIndex contract: every map
// family — separate-chaining, in-place chained, bucketized cuckoo (both
// careful modes) — is (a) statically asserted to satisfy the
// index::PointIndex concept and (b) driven over the same dataset (with
// duplicate keys) through identical dynamic checks: Find must agree with
// an unordered_map oracle under first-record-wins semantics for present,
// absent, and extreme keys; FindBatch must match Find; a never-built map
// answers nullptr; Stats must be internally consistent. The chained
// family additionally sweeps the Figure-11 slot budgets (75/100/125%)
// under both hash families.
//
// The same oracle matrix is templatized over the Find calling convention
// (pointer for the static families, value-copy-out for the concurrent
// wrappers), so concurrent::ConcurrentPointIndex<Base> runs the full
// single-threaded suite — duplicate keys, erase-then-reinsert churn
// across log freezes and background rebuilds, and the slot sweep —
// proving it degenerates to exact map semantics when one thread drives
// it.

#include <gtest/gtest.h>

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_point_index.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"
#include "index/concurrent_point_index.h"
#include "index/point_index.h"

namespace li {
namespace {

// ---- Static acceptance gate: the contract holds for every map ----
static_assert(index::PointIndex<hash::ChainedHashMap>);
static_assert(index::PointIndex<hash::InplaceChainedMap>);
static_assert(index::PointIndex<hash::CuckooMap<hash::Record>>);
// Every family ships the software-pipelined batch probe.
static_assert(index::HasNativeFindBatch<hash::ChainedHashMap>);
static_assert(index::HasNativeFindBatch<hash::InplaceChainedMap>);
static_assert(index::HasNativeFindBatch<hash::CuckooMap<hash::Record>>);
// Every family's concurrent wrapper satisfies the concurrent contract.
static_assert(index::ConcurrentWritablePointIndex<
              concurrent::ConcurrentPointIndex<hash::ChainedHashMap>>);
static_assert(index::ConcurrentWritablePointIndex<
              concurrent::ConcurrentPointIndex<hash::InplaceChainedMap>>);
static_assert(index::ConcurrentWritablePointIndex<
              concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>>);

/// Calling-convention bridge: the static families return a stable
/// pointer; the concurrent wrappers copy the record out (a pointer would
/// dangle once a rebuild retires its version). Normalizing both to an
/// optional payload lets one oracle matrix drive every implementation.
template <typename I>
std::optional<uint64_t> FindPayload(const I& map, uint64_t q) {
  if constexpr (requires(const I& m) {
                  { m.Find(q) } -> std::same_as<const hash::Record*>;
                }) {
    const hash::Record* r = map.Find(q);
    if (r == nullptr) return std::nullopt;
    return r->payload;
  } else {
    hash::Record rec{};
    if (!map.Find(q, &rec)) return std::nullopt;
    return rec.payload;
  }
}

// ---- Shared dataset: 30k records with ~10% duplicate keys ----
const std::vector<hash::Record>& SharedRecords() {
  static const std::vector<hash::Record> records = [] {
    const auto keys = data::GenUniform(30'000, 51, uint64_t{1} << 44);
    std::vector<hash::Record> r;
    r.reserve(keys.size() + keys.size() / 10);
    for (size_t i = 0; i < keys.size(); ++i) {
      r.push_back({keys[i], i, 0});
    }
    // Duplicates carry a poisoned payload: first record must win.
    for (size_t i = 0; i < keys.size(); i += 10) {
      r.push_back({keys[i], 0xDEAD0000 + i, 0});
    }
    return r;
  }();
  return records;
}

const std::unordered_map<uint64_t, uint64_t>& Oracle() {
  static const std::unordered_map<uint64_t, uint64_t> oracle = [] {
    std::unordered_map<uint64_t, uint64_t> o;
    for (const hash::Record& r : SharedRecords()) {
      o.emplace(r.key, r.payload);  // emplace keeps the first record
    }
    return o;
  }();
  return oracle;
}

std::vector<uint64_t> SharedProbes() {
  std::vector<uint64_t> probes;
  Xorshift128Plus rng(52);
  const auto& records = SharedRecords();
  for (int i = 0; i < 20'000; ++i) {
    probes.push_back(rng.NextBounded(2)
                         ? records[rng.NextBounded(records.size())].key
                         : rng.Next());
  }
  probes.push_back(0);
  probes.push_back(~uint64_t{0});
  return probes;
}

/// The shared dynamic core: Find agrees with `oracle` (first-record-wins)
/// for present, absent, and extreme keys — one definition for the static
/// families and the concurrent wrappers.
template <typename I>
void CheckOracleAgreement(
    const I& map, const std::unordered_map<uint64_t, uint64_t>& oracle,
    const std::string& name) {
  for (const uint64_t q : SharedProbes()) {
    const std::optional<uint64_t> got = FindPayload(map, q);
    const auto it = oracle.find(q);
    if (it == oracle.end()) {
      ASSERT_FALSE(got.has_value()) << name << " q=" << q;
    } else {
      ASSERT_TRUE(got.has_value()) << name << " q=" << q;
      ASSERT_EQ(*got, it->second) << name << " q=" << q;
    }
  }
}

// ---- Per-implementation build configs (both hash/careful variants) ----
template <typename I>
std::vector<std::pair<std::string, typename I::config_type>> Configs();

template <>
std::vector<std::pair<std::string, hash::ChainedHashMapConfig>>
Configs<hash::ChainedHashMap>() {
  hash::ChainedHashMapConfig random_cfg;
  random_cfg.hash.seed = 7;
  hash::ChainedHashMapConfig learned_cfg;
  learned_cfg.hash.kind = hash::HashKind::kLearnedCdf;
  learned_cfg.hash.cdf_leaf_models = 2000;
  return {{"random", random_cfg}, {"learned-cdf", learned_cfg}};
}

template <>
std::vector<std::pair<std::string, hash::InplaceChainedMapConfig>>
Configs<hash::InplaceChainedMap>() {
  hash::InplaceChainedMapConfig random_cfg;
  random_cfg.hash.seed = 8;
  hash::InplaceChainedMapConfig learned_cfg;
  learned_cfg.hash.kind = hash::HashKind::kLearnedCdf;
  learned_cfg.hash.cdf_leaf_models = 2000;
  return {{"random", random_cfg}, {"learned-cdf", learned_cfg}};
}

template <>
std::vector<std::pair<std::string, hash::CuckooMapConfig>>
Configs<hash::CuckooMap<hash::Record>>() {
  hash::CuckooMapConfig fast;
  fast.load_factor = 0.99;
  hash::CuckooMapConfig careful;
  careful.load_factor = 0.95;
  careful.careful = true;
  return {{"avx-style", fast}, {"careful", careful}};
}

/// Concurrent wrappers inherit the base families' config matrix. A tiny
/// log forces freezes mid-matrix; automatic rebuilds stay off so the
/// churn tests trigger them at deterministic points.
template <typename Base>
std::vector<std::pair<
    std::string, typename concurrent::ConcurrentPointIndex<Base>::Config>>
WrapConfigs() {
  std::vector<std::pair<
      std::string, typename concurrent::ConcurrentPointIndex<Base>::Config>>
      out;
  for (const auto& [name, base_cfg] : Configs<Base>()) {
    typename concurrent::ConcurrentPointIndex<Base>::Config cfg;
    cfg.base = base_cfg;
    cfg.log_cap = 64;
    cfg.rebuild_entries = 0;
    out.push_back({name, cfg});
  }
  return out;
}

template <>
std::vector<std::pair<
    std::string,
    concurrent::ConcurrentPointIndex<hash::ChainedHashMap>::Config>>
Configs<concurrent::ConcurrentPointIndex<hash::ChainedHashMap>>() {
  return WrapConfigs<hash::ChainedHashMap>();
}

template <>
std::vector<std::pair<
    std::string,
    concurrent::ConcurrentPointIndex<hash::InplaceChainedMap>::Config>>
Configs<concurrent::ConcurrentPointIndex<hash::InplaceChainedMap>>() {
  return WrapConfigs<hash::InplaceChainedMap>();
}

template <>
std::vector<std::pair<
    std::string,
    concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>::Config>>
Configs<concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>>() {
  return WrapConfigs<hash::CuckooMap<hash::Record>>();
}

template <typename I>
class PointConformanceTest : public ::testing::Test {};

using PointImpls =
    ::testing::Types<hash::ChainedHashMap, hash::InplaceChainedMap,
                     hash::CuckooMap<hash::Record>>;
TYPED_TEST_SUITE(PointConformanceTest, PointImpls);

TYPED_TEST(PointConformanceTest, FindMatchesOracleFirstRecordWins) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    EXPECT_EQ(map.num_records(), Oracle().size()) << name;
    CheckOracleAgreement(map, Oracle(), name);
  }
}

TYPED_TEST(PointConformanceTest, FindBatchMatchesFind) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    const auto probes = SharedProbes();
    std::vector<const hash::Record*> out(probes.size());
    index::FindBatch(map, probes, out);
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(out[i], map.Find(probes[i])) << name << " q=" << probes[i];
    }
  }
}

TYPED_TEST(PointConformanceTest, NeverBuiltMapAnswersNull) {
  TypeParam map;
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_EQ(map.num_records(), 0u);
  std::vector<uint64_t> probes = {1, 2, 3};
  std::vector<const hash::Record*> out(3, reinterpret_cast<const hash::Record*>(1));
  index::FindBatch(map, probes, out);
  for (const hash::Record* r : out) EXPECT_EQ(r, nullptr);
}

TYPED_TEST(PointConformanceTest, StatsAreConsistent) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    const index::PointIndexStats stats = map.Stats();
    EXPECT_GT(stats.num_slots, 0u) << name;
    EXPECT_LE(stats.empty_slots, stats.num_slots) << name;
    // Non-empty primary slots plus overflow must cover every record (the
    // cuckoo stash and chained overflow live outside primary slots).
    EXPECT_GE(stats.num_slots - stats.empty_slots + stats.overflow,
              map.num_records())
        << name;
    EXPECT_GE(stats.mean_probe, 1.0) << name;
    EXPECT_GE(stats.utilization(), 0.0) << name;
    EXPECT_LE(stats.utilization(), 1.0) << name;
    EXPECT_GT(map.SizeBytes(), 0u) << name;
  }
}

// ---- The Figure-11 slot sweep under both hash families ----

TEST(ChainedSlotSweepTest, CorrectAcrossSlotBudgetsAndHashKinds) {
  const auto& records = SharedRecords();
  for (const auto& [name, base_cfg] : Configs<hash::ChainedHashMap>()) {
    for (const int pct : {75, 100, 125}) {
      hash::ChainedHashMapConfig config = base_cfg;
      config.num_slots = records.size() * pct / 100;
      hash::ChainedHashMap map;
      ASSERT_TRUE(map.Build(records, config).ok()) << name << " " << pct;
      EXPECT_EQ(map.num_slots(), config.num_slots);
      EXPECT_EQ(map.num_records(), Oracle().size());
      for (const uint64_t q : SharedProbes()) {
        const hash::Record* r = map.Find(q);
        const auto it = Oracle().find(q);
        ASSERT_EQ(r != nullptr, it != Oracle().end())
            << name << " " << pct << "% q=" << q;
        if (r != nullptr) ASSERT_EQ(r->payload, it->second);
      }
      // Undersized tables must chain; oversized learned tables waste less
      // than their random counterpart (checked in hash_test) — here we
      // only require the stats to reflect the geometry.
      if (pct < 100) EXPECT_GT(map.Stats().overflow, 0u) << name;
    }
  }
}

// ---- Type erasure: heterogeneous map families behind one handle ----

TEST(AnyPointIndexTest, ErasesHeterogeneousFamilies) {
  const auto& records = SharedRecords();
  std::vector<index::AnyPointIndex> erased;
  {
    hash::ChainedHashMap chained;
    ASSERT_TRUE(
        chained.Build(records, Configs<hash::ChainedHashMap>()[1].second)
            .ok());
    erased.emplace_back(std::move(chained));
  }
  {
    hash::InplaceChainedMap inplace;
    ASSERT_TRUE(
        inplace.Build(records, Configs<hash::InplaceChainedMap>()[0].second)
            .ok());
    erased.emplace_back(std::move(inplace));
  }
  {
    hash::CuckooMap<hash::Record> cuckoo;
    ASSERT_TRUE(
        cuckoo
            .Build(records, Configs<hash::CuckooMap<hash::Record>>()[0].second)
            .ok());
    erased.emplace_back(std::move(cuckoo));
  }

  const auto probes = SharedProbes();
  std::vector<const hash::Record*> out(probes.size());
  for (const auto& e : erased) {
    EXPECT_FALSE(e.empty());
    EXPECT_EQ(e.num_records(), Oracle().size());
    EXPECT_GT(e.SizeBytes(), 0u);
    e.FindBatch(probes, out);
    for (size_t i = 0; i < probes.size(); ++i) {
      const auto it = Oracle().find(probes[i]);
      const hash::Record* r = e.Find(probes[i]);
      ASSERT_EQ(r != nullptr, it != Oracle().end()) << probes[i];
      ASSERT_EQ(out[i], r) << probes[i];
      if (r != nullptr) ASSERT_EQ(r->payload, it->second);
    }
  }
}

TEST(AnyPointIndexTest, EmptyHandleAnswersLikeNeverBuiltMap) {
  index::AnyPointIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Find(7), nullptr);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  EXPECT_EQ(empty.num_records(), 0u);
  std::vector<uint64_t> probes = {1, 2, 3};
  std::vector<const hash::Record*> out(3,
                                       reinterpret_cast<const hash::Record*>(1));
  empty.FindBatch(probes, out);
  for (const hash::Record* r : out) EXPECT_EQ(r, nullptr);
}

// ---- The same matrix over the concurrent wrappers (single-threaded:
// the wrapper must degenerate to exact map semantics) ----

template <typename I>
class ConcurrentPointConformanceTest : public ::testing::Test {};

using ConcurrentPointImpls = ::testing::Types<
    concurrent::ConcurrentPointIndex<hash::ChainedHashMap>,
    concurrent::ConcurrentPointIndex<hash::InplaceChainedMap>,
    concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>>;
TYPED_TEST_SUITE(ConcurrentPointConformanceTest, ConcurrentPointImpls);

TYPED_TEST(ConcurrentPointConformanceTest, FindMatchesOracleFirstRecordWins) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    EXPECT_EQ(map.num_records(), Oracle().size()) << name;
    CheckOracleAgreement(map, Oracle(), name);
    // A rebuild folds nothing here (no writes) but must not perturb
    // answers — the published version swap is invisible to readers.
    ASSERT_TRUE(map.Rebuild().ok()) << name;
    CheckOracleAgreement(map, Oracle(), name);
  }
}

TYPED_TEST(ConcurrentPointConformanceTest, FindBatchMatchesFind) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    const auto probes = SharedProbes();
    std::vector<hash::Record> recs(probes.size());
    std::vector<uint8_t> found(probes.size(), 2);
    map.FindBatch(probes, recs, found);
    for (size_t i = 0; i < probes.size(); ++i) {
      const std::optional<uint64_t> got = FindPayload(map, probes[i]);
      ASSERT_EQ(found[i] != 0, got.has_value())
          << name << " q=" << probes[i];
      if (found[i] != 0) {
        ASSERT_EQ(recs[i].payload, *got) << name << " q=" << probes[i];
      }
    }
  }
}

// Duplicate-key / erase-then-reinsert churn: every 10th oracle key is
// erased, probed absent, reinserted with a fresh payload (insert-after-
// erase must land: first-wins applies to *live* keys only), then
// shadow-upserted. The 64-entry log forces freezes throughout, and a
// mid-churn plus an end-of-churn rebuild force the overlay through the
// fold-and-rebase path; the full probe matrix must agree with the
// updated oracle after every phase.
TYPED_TEST(ConcurrentPointConformanceTest, EraseThenReinsertAcrossRebuilds) {
  for (const auto& [name, config] : Configs<TypeParam>()) {
    TypeParam map;
    ASSERT_TRUE(map.Build(SharedRecords(), config).ok()) << name;
    std::unordered_map<uint64_t, uint64_t> oracle = Oracle();

    std::vector<uint64_t> victims;
    for (size_t i = 0; i < SharedRecords().size(); i += 10) {
      victims.push_back(SharedRecords()[i].key);
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());

    size_t step = 0;
    for (const uint64_t k : victims) {
      ASSERT_TRUE(map.Erase(k)) << name << " k=" << k;
      ASSERT_FALSE(map.Erase(k)) << name << " double erase k=" << k;
      ASSERT_FALSE(FindPayload(map, k).has_value()) << name << " k=" << k;
      const uint64_t fresh = k ^ 0xBEEF;
      ASSERT_TRUE(map.Insert({k, fresh, 0})) << name << " k=" << k;
      // First-wins: a second insert of a live key must not overwrite.
      ASSERT_FALSE(map.Insert({k, 0xDEAD, 0})) << name << " k=" << k;
      ASSERT_EQ(FindPayload(map, k), std::optional<uint64_t>(fresh))
          << name << " k=" << k;
      // Upsert overwrites and reports the key was present.
      ASSERT_FALSE(map.Upsert({k, fresh + 1, 0})) << name << " k=" << k;
      oracle[k] = fresh + 1;
      if (++step == victims.size() / 2) {
        ASSERT_TRUE(map.Rebuild().ok()) << name;
      }
    }
    EXPECT_EQ(map.num_records(), oracle.size()) << name;
    CheckOracleAgreement(map, oracle, name + "/pre-rebuild");
    ASSERT_TRUE(map.Rebuild().ok()) << name;
    EXPECT_EQ(map.num_records(), oracle.size()) << name;
    CheckOracleAgreement(map, oracle, name + "/post-rebuild");
    // After a full fold the overlay is empty: everything lives in the
    // rebuilt base table.
    EXPECT_EQ(map.ConcurrentStats().delta_entries, 0u) << name;
  }
}

// The Figure-11 slot sweep through the concurrent wrapper: an explicit
// slot budget becomes a slots-per-record ratio, so a rebuild after
// insert churn resizes the table instead of pinning the build-time
// count. Only the chained family exposes a slot budget.
TYPED_TEST(ConcurrentPointConformanceTest, SlotSweepResizesAcrossRebuilds) {
  typename TypeParam::Config probe_cfg{};
  if constexpr (requires { probe_cfg.base.num_slots; }) {
    const auto& records = SharedRecords();
    for (const auto& [name, base_config] : Configs<TypeParam>()) {
      for (const int pct : {75, 100, 125}) {
        auto config = base_config;
        config.base.num_slots = records.size() * pct / 100;
        TypeParam map;
        ASSERT_TRUE(map.Build(records, config).ok()) << name << " " << pct;
        CheckOracleAgreement(map, Oracle(), name);
        std::unordered_map<uint64_t, uint64_t> oracle = Oracle();
        // Grow by 10% fresh keys, then rebuild: the slot count must
        // track the record count at the configured ratio.
        Xorshift128Plus rng(53);
        for (size_t i = 0; i < records.size() / 10; ++i) {
          const uint64_t k = (uint64_t{1} << 45) + rng.NextBounded(1u << 30);
          if (oracle.emplace(k, k + 1).second) {
            ASSERT_TRUE(map.Insert({k, k + 1, 0})) << name;
          }
        }
        ASSERT_TRUE(map.Rebuild().ok()) << name << " " << pct;
        EXPECT_EQ(map.num_records(), oracle.size()) << name;
        const size_t want_slots = static_cast<size_t>(
            static_cast<double>(config.base.num_slots) /
                static_cast<double>(Oracle().size()) *
                static_cast<double>(oracle.size()) +
            0.5);
        EXPECT_NEAR(static_cast<double>(map.Stats().num_slots),
                    static_cast<double>(want_slots), 2.0)
            << name << " " << pct;
        CheckOracleAgreement(map, oracle, name + "/resized");
      }
    }
  } else {
    GTEST_SKIP() << "family has no explicit slot budget";
  }
}

TYPED_TEST(ConcurrentPointConformanceTest, NeverBuiltAnswersAbsent) {
  TypeParam map;
  EXPECT_FALSE(FindPayload(map, 0).has_value());
  EXPECT_FALSE(FindPayload(map, 42).has_value());
  EXPECT_EQ(map.num_records(), 0u);
  EXPECT_FALSE(map.Insert({1, 2, 0}));
  EXPECT_FALSE(map.Erase(1));
  std::vector<uint64_t> probes = {1, 2, 3};
  std::vector<hash::Record> recs(3);
  std::vector<uint8_t> found(3, 2);
  map.FindBatch(probes, recs, found);
  for (const uint8_t f : found) EXPECT_EQ(f, 0);
}

// ---- Type erasure: concurrent families behind one writable handle ----

TEST(AnyConcurrentWritablePointIndexTest, ErasesAndForwardsWrites) {
  using Conc = concurrent::ConcurrentPointIndex<hash::ChainedHashMap>;
  Conc map;
  ASSERT_TRUE(
      map.Build(SharedRecords(), Configs<Conc>()[0].second).ok());
  index::AnyConcurrentWritablePointIndex any(std::move(map));
  EXPECT_FALSE(any.empty());
  EXPECT_EQ(any.num_records(), Oracle().size());
  CheckOracleAgreement(any, Oracle(), "erased");
  const uint64_t fresh_key = ~uint64_t{1};
  EXPECT_TRUE(any.Insert({fresh_key, 7, 0}));
  EXPECT_EQ(FindPayload(any, fresh_key), std::optional<uint64_t>(7));
  any.RequestRebuild();
  any.WaitForRebuilds();
  EXPECT_EQ(FindPayload(any, fresh_key), std::optional<uint64_t>(7));
  EXPECT_TRUE(any.Erase(fresh_key));
  EXPECT_FALSE(FindPayload(any, fresh_key).has_value());
  EXPECT_GT(any.ConcurrentStats().inserts, 0u);
}

TEST(AnyConcurrentWritablePointIndexTest, EmptyHandleDropsEverything) {
  index::AnyConcurrentWritablePointIndex empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(FindPayload(empty, 7).has_value());
  EXPECT_EQ(empty.num_records(), 0u);
  EXPECT_EQ(empty.SizeBytes(), 0u);
  EXPECT_FALSE(empty.Insert({1, 2, 0}));
  EXPECT_FALSE(empty.Upsert({1, 2, 0}));
  EXPECT_FALSE(empty.Erase(1));
  std::vector<uint64_t> probes = {1, 2, 3};
  std::vector<hash::Record> recs(3);
  std::vector<uint8_t> found(3, 2);
  empty.FindBatch(probes, recs, found);
  for (const uint8_t f : found) EXPECT_EQ(f, 0);
  empty.RequestRebuild();
  empty.WaitForRebuilds();
}

}  // namespace
}  // namespace li
