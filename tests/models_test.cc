// Tests for the model zoo: closed-form fits, NN training convergence,
// error-bound machinery, tokenizer, and the naive-executor equivalence.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "models/linear.h"
#include "models/model.h"
#include "models/multivariate.h"
#include "models/naive_executor.h"
#include "models/nn.h"
#include "models/tokenizer.h"
#include "models/vec_linear.h"

namespace li::models {
namespace {

TEST(LinearModelTest, ExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 5.0);
  }
  LinearModel m;
  ASSERT_TRUE(m.Fit(xs, ys).ok());
  EXPECT_NEAR(m.slope(), 2.0, 1e-9);
  EXPECT_NEAR(m.intercept(), 5.0, 1e-9);
  EXPECT_NEAR(m.Predict(50.5), 106.0, 1e-6);
  EXPECT_TRUE(m.IsMonotonic());
}

TEST(LinearModelTest, HugeKeysStayConditioned) {
  // Keys near 1e18 (the Maps fixed-point scale) must not destroy the fit.
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(1e18 + i * 1e10);
    ys.push_back(i);
  }
  LinearModel m;
  ASSERT_TRUE(m.Fit(xs, ys).ok());
  for (int i = 0; i < 1000; i += 97) {
    EXPECT_NEAR(m.Predict(xs[i]), ys[i], 1e-3) << i;
  }
}

TEST(LinearModelTest, DegenerateInputsFallBackToConstant) {
  LinearModel m;
  ASSERT_TRUE(m.Fit({}, {}).ok());
  EXPECT_DOUBLE_EQ(m.Predict(123.0), 0.0);
  std::vector<double> same_x = {5, 5, 5};
  std::vector<double> ys = {1, 2, 3};
  ASSERT_TRUE(m.Fit(same_x, ys).ok());
  EXPECT_NEAR(m.Predict(5.0), 2.0, 1e-9);  // mean of ys
}

TEST(LinearModelTest, SizeMismatchRejected) {
  LinearModel m;
  std::vector<double> xs = {1, 2};
  std::vector<double> ys = {1};
  EXPECT_FALSE(m.Fit(xs, ys).ok());
}

TEST(OffsetModelTest, DenseKeysPerfect) {
  // The introduction's O(1) case: keys 1000..1999 at positions 0..999.
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(1000 + i);
    ys.push_back(i);
  }
  OffsetModel m;
  ASSERT_TRUE(m.Fit(xs, ys).ok());
  for (int i = 0; i < 1000; i += 37) {
    EXPECT_DOUBLE_EQ(m.Predict(1000 + i), i);
  }
}

TEST(MultivariateTest, FitsQuadratic) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = i / 500.0;
    xs.push_back(x);
    ys.push_back(3.0 * x * x + 2.0 * x + 1.0);
  }
  MultivariateModel m;
  ASSERT_TRUE(m.Fit(xs, ys, kFeatX | kFeatSq).ok());
  for (int i = 0; i < 500; i += 61) {
    EXPECT_NEAR(m.Predict(xs[i]), ys[i], 1e-6);
  }
}

TEST(MultivariateTest, AutoSelectBeatsPlainLinearOnLogCurve) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 2000; ++i) {
    xs.push_back(i);
    ys.push_back(std::log(static_cast<double>(i)) * 100.0);
  }
  MultivariateModel mv;
  ASSERT_TRUE(mv.FitAutoSelect(xs, ys).ok());
  LinearModel lin;
  ASSERT_TRUE(lin.Fit(xs, ys).ok());
  EXPECT_LT(MeanSquaredError(mv, xs, ys), MeanSquaredError(lin, xs, ys));
}

TEST(MultivariateTest, UnderdeterminedFallsBackToMean) {
  MultivariateModel m;
  std::vector<double> xs = {1, 2};
  std::vector<double> ys = {10, 20};
  ASSERT_TRUE(m.Fit(xs, ys).ok());  // 2 points < 5 params
  EXPECT_NEAR(m.Predict(1.5), 15.0, 1e-9);
}

TEST(ErrorBoundsTest, BoundsContainAllResiduals) {
  const auto keys = data::GenLognormal(5000, 2);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }
  LinearModel m;
  ASSERT_TRUE(m.Fit(xs, ys).ok());
  const ErrorBounds b = ComputeErrorBounds(m, xs, ys);
  EXPECT_LE(b.min_err, 0.0);
  EXPECT_GE(b.max_err, 0.0);
  for (size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - m.Predict(xs[i]);
    EXPECT_GE(e, b.min_err - 1e-9);
    EXPECT_LE(e, b.max_err + 1e-9);
  }
  EXPECT_GT(b.std_err, 0.0);
  EXPECT_LE(b.std_err, b.MaxAbs());
}

TEST(MonotonicTest, LinearMonotoneDetected) {
  LinearModel up(2.0, 0.0), down(-1.0, 0.0);
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_TRUE(IsMonotonicOn(up, xs));
  EXPECT_FALSE(IsMonotonicOn(down, xs));
}

TEST(NeuralNetTest, ZeroHiddenLayersIsLinearRegression) {
  // §3.3: "a zero hidden-layer NN is equivalent to linear regression."
  std::vector<double> xs, ys;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 10.0);
  }
  NNConfig c;
  c.epochs = 60;
  c.learning_rate = 3e-2;
  NeuralNet net;
  ASSERT_TRUE(net.Fit(xs, ys, c).ok());
  double max_rel = 0.0;
  for (int i = 0; i < 4000; i += 101) {
    max_rel = std::max(max_rel,
                       std::fabs(net.Predict(xs[i]) - ys[i]) / (ys[i] + 1.0));
  }
  EXPECT_LT(max_rel, 0.05);
}

TEST(NeuralNetTest, HiddenLayersFitNonlinearCdf) {
  // A lognormal CDF is far from linear; one hidden layer must cut the error
  // dramatically vs the best straight line.
  const auto keys = data::GenLognormal(20'000, 5);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }
  LinearModel lin;
  ASSERT_TRUE(lin.Fit(xs, ys).ok());
  NNConfig c;
  c.hidden = {16};
  c.epochs = 30;
  NeuralNet net;
  ASSERT_TRUE(net.Fit(xs, ys, c).ok());
  EXPECT_LT(MeanSquaredError(net, xs, ys), MeanSquaredError(lin, xs, ys) / 2);
}

TEST(NeuralNetTest, ConfigValidation) {
  NeuralNet net;
  NNConfig c;
  c.hidden = {8, 8, 8};  // 3 hidden layers not allowed
  EXPECT_FALSE(net.Fit({}, {}, c).ok());
  c.hidden = {0};
  EXPECT_FALSE(net.Fit({}, {}, c).ok());
  c.hidden = {NeuralNet::kMaxWidth + 1};
  EXPECT_FALSE(net.Fit({}, {}, c).ok());
}

TEST(NeuralNetTest, SizeAndOpsAccounting) {
  std::vector<double> xs = {1, 2, 3, 4}, ys = {1, 2, 3, 4};
  NNConfig c;
  c.hidden = {32, 32};
  c.epochs = 1;
  NeuralNet net;
  ASSERT_TRUE(net.Fit(xs, ys, c).ok());
  // Layers: 1->32, 32->32, 32->1 weights + biases.
  const size_t weights = 32 + 32 * 32 + 32;
  const size_t biases = 32 + 32 + 1;
  EXPECT_EQ(net.SizeBytes(),
            (weights + biases + 2 + 2) * sizeof(double));
  EXPECT_EQ(net.OpsPerInference(), 2 * weights + biases);
}

TEST(VecLinearTest, FitsPlaneExactly) {
  // y = 2 a + 3 b - 1 over a small grid.
  std::vector<double> feats;
  std::vector<double> ys;
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      feats.push_back(a);
      feats.push_back(b);
      ys.push_back(2.0 * a + 3.0 * b - 1.0);
    }
  }
  VecLinearModel m;
  ASSERT_TRUE(m.Fit(feats, 100, 2, ys).ok());
  const std::vector<double> probe = {4.0, 7.0};
  // Ridge regularization introduces a tiny bias; exactness up to ~1e-3.
  EXPECT_NEAR(m.PredictVec(probe), 2 * 4 + 3 * 7 - 1, 1e-3);
}

TEST(VecLinearTest, UnderdeterminedConstant) {
  VecLinearModel m;
  std::vector<double> feats = {1, 2, 3};
  std::vector<double> ys = {6};
  ASSERT_TRUE(m.Fit(feats, 1, 3, ys).ok());
  const std::vector<double> probe = {9, 9, 9};
  EXPECT_NEAR(m.PredictVec(probe), 6.0, 1e-9);
}

TEST(TokenizerTest, AsciiTruncationAndPadding) {
  StringTokenizer tok(6);
  const auto v = tok.Tokenize("AB");
  ASSERT_EQ(v.size(), 6u);
  EXPECT_DOUBLE_EQ(v[0], 65);
  EXPECT_DOUBLE_EQ(v[1], 66);
  EXPECT_DOUBLE_EQ(v[2], 0);
  const auto w = tok.Tokenize("abcdefghij");
  EXPECT_DOUBLE_EQ(w[5], 'f');  // truncated at 6
}

TEST(TokenizerTest, PreservesLexicographicOrderOnPrefixDistinct) {
  StringTokenizer tok(8);
  const auto a = tok.Tokenize("apple");
  const auto b = tok.Tokenize("banana");
  EXPECT_LT(a, b);  // vector comparison mirrors lexicographic order
}

TEST(NaiveExecutorTest, MatchesCompiledInference) {
  const auto keys = data::GenLognormal(5000, 4);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }
  NNConfig c;
  c.hidden = {32, 32};
  c.epochs = 3;
  NeuralNet net;
  ASSERT_TRUE(net.Fit(xs, ys, c).ok());
  NaiveGraphExecutor slow(net);
  for (size_t i = 0; i < xs.size(); i += 503) {
    EXPECT_NEAR(slow.Predict(xs[i]), net.Predict(xs[i]), 1e-9);
  }
  EXPECT_EQ(slow.num_ops(), 3u * 2 + 2u);  // 2x(MatMul,Add,Relu) + MatMul,Add
}

}  // namespace
}  // namespace li::models
