// Tests for the point-index substrate: hash functions (random, learned
// CDF, the config-selected PointHash), conflict counting, and the
// chained / cuckoo / in-place-chained maps built through the PointIndex
// contract with both hash families.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"

namespace li::hash {
namespace {

std::vector<Record> MakeRecords(const std::vector<uint64_t>& keys) {
  std::vector<Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(Record{keys[i], i, static_cast<uint32_t>(i & 0xFFFF)});
  }
  return records;
}

ChainedHashMapConfig RandomChained(uint64_t num_slots, uint64_t seed = 7) {
  ChainedHashMapConfig config;
  config.num_slots = num_slots;
  config.hash.kind = HashKind::kRandom;
  config.hash.seed = seed;
  return config;
}

ChainedHashMapConfig LearnedChained(uint64_t num_slots,
                                    size_t leaf_models = 10'000) {
  ChainedHashMapConfig config;
  config.num_slots = num_slots;
  config.hash.kind = HashKind::kLearnedCdf;
  config.hash.cdf_leaf_models = leaf_models;
  return config;
}

TEST(RandomHashTest, InRangeAndDeterministic) {
  RandomHash h(1000, 5);
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 10'000; ++k) {
    const uint64_t s = h(k);
    EXPECT_LT(s, 1000u);
    seen.insert(s);
  }
  EXPECT_GT(seen.size(), 990u);  // essentially all slots reachable
  RandomHash h2(1000, 5);
  EXPECT_EQ(h(123456), h2(123456));
}

TEST(ConflictRateTest, BirthdayParadoxForRandomHash) {
  // n keys into n slots: expected conflict fraction ~ 1 - (1-e^-1) = 36.8%.
  const auto keys = data::GenUniform(200'000, 1);
  RandomHash h(keys.size(), 3);
  const double rate = ConflictRate(keys, h, keys.size());
  EXPECT_NEAR(rate, 0.368, 0.01);
}

TEST(LearnedHashTest, PerfectOnSequentialKeys) {
  // The §4 ideal: keys 0..n-1 into n slots -> zero conflicts.
  const auto keys = data::GenSequential(100'000);
  LearnedHash<models::LinearModel> h;
  rmi::RmiConfig config;
  config.num_leaf_models = 128;
  ASSERT_TRUE(h.Build(keys, keys.size(), config).ok());
  EXPECT_LT(ConflictRate(keys, h, keys.size()), 0.001);
}

TEST(LearnedHashTest, BeatsRandomOnLearnableData) {
  const auto keys = data::GenMaps(200'000, 2);
  LearnedHash<models::LinearModel> learned;
  rmi::RmiConfig config;
  config.num_leaf_models = 10'000;
  ASSERT_TRUE(learned.Build(keys, keys.size(), config).ok());
  RandomHash random(keys.size(), 1);
  const double lr = ConflictRate(keys, learned, keys.size());
  const double rr = ConflictRate(keys, random, keys.size());
  EXPECT_LT(lr, rr);  // Figure-8 headline
}

TEST(LearnedHashTest, SlotsAlwaysInRange) {
  const auto keys = data::GenLognormal(50'000, 3);
  LearnedHash<models::LinearModel> h;
  rmi::RmiConfig config;
  config.num_leaf_models = 1000;
  ASSERT_TRUE(h.Build(keys, 777, config).ok());
  Xorshift128Plus rng(4);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_LT(h(rng.Next()), 777u);  // arbitrary (unseen) keys too
  }
}

TEST(LearnedHashTest, RescaleMatchesDivisionWithinOneSlot) {
  // The fixed-point rescale ((pos * floor(M 2^64 / N)) >> 64) may round
  // one slot below the exact (pos * M) / N, never above, and stays in
  // range — the satellite optimization must not change hash semantics.
  const auto keys = data::GenLognormal(80'000, 5);
  LearnedHash<models::LinearModel> h;
  rmi::RmiConfig config;
  config.num_leaf_models = 2000;
  for (const uint64_t slots : {777u, 80'000u, 123'456u}) {
    ASSERT_TRUE(h.Build(keys, slots, config).ok());
    Xorshift128Plus rng(6);
    for (int i = 0; i < 20'000; ++i) {
      const uint64_t q = rng.Next();
      const uint64_t fast = h(q);
      const uint64_t exact = h.SlotViaDivision(q);
      EXPECT_LE(fast, exact) << q;
      EXPECT_LE(exact - fast, 1u) << q;
      EXPECT_LT(fast, slots) << q;
    }
  }
}

TEST(PointHashTest, ConfigSelectsFamily) {
  const auto keys = data::GenSequential(50'000);
  HashConfig random_cfg;
  random_cfg.kind = HashKind::kRandom;
  random_cfg.seed = 11;
  PointHash random_fn;
  ASSERT_TRUE(random_fn.Build(keys, keys.size(), random_cfg).ok());
  EXPECT_EQ(random_fn.kind(), HashKind::kRandom);

  HashConfig learned_cfg;
  learned_cfg.kind = HashKind::kLearnedCdf;
  PointHash learned_fn;
  ASSERT_TRUE(learned_fn.Build(keys, keys.size(), learned_cfg).ok());
  EXPECT_EQ(learned_fn.kind(), HashKind::kLearnedCdf);

  // Sequential keys: the learned CDF is conflict-free, random is not.
  EXPECT_LT(ConflictRate(keys, learned_fn, keys.size()), 0.001);
  EXPECT_GT(ConflictRate(keys, random_fn, keys.size()), 0.3);
  // The learned model costs real memory; the random mix does not.
  EXPECT_GT(learned_fn.SizeBytes(), random_fn.SizeBytes());
}

TEST(ChainedHashMapTest, FindAllRecords) {
  const auto keys = data::GenUniform(50'000, 5);
  const auto records = MakeRecords(keys);
  ChainedHashMap map;
  ASSERT_TRUE(map.Build(records, RandomChained(keys.size())).ok());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record* r = map.Find(keys[i]);
    ASSERT_NE(r, nullptr) << keys[i];
    EXPECT_EQ(r->payload, i);
  }
  EXPECT_EQ(map.num_records(), records.size());
}

TEST(ChainedHashMapTest, AbsentKeysReturnNull) {
  const auto keys = data::GenUniform(10'000, 6, uint64_t{1} << 40);
  const auto records = MakeRecords(keys);
  ChainedHashMap map;
  ASSERT_TRUE(map.Build(records, RandomChained(keys.size())).ok());
  Xorshift128Plus rng(8);
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) EXPECT_EQ(map.Find(probe), nullptr);
  }
}

TEST(ChainedHashMapTest, NeverBuiltMapFindsNothing) {
  // Regression: Find on a default-constructed map used to index an empty
  // slot vector (UB); the contract requires nullptr.
  ChainedHashMap map;
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(123456789), nullptr);
  std::vector<uint64_t> keys = {1, 2, 3};
  std::vector<const Record*> out(3, reinterpret_cast<const Record*>(1));
  map.FindBatch(keys, out);
  for (const Record* r : out) EXPECT_EQ(r, nullptr);
  EXPECT_EQ(map.num_records(), 0u);
  EXPECT_EQ(map.Stats().num_slots, 0u);
}

TEST(ChainedHashMapTest, FewerSlotsThanRecordsStillCorrect) {
  const auto keys = data::GenUniform(20'000, 7);
  const auto records = MakeRecords(keys);
  const uint64_t slots = keys.size() * 3 / 4;  // the 75% configuration
  ChainedHashMap map;
  ASSERT_TRUE(map.Build(records, RandomChained(slots, 9)).ok());
  for (size_t i = 0; i < records.size(); i += 13) {
    const Record* r = map.Find(keys[i]);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->payload, i);
  }
  EXPECT_GT(map.overflow_size(), 0u);
}

TEST(ChainedHashMapTest, LearnedHashWastesLessSpace) {
  // Appendix-B headline: learned hash -> fewer empty slots.
  const auto keys = data::GenMaps(100'000, 8);
  const auto records = MakeRecords(keys);
  ChainedHashMap learned_map;
  ASSERT_TRUE(learned_map.Build(records, LearnedChained(keys.size())).ok());
  ChainedHashMap random_map;
  ASSERT_TRUE(random_map.Build(records, RandomChained(keys.size(), 3)).ok());
  EXPECT_LT(learned_map.EmptySlots(), random_map.EmptySlots());
  EXPECT_LT(learned_map.Stats().empty_slots, random_map.Stats().empty_slots);
}

TEST(ChainedHashMapTest, PrebuiltHashBuildMatchesConfigBuild) {
  // The LIF slot sweep trains the CDF hash once and retargets per slot
  // count; the result must be indistinguishable from a from-scratch
  // Build at that slot count.
  const auto keys = data::GenMaps(50'000, 25);
  const auto records = MakeRecords(keys);
  const auto config = LearnedChained(keys.size() * 3 / 4, 2000);
  ChainedHashMap from_config;
  ASSERT_TRUE(from_config.Build(records, config).ok());

  PointHash prebuilt;
  ASSERT_TRUE(
      BuildRecordHash(records, keys.size(), config.hash, &prebuilt).ok());
  ChainedHashMap from_prebuilt;
  ASSERT_TRUE(from_prebuilt.Build(records, config, prebuilt).ok());

  EXPECT_EQ(from_prebuilt.num_slots(), from_config.num_slots());
  EXPECT_EQ(from_prebuilt.EmptySlots(), from_config.EmptySlots());
  EXPECT_EQ(from_prebuilt.overflow_size(), from_config.overflow_size());
  Xorshift128Plus rng(26);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t q =
        rng.NextBounded(2) ? keys[rng.NextBounded(keys.size())] : rng.Next();
    const Record* a = from_config.Find(q);
    const Record* b = from_prebuilt.Find(q);
    ASSERT_EQ(a == nullptr, b == nullptr) << q;
    if (a != nullptr) ASSERT_EQ(a->payload, b->payload) << q;
  }
}

TEST(ChainedHashMapTest, FindBatchMatchesFind) {
  const auto keys = data::GenUniform(40'000, 21);
  const auto records = MakeRecords(keys);
  ChainedHashMap map;
  ASSERT_TRUE(map.Build(records, RandomChained(keys.size() * 3 / 4)).ok());
  Xorshift128Plus rng(22);
  std::vector<uint64_t> probes;
  for (int i = 0; i < 10'000; ++i) {
    probes.push_back(rng.NextBounded(2) ? keys[rng.NextBounded(keys.size())]
                                        : rng.Next());
  }
  std::vector<const Record*> out(probes.size());
  map.FindBatch(probes, out);
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i], map.Find(probes[i])) << probes[i];
  }
}

TEST(CuckooMapTest, RoundTrip32BitValues) {
  const auto keys = data::GenUniform(50'000, 9);
  std::vector<uint32_t> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = static_cast<uint32_t>(i);
  CuckooMap<uint32_t> map;
  CuckooMapConfig config;
  config.load_factor = 0.95;
  ASSERT_TRUE(map.Build(keys, values, config).ok());
  for (size_t i = 0; i < keys.size(); i += 7) {
    const uint32_t* v = map.Find(keys[i]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  EXPECT_GE(map.utilization(), 0.90);
}

TEST(CuckooMapTest, HighLoadFactorWithRecords) {
  const auto keys = data::GenUniform(50'000, 10);
  const auto records = MakeRecords(keys);
  CuckooMap<Record> map;
  CuckooMapConfig config;
  config.load_factor = 0.99;
  ASSERT_TRUE(map.Build(records, config).ok());
  for (size_t i = 0; i < keys.size(); i += 7) {
    const Record* v = map.Find(keys[i]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->payload, i);
  }
  EXPECT_GE(map.utilization(), 0.95);
  EXPECT_EQ(map.num_records(), keys.size());
}

TEST(CuckooMapTest, AbsentKeysNullAndNeverBuiltSafe) {
  CuckooMap<uint32_t> never_built;
  EXPECT_EQ(never_built.Find(42), nullptr);

  const auto keys = data::GenUniform(10'000, 11, uint64_t{1} << 40);
  std::vector<uint32_t> values(keys.size(), 1);
  CuckooMap<uint32_t> map;
  ASSERT_TRUE(map.Build(keys, values, {}).ok());
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  Xorshift128Plus rng(12);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) EXPECT_EQ(map.Find(probe), nullptr);
  }
}

TEST(CuckooMapTest, CarefulModeStillCorrect) {
  const auto keys = data::GenUniform(20'000, 13);
  const auto records = MakeRecords(keys);
  CuckooMap<Record> map;
  CuckooMapConfig config;
  config.careful = true;
  config.load_factor = 0.95;
  ASSERT_TRUE(map.Build(records, config).ok());
  for (size_t i = 0; i < keys.size(); i += 11) {
    ASSERT_NE(map.Find(keys[i]), nullptr);
  }
}

TEST(CuckooMapTest, FindBatchMatchesFind) {
  const auto keys = data::GenUniform(30'000, 23);
  const auto records = MakeRecords(keys);
  CuckooMap<Record> map;
  CuckooMapConfig config;
  config.load_factor = 0.99;
  ASSERT_TRUE(map.Build(records, config).ok());
  Xorshift128Plus rng(24);
  std::vector<uint64_t> probes;
  for (int i = 0; i < 10'000; ++i) {
    probes.push_back(rng.NextBounded(2) ? keys[rng.NextBounded(keys.size())]
                                        : rng.Next());
  }
  std::vector<const Record*> out(probes.size());
  map.FindBatch(probes, out);
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i], map.Find(probes[i])) << probes[i];
  }
}

TEST(InplaceChainedMapTest, FullUtilizationAndRoundTrip) {
  const auto keys = data::GenUniform(50'000, 14);
  const auto records = MakeRecords(keys);
  InplaceChainedMapConfig config;
  config.hash.seed = 15;
  InplaceChainedMap map;
  ASSERT_TRUE(map.Build(records, config).ok());
  EXPECT_DOUBLE_EQ(map.utilization(), 1.0);
  EXPECT_EQ(map.num_slots(), keys.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record* r = map.Find(keys[i]);
    ASSERT_NE(r, nullptr) << keys[i];
    EXPECT_EQ(r->payload, i);
  }
}

TEST(InplaceChainedMapTest, AbsentKeysIncludingForeignSlots) {
  const auto keys = data::GenUniform(20'000, 16, uint64_t{1} << 40);
  const auto records = MakeRecords(keys);
  InplaceChainedMapConfig config;
  config.hash.seed = 17;
  InplaceChainedMap map;
  ASSERT_TRUE(map.Build(records, config).ok());
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  Xorshift128Plus rng(18);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) EXPECT_EQ(map.Find(probe), nullptr);
  }
}

TEST(InplaceChainedMapTest, NeverBuiltMapFindsNothing) {
  InplaceChainedMap map;
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(987654321), nullptr);
  EXPECT_EQ(map.num_records(), 0u);
}

TEST(InplaceChainedMapTest, LearnedHashShortensChains) {
  // Appendix C: fewer conflicts -> fewer cache misses; probe depth is the
  // proxy.
  const auto keys = data::GenMaps(100'000, 19);
  const auto records = MakeRecords(keys);
  InplaceChainedMapConfig learned_cfg;
  learned_cfg.hash.kind = HashKind::kLearnedCdf;
  learned_cfg.hash.cdf_leaf_models = 10'000;
  InplaceChainedMap learned_map;
  ASSERT_TRUE(learned_map.Build(records, learned_cfg).ok());
  InplaceChainedMapConfig random_cfg;
  random_cfg.hash.seed = 20;
  InplaceChainedMap random_map;
  ASSERT_TRUE(random_map.Build(records, random_cfg).ok());
  EXPECT_LT(learned_map.MeanChainLength(), random_map.MeanChainLength());
}

}  // namespace
}  // namespace li::hash
