// Tests for the point-index substrate: hash functions, conflict counting,
// chained / cuckoo / in-place-chained maps with both random and learned
// hash functions.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"

namespace li::hash {
namespace {

std::vector<Record> MakeRecords(const std::vector<uint64_t>& keys) {
  std::vector<Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back(Record{keys[i], i, static_cast<uint32_t>(i & 0xFFFF)});
  }
  return records;
}

TEST(RandomHashTest, InRangeAndDeterministic) {
  RandomHash h(1000, 5);
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 10'000; ++k) {
    const uint64_t s = h(k);
    EXPECT_LT(s, 1000u);
    seen.insert(s);
  }
  EXPECT_GT(seen.size(), 990u);  // essentially all slots reachable
  RandomHash h2(1000, 5);
  EXPECT_EQ(h(123456), h2(123456));
}

TEST(ConflictRateTest, BirthdayParadoxForRandomHash) {
  // n keys into n slots: expected conflict fraction ~ 1 - (1-e^-1) = 36.8%.
  const auto keys = data::GenUniform(200'000, 1);
  RandomHash h(keys.size(), 3);
  const double rate = ConflictRate(keys, h, keys.size());
  EXPECT_NEAR(rate, 0.368, 0.01);
}

TEST(LearnedHashTest, PerfectOnSequentialKeys) {
  // The §4 ideal: keys 0..n-1 into n slots -> zero conflicts.
  const auto keys = data::GenSequential(100'000);
  LearnedHash<models::LinearModel> h;
  rmi::RmiConfig config;
  config.num_leaf_models = 128;
  ASSERT_TRUE(h.Build(keys, keys.size(), config).ok());
  EXPECT_LT(ConflictRate(keys, h, keys.size()), 0.001);
}

TEST(LearnedHashTest, BeatsRandomOnLearnableData) {
  const auto keys = data::GenMaps(200'000, 2);
  LearnedHash<models::LinearModel> learned;
  rmi::RmiConfig config;
  config.num_leaf_models = 10'000;
  ASSERT_TRUE(learned.Build(keys, keys.size(), config).ok());
  RandomHash random(keys.size(), 1);
  const double lr = ConflictRate(keys, learned, keys.size());
  const double rr = ConflictRate(keys, random, keys.size());
  EXPECT_LT(lr, rr);  // Figure-8 headline
}

TEST(LearnedHashTest, SlotsAlwaysInRange) {
  const auto keys = data::GenLognormal(50'000, 3);
  LearnedHash<models::LinearModel> h;
  rmi::RmiConfig config;
  config.num_leaf_models = 1000;
  ASSERT_TRUE(h.Build(keys, 777, config).ok());
  Xorshift128Plus rng(4);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_LT(h(rng.Next()), 777u);  // arbitrary (unseen) keys too
  }
}

TEST(ChainedHashMapTest, FindAllRecords) {
  const auto keys = data::GenUniform(50'000, 5);
  const auto records = MakeRecords(keys);
  ChainedHashMap<RandomHash> map;
  ASSERT_TRUE(map.Build(records, keys.size(), RandomHash(keys.size(), 7)).ok());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record* r = map.Find(keys[i]);
    ASSERT_NE(r, nullptr) << keys[i];
    EXPECT_EQ(r->payload, i);
  }
  EXPECT_EQ(map.num_records(), records.size());
}

TEST(ChainedHashMapTest, AbsentKeysReturnNull) {
  const auto keys = data::GenUniform(10'000, 6, uint64_t{1} << 40);
  const auto records = MakeRecords(keys);
  ChainedHashMap<RandomHash> map;
  ASSERT_TRUE(map.Build(records, keys.size(), RandomHash(keys.size(), 7)).ok());
  Xorshift128Plus rng(8);
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) EXPECT_EQ(map.Find(probe), nullptr);
  }
}

TEST(ChainedHashMapTest, FewerSlotsThanRecordsStillCorrect) {
  const auto keys = data::GenUniform(20'000, 7);
  const auto records = MakeRecords(keys);
  const uint64_t slots = keys.size() * 3 / 4;  // the 75% configuration
  ChainedHashMap<RandomHash> map;
  ASSERT_TRUE(map.Build(records, slots, RandomHash(slots, 9)).ok());
  for (size_t i = 0; i < records.size(); i += 13) {
    const Record* r = map.Find(keys[i]);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->payload, i);
  }
  EXPECT_GT(map.overflow_size(), 0u);
}

TEST(ChainedHashMapTest, LearnedHashWastesLessSpace) {
  // Appendix-B headline: learned hash -> fewer empty slots.
  const auto keys = data::GenMaps(100'000, 8);
  const auto records = MakeRecords(keys);
  LearnedHash<models::LinearModel> lh;
  rmi::RmiConfig config;
  config.num_leaf_models = 10'000;
  ASSERT_TRUE(lh.Build(keys, keys.size(), config).ok());
  ChainedHashMap<LearnedHash<models::LinearModel>> learned_map;
  ASSERT_TRUE(learned_map.Build(records, keys.size(), lh).ok());
  ChainedHashMap<RandomHash> random_map;
  ASSERT_TRUE(
      random_map.Build(records, keys.size(), RandomHash(keys.size(), 3)).ok());
  EXPECT_LT(learned_map.EmptySlots(), random_map.EmptySlots());
}

TEST(CuckooMapTest, RoundTrip32BitValues) {
  const auto keys = data::GenUniform(50'000, 9);
  std::vector<uint32_t> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = static_cast<uint32_t>(i);
  CuckooMap<uint32_t> map;
  CuckooMap<uint32_t>::Config config;
  config.load_factor = 0.95;
  ASSERT_TRUE(map.Build(keys, values, config).ok());
  for (size_t i = 0; i < keys.size(); i += 7) {
    const uint32_t* v = map.Find(keys[i]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  EXPECT_GE(map.utilization(), 0.90);
}

TEST(CuckooMapTest, HighLoadFactorWithRecords) {
  const auto keys = data::GenUniform(50'000, 10);
  std::vector<Record> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = {keys[i], i, 0};
  CuckooMap<Record> map;
  CuckooMap<Record>::Config config;
  config.load_factor = 0.99;
  ASSERT_TRUE(map.Build(keys, values, config).ok());
  for (size_t i = 0; i < keys.size(); i += 7) {
    const Record* v = map.Find(keys[i]);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->payload, i);
  }
  EXPECT_GE(map.utilization(), 0.95);
}

TEST(CuckooMapTest, AbsentKeysNull) {
  const auto keys = data::GenUniform(10'000, 11, uint64_t{1} << 40);
  std::vector<uint32_t> values(keys.size(), 1);
  CuckooMap<uint32_t> map;
  ASSERT_TRUE(map.Build(keys, values, {}).ok());
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  Xorshift128Plus rng(12);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) EXPECT_EQ(map.Find(probe), nullptr);
  }
}

TEST(CuckooMapTest, CarefulModeStillCorrect) {
  const auto keys = data::GenUniform(20'000, 13);
  std::vector<Record> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = {keys[i], i, 0};
  CuckooMap<Record> map;
  CuckooMap<Record>::Config config;
  config.careful = true;
  config.load_factor = 0.95;
  ASSERT_TRUE(map.Build(keys, values, config).ok());
  for (size_t i = 0; i < keys.size(); i += 11) {
    ASSERT_NE(map.Find(keys[i]), nullptr);
  }
}

TEST(InplaceChainedMapTest, FullUtilizationAndRoundTrip) {
  const auto keys = data::GenUniform(50'000, 14);
  const auto records = MakeRecords(keys);
  RandomHash h(keys.size(), 15);
  InplaceChainedMap<RandomHash> map;
  ASSERT_TRUE(map.Build(records, h).ok());
  EXPECT_DOUBLE_EQ(map.utilization(), 1.0);
  EXPECT_EQ(map.num_slots(), keys.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const Record* r = map.Find(keys[i]);
    ASSERT_NE(r, nullptr) << keys[i];
    EXPECT_EQ(r->payload, i);
  }
}

TEST(InplaceChainedMapTest, AbsentKeysIncludingForeignSlots) {
  const auto keys = data::GenUniform(20'000, 16, uint64_t{1} << 40);
  const auto records = MakeRecords(keys);
  RandomHash h(keys.size(), 17);
  InplaceChainedMap<RandomHash> map;
  ASSERT_TRUE(map.Build(records, h).ok());
  const std::set<uint64_t> keyset(keys.begin(), keys.end());
  Xorshift128Plus rng(18);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t probe = rng.Next();
    if (!keyset.count(probe)) EXPECT_EQ(map.Find(probe), nullptr);
  }
}

TEST(InplaceChainedMapTest, LearnedHashShortensChains) {
  // Appendix C: fewer conflicts -> fewer cache misses; chain length is the
  // proxy.
  const auto keys = data::GenMaps(100'000, 19);
  const auto records = MakeRecords(keys);
  LearnedHash<models::LinearModel> lh;
  rmi::RmiConfig config;
  config.num_leaf_models = 10'000;
  ASSERT_TRUE(lh.Build(keys, keys.size(), config).ok());
  InplaceChainedMap<LearnedHash<models::LinearModel>> learned_map;
  ASSERT_TRUE(learned_map.Build(records, lh).ok());
  InplaceChainedMap<RandomHash> random_map;
  ASSERT_TRUE(random_map.Build(records, RandomHash(keys.size(), 20)).ok());
  EXPECT_LT(learned_map.MeanChainLength(), random_map.MeanChainLength());
}

}  // namespace
}  // namespace li::hash
