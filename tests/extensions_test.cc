// Tests for the extension modules: isotonic (monotonic) models, histogram
// CDF baselines, quantized leaf tables / quantized RMI, and the K-stage
// RMI generalization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "models/histogram.h"
#include "models/isotonic.h"
#include "models/model.h"
#include "models/quantized.h"
#include "rmi/multistage.h"
#include "rmi/quantized_rmi.h"

namespace li {
namespace {

size_t StdLowerBound(const std::vector<uint64_t>& v, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

TEST(IsotonicTest, FitsMonotoneDataExactly) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i);
  }
  models::IsotonicModel m;
  ASSERT_TRUE(m.Fit(xs, ys).ok());
  for (int i = 0; i < 100; i += 7) {
    EXPECT_NEAR(m.Predict(i), 2.0 * i, 1e-9);
  }
}

TEST(IsotonicTest, PoolsViolations) {
  // A dip in otherwise increasing data gets pooled to the block mean.
  std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys = {0, 10, 4, 12, 20};  // 10 > 4 violates
  models::IsotonicModel m;
  ASSERT_TRUE(m.Fit(xs, ys).ok());
  // Prediction must be non-decreasing everywhere.
  double prev = -1e300;
  for (double x = -1.0; x <= 5.0; x += 0.1) {
    const double p = m.Predict(x);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  // Pooled block (10, 4) -> mean 7 at both points.
  EXPECT_NEAR(m.Predict(2.0), 7.0, 1e-9);
}

TEST(IsotonicTest, AlwaysMonotoneOnNoisyCdf) {
  const auto keys = data::GenWeblog(20'000, 5);
  std::vector<double> xs, ys;
  Xorshift128Plus rng(6);
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    // Noisy targets: the raw positions plus noise that breaks sortedness.
    ys.push_back(static_cast<double>(i) + 40.0 * rng.NextGaussian());
  }
  models::IsotonicModel m;
  ASSERT_TRUE(m.Fit(xs, ys, 512).ok());
  EXPECT_LE(m.num_knots(), 512u);
  std::vector<double> probe(xs.begin(), xs.end());
  EXPECT_TRUE(models::IsMonotonicOn(m, probe));
}

TEST(IsotonicTest, Validation) {
  models::IsotonicModel m;
  std::vector<double> bad_x = {3, 1, 2};
  std::vector<double> y = {1, 2, 3};
  EXPECT_FALSE(m.Fit(bad_x, y).ok());
  std::vector<double> x = {1, 2};
  EXPECT_FALSE(m.Fit(x, y).ok());  // size mismatch
  EXPECT_FALSE(m.Fit(x, x, 1).ok());  // too few knots
}

TEST(HistogramTest, EquiWidthOnUniformIsAccurate) {
  const auto keys = data::GenUniform(50'000, 3);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::EquiWidthHistogram h;
  ASSERT_TRUE(h.Fit(xs, ys, 1024).ok());
  double worst = 0.0;
  for (size_t i = 0; i < xs.size(); i += 37) {
    worst = std::max(worst, std::fabs(h.Predict(xs[i]) - ys[i]));
  }
  // Uniform data: error bounded by ~ n / buckets.
  EXPECT_LT(worst, 50'000.0 / 1024 * 2);
}

TEST(HistogramTest, EquiWidthCollapsesUnderSkew) {
  // The paper's §3.7.1 point: equal-width buckets fail under skew.
  const auto keys = data::GenLognormal(50'000, 4);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::EquiWidthHistogram ew;
  models::EquiDepthHistogram ed;
  ASSERT_TRUE(ew.Fit(xs, ys, 1024).ok());
  ASSERT_TRUE(ed.Fit(xs, ys, 1024).ok());
  EXPECT_GT(models::MeanSquaredError(ew, xs, ys),
            10.0 * models::MeanSquaredError(ed, xs, ys));
}

TEST(HistogramTest, EquiDepthBoundedError) {
  const auto keys = data::GenLognormal(50'000, 5);
  std::vector<double> xs, ys;
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::EquiDepthHistogram h;
  ASSERT_TRUE(h.Fit(xs, ys, 512).ok());
  double worst = 0.0;
  for (size_t i = 0; i < xs.size(); i += 11) {
    worst = std::max(worst, std::fabs(h.Predict(xs[i]) - ys[i]));
  }
  EXPECT_LT(worst, 50'000.0 / 512 * 2);  // ~bucket depth
}

TEST(QuantizedTableTest, PredictionsCloseAndBoundsWiden) {
  // One leaf per 100 keys over lognormal data.
  const auto keys = data::GenLognormal(10'000, 7);
  std::vector<models::QuantizedLeafTable::LeafRef> refs;
  std::vector<double> xs, ys;
  for (size_t leaf = 0; leaf < 100; ++leaf) {
    xs.clear();
    ys.clear();
    for (size_t i = leaf * 100; i < (leaf + 1) * 100; ++i) {
      xs.push_back(static_cast<double>(keys[i]));
      ys.push_back(static_cast<double>(i));
    }
    models::LinearModel m;
    ASSERT_TRUE(m.Fit(xs, ys).ok());
    const auto b = models::ComputeErrorBounds(m, xs, ys);
    refs.push_back({m.slope(), m.intercept(),
                    static_cast<int32_t>(std::floor(b.min_err)),
                    static_cast<int32_t>(std::ceil(b.max_err)), xs.front(),
                    xs.back() - xs.front()});
  }
  for (const auto level :
       {models::QuantLevel::kFloat32, models::QuantLevel::kInt16}) {
    models::QuantizedLeafTable table;
    ASSERT_TRUE(table.Encode(refs, level).ok());
    for (size_t leaf = 0; leaf < 100; ++leaf) {
      for (size_t i = leaf * 100; i < (leaf + 1) * 100; i += 17) {
        const double x = static_cast<double>(keys[i]);
        const double exact = refs[leaf].slope * x + refs[leaf].intercept;
        const double quant = table.Predict(leaf, x);
        // The bounds widening is a worst-case budget: it must cover the
        // observed drift at every probed key.
        const double drift = std::fabs(quant - exact);
        EXPECT_LE(drift,
                  static_cast<double>(refs[leaf].min_err -
                                      table.min_err(leaf)))
            << QuantLevelName(level);
        // And the true position stays inside the quantized window.
        const double pos = static_cast<double>(i);
        EXPECT_GE(pos, quant + table.min_err(leaf) - 1e-6);
        EXPECT_LE(pos, quant + table.max_err(leaf) + 1e-6);
      }
    }
    // Compression actually compresses.
    models::QuantizedLeafTable ref64;
    ASSERT_TRUE(ref64.Encode(refs, models::QuantLevel::kFloat64).ok());
    EXPECT_LT(table.SizeBytes(), ref64.SizeBytes());
  }
}

class QuantizedRmiTest
    : public ::testing::TestWithParam<models::QuantLevel> {};

TEST_P(QuantizedRmiTest, LowerBoundMatchesStd) {
  const auto keys = data::GenLognormal(50'000, 8);
  rmi::RmiConfig config;
  config.num_leaf_models = 1000;
  rmi::QuantizedRmi index;
  ASSERT_TRUE(index.Build(keys, config, GetParam()).ok());
  Xorshift128Plus rng(9);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    const uint64_t q = rng.NextBounded(3) == 0 ? k + 1 : k;
    ASSERT_EQ(index.LowerBound(q), StdLowerBound(keys, q)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantizedRmiTest,
                         ::testing::Values(models::QuantLevel::kFloat64,
                                           models::QuantLevel::kFloat32,
                                           models::QuantLevel::kInt16));

TEST(QuantizedRmiTest, SizeShrinksWithPrecision) {
  const auto keys = data::GenUniform(50'000, 10);
  rmi::RmiConfig config;
  config.num_leaf_models = 2000;
  rmi::QuantizedRmi f64, f32, i16;
  ASSERT_TRUE(f64.Build(keys, config, models::QuantLevel::kFloat64).ok());
  ASSERT_TRUE(f32.Build(keys, config, models::QuantLevel::kFloat32).ok());
  ASSERT_TRUE(i16.Build(keys, config, models::QuantLevel::kInt16).ok());
  EXPECT_GT(f64.SizeBytes(), f32.SizeBytes());
  EXPECT_GT(f32.SizeBytes(), i16.SizeBytes());
}

class MultiStageTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiStageTest, LowerBoundMatchesStdAcrossStageCounts) {
  const auto keys = data::GenWeblog(50'000, 11);
  rmi::MultiStageConfig config;
  switch (GetParam()) {
    case 2: config.stage_sizes = {2000}; break;
    case 3: config.stage_sizes = {50, 2000}; break;
    case 4: config.stage_sizes = {10, 200, 2000}; break;
  }
  rmi::MultiStageRmi index;
  ASSERT_TRUE(index.Build(keys, config).ok());
  EXPECT_EQ(index.num_stages(), static_cast<size_t>(GetParam()));
  Xorshift128Plus rng(12);
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    const uint64_t q = rng.NextBounded(3) == 0 ? k + 1 : k;
    ASSERT_EQ(index.LowerBound(q), StdLowerBound(keys, q)) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, MultiStageTest, ::testing::Values(2, 3, 4));

TEST(MultiStageTest, Validation) {
  rmi::MultiStageRmi index;
  rmi::MultiStageConfig config;
  config.stage_sizes = {};
  EXPECT_FALSE(index.Build({}, config).ok());
  config.stage_sizes = {0};
  EXPECT_FALSE(index.Build({}, config).ok());
}

}  // namespace
}  // namespace li
