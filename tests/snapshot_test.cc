// Snapshot-layer unit tests: CRC-32C vectors, arena offset stability and
// alignment, FlatVec storage modes, writer/reader round trips, and the
// corruption matrix — a truncated or bit-flipped file must come back as
// a clean Status from the envelope checks (or from payload verification
// when opted in), never as UB. The index-level round trips live in
// snapshot_roundtrip_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "snapshot/arena.h"
#include "snapshot/crc32c.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"

namespace li::snapshot {
namespace {

std::string TmpPath(const std::string& name) {
  return ::testing::TempDir() + "li_snapshot_test_" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---- CRC-32C ----

TEST(Crc32cTest, StandardVector) {
  // The RFC 3720 check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, SeedChains) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(msg.data(), msg.size());
  for (const size_t cut : {size_t{1}, size_t{7}, size_t{20}, msg.size()}) {
    const uint32_t part = Crc32c(msg.data(), cut);
    EXPECT_EQ(Crc32c(msg.data() + cut, msg.size() - cut, part), whole);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::vector<uint8_t> buf(1024, 0xAB);
  const uint32_t clean = Crc32c(buf.data(), buf.size());
  buf[517] ^= 0x04;
  EXPECT_NE(Crc32c(buf.data(), buf.size()), clean);
}

// ---- Arena ----

TEST(ArenaTest, OffsetsAlignedAndStableAcrossGrowth) {
  Arena arena;
  const uint64_t a = arena.AllocBytes(10);
  EXPECT_EQ(a % kArenaAlign, 0u);
  std::memcpy(arena.at(a), "0123456789", 10);
  // Force several growth cycles; `a` must keep resolving to the same
  // bytes even though the backing block moved.
  std::vector<uint8_t> big(1 << 16, 0x5A);
  const uint64_t b = arena.Append(big.data(), big.size());
  EXPECT_EQ(b % kArenaAlign, 0u);
  for (int i = 0; i < 8; ++i) arena.Append(big.data(), big.size());
  EXPECT_EQ(std::memcmp(arena.at(a), "0123456789", 10), 0);
  EXPECT_EQ(std::memcmp(arena.at(b), big.data(), big.size()), 0);
}

TEST(ArenaTest, AllocZeroFills) {
  Arena arena;
  const uint64_t off = arena.AllocBytes(4096);
  for (size_t i = 0; i < 4096; ++i) ASSERT_EQ(arena.at(off)[i], 0);
}

// ---- FlatVec ----

TEST(FlatVecTest, OwnedAssignAndMutate) {
  FlatVec<uint64_t> v;
  v.assign(100, 7);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.mapped());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % kArenaAlign, 0u);
  v[3] = 42;
  EXPECT_EQ(v[3], 42u);
  EXPECT_EQ(v[4], 7u);
}

TEST(FlatVecTest, AdoptTakesOverVector) {
  std::vector<uint32_t> src = {1, 2, 3, 4};
  const uint32_t* raw = src.data();
  FlatVec<uint32_t> v = FlatVec<uint32_t>::Adopt(std::move(src));
  EXPECT_EQ(v.data(), raw);  // no copy
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FALSE(v.mapped());
}

TEST(FlatVecTest, ViewSharesAndPinsKeepalive) {
  auto backing = std::make_shared<std::vector<uint16_t>>(16, 9);
  FlatVec<uint16_t> v = FlatVec<uint16_t>::View(
      std::span<const uint16_t>(*backing), backing);
  EXPECT_TRUE(v.mapped());
  EXPECT_EQ(backing.use_count(), 2);
  FlatVec<uint16_t> copy = v;  // views share, not deep-copy
  EXPECT_EQ(copy.data(), v.data());
  EXPECT_EQ(backing.use_count(), 3);
  backing.reset();
  EXPECT_EQ(std::as_const(copy)[0], 9u);  // keepalive pins the backing store
}

TEST(FlatVecTest, CopyOfOwnedIsDeep) {
  FlatVec<uint8_t> v;
  v.assign(8, 1);
  FlatVec<uint8_t> copy = v;
  copy[0] = 2;
  EXPECT_EQ(v[0], 1u);
}

// ---- Writer / Reader round trip ----

class SnapshotFileTest : public ::testing::Test {
 protected:
  // One snapshot with a POD section and a large array section, written
  // to a fresh temp path per test.
  struct Meta {
    uint64_t count = 0;
    double scale = 0.0;
  };

  void SetUp() override {
    path_ = TmpPath(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    payload_.resize(10'000);
    for (size_t i = 0; i < payload_.size(); ++i) {
      payload_[i] = i * 2654435761u;
    }
    SnapshotWriter writer;
    const Meta meta{payload_.size(), 1.5};
    ASSERT_TRUE(writer.AddPod("meta", meta).ok());
    ASSERT_TRUE(writer
                    .AddArray("vals", std::span<const uint64_t>(payload_),
                              SectionKind::kKeys)
                    .ok());
    ASSERT_TRUE(writer.WriteFile(path_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<uint64_t> payload_;
};

TEST_F(SnapshotFileTest, RoundTripsSectionsZeroCopy) {
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader.value().sections().size(), 2u);

  Meta meta;
  ASSERT_TRUE(reader.value().GetPod("meta", &meta).ok());
  EXPECT_EQ(meta.count, payload_.size());
  EXPECT_EQ(meta.scale, 1.5);

  auto vals = reader.value().GetArray<uint64_t>("vals");
  ASSERT_TRUE(vals.ok());
  ASSERT_EQ(vals.value().size(), payload_.size());
  EXPECT_EQ(std::memcmp(vals.value().data(), payload_.data(),
                        payload_.size() * sizeof(uint64_t)),
            0);
  // Zero-copy: the span points into the mapping, 64-byte aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(vals.value().data()) % kSectionAlign,
            0u);
  const SectionEntry* e = reader.value().Find("vals");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, static_cast<uint32_t>(SectionKind::kKeys));
  EXPECT_TRUE(reader.value().VerifyAllPayloads().ok());
}

TEST_F(SnapshotFileTest, MissingSectionIsStatusNotUb) {
  auto reader = SnapshotReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().Find("nope"), nullptr);
  EXPECT_FALSE(reader.value().Get("nope").ok());
  Meta meta;
  EXPECT_FALSE(reader.value().GetPod("vals", &meta).ok());  // wrong size
}

TEST_F(SnapshotFileTest, TruncationRejectedAtEveryLayer) {
  const std::vector<uint8_t> whole = ReadAll(path_);
  ASSERT_GT(whole.size(), sizeof(FileHeader));
  // Sub-header, mid-payload, and mid-table truncations must all yield a
  // clean failure from Open.
  for (const size_t keep :
       {size_t{0}, size_t{13}, sizeof(FileHeader) - 1, sizeof(FileHeader),
        whole.size() / 2, whole.size() - 1}) {
    std::vector<uint8_t> cut(whole.begin(),
                             whole.begin() + static_cast<ptrdiff_t>(keep));
    WriteAll(path_, cut);
    auto reader = SnapshotReader::Open(path_);
    EXPECT_FALSE(reader.ok()) << "accepted a file truncated to " << keep;
  }
}

TEST_F(SnapshotFileTest, HeaderCorruptionRejected) {
  std::vector<uint8_t> bytes = ReadAll(path_);
  bytes[3] ^= 0xFF;  // inside the magic
  WriteAll(path_, bytes);
  EXPECT_FALSE(SnapshotReader::Open(path_).ok());

  // A flip past the magic but inside the crc-protected header fields.
  bytes[3] ^= 0xFF;   // restore the magic
  bytes[20] ^= 0x01;  // file_size
  WriteAll(path_, bytes);
  EXPECT_FALSE(SnapshotReader::Open(path_).ok());
}

TEST_F(SnapshotFileTest, TableCorruptionRejected) {
  std::vector<uint8_t> bytes = ReadAll(path_);
  FileHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  ASSERT_LT(h.table_offset, bytes.size());
  bytes[h.table_offset + 2] ^= 0x10;  // a section-table name byte
  WriteAll(path_, bytes);
  EXPECT_FALSE(SnapshotReader::Open(path_).ok());
}

TEST_F(SnapshotFileTest, PayloadFlipCaughtByChecksumOptIn) {
  std::vector<uint8_t> bytes = ReadAll(path_);
  // Flip one byte in the middle of the "vals" payload (after the 64-byte
  // header, before the table).
  FileHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  const size_t flip = sizeof(FileHeader) + (h.table_offset / 2);
  ASSERT_LT(flip, h.table_offset);
  bytes[flip] ^= 0x01;
  WriteAll(path_, bytes);

  // The envelope stays valid: default Open succeeds (restart-path mode)…
  auto lazy = SnapshotReader::Open(path_);
  ASSERT_TRUE(lazy.ok());
  // …but payload verification pinpoints the damage.
  EXPECT_FALSE(lazy.value().VerifyAllPayloads().ok());

  // And the opt-in verifying Open refuses the file outright.
  OpenOptions verify;
  verify.verify_payloads = true;
  EXPECT_FALSE(SnapshotReader::Open(path_, verify).ok());
}

TEST(SnapshotWriterTest, RejectsDuplicateAndOverlongNames) {
  SnapshotWriter writer;
  const uint64_t x = 1;
  ASSERT_TRUE(writer.AddPod("dup", x).ok());
  EXPECT_FALSE(writer.AddPod("dup", x).ok());
  EXPECT_FALSE(writer.AddPod("", x).ok());
  EXPECT_FALSE(writer.AddPod(std::string(kMaxSectionName + 1, 'a'), x).ok());
  EXPECT_TRUE(writer.AddPod(std::string(kMaxSectionName, 'a'), x).ok());
}

TEST(SnapshotWriterTest, PublishIsAtomic) {
  const std::string path = TmpPath("atomic");
  // Seed the target with a valid snapshot.
  {
    SnapshotWriter writer;
    const uint64_t v = 1;
    ASSERT_TRUE(writer.AddPod("v", v).ok());
    ASSERT_TRUE(writer.WriteFile(path).ok());
  }
  // Overwrite through the same path; the new content replaces the old
  // in one rename — there is never a moment with a half-written file
  // under the target name.
  {
    SnapshotWriter writer;
    const uint64_t v = 2;
    ASSERT_TRUE(writer.AddPod("v", v).ok());
    ASSERT_TRUE(writer.WriteFile(path).ok());
  }
  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok());
  uint64_t v = 0;
  ASSERT_TRUE(reader.value().GetPod("v", &v).ok());
  EXPECT_EQ(v, 2u);
  std::remove(path.c_str());
}

TEST(SnapshotReaderTest, NonexistentPathIsStatus) {
  EXPECT_FALSE(SnapshotReader::Open(TmpPath("does_not_exist")).ok());
}

}  // namespace
}  // namespace li::snapshot
