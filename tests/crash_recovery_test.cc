// Crash-injection matrix: repeatedly SIGKILL a child applying a seeded
// workload (tools/crashkit.cc) at randomized points inside the WAL's
// write path, then recover in-process-free and demand that every
// acknowledged write survived and no torn record was applied. The child
// dies from *inside* the log's backend (see src/wal/file_backend.h) —
// mid-record, mid-fsync, with a torn tail, or with the un-synced page
// cache dropped — so the states the verifier judges are exactly the
// states a real crash leaves behind.
//
// Rounds are driven by the CRASH_ROUNDS env var: a dozen locally (keeps
// ctest under ~a minute), >= 50 in the CI crash-recovery job (see
// .github/workflows/ci.yml). Each round draws a fresh (mode, crash-mode,
// trigger, fsync policy) tuple from a seeded rng, so CI accumulates
// coverage across runs while any failure reproduces from the printed
// command line alone.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "test_seed.h"

namespace li {
namespace {

// crashkit is built as a sibling executable in the build root; resolve
// it relative to this test binary so ctest can run from any directory.
std::string CrashkitPath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string dir(buf);
  const size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return {};
  dir.resize(slash);
  return dir + "/crashkit";
}

bool Exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

int RunCommand(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  // std::system reports through the shell: 128 + signal for a killed
  // child, plain exit status otherwise.
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

size_t Rounds() {
  const char* env = std::getenv("CRASH_ROUNDS");
  if (env == nullptr) return 12;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 12;
}

struct RoundPlan {
  std::string mode;
  std::string crash_mode;
  uint64_t ops;
  uint64_t trigger;
  size_t fsync_every;
  uint64_t checkpoint_every;
  uint64_t seed;
};

// Draw one randomized round. Crash-mode legs that model losing the
// un-fsync'd page cache (droptail, midsync) pin fsync_every to 1 so
// "acknowledged" implies "synced" — with group commit those states are
// legitimately lossy and the oracle check would be vacuous. The
// SIGKILL-only legs keep whatever group-commit policy was drawn: a
// killed process loses nothing the kernel already accepted.
RoundPlan DrawRound(Xorshift128Plus& rng, size_t round) {
  static const char* kModes[] = {"delta", "conc", "sharded"};
  static const char* kCrash[] = {"before", "after", "torn",
                                 "droptail", "midsync"};
  RoundPlan p;
  p.mode = kModes[round % 3];
  p.crash_mode = kCrash[rng.NextBounded(5)];
  const bool cache_loss =
      p.crash_mode == "droptail" || p.crash_mode == "midsync";
  p.fsync_every = cache_loss ? 1 : 1 + rng.NextBounded(8);
  // Sharded rounds run longer so triggers land around shard splits too.
  p.ops = p.mode == "sharded" ? 6'000 : 2'500;
  p.trigger = 1 + rng.NextBounded(p.ops);
  p.checkpoint_every = rng.NextBounded(2) == 0 ? 0 : 500 + rng.NextBounded(1'500);
  p.seed = rng.Next() % 100'000 + 1;
  return p;
}

TEST(CrashRecoveryTest, RandomizedSigkillMatrix) {
  const std::string kit = CrashkitPath();
  if (kit.empty() || !Exists(kit)) {
    GTEST_SKIP() << "crashkit binary not found next to the test binary";
  }
  const char* tmp = std::getenv("TMPDIR");
  const std::string root = std::string(tmp != nullptr ? tmp : "/tmp") +
                           "/li_crash_" + std::to_string(::getpid());

  const size_t rounds = Rounds();
  // LI_TEST_SEED perturbs the whole matrix (shared across suites);
  // CRASH_SEED pins this harness exactly and wins when both are set.
  uint64_t harness_seed = testing::TestSeed(0x5EEDCAFEULL);
  if (const char* env = std::getenv("CRASH_SEED")) {
    harness_seed = std::strtoull(env, nullptr, 10);
  }
  Xorshift128Plus rng(harness_seed);

  size_t killed = 0, completed = 0;
  for (size_t round = 0; round < rounds; ++round) {
    const RoundPlan p = DrawRound(rng, round);
    const std::string dir = root + "_" + std::to_string(round);
    std::string flags = " --mode=" + p.mode + " --dir=" + dir +
                        " --seed=" + std::to_string(p.seed) +
                        " --ops=" + std::to_string(p.ops) +
                        " --fsync-every=" + std::to_string(p.fsync_every);
    const std::string child_cmd =
        kit + " child" + flags + " --crash-mode=" + p.crash_mode +
        " --trigger=" + std::to_string(p.trigger) +
        " --checkpoint-every=" + std::to_string(p.checkpoint_every) +
        " >/dev/null 2>&1";
    const std::string verify_cmd = kit + " verify" + flags + " >/dev/null 2>&1";

    const int child_rc = RunCommand(child_cmd);
    // 137 = 128 + SIGKILL (the backend fired); 0 = the trigger landed
    // past the records the stream produced and the child ran to the end.
    // Anything else is a child-side setup failure, not a crash state.
    ASSERT_TRUE(child_rc == 137 || child_rc == 0)
        << "round " << round << ": child exited " << child_rc
        << "\n  repro: " << child_cmd;
    child_rc == 137 ? ++killed : ++completed;

    ASSERT_EQ(RunCommand(verify_cmd), 0)
        << "round " << round << ": recovery diverged from the acked oracle"
        << "\n  child:  " << child_cmd << "\n  verify: " << verify_cmd;

    const int rc = std::system(("rm -rf " + dir).c_str());
    (void)rc;
  }
  RecordProperty("killed", static_cast<int>(killed));
  RecordProperty("completed", static_cast<int>(completed));
  // The matrix only earns its keep if triggers actually fire; with
  // triggers drawn from [1, ops] and ~1 append per op, the large
  // majority of rounds must die mid-stream.
  EXPECT_GT(killed, rounds / 2)
      << "crash triggers almost never fired - trigger drawing is broken";
}

// One deterministic, always-run round per index class so the suite
// still exercises kill+recover even when CRASH_ROUNDS=1 (e.g. under
// heavy sanitizer slowdown).
TEST(CrashRecoveryTest, DeterministicTornTailPerMode) {
  const std::string kit = CrashkitPath();
  if (kit.empty() || !Exists(kit)) {
    GTEST_SKIP() << "crashkit binary not found next to the test binary";
  }
  const std::string root = "/tmp/li_crash_det_" + std::to_string(::getpid());
  const struct { const char* mode; uint64_t ops, trigger; } kLegs[] = {
      {"delta", 2'000, 1'111},
      {"conc", 2'000, 1'111},
      {"sharded", 6'000, 3'333},
  };
  for (const auto& leg : kLegs) {
    const std::string dir = root + "_" + leg.mode;
    const std::string flags = std::string(" --mode=") + leg.mode +
                              " --dir=" + dir + " --seed=42 --ops=" +
                              std::to_string(leg.ops) + " --fsync-every=1";
    const int child_rc = RunCommand(
        kit + " child" + flags + " --crash-mode=torn --trigger=" +
        std::to_string(leg.trigger) + " --torn-bytes=9 >/dev/null 2>&1");
    ASSERT_EQ(child_rc, 137) << leg.mode << ": expected SIGKILL";
    ASSERT_EQ(RunCommand(kit + " verify" + flags + " >/dev/null 2>&1"), 0)
        << leg.mode << ": recovery diverged after torn-tail kill";
    const int rc = std::system(("rm -rf " + dir).c_str());
    (void)rc;
  }
}

}  // namespace
}  // namespace li
