// ThreadSanitizer-able stress suite for the concurrent point-index write
// path: N writer + M reader threads drive ConcurrentPointIndex over every
// base family against a mutex-guarded std::unordered_map oracle.
//
// The payload discipline makes lock-free reads verifiable mid-race: every
// writer stores payload = PayloadOf(key), so whatever version a racing
// reader lands on, a successful Find must return exactly that payload —
// a torn read, a stale pointer into a retired version, or a half-folded
// overlay entry shows up as a payload mismatch without any locking.
//
// Serialized phases apply each op to the index and the oracle under one
// mutex, so the oracle's op order equals the index's writer-serialization
// order and the Insert/Upsert/Erase liveness booleans must match
// op-for-op. Unserialized phases race writers directly on disjoint
// strided key ranges (contended writer mutex, freeze folds racing
// appends, background rehashes mid-burst) and verify post-hoc. The
// rehash-storm phase forces back-to-back full rebuilds — the chained
// bases resize through their slots-per-record ratio, the cuckoo base
// (seeded at load factor 0.99) re-runs its kick chains and placement
// fallback — while readers hammer the epoch-protected publish path.
//
// Thread failures are recorded, never asserted off-thread (gtest asserts
// are not thread-safe), and re-raised on the main thread. All seeds run
// through tests/test_seed.h, so LI_TEST_SEED=<n> sweeps fresh schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_point_index.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/inplace_chained_map.h"
#include "hash/record.h"
#include "test_seed.h"

namespace li {
namespace {

using ConcChained = concurrent::ConcurrentPointIndex<hash::ChainedHashMap>;
using ConcInplace = concurrent::ConcurrentPointIndex<hash::InplaceChainedMap>;
using ConcCuckoo =
    concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>;

constexpr uint64_t kKeySpace = 400'000'000;

/// The invariant payload: writers only ever store this, so any
/// successful read can be checked against it without consulting an
/// oracle (and therefore without locks).
uint64_t PayloadOf(uint64_t key) { return key * 0x9E3779B97F4A7C15ULL + 1; }

/// First failure observed by any thread; asserted on the main thread.
class FailureLog {
 public:
  void Record(const std::string& msg) {
    std::lock_guard<std::mutex> lk(mu_);
    if (first_.empty()) first_ = msg;
  }
  bool ok() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_.empty();
  }
  std::string first() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  std::string first_;
};

std::vector<hash::Record> SeedRecords(size_t n, uint64_t seed) {
  const auto keys = data::GenUniform(n, seed, kKeySpace);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (const uint64_t k : keys) records.push_back({k, PayloadOf(k), 0});
  return records;
}

/// One writer's workload for one round: ops applied to index + oracle
/// under the oracle mutex; liveness booleans cross-checked op-for-op.
template <typename Idx>
void WriterBody(Idx& idx, std::unordered_map<uint64_t, uint64_t>& oracle,
                std::mutex& oracle_mu, FailureLog& log, uint64_t seed,
                size_t ops) {
  Xorshift128Plus rng(seed);
  for (size_t i = 0; i < ops && log.ok(); ++i) {
    const uint64_t k = rng.NextBounded(kKeySpace);
    const uint64_t dice = rng.NextBounded(4);
    std::lock_guard<std::mutex> lk(oracle_mu);
    if (dice == 0) {
      const bool got = idx.Erase(k);
      const bool want = oracle.erase(k) > 0;
      if (got != want) {
        log.Record("Erase(" + std::to_string(k) + ") returned " +
                   std::to_string(got) + ", oracle says " +
                   std::to_string(want));
        return;
      }
    } else if (dice == 1) {
      // Upsert: true iff the key was absent; payload stays invariant.
      const bool got = idx.Upsert({k, PayloadOf(k), 0});
      const bool want = oracle.emplace(k, PayloadOf(k)).second;
      if (got != want) {
        log.Record("Upsert(" + std::to_string(k) + ") returned " +
                   std::to_string(got) + ", oracle says " +
                   std::to_string(want));
        return;
      }
    } else {
      const bool got = idx.Insert({k, PayloadOf(k), 0});
      const bool want = oracle.emplace(k, PayloadOf(k)).second;
      if (got != want) {
        log.Record("Insert(" + std::to_string(k) + ") returned " +
                   std::to_string(got) + ", oracle says " +
                   std::to_string(want));
        return;
      }
    }
  }
}

/// Free-running reader: invariants that hold at any instant, even with
/// writes and rehashes in flight — a found record carries exactly the
/// probed key and its invariant payload, through Find and FindBatch.
template <typename Idx>
void ReaderBody(const Idx& idx, const std::atomic<bool>& stop,
                FailureLog& log, uint64_t seed,
                std::atomic<uint64_t>& ops_done) {
  Xorshift128Plus rng(seed);
  uint64_t local_ops = 0;
  std::vector<uint64_t> batch(32);
  std::vector<hash::Record> recs(32);
  std::vector<uint8_t> found(32);
  while (!stop.load(std::memory_order_relaxed) && log.ok()) {
    const uint64_t q = rng.NextBounded(kKeySpace);
    hash::Record rec{};
    if (idx.Find(q, &rec)) {
      if (rec.key != q || rec.payload != PayloadOf(q)) {
        log.Record("Find(" + std::to_string(q) + ") returned key " +
                   std::to_string(rec.key) + " payload " +
                   std::to_string(rec.payload) + " — torn or stale read");
        return;
      }
    }
    if ((local_ops & 63) == 0) {
      for (uint64_t& b : batch) b = rng.NextBounded(kKeySpace);
      idx.FindBatch(batch, recs, found);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (found[i] != 0 && (recs[i].key != batch[i] ||
                              recs[i].payload != PayloadOf(batch[i]))) {
          log.Record("FindBatch slot " + std::to_string(i) +
                     " violated the payload invariant");
          return;
        }
      }
    }
    ++local_ops;
  }
  ops_done.fetch_add(local_ops, std::memory_order_relaxed);
}

/// Quiesced-writer snapshot check: exact equivalence with the oracle.
/// Readers may still be running — reads must stay exact because no write
/// is in flight, whatever the background rehasher is doing.
template <typename Idx>
void VerifySnapshot(const Idx& idx,
                    const std::unordered_map<uint64_t, uint64_t>& oracle,
                    uint64_t seed, int round) {
  ASSERT_EQ(idx.num_records(), oracle.size()) << "round " << round;
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> probes;
  // Random probes (mostly absent) plus a slice of live oracle keys.
  for (int p = 0; p < 400; ++p) probes.push_back(rng.NextBounded(kKeySpace));
  size_t taken = 0;
  for (const auto& [k, v] : oracle) {
    probes.push_back(k);
    if (++taken == 400) break;
  }
  std::vector<hash::Record> recs(probes.size());
  std::vector<uint8_t> found(probes.size(), 2);
  idx.FindBatch(probes, recs, found);
  for (size_t i = 0; i < probes.size(); ++i) {
    const uint64_t q = probes[i];
    hash::Record rec{};
    const bool hit = idx.Find(q, &rec);
    const auto it = oracle.find(q);
    ASSERT_EQ(hit, it != oracle.end()) << "round " << round << " probe " << q;
    if (hit) {
      ASSERT_EQ(rec.payload, it->second) << "round " << round << " q=" << q;
    }
    ASSERT_EQ(found[i] != 0, hit) << "round " << round << " batch q=" << q;
    if (found[i] != 0) {
      ASSERT_EQ(recs[i].payload, rec.payload)
          << "round " << round << " batch q=" << q;
    }
  }
}

template <typename Idx>
void RunStress(Idx& idx, const std::vector<hash::Record>& base,
               size_t writers, size_t readers, size_t ops_per_writer,
               int rounds, uint64_t seed) {
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (const hash::Record& r : base) oracle.emplace(r.key, r.payload);
  std::mutex oracle_mu;
  FailureLog log;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_ops{0};

  std::vector<std::thread> reader_threads;
  for (size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back(
        [&, r] { ReaderBody(idx, stop, log, seed * 977 + r, read_ops); });
  }
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::thread> writer_threads;
    for (size_t w = 0; w < writers; ++w) {
      writer_threads.emplace_back([&, w, round] {
        WriterBody(idx, oracle, oracle_mu, log,
                   seed + static_cast<uint64_t>(round) * 131 + w * 17,
                   ops_per_writer);
      });
    }
    for (std::thread& t : writer_threads) t.join();
    ASSERT_TRUE(log.ok()) << log.first();
    // Periodic linearizable snapshot check, readers still hammering.
    VerifySnapshot(idx, oracle, seed ^ (round + 1), round);
    if (::testing::Test::HasFatalFailure()) break;
  }
  stop.store(true);
  for (std::thread& t : reader_threads) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  // Final quiesce: drain rehashes, re-verify, and check the gauges.
  idx.WaitForRebuilds();
  ASSERT_TRUE(idx.last_rebuild_status().ok())
      << idx.last_rebuild_status().message();
  VerifySnapshot(idx, oracle, seed ^ 0xabcd, rounds);
  EXPECT_GT(read_ops.load(), 0u);
}

TEST(ConcurrentPointStressTest, ChainedUnderWriteStorm) {
  const auto base = SeedRecords(20'000, testing::TestSeed(8101));
  ConcChained::Config cfg;
  cfg.base.num_slots = base.size() / 2;  // undersized: chains + resizes
  cfg.base.hash.seed = 11;
  cfg.log_cap = 128;           // frequent freezes
  cfg.rebuild_entries = 1024;  // frequent background rehashes
  ConcChained idx;
  ASSERT_TRUE(idx.Build(base, cfg).ok());
  RunStress(idx, base, /*writers=*/3, /*readers=*/2,
            /*ops_per_writer=*/2'000, /*rounds=*/3,
            testing::TestSeed(1001));
  const auto cs = idx.ConcurrentStats();
  EXPECT_GT(cs.freezes, 0u);
  EXPECT_GT(cs.background_merges, 0u);
  EXPECT_EQ(cs.states_retired, cs.states_published);
}

TEST(ConcurrentPointStressTest, InplaceChainedUnderWriteStorm) {
  const auto base = SeedRecords(20'000, testing::TestSeed(8103));
  ConcInplace::Config cfg;
  cfg.base.hash.seed = 13;
  cfg.log_cap = 128;
  cfg.rebuild_entries = 1024;
  ConcInplace idx;
  ASSERT_TRUE(idx.Build(base, cfg).ok());
  RunStress(idx, base, /*writers=*/3, /*readers=*/2,
            /*ops_per_writer=*/2'000, /*rounds=*/3,
            testing::TestSeed(2002));
  EXPECT_GT(idx.ConcurrentStats().background_merges, 0u);
}

TEST(ConcurrentPointStressTest, CuckooKickChainsUnderWriteStorm) {
  const auto base = SeedRecords(20'000, testing::TestSeed(8107));
  ConcCuckoo::Config cfg;
  cfg.base.load_factor = 0.99;  // deep kick chains; fallback on failure
  cfg.log_cap = 128;
  cfg.rebuild_entries = 1024;
  ConcCuckoo idx;
  ASSERT_TRUE(idx.Build(base, cfg).ok());
  RunStress(idx, base, /*writers=*/3, /*readers=*/2,
            /*ops_per_writer=*/2'000, /*rounds=*/3,
            testing::TestSeed(3003));
  EXPECT_GT(idx.ConcurrentStats().background_merges, 0u);
}

/// Writers with NO external serialization — Insert/Upsert/Erase race each
/// other directly on disjoint strided key ranges, so returns must be
/// exact even under contention and the final state is verifiable post-hoc
/// without any locking during the run.
template <typename Idx>
void RunUnserializedWriters(Idx& idx, const std::vector<hash::Record>& base,
                            uint64_t seed) {
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 4'000;
  const uint64_t lo = kKeySpace + 1;  // own range: never collides with base
  FailureLog log;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_ops{0};
  std::vector<std::thread> pool;
  for (uint64_t r = 0; r < 2; ++r) {
    pool.emplace_back(
        [&, r] { ReaderBody(idx, stop, log, seed * 31 + r, read_ops); });
  }
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Insert the strided range, then erase every third own key.
      for (size_t i = 0; i < kPerWriter; ++i) {
        const uint64_t k = lo + w + kWriters * i;
        if (!idx.Insert({k, PayloadOf(k), 0})) {
          log.Record("Insert of owned key returned false");
          return;
        }
      }
      for (size_t i = 0; i < kPerWriter; i += 3) {
        const uint64_t k = lo + w + kWriters * i;
        if (!idx.Erase(k)) {
          log.Record("Erase of owned live key returned false");
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : pool) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  idx.WaitForRebuilds();
  // Post-hoc oracle: base plus every owned key that survived its erase.
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (const hash::Record& r : base) oracle.emplace(r.key, r.payload);
  for (size_t w = 0; w < kWriters; ++w) {
    for (size_t i = 0; i < kPerWriter; ++i) {
      if (i % 3 != 0) {
        const uint64_t k = lo + w + kWriters * i;
        oracle.emplace(k, PayloadOf(k));
      }
    }
  }
  VerifySnapshot(idx, oracle, seed ^ 0xfeed, 0);
}

TEST(ConcurrentPointStressTest, UnserializedWritersRaceChained) {
  const auto base = SeedRecords(10'000, testing::TestSeed(8111));
  ConcChained::Config cfg;
  cfg.base.num_slots = base.size();
  cfg.base.hash.seed = 17;
  cfg.log_cap = 128;
  cfg.rebuild_entries = 2048;
  ConcChained idx;
  ASSERT_TRUE(idx.Build(base, cfg).ok());
  RunUnserializedWriters(idx, base, testing::TestSeed(4004));
  EXPECT_GT(idx.ConcurrentStats().writer_contended +
                idx.ConcurrentStats().freezes,
            0u);
}

TEST(ConcurrentPointStressTest, UnserializedWritersRaceCuckoo) {
  const auto base = SeedRecords(10'000, testing::TestSeed(8117));
  ConcCuckoo::Config cfg;
  cfg.base.load_factor = 0.99;
  cfg.log_cap = 128;
  cfg.rebuild_entries = 2048;
  ConcCuckoo idx;
  ASSERT_TRUE(idx.Build(base, cfg).ok());
  RunUnserializedWriters(idx, base, testing::TestSeed(5005));
}

TEST(ConcurrentPointStressTest, ReadersSurviveARehashStorm) {
  // Rehashes forced back-to-back while readers run: exercises the
  // rotate/build/publish pipeline and epoch reclamation under constant
  // version churn — the race S4's SIMD legs probe from the kernel side.
  const auto base = SeedRecords(30'000, testing::TestSeed(8123));
  ConcChained::Config cfg;
  cfg.base.num_slots = base.size();
  cfg.base.hash.seed = 19;
  cfg.log_cap = 256;
  cfg.rebuild_entries = 0;  // manual trigger only
  ConcChained idx;
  ASSERT_TRUE(idx.Build(base, cfg).ok());

  FailureLog log;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_ops{0};
  const uint64_t seed = testing::TestSeed(6006);
  std::vector<std::thread> readers;
  for (uint64_t r = 0; r < 2; ++r) {
    readers.emplace_back(
        [&, r] { ReaderBody(idx, stop, log, seed * 13 + r, read_ops); });
  }
  Xorshift128Plus rng(seed ^ 0x771);
  std::unordered_map<uint64_t, uint64_t> oracle;
  for (const hash::Record& r : base) oracle.emplace(r.key, r.payload);
  for (int storm = 0; storm < 25; ++storm) {
    for (int i = 0; i < 400; ++i) {
      const uint64_t k = rng.NextBounded(kKeySpace);
      ASSERT_EQ(idx.Insert({k, PayloadOf(k), 0}),
                oracle.emplace(k, PayloadOf(k)).second);
    }
    ASSERT_TRUE(idx.Rebuild().ok());
    ASSERT_EQ(idx.ConcurrentStats().delta_entries, 0u);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  VerifySnapshot(idx, oracle, seed ^ 0xbeef, 0);
  const auto cs = idx.ConcurrentStats();
  EXPECT_GE(cs.merges, 25u);
  EXPECT_GT(cs.states_reclaimed, 0u);
}

}  // namespace
}  // namespace li
