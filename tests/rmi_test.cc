// Tests for the RMI core, hybrid RMI and string RMI: the central
// correctness property is that LowerBound matches std::lower_bound for
// present keys, absent keys, and extremes, across datasets, top models,
// leaf counts and search strategies; plus the error-bound guarantee of
// §3.4 ("the key can be found in that region if it exists").

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "data/datasets.h"
#include "data/strings.h"
#include "rmi/hybrid.h"
#include "rmi/rmi.h"
#include "rmi/string_rmi.h"

namespace li::rmi {
namespace {

size_t StdLowerBound(const std::vector<uint64_t>& v, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

std::vector<uint64_t> MixedQueries(const std::vector<uint64_t>& keys,
                                   size_t count, uint64_t seed) {
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> qs;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    switch (rng.NextBounded(4)) {
      case 0: qs.push_back(k); break;
      case 1: qs.push_back(k + 1); break;
      case 2: qs.push_back(k == 0 ? 0 : k - 1); break;
      default: qs.push_back(rng.NextBounded(keys.back() + 1000)); break;
    }
  }
  qs.push_back(0);
  qs.push_back(keys.front());
  qs.push_back(keys.back());
  qs.push_back(keys.back() + 999);
  return qs;
}

struct RmiCase {
  data::DatasetKind kind;
  size_t leaves;
  search::Strategy strategy;
};

class LinearRmiTest : public ::testing::TestWithParam<RmiCase> {};

TEST_P(LinearRmiTest, LowerBoundMatchesStd) {
  const auto keys = data::Generate(GetParam().kind, 50'000, 101);
  RmiConfig config;
  config.num_leaf_models = GetParam().leaves;
  config.strategy = GetParam().strategy;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  for (const uint64_t q : MixedQueries(keys, 30'000, 9)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinearRmiTest,
    ::testing::Values(
        RmiCase{data::DatasetKind::kMaps, 100, search::Strategy::kBiasedBinary},
        RmiCase{data::DatasetKind::kMaps, 5000,
                search::Strategy::kBiasedQuaternary},
        RmiCase{data::DatasetKind::kWeblog, 1000,
                search::Strategy::kBiasedBinary},
        RmiCase{data::DatasetKind::kWeblog, 1000,
                search::Strategy::kExponential},
        RmiCase{data::DatasetKind::kLognormal, 1000,
                search::Strategy::kBinary},
        RmiCase{data::DatasetKind::kLognormal, 10'000,
                search::Strategy::kBiasedBinary}));

TEST(RmiTest, ErrorBoundsHoldForAllStoredKeys) {
  // §3.4: executing the model for every key and keeping worst over/under
  // prediction guarantees every stored key lies inside its window.
  const auto keys = data::GenWeblog(40'000, 5);
  RmiConfig config;
  config.num_leaf_models = 500;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto p = rmi.Predict(keys[i]);
    ASSERT_GE(i, p.lo) << "key idx " << i;
    ASSERT_LT(i, p.hi) << "key idx " << i;
  }
}

TEST(RmiTest, MoreLeavesShrinkError) {
  const auto keys = data::GenLognormal(100'000, 6);
  RmiConfig small_cfg, large_cfg;
  small_cfg.num_leaf_models = 100;
  large_cfg.num_leaf_models = 10'000;
  LinearRmi small, large;
  ASSERT_TRUE(small.Build(keys, small_cfg).ok());
  ASSERT_TRUE(large.Build(keys, large_cfg).ok());
  EXPECT_LT(large.MeanStdError(), small.MeanStdError());
}

TEST(RmiTest, SizeAccounting) {
  const auto keys = data::GenUniform(10'000, 2);
  RmiConfig config;
  config.num_leaf_models = 1000;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  EXPECT_EQ(rmi.SizeBytes(),
            rmi.top().SizeBytes() + 1000 * sizeof(Leaf));
}

TEST(RmiTest, DenseSequentialKeysArePerfectlyLearned) {
  // The introduction's motivating case: offsets become exact.
  const auto keys = data::GenSequential(100'000, 1'000'000);
  RmiConfig config;
  config.num_leaf_models = 64;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  EXPECT_EQ(rmi.MaxAbsError(), 0);
  for (uint64_t k = 1'000'000; k < 1'100'000; k += 9973) {
    const auto p = rmi.Predict(k);
    EXPECT_EQ(p.pos, k - 1'000'000);
  }
}

TEST(RmiTest, NeuralTopOnLognormal) {
  const auto keys = data::GenLognormal(50'000, 7);
  RmiConfig config;
  config.num_leaf_models = 1000;
  config.train.nn.hidden = {16};
  config.train.nn.epochs = 20;
  NeuralRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  for (const uint64_t q : MixedQueries(keys, 20'000, 10)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

TEST(RmiTest, MultivariateTopOnLognormal) {
  const auto keys = data::GenLognormal(50'000, 8);
  RmiConfig config;
  config.num_leaf_models = 1000;
  MultivariateRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  for (const uint64_t q : MixedQueries(keys, 20'000, 11)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

TEST(RmiTest, ContainsSemantics) {
  const auto keys = data::GenUniform(10'000, 3, 1u << 30);
  RmiConfig config;
  config.num_leaf_models = 100;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  Xorshift128Plus rng(4);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    EXPECT_TRUE(rmi.Contains(k));
  }
  // Absent probes: value between two adjacent keys.
  for (int i = 0; i < 5000; ++i) {
    const size_t idx = rng.NextBounded(keys.size() - 1);
    if (keys[idx] + 1 < keys[idx + 1]) {
      EXPECT_FALSE(rmi.Contains(keys[idx] + 1));
    }
  }
}

TEST(RmiTest, EmptyAndDegenerateBuilds) {
  LinearRmi rmi;
  RmiConfig config;
  config.num_leaf_models = 10;
  ASSERT_TRUE(rmi.Build({}, config).ok());
  EXPECT_EQ(rmi.LowerBound(5), 0u);
  config.num_leaf_models = 0;
  EXPECT_FALSE(rmi.Build({}, config).ok());
  std::vector<uint64_t> one = {42};
  config.num_leaf_models = 4;
  ASSERT_TRUE(rmi.Build(one, config).ok());
  EXPECT_EQ(rmi.LowerBound(41), 0u);
  EXPECT_EQ(rmi.LowerBound(42), 0u);
  EXPECT_EQ(rmi.LowerBound(43), 1u);
}

TEST(RmiTest, ManyMoreLeavesThanKeys) {
  // Sparse routing: most leaves empty; correctness must not depend on
  // leaf occupancy.
  const auto keys = data::GenUniform(500, 5);
  RmiConfig config;
  config.num_leaf_models = 10'000;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  for (const uint64_t q : MixedQueries(keys, 5000, 13)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

TEST(HybridRmiTest, MatchesStdAndBoundsWorstCase) {
  const auto keys = data::GenWeblog(50'000, 17);
  HybridConfig config;
  config.rmi.num_leaf_models = 200;
  config.threshold = 64;
  HybridRmi<models::LinearModel> hybrid;
  ASSERT_TRUE(hybrid.Build(keys, config).ok());
  for (const uint64_t q : MixedQueries(keys, 30'000, 14)) {
    ASSERT_EQ(hybrid.LowerBound(q), StdLowerBound(keys, q)) << "q=" << q;
  }
}

TEST(HybridRmiTest, LowThresholdSwapsManyLeaves) {
  const auto keys = data::GenWeblog(50'000, 18);
  HybridConfig strict, loose;
  strict.rmi.num_leaf_models = loose.rmi.num_leaf_models = 100;
  strict.threshold = 4;
  loose.threshold = 100'000;
  HybridRmi<models::LinearModel> a, b;
  ASSERT_TRUE(a.Build(keys, strict).ok());
  ASSERT_TRUE(b.Build(keys, loose).ok());
  EXPECT_GT(a.num_btree_leaves(), b.num_btree_leaves());
  EXPECT_EQ(b.num_btree_leaves(), 0u);
  EXPECT_GT(a.SizeBytes(), b.SizeBytes());
}

TEST(StringRmiTest, LowerBoundMatchesStd) {
  const auto ids = data::GenDocIds(30'000, 21);
  StringRmiConfig config;
  config.num_leaf_models = 500;
  config.top_nn.hidden = {16};
  config.top_nn.epochs = 8;
  StringRmi rmi;
  ASSERT_TRUE(rmi.Build(ids, config).ok());
  Xorshift128Plus rng(22);
  for (int i = 0; i < 10'000; ++i) {
    std::string q = ids[rng.NextBounded(ids.size())];
    if (rng.NextBounded(2)) q += "x";  // absent variant
    const size_t expect = static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), q) - ids.begin());
    ASSERT_EQ(rmi.LowerBound(q), expect) << q;
  }
  EXPECT_EQ(rmi.LowerBound(""), 0u);
  EXPECT_EQ(rmi.LowerBound("~~~~"), ids.size());
}

TEST(StringRmiTest, HybridThresholdAddsBTrees) {
  const auto ids = data::GenDocIds(30'000, 23);
  StringRmiConfig config;
  config.num_leaf_models = 100;
  config.top_nn.epochs = 6;
  config.hybrid_threshold = 32;
  StringRmi rmi;
  ASSERT_TRUE(rmi.Build(ids, config).ok());
  EXPECT_GT(rmi.num_btree_leaves(), 0u);
  Xorshift128Plus rng(24);
  for (int i = 0; i < 10'000; ++i) {
    const std::string& q = ids[rng.NextBounded(ids.size())];
    const size_t expect = static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), q) - ids.begin());
    ASSERT_EQ(rmi.LowerBound(q), expect) << q;
  }
}

TEST(StringRmiTest, QuaternaryStrategyCorrect) {
  const auto ids = data::GenDocIds(20'000, 25);
  StringRmiConfig config;
  config.num_leaf_models = 500;
  config.top_nn.epochs = 6;
  config.strategy = search::Strategy::kBiasedQuaternary;
  StringRmi rmi;
  ASSERT_TRUE(rmi.Build(ids, config).ok());
  Xorshift128Plus rng(26);
  for (int i = 0; i < 10'000; ++i) {
    const std::string& q = ids[rng.NextBounded(ids.size())];
    const size_t expect = static_cast<size_t>(
        std::lower_bound(ids.begin(), ids.end(), q) - ids.begin());
    ASSERT_EQ(rmi.LowerBound(q), expect) << q;
  }
}

TEST(StringRmiTest, ErrorBoundsHoldForStoredStrings) {
  const auto ids = data::GenDocIds(20'000, 27);
  StringRmiConfig config;
  config.num_leaf_models = 200;
  config.top_nn.epochs = 6;
  StringRmi rmi;
  ASSERT_TRUE(rmi.Build(ids, config).ok());
  for (size_t i = 0; i < ids.size(); i += 7) {
    const auto p = rmi.Predict(ids[i]);
    if (p.is_btree_leaf) continue;
    ASSERT_GE(i, p.lo) << ids[i];
    ASSERT_LT(i, p.hi) << ids[i];
  }
}

// ---- Retrain-reuse (Appendix D.1) ----

TEST(RebuildReuseTest, UnchangedDistributionReusesSweepWindows) {
  const auto keys = data::Generate(data::DatasetKind::kLognormal, 50'000, 31);
  RmiConfig config;
  config.num_leaf_models = 500;
  LinearRmi rmi;
  ASSERT_TRUE(rmi.Build(keys, config).ok());
  ASSERT_EQ(rmi.sweep_windows_reused(), 0u);

  // Same keys, same config: every *populated* leaf lands on identical
  // error bounds, so its sweep sub-window is carried over, not
  // re-derived (leaves no key routes to never enter the reuse path).
  ASSERT_TRUE(rmi.Rebuild(keys).ok());
  const size_t per_cycle = rmi.sweep_windows_reused();
  EXPECT_GT(per_cycle, 0u);
  EXPECT_LE(per_cycle, config.num_leaf_models);
  for (const uint64_t q : MixedQueries(keys, 20'000, 33)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(keys, q)) << q;
  }
  // The reuse set is a pure function of the key distribution: a second
  // identical rebuild carries over exactly the same windows again.
  ASSERT_TRUE(rmi.Rebuild(keys).ok());
  EXPECT_EQ(rmi.sweep_windows_reused(), 2 * per_cycle);

  // A merge-cycle-sized perturbation: most leaves keep their bounds and
  // reuse; correctness is unconditional either way.
  auto grown = keys;
  Xorshift128Plus rng(35);
  for (int i = 0; i < 500; ++i) grown.push_back(rng.Next());
  std::sort(grown.begin(), grown.end());
  grown.erase(std::unique(grown.begin(), grown.end()), grown.end());
  const size_t before = rmi.sweep_windows_reused();
  ASSERT_TRUE(rmi.Rebuild(grown).ok());
  EXPECT_GT(rmi.sweep_windows_reused(), before);
  for (const uint64_t q : MixedQueries(grown, 20'000, 37)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(grown, q)) << q;
  }

  // A genuinely different distribution: the counter may tick for the odd
  // coincidentally-identical leaf, but lookups must stay exact — reuse
  // is an optimization, never a semantic.
  const auto other = data::Generate(data::DatasetKind::kMaps, 50'000, 39);
  ASSERT_TRUE(rmi.Rebuild(other).ok());
  for (const uint64_t q : MixedQueries(other, 20'000, 41)) {
    ASSERT_EQ(rmi.LowerBound(q), StdLowerBound(other, q)) << q;
  }
}

}  // namespace
}  // namespace li::rmi
