// Tests for the sequence classifiers used by learned Bloom filters: the
// char-level GRU and the hashed-n-gram logistic regression must both
// separate the synthetic phishing / benign URL classes.

#include <gtest/gtest.h>

#include "classifier/gru.h"
#include "classifier/ngram_logistic.h"
#include "data/strings.h"

namespace li::classifier {
namespace {

data::UrlCorpus SmallCorpus() { return data::GenUrls(3000, 3000, 31); }

/// AUC-style separation check: mean score of keys must exceed mean score
/// of non-keys by a solid margin.
template <typename Model>
void ExpectSeparation(const Model& model, const data::UrlCorpus& corpus,
                      double min_gap) {
  double pos = 0, neg = 0;
  for (const auto& u : corpus.keys) pos += model.Predict(u);
  for (const auto& u : corpus.random_negatives) neg += model.Predict(u);
  pos /= static_cast<double>(corpus.keys.size());
  neg /= static_cast<double>(corpus.random_negatives.size());
  EXPECT_GT(pos - neg, min_gap) << "pos=" << pos << " neg=" << neg;
}

TEST(GruTest, LearnsToSeparateUrls) {
  const auto corpus = SmallCorpus();
  GruConfig config;
  config.hidden_dim = 8;
  config.embed_dim = 16;
  config.epochs = 2;
  config.max_train_per_class = 2000;
  GruClassifier gru;
  ASSERT_TRUE(gru.Train(corpus.keys, corpus.random_negatives, config).ok());
  ExpectSeparation(gru, corpus, 0.3);
}

TEST(GruTest, OutputsAreProbabilities) {
  const auto corpus = SmallCorpus();
  GruConfig config;
  config.hidden_dim = 4;
  config.embed_dim = 8;
  config.epochs = 1;
  config.max_train_per_class = 500;
  GruClassifier gru;
  ASSERT_TRUE(gru.Train(corpus.keys, corpus.random_negatives, config).ok());
  for (size_t i = 0; i < corpus.keys.size(); i += 97) {
    const double p = gru.Predict(corpus.keys[i]);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Empty and long strings must not crash or leave [0,1].
  EXPECT_GE(gru.Predict(""), 0.0);
  EXPECT_LE(gru.Predict(std::string(500, 'a')), 1.0);
}

TEST(GruTest, SizeMatchesPaperAccounting) {
  // W=16, E=32 should weigh in at ~0.0259 MB (float32), §5.2.
  const auto corpus = SmallCorpus();
  GruConfig config;
  config.hidden_dim = 16;
  config.embed_dim = 32;
  config.epochs = 1;
  config.max_train_per_class = 200;
  GruClassifier gru;
  ASSERT_TRUE(gru.Train(corpus.keys, corpus.random_negatives, config).ok());
  const double mb = static_cast<double>(gru.SizeBytes()) / 1e6;
  EXPECT_NEAR(mb, 0.0259, 0.006);
}

TEST(GruTest, ConfigValidation) {
  GruClassifier gru;
  GruConfig bad;
  bad.hidden_dim = 0;
  std::vector<std::string> pos = {"a"}, neg = {"b"};
  EXPECT_FALSE(gru.Train(pos, neg, bad).ok());
  GruConfig ok;
  EXPECT_FALSE(gru.Train({}, neg, ok).ok());
}

TEST(NgramTest, LearnsToSeparateUrls) {
  const auto corpus = SmallCorpus();
  NgramConfig config;
  NgramLogistic model;
  ASSERT_TRUE(
      model.Train(corpus.keys, corpus.random_negatives, config).ok());
  ExpectSeparation(model, corpus, 0.45);
}

TEST(NgramTest, WhitelistedUrlsHarderThanRandom) {
  // Covariate shift (§5.2): benign-but-phishing-looking URLs should score
  // higher than plain benign URLs.
  const auto corpus = SmallCorpus();
  NgramLogistic model;
  ASSERT_TRUE(model.Train(corpus.keys, corpus.random_negatives, {}).ok());
  double white = 0, rand_neg = 0;
  for (const auto& u : corpus.whitelisted) white += model.Predict(u);
  for (const auto& u : corpus.random_negatives) rand_neg += model.Predict(u);
  white /= static_cast<double>(corpus.whitelisted.size());
  rand_neg /= static_cast<double>(corpus.random_negatives.size());
  EXPECT_GT(white, rand_neg);
}

TEST(NgramTest, ShortStringsHandled) {
  const auto corpus = SmallCorpus();
  NgramLogistic model;
  ASSERT_TRUE(model.Train(corpus.keys, corpus.random_negatives, {}).ok());
  EXPECT_GE(model.Predict("a"), 0.0);
  EXPECT_LE(model.Predict("ab"), 1.0);
  EXPECT_GE(model.Predict(""), 0.0);
}

TEST(NgramTest, SizeIsBucketCount) {
  NgramConfig config;
  config.num_buckets = 4096;
  const auto corpus = SmallCorpus();
  NgramLogistic model;
  ASSERT_TRUE(model.Train(corpus.keys, corpus.random_negatives, config).ok());
  EXPECT_EQ(model.SizeBytes(), (4096 + 1) * sizeof(float));
}

}  // namespace
}  // namespace li::classifier
