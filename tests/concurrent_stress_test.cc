// ThreadSanitizer-able stress suite for the concurrent write path:
// N writer + M reader threads drive ConcurrentWritableIndex and
// ShardedIndex against a mutex-guarded std::set oracle.
//
// Writers apply every op to the index and the oracle under one mutex, so
// the oracle's op order equals the index's writer-serialization order and
// the Insert/Erase liveness booleans must match op-for-op. Readers run
// lock-free throughout — during write storms, background merges and the
// verification passes — checking the invariants that hold at any instant
// (ranks bounded by the live-count envelope, scans strictly ascending).
// At the end of each round the writers quiesce (join) and the main thread
// runs a linearizable snapshot check — size, full ordered scan, ranks and
// membership against the oracle — while the readers keep hammering, so
// the read path is exercised against concurrent merge publishes even at
// verification time.
//
// Thread failures are recorded, never asserted off-thread (gtest asserts
// are not thread-safe), and re-raised on the main thread. Dataset and
// schedule seeds run through tests/test_seed.h, so LI_TEST_SEED=<n>
// sweeps fresh interleavings while failures stay reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/merge_policy.h"
#include "rmi/rmi.h"
#include "test_seed.h"

namespace li {
namespace {

using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

/// First failure observed by any thread; asserted on the main thread.
class FailureLog {
 public:
  void Record(const std::string& msg) {
    std::lock_guard<std::mutex> lk(mu_);
    if (first_.empty()) first_ = msg;
  }
  bool ok() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_.empty();
  }
  std::string first() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  std::string first_;
};

std::vector<uint64_t> SeedKeys(size_t n, uint64_t seed) {
  auto keys = data::GenLognormal(n, seed);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

constexpr uint64_t kKeySpace = 400'000'000;

/// One writer's workload for one round: ops applied to index + oracle
/// under the oracle mutex; liveness booleans cross-checked op-for-op.
template <typename Idx>
void WriterBody(Idx& idx, std::set<uint64_t>& oracle, std::mutex& oracle_mu,
                FailureLog& log, uint64_t seed, size_t ops) {
  Xorshift128Plus rng(seed);
  for (size_t i = 0; i < ops && log.ok(); ++i) {
    const uint64_t k = rng.NextBounded(kKeySpace);
    std::lock_guard<std::mutex> lk(oracle_mu);
    if (rng.NextBounded(3) == 0) {
      const bool got = idx.Erase(k);
      const bool want = oracle.erase(k) > 0;
      if (got != want) {
        log.Record("Erase(" + std::to_string(k) + ") returned " +
                   std::to_string(got) + ", oracle says " +
                   std::to_string(want));
        return;
      }
    } else {
      const bool got = idx.Insert(k);
      const bool want = oracle.insert(k).second;
      if (got != want) {
        log.Record("Insert(" + std::to_string(k) + ") returned " +
                   std::to_string(got) + ", oracle says " +
                   std::to_string(want));
        return;
      }
    }
  }
}

/// Free-running reader: invariants that hold at any instant, even with
/// writes and merges in flight.
template <typename Idx>
void ReaderBody(const Idx& idx, const std::atomic<bool>& stop,
                FailureLog& log, uint64_t seed, size_t max_live,
                std::atomic<uint64_t>& ops_done) {
  Xorshift128Plus rng(seed);
  uint64_t local_ops = 0;
  while (!stop.load(std::memory_order_relaxed) && log.ok()) {
    const uint64_t q = rng.NextBounded(kKeySpace);
    const size_t rank = idx.Lookup(q);
    if (rank > max_live) {
      log.Record("Lookup(" + std::to_string(q) + ") rank " +
                 std::to_string(rank) + " exceeds live-count envelope " +
                 std::to_string(max_live));
      return;
    }
    (void)idx.Contains(q);
    if ((local_ops & 63) == 0) {
      const auto scan = idx.Scan(q, 32);
      for (size_t i = 0; i + 1 < scan.size(); ++i) {
        if (!(scan[i] < scan[i + 1])) {
          log.Record("Scan not strictly ascending at " +
                     std::to_string(scan[i]));
          return;
        }
      }
      if (!scan.empty() && scan.front() < q) {
        log.Record("Scan returned key below the probe");
        return;
      }
    }
    ++local_ops;
  }
  ops_done.fetch_add(local_ops, std::memory_order_relaxed);
}

/// Quiesced-writer snapshot check: exact equivalence with the oracle.
/// Readers may still be running — reads must stay exact because no write
/// is in flight, whatever the background mergers are doing.
template <typename Idx>
void VerifySnapshot(const Idx& idx, const std::set<uint64_t>& oracle,
                    uint64_t seed, int round) {
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size()) << "round " << round;
  ASSERT_EQ(idx.Scan(0, ref.size() + 10), ref) << "round " << round;
  Xorshift128Plus rng(seed);
  for (int p = 0; p < 400; ++p) {
    const uint64_t q = rng.NextBounded(kKeySpace + 100);
    const size_t want = static_cast<size_t>(
        std::lower_bound(ref.begin(), ref.end(), q) - ref.begin());
    ASSERT_EQ(idx.Lookup(q), want) << "round " << round << " probe " << q;
    ASSERT_EQ(idx.Contains(q), oracle.count(q) > 0)
        << "round " << round << " probe " << q;
  }
}

template <typename Idx>
void RunStress(Idx& idx, std::vector<uint64_t> base_keys, size_t writers,
               size_t readers, size_t ops_per_writer, int rounds,
               uint64_t seed) {
  std::set<uint64_t> oracle(base_keys.begin(), base_keys.end());
  std::mutex oracle_mu;
  FailureLog log;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_ops{0};
  // Ranks can never exceed every key that could ever be live.
  const size_t max_live =
      base_keys.size() + writers * ops_per_writer * rounds + 1;

  std::vector<std::thread> reader_threads;
  for (size_t r = 0; r < readers; ++r) {
    reader_threads.emplace_back([&, r] {
      ReaderBody(idx, stop, log, seed * 977 + r, max_live, read_ops);
    });
  }
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::thread> writer_threads;
    for (size_t w = 0; w < writers; ++w) {
      writer_threads.emplace_back([&, w, round] {
        WriterBody(idx, oracle, oracle_mu, log,
                   seed + static_cast<uint64_t>(round) * 131 + w * 17,
                   ops_per_writer);
      });
    }
    for (std::thread& t : writer_threads) t.join();
    ASSERT_TRUE(log.ok()) << log.first();
    // Periodic linearizable snapshot check, readers still hammering.
    VerifySnapshot(idx, oracle, seed ^ (round + 1), round);
    if (::testing::Test::HasFatalFailure()) break;
  }
  stop.store(true);
  for (std::thread& t : reader_threads) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  // Final quiesce: drain merges, re-verify, and sanity-check the gauges.
  idx.WaitForMerges();
  VerifySnapshot(idx, oracle, seed ^ 0xabcd, rounds);
  EXPECT_GT(read_ops.load(), 0u);
}

TEST(ConcurrentStressTest, SingleFrontEndUnderWriteStorm) {
  auto keys = SeedKeys(20'000, testing::TestSeed(51));
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = 256;
  cfg.policy.min_delta_entries = 256;   // frequent background merges
  cfg.policy.max_delta_entries = 512;
  cfg.log_cap = 128;                    // frequent freezes
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  RunStress(idx, std::move(keys), /*writers=*/3, /*readers=*/2,
            /*ops_per_writer=*/2'000, /*rounds=*/3,
            /*seed=*/testing::TestSeed(1001));
  const auto cs = idx.ConcurrentStats();
  EXPECT_GT(cs.merges, 0u);
  EXPECT_GT(cs.freezes, 0u);
  EXPECT_EQ(cs.states_retired, cs.states_published);
}

TEST(ConcurrentStressTest, ShardedFrontEndUnderWriteStorm) {
  auto keys = SeedKeys(20'000, testing::TestSeed(53));
  ShardedRmi::Config cfg;
  cfg.inner.base.num_leaf_models = 128;
  cfg.inner.policy.min_delta_entries = 256;
  cfg.inner.policy.max_delta_entries = 512;
  cfg.inner.log_cap = 128;
  cfg.num_shards = 4;
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  RunStress(idx, std::move(keys), /*writers=*/3, /*readers=*/2,
            /*ops_per_writer=*/2'000, /*rounds=*/3,
            /*seed=*/testing::TestSeed(2002));
  const auto cs = idx.ConcurrentStats();
  EXPECT_EQ(cs.shards, 4u);
  EXPECT_GT(cs.merges, 0u);
}

/// Writers with NO external serialization — unlike the oracle phases,
/// where the oracle mutex (intentionally, for op-for-op bool checking)
/// serializes writers, here Insert/Erase race each other directly:
/// contended writer-mutex acquisitions, freeze folds racing appends,
/// policy merges firing mid-burst. Each writer owns a disjoint strided
/// key range, so the final state is verifiable post-hoc without any
/// locking during the run.
template <typename Idx>
void RunUnserializedWriters(Idx& idx, const std::vector<uint64_t>& base) {
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 4'000;
  const uint64_t lo = base.back() + 1;
  FailureLog log;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_ops{0};
  const size_t max_live = base.size() + kWriters * kPerWriter + 1;
  std::vector<std::thread> pool;
  for (int r = 0; r < 2; ++r) {
    pool.emplace_back([&, r] {
      ReaderBody(idx, stop, log, 9'000 + r, max_live, read_ops);
    });
  }
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Insert the strided range, then erase every third own key —
      // returns must be exact even under contention because the ranges
      // are disjoint (no other thread ever touches these keys).
      for (size_t i = 0; i < kPerWriter; ++i) {
        const uint64_t k = lo + w + kWriters * i;
        if (!idx.Insert(k)) {
          log.Record("Insert of owned key returned false");
          return;
        }
      }
      for (size_t i = 0; i < kPerWriter; i += 3) {
        const uint64_t k = lo + w + kWriters * i;
        if (!idx.Erase(k)) {
          log.Record("Erase of owned live key returned false");
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : pool) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  idx.WaitForMerges();
  // Post-hoc oracle: base plus every owned key that survived its erase.
  std::set<uint64_t> oracle(base.begin(), base.end());
  for (size_t w = 0; w < kWriters; ++w) {
    for (size_t i = 0; i < kPerWriter; ++i) {
      if (i % 3 != 0) oracle.insert(lo + w + kWriters * i);
    }
  }
  VerifySnapshot(idx, oracle, 0xfeed, 0);
}

TEST(ConcurrentStressTest, UnserializedWritersRaceSingleFrontEnd) {
  auto keys = SeedKeys(10'000, testing::TestSeed(59));
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = 128;
  cfg.policy.min_delta_entries = 512;
  cfg.policy.max_delta_entries = 1024;
  cfg.log_cap = 128;
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  RunUnserializedWriters(idx, keys);
  EXPECT_GT(idx.ConcurrentStats().merges, 0u);
}

TEST(ConcurrentStressTest, UnserializedWritersRaceShardedFrontEnd) {
  auto keys = SeedKeys(10'000, testing::TestSeed(61));
  ShardedRmi::Config cfg;
  cfg.inner.base.num_leaf_models = 64;
  cfg.inner.policy.min_delta_entries = 256;
  cfg.inner.policy.max_delta_entries = 512;
  cfg.inner.log_cap = 128;
  cfg.num_shards = 4;
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  RunUnserializedWriters(idx, keys);
}

TEST(ConcurrentStressTest, ReadersSurviveAMergeStorm) {
  // Merges forced back-to-back while readers run: exercises the
  // rotate/build/publish pipeline and epoch reclamation under constant
  // version churn.
  auto keys = SeedKeys(30'000, testing::TestSeed(57));
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = 256;
  cfg.policy.trigger = dynamic::MergeTrigger::kManual;
  cfg.log_cap = 256;
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());

  FailureLog log;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_ops{0};
  const size_t max_live = keys.size() + 20'000;
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      ReaderBody(idx, stop, log, 7'000 + r, max_live, read_ops);
    });
  }
  Xorshift128Plus rng(testing::TestSeed(771));
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  for (int storm = 0; storm < 25; ++storm) {
    for (int i = 0; i < 400; ++i) {
      const uint64_t k = rng.NextBounded(kKeySpace);
      ASSERT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
    ASSERT_TRUE(idx.Merge().ok());
    ASSERT_EQ(idx.Stats().delta_entries, 0u);
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(log.ok()) << log.first();
  VerifySnapshot(idx, oracle, 0xbeef, 0);
  const auto cs = idx.ConcurrentStats();
  EXPECT_EQ(cs.merges, 25u);
  EXPECT_GT(cs.states_reclaimed, 0u);
}

}  // namespace
}  // namespace li
