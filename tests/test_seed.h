// Shared seed plumbing for randomized tests.
//
// Every randomized suite (stress, rebalance, crash-recovery, property)
// funnels its seeds through TestSeed(default_seed). By default a test is
// fully deterministic: it gets exactly the seed written at the call
// site. Setting LI_TEST_SEED=<n> perturbs every call site with one knob
// — each site's default is mixed with the override so distinct sites
// still draw distinct streams — which lets CI sweep fresh schedules
// nightly while a failure stays reproducible by exporting the same
// value. The chosen seed is logged to stderr so the reproduction recipe
// is always in the failing log.

#ifndef LI_TESTS_TEST_SEED_H_
#define LI_TESTS_TEST_SEED_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace li::testing {

/// Parsed LI_TEST_SEED, or 0 when unset/empty (0 means "no override":
/// setting LI_TEST_SEED=0 is the same as not setting it).
inline uint64_t SeedOverride() {
  static const uint64_t value = [] {
    const char* env = std::getenv("LI_TEST_SEED");
    if (env == nullptr || *env == '\0') return uint64_t{0};
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 0));
  }();
  return value;
}

/// The seed a randomized test should use: `default_seed` verbatim when
/// LI_TEST_SEED is unset, otherwise a splitmix of (override, default) so
/// one env knob re-seeds every call site without collapsing distinct
/// sites onto one stream. Logs the decision once per call.
inline uint64_t TestSeed(uint64_t default_seed) {
  const uint64_t over = SeedOverride();
  uint64_t seed = default_seed;
  if (over != 0) {
    uint64_t z = over ^ (default_seed * 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    seed = z ^ (z >> 31);
    if (seed == 0) seed = 1;  // keep xorshift-style generators seedable
  }
  std::fprintf(stderr,
               "[test-seed] default=%" PRIu64 " chosen=%" PRIu64
               "%s (set LI_TEST_SEED to sweep)\n",
               default_seed, seed, over != 0 ? " [LI_TEST_SEED]" : "");
  return seed;
}

}  // namespace li::testing

#endif  // LI_TESTS_TEST_SEED_H_
