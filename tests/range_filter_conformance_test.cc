// Conformance suite for the library-wide RangeFilter contract: both
// constructions in src/rangefilter/ — the learned segmented filter and
// the fixed-width interval-bitmap baseline — are (a) statically asserted
// to satisfy index::RangeFilter (and the section snapshot protocol) and
// (b) driven through identical dynamic checks over uniform, zipf,
// duplicate-heavy, and adversarial-gap key sets:
//
//   * zero false negatives against a std::set brute-force oracle — the
//     non-negotiable contract, checked over witness ranges *and* fully
//     random ranges so emptiness is decided by the oracle, not assumed;
//   * measured range-FPR at or under a calibrated bound on uniform keys
//     (skew-dependent FPR comparisons live in bench_rangefilter);
//   * degenerate [lo, lo) ranges answer false, the full-domain range
//     answers true, and MightContain(k) == MightContainRange(k, k+1)
//     point-vs-range consistency, including the 2^64-1 edge;
//   * an empty build and the empty AnyRangeFilter handle behave as the
//     empty set;
//   * the type-erased handle answers bit-for-bit like the concrete
//     filter it wraps.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "index/range_filter.h"
#include "index/snapshottable.h"
#include "rangefilter/interval_bitmap_filter.h"
#include "rangefilter/learned_range_filter.h"
#include "rangefilter/workload.h"

namespace li {
namespace {

// ---- Static acceptance gate: the contract holds for every filter ----
static_assert(index::RangeFilter<rangefilter::LearnedRangeFilter>);
static_assert(index::RangeFilter<rangefilter::IntervalBitmapFilter>);
// The erased handle itself satisfies the concept, so erased filters can
// be re-erased / stored wherever a concrete filter is expected.
static_assert(index::RangeFilter<index::AnyRangeFilter>);
// Both constructions persist through the shared section protocol.
static_assert(index::Snapshottable<rangefilter::LearnedRangeFilter>);
static_assert(index::SectionSnapshottable<rangefilter::LearnedRangeFilter>);
static_assert(index::Snapshottable<rangefilter::IntervalBitmapFilter>);
static_assert(
    index::SectionSnapshottable<rangefilter::IntervalBitmapFilter>);

/// Build with a bits-per-key budget, uniformly over both config types.
Status BuildFilter(rangefilter::LearnedRangeFilter& f,
                   std::span<const uint64_t> keys, double bits_per_key) {
  rangefilter::LearnedRangeFilterConfig cfg;
  cfg.bits_per_key = bits_per_key;
  return f.Build(keys, cfg);
}
Status BuildFilter(rangefilter::IntervalBitmapFilter& f,
                   std::span<const uint64_t> keys, double bits_per_key) {
  rangefilter::IntervalBitmapFilterConfig cfg;
  cfg.bits_per_key = bits_per_key;
  return f.Build(keys, cfg);
}

/// Exact range emptiness over the built keys — the ground truth every
/// probabilistic answer is held against.
bool OracleNonEmpty(const std::set<uint64_t>& keys, uint64_t lo,
                    uint64_t hi) {
  if (hi <= lo) return false;
  const auto it = keys.lower_bound(lo);
  return it != keys.end() && *it < hi;  // hi is exclusive
}

struct Dataset {
  const char* name;
  std::vector<uint64_t> keys;
};

std::vector<Dataset> MakeDatasets() {
  std::vector<Dataset> out;
  out.push_back({"uniform", rangefilter::GenUniformKeys(20'000, 11)});
  out.push_back({"zipf", rangefilter::GenZipfKeys(20'000, 12)});
  out.push_back(
      {"duplicates", rangefilter::GenDuplicateHeavyKeys(20'000, 13)});
  out.push_back({"advgap", rangefilter::GenAdversarialGapKeys(20'000, 14)});
  return out;
}

template <typename F>
class RangeFilterConformanceTest : public ::testing::Test {};

using FilterTypes = ::testing::Types<rangefilter::LearnedRangeFilter,
                                     rangefilter::IntervalBitmapFilter>;
TYPED_TEST_SUITE(RangeFilterConformanceTest, FilterTypes);

TYPED_TEST(RangeFilterConformanceTest, ZeroFalseNegativesVsOracle) {
  for (const Dataset& ds : MakeDatasets()) {
    SCOPED_TRACE(ds.name);
    TypeParam filter;
    ASSERT_TRUE(BuildFilter(filter, ds.keys, 8.0).ok());
    const std::set<uint64_t> oracle(ds.keys.begin(), ds.keys.end());

    // Witness ranges: each contains a built key by construction.
    for (const index::RangeQuery& q :
         rangefilter::GenWitnessRanges(
             std::vector<uint64_t>(oracle.begin(), oracle.end()), 21,
             2'000)) {
      ASSERT_TRUE(OracleNonEmpty(oracle, q.lo, q.hi));
      ASSERT_TRUE(filter.MightContainRange(q.lo, q.hi))
          << "false negative on [" << q.lo << ", " << q.hi << ")";
    }
    // Fully random ranges: the oracle decides emptiness; any non-empty
    // range the filter denies is a contract violation.
    Xorshift128Plus rng(22);
    const uint64_t span = *oracle.rbegin() - *oracle.begin();
    for (int i = 0; i < 4'000; ++i) {
      const uint64_t lo = *oracle.begin() + rng.NextBounded(span);
      const uint64_t hi = lo + 1 + rng.NextBounded(1u << 16);
      if (OracleNonEmpty(oracle, lo, hi)) {
        ASSERT_TRUE(filter.MightContainRange(lo, hi))
            << "false negative on [" << lo << ", " << hi << ")";
      }
    }
    // Every built key answers true as a point probe.
    for (size_t i = 0; i < ds.keys.size(); i += 7) {
      ASSERT_TRUE(filter.MightContain(ds.keys[i])) << ds.keys[i];
    }
  }
}

TYPED_TEST(RangeFilterConformanceTest, MeasuredRangeFprUnderTarget) {
  // Uniform keys: both constructions place ~bits_per_key blocks per key
  // gap, so in-gap queries false-positive at roughly 2/bits_per_key.
  // At 32 bits/key that predicts ~0.06; 0.15 leaves wobble room while
  // still catching a broken layout (which measures near 1.0).
  const std::vector<uint64_t> keys = rangefilter::GenUniformKeys(20'000, 31);
  TypeParam filter;
  ASSERT_TRUE(BuildFilter(filter, keys, 32.0).ok());
  const std::vector<index::RangeQuery> empties =
      rangefilter::GenEmptyRanges(keys, 32);
  ASSERT_GE(empties.size(), 1'000u);
  const double fpr = filter.MeasuredRangeFpr(empties);
  EXPECT_LE(fpr, 0.15);
  // The member delegates to MeasureRangeFprOver — one metric definition.
  EXPECT_DOUBLE_EQ(fpr, index::MeasureRangeFprOver(filter, empties));
  EXPECT_GT(filter.SizeBytes(), 0u);
}

TYPED_TEST(RangeFilterConformanceTest, DegenerateAndFullDomainRanges) {
  const std::vector<uint64_t> keys =
      rangefilter::GenAdversarialGapKeys(5'000, 41);
  TypeParam filter;
  ASSERT_TRUE(BuildFilter(filter, keys, 8.0).ok());

  // [lo, lo) is empty by definition — even at a built key.
  for (size_t i = 0; i < keys.size(); i += 97) {
    EXPECT_FALSE(filter.MightContainRange(keys[i], keys[i]));
  }
  EXPECT_FALSE(filter.MightContainRange(keys[0] + 1, keys[0]));  // hi < lo

  // The full domain always contains every built key.
  EXPECT_TRUE(filter.MightContainRange(0, ~uint64_t{0}));
  EXPECT_TRUE(filter.MightContainRange(keys.front(), keys.back() + 1));
}

TYPED_TEST(RangeFilterConformanceTest, PointVsRangeConsistency) {
  const std::vector<uint64_t> keys = rangefilter::GenZipfKeys(10'000, 51);
  TypeParam filter;
  ASSERT_TRUE(BuildFilter(filter, keys, 8.0).ok());

  Xorshift128Plus rng(52);
  for (int i = 0; i < 5'000; ++i) {
    const uint64_t k = (i % 2 == 0)
                           ? keys[rng.NextBounded(keys.size())]
                           : rng.NextBounded(keys.back() + 2);
    ASSERT_LT(k, ~uint64_t{0});
    ASSERT_EQ(filter.MightContain(k), filter.MightContainRange(k, k + 1))
        << k;
  }
}

TYPED_TEST(RangeFilterConformanceTest, MaxKeyEdgeIsHandledInternally) {
  // key == 2^64-1 cannot be probed as [k, k+1) by wrapping; the contract
  // requires the filter to handle it internally.
  const std::vector<uint64_t> keys = {10, 1'000, ~uint64_t{0} - 1,
                                      ~uint64_t{0}};
  TypeParam filter;
  ASSERT_TRUE(BuildFilter(filter, keys, 16.0).ok());
  EXPECT_TRUE(filter.MightContain(~uint64_t{0}));
  EXPECT_TRUE(filter.MightContainRange(~uint64_t{0} - 1, ~uint64_t{0}));
  EXPECT_TRUE(filter.MightContainRange(0, ~uint64_t{0}));
  EXPECT_FALSE(filter.MightContainRange(~uint64_t{0}, ~uint64_t{0}));
}

TYPED_TEST(RangeFilterConformanceTest, EmptyBuildIsTheEmptySet) {
  TypeParam filter;
  ASSERT_TRUE(BuildFilter(filter, {}, 16.0).ok());
  EXPECT_FALSE(filter.MightContain(0));
  EXPECT_FALSE(filter.MightContain(~uint64_t{0}));
  EXPECT_FALSE(filter.MightContainRange(0, ~uint64_t{0}));
  const std::vector<index::RangeQuery> probes = {{0, 100}, {5, 6}};
  EXPECT_DOUBLE_EQ(filter.MeasuredRangeFpr(probes), 0.0);

  // A never-built filter behaves the same way, not as "contains all".
  TypeParam unbuilt;
  EXPECT_FALSE(unbuilt.MightContain(42));
  EXPECT_FALSE(unbuilt.MightContainRange(0, ~uint64_t{0}));
}

TYPED_TEST(RangeFilterConformanceTest, ErasurePreservesEveryAnswer) {
  const std::vector<uint64_t> keys =
      rangefilter::GenAdversarialGapKeys(8'000, 61);
  TypeParam filter;
  ASSERT_TRUE(BuildFilter(filter, keys, 8.0).ok());
  TypeParam twin;
  ASSERT_TRUE(BuildFilter(twin, keys, 8.0).ok());
  const index::AnyRangeFilter erased(std::move(twin));
  EXPECT_FALSE(erased.empty());
  EXPECT_EQ(erased.SizeBytes(), filter.SizeBytes());

  Xorshift128Plus rng(62);
  for (int i = 0; i < 5'000; ++i) {
    const uint64_t lo = rng.NextBounded(keys.back() + 1024);
    const uint64_t hi = lo + rng.NextBounded(1u << 14);
    ASSERT_EQ(erased.MightContainRange(lo, hi),
              filter.MightContainRange(lo, hi))
        << "[" << lo << ", " << hi << ")";
    ASSERT_EQ(erased.MightContain(lo), filter.MightContain(lo)) << lo;
  }
}

TEST(AnyRangeFilterTest, EmptyHandleIsTheEmptySet) {
  index::AnyRangeFilter empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.MightContain(0));
  EXPECT_FALSE(empty.MightContainRange(0, ~uint64_t{0}));
  EXPECT_EQ(empty.SizeBytes(), 0u);
  const std::vector<index::RangeQuery> probes = {{0, 100}};
  EXPECT_DOUBLE_EQ(empty.MeasuredRangeFpr(probes), 0.0);
}

// The dataset generators hold the guarantees the suites lean on.
TEST(RangeFilterWorkloadTest, GeneratorsHoldTheirGuarantees) {
  const std::vector<uint64_t> keys = rangefilter::GenZipfKeys(10'000, 71);
  ASSERT_GE(keys.size(), 9'000u);  // near-exact size after dedupe+fill
  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  ASSERT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());

  const std::set<uint64_t> oracle(keys.begin(), keys.end());
  for (const index::RangeQuery& q : rangefilter::GenEmptyRanges(keys, 72)) {
    ASSERT_FALSE(OracleNonEmpty(oracle, q.lo, q.hi))
        << "[" << q.lo << ", " << q.hi << ") is not empty";
    ASSERT_LT(q.lo, q.hi);
  }
  for (const index::RangeQuery& q :
       rangefilter::GenWitnessRanges(keys, 73, 2'000)) {
    ASSERT_TRUE(OracleNonEmpty(oracle, q.lo, q.hi))
        << "[" << q.lo << ", " << q.hi << ") has no witness";
  }
}

}  // namespace
}  // namespace li
