// Conformance suite for the WritableRangeIndex contract: static concept
// gates, insert/erase/merge equivalence against a std::set oracle across
// all merge policies, a property test that Lookup after any interleaving
// of writes and merges matches a from-scratch rebuild, and the
// duplicate-key merge regression inherited from the old inline example (a
// delta key equal to a base key mid-run must survive as exactly one
// copy). The oracle stream is generic over the implementation, so the
// same suite is the source of truth for *every* writable index:
// dynamic::DeltaRangeIndex and the concurrent wrappers
// (ConcurrentWritableIndex, ShardedIndex) driven single-threaded — their
// multi-threaded behavior is covered by concurrent_stress_test.cc.
//
// Also hosts the Scan allocation regression: this translation unit
// replaces the global operator new/delete with counting versions, and
// asserts DeltaRangeIndex::Scan allocates exactly once (the returned
// vector), i.e. the rank prefix sums hoisted into the consolidation step
// keep the read path reservation-exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <set>
#include <span>
#include <vector>

#include "btree/dynamic_btree.h"
#include "btree/readonly_btree.h"
#include "common/random.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/delta_buffer.h"
#include "dynamic/delta_range_index.h"
#include "dynamic/merge_policy.h"
#include "index/range_index.h"
#include "index/writable_range_index.h"
#include "rmi/rmi.h"
#include "wal/wal.h"

// ---- Counting allocator hooks (for the Scan regression) ----
// External linkage is required for the replacements to take effect; the
// counter itself stays internal.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace li {
namespace {

using DeltaRmi = dynamic::DeltaRangeIndex<rmi::LinearRmi>;
using DeltaBtree = dynamic::DeltaRangeIndex<btree::ReadOnlyBTree>;
using DeltaBtreeMap = dynamic::DeltaRangeIndex<btree::BTreeMap>;
using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

// ---- Static acceptance gate ----
static_assert(index::WritableRangeIndex<DeltaRmi>);
static_assert(index::WritableRangeIndex<DeltaBtree>);
static_assert(index::WritableRangeIndex<DeltaBtreeMap>);
// A writable index is still a RangeIndex (read-only call sites keep
// working), and the wrapper ships a native batch path.
static_assert(index::RangeIndex<DeltaRmi>);
static_assert(index::HasNativeLookupBatch<DeltaRmi>);
// Read-only structures must NOT satisfy the writable contract.
static_assert(!index::WritableRangeIndex<rmi::LinearRmi>);
static_assert(!index::WritableRangeIndex<btree::ReadOnlyBTree>);
static_assert(!index::WritableRangeIndex<btree::BTreeMap>);
// The retrain-reuse hook: present on the RMI core, absent on the B-Tree.
static_assert(dynamic::HasRebuild<rmi::LinearRmi>);
static_assert(!dynamic::HasRebuild<btree::ReadOnlyBTree>);

DeltaRmi::Config RmiConfigFor(size_t n, dynamic::MergePolicy policy,
                              size_t active_cap = 256) {
  DeltaRmi::Config c;
  c.base.num_leaf_models = std::max<size_t>(32, n / 100);
  c.policy = policy;
  c.active_cap = active_cap;
  return c;
}

size_t OracleRank(const std::vector<uint64_t>& sorted, uint64_t key) {
  return static_cast<size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), key) - sorted.begin());
}

/// Drives idx and a std::set oracle through the same op stream and checks
/// full equivalence (liveness booleans per op; ranks, membership, scans
/// and size at checkpoints). Generic over the implementation: the same
/// stream is the source of truth for the single-threaded delta index and
/// the concurrent wrappers alike.
template <index::WritableRangeIndex Idx>
void RunOracleStream(Idx& idx, std::set<uint64_t>& oracle,
                     size_t num_ops, uint64_t seed, uint64_t key_space,
                     bool manual_merges) {
  Xorshift128Plus rng(seed);
  for (size_t i = 0; i < num_ops; ++i) {
    const uint64_t k = rng.NextBounded(key_space);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        ASSERT_EQ(idx.Insert(k), oracle.insert(k).second) << "op " << i;
        break;
      }
      case 2: {
        ASSERT_EQ(idx.Erase(k), oracle.erase(k) > 0) << "op " << i;
        break;
      }
      default:
        ASSERT_EQ(idx.Contains(k), oracle.count(k) > 0) << "op " << i;
    }
    if (manual_merges && i % 977 == 976) ASSERT_TRUE(idx.Merge().ok());
    if (i % 1500 == 1499) {
      ASSERT_EQ(idx.size(), oracle.size()) << "op " << i;
      const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
      for (int p = 0; p < 50; ++p) {
        const uint64_t q = rng.NextBounded(key_space + 100);
        ASSERT_EQ(idx.Lookup(q), OracleRank(ref, q)) << "op " << i;
      }
    }
  }
  // Final: the whole live set in order, and batch lookups agree.
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  ASSERT_EQ(idx.Scan(0, ref.size() + 10), ref);
  std::vector<uint64_t> qs;
  Xorshift128Plus qrng(seed ^ 7);
  for (int p = 0; p < 1000; ++p) qs.push_back(qrng.NextBounded(key_space));
  std::vector<size_t> out(qs.size());
  index::LookupBatch(idx, std::span<const uint64_t>(qs),
                     std::span<size_t>(out));
  for (size_t p = 0; p < qs.size(); ++p) {
    ASSERT_EQ(out[p], OracleRank(ref, qs[p]));
    ASSERT_EQ(idx.Lookup(qs[p]), OracleRank(ref, qs[p]));
  }
}

std::vector<uint64_t> SeedKeys(size_t n, uint64_t seed) {
  auto keys = data::GenLognormal(n, seed);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

TEST(WritableOracleTest, SizeThresholdPolicyMatchesSet) {
  const auto keys = SeedKeys(20'000, 11);
  dynamic::MergePolicy policy;  // defaults: size threshold
  policy.min_delta_entries = 512;
  policy.max_delta_entries = 1024;  // force frequent merges
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), policy, 64)).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 101, 2'000'000'000, false);
  EXPECT_GT(idx.Stats().merges, 0u);
}

TEST(WritableOracleTest, WriteRatioPolicyMatchesSet) {
  const auto keys = SeedKeys(20'000, 12);
  dynamic::MergePolicy policy;
  policy.trigger = dynamic::MergeTrigger::kWriteRatio;
  policy.min_delta_entries = 700;
  policy.write_ratio = 0.9;  // ~0.75 observed write fraction triggers
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), policy)).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 102, 2'000'000'000, false);
  EXPECT_GT(idx.Stats().merges, 0u);
}

TEST(WritableOracleTest, ManualPolicyWithExplicitMergesMatchesSet) {
  const auto keys = SeedKeys(20'000, 13);
  dynamic::MergePolicy policy;
  policy.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), policy)).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 103, 2'000'000'000, true);
  const auto stats = idx.Stats();
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_GT(stats.erases, 0u);
}

// The property test of the ISSUE: after ANY interleaving of inserts,
// erases and merges, Lookup must match a from-scratch rebuild over the
// final live key set.
TEST(WritablePropertyTest, InterleavedWritesMatchFromScratchRebuild) {
  for (const uint64_t seed : {21u, 22u, 23u, 24u}) {
    const auto keys = SeedKeys(8'000, seed);
    dynamic::MergePolicy policy;
    policy.min_delta_entries = 256;
    policy.max_delta_entries = 700 + seed * 97;  // vary merge points
    DeltaRmi idx;
    ASSERT_TRUE(
        idx.Build(keys, RmiConfigFor(keys.size(), policy, 32 + seed)).ok());
    std::set<uint64_t> oracle(keys.begin(), keys.end());
    Xorshift128Plus rng(seed * 7919);
    for (int i = 0; i < 6'000; ++i) {
      const uint64_t k = rng.NextBounded(1'000'000'000);
      if (rng.NextBounded(3) == 0) {
        idx.Erase(k);
        oracle.erase(k);
      } else {
        idx.Insert(k);
        oracle.insert(k);
      }
      if (rng.NextBounded(997) == 0) ASSERT_TRUE(idx.Merge().ok());
    }
    // From-scratch rebuild over the final live set.
    const std::vector<uint64_t> live(oracle.begin(), oracle.end());
    DeltaRmi rebuilt;
    ASSERT_TRUE(
        rebuilt.Build(live, RmiConfigFor(live.size(), policy)).ok());
    ASSERT_EQ(idx.size(), rebuilt.size());
    for (int p = 0; p < 3'000; ++p) {
      const uint64_t q = rng.NextBounded(1'000'000'100);
      ASSERT_EQ(idx.Lookup(q), rebuilt.Lookup(q)) << "seed " << seed;
    }
    ASSERT_EQ(idx.Scan(0, live.size() + 1), live);
  }
}

// Regression for the old examples/delta_inserts.cpp inline merge loop:
// when a delta key equals a base key mid-run, the merged base must hold
// exactly one copy (the old loop dropped the base copy and kept the
// delta's — correct result, but never verified; and with tombstones in
// the mix the invariant is easy to break). Every duplicate pattern:
// dup at front, mid-run, back, plus erase-then-reinsert.
TEST(WritableMergeTest, DuplicateBaseAndDeltaKeysMergeToOneCopy) {
  const std::vector<uint64_t> base = {10, 20, 30, 40, 50};
  dynamic::MergePolicy manual;
  manual.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(base, RmiConfigFor(base.size(), manual)).ok());

  EXPECT_FALSE(idx.Insert(10));  // dup of first base key
  EXPECT_FALSE(idx.Insert(30));  // dup mid-run
  EXPECT_FALSE(idx.Insert(50));  // dup of last base key
  EXPECT_TRUE(idx.Insert(25));   // genuinely new, between base keys
  EXPECT_EQ(idx.size(), 6u);

  ASSERT_TRUE(idx.Merge().ok());
  EXPECT_EQ(idx.size(), 6u);
  EXPECT_EQ(idx.Scan(0, 100),
            (std::vector<uint64_t>{10, 20, 25, 30, 40, 50}));
  // Ranks stay lower_bound-exact after the dedupe.
  EXPECT_EQ(idx.Lookup(30), 3u);
  EXPECT_EQ(idx.Lookup(31), 4u);
  EXPECT_EQ(idx.Lookup(9), 0u);
  EXPECT_EQ(idx.Lookup(51), 6u);

  // Erase a base key, re-insert it, merge: still one copy.
  EXPECT_TRUE(idx.Erase(20));
  EXPECT_FALSE(idx.Contains(20));
  EXPECT_TRUE(idx.Insert(20));
  ASSERT_TRUE(idx.Merge().ok());
  EXPECT_EQ(idx.Scan(0, 100),
            (std::vector<uint64_t>{10, 20, 25, 30, 40, 50}));
}

TEST(WritableMergeTest, TombstonesFoldAtMergeAndBaseShrinks) {
  const auto keys = SeedKeys(5'000, 31);
  dynamic::MergePolicy manual;
  manual.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), manual)).ok());
  for (size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(idx.Erase(keys[i]));
  }
  EXPECT_FALSE(idx.Erase(keys[0]));  // double erase: no longer live
  ASSERT_TRUE(idx.Merge().ok());
  EXPECT_EQ(idx.Stats().base_keys, keys.size() - (keys.size() + 1) / 2);
  EXPECT_EQ(idx.Stats().delta_entries, 0u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(idx.Contains(keys[i]), i % 2 == 1) << i;
  }
}

TEST(WritableIndexTest, EmptyBuildThenInsertsAndMerge) {
  dynamic::MergePolicy manual;
  manual.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build({}, RmiConfigFor(1, manual)).ok());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.Lookup(42), 0u);
  EXPECT_TRUE(idx.Insert(7));
  EXPECT_TRUE(idx.Insert(3));
  EXPECT_FALSE(idx.Insert(7));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.Lookup(5), 1u);
  ASSERT_TRUE(idx.Merge().ok());
  EXPECT_EQ(idx.Scan(0, 10), (std::vector<uint64_t>{3, 7}));
}

TEST(WritableIndexTest, NonRmiBasesServeTheSameContract) {
  const auto keys = SeedKeys(10'000, 41);
  dynamic::MergePolicy policy;
  policy.min_delta_entries = 256;
  policy.max_delta_entries = 512;

  DeltaBtree bt;
  DeltaBtree::Config bt_cfg;
  bt_cfg.base.keys_per_page = 64;
  bt_cfg.policy = policy;
  ASSERT_TRUE(bt.Build(keys, bt_cfg).ok());

  DeltaBtreeMap btm;
  DeltaBtreeMap::Config btm_cfg;
  btm_cfg.policy = policy;
  ASSERT_TRUE(btm.Build(keys, btm_cfg).ok());

  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(404);
  for (int i = 0; i < 3'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      const bool was = oracle.erase(k) > 0;
      EXPECT_EQ(bt.Erase(k), was);
      EXPECT_EQ(btm.Erase(k), was);
    } else {
      const bool fresh = oracle.insert(k).second;
      EXPECT_EQ(bt.Insert(k), fresh);
      EXPECT_EQ(btm.Insert(k), fresh);
    }
  }
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  EXPECT_EQ(bt.size(), ref.size());
  EXPECT_EQ(btm.size(), ref.size());
  for (int p = 0; p < 1'500; ++p) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    EXPECT_EQ(bt.Lookup(q), OracleRank(ref, q));
    EXPECT_EQ(btm.Lookup(q), OracleRank(ref, q));
  }
  EXPECT_GT(bt.Stats().merges, 0u);
}

TEST(WritableIndexTest, StatsTrackOpsAndMerges) {
  const auto keys = SeedKeys(2'000, 51);
  dynamic::MergePolicy manual;
  manual.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), manual)).ok());
  const uint64_t fresh1 = keys.back() + 1, fresh2 = keys.back() + 2;
  idx.Insert(fresh1);
  idx.Insert(fresh2);
  idx.Erase(keys[0]);
  idx.Contains(fresh1);   // delta hit
  idx.Contains(keys[1]);  // base hit
  idx.Lookup(12345);
  ASSERT_TRUE(idx.Merge().ok());
  const auto s = idx.Stats();
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.contains, 2u);
  EXPECT_EQ(s.delta_hits, 1u);
  EXPECT_EQ(s.merges, 1u);
  EXPECT_GT(s.last_merge_ns, 0.0);
  EXPECT_EQ(s.base_keys, keys.size() + 1);  // +2 inserts -1 erase
  EXPECT_DOUBLE_EQ(s.DeltaHitRate(), 0.5);  // 1 delta hit / 2 Contains
}

// ---- Concurrent wrappers through the same oracle suite ----
// Single-threaded here by design: writable *semantics* have one source of
// truth, this stream. The wrappers' thread-safety is stressed separately.

static_assert(index::WritableRangeIndex<ConcRmi>);
static_assert(index::WritableRangeIndex<ShardedRmi>);

TEST(WritableOracleTest, ConcurrentWrapperMatchesSet) {
  const auto keys = SeedKeys(20'000, 14);
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = std::max<size_t>(32, keys.size() / 100);
  cfg.policy.min_delta_entries = 512;
  cfg.policy.max_delta_entries = 1024;  // frequent background merges
  cfg.log_cap = 128;                    // frequent freeze folds
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 104, 2'000'000'000, false);
  idx.WaitForMerges();
  EXPECT_GT(idx.Stats().merges, 0u);
}

TEST(WritableOracleTest, ConcurrentWrapperManualMergesMatchSet) {
  const auto keys = SeedKeys(20'000, 15);
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = std::max<size_t>(32, keys.size() / 100);
  cfg.policy.trigger = dynamic::MergeTrigger::kManual;
  cfg.log_cap = 64;
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 105, 2'000'000'000, true);
  EXPECT_GT(idx.Stats().merges, 0u);
}

TEST(WritableOracleTest, ShardedWrapperMatchesSet) {
  const auto keys = SeedKeys(20'000, 16);
  ShardedRmi::Config cfg;
  cfg.inner.base.num_leaf_models = 64;
  cfg.inner.policy.min_delta_entries = 256;
  cfg.inner.policy.max_delta_entries = 512;
  cfg.inner.log_cap = 64;
  cfg.num_shards = 4;
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 106, 2'000'000'000, false);
  idx.WaitForMerges();
  EXPECT_GT(idx.Stats().merges, 0u);
  EXPECT_EQ(idx.ConcurrentStats().shards, 4u);
}

// A WAL-attached DeltaRangeIndex must pass the same oracle stream as the
// plain one — logging is write-path instrumentation, never a semantic
// change — and the log it leaves behind must reconstruct the exact final
// state from the pre-stream snapshot. Merges run throughout, so this
// also pins that consolidation does not disturb the LSN sequence.
TEST(WritableOracleTest, WalEnabledDeltaMatchesSetAndRecovers) {
  const auto keys = SeedKeys(20'000, 17);
  dynamic::MergePolicy policy;
  policy.min_delta_entries = 512;
  policy.max_delta_entries = 1024;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), policy, 64)).ok());

  const std::string base = ::testing::TempDir() + "li_conf_wal_base.snap";
  wal::DurabilityConfig dcfg;
  dcfg.path = ::testing::TempDir() + "li_conf_wal.log";
  dcfg.fsync_every_n = 64;  // group commit; stream correctness is sync-free
  ASSERT_TRUE(idx.WriteSnapshot(base).ok());
  ASSERT_TRUE(idx.EnableDurability(dcfg).ok());

  std::set<uint64_t> oracle(keys.begin(), keys.end());
  RunOracleStream(idx, oracle, 12'000, 107, 2'000'000'000, false);
  EXPECT_GT(idx.Stats().merges, 0u);
  ASSERT_TRUE(idx.wal_status().ok());
  ASSERT_TRUE(idx.SyncWal().ok());
  EXPECT_GT(idx.DurabilityStats().appends, 0u);

  // Recovery equivalence: snapshot + full replay == the live index.
  auto reopened = DeltaRmi::OpenSnapshot(base);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  DeltaRmi rec = reopened.take();
  ASSERT_TRUE(rec.RecoverFromWal(dcfg).ok());
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  EXPECT_EQ(rec.size(), ref.size());
  EXPECT_EQ(rec.Scan(0, ref.size() + 10), ref);
  std::remove(base.c_str());
  std::remove(dcfg.path.c_str());
}

// ---- Scan allocation regression ----
// DeltaRangeIndex::Scan used to reserve a fixed 1024-entry guess and grow
// from there, re-deriving the result size it could have read off the rank
// prefix sums maintained at consolidation time. It now reserves the exact
// result size up front; this regression pins the "exactly one allocation,
// the returned vector" property via the counting operator new above.

TEST(ScanAllocationRegressionTest, ScanAllocatesOnlyTheResultBuffer) {
  const auto keys = SeedKeys(10'000, 81);
  dynamic::MergePolicy manual;
  manual.trigger = dynamic::MergeTrigger::kManual;
  DeltaRmi idx;
  ASSERT_TRUE(idx.Build(keys, RmiConfigFor(keys.size(), manual, 64)).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  // Populate both delta runs (active + consolidated) with inserts and
  // tombstones; no merge, so Scan exercises the full three-way path.
  Xorshift128Plus rng(811);
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(4) == 0) {
      idx.Erase(k);
      oracle.erase(k);
    } else {
      idx.Insert(k);
      oracle.insert(k);
    }
  }
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_GT(idx.delta_entries(), 0u);
  const struct {
    uint64_t from;
    size_t limit;
  } cases[] = {
      {0, 100},                        // window inside the live set
      {ref[ref.size() / 2], 5'000},    // mid-range, large window
      {ref[ref.size() / 2], 1'500},    // window larger than the old 1024 guess
      {0, ref.size() + 1'000},         // limit beyond the live count
      {ref.back() + 1, 100},           // empty result
  };
  for (const auto& c : cases) {
    const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    const std::vector<uint64_t> got = idx.Scan(c.from, c.limit);
    const uint64_t allocs =
        g_heap_allocs.load(std::memory_order_relaxed) - before;
    EXPECT_LE(allocs, got.empty() ? 0u : 1u)
        << "Scan(from=" << c.from << ", limit=" << c.limit
        << ") must allocate the result buffer at most once";
    const auto it = std::lower_bound(ref.begin(), ref.end(), c.from);
    const std::vector<uint64_t> want(
        it, it + std::min<ptrdiff_t>(static_cast<ptrdiff_t>(c.limit),
                                     ref.end() - it));
    EXPECT_EQ(got, want);
  }
}

// ---- Merge-policy decision function ----

TEST(MergePolicyTest, SizeThresholdUsesTighterOfAbsoluteAndFraction) {
  dynamic::MergePolicy p;  // defaults: threshold trigger
  p.min_delta_entries = 100;
  p.max_delta_entries = 1000;
  p.max_delta_fraction = 0.10;
  // Base 5000: fraction cap = 500 (tighter than 1000).
  EXPECT_FALSE(dynamic::ShouldMerge(p, 499, 5000, 0, 0));
  EXPECT_TRUE(dynamic::ShouldMerge(p, 500, 5000, 0, 0));
  // Base 100k: absolute cap 1000 is tighter.
  EXPECT_FALSE(dynamic::ShouldMerge(p, 999, 100'000, 0, 0));
  EXPECT_TRUE(dynamic::ShouldMerge(p, 1000, 100'000, 0, 0));
  // Tiny base: the min floor prevents merge-per-write.
  EXPECT_FALSE(dynamic::ShouldMerge(p, 99, 10, 0, 0));
  EXPECT_TRUE(dynamic::ShouldMerge(p, 100, 10, 0, 0));
}

TEST(MergePolicyTest, WriteRatioFiresInReadMostlyLulls) {
  dynamic::MergePolicy p;
  p.trigger = dynamic::MergeTrigger::kWriteRatio;
  p.min_delta_entries = 100;
  p.write_ratio = 0.5;
  // Not armed below the min delta size.
  EXPECT_FALSE(dynamic::ShouldMerge(p, 99, 1000, 10, 1000));
  // Armed, but the stream is write-heavy: hold off.
  EXPECT_FALSE(dynamic::ShouldMerge(p, 200, 1000, 900, 100));
  // Armed and read-mostly: merge.
  EXPECT_TRUE(dynamic::ShouldMerge(p, 200, 1000, 100, 900));
  EXPECT_FALSE(dynamic::ShouldMerge(p, 200, 1000, 0, 0));  // no ops yet
}

TEST(MergePolicyTest, ManualNeverAutoMerges) {
  dynamic::MergePolicy p;
  p.trigger = dynamic::MergeTrigger::kManual;
  EXPECT_FALSE(dynamic::ShouldMerge(p, 1 << 30, 10, 1 << 20, 0));
}

// ---- The delta buffer's rank bookkeeping in isolation ----

TEST(DeltaBufferTest, RankContributionsAndShadowing) {
  dynamic::DeltaBuffer<uint64_t> buf(4);  // tiny active run: consolidate often
  // Keys 10,20,30 "in base"; 15,25 new.
  buf.Upsert(15, false, false);  // +1
  buf.Upsert(25, false, false);  // +1
  buf.Upsert(20, true, true);    // -1 (erase base key)
  buf.Upsert(10, false, true);   // 0 (re-insert of base key)
  EXPECT_EQ(buf.LiveAdjustTotal(), 1);
  EXPECT_EQ(buf.RankAdjustBelow(10), 0);
  EXPECT_EQ(buf.RankAdjustBelow(16), 1);   // the +1 at 15
  EXPECT_EQ(buf.RankAdjustBelow(21), 0);   // +1 at 15, -1 at 20
  EXPECT_EQ(buf.RankAdjustBelow(100), 1);
  // Newest write wins, and shadowing does not double-count: un-erase 20.
  buf.Upsert(20, false, true);  // now 0; consolidated -1 must be cancelled
  EXPECT_EQ(buf.RankAdjustBelow(21), 1);
  EXPECT_EQ(buf.LiveAdjustTotal(), 2);
  ASSERT_TRUE(buf.Find(20).has_value());
  EXPECT_FALSE(buf.Find(20)->tombstone);
  // Visit sees the newest state per key, in order.
  std::vector<uint64_t> visited;
  buf.VisitAll([&](const dynamic::DeltaEntry<uint64_t>& e) {
    visited.push_back(e.key);
    EXPECT_FALSE(e.tombstone);
    return true;
  });
  EXPECT_EQ(visited, (std::vector<uint64_t>{10, 15, 20, 25}));
}

}  // namespace
}  // namespace li
