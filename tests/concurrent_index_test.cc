// Unit tests for the concurrent subsystem's building blocks, exercised
// single-threaded (the multi-threaded stress lives in
// concurrent_stress_test.cc): epoch-based reclamation mechanics, the
// ConcurrentWritableIndex state machine (log append, freeze fold,
// background merge rotation/rebase), and ShardedIndex routing/balance.
// The full std::set-oracle equivalence for both wrappers runs in
// writable_index_conformance_test.cc, shared with DeltaRangeIndex.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "btree/readonly_btree.h"
#include "common/random.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/epoch.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/delta_range_index.h"
#include "dynamic/merge_policy.h"
#include "index/concurrent_writable_index.h"
#include "index/writable_range_index.h"
#include "rmi/rmi.h"

namespace li {
namespace {

using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ConcBtree = concurrent::ConcurrentWritableIndex<btree::ReadOnlyBTree>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

// ---- Static acceptance gate ----
static_assert(index::ConcurrentWritableRangeIndex<ConcRmi>);
static_assert(index::ConcurrentWritableRangeIndex<ConcBtree>);
static_assert(index::ConcurrentWritableRangeIndex<ShardedRmi>);
// The concurrent contract subsumes the writable and range contracts, so
// every read-only call site and the writable conformance suite apply.
static_assert(index::WritableRangeIndex<ConcRmi>);
static_assert(index::RangeIndex<ConcRmi>);
static_assert(index::WritableRangeIndex<ShardedRmi>);
// The single-threaded delta index must NOT satisfy the concurrent
// contract (it has no merge-control surface).
static_assert(
    !index::ConcurrentWritableRangeIndex<
        dynamic::DeltaRangeIndex<rmi::LinearRmi>>);

// ---- Epoch manager ----

struct Tracked {
  explicit Tracked(std::atomic<int>& live) : live_(live) { ++live_; }
  ~Tracked() { --live_; }
  std::atomic<int>& live_;
};

TEST(EpochManagerTest, RetiredObjectsOutliveActiveGuards) {
  concurrent::EpochManager mgr;
  std::atomic<int> live{0};
  auto* obj = new Tracked(live);
  {
    concurrent::EpochManager::Guard g(mgr);
    mgr.Retire(obj);
    mgr.Reclaim();
    // Our own pin must keep it alive.
    EXPECT_EQ(live.load(), 1);
    EXPECT_EQ(mgr.pending(), 1u);
  }
  mgr.Reclaim();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(mgr.pending(), 0u);
  EXPECT_EQ(mgr.retired_count(), 1u);
  EXPECT_EQ(mgr.reclaimed_count(), 1u);
}

TEST(EpochManagerTest, NestedGuardsPinUntilOutermostExit) {
  concurrent::EpochManager mgr;
  std::atomic<int> live{0};
  {
    concurrent::EpochManager::Guard outer(mgr);
    {
      concurrent::EpochManager::Guard inner(mgr);
      mgr.Retire(new Tracked(live));
    }
    mgr.Reclaim();
    EXPECT_EQ(live.load(), 1) << "inner exit must not unpin the thread";
  }
  mgr.Reclaim();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochManagerTest, GuardFromAnotherThreadBlocksReclaim) {
  concurrent::EpochManager mgr;
  std::atomic<int> live{0};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    concurrent::EpochManager::Guard g(mgr);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  mgr.Retire(new Tracked(live));
  mgr.Reclaim();
  EXPECT_EQ(live.load(), 1) << "peer pin must block reclamation";
  release.store(true);
  reader.join();
  mgr.Reclaim();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochManagerTest, ThreadIdsRecycleAfterThreadExit) {
  size_t id1 = 0, id2 = 0;
  std::thread([&] { id1 = concurrent::ThisThreadIndex(); }).join();
  std::thread([&] { id2 = concurrent::ThisThreadIndex(); }).join();
  EXPECT_EQ(id1, id2) << "a dead thread's slot id must be leased again";
  EXPECT_LT(id1, concurrent::EpochManager::kMaxThreads);
}

TEST(EpochManagerTest, SlotTableSurvivesThreadChurn) {
  // More short-lived threads than the slot table holds: with leased ids
  // none may land in the fallback path, and reclamation keeps working.
  concurrent::EpochManager mgr;
  for (int i = 0; i < 300; ++i) {
    std::thread([&] { concurrent::EpochManager::Guard g(mgr); }).join();
  }
  std::atomic<int> live{0};
  mgr.Retire(new Tracked(live));
  EXPECT_EQ(mgr.Reclaim(), 1u) << "churned-out threads must not block reclaim";
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(mgr.fallback_pins(), 0u);
}

TEST(EpochManagerTest, DestructorFreesStragglers) {
  std::atomic<int> live{0};
  {
    concurrent::EpochManager mgr;
    mgr.Retire(new Tracked(live));
    // no Reclaim: destructor must free it
  }
  EXPECT_EQ(live.load(), 0);
}

// ---- ConcurrentWritableIndex, single-threaded semantics ----

std::vector<uint64_t> SeedKeys(size_t n, uint64_t seed) {
  auto keys = data::GenLognormal(n, seed);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

ConcRmi::Config ManualConfig(size_t n, size_t log_cap = 64) {
  ConcRmi::Config c;
  c.base.num_leaf_models = std::max<size_t>(32, n / 100);
  c.policy.trigger = dynamic::MergeTrigger::kManual;
  c.log_cap = log_cap;
  return c;
}

TEST(ConcurrentIndexTest, FreezeFoldKeepsRanksExact) {
  const auto keys = SeedKeys(5'000, 7);
  ConcRmi idx;
  // Tiny log: every 8 writes force a freeze fold.
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size(), 8)).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(99);
  for (int i = 0; i < 2'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      EXPECT_EQ(idx.Erase(k), oracle.erase(k) > 0) << "op " << i;
    } else {
      EXPECT_EQ(idx.Insert(k), oracle.insert(k).second) << "op " << i;
    }
  }
  EXPECT_GT(idx.ConcurrentStats().freezes, 0u);
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  ASSERT_EQ(idx.Scan(0, ref.size() + 1), ref);
  for (int p = 0; p < 1'000; ++p) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    const size_t want = static_cast<size_t>(
        std::lower_bound(ref.begin(), ref.end(), q) - ref.begin());
    ASSERT_EQ(idx.Lookup(q), want);
  }
}

TEST(ConcurrentIndexTest, SynchronousMergeFoldsDeltaIntoBase) {
  const auto keys = SeedKeys(4'000, 11);
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size())).ok());
  const uint64_t fresh = keys.back() + 17;
  EXPECT_TRUE(idx.Insert(fresh));
  EXPECT_TRUE(idx.Erase(keys[0]));
  ASSERT_TRUE(idx.Merge().ok());
  const auto stats = idx.Stats();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.delta_entries, 0u) << "merge must clear the delta";
  EXPECT_EQ(stats.base_keys, keys.size());  // +1 insert, -1 erase
  EXPECT_TRUE(idx.Contains(fresh));
  EXPECT_FALSE(idx.Contains(keys[0]));
  // Idempotent on an empty delta.
  ASSERT_TRUE(idx.Merge().ok());
}

TEST(ConcurrentIndexTest, WritesDuringBackgroundMergeSurviveRebase) {
  // Deterministic re-creation of the merge race: rotate + build happen,
  // then writes land before publish. Single-threaded we can't pause the
  // worker mid-cycle, so instead interleave writes with many synchronous
  // merges over a key the merge keeps toggling.
  const auto keys = SeedKeys(3'000, 13);
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size())).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(131);
  for (int round = 0; round < 20; ++round) {
    // erase a base key, merge, re-insert it, merge again: the re-insert
    // is rebased against a base that no longer holds the key.
    const uint64_t victim =
        *std::next(oracle.begin(),
                   static_cast<long>(rng.NextBounded(oracle.size())));
    EXPECT_TRUE(idx.Erase(victim));
    oracle.erase(victim);
    ASSERT_TRUE(idx.Merge().ok());
    EXPECT_FALSE(idx.Contains(victim));
    EXPECT_TRUE(idx.Insert(victim));
    oracle.insert(victim);
    ASSERT_TRUE(idx.Merge().ok());
    EXPECT_TRUE(idx.Contains(victim));
  }
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  ASSERT_EQ(idx.Scan(0, ref.size() + 1), ref);
}

TEST(ConcurrentIndexTest, PolicyTriggersBackgroundMerges) {
  const auto keys = SeedKeys(8'000, 17);
  ConcRmi::Config cfg;
  cfg.base.num_leaf_models = 64;
  cfg.policy.min_delta_entries = 128;
  cfg.policy.max_delta_entries = 256;
  cfg.log_cap = 64;
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, cfg).ok());
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  Xorshift128Plus rng(171);
  for (int i = 0; i < 4'000; ++i) {
    const uint64_t k = rng.NextBounded(1'000'000'000);
    EXPECT_EQ(idx.Insert(k), oracle.insert(k).second);
  }
  idx.WaitForMerges();
  EXPECT_GT(idx.Stats().merges, 0u) << "size policy should have fired";
  EXPECT_TRUE(idx.last_merge_status().ok());
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  EXPECT_EQ(idx.size(), ref.size());
  for (int p = 0; p < 1'000; ++p) {
    const uint64_t q = rng.NextBounded(1'000'000'100);
    const size_t want = static_cast<size_t>(
        std::lower_bound(ref.begin(), ref.end(), q) - ref.begin());
    ASSERT_EQ(idx.Lookup(q), want);
  }
}

// Regression: Scan used to cap delta-overlay collection at a size
// heuristic (limit + log entries), so a dense run of frozen base-key
// tombstones past the cap stopped cancelling and erased keys leaked into
// the result.
TEST(ConcurrentIndexTest, ScanAppliesDenseTombstoneRunsBeyondLimit) {
  std::vector<uint64_t> keys(4'000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = 10 * (i + 1);
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size(), 16)).ok());
  // Erase 600 consecutive base keys; the tiny log forces them through
  // freeze folds into the frozen delta as in_base tombstones.
  for (size_t i = 100; i < 700; ++i) EXPECT_TRUE(idx.Erase(keys[i]));
  // Window starting before the tombstone run, much smaller than the run.
  const auto got = idx.Scan(keys[95], 10);
  std::vector<uint64_t> want;
  for (size_t i = 95; i < 100; ++i) want.push_back(keys[i]);
  for (size_t i = 700; i < 705; ++i) want.push_back(keys[i]);
  EXPECT_EQ(got, want) << "erased keys must not leak past the overlay";
  // A window entirely inside the tombstone run.
  EXPECT_EQ(idx.Scan(keys[200], 3),
            (std::vector<uint64_t>{keys[700], keys[701], keys[702]}));
  EXPECT_EQ(idx.size(), keys.size() - 600);
}

TEST(ConcurrentIndexTest, BatchLookupMatchesSingleKeyPath) {
  const auto keys = SeedKeys(6'000, 19);
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size())).ok());
  Xorshift128Plus rng(191);
  for (int i = 0; i < 500; ++i) idx.Insert(rng.NextBounded(1u << 30));
  std::vector<uint64_t> qs;
  for (int i = 0; i < 1'000; ++i) qs.push_back(rng.NextBounded(1u << 30));
  std::vector<size_t> out(qs.size());
  index::LookupBatch(idx, std::span<const uint64_t>(qs),
                     std::span<size_t>(out));
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], idx.Lookup(qs[i]));
  }
}

TEST(ConcurrentIndexTest, EmptyBuildThenInserts) {
  ConcRmi idx;
  ASSERT_TRUE(idx.Build({}, ManualConfig(1)).ok());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.Lookup(42), 0u);
  EXPECT_TRUE(idx.Insert(7));
  EXPECT_TRUE(idx.Insert(3));
  EXPECT_FALSE(idx.Insert(7));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx.Lookup(5), 1u);
  ASSERT_TRUE(idx.Merge().ok());
  EXPECT_EQ(idx.Scan(0, 10), (std::vector<uint64_t>{3, 7}));
}

// Library-wide convention (PR 2 pinned it for the hash maps): a failed
// or never-run Build leaves the index safe — reads answer empty, writes
// return false, Merge fails cleanly, nothing crashes or hangs.
TEST(ConcurrentIndexTest, FailedBuildLeavesSafeNeverBuiltState) {
  const std::vector<uint64_t> keys = {1, 2, 3};
  ConcRmi idx;
  ConcRmi::Config bad;
  bad.base.num_leaf_models = 0;  // RMI rejects a zero-leaf config
  EXPECT_FALSE(idx.Build(keys, bad).ok());
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.Lookup(2), 0u);
  EXPECT_FALSE(idx.Insert(5));
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_FALSE(idx.Contains(5));
  EXPECT_TRUE(idx.Scan(0, 10).empty());
  EXPECT_FALSE(idx.Merge().ok());
  idx.WaitForMerges();  // must not hang
  // A subsequent good Build recovers the handle completely.
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size())).ok());
  EXPECT_TRUE(idx.Insert(5));
  EXPECT_EQ(idx.size(), 4u);
}

TEST(ConcurrentIndexTest, TypeErasureRoundTrip) {
  const auto keys = SeedKeys(2'000, 23);
  ConcRmi idx;
  ASSERT_TRUE(idx.Build(keys, ManualConfig(keys.size())).ok());
  index::AnyConcurrentWritableIndex any(std::move(idx));
  EXPECT_FALSE(any.empty());
  const uint64_t fresh = keys.back() + 5;
  EXPECT_TRUE(any.Insert(fresh));
  EXPECT_TRUE(any.Contains(fresh));
  any.RequestMerge();
  any.WaitForMerges();
  EXPECT_EQ(any.Stats().merges, 1u);
  EXPECT_EQ(any.ConcurrentStats().shards, 1u);
  EXPECT_EQ(any.size(), keys.size() + 1);
}

// ---- ShardedIndex ----

ShardedRmi::Config ShardedConfig(size_t n, size_t shards) {
  ShardedRmi::Config c;
  c.inner = ManualConfig(std::max<size_t>(n / std::max<size_t>(shards, 1), 1));
  c.num_shards = shards;
  return c;
}

TEST(ShardedIndexTest, BoundariesBalanceSkewedKeys) {
  const auto keys = SeedKeys(40'000, 29);  // lognormal: heavily skewed
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, ShardedConfig(keys.size(), 8)).ok());
  EXPECT_EQ(idx.num_shards(), 8u);
  const std::vector<size_t> sizes = idx.ShardSizes();
  const size_t expect = keys.size() / 8;
  for (const size_t s : sizes) {
    EXPECT_GT(s, expect / 2) << "CDF split should balance under skew";
    EXPECT_LT(s, expect * 2);
  }
  EXPECT_EQ(idx.size(), keys.size());
}

TEST(ShardedIndexTest, RankAndScanSpanShards) {
  const auto keys = SeedKeys(20'000, 31);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, ShardedConfig(keys.size(), 4)).ok());
  Xorshift128Plus rng(311);
  std::set<uint64_t> oracle(keys.begin(), keys.end());
  for (int i = 0; i < 3'000; ++i) {
    const uint64_t k = rng.NextBounded(2'000'000'000);
    if (rng.NextBounded(3) == 0) {
      EXPECT_EQ(idx.Erase(k), oracle.erase(k) > 0);
    } else {
      EXPECT_EQ(idx.Insert(k), oracle.insert(k).second);
    }
  }
  ASSERT_TRUE(idx.Merge().ok());
  const std::vector<uint64_t> ref(oracle.begin(), oracle.end());
  ASSERT_EQ(idx.size(), ref.size());
  // Scans crossing shard boundaries stitch seamlessly.
  for (int p = 0; p < 50; ++p) {
    const uint64_t from = rng.NextBounded(2'000'000'000);
    const auto got = idx.Scan(from, 200);
    const auto it = std::lower_bound(ref.begin(), ref.end(), from);
    std::vector<uint64_t> want(
        it, it + std::min<ptrdiff_t>(200, ref.end() - it));
    ASSERT_EQ(got, want) << "from " << from;
  }
  for (int p = 0; p < 2'000; ++p) {
    const uint64_t q = rng.NextBounded(2'000'000'100);
    const size_t want = static_cast<size_t>(
        std::lower_bound(ref.begin(), ref.end(), q) - ref.begin());
    ASSERT_EQ(idx.Lookup(q), want);
  }
  std::vector<uint64_t> qs;
  for (int p = 0; p < 500; ++p) qs.push_back(rng.NextBounded(1u << 30));
  std::vector<size_t> out(qs.size());
  idx.LookupBatch(std::span<const uint64_t>(qs), std::span<size_t>(out));
  for (size_t i = 0; i < qs.size(); ++i) {
    ASSERT_EQ(out[i], idx.Lookup(qs[i]));
  }
}

TEST(ShardedIndexTest, StatsAggregateAcrossShards) {
  const auto keys = SeedKeys(8'000, 37);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, ShardedConfig(keys.size(), 4)).ok());
  Xorshift128Plus rng(371);
  for (int i = 0; i < 1'000; ++i) idx.Insert(rng.NextBounded(1u << 30));
  ASSERT_TRUE(idx.Merge().ok());
  const auto cs = idx.ConcurrentStats();
  EXPECT_EQ(cs.shards, 4u);
  EXPECT_EQ(cs.inserts, 1'000u);
  EXPECT_GT(cs.merges, 0u);
  EXPECT_GT(cs.states_published, 0u);
  // Type erasure accepts the sharded wrapper too.
  index::AnyConcurrentWritableIndex any(std::move(idx));
  EXPECT_EQ(any.ConcurrentStats().shards, 4u);
}

TEST(ShardedIndexTest, SingleShardDegeneratesGracefully) {
  const auto keys = SeedKeys(2'000, 41);
  ShardedRmi idx;
  ASSERT_TRUE(idx.Build(keys, ShardedConfig(keys.size(), 1)).ok());
  EXPECT_EQ(idx.num_shards(), 1u);
  EXPECT_EQ(idx.size(), keys.size());
  EXPECT_TRUE(idx.Contains(keys[0]));
}

}  // namespace
}  // namespace li
