#include "classifier/gru.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"

namespace li::classifier {

namespace {

inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// y += W (HxD row-major) * x (D)
inline void MatVecAcc(const double* w, const double* x, int rows, int cols,
                      double* y) {
  for (int r = 0; r < rows; ++r) {
    double acc = 0.0;
    const double* row = w + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] += acc;
  }
}

/// y += W^T (W is RxC) * d (R)  — i.e. y_c += sum_r W[r][c] * d[r]
inline void MatTVecAcc(const double* w, const double* d, int rows, int cols,
                       double* y) {
  for (int r = 0; r < rows; ++r) {
    const double dr = d[r];
    if (dr == 0.0) continue;
    const double* row = w + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) y[c] += row[c] * dr;
  }
}

/// G += d (R) outer x (C)
inline void OuterAcc(const double* d, const double* x, int rows, int cols,
                     double* g) {
  for (int r = 0; r < rows; ++r) {
    const double dr = d[r];
    if (dr == 0.0) continue;
    double* row = g + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) row[c] += dr * x[c];
  }
}

/// Adam state for one tensor.
struct AdamTensor {
  std::vector<double> m, v;
  void Init(size_t n) {
    m.assign(n, 0.0);
    v.assign(n, 0.0);
  }
  void Step(std::vector<double>* p, const std::vector<double>& g, double lr,
            double bias1, double bias2) {
    constexpr double kB1 = 0.9, kB2 = 0.999, kEps = 1e-8;
    for (size_t i = 0; i < p->size(); ++i) {
      m[i] = kB1 * m[i] + (1.0 - kB1) * g[i];
      v[i] = kB2 * v[i] + (1.0 - kB2) * g[i] * g[i];
      const double mhat = m[i] / bias1;
      const double vhat = v[i] / bias2;
      (*p)[i] -= lr * mhat / (std::sqrt(vhat) + kEps);
    }
  }
};

}  // namespace

struct GruClassifier::Gradients {
  std::vector<double> embed, wz, wr, wh, uz, ur, uh, bz, br, bh, out_w;
  double out_b = 0.0;

  void InitLike(const GruClassifier& c, int e, int h) {
    (void)c;
    embed.assign(static_cast<size_t>(kVocab) * e, 0.0);
    wz.assign(static_cast<size_t>(h) * e, 0.0);
    wr = wz;
    wh = wz;
    uz.assign(static_cast<size_t>(h) * h, 0.0);
    ur = uz;
    uh = uz;
    bz.assign(h, 0.0);
    br = bz;
    bh = bz;
    out_w.assign(h, 0.0);
    out_b = 0.0;
  }
  void Zero() {
    auto z = [](std::vector<double>& v) { std::fill(v.begin(), v.end(), 0.0); };
    z(embed); z(wz); z(wr); z(wh); z(uz); z(ur); z(uh);
    z(bz); z(br); z(bh); z(out_w);
    out_b = 0.0;
  }
};

double GruClassifier::Forward(std::string_view s,
                              std::vector<double>* trace) const {
  const int len = std::min<int>(static_cast<int>(s.size()), config_.max_len);
  // trace layout per timestep: [h_prev(H), z(H), r(H), hc(H)]
  if (trace != nullptr) {
    trace->assign(static_cast<size_t>(len) * 4 * h_, 0.0);
  }
  std::vector<double> hbuf(h_, 0.0);
  double* h = hbuf.data();
  std::vector<double> z(h_), r(h_), hc(h_), rh(h_);
  for (int t = 0; t < len; ++t) {
    const int c = static_cast<unsigned char>(s[t]) & 0x7F;
    const double* x = &embed_[static_cast<size_t>(c) * e_];
    if (trace != nullptr) {
      std::copy(h, h + h_, trace->data() + (static_cast<size_t>(t) * 4) * h_);
    }
    // z and r gates.
    std::copy(bz_.begin(), bz_.end(), z.begin());
    MatVecAcc(wz_.data(), x, h_, e_, z.data());
    MatVecAcc(uz_.data(), h, h_, h_, z.data());
    std::copy(br_.begin(), br_.end(), r.begin());
    MatVecAcc(wr_.data(), x, h_, e_, r.data());
    MatVecAcc(ur_.data(), h, h_, h_, r.data());
    for (int i = 0; i < h_; ++i) {
      z[i] = Sigmoid(z[i]);
      r[i] = Sigmoid(r[i]);
      rh[i] = r[i] * h[i];
    }
    // Candidate state.
    std::copy(bh_.begin(), bh_.end(), hc.begin());
    MatVecAcc(wh_.data(), x, h_, e_, hc.data());
    MatVecAcc(uh_.data(), rh.data(), h_, h_, hc.data());
    for (int i = 0; i < h_; ++i) hc[i] = std::tanh(hc[i]);
    // Blend.
    for (int i = 0; i < h_; ++i) h[i] = (1.0 - z[i]) * h[i] + z[i] * hc[i];
    if (trace != nullptr) {
      double* row = trace->data() + (static_cast<size_t>(t) * 4) * h_;
      std::copy(z.begin(), z.end(), row + h_);
      std::copy(r.begin(), r.end(), row + 2 * h_);
      std::copy(hc.begin(), hc.end(), row + 3 * h_);
    }
  }
  double logit = out_b_;
  for (int i = 0; i < h_; ++i) logit += out_w_[i] * h[i];
  if (trace != nullptr) {
    // Stash the final hidden state at the end of the trace.
    trace->insert(trace->end(), h, h + h_);
  }
  return logit;
}

void GruClassifier::Backward(std::string_view s,
                             const std::vector<double>& trace, double d_logit,
                             Gradients* g) const {
  const int len = std::min<int>(static_cast<int>(s.size()), config_.max_len);
  const double* h_final = trace.data() + static_cast<size_t>(len) * 4 * h_;
  for (int i = 0; i < h_; ++i) g->out_w[i] += d_logit * h_final[i];
  g->out_b += d_logit;

  std::vector<double> dh(h_);
  for (int i = 0; i < h_; ++i) dh[i] = d_logit * out_w_[i];

  std::vector<double> dz(h_), dr(h_), dhc(h_), drh(h_), dh_prev(h_), rh(h_),
      dx(e_);
  for (int t = len - 1; t >= 0; --t) {
    const double* row = trace.data() + (static_cast<size_t>(t) * 4) * h_;
    const double* h_prev = row;
    const double* z = row + h_;
    const double* r = row + 2 * h_;
    const double* hc = row + 3 * h_;
    const int c = static_cast<unsigned char>(s[t]) & 0x7F;
    const double* x = &embed_[static_cast<size_t>(c) * e_];

    std::fill(dh_prev.begin(), dh_prev.end(), 0.0);
    std::fill(dx.begin(), dx.end(), 0.0);
    for (int i = 0; i < h_; ++i) {
      rh[i] = r[i] * h_prev[i];
      dz[i] = dh[i] * (hc[i] - h_prev[i]) * z[i] * (1.0 - z[i]);
      dhc[i] = dh[i] * z[i] * (1.0 - hc[i] * hc[i]);  // through tanh
      dh_prev[i] += dh[i] * (1.0 - z[i]);
    }
    // Candidate-state path.
    OuterAcc(dhc.data(), x, h_, e_, g->wh.data());
    OuterAcc(dhc.data(), rh.data(), h_, h_, g->uh.data());
    for (int i = 0; i < h_; ++i) g->bh[i] += dhc[i];
    std::fill(drh.begin(), drh.end(), 0.0);
    MatTVecAcc(uh_.data(), dhc.data(), h_, h_, drh.data());
    MatTVecAcc(wh_.data(), dhc.data(), h_, e_, dx.data());
    for (int i = 0; i < h_; ++i) {
      dr[i] = drh[i] * h_prev[i] * r[i] * (1.0 - r[i]);
      dh_prev[i] += drh[i] * r[i];
    }
    // Gate paths.
    OuterAcc(dz.data(), x, h_, e_, g->wz.data());
    OuterAcc(dz.data(), h_prev, h_, h_, g->uz.data());
    for (int i = 0; i < h_; ++i) g->bz[i] += dz[i];
    MatTVecAcc(uz_.data(), dz.data(), h_, h_, dh_prev.data());
    MatTVecAcc(wz_.data(), dz.data(), h_, e_, dx.data());

    OuterAcc(dr.data(), x, h_, e_, g->wr.data());
    OuterAcc(dr.data(), h_prev, h_, h_, g->ur.data());
    for (int i = 0; i < h_; ++i) g->br[i] += dr[i];
    MatTVecAcc(ur_.data(), dr.data(), h_, h_, dh_prev.data());
    MatTVecAcc(wr_.data(), dr.data(), h_, e_, dx.data());

    // Embedding gradient.
    double* ge = &g->embed[static_cast<size_t>(c) * e_];
    for (int i = 0; i < e_; ++i) ge[i] += dx[i];

    dh = dh_prev;
  }
}

Status GruClassifier::Train(std::span<const std::string> positives,
                            std::span<const std::string> negatives,
                            const GruConfig& config) {
  if (config.embed_dim < 1 || config.hidden_dim < 1 || config.max_len < 1) {
    return Status::InvalidArgument("GruClassifier: bad config");
  }
  if (positives.empty() || negatives.empty()) {
    return Status::InvalidArgument("GruClassifier: need both classes");
  }
  config_ = config;
  e_ = config.embed_dim;
  h_ = config.hidden_dim;

  Xorshift128Plus rng(config.seed);
  auto init = [&rng](std::vector<double>& v, size_t n, double scale) {
    v.assign(n, 0.0);
    for (auto& x : v) x = rng.NextGaussian() * scale;
  };
  init(embed_, static_cast<size_t>(kVocab) * e_, 0.1);
  const double wscale = 1.0 / std::sqrt(static_cast<double>(e_));
  const double uscale = 1.0 / std::sqrt(static_cast<double>(h_));
  init(wz_, static_cast<size_t>(h_) * e_, wscale);
  init(wr_, static_cast<size_t>(h_) * e_, wscale);
  init(wh_, static_cast<size_t>(h_) * e_, wscale);
  init(uz_, static_cast<size_t>(h_) * h_, uscale);
  init(ur_, static_cast<size_t>(h_) * h_, uscale);
  init(uh_, static_cast<size_t>(h_) * h_, uscale);
  bz_.assign(h_, 0.0);
  br_.assign(h_, 0.0);
  bh_.assign(h_, 0.0);
  init(out_w_, h_, uscale);
  out_b_ = 0.0;

  // Balanced training set, capped per class.
  const size_t per_class = std::min(
      {config.max_train_per_class, positives.size(), negatives.size()});
  std::vector<std::pair<const std::string*, double>> examples;
  examples.reserve(2 * per_class);
  const double pstride =
      static_cast<double>(positives.size()) / static_cast<double>(per_class);
  const double nstride =
      static_cast<double>(negatives.size()) / static_cast<double>(per_class);
  for (size_t i = 0; i < per_class; ++i) {
    examples.emplace_back(&positives[static_cast<size_t>(i * pstride)], 1.0);
    examples.emplace_back(&negatives[static_cast<size_t>(i * nstride)], 0.0);
  }

  Gradients grad;
  grad.InitLike(*this, e_, h_);
  AdamTensor a_embed, a_wz, a_wr, a_wh, a_uz, a_ur, a_uh, a_bz, a_br, a_bh,
      a_ow;
  a_embed.Init(embed_.size());
  a_wz.Init(wz_.size());
  a_wr.Init(wr_.size());
  a_wh.Init(wh_.size());
  a_uz.Init(uz_.size());
  a_ur.Init(ur_.size());
  a_uh.Init(uh_.size());
  a_bz.Init(bz_.size());
  a_br.Init(br_.size());
  a_bh.Init(bh_.size());
  a_ow.Init(out_w_.size());
  double m_ob = 0.0, v_ob = 0.0;

  const size_t kBatch = 16;
  std::vector<double> trace;
  double beta1_t = 1.0, beta2_t = 1.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (size_t i = examples.size(); i > 1; --i) {
      std::swap(examples[i - 1], examples[rng.NextBounded(i)]);
    }
    for (size_t start = 0; start < examples.size(); start += kBatch) {
      const size_t end = std::min(start + kBatch, examples.size());
      grad.Zero();
      for (size_t i = start; i < end; ++i) {
        const double logit = Forward(*examples[i].first, &trace);
        const double p = Sigmoid(logit);
        const double d_logit =
            (p - examples[i].second) / static_cast<double>(end - start);
        Backward(*examples[i].first, trace, d_logit, &grad);
      }
      beta1_t *= 0.9;
      beta2_t *= 0.999;
      const double b1 = 1.0 - beta1_t, b2 = 1.0 - beta2_t;
      const double lr = config.learning_rate;
      a_embed.Step(&embed_, grad.embed, lr, b1, b2);
      a_wz.Step(&wz_, grad.wz, lr, b1, b2);
      a_wr.Step(&wr_, grad.wr, lr, b1, b2);
      a_wh.Step(&wh_, grad.wh, lr, b1, b2);
      a_uz.Step(&uz_, grad.uz, lr, b1, b2);
      a_ur.Step(&ur_, grad.ur, lr, b1, b2);
      a_uh.Step(&uh_, grad.uh, lr, b1, b2);
      a_bz.Step(&bz_, grad.bz, lr, b1, b2);
      a_br.Step(&br_, grad.br, lr, b1, b2);
      a_bh.Step(&bh_, grad.bh, lr, b1, b2);
      a_ow.Step(&out_w_, grad.out_w, lr, b1, b2);
      m_ob = 0.9 * m_ob + 0.1 * grad.out_b;
      v_ob = 0.999 * v_ob + 0.001 * grad.out_b * grad.out_b;
      out_b_ -= lr * (m_ob / b1) / (std::sqrt(v_ob / b2) + 1e-8);
    }
  }
  return Status::OK();
}

double GruClassifier::Predict(std::string_view s) const {
  return Sigmoid(Forward(s, nullptr));
}

size_t GruClassifier::SizeBytes() const {
  const size_t params = embed_.size() + wz_.size() + wr_.size() + wh_.size() +
                        uz_.size() + ur_.size() + uh_.size() + bz_.size() +
                        br_.size() + bh_.size() + out_w_.size() + 1;
  return params * sizeof(float);  // paper reports float32 model sizes
}

}  // namespace li::classifier
