// Character-level GRU binary classifier (§5.2): "We train a character-level
// RNN (GRU, in particular) to predict which set a URL belongs to ... We
// consider a 16-dimensional GRU with a 32-dimensional embedding for each
// character."
//
// Architecture: byte embedding -> single GRU layer -> sigmoid readout on
// the final hidden state. Training is truncated-sequence BPTT with Adam on
// log loss. Parameters are trained in double precision but *reported* at
// float32 size, matching the paper's memory accounting (a W=16, E=32 model
// is 0.0259 MB).

#ifndef LI_CLASSIFIER_GRU_H_
#define LI_CLASSIFIER_GRU_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace li::classifier {

struct GruConfig {
  int embed_dim = 32;   // E in Figure 10
  int hidden_dim = 16;  // W in Figure 10
  int max_len = 32;     // sequence truncation
  int epochs = 2;
  double learning_rate = 3e-3;
  size_t max_train_per_class = 20'000;
  uint64_t seed = 1;
};

class GruClassifier {
 public:
  static constexpr int kVocab = 128;  // ASCII

  GruClassifier() = default;

  /// Trains on positives (keys, label 1) and negatives (label 0).
  Status Train(std::span<const std::string> positives,
               std::span<const std::string> negatives,
               const GruConfig& config);

  /// P(x is a key) in [0, 1].
  double Predict(std::string_view s) const;

  /// Model bytes at float32 storage (paper accounting).
  size_t SizeBytes() const;

  const GruConfig& config() const { return config_; }

 private:
  struct Gradients;

  double Forward(std::string_view s, std::vector<double>* trace) const;
  void Backward(std::string_view s, const std::vector<double>& trace,
                double d_logit, Gradients* g) const;

  GruConfig config_;
  int e_ = 0, h_ = 0;
  // Parameters, flat row-major:
  std::vector<double> embed_;            // kVocab x E
  std::vector<double> wz_, wr_, wh_;     // H x E
  std::vector<double> uz_, ur_, uh_;     // H x H
  std::vector<double> bz_, br_, bh_;     // H
  std::vector<double> out_w_;            // H
  double out_b_ = 0.0;
};

}  // namespace li::classifier

#endif  // LI_CLASSIFIER_GRU_H_
