// Hashed character-n-gram logistic regression — a cheap alternative
// classifier for learned Bloom filters. The paper notes "there is no
// reason that our model needs to use the same features as the Bloom
// filter" (§5.2); this model trades a little accuracy for ~100x faster
// training and inference than the GRU, which makes it the default for
// quick benchmark runs.

#ifndef LI_CLASSIFIER_NGRAM_LOGISTIC_H_
#define LI_CLASSIFIER_NGRAM_LOGISTIC_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace li::classifier {

struct NgramConfig {
  int ngram = 3;
  size_t num_buckets = 1 << 14;  // hashed feature space
  int epochs = 4;
  double learning_rate = 0.1;
  double l2 = 1e-6;
  size_t max_train_per_class = 100'000;
  uint64_t seed = 1;
};

class NgramLogistic {
 public:
  NgramLogistic() = default;

  Status Train(std::span<const std::string> positives,
               std::span<const std::string> negatives,
               const NgramConfig& config);

  /// P(x is a key).
  double Predict(std::string_view s) const;

  /// float32 parameter bytes (same accounting as the GRU).
  size_t SizeBytes() const { return (w_.size() + 1) * sizeof(float); }

 private:
  void Featurize(std::string_view s, std::vector<uint32_t>* idx) const;

  NgramConfig config_;
  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace li::classifier

#endif  // LI_CLASSIFIER_NGRAM_LOGISTIC_H_
