#include "classifier/ngram_logistic.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace li::classifier {

namespace {
inline double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

void NgramLogistic::Featurize(std::string_view s,
                              std::vector<uint32_t>* idx) const {
  idx->clear();
  const int n = config_.ngram;
  if (static_cast<int>(s.size()) < n) {
    if (!s.empty()) {
      idx->push_back(static_cast<uint32_t>(
          MurmurHash64(s.data(), s.size()) % config_.num_buckets));
    }
    return;
  }
  for (size_t i = 0; i + n <= s.size(); ++i) {
    idx->push_back(static_cast<uint32_t>(MurmurHash64(s.data() + i, n) %
                                         config_.num_buckets));
  }
}

Status NgramLogistic::Train(std::span<const std::string> positives,
                            std::span<const std::string> negatives,
                            const NgramConfig& config) {
  if (positives.empty() || negatives.empty()) {
    return Status::InvalidArgument("NgramLogistic: need both classes");
  }
  config_ = config;
  w_.assign(config.num_buckets, 0.0);
  b_ = 0.0;

  const size_t per_class = std::min(
      {config.max_train_per_class, positives.size(), negatives.size()});
  std::vector<std::pair<const std::string*, double>> examples;
  examples.reserve(2 * per_class);
  const double pstride =
      static_cast<double>(positives.size()) / static_cast<double>(per_class);
  const double nstride =
      static_cast<double>(negatives.size()) / static_cast<double>(per_class);
  for (size_t i = 0; i < per_class; ++i) {
    examples.emplace_back(&positives[static_cast<size_t>(i * pstride)], 1.0);
    examples.emplace_back(&negatives[static_cast<size_t>(i * nstride)], 0.0);
  }

  Xorshift128Plus rng(config.seed);
  std::vector<uint32_t> idx;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (size_t i = examples.size(); i > 1; --i) {
      std::swap(examples[i - 1], examples[rng.NextBounded(i)]);
    }
    // Decaying step size stabilizes the tail of training.
    const double lr = config.learning_rate / (1.0 + 0.5 * epoch);
    for (const auto& [s, y] : examples) {
      Featurize(*s, &idx);
      if (idx.empty()) continue;
      double logit = b_;
      for (const uint32_t j : idx) logit += w_[j];
      const double g = Sigmoid(logit) - y;
      for (const uint32_t j : idx) {
        w_[j] -= lr * (g + config.l2 * w_[j]);
      }
      b_ -= lr * g;
    }
  }
  return Status::OK();
}

double NgramLogistic::Predict(std::string_view s) const {
  std::vector<uint32_t> idx;
  Featurize(s, &idx);
  double logit = b_;
  for (const uint32_t j : idx) logit += w_[j];
  return Sigmoid(logit);
}

}  // namespace li::classifier
