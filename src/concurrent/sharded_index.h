// ShardedIndex<Inner> — a range-partitioned front-end over N inner
// writable indexes, the write-scaling layer of the concurrent subsystem.
//
// A single ConcurrentWritableIndex serializes writers on one mutex; its
// WriterContentionRate() is the gauge that says when that front-end is
// saturated. ShardedIndex splits the key space into N contiguous ranges
// and gives each its own inner index (own writer lock, own write log, own
// background merge worker), so writers to different shards never touch
// the same lock and write throughput scales with shards until memory
// bandwidth takes over.
//
// Shard boundaries are picked from a CDF sample of the build keys: the
// sample's equal-mass quantiles become the split points, so a skewed key
// distribution still yields shards with (approximately) equal key counts
// — equal-width splits would put most of a lognormal key set into one
// shard. Boundaries are fixed at Build; a workload whose *insert* skew
// drifts from the build distribution shows up as uneven shard sizes in
// ConcurrentStats() (per-shard re-balancing is future work, tracked in
// the ROADMAP).
//
// The contract is the same ConcurrentWritableRangeIndex as the inner
// index: point ops route to one shard; Lookup adds the live sizes of the
// shards left of the target (O(#shards) atomic loads, exact when
// quiesced); Scan stitches shard scans left to right; Merge/RequestMerge
// fan out (RequestMerge triggers all shard workers *in parallel*).

#ifndef LI_CONCURRENT_SHARDED_INDEX_H_
#define LI_CONCURRENT_SHARDED_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/approx.h"
#include "index/concurrent_writable_index.h"
#include "index/range_index.h"
#include "index/writable_range_index.h"

namespace li::concurrent {

/// True when the inner index exposes the concurrent merge-control
/// surface; ShardedIndex then forwards it (and fans RequestMerge out so
/// shard merges overlap).
template <typename I>
concept HasMergeControl = requires(I& idx) {
  { idx.RequestMerge() };
  { idx.WaitForMerges() };
};

template <index::WritableRangeIndex Inner>
class ShardedIndex {
 public:
  using key_type = typename Inner::key_type;
  using inner_config_type = typename Inner::config_type;

  struct Config {
    inner_config_type inner{};
    size_t num_shards = 8;
    /// Keys sampled from the build set to estimate the CDF the shard
    /// boundaries are cut from. The sample's equal-mass quantiles balance
    /// shards under skew; a few thousand points pin every boundary to
    /// within a fraction of a percent of mass.
    size_t cdf_sample = 8192;
  };
  using config_type = Config;

  ShardedIndex() = default;
  ShardedIndex(ShardedIndex&&) noexcept = default;
  ShardedIndex& operator=(ShardedIndex&&) noexcept = default;

  /// Builds `num_shards` inner indexes over equal-mass key ranges.
  /// `keys` sorted, strictly increasing; each shard copies its slice.
  Status Build(std::span<const key_type> keys, const Config& config) {
    config_ = config;
    const size_t shards = std::max<size_t>(config.num_shards, 1);
    boundaries_.clear();
    shards_.clear();
    // CDF sample: every stride-th key (the keys are the CDF's inverse).
    // Boundary i = the sample's (i+1)/shards quantile.
    std::vector<key_type> sample;
    if (!keys.empty() && shards > 1) {
      const size_t want = std::min(
          keys.size(), std::max<size_t>(config.cdf_sample, shards));
      sample.reserve(want);
      const double stride = static_cast<double>(keys.size()) /
                            static_cast<double>(want);
      for (size_t i = 0; i < want; ++i) {
        sample.push_back(keys[static_cast<size_t>(i * stride)]);
      }
      for (size_t i = 1; i < shards; ++i) {
        const key_type b = sample[i * sample.size() / shards];
        // Strictly increasing boundaries; duplicates would create an
        // empty shard and an ill-defined route.
        if (boundaries_.empty() || boundaries_.back() < b) {
          boundaries_.push_back(b);
        }
      }
    }
    const size_t actual = boundaries_.size() + 1;
    shards_.resize(actual);
    size_t begin = 0;
    for (size_t i = 0; i < actual; ++i) {
      const size_t end =
          i < boundaries_.size()
              ? static_cast<size_t>(
                    std::lower_bound(keys.begin(), keys.end(),
                                     boundaries_[i]) -
                    keys.begin())
              : keys.size();
      LI_RETURN_IF_ERROR(
          shards_[i].Build(keys.subspan(begin, end - begin), config.inner));
      begin = end;
    }
    return Status::OK();
  }

  // ---- reads ----

  /// lower_bound rank over the whole live key set: live sizes of the
  /// shards left of the route target plus the target's local rank.
  size_t Lookup(const key_type& key) const {
    if (shards_.empty()) return 0;
    const size_t s = ShardOf(key);
    size_t rank = 0;
    for (size_t i = 0; i < s; ++i) rank += shards_[i].size();
    return rank + shards_[s].Lookup(key);
  }

  size_t LowerBound(const key_type& key) const { return Lookup(key); }

  index::Approx ApproxPos(const key_type& key) const {
    return index::Approx::Exact(Lookup(key), size());
  }

  /// Per-key routing with the left-shard size prefix snapshotted once per
  /// batch, so the O(#shards) size sum is paid once, not per key.
  void LookupBatch(std::span<const key_type> keys,
                   std::span<size_t> out) const {
    const size_t n = std::min(keys.size(), out.size());
    std::vector<size_t> prefix(shards_.size() + 1, 0);
    for (size_t i = 0; i < shards_.size(); ++i) {
      prefix[i + 1] = prefix[i] + shards_[i].size();
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t s = ShardOf(keys[i]);
      out[i] = prefix[s] + shards_[s].Lookup(keys[i]);
    }
  }

  bool Contains(const key_type& key) const {
    return !shards_.empty() && shards_[ShardOf(key)].Contains(key);
  }

  /// Live keys >= `from`, stitched across shards left to right.
  std::vector<key_type> Scan(const key_type& from, size_t limit) const {
    std::vector<key_type> out;
    if (limit == 0 || shards_.empty()) return out;
    for (size_t s = ShardOf(from); s < shards_.size(); ++s) {
      std::vector<key_type> part = shards_[s].Scan(from, limit - out.size());
      if (out.empty()) {
        out = std::move(part);
      } else {
        out.insert(out.end(), part.begin(), part.end());
      }
      if (out.size() >= limit) break;
    }
    return out;
  }

  size_t size() const {
    size_t n = 0;
    for (const Inner& s : shards_) n += s.size();
    return n;
  }

  size_t SizeBytes() const {
    size_t n = boundaries_.capacity() * sizeof(key_type);
    for (const Inner& s : shards_) n += s.SizeBytes();
    return n;
  }

  // ---- writes ----

  bool Insert(const key_type& key) {
    return !shards_.empty() && shards_[ShardOf(key)].Insert(key);
  }
  bool Erase(const key_type& key) {
    return !shards_.empty() && shards_[ShardOf(key)].Erase(key);
  }

  // ---- merge control ----

  /// Synchronous: when the inner index has a background worker, all shard
  /// merges are requested first so they overlap, then drained; otherwise
  /// shards merge sequentially. First failure wins, every shard still
  /// runs (each shard stays individually consistent either way).
  Status Merge() {
    if constexpr (HasMergeControl<Inner>) {
      for (Inner& s : shards_) s.RequestMerge();
    }
    Status first = Status::OK();
    for (Inner& s : shards_) {
      const Status st = s.Merge();
      if (first.ok() && !st.ok()) first = st;
    }
    return first;
  }

  void RequestMerge()
    requires HasMergeControl<Inner>
  {
    for (Inner& s : shards_) s.RequestMerge();
  }

  void WaitForMerges()
    requires HasMergeControl<Inner>
  {
    for (Inner& s : shards_) s.WaitForMerges();
  }

  // ---- stats ----

  index::WritableIndexStats Stats() const {
    index::WritableIndexStats agg{};
    for (const Inner& s : shards_) Accumulate(agg, s.Stats());
    return agg;
  }

  index::ConcurrentIndexStats ConcurrentStats() const
    requires requires(const Inner& i) {
      { i.ConcurrentStats() } -> std::same_as<index::ConcurrentIndexStats>;
    }
  {
    index::ConcurrentIndexStats agg{};
    for (const Inner& s : shards_) {
      const index::ConcurrentIndexStats cs = s.ConcurrentStats();
      Accumulate(agg, cs);
      agg.freezes += cs.freezes;
      agg.background_merges += cs.background_merges;
      agg.writer_contended += cs.writer_contended;
      agg.states_published += cs.states_published;
      agg.states_retired += cs.states_retired;
      agg.states_reclaimed += cs.states_reclaimed;
      agg.epoch_fallback_pins += cs.epoch_fallback_pins;
      agg.log_entries += cs.log_entries;
    }
    agg.shards = shards_.size();
    return agg;
  }

  size_t num_shards() const { return shards_.size(); }
  std::span<const key_type> boundaries() const { return boundaries_; }
  const Inner& shard(size_t i) const { return shards_[i]; }
  /// Per-shard live sizes — the balance gauge for boundary quality.
  std::vector<size_t> ShardSizes() const {
    std::vector<size_t> out;
    out.reserve(shards_.size());
    for (const Inner& s : shards_) out.push_back(s.size());
    return out;
  }

 private:
  /// Shard covering `key`: shard i serves [boundary[i-1], boundary[i]).
  size_t ShardOf(const key_type& key) const {
    return static_cast<size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(), key) -
        boundaries_.begin());
  }

  static void Accumulate(index::WritableIndexStats& agg,
                         const index::WritableIndexStats& s) {
    agg.lookups += s.lookups;
    agg.contains += s.contains;
    agg.inserts += s.inserts;
    agg.erases += s.erases;
    agg.delta_hits += s.delta_hits;
    agg.merges += s.merges;
    agg.merged_keys += s.merged_keys;
    agg.last_merge_ns = std::max(agg.last_merge_ns, s.last_merge_ns);
    agg.total_merge_ns += s.total_merge_ns;
    agg.delta_entries += s.delta_entries;
    agg.delta_bytes += s.delta_bytes;
    agg.base_keys += s.base_keys;
  }

  Config config_{};
  std::vector<key_type> boundaries_;  // num_shards - 1 split points
  std::vector<Inner> shards_;
};

}  // namespace li::concurrent

#endif  // LI_CONCURRENT_SHARDED_INDEX_H_
