// ShardedIndex<Inner> — a range-partitioned front-end over N inner
// writable indexes, the write-scaling layer of the concurrent subsystem.
//
// A single ConcurrentWritableIndex serializes writers on one mutex; its
// WriterContentionRate() is the gauge that says when that front-end is
// saturated. ShardedIndex splits the key space into contiguous ranges
// and gives each its own inner index (own writer lock, own write log, own
// background merge worker), so writers to different shards never touch
// the same lock and write throughput scales with shards until memory
// bandwidth takes over.
//
// Routing goes through an immutable, epoch-versioned *ShardMap* — the
// boundaries plus shared-ownership handles to the shard slots. Readers
// and writers pin an epoch, load the current map with one atomic load,
// and route; nobody ever locks the routing table. Initial boundaries are
// cut from a CDF sample of the build keys (equal-mass quantiles, so a
// skewed build set still yields equal-count shards).
//
// Boundaries are no longer fixed at Build: a background *rebalance
// worker* (the same rotate/build/publish discipline as the merge worker
// in concurrent_writable_index.h) splits overloaded shards and coalesces
// undersized neighbors online, publishing each change as a new ShardMap
// version and retiring the old one to the epoch manager — readers never
// block on a rebalance. The shard lifecycle, the seal/catch-up/cutover
// protocol and tuning guidance are documented in docs/SHARDING.md.
//
// The contract is the same ConcurrentWritableRangeIndex as the inner
// index: point ops route to one shard; Lookup adds the live sizes of the
// shards left of the target; LookupBatch groups the batch by shard and
// dispatches each group to the shard's native batch path (recovering the
// RMI software-pipeline win under sharding); Scan stitches shard scans
// left to right; Merge/RequestMerge fan out (RequestMerge triggers all
// shard workers *in parallel*).

#ifndef LI_CONCURRENT_SHARDED_INDEX_H_
#define LI_CONCURRENT_SHARDED_INDEX_H_

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "concurrent/epoch.h"
#include "index/approx.h"
#include "index/concurrent_writable_index.h"
#include "index/durable_index.h"
#include "index/range_index.h"
#include "index/snapshottable.h"
#include "index/writable_range_index.h"
#include "simd/dispatch.h"
#include "snapshot/snapshot.h"
#include "wal/wal.h"

namespace li::concurrent {

/// True when the inner index exposes the concurrent merge-control
/// surface; ShardedIndex then forwards it (and fans RequestMerge out so
/// shard merges overlap). Also the gate for online rebalancing: the
/// seal/snapshot/cutover protocol reads a shard while writers stream
/// into it, which is only safe when the inner index is itself a
/// concurrent front-end.
template <typename I>
concept HasMergeControl = requires(I& idx) {
  { idx.RequestMerge() };
  { idx.WaitForMerges() };
};

/// True when the inner index can carry a per-shard write-ahead log AND
/// checkpoint itself to its own snapshot file — the two halves of the
/// sharded durability protocol (each shard owns an s<uid>.snap +
/// s<uid>.wal pair beneath the durability directory).
template <typename I>
concept DurableShardInner =
    index::DurableIndex<I> && index::Snapshottable<I> &&
    static_cast<bool>(I::kDurabilityCapable);

/// Knobs for the online shard split/coalesce machinery. All mass terms
/// are live key counts (base + delta + log) as reported by the inner
/// index's size().
struct ShardRebalanceConfig {
  /// Auto-trigger: writers sample shard masses every `check_stride`
  /// writes and request a rebalance when a condition below holds. With
  /// `enabled == false` the worker only acts on explicit
  /// RequestRebalance() calls, and boundaries stay fixed under a purely
  /// read/write workload — the pre-rebalance behavior.
  bool enabled = false;
  /// Split a shard when its mass exceeds `max_imbalance` x the mean
  /// shard mass (and `min_split_keys`). The post-rebalance invariant the
  /// worker converges to: max/mean <= max_imbalance. Values in [1.5, 4]
  /// are the useful range (see docs/SHARDING.md); Build clamps to
  /// >= 1.1 (at or below 1, any non-uniform mass would split — rebuild
  /// churn up to the max_shards cap).
  double max_imbalance = 2.0;
  /// Coalesce an adjacent shard pair when their combined mass is below
  /// `coalesce_fraction` x the mean — the merged shard stays under the
  /// mean, so a coalesce can never create the next hotspot. Build
  /// clamps to < max_imbalance / 2 (a higher value would re-coalesce a
  /// freshly split pair: oscillation).
  double coalesce_fraction = 0.5;
  /// Never split a shard below this mass, whatever the imbalance says —
  /// tiny shards cost routing fan-out without relieving any contention.
  size_t min_split_keys = 1024;
  /// Hard cap on the shard count (runaway-split backstop).
  size_t max_shards = 64;
  /// Writer-side monitor cadence: one O(#shards) mass scan per this many
  /// writes (across all shards).
  size_t check_stride = 1024;
  /// Snapshot scans page the shard's live keys out in chunks of this
  /// many keys (bounds per-Scan allocation during a split).
  size_t scan_chunk = 64 * 1024;
  /// Upper bound on split/coalesce actions per worker cycle.
  size_t max_actions_per_cycle = 8;
};

template <index::WritableRangeIndex Inner>
class ShardedIndex {
 public:
  using key_type = typename Inner::key_type;
  using inner_config_type = typename Inner::config_type;

  /// Rebalancing needs concurrent-safe snapshot scans of a shard that is
  /// still being written; the merge-control surface is the library's
  /// marker for "inner index is a concurrent front-end".
  static constexpr bool kRebalanceCapable = HasMergeControl<Inner>;

  struct Config {
    inner_config_type inner{};
    size_t num_shards = 8;
    /// Keys sampled from the build set to estimate the CDF the shard
    /// boundaries are cut from. The sample's equal-mass quantiles balance
    /// shards under skew; a few thousand points pin every boundary to
    /// within a fraction of a percent of mass.
    size_t cdf_sample = 8192;
    /// Online split/coalesce knobs (ignored unless kRebalanceCapable).
    ShardRebalanceConfig rebalance{};
  };
  using config_type = Config;

  ShardedIndex() = default;
  ShardedIndex(ShardedIndex&&) noexcept = default;
  ShardedIndex& operator=(ShardedIndex&&) noexcept = default;

  /// Builds `num_shards` inner indexes over equal-mass key ranges and
  /// (when the inner index is a concurrent front-end) starts the
  /// background rebalance worker.
  ///
  /// Semantics: `keys` sorted, strictly increasing; each shard copies
  /// its slice. Complexity: O(n) slicing + num_shards inner builds.
  /// Thread-safety: not safe against any other method — build-then-share,
  /// the library-wide discipline. On failure the handle reverts to the
  /// never-built state (reads answer empty, writes return false).
  Status Build(std::span<const key_type> keys, const Config& config) {
    impl_ = std::make_unique<Impl>();
    const Status st = impl_->Build(keys, config);
    if (!st.ok()) impl_.reset();
    return st;
  }

  // ---- reads: lock-free, safe from any thread ----

  /// lower_bound rank over the whole live key set: live sizes of the
  /// shards left of the route target plus the target's local rank.
  /// Complexity: O(log #shards) route + O(#shards) size loads + one
  /// inner lookup. Exact when quiesced; at most one in-flight write
  /// behind otherwise (the inner index's linearizability contract).
  size_t Lookup(const key_type& key) const {
    return impl_ ? impl_->Lookup(key) : 0;
  }
  size_t LowerBound(const key_type& key) const { return Lookup(key); }
  index::Approx ApproxPos(const key_type& key) const {
    return impl_ ? impl_->ApproxPos(key) : index::Approx{};
  }

  /// Shard-grouped batch lookup: the batch is partitioned by the pinned
  /// ShardMap (one map version serves the whole call), each group is
  /// dispatched to its shard's native LookupBatch — the RMI software
  /// pipeline runs per shard — and results scatter back in caller order
  /// with the left-shard size prefix added. Complexity: O(n log #shards)
  /// routing + grouped inner batch lookups; the size prefix is paid once
  /// per call, not per key. Thread-safety: lock-free, as Lookup.
  void LookupBatch(std::span<const key_type> keys,
                   std::span<size_t> out) const {
    if (impl_ != nullptr) {
      impl_->LookupBatch(keys, out);
    } else {
      for (size_t i = 0; i < out.size(); ++i) out[i] = 0;
    }
  }

  /// Membership over the live set; routes to one shard. Lock-free.
  bool Contains(const key_type& key) const {
    return impl_ != nullptr && impl_->Contains(key);
  }

  /// Live keys >= `from`, stitched across shards left to right under one
  /// pinned ShardMap. Lock-free; O(log) seek + O(limit) merge.
  std::vector<key_type> Scan(const key_type& from, size_t limit) const {
    return impl_ ? impl_->Scan(from, limit) : std::vector<key_type>{};
  }

  /// Live key count: sum of the pinned map's shard sizes. O(#shards)
  /// relaxed loads; exact when quiesced.
  size_t size() const { return impl_ ? impl_->size() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }

  // ---- writes: safe from any thread ----

  /// Routes to one shard through the pinned map and revalidates the slot
  /// under its cutover lock (a write that raced a split/coalesce publish
  /// retries on the fresh map — see docs/SHARDING.md). Writers to
  /// *different* shards never share a lock; while a shard is sealed for
  /// rebalancing its writers additionally serialize on the catch-up
  /// log. Returns true iff the key's liveness changed.
  bool Insert(const key_type& key) {
    return impl_ != nullptr && impl_->Write(key, /*tombstone=*/false);
  }
  bool Erase(const key_type& key) {
    return impl_ != nullptr && impl_->Write(key, /*tombstone=*/true);
  }

  // ---- merge control ----

  /// Synchronous: when the inner index has a background worker, all shard
  /// merges are requested first so they overlap, then drained; otherwise
  /// shards merge sequentially. First failure wins, every shard still
  /// runs (each shard stays individually consistent either way). Blocks
  /// the caller only; readers stay lock-free.
  Status Merge() {
    return impl_ ? impl_->Merge()
                 : Status::FailedPrecondition("ShardedIndex: not built");
  }

  /// Asynchronous merge trigger fanned out to every shard in parallel;
  /// coalesces with pending requests per shard. Never blocks.
  void RequestMerge()
    requires HasMergeControl<Inner>
  {
    if (impl_ != nullptr) impl_->RequestMerge();
  }

  /// Blocks until no shard merge is pending or running. For a full
  /// quiesce under rebalancing, call WaitForRebalances() first (a split
  /// publishes fresh shards whose merges this call then covers).
  void WaitForMerges()
    requires HasMergeControl<Inner>
  {
    if (impl_ != nullptr) impl_->WaitForMerges();
  }

  // ---- rebalance control ----

  /// Asynchronous rebalance trigger: wakes the worker, which splits and
  /// coalesces until the imbalance conditions clear or an action can
  /// make no progress (the worker re-arms itself past the per-cycle
  /// action cap). Never blocks; coalesces with a pending request.
  /// No-op unless kRebalanceCapable.
  void RequestRebalance() {
    if (impl_ != nullptr) impl_->RequestRebalance();
  }

  /// Blocks until no rebalance cycle is pending or running — the quiesce
  /// point tests and snapshot readers use (then WaitForMerges()).
  /// No-op unless kRebalanceCapable.
  void WaitForRebalances() {
    if (impl_ != nullptr) impl_->WaitForRebalances();
  }

  /// Outcome of the most recent rebalance cycle (OK before the first).
  Status last_rebalance_status() const {
    return impl_ ? impl_->last_rebalance_status() : Status::OK();
  }

  // ---- Durability (per-shard WAL routing; docs/DURABILITY.md) ----
  //
  // Durable mode turns DurabilityConfig::path into a directory this
  // index owns:
  //
  //   MANIFEST      routing manifest (boundaries, shard uids) — every
  //                 rebalance cutover commits by atomically rewriting it
  //   s<uid>.snap   per-shard snapshot (the inner WriteSnapshot format)
  //   s<uid>.wal    per-shard write-ahead log
  //
  // A write routes to exactly one shard, so it appends to exactly one
  // log — per-shard group commit, no cross-shard sync ordering. A
  // split/coalesce gives the replacement shards fresh uids, snapshots
  // them, attaches fresh logs, and replays the sealed shard's catch-up
  // records through the durable write path (they land in the new
  // shards' logs like any other write — the same machinery), syncs,
  // and only then flips MANIFEST inside the cutover critical section.
  // The rename is the commit point: a crash on either side recovers a
  // consistent shard set with every acknowledged write.

  /// Per-shard logs need an inner index that is itself durable and
  /// whole-file snapshottable.
  static constexpr bool kDurabilityCapable =
      std::is_trivially_copyable_v<key_type> && DurableShardInner<Inner>;

  /// Attach per-shard logs beneath directory `cfg.path` (created if
  /// missing): checkpoints every shard, starts its log, writes the
  /// MANIFEST. Call quiesced (build-then-share, as Build); earlier
  /// writes are covered by the checkpoints taken here.
  Status EnableDurability(const wal::DurabilityConfig& cfg) {
    return impl_ ? impl_->EnableDurability(cfg)
                 : Status::FailedPrecondition("ShardedIndex: not built");
  }

  /// Durable-mode snapshot: re-checkpoints every shard (each inner
  /// WriteSnapshot truncates its log behind the published LSN) and
  /// rewrites the MANIFEST. Bounds recovery replay time.
  Status Checkpoint() {
    return impl_ ? impl_->Checkpoint()
                 : Status::FailedPrecondition("ShardedIndex: not built");
  }

  /// Rebuild a durable index from its directory: MANIFEST -> per-shard
  /// OpenSnapshot + RecoverFromWal, then resume logging. Orphan shard
  /// files from a crashed rebalance (never committed into MANIFEST) are
  /// removed.
  static Result<ShardedIndex> RecoverDurable(
      const wal::DurabilityConfig& cfg) {
    ShardedIndex out;
    out.impl_ = std::make_unique<Impl>();
    const Status st = out.impl_->RecoverDurable(cfg);
    if (!st.ok()) return st;
    return out;
  }

  bool durable() const { return impl_ != nullptr && impl_->durable(); }

  /// First non-OK sticky log status across shards (an append failure
  /// poisons that shard's log; the in-memory index keeps serving).
  Status wal_status() const {
    return impl_ ? impl_->wal_status() : Status::OK();
  }

  /// Aggregated per-shard log counters (sums; LSN fields are maxima —
  /// LSN streams are per shard).
  wal::WalStats DurabilityStats() const {
    return impl_ ? impl_->DurabilityStats() : wal::WalStats{};
  }

  /// Flush every shard's group-commit window now; first failure wins.
  Status SyncWal() { return impl_ ? impl_->SyncWal() : Status::OK(); }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // One file holds the routing manifest (shard count, boundaries, knobs)
  // plus every shard's sections under "s<i>/". WriteSnapshot drains any
  // in-flight rebalance first so the captured map version is final, then
  // snapshots each shard through its own quiesce protocol — every shard
  // is individually exact; writes racing the capture on *other* shards
  // land in whichever shard section is written later (quiesce writers
  // for a globally exact cut). OpenSnapshot rebuilds the map and every
  // shard, and restarts the rebalance worker.

  /// Snapshot support needs a flat key type and a section-snapshottable
  /// inner index.
  static constexpr bool kSnapshotCapable =
      std::is_trivially_copyable_v<key_type> &&
      index::SectionSnapshottable<Inner>;

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    if (impl_ == nullptr) {
      return Status::FailedPrecondition("ShardedIndex: not built");
    }
    return impl_->WriteSections(writer, prefix);
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    impl_ = std::make_unique<Impl>();
    const Status st = impl_->LoadSections(reader, prefix);
    if (!st.ok()) impl_.reset();
    return st;
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<ShardedIndex> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<ShardedIndex>(path, opts);
  }

  // ---- stats ----

  index::WritableIndexStats Stats() const {
    return impl_ ? impl_->Stats() : index::WritableIndexStats{};
  }

  /// Aggregated inner gauges plus the sharded-level ones: shard count,
  /// split/coalesce counts, ShardMap versions published and the current
  /// max/mean mass imbalance. Per-op inner counters are per shard
  /// *lifetime*: a split/coalesce retires the old shard's counters with
  /// it (documented in docs/SHARDING.md).
  index::ConcurrentIndexStats ConcurrentStats() const
    requires requires(const Inner& i) {
      { i.ConcurrentStats() } -> std::same_as<index::ConcurrentIndexStats>;
    }
  {
    return impl_ ? impl_->ConcurrentStats() : index::ConcurrentIndexStats{};
  }

  size_t num_shards() const { return impl_ ? impl_->NumShards() : 0; }
  /// Copy of the current map's boundaries (num_shards - 1 split points).
  std::vector<key_type> boundaries() const {
    return impl_ ? impl_->Boundaries() : std::vector<key_type>{};
  }
  /// Per-shard live sizes — the balance gauge the rebalancer acts on.
  std::vector<size_t> ShardSizes() const {
    return impl_ ? impl_->ShardSizes() : std::vector<size_t>{};
  }
  /// max/mean live shard mass right now (1.0 when empty or unsharded).
  double CurrentImbalance() const {
    return impl_ ? impl_->CurrentImbalance() : 1.0;
  }

 private:
  /// One shard: the inner index plus the seal/cutover machinery the
  /// rebalancer uses to replace it without losing racing writes.
  /// `sealed`, `retired` and `catchup` are guarded by `cutover_mu`
  /// (writers shared, rebalancer exclusive); `catchup` appends
  /// additionally serialize on `catchup_mu` so the log order equals the
  /// inner index's writer-serialization order per key.
  struct Slot {
    Inner index;
    std::shared_mutex cutover_mu;
    std::mutex catchup_mu;
    bool sealed = false;   // dual-write every write into `catchup`
    bool retired = false;  // no longer routable; writers must retry
    std::vector<std::pair<key_type, bool>> catchup;  // (key, tombstone)
    /// Durable mode: names this shard's s<uid>.snap / s<uid>.wal pair.
    /// Uids are never reused — a rebalance gives replacement shards
    /// fresh ones, so the old and new file sets coexist until the
    /// MANIFEST flip picks the survivor.
    uint64_t uid = 0;
  };

  /// An immutable routing-table version. Slots are shared across map
  /// versions (a split replaces one slot and shares the rest), so a
  /// retired map's death only frees the shards no newer map references.
  struct ShardMap {
    std::vector<key_type> boundaries;  // slots.size() - 1 split points
    std::vector<std::shared_ptr<Slot>> slots;
  };

  struct SnapshotManifest {
    uint64_t shard_count = 0;
    uint64_t num_shards_cfg = 0;
    uint64_t cdf_sample = 0;
    ShardRebalanceConfig rebalance{};
  };
  static_assert(std::is_trivially_copyable_v<ShardRebalanceConfig>,
                "rebalance knobs are persisted verbatim in snapshots");

  /// Smallest representable key — the snapshot scan's starting probe.
  static key_type MinKey() {
    if constexpr (std::is_arithmetic_v<key_type>) {
      return std::numeric_limits<key_type>::lowest();
    } else {
      return key_type{};
    }
  }

  struct Impl {
    ~Impl() {
      {
        std::lock_guard<std::mutex> lk(rebalance_mu_);
        shutdown_ = true;
      }
      rebalance_cv_.notify_all();
      if (worker_.joinable()) worker_.join();
      delete map_.load(std::memory_order_relaxed);
      // epoch_ frees every retired map; slots die with their last map.
    }

    Status Build(std::span<const key_type> keys, const Config& config) {
      config_ = config;
      config_.rebalance.check_stride =
          std::max<size_t>(config_.rebalance.check_stride, 1);
      config_.rebalance.scan_chunk =
          std::max<size_t>(config_.rebalance.scan_chunk, 2);
      // Enforce the documented knob invariants: a factor at or below 1
      // would split on any non-uniform mass (rebuild churn to the
      // max_shards cap), and a coalesce threshold at or above factor/2
      // would re-coalesce freshly split halves (oscillation).
      config_.rebalance.max_imbalance =
          std::max(config_.rebalance.max_imbalance, 1.1);
      config_.rebalance.coalesce_fraction =
          std::clamp(config_.rebalance.coalesce_fraction, 0.0,
                     config_.rebalance.max_imbalance * 0.45);
      const size_t shards = std::max<size_t>(config.num_shards, 1);
      auto map = std::make_unique<ShardMap>();
      // CDF sample: every stride-th key (the keys are the CDF's inverse).
      // Boundary i = the sample's (i+1)/shards quantile.
      std::vector<key_type> sample;
      if (!keys.empty() && shards > 1) {
        const size_t want = std::min(
            keys.size(), std::max<size_t>(config.cdf_sample, shards));
        sample.reserve(want);
        const double stride = static_cast<double>(keys.size()) /
                              static_cast<double>(want);
        for (size_t i = 0; i < want; ++i) {
          sample.push_back(keys[static_cast<size_t>(i * stride)]);
        }
        for (size_t i = 1; i < shards; ++i) {
          const key_type b = sample[i * sample.size() / shards];
          // Strictly increasing boundaries; duplicates would create an
          // empty shard and an ill-defined route.
          if (map->boundaries.empty() || map->boundaries.back() < b) {
            map->boundaries.push_back(b);
          }
        }
      }
      const size_t actual = map->boundaries.size() + 1;
      size_t begin = 0;
      for (size_t i = 0; i < actual; ++i) {
        const size_t end =
            i < map->boundaries.size()
                ? static_cast<size_t>(
                      std::lower_bound(keys.begin(), keys.end(),
                                       map->boundaries[i]) -
                      keys.begin())
                : keys.size();
        auto slot = std::make_shared<Slot>();
        LI_RETURN_IF_ERROR(slot->index.Build(
            keys.subspan(begin, end - begin), config_.inner));
        map->slots.push_back(std::move(slot));
        begin = end;
      }
      map_.store(map.release(), std::memory_order_seq_cst);
      maps_published_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (kRebalanceCapable) {
        worker_ = std::thread([this] { WorkerLoop(); });
      }
      return Status::OK();
    }

    // ---- read path ----

    size_t Lookup(const key_type& key) const {
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      const size_t s = ShardOf(*m, key);
      size_t rank = 0;
      for (size_t i = 0; i < s; ++i) rank += m->slots[i]->index.size();
      return rank + m->slots[s]->index.Lookup(key);
    }

    index::Approx ApproxPos(const key_type& key) const {
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      const size_t s = ShardOf(*m, key);
      size_t rank = 0, total = 0;
      for (size_t i = 0; i < m->slots.size(); ++i) {
        const size_t sz = m->slots[i]->index.size();
        if (i < s) rank += sz;
        total += sz;
      }
      return index::Approx::Exact(rank + m->slots[s]->index.Lookup(key),
                                  total);
    }

    void LookupBatch(std::span<const key_type> keys,
                     std::span<size_t> out) const {
      const size_t n = std::min(keys.size(), out.size());
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      const size_t shards = m->slots.size();
      if (shards == 1) {
        index::LookupBatch(m->slots[0]->index, keys.first(n), out.first(n));
        return;
      }
      // Left-shard size prefix, snapshotted once per batch.
      std::vector<size_t> prefix(shards + 1, 0);
      for (size_t s = 0; s < shards; ++s) {
        prefix[s + 1] = prefix[s] + m->slots[s]->index.size();
      }
      // Group by shard (counting sort, stable within a shard), dispatch
      // each group to the shard's native batch path, scatter back. For
      // uint64 keys the boundary route runs through the branchless
      // upper_bound kernel — the boundary array is small and cached, so
      // mispredicted compare branches, not memory, bound the scalar route.
      std::vector<uint32_t> sid(n);
      std::vector<size_t> count(shards, 0);
      if constexpr (std::is_same_v<key_type, uint64_t>) {
        const simd::Kernels& kern = simd::GetKernels();
        const uint64_t* bd = m->boundaries.data();
        const size_t nb = m->boundaries.size();
        for (size_t i = 0; i < n; ++i) {
          sid[i] = static_cast<uint32_t>(kern.upper_bound_u64(bd, 0, nb,
                                                              keys[i]));
          ++count[sid[i]];
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          sid[i] = static_cast<uint32_t>(ShardOf(*m, keys[i]));
          ++count[sid[i]];
        }
      }
      std::vector<size_t> start(shards + 1, 0);
      for (size_t s = 0; s < shards; ++s) start[s + 1] = start[s] + count[s];
      std::vector<size_t> pos(n);
      {
        std::vector<size_t> cursor(start.begin(), start.end() - 1);
        std::vector<key_type> grouped(n);
        for (size_t i = 0; i < n; ++i) {
          pos[i] = cursor[sid[i]]++;
          grouped[pos[i]] = keys[i];
        }
        std::vector<size_t> ranks(n);
        for (size_t s = 0; s < shards; ++s) {
          if (count[s] == 0) continue;
          index::LookupBatch(
              m->slots[s]->index,
              std::span<const key_type>(grouped).subspan(start[s], count[s]),
              std::span<size_t>(ranks).subspan(start[s], count[s]));
        }
        for (size_t i = 0; i < n; ++i) out[i] = ranks[pos[i]] + prefix[sid[i]];
      }
    }

    bool Contains(const key_type& key) const {
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      return m->slots[ShardOf(*m, key)]->index.Contains(key);
    }

    std::vector<key_type> Scan(const key_type& from, size_t limit) const {
      std::vector<key_type> out;
      if (limit == 0) return out;
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      for (size_t s = ShardOf(*m, from); s < m->slots.size(); ++s) {
        std::vector<key_type> part =
            m->slots[s]->index.Scan(from, limit - out.size());
        if (out.empty()) {
          out = std::move(part);
        } else {
          out.insert(out.end(), part.begin(), part.end());
        }
        if (out.size() >= limit) break;
      }
      return out;
    }

    size_t size() const {
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      size_t n = 0;
      for (const auto& slot : m->slots) n += slot->index.size();
      return n;
    }

    size_t SizeBytes() const {
      EpochManager::Guard g(epoch_);
      const ShardMap* m = map_.load(std::memory_order_seq_cst);
      size_t n = m->boundaries.capacity() * sizeof(key_type);
      for (const auto& slot : m->slots) n += slot->index.SizeBytes();
      return n;
    }

    // ---- write path ----

    bool Write(const key_type& key, bool tombstone) {
      for (;;) {
        EpochManager::Guard g(epoch_);
        const ShardMap* m = map_.load(std::memory_order_seq_cst);
        Slot* slot = m->slots[ShardOf(*m, key)].get();
        bool changed;
        {
          std::shared_lock<std::shared_mutex> lk(slot->cutover_mu);
          // A cutover retired this slot between our map load and the
          // lock: its replacement shards already absorbed the catch-up
          // log, so a write here would be lost. Retry on the new map.
          if (slot->retired) continue;
          if (slot->sealed) {
            // Shard mid-rebalance: serialize on the catch-up mutex so
            // the log order equals the inner writer order, then
            // dual-write.
            std::lock_guard<std::mutex> cl(slot->catchup_mu);
            changed = tombstone ? slot->index.Erase(key)
                                : slot->index.Insert(key);
            slot->catchup.emplace_back(key, tombstone);
          } else {
            changed = tombstone ? slot->index.Erase(key)
                                : slot->index.Insert(key);
          }
        }
        // Load monitor runs after the cutover lock drops (the epoch pin
        // still holds `m`): the O(#shards) mass scan must not lengthen
        // the window the rebalancer's exclusive seal/cutover waits out.
        if constexpr (kRebalanceCapable) {
          if (config_.rebalance.enabled) {
            const uint64_t tick =
                write_tick_.fetch_add(1, std::memory_order_relaxed);
            if (tick % config_.rebalance.check_stride == 0 &&
                PickAction(*m).kind != RebalanceAction::Kind::kNone) {
              RequestRebalance();
            }
          }
        }
        return changed;
      }
    }

    // ---- merge control ----

    Status Merge() {
      const std::vector<std::shared_ptr<Slot>> slots = SlotSnapshot();
      if constexpr (HasMergeControl<Inner>) {
        for (const auto& slot : slots) slot->index.RequestMerge();
      }
      Status first = Status::OK();
      for (const auto& slot : slots) {
        const Status st = slot->index.Merge();
        if (first.ok() && !st.ok()) first = st;
      }
      return first;
    }

    void RequestMerge()
      requires HasMergeControl<Inner>
    {
      for (const auto& slot : SlotSnapshot()) slot->index.RequestMerge();
    }

    void WaitForMerges()
      requires HasMergeControl<Inner>
    {
      for (const auto& slot : SlotSnapshot()) slot->index.WaitForMerges();
    }

    // ---- rebalance control ----

    void RequestRebalance() {
      if constexpr (kRebalanceCapable) {
        {
          std::lock_guard<std::mutex> lk(rebalance_mu_);
          rebalance_requested_ = true;
        }
        rebalance_cv_.notify_one();
      }
    }

    void WaitForRebalances() {
      if constexpr (kRebalanceCapable) {
        std::unique_lock<std::mutex> lk(rebalance_mu_);
        rebalance_done_cv_.wait(lk, [&] {
          return !rebalance_requested_ && !rebalance_running_;
        });
      }
    }

    Status last_rebalance_status() const {
      std::lock_guard<std::mutex> lk(rebalance_mu_);
      return last_rebalance_status_;
    }

    // ---- durability ----
    // `durable_mu_` serializes everything that touches the durability
    // directory: EnableDurability, Checkpoint, and the durable leg of a
    // rebalance cutover. It is taken *before* any cutover lock (the
    // worker) or inner writer mutex (Checkpoint), never after — writers
    // never take it, so shard writes stay durable_mu_-free.

    Status EnableDurability(const wal::DurabilityConfig& cfg) {
      if constexpr (!kDurabilityCapable) {
        (void)cfg;
        return Status::Unimplemented(
            "ShardedIndex durability needs a flat key type and a "
            "durable, snapshottable inner index");
      } else {
        if (cfg.path.empty()) {
          return Status::InvalidArgument(
              "ShardedIndex durability needs a directory path");
        }
        WaitForRebalances();
        std::lock_guard<std::mutex> dlk(durable_mu_);
        if (durable_.load(std::memory_order_relaxed)) {
          return Status::FailedPrecondition(
              "ShardedIndex: durability already enabled");
        }
        if (::mkdir(cfg.path.c_str(), 0755) != 0 && errno != EEXIST) {
          return Status::Internal("mkdir('" + cfg.path +
                                  "'): " + std::strerror(errno));
        }
        dur_cfg_ = cfg;
        std::vector<key_type> boundaries;
        std::vector<std::shared_ptr<Slot>> slots;
        {
          EpochManager::Guard g(epoch_);
          const ShardMap* m = map_.load(std::memory_order_seq_cst);
          boundaries = m->boundaries;
          slots = m->slots;
        }
        for (const auto& slot : slots) {
          LI_RETURN_IF_ERROR(AttachShardDurability(*slot));
        }
        LI_RETURN_IF_ERROR(WriteManifestLocked(boundaries, slots));
        durable_.store(true, std::memory_order_release);
        return Status::OK();
      }
    }

    Status Checkpoint() {
      if constexpr (!kDurabilityCapable) {
        return Status::Unimplemented(
            "ShardedIndex durability needs a flat key type and a "
            "durable, snapshottable inner index");
      } else {
        WaitForRebalances();
        std::lock_guard<std::mutex> dlk(durable_mu_);
        if (!durable_.load(std::memory_order_relaxed)) {
          return Status::FailedPrecondition(
              "ShardedIndex: durability not enabled");
        }
        std::vector<key_type> boundaries;
        std::vector<std::shared_ptr<Slot>> slots;
        {
          EpochManager::Guard g(epoch_);
          const ShardMap* m = map_.load(std::memory_order_seq_cst);
          boundaries = m->boundaries;
          slots = m->slots;
        }
        for (const auto& slot : slots) {
          // Atomic per-shard publish (tmp + rename inside), then the
          // inner class truncates its own log behind the covered LSN.
          LI_RETURN_IF_ERROR(
              slot->index.WriteSnapshot(ShardSnapPath(slot->uid)));
        }
        return WriteManifestLocked(boundaries, slots);
      }
    }

    /// Fresh-Impl only (the static RecoverDurable entry point).
    Status RecoverDurable(const wal::DurabilityConfig& cfg) {
      if constexpr (!kDurabilityCapable) {
        (void)cfg;
        return Status::Unimplemented(
            "ShardedIndex durability needs a flat key type and a "
            "durable, snapshottable inner index");
      } else {
        if (cfg.path.empty()) {
          return Status::InvalidArgument(
              "ShardedIndex durability needs a directory path");
        }
        dur_cfg_ = cfg;
        auto reader = snapshot::SnapshotReader::Open(ManifestPath());
        if (!reader.ok()) return reader.status();
        SnapshotManifest man;
        LI_RETURN_IF_ERROR(reader.value().GetPod("manifest", &man));
        if (man.shard_count == 0) {
          return Status::InvalidArgument(
              "ShardedIndex MANIFEST has zero shards");
        }
        auto bounds = reader.value().template GetArray<key_type>("bounds");
        if (!bounds.ok()) return bounds.status();
        auto uids = reader.value().template GetArray<uint64_t>("uids");
        if (!uids.ok()) return uids.status();
        uint64_t next_uid = 0;
        LI_RETURN_IF_ERROR(reader.value().GetPod("nextuid", &next_uid));
        if (bounds.value().size() != man.shard_count - 1 ||
            uids.value().size() != man.shard_count) {
          return Status::InvalidArgument(
              "ShardedIndex MANIFEST shard count disagrees with its "
              "bounds/uids sections");
        }
        for (size_t i = 1; i < bounds.value().size(); ++i) {
          if (!(bounds.value()[i - 1] < bounds.value()[i])) {
            return Status::InvalidArgument(
                "ShardedIndex MANIFEST boundaries are not strictly "
                "increasing");
          }
        }
        config_.num_shards = man.num_shards_cfg;
        config_.cdf_sample = man.cdf_sample;
        config_.rebalance = man.rebalance;
        config_.rebalance.check_stride =
            std::max<size_t>(config_.rebalance.check_stride, 1);
        config_.rebalance.scan_chunk =
            std::max<size_t>(config_.rebalance.scan_chunk, 2);
        config_.rebalance.max_imbalance =
            std::max(config_.rebalance.max_imbalance, 1.1);
        config_.rebalance.coalesce_fraction =
            std::clamp(config_.rebalance.coalesce_fraction, 0.0,
                       config_.rebalance.max_imbalance * 0.45);
        next_uid_ = next_uid;
        auto map = std::make_unique<ShardMap>();
        map->boundaries.assign(bounds.value().begin(), bounds.value().end());
        for (size_t i = 0; i < man.shard_count; ++i) {
          const uint64_t uid = uids.value()[i];
          auto inner = Inner::OpenSnapshot(ShardSnapPath(uid));
          if (!inner.ok()) return inner.status();
          auto slot = std::make_shared<Slot>();
          slot->index = inner.take();
          slot->uid = uid;
          // Replays records past the shard snapshot's covered LSN
          // through the inner write path, truncates a torn tail, and
          // resumes logging (a missing log file starts a fresh one).
          LI_RETURN_IF_ERROR(slot->index.RecoverFromWal(ShardCfg(uid)));
          map->slots.push_back(std::move(slot));
        }
        if constexpr (requires(const Inner& i) {
                        {
                          i.config()
                        } -> std::convertible_to<inner_config_type>;
                      }) {
          config_.inner = map->slots[0]->index.config();
        }
        // Shard files MANIFEST never committed (a rebalance that died
        // before its flip) are garbage: remove them.
        RemoveOrphanShardFiles(
            {uids.value().begin(), uids.value().end()});
        durable_.store(true, std::memory_order_release);
        map_.store(map.release(), std::memory_order_seq_cst);
        maps_published_.fetch_add(1, std::memory_order_relaxed);
        if constexpr (kRebalanceCapable) {
          worker_ = std::thread([this] { WorkerLoop(); });
        }
        return Status::OK();
      }
    }

    bool durable() const { return durable_.load(std::memory_order_acquire); }

    Status wal_status() const {
      if constexpr (!kDurabilityCapable) {
        return Status::OK();
      } else {
        if (!durable()) return Status::OK();
        for (const auto& slot : SlotSnapshot()) {
          const Status st = slot->index.wal_status();
          if (!st.ok()) return st;
        }
        return Status::OK();
      }
    }

    wal::WalStats DurabilityStats() const {
      wal::WalStats agg{};
      if constexpr (kDurabilityCapable) {
        for (const auto& slot : SlotSnapshot()) {
          const wal::WalStats s = slot->index.DurabilityStats();
          agg.appends += s.appends;
          agg.syncs += s.syncs;
          agg.resets += s.resets;
          agg.bytes_appended += s.bytes_appended;
          agg.last_lsn = std::max(agg.last_lsn, s.last_lsn);
          agg.last_synced_lsn = std::max(agg.last_synced_lsn,
                                         s.last_synced_lsn);
          agg.base_lsn = std::max(agg.base_lsn, s.base_lsn);
        }
      }
      return agg;
    }

    Status SyncWal() {
      if constexpr (!kDurabilityCapable) {
        return Status::OK();
      } else {
        if (!durable()) return Status::OK();
        Status first = Status::OK();
        for (const auto& slot : SlotSnapshot()) {
          const Status st = slot->index.SyncWal();
          if (first.ok() && !st.ok()) first = st;
        }
        return first;
      }
    }

    // ---- persistence ----

    Status WriteSections(snapshot::SnapshotWriter& writer,
                         const std::string& prefix) {
      if constexpr (!kSnapshotCapable) {
        return Status::Unimplemented(
            "ShardedIndex snapshots need a flat key type and a "
            "section-snapshottable inner index");
      } else {
        // Drain the rebalancer so the map version captured below is
        // final — no shard gets retired mid-snapshot. The worker only
        // re-runs on a writer trigger, so the capture that follows sees
        // a stable map unless writes keep racing (documented above).
        WaitForRebalances();
        std::vector<key_type> boundaries;
        std::vector<std::shared_ptr<Slot>> slots;
        {
          EpochManager::Guard g(epoch_);
          const ShardMap* m = map_.load(std::memory_order_seq_cst);
          boundaries = m->boundaries;
          slots = m->slots;  // shared_ptrs outlive the pin
        }
        SnapshotManifest man;
        man.shard_count = slots.size();
        man.num_shards_cfg = config_.num_shards;
        man.cdf_sample = config_.cdf_sample;
        man.rebalance = config_.rebalance;
        LI_RETURN_IF_ERROR(writer.AddPod(prefix + "manifest", man));
        LI_RETURN_IF_ERROR(writer.AddArray(
            prefix + "bounds", std::span<const key_type>(boundaries),
            snapshot::SectionKind::kManifest));
        for (size_t i = 0; i < slots.size(); ++i) {
          LI_RETURN_IF_ERROR(slots[i]->index.WriteSections(
              writer, prefix + "s" + std::to_string(i) + "/"));
        }
        return Status::OK();
      }
    }

    /// Rebuilds the map and every shard from snapshot sections; fresh
    /// Impl only (build-then-share discipline, same as Build).
    Status LoadSections(const snapshot::SnapshotReader& reader,
                        const std::string& prefix) {
      if constexpr (!kSnapshotCapable) {
        return Status::Unimplemented(
            "ShardedIndex snapshots need a flat key type and a "
            "section-snapshottable inner index");
      } else {
        SnapshotManifest man;
        LI_RETURN_IF_ERROR(reader.GetPod(prefix + "manifest", &man));
        if (man.shard_count == 0) {
          return Status::InvalidArgument(
              "ShardedIndex snapshot manifest has zero shards");
        }
        auto bounds = reader.GetArray<key_type>(prefix + "bounds");
        if (!bounds.ok()) return bounds.status();
        if (bounds.value().size() != man.shard_count - 1) {
          return Status::InvalidArgument(
              "ShardedIndex snapshot boundary count disagrees with "
              "manifest");
        }
        for (size_t i = 1; i < bounds.value().size(); ++i) {
          if (!(bounds.value()[i - 1] < bounds.value()[i])) {
            return Status::InvalidArgument(
                "ShardedIndex snapshot boundaries are not strictly "
                "increasing");
          }
        }
        config_.num_shards = man.num_shards_cfg;
        config_.cdf_sample = man.cdf_sample;
        config_.rebalance = man.rebalance;
        // Re-apply Build's knob clamps: a corrupt or hand-edited
        // manifest must not re-enable oscillation or div-by-zero.
        config_.rebalance.check_stride =
            std::max<size_t>(config_.rebalance.check_stride, 1);
        config_.rebalance.scan_chunk =
            std::max<size_t>(config_.rebalance.scan_chunk, 2);
        config_.rebalance.max_imbalance =
            std::max(config_.rebalance.max_imbalance, 1.1);
        config_.rebalance.coalesce_fraction =
            std::clamp(config_.rebalance.coalesce_fraction, 0.0,
                       config_.rebalance.max_imbalance * 0.45);
        auto map = std::make_unique<ShardMap>();
        map->boundaries.assign(bounds.value().begin(), bounds.value().end());
        for (size_t i = 0; i < man.shard_count; ++i) {
          auto slot = std::make_shared<Slot>();
          LI_RETURN_IF_ERROR(slot->index.LoadSections(
              reader, prefix + "s" + std::to_string(i) + "/"));
          map->slots.push_back(std::move(slot));
        }
        if constexpr (requires(const Inner& i) {
                        {
                          i.config()
                        } -> std::convertible_to<inner_config_type>;
                      }) {
          config_.inner = map->slots[0]->index.config();
        }
        map_.store(map.release(), std::memory_order_seq_cst);
        maps_published_.fetch_add(1, std::memory_order_relaxed);
        if constexpr (kRebalanceCapable) {
          worker_ = std::thread([this] { WorkerLoop(); });
        }
        return Status::OK();
      }
    }

    // ---- stats ----

    index::WritableIndexStats Stats() const {
      index::WritableIndexStats agg{};
      for (const auto& slot : SlotSnapshot()) {
        Accumulate(agg, slot->index.Stats());
      }
      return agg;
    }

    index::ConcurrentIndexStats ConcurrentStats() const
      requires requires(const Inner& i) {
        { i.ConcurrentStats() } -> std::same_as<index::ConcurrentIndexStats>;
      }
    {
      index::ConcurrentIndexStats agg{};
      const std::vector<std::shared_ptr<Slot>> slots = SlotSnapshot();
      for (const auto& slot : slots) {
        const index::ConcurrentIndexStats cs = slot->index.ConcurrentStats();
        Accumulate(agg, cs);
        agg.freezes += cs.freezes;
        agg.background_merges += cs.background_merges;
        agg.writer_contended += cs.writer_contended;
        agg.states_published += cs.states_published;
        agg.states_retired += cs.states_retired;
        agg.states_reclaimed += cs.states_reclaimed;
        agg.epoch_fallback_pins += cs.epoch_fallback_pins;
        agg.log_entries += cs.log_entries;
      }
      agg.shards = slots.size();
      agg.shard_splits = splits_.load(std::memory_order_relaxed);
      agg.shard_coalesces = coalesces_.load(std::memory_order_relaxed);
      agg.shard_maps_published =
          maps_published_.load(std::memory_order_relaxed);
      agg.shard_imbalance = CurrentImbalance();
      return agg;
    }

    size_t NumShards() const { return SlotSnapshot().size(); }

    std::vector<key_type> Boundaries() const {
      EpochManager::Guard g(epoch_);
      return map_.load(std::memory_order_seq_cst)->boundaries;
    }

    std::vector<size_t> ShardSizes() const {
      std::vector<size_t> out;
      const std::vector<std::shared_ptr<Slot>> slots = SlotSnapshot();
      out.reserve(slots.size());
      for (const auto& slot : slots) out.push_back(slot->index.size());
      return out;
    }

    double CurrentImbalance() const {
      const std::vector<size_t> sizes = ShardSizes();
      if (sizes.empty()) return 1.0;
      size_t total = 0, max = 0;
      for (const size_t s : sizes) {
        total += s;
        max = std::max(max, s);
      }
      if (total == 0) return 1.0;
      const double mean = static_cast<double>(total) /
                          static_cast<double>(sizes.size());
      return static_cast<double>(max) / mean;
    }

    // ---- internals ----

    /// Shard covering `key` in `m`: shard i serves [b[i-1], b[i]).
    size_t ShardOf(const ShardMap& m, const key_type& key) const {
      return static_cast<size_t>(
          std::upper_bound(m.boundaries.begin(), m.boundaries.end(), key) -
          m.boundaries.begin());
    }

    /// Shared-ownership copy of the current map's slots: safe to use
    /// after the epoch pin drops (shared_ptr keeps slots alive even if
    /// the map version dies). The currency of every fan-out.
    std::vector<std::shared_ptr<Slot>> SlotSnapshot() const {
      EpochManager::Guard g(epoch_);
      return map_.load(std::memory_order_seq_cst)->slots;
    }

    /// The rebalancer's decision function — the ONE place the
    /// split/coalesce conditions live, shared by the writer-side monitor
    /// and the worker so the trigger and the action can never drift:
    /// scans shard masses (O(#shards) relaxed loads) and returns what
    /// the current map calls for. Splits take priority: an overloaded
    /// shard is a latency/contention problem, undersized ones are only
    /// routing overhead.
    struct RebalanceAction {
      enum class Kind { kNone, kSplit, kCoalesce };
      Kind kind = Kind::kNone;
      size_t shard = 0;  // split target, or the left of the coalesce pair
    };

    RebalanceAction PickAction(const ShardMap& m) const {
      const ShardRebalanceConfig& rc = config_.rebalance;
      const size_t shards = m.slots.size();
      std::vector<size_t> sizes(shards);
      size_t total = 0;
      for (size_t i = 0; i < shards; ++i) {
        sizes[i] = m.slots[i]->index.size();
        total += sizes[i];
      }
      RebalanceAction act;
      if (total == 0) return act;
      const double mean = static_cast<double>(total) /
                          static_cast<double>(shards);
      const size_t hot = static_cast<size_t>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      if (shards < rc.max_shards && sizes[hot] >= rc.min_split_keys &&
          static_cast<double>(sizes[hot]) > rc.max_imbalance * mean) {
        act.kind = RebalanceAction::Kind::kSplit;
        act.shard = hot;
        return act;
      }
      size_t cold_mass = 0;
      for (size_t i = 0; i + 1 < shards; ++i) {
        const size_t combined = sizes[i] + sizes[i + 1];
        if (static_cast<double>(combined) < rc.coalesce_fraction * mean &&
            (act.kind == RebalanceAction::Kind::kNone ||
             combined < cold_mass)) {
          act.kind = RebalanceAction::Kind::kCoalesce;
          act.shard = i;
          cold_mass = combined;
        }
      }
      return act;
    }

    /// Pages the full live key set of a shard out through lock-free
    /// chunked scans. Individual chunks need not form one consistent
    /// snapshot: every key the chunks miss or over-report was written
    /// after the seal, and the catch-up replay settles those (see
    /// docs/SHARDING.md, "why the snapshot may be fuzzy").
    std::vector<key_type> SnapshotKeys(const Inner& idx) const {
      std::vector<key_type> out;
      const size_t chunk = config_.rebalance.scan_chunk;
      key_type from = MinKey();
      for (;;) {
        std::vector<key_type> part = idx.Scan(from, chunk);
        size_t begin = 0;
        // The pivot key re-appears at the head of the next chunk
        // (Scan's `from` is inclusive); drop it.
        if (!out.empty() && !part.empty() && !(out.back() < part.front())) {
          begin = 1;
        }
        out.insert(out.end(), part.begin() + begin, part.end());
        if (part.size() < chunk) break;
        from = out.back();
      }
      return out;
    }

    /// Replaces `m` (the current map) with `fresh` and retires `m` to
    /// the epoch manager. Rebalance-worker only.
    void PublishMap(ShardMap* fresh, ShardMap* old) {
      map_.store(fresh, std::memory_order_seq_cst);
      maps_published_.fetch_add(1, std::memory_order_relaxed);
      epoch_.Retire(old);
    }

    /// Frees retired maps no reader can still reach. Worker/destructor
    /// context, no locks held.
    void ReclaimMaps() {
      std::vector<EpochManager::Retired> batch;
      epoch_.ReclaimTo(batch);
      EpochManager::Free(batch);
    }

    /// Re-opens a sealed slot after an aborted rebalance action: writes
    /// kept flowing into the inner index the whole time, so state is
    /// intact — only the catch-up log is dropped.
    void Unseal(Slot& slot) {
      std::unique_lock<std::shared_mutex> lk(slot.cutover_mu);
      slot.sealed = false;
      slot.catchup.clear();
    }

    // ---- durability internals (durable_mu_ held throughout) ----

    std::string ShardSnapPath(uint64_t uid) const {
      return dur_cfg_.path + "/s" + std::to_string(uid) + ".snap";
    }
    std::string ShardWalPath(uint64_t uid) const {
      return dur_cfg_.path + "/s" + std::to_string(uid) + ".wal";
    }
    std::string ManifestPath() const { return dur_cfg_.path + "/MANIFEST"; }

    /// The directory-level config specialized to one shard's log file;
    /// group-commit knobs and the (test-injected) backend pass through.
    wal::DurabilityConfig ShardCfg(uint64_t uid) const {
      wal::DurabilityConfig c = dur_cfg_;
      c.path = ShardWalPath(uid);
      return c;
    }

    /// Give `slot` a fresh uid, checkpoint it, start its log. The slot
    /// must not be receiving writes yet (EnableDurability is quiesced;
    /// rebalance replacement shards are attached before cutover).
    Status AttachShardDurability(Slot& slot)
      requires kDurabilityCapable
    {
      slot.uid = next_uid_++;
      LI_RETURN_IF_ERROR(slot.index.WriteSnapshot(ShardSnapPath(slot.uid)));
      return slot.index.EnableDurability(ShardCfg(slot.uid));
    }

    /// Atomically commit the routing state: boundaries + shard uids.
    /// The rename inside WriteFile is the durability commit point for
    /// every rebalance cutover.
    Status WriteManifestLocked(
        const std::vector<key_type>& boundaries,
        const std::vector<std::shared_ptr<Slot>>& slots)
      requires kDurabilityCapable
    {
      snapshot::SnapshotWriter w;
      SnapshotManifest man;
      man.shard_count = slots.size();
      man.num_shards_cfg = config_.num_shards;
      man.cdf_sample = config_.cdf_sample;
      man.rebalance = config_.rebalance;
      LI_RETURN_IF_ERROR(w.AddPod("manifest", man));
      LI_RETURN_IF_ERROR(
          w.AddArray("bounds", std::span<const key_type>(boundaries),
                     snapshot::SectionKind::kManifest));
      std::vector<uint64_t> uids;
      uids.reserve(slots.size());
      for (const auto& s : slots) uids.push_back(s->uid);
      LI_RETURN_IF_ERROR(w.AddArray("uids", std::span<const uint64_t>(uids),
                                    snapshot::SectionKind::kManifest));
      LI_RETURN_IF_ERROR(w.AddPod("nextuid", next_uid_));
      return w.WriteFile(ManifestPath());
    }

    /// Best-effort removal of one shard's file pair (a retired shard
    /// after its cutover committed, or an aborted attach).
    void DropShardFiles(uint64_t uid) const {
      ::unlink(ShardSnapPath(uid).c_str());
      ::unlink(ShardWalPath(uid).c_str());
    }

    /// Recovery hygiene: remove s<uid>.{snap,wal} pairs whose uid the
    /// MANIFEST does not reference (a rebalance that crashed before its
    /// commit point) and stale .tmp staging files.
    void RemoveOrphanShardFiles(const std::vector<uint64_t>& live) const {
      DIR* d = ::opendir(dur_cfg_.path.c_str());
      if (d == nullptr) return;
      std::vector<std::string> doomed;
      while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        const size_t n = name.size();
        if (n > 4 && name.compare(n - 4, 4, ".tmp") == 0) {
          doomed.push_back(name);
          continue;
        }
        if (n < 2 || name[0] != 's') continue;
        uint64_t uid = 0;
        size_t i = 1;
        while (i < n && name[i] >= '0' && name[i] <= '9') {
          uid = uid * 10 + static_cast<uint64_t>(name[i] - '0');
          ++i;
        }
        if (i == 1) continue;  // no digits after 's'
        const std::string ext = name.substr(i);
        if (ext != ".snap" && ext != ".wal") continue;
        if (std::find(live.begin(), live.end(), uid) == live.end()) {
          doomed.push_back(name);
        }
      }
      ::closedir(d);
      for (const std::string& name : doomed) {
        ::unlink((dur_cfg_.path + "/" + name).c_str());
      }
    }

    /// One split: seal -> snapshot -> build halves -> cutover (replay
    /// catch-up, publish new map). Readers never block; writers to the
    /// splitting shard block only during seal and cutover (brief).
    /// `published` reports whether a new map actually went out (false on
    /// the nothing-to-cut abort, which unseals and leaves state intact).
    Status SplitShard(ShardMap* m, size_t s, bool* published) {
      *published = false;
      std::shared_ptr<Slot> old = m->slots[s];
      {
        // Seal: after this exclusive section every writer dual-writes
        // into the catch-up log, so the snapshot below may be fuzzy
        // about post-seal writes without losing them.
        std::unique_lock<std::shared_mutex> lk(old->cutover_mu);
        old->sealed = true;
      }
      std::vector<key_type> snap = SnapshotKeys(old->index);
      const size_t half = snap.size() / 2;
      if (half == 0 || !(snap.front() < snap[half])) {
        Unseal(*old);  // nothing to cut strictly between
        return Status::OK();
      }
      const key_type mid = snap[half];
      auto left = std::make_shared<Slot>();
      auto right = std::make_shared<Slot>();
      Status st = left->index.Build(
          std::span<const key_type>(snap).first(half), config_.inner);
      if (st.ok()) {
        st = right->index.Build(
            std::span<const key_type>(snap).subspan(half), config_.inner);
      }
      if (!st.ok()) {
        Unseal(*old);
        return st;
      }
      // Durable cutovers serialize with Checkpoint() on durable_mu_ and
      // give the halves their own snapshot + fresh log *before* any
      // catch-up record is replayed, so the replay below lands in the
      // new logs through the ordinary durable write path.
      std::unique_lock<std::mutex> dlk;
      if constexpr (kDurabilityCapable) {
        if (durable_.load(std::memory_order_acquire)) {
          dlk = std::unique_lock<std::mutex>(durable_mu_);
          st = AttachShardDurability(*left);
          if (st.ok()) st = AttachShardDurability(*right);
          if (!st.ok()) {
            DropShardFiles(left->uid);
            DropShardFiles(right->uid);
            Unseal(*old);
            return st;
          }
        }
      }
      {
        // Cutover: no writer holds the slot (exclusive lock), so the
        // catch-up log is complete; replay it into the halves, commit
        // the MANIFEST (durable mode), publish the new map, retire the
        // old shard.
        std::unique_lock<std::shared_mutex> lk(old->cutover_mu);
        for (const auto& [k, tomb] : old->catchup) {
          Inner& dst = (k < mid) ? left->index : right->index;
          tomb ? dst.Erase(k) : dst.Insert(k);
        }
        old->catchup.clear();
        auto fresh = std::make_unique<ShardMap>();
        fresh->boundaries = m->boundaries;
        fresh->boundaries.insert(
            fresh->boundaries.begin() + static_cast<ptrdiff_t>(s), mid);
        fresh->slots = m->slots;
        fresh->slots[s] = left;
        fresh->slots.insert(
            fresh->slots.begin() + static_cast<ptrdiff_t>(s) + 1, right);
        if constexpr (kDurabilityCapable) {
          if (dlk.owns_lock()) {
            // Commit point, inside the critical section: sync the
            // replayed catch-up records, then flip MANIFEST to the new
            // shard set. No write can be acknowledged against the new
            // shards until the flip is on disk — a crash on either side
            // of the rename recovers every acknowledged write.
            Status dst = left->index.SyncWal();
            if (dst.ok()) dst = right->index.SyncWal();
            if (dst.ok()) {
              dst = WriteManifestLocked(fresh->boundaries, fresh->slots);
            }
            if (!dst.ok()) {
              // Abort: the old shard set stays authoritative (its log
              // holds every write, catch-up included — dual-write).
              DropShardFiles(left->uid);
              DropShardFiles(right->uid);
              old->sealed = false;  // cutover_mu already held exclusive
              return dst;
            }
          }
        }
        PublishMap(fresh.release(), m);
        old->retired = true;
        splits_.fetch_add(1, std::memory_order_relaxed);
      }
      if constexpr (kDurabilityCapable) {
        if (dlk.owns_lock()) DropShardFiles(old->uid);
      }
      *published = true;
      return Status::OK();
    }

    /// One coalesce of the adjacent pair (s, s+1): seal both ->
    /// snapshot both (disjoint ascending ranges, so concatenation is
    /// sorted) -> build the merged shard -> cutover both.
    Status CoalesceShards(ShardMap* m, size_t s, bool* published) {
      *published = false;
      std::shared_ptr<Slot> lo = m->slots[s];
      std::shared_ptr<Slot> hi = m->slots[s + 1];
      for (Slot* slot : {lo.get(), hi.get()}) {
        std::unique_lock<std::shared_mutex> lk(slot->cutover_mu);
        slot->sealed = true;
      }
      std::vector<key_type> snap = SnapshotKeys(lo->index);
      {
        std::vector<key_type> upper = SnapshotKeys(hi->index);
        snap.insert(snap.end(), upper.begin(), upper.end());
      }
      auto merged = std::make_shared<Slot>();
      Status st = merged->index.Build(
          std::span<const key_type>(snap), config_.inner);
      if (!st.ok()) {
        Unseal(*lo);
        Unseal(*hi);
        return st;
      }
      // Durable: the merged shard gets its snapshot + fresh log before
      // the catch-up replay (same protocol as SplitShard).
      std::unique_lock<std::mutex> dlk;
      if constexpr (kDurabilityCapable) {
        if (durable_.load(std::memory_order_acquire)) {
          dlk = std::unique_lock<std::mutex>(durable_mu_);
          st = AttachShardDurability(*merged);
          if (!st.ok()) {
            DropShardFiles(merged->uid);
            Unseal(*lo);
            Unseal(*hi);
            return st;
          }
        }
      }
      {
        // Lock order: always lower shard first (the only multi-lock
        // taker is this worker, so any consistent order suffices).
        std::unique_lock<std::shared_mutex> lk_lo(lo->cutover_mu);
        std::unique_lock<std::shared_mutex> lk_hi(hi->cutover_mu);
        // The two catch-up logs cover disjoint key ranges, so replay
        // order across them is immaterial.
        for (Slot* slot : {lo.get(), hi.get()}) {
          for (const auto& [k, tomb] : slot->catchup) {
            tomb ? merged->index.Erase(k) : merged->index.Insert(k);
          }
          slot->catchup.clear();
        }
        auto fresh = std::make_unique<ShardMap>();
        fresh->boundaries = m->boundaries;
        fresh->boundaries.erase(fresh->boundaries.begin() +
                                static_cast<ptrdiff_t>(s));
        fresh->slots = m->slots;
        fresh->slots[s] = merged;
        fresh->slots.erase(fresh->slots.begin() +
                           static_cast<ptrdiff_t>(s) + 1);
        if constexpr (kDurabilityCapable) {
          if (dlk.owns_lock()) {
            // Commit point (see SplitShard).
            Status dst = merged->index.SyncWal();
            if (dst.ok()) {
              dst = WriteManifestLocked(fresh->boundaries, fresh->slots);
            }
            if (!dst.ok()) {
              DropShardFiles(merged->uid);
              lo->sealed = false;  // cutover locks already held exclusive
              hi->sealed = false;
              return dst;
            }
          }
        }
        PublishMap(fresh.release(), m);
        lo->retired = true;
        hi->retired = true;
        coalesces_.fetch_add(1, std::memory_order_relaxed);
      }
      if constexpr (kDurabilityCapable) {
        if (dlk.owns_lock()) {
          DropShardFiles(lo->uid);
          DropShardFiles(hi->uid);
        }
      }
      *published = true;
      return Status::OK();
    }

    /// One rebalance cycle: act on what PickAction calls for, re-check,
    /// repeat until balanced, the per-cycle action cap hits, or an
    /// action cannot make progress (e.g. the hot shard has nothing to
    /// cut strictly between). `work_remaining` reports a cap-limited
    /// exit with the conditions still firing — the worker then re-arms
    /// itself, so one WaitForRebalances() suffices for callers however
    /// many actions the drift needs.
    Status DoRebalance(bool* work_remaining) {
      *work_remaining = false;
      const size_t cap = config_.rebalance.max_actions_per_cycle;
      for (size_t action = 0; action < cap; ++action) {
        ReclaimMaps();
        // The worker is the only map mutator, so its own load needs no
        // epoch pin — the map cannot be retired out from under it.
        ShardMap* m = map_.load(std::memory_order_seq_cst);
        const RebalanceAction act = PickAction(*m);
        if (act.kind == RebalanceAction::Kind::kNone) {  // balanced
          ReclaimMaps();
          return Status::OK();
        }
        bool published = false;
        if (act.kind == RebalanceAction::Kind::kSplit) {
          LI_RETURN_IF_ERROR(SplitShard(m, act.shard, &published));
        } else {
          LI_RETURN_IF_ERROR(CoalesceShards(m, act.shard, &published));
        }
        if (!published) {  // no progress possible on this pick; give up
          ReclaimMaps();   // the cycle (writers may re-trigger later)
          return Status::OK();
        }
      }
      *work_remaining =
          PickAction(*map_.load(std::memory_order_seq_cst)).kind !=
          RebalanceAction::Kind::kNone;
      ReclaimMaps();
      return Status::OK();
    }

    void WorkerLoop() {
      std::unique_lock<std::mutex> lk(rebalance_mu_);
      for (;;) {
        rebalance_cv_.wait(lk,
                           [&] { return rebalance_requested_ || shutdown_; });
        if (shutdown_) return;
        rebalance_requested_ = false;
        rebalance_running_ = true;
        lk.unlock();
        bool work_remaining = false;
        const Status st = DoRebalance(&work_remaining);
        lk.lock();
        rebalance_running_ = false;
        last_rebalance_status_ = st;
        // Cap-limited exit with conditions still firing: re-arm so the
        // next iteration continues (WaitForRebalances keeps waiting).
        if (st.ok() && work_remaining && !shutdown_) {
          rebalance_requested_ = true;
        }
        rebalance_done_cv_.notify_all();
      }
    }

    static void Accumulate(index::WritableIndexStats& agg,
                           const index::WritableIndexStats& s) {
      agg.lookups += s.lookups;
      agg.contains += s.contains;
      agg.inserts += s.inserts;
      agg.erases += s.erases;
      agg.delta_hits += s.delta_hits;
      agg.merges += s.merges;
      agg.merged_keys += s.merged_keys;
      agg.last_merge_ns = std::max(agg.last_merge_ns, s.last_merge_ns);
      agg.total_merge_ns += s.total_merge_ns;
      agg.delta_entries += s.delta_entries;
      agg.delta_bytes += s.delta_bytes;
      agg.base_keys += s.base_keys;
    }

    Config config_{};
    std::atomic<ShardMap*> map_{nullptr};
    mutable EpochManager epoch_;

    // Rebalance worker machinery (mirrors the merge worker's).
    std::thread worker_;
    mutable std::mutex rebalance_mu_;
    std::condition_variable rebalance_cv_;
    std::condition_variable rebalance_done_cv_;
    bool rebalance_requested_ = false;
    bool rebalance_running_ = false;
    bool shutdown_ = false;
    Status last_rebalance_status_{};

    std::atomic<uint64_t> write_tick_{0};
    std::atomic<uint64_t> splits_{0};
    std::atomic<uint64_t> coalesces_{0};
    std::atomic<uint64_t> maps_published_{0};

    // Durability state. `durable_` flips once (under durable_mu_) and
    // is read by the worker without it; everything else behind the flag
    // is touched only with durable_mu_ held.
    std::atomic<bool> durable_{false};
    mutable std::mutex durable_mu_;
    wal::DurabilityConfig dur_cfg_;
    uint64_t next_uid_ = 0;
  };

  std::unique_ptr<Impl> impl_;
};

}  // namespace li::concurrent

#endif  // LI_CONCURRENT_SHARDED_INDEX_H_
