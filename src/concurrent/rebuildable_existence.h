// RebuildableExistence<Base> — online-insertable existence filtering over
// any static index::ExistenceIndex (plain Bloom, learned Bloom,
// model-hash), behind the library-wide index::ConcurrentExistenceIndex
// contract.
//
// A static filter cannot admit new keys (a learned Bloom in particular
// must re-calibrate its threshold), so inserts land in an *exact* side
// set layered over the published filter:
//
//   State = { filter                      (covers `corpus`, immutable)
//           , corpus                      (sorted keys the filter was
//                                          built over; the rebuild input)
//           , pending                     (sorted keys mid-fold: handed
//                                          to an in-flight rebuild, still
//                                          answered exactly)
//           , frozen side set             (sorted inserted keys)
//           , write log                   (append-only, bounded) }
//
// MightContain answers log -> frozen -> pending -> filter under an epoch
// pin, lock-free; because every side structure is exact, the §5
// no-false-negative guarantee extends to inserted keys the moment Insert
// returns. Writers serialize on one mutex, append to the log, publish the
// count with a release store, and fold a full log into the frozen set as
// a fresh version (epoch retire/reclaim, same protocol as every
// concurrent class).
//
// When the side set outgrows `staleness` (side/corpus ratio), a
// background worker rebuilds the filter:
//   1. rotate: fold the log, move frozen -> pending, snapshot corpus +
//      pending (brief writer lock);
//   2. build: corpus' = corpus ∪ pending, run the caller-supplied
//      `Rebuilder` over corpus' off to the side — for a learned filter
//      this is where the threshold re-calibrates and the overflow Bloom
//      re-forms;
//   3. publish: new version {filter', corpus', pending = ∅} keeping
//      whatever the side set accumulated during the build; retire the
//      old version. On failure pending folds back into frozen and the
//      old filter keeps serving (exactness is never at risk — only
//      memory growth), surfacing through last_rebuild_status().
//
// The Rebuilder is a plain std::function so the LIF synthesizer can hand
// in closures owning a classifier (the OwnedLearnedBloom pattern);
// PlainBloomRebuilder covers the no-model case.

#ifndef LI_CONCURRENT_REBUILDABLE_EXISTENCE_H_
#define LI_CONCURRENT_REBUILDABLE_EXISTENCE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/status.h"
#include "common/timer.h"
#include "concurrent/epoch.h"
#include "index/concurrent_existence_index.h"
#include "index/concurrent_writable_index.h"
#include "index/existence_index.h"

namespace li::concurrent {

template <index::ExistenceIndex Base>
class RebuildableExistence {
 public:
  using base_type = Base;
  /// Builds `*out` over exactly `keys` (sorted, unique). Must leave the
  /// result with no false negatives over `keys`; called off-lock on the
  /// background worker, so it may train models, calibrate thresholds,
  /// allocate freely.
  using Rebuilder =
      std::function<Status(std::span<const std::string> keys, Base* out)>;

  struct Config {
    Rebuilder rebuild{};  // required: Build fails without one
    /// Side-set fraction of the corpus that triggers a background
    /// rebuild; 0 disables the automatic trigger (RequestRebuild still
    /// works).
    double staleness = 0.05;
    /// Floor before the ratio trigger arms (tiny corpora would otherwise
    /// rebuild on every insert).
    size_t min_side_keys = 256;
    /// Write-log capacity per version.
    size_t log_cap = 1024;
  };
  using config_type = Config;

  RebuildableExistence() = default;
  RebuildableExistence(RebuildableExistence&&) noexcept = default;
  RebuildableExistence& operator=(RebuildableExistence&&) noexcept = default;

  /// Builds the initial filter over `keys` (any order, duplicates
  /// dropped) via config.rebuild and starts the background worker. An
  /// empty span is allowed: the filter starts over the empty set. Not
  /// thread-safe against other methods (build-then-share). On failure
  /// the handle reverts to never-built: MightContain false, Insert
  /// dropped.
  Status Build(std::span<const std::string> keys, const Config& config) {
    impl_ = std::make_unique<Impl>();
    const Status st = impl_->Build(keys, config);
    if (!st.ok()) impl_.reset();
    return st;
  }

  // ---- reads: lock-free, safe from any thread ----

  bool MightContain(std::string_view key) const {
    return impl_ != nullptr && impl_->MightContain(key);
  }
  size_t num_keys() const { return impl_ ? impl_->num_keys() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  double MeasuredFpr(std::span<const std::string> non_keys) const {
    return index::MeasureFprOver(*this, non_keys);
  }
  index::ConcurrentIndexStats ConcurrentStats() const {
    return impl_ ? impl_->ConcurrentStats() : index::ConcurrentIndexStats{};
  }

  // ---- writes: safe from any thread, serialized internally ----

  /// Exact-membership insert: true iff the key was not already present
  /// (corpus or side set — exact, not filter-positive). Once this
  /// returns, MightContain(key) is true on every thread, permanently.
  bool Insert(std::string_view key) {
    return impl_ != nullptr && impl_->Insert(key);
  }

  // ---- rebuild control ----

  Status Rebuild() {
    return impl_ ? impl_->Rebuild()
                 : Status::FailedPrecondition(
                       "RebuildableExistence: not built");
  }
  void RequestRebuild() {
    if (impl_ != nullptr) impl_->RequestRebuild();
  }
  void WaitForRebuilds() {
    if (impl_ != nullptr) impl_->WaitForRebuilds();
  }
  Status last_rebuild_status() const {
    return impl_ ? impl_->last_rebuild_status() : Status::OK();
  }

  const Config& config() const {
    static const Config kEmpty{};
    return impl_ ? impl_->config_ : kEmpty;
  }

 private:
  struct State {
    std::shared_ptr<const Base> filter;  // covers *corpus, no more
    std::shared_ptr<const std::vector<std::string>> corpus;   // sorted
    std::shared_ptr<const std::vector<std::string>> pending;  // sorted
    std::vector<std::string> frozen;                          // sorted
    std::unique_ptr<std::string[]> log;
    size_t log_cap = 0;
    std::atomic<uint32_t> log_count{0};
  };

  struct alignas(64) ReadStripe {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> side_hits{0};
  };
  static constexpr size_t kStripes = 16;

  struct Impl {
    ~Impl() {
      {
        std::lock_guard<std::mutex> lk(rebuild_mu_);
        shutdown_ = true;
      }
      rebuild_cv_.notify_all();
      if (worker_.joinable()) worker_.join();
      delete state_.load(std::memory_order_relaxed);
      EpochManager::Free(deferred_free_);
    }

    Status Build(std::span<const std::string> keys, const Config& config) {
      if (!config.rebuild) {
        return Status::InvalidArgument(
            "RebuildableExistence: config.rebuild is required");
      }
      config_ = config;
      config_.log_cap = std::max<size_t>(config.log_cap, 2);
      auto corpus = std::make_shared<std::vector<std::string>>(keys.begin(),
                                                               keys.end());
      std::sort(corpus->begin(), corpus->end());
      corpus->erase(std::unique(corpus->begin(), corpus->end()),
                    corpus->end());
      auto filter = std::make_shared<Base>();
      if (!corpus->empty()) {
        LI_RETURN_IF_ERROR(config_.rebuild(
            std::span<const std::string>(*corpus), filter.get()));
      }
      key_count_.store(static_cast<int64_t>(corpus->size()),
                       std::memory_order_relaxed);
      State* s = new State;
      s->filter = std::move(filter);
      s->corpus = std::move(corpus);
      s->log = std::make_unique<std::string[]>(config_.log_cap);
      s->log_cap = config_.log_cap;
      state_.store(s, std::memory_order_seq_cst);
      worker_ = std::thread([this] { WorkerLoop(); });
      return Status::OK();
    }

    // ---- read path ----

    bool MightContain(std::string_view key) const {
      ReadStripe& stripe = Stripe();
      stripe.lookups.fetch_add(1, std::memory_order_relaxed);
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return false;
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      for (uint32_t i = n; i-- > 0;) {
        if (s->log[i] == key) {
          stripe.side_hits.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      if (SortedContains(s->frozen, key) ||
          (s->pending != nullptr && SortedContains(*s->pending, key))) {
        stripe.side_hits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      return s->filter->MightContain(key);
    }

    size_t num_keys() const {
      const int64_t n = key_count_.load(std::memory_order_relaxed);
      return n > 0 ? static_cast<size_t>(n) : 0;
    }

    size_t SizeBytes() const {
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return 0;
      // The filter plus the exact side structures; the corpus is the
      // rebuild input and part of what this structure owns, so it is
      // counted too (stored byte size, computed once per publish).
      size_t bytes = s->filter->SizeBytes() + corpus_bytes_;
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      for (const std::string& k : s->frozen) bytes += k.size();
      for (uint32_t i = 0; i < n; ++i) bytes += s->log[i].size();
      bytes += s->log_cap * sizeof(std::string);
      if (s->pending != nullptr) {
        for (const std::string& k : *s->pending) bytes += k.size();
      }
      return bytes;
    }

    index::ConcurrentIndexStats ConcurrentStats() const {
      index::ConcurrentIndexStats cs;
      uint64_t lookups = 0, hits = 0;
      for (const ReadStripe& r : read_stripes_) {
        lookups += r.lookups.load(std::memory_order_relaxed);
        hits += r.side_hits.load(std::memory_order_relaxed);
      }
      cs.lookups = lookups;
      cs.contains = lookups;
      cs.delta_hits = hits;
      cs.inserts = inserts_.load(std::memory_order_relaxed);
      cs.merges = rebuilds_.load(std::memory_order_relaxed);
      cs.background_merges = cs.merges;
      cs.merged_keys = merged_keys_.load(std::memory_order_relaxed);
      cs.last_merge_ns = static_cast<double>(
          last_rebuild_ns_.load(std::memory_order_relaxed));
      cs.total_merge_ns = static_cast<double>(
          total_rebuild_ns_.load(std::memory_order_relaxed));
      cs.freezes = freezes_.load(std::memory_order_relaxed);
      cs.writer_contended =
          writer_contended_.load(std::memory_order_relaxed);
      cs.states_published =
          states_published_.load(std::memory_order_relaxed);
      cs.states_retired = epoch_.retired_count();
      cs.states_reclaimed = epoch_.reclaimed_count();
      cs.epoch_fallback_pins = epoch_.fallback_pins();
      {
        EpochManager::Guard g(epoch_);
        const State* s = state_.load(std::memory_order_seq_cst);
        if (s != nullptr) {
          const uint32_t n = s->log_count.load(std::memory_order_acquire);
          cs.log_entries = n;
          cs.delta_entries = s->frozen.size() + n +
                             (s->pending != nullptr ? s->pending->size() : 0);
          cs.base_keys = s->corpus->size();
        }
      }
      cs.shards = 1;
      return cs;
    }

    // ---- write path ----

    bool Insert(std::string_view key) {
      std::unique_lock<std::mutex> lk(write_mu_, std::try_to_lock);
      if (!lk.owns_lock()) {
        writer_contended_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      State* s = state_.load(std::memory_order_relaxed);
      uint32_t n = s->log_count.load(std::memory_order_relaxed);
      if (ExactMemberLocked(*s, n, key)) {
        DrainDeferredFrees(lk);
        return false;
      }
      if (n == s->log_cap) {
        s = FreezeLocked(s, n);
        n = 0;
      }
      s->log[n] = std::string(key);
      s->log_count.store(n + 1, std::memory_order_release);
      key_count_.fetch_add(1, std::memory_order_relaxed);
      inserts_.fetch_add(1, std::memory_order_relaxed);
      const size_t side = s->frozen.size() + n + 1 +
                          (s->pending != nullptr ? s->pending->size() : 0);
      if (config_.staleness > 0.0 && side >= config_.min_side_keys &&
          static_cast<double>(side) >=
              config_.staleness *
                  static_cast<double>(std::max<size_t>(s->corpus->size(),
                                                       1))) {
        RequestRebuild();
      }
      DrainDeferredFrees(lk);
      return true;
    }

    // ---- rebuild control ----

    void RequestRebuild() {
      {
        std::lock_guard<std::mutex> lk(rebuild_mu_);
        rebuild_requested_ = true;
      }
      rebuild_cv_.notify_one();
    }

    Status Rebuild() {
      std::unique_lock<std::mutex> lk(rebuild_mu_);
      rebuild_requested_ = true;
      rebuild_cv_.notify_one();
      const uint64_t start = rebuild_cycles_;
      rebuild_done_cv_.wait(lk, [&] {
        return rebuild_cycles_ > start && !rebuild_requested_ &&
               !rebuild_running_;
      });
      return last_rebuild_status_;
    }

    void WaitForRebuilds() {
      std::unique_lock<std::mutex> lk(rebuild_mu_);
      rebuild_done_cv_.wait(
          lk, [&] { return !rebuild_requested_ && !rebuild_running_; });
    }

    Status last_rebuild_status() const {
      std::lock_guard<std::mutex> lk(rebuild_mu_);
      return last_rebuild_status_;
    }

    // ---- internals ----

    ReadStripe& Stripe() const {
      return read_stripes_[ThisThreadIndex() % kStripes];
    }

    static bool SortedContains(const std::vector<std::string>& v,
                               std::string_view key) {
      const auto it = std::lower_bound(v.begin(), v.end(), key);
      return it != v.end() && *it == key;
    }

    /// Exact membership under the writer mutex: corpus, pending, frozen
    /// and log are all exact sets, so Insert's return value and
    /// num_keys() count distinct keys, never filter positives.
    bool ExactMemberLocked(const State& s, uint32_t n,
                           std::string_view key) const {
      for (uint32_t i = n; i-- > 0;) {
        if (s.log[i] == key) return true;
      }
      if (SortedContains(s.frozen, key)) return true;
      if (s.pending != nullptr && SortedContains(*s.pending, key)) {
        return true;
      }
      return SortedContains(*s.corpus, key);
    }

    /// Folds the full write log into the frozen side set and publishes
    /// the result as a new version (same filter/corpus/pending). Caller
    /// holds the writer mutex. Returns the published version.
    State* FreezeLocked(State* s, uint32_t n) {
      State* ns = new State;
      ns->filter = s->filter;
      ns->corpus = s->corpus;
      ns->pending = s->pending;
      ns->frozen.reserve(s->frozen.size() + n);
      ns->frozen.insert(ns->frozen.end(), s->frozen.begin(),
                        s->frozen.end());
      for (uint32_t i = 0; i < n; ++i) ns->frozen.push_back(s->log[i]);
      std::sort(ns->frozen.begin(), ns->frozen.end());
      ns->log = std::make_unique<std::string[]>(config_.log_cap);
      ns->log_cap = config_.log_cap;
      PublishLocked(ns, s);
      freezes_.fetch_add(1, std::memory_order_relaxed);
      return ns;
    }

    void PublishLocked(State* fresh, State* old) {
      state_.store(fresh, std::memory_order_seq_cst);
      states_published_.fetch_add(1, std::memory_order_relaxed);
      epoch_.Retire(old);
      epoch_.ReclaimTo(deferred_free_);
    }

    void DrainDeferredFrees(std::unique_lock<std::mutex>& lk) {
      if (deferred_free_.empty()) return;
      std::vector<EpochManager::Retired> batch;
      batch.swap(deferred_free_);
      lk.unlock();
      EpochManager::Free(batch);
    }

    /// One background rebuild cycle (the worker's body).
    Status DoBackgroundRebuild() {
      Timer timer;
      std::shared_ptr<const std::vector<std::string>> corpus;
      std::shared_ptr<const std::vector<std::string>> pending;
      {
        // Phase 1 — rotate: fold the log, move frozen -> pending so the
        // set to bake in is an immutable snapshot readers keep answering
        // exactly (brief writer lock).
        std::unique_lock<std::mutex> lk(write_mu_);
        State* s = state_.load(std::memory_order_relaxed);
        const uint32_t n = s->log_count.load(std::memory_order_relaxed);
        if (n > 0) s = FreezeLocked(s, n);
        if (s->frozen.empty() && s->pending == nullptr) {
          DrainDeferredFrees(lk);
          return Status::OK();
        }
        // Copy, never move: `s` stays published until PublishLocked and
        // readers scan s->frozen lock-free the whole time.
        auto pend = std::make_shared<std::vector<std::string>>(s->frozen);
        if (s->pending != nullptr) {
          // A previous failed cycle left keys pending; fold them in.
          pend->insert(pend->end(), s->pending->begin(), s->pending->end());
          std::sort(pend->begin(), pend->end());
          pend->erase(std::unique(pend->begin(), pend->end()), pend->end());
        }
        State* ns = new State;
        ns->filter = s->filter;
        ns->corpus = s->corpus;
        ns->pending = pend;
        ns->log = std::make_unique<std::string[]>(config_.log_cap);
        ns->log_cap = config_.log_cap;
        PublishLocked(ns, s);
        corpus = ns->corpus;
        pending = pend;
        DrainDeferredFrees(lk);
      }
      // Phase 2 — build off to the side: corpus' = corpus ∪ pending,
      // rebuild the filter over it. No locks held; model training and
      // threshold calibration happen here.
      auto merged = std::make_shared<std::vector<std::string>>();
      merged->reserve(corpus->size() + pending->size());
      std::merge(corpus->begin(), corpus->end(), pending->begin(),
                 pending->end(), std::back_inserter(*merged));
      merged->erase(std::unique(merged->begin(), merged->end()),
                    merged->end());
      auto filter = std::make_shared<Base>();
      Status built = Status::OK();
      if (!merged->empty()) {
        built = config_.rebuild(std::span<const std::string>(*merged),
                                filter.get());
      }
      {
        // Phase 3 — publish (or, on failure, fold pending back so the
        // next cycle retries; the old filter keeps serving either way).
        std::unique_lock<std::mutex> lk(write_mu_);
        State* s = state_.load(std::memory_order_relaxed);
        State* ns = new State;
        if (built.ok()) {
          ns->filter = std::move(filter);
          ns->corpus = merged;
          ns->pending = nullptr;
          ns->frozen = s->frozen;  // copy: s stays published until swap
        } else {
          ns->filter = s->filter;
          ns->corpus = s->corpus;
          ns->pending = nullptr;
          ns->frozen = s->frozen;
          ns->frozen.insert(ns->frozen.end(), pending->begin(),
                            pending->end());
          std::sort(ns->frozen.begin(), ns->frozen.end());
        }
        // Keep the live log tail: readers of the new version must still
        // see the entries the old version's log holds.
        const uint32_t n = s->log_count.load(std::memory_order_relaxed);
        ns->log = std::make_unique<std::string[]>(config_.log_cap);
        ns->log_cap = config_.log_cap;
        for (uint32_t i = 0; i < n; ++i) ns->log[i] = s->log[i];
        ns->log_count.store(n, std::memory_order_relaxed);
        if (built.ok()) {
          size_t bytes = 0;
          for (const std::string& k : *merged) bytes += k.size();
          bytes += merged->size() * sizeof(std::string);
          corpus_bytes_ = bytes;
          merged_keys_.fetch_add(merged->size(), std::memory_order_relaxed);
          rebuilds_.fetch_add(1, std::memory_order_relaxed);
        }
        PublishLocked(ns, s);
        DrainDeferredFrees(lk);
      }
      const uint64_t ns_elapsed =
          static_cast<uint64_t>(timer.ElapsedNanos());
      last_rebuild_ns_.store(ns_elapsed, std::memory_order_relaxed);
      total_rebuild_ns_.fetch_add(ns_elapsed, std::memory_order_relaxed);
      return built;
    }

    void WorkerLoop() {
      std::unique_lock<std::mutex> lk(rebuild_mu_);
      for (;;) {
        rebuild_cv_.wait(lk, [&] { return rebuild_requested_ || shutdown_; });
        if (shutdown_) return;
        rebuild_requested_ = false;
        rebuild_running_ = true;
        lk.unlock();
        const Status st = DoBackgroundRebuild();
        lk.lock();
        rebuild_running_ = false;
        last_rebuild_status_ = st;
        ++rebuild_cycles_;
        rebuild_done_cv_.notify_all();
      }
    }

    Config config_{};
    std::atomic<State*> state_{nullptr};
    mutable std::mutex write_mu_;
    mutable EpochManager epoch_;
    std::atomic<int64_t> key_count_{0};
    // Stored bytes of the current corpus (strings + array), recomputed at
    // each successful publish; read under the epoch guard in SizeBytes.
    // Writer-mutex holders only for writes.
    std::atomic<size_t> corpus_bytes_{0};
    std::vector<EpochManager::Retired> deferred_free_;

    // Rebuild worker machinery.
    std::thread worker_;
    mutable std::mutex rebuild_mu_;
    std::condition_variable rebuild_cv_;
    std::condition_variable rebuild_done_cv_;
    bool rebuild_requested_ = false;
    bool rebuild_running_ = false;
    bool shutdown_ = false;
    uint64_t rebuild_cycles_ = 0;
    Status last_rebuild_status_{};

    // Counters.
    mutable ReadStripe read_stripes_[kStripes];
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> rebuilds_{0};
    std::atomic<uint64_t> merged_keys_{0};
    std::atomic<uint64_t> freezes_{0};
    std::atomic<uint64_t> writer_contended_{0};
    std::atomic<uint64_t> states_published_{0};
    std::atomic<uint64_t> last_rebuild_ns_{0};
    std::atomic<uint64_t> total_rebuild_ns_{0};
  };

  std::unique_ptr<Impl> impl_;
};

/// Rebuilder for the no-model case: a fresh plain Bloom filter sized to
/// the merged corpus at `target_fpr`.
inline RebuildableExistence<bloom::BloomFilter>::Rebuilder
PlainBloomRebuilder(double target_fpr) {
  return [target_fpr](std::span<const std::string> keys,
                      bloom::BloomFilter* out) -> Status {
    LI_RETURN_IF_ERROR(
        out->Init(std::max<size_t>(keys.size(), 1), target_fpr));
    for (const std::string& k : keys) out->Add(std::string_view(k));
    return Status::OK();
  };
}

}  // namespace li::concurrent

#endif  // LI_CONCURRENT_REBUILDABLE_EXISTENCE_H_
