// ConcurrentWritableIndex<Base> — the thread-safe write path over the
// Appendix-D.1 delta architecture, behind the library-wide
// index::ConcurrentWritableRangeIndex contract.
//
// Published state is an immutable *version*:
//
//   State = { base keys + built Base index   (shared with older versions)
//           , frozen delta                   (sorted runs + rank prefix sums)
//           , write log                      (append-only, bounded) }
//
// Readers pin an epoch (concurrent/epoch.h), load the current version
// with one atomic load, and answer from base + frozen + log-prefix with
// no locks: rank = base.Lookup + frozen.RankAdjustBelow + Σ log nets.
// Each log entry carries its *liveness delta* (net ∈ {-1,0,+1}) computed
// at append time, so any published log prefix yields an exact lower_bound
// rank over the live set as of that prefix — the log-count store is the
// serialization point.
//
// Writers serialize on one mutex (contention is counted, and sharding —
// sharded_index.h — is the documented escape hatch), append to the log,
// and publish the new count with a release store. A full log is *frozen*:
// folded into the sorted delta, republished as a new version, the old one
// retired to the epoch manager.
//
// Merges run on a background worker so no caller ever pays the
// merge+retrain latency inline:
//   1. rotate: fold any pending log so the delta to merge is a frozen,
//      immutable snapshot (brief writer lock);
//   2. build: merge base ∪ delta into a fresh key array and train a new
//      Base over it — off to the side, no locks held;
//   3. publish: rebase whatever the delta accumulated *during* the build
//      onto the new base (per-key membership recheck), swap the version
//      in atomically, retire the old one (brief writer lock).
// Readers never block on any phase; they keep serving from whichever
// version they pinned, and the old base is reclaimed once its epoch
// drains. Merge timing reuses the pluggable dynamic::MergePolicy,
// evaluated by writers and executed by the worker.
//
// Single-threaded use degenerates to exact DeltaRangeIndex semantics
// (same oracle conformance suite), which is what lets the LIF synthesizer
// qualify concurrent candidates with the same contract as everything
// else.
//
// Durability (index::DurableIndex; docs/DURABILITY.md): with
// EnableDurability attached, Write appends a CRC-framed record to the
// write-ahead log under the writer mutex *before* the log-entry publish
// — so WAL order, LSN order and acknowledgement order coincide — and
// recovery (OpenSnapshot + RecoverFromWal) replays the tail through the
// same Write path. WriteSnapshot publishes the covered LSN inside its
// captured version and truncates the log behind it.

#ifndef LI_CONCURRENT_CONCURRENT_WRITABLE_INDEX_H_
#define LI_CONCURRENT_CONCURRENT_WRITABLE_INDEX_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "concurrent/epoch.h"
#include "dynamic/delta_buffer.h"
#include "dynamic/merge_policy.h"
#include "index/approx.h"
#include "index/concurrent_writable_index.h"
#include "index/range_index.h"
#include "index/snapshottable.h"
#include "index/writable_range_index.h"
#include "snapshot/snapshot.h"
#include "wal/wal.h"

namespace li::concurrent {

template <index::RangeIndex Base>
class ConcurrentWritableIndex {
 public:
  using key_type = typename Base::key_type;
  using base_config_type = typename Base::config_type;

  struct Config {
    base_config_type base{};
    dynamic::MergePolicy policy{};
    /// Write-log capacity: how many writes a version absorbs before the
    /// log is folded into the sorted frozen delta. Larger amortizes the
    /// fold better; smaller keeps the per-read log scan shorter.
    size_t log_cap = 1024;
  };
  using config_type = Config;

  ConcurrentWritableIndex() = default;
  ConcurrentWritableIndex(ConcurrentWritableIndex&&) noexcept = default;
  ConcurrentWritableIndex& operator=(ConcurrentWritableIndex&&) noexcept =
      default;

  /// Builds the initial version over `keys` (sorted, strictly increasing;
  /// copied — merges replace the array) and starts the background merge
  /// worker. Not thread-safe against other methods (build-then-share, the
  /// same discipline as every container). On failure the handle reverts
  /// to the never-built state: reads answer empty, writes return false,
  /// Merge fails cleanly — never UB (the library-wide convention).
  Status Build(std::span<const key_type> keys, const Config& config) {
    impl_ = std::make_unique<Impl>();
    const Status st = impl_->Build(keys, config);
    if (!st.ok()) impl_.reset();
    return st;
  }

  // ---- reads: lock-free, safe from any thread ----

  size_t Lookup(const key_type& key) const {
    return impl_ ? impl_->Lookup(key) : 0;
  }
  size_t LowerBound(const key_type& key) const { return Lookup(key); }
  index::Approx ApproxPos(const key_type& key) const {
    return impl_ ? impl_->ApproxPos(key) : index::Approx{};
  }
  void LookupBatch(std::span<const key_type> keys,
                   std::span<size_t> out) const {
    if (impl_ != nullptr) {
      impl_->LookupBatch(keys, out);
    } else {
      for (size_t i = 0; i < out.size(); ++i) out[i] = 0;
    }
  }
  bool Contains(const key_type& key) const {
    return impl_ != nullptr && impl_->Contains(key);
  }
  std::vector<key_type> Scan(const key_type& from, size_t limit) const {
    return impl_ ? impl_->Scan(from, limit) : std::vector<key_type>{};
  }
  size_t size() const { return impl_ ? impl_->size() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }

  // ---- writes: safe from any thread, serialized internally ----

  bool Insert(const key_type& key) {
    return impl_ != nullptr && impl_->Write(key, /*tombstone=*/false);
  }
  bool Erase(const key_type& key) {
    return impl_ != nullptr && impl_->Write(key, /*tombstone=*/true);
  }

  // ---- merge control ----

  /// Synchronous merge cycle: folds everything written before the call
  /// into the base. Blocks the caller only; readers stay lock-free.
  Status Merge() {
    return impl_ ? impl_->Merge()
                 : Status::FailedPrecondition(
                       "ConcurrentWritableIndex: not built");
  }
  /// Asynchronous merge trigger; coalesces with a pending request.
  void RequestMerge() {
    if (impl_ != nullptr) impl_->RequestMerge();
  }
  /// Blocks until no merge is pending or running (the quiesce point).
  void WaitForMerges() {
    if (impl_ != nullptr) impl_->WaitForMerges();
  }
  /// Outcome of the most recent background merge cycle.
  Status last_merge_status() const {
    return impl_ ? impl_->last_merge_status() : Status::OK();
  }

  // ---- Durability (index::DurableIndex; docs/DURABILITY.md) ----

  /// WAL support needs a flat key type (records carry the raw key bytes).
  static constexpr bool kDurabilityCapable =
      std::is_trivially_copyable_v<key_type>;

  /// Attach a fresh write-ahead log at cfg.path; subsequent writes are
  /// log-then-apply. Call after Build (or after a snapshot): earlier
  /// writes are only recoverable through a snapshot containing them.
  Status EnableDurability(const wal::DurabilityConfig& cfg) {
    return impl_ ? impl_->EnableDurability(cfg)
                 : Status::FailedPrecondition(
                       "ConcurrentWritableIndex: not built");
  }

  /// Replay the log past the snapshot's covered LSN through the normal
  /// write path, then resume logging to the same file (torn tail
  /// truncated, missing file started fresh).
  Status RecoverFromWal(const wal::DurabilityConfig& cfg) {
    return impl_ ? impl_->RecoverFromWal(cfg)
                 : Status::FailedPrecondition(
                       "ConcurrentWritableIndex: not built");
  }

  bool durable() const { return impl_ != nullptr && impl_->durable(); }

  /// Sticky status of the logging path (an append failure poisons the
  /// log; the in-memory index keeps serving).
  Status wal_status() const {
    return impl_ ? impl_->wal_status() : Status::OK();
  }

  wal::WalStats DurabilityStats() const {
    return impl_ ? impl_->DurabilityStats() : wal::WalStats{};
  }

  /// Flush the group-commit window now.
  Status SyncWal() { return impl_ ? impl_->SyncWal() : Status::OK(); }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // WriteSnapshot quiesces writers on the writer mutex just long enough
  // to fold the live write log + frozen delta into one sorted entry list
  // (the same fold the freeze path uses) and pin the base via its
  // shared_ptr; serialization then runs outside the lock against the
  // pinned immutable pieces. Readers stay lock-free throughout, and an
  // in-flight background merge publishes before or after the capture,
  // never during (publish takes the same mutex). OpenSnapshot rebuilds a
  // fully writable index: the key array is copied (merges replace it),
  // the base model loads against the copy without retraining, and the
  // background merge worker restarts.

  /// Snapshot support needs a flat key type and a base that can persist
  /// its model against a caller-owned key span (the RMI family).
  static constexpr bool kSnapshotCapable =
      std::is_trivially_copyable_v<key_type> &&
      index::DataSpanSnapshottable<Base>;

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    if (impl_ == nullptr) {
      return Status::FailedPrecondition("ConcurrentWritableIndex: not built");
    }
    return impl_->WriteSections(writer, prefix);
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    impl_ = std::make_unique<Impl>();
    const Status st = impl_->LoadSections(reader, prefix);
    if (!st.ok()) impl_.reset();
    return st;
  }

  Status WriteSnapshot(const std::string& path) const {
    LI_RETURN_IF_ERROR(index::WriteSnapshotViaSections(*this, path));
    // The snapshot is published; truncate the log behind the LSN it
    // covers (no-op when durability is off).
    return impl_ ? impl_->TruncateWalAfterPublish() : Status::OK();
  }

  static Result<ConcurrentWritableIndex> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<ConcurrentWritableIndex>(path,
                                                                   opts);
  }

  index::WritableIndexStats Stats() const {
    return impl_ ? impl_->Stats() : index::WritableIndexStats{};
  }
  index::ConcurrentIndexStats ConcurrentStats() const {
    return impl_ ? impl_->ConcurrentStats() : index::ConcurrentIndexStats{};
  }
  const Config& config() const {
    static const Config kEmpty{};
    return impl_ ? impl_->config_ : kEmpty;
  }

 private:
  struct SnapshotCfg {
    dynamic::MergePolicy policy{};
    uint64_t log_cap = 1024;
  };
  static_assert(std::is_trivially_copyable_v<dynamic::MergePolicy>,
                "MergePolicy is persisted verbatim in snapshots");

  struct LogEntry {
    key_type key{};
    int8_t net = 0;           // liveness delta of this write: -1 / 0 / +1
    bool tombstone = false;   // Erase vs Insert
    bool live_before = false; // key was live immediately before this write
  };

  /// One immutable published version. Only `log[log_count..)` and
  /// `log_count` itself ever change after publication, and only under the
  /// writer mutex; everything a reader dereferences is behind the
  /// release-store of `log_count` or was published with the version.
  struct State {
    std::shared_ptr<const std::vector<key_type>> base_keys;
    std::shared_ptr<const Base> base;  // spans *base_keys
    dynamic::DeltaBuffer<key_type> frozen;
    std::unique_ptr<LogEntry[]> log;
    size_t log_cap = 0;
    std::atomic<uint32_t> log_count{0};
  };

  struct alignas(64) ReadStripe {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> contains{0};
    std::atomic<uint64_t> delta_hits{0};
  };
  static constexpr size_t kStripes = 16;

  struct Impl {
    ~Impl() {
      {
        std::lock_guard<std::mutex> lk(merge_mu_);
        shutdown_ = true;
      }
      merge_cv_.notify_all();
      if (worker_.joinable()) worker_.join();
      delete state_.load(std::memory_order_relaxed);
      EpochManager::Free(deferred_free_);  // collected but not yet freed
      // epoch_ frees everything still on its retired list.
    }

    Status Build(std::span<const key_type> keys, const Config& config) {
      config_ = config;
      config_.log_cap = std::max<size_t>(config.log_cap, 2);
      auto bk = std::make_shared<std::vector<key_type>>(keys.begin(),
                                                        keys.end());
      auto base = std::make_shared<Base>();
      LI_RETURN_IF_ERROR(
          base->Build(std::span<const key_type>(*bk), config_.base));
      State* s = new State;
      s->base_keys = std::move(bk);
      s->base = std::move(base);
      s->log = std::make_unique<LogEntry[]>(config_.log_cap);
      s->log_cap = config_.log_cap;
      state_.store(s, std::memory_order_seq_cst);
      live_count_.store(static_cast<int64_t>(keys.size()),
                        std::memory_order_relaxed);
      worker_ = std::thread([this] { WorkerLoop(); });
      return Status::OK();
    }

    // ---- read path ----

    size_t Lookup(const key_type& key) const {
      Stripe().lookups.fetch_add(1, std::memory_order_relaxed);
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return 0;
      return RawLookupIn(*s, s->log_count.load(std::memory_order_acquire),
                         key);
    }

    index::Approx ApproxPos(const key_type& key) const {
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return index::Approx{};
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      const size_t pos = RawLookupIn(*s, n, key);
      return index::Approx::Exact(pos, LiveCountIn(*s, n));
    }

    void LookupBatch(std::span<const key_type> keys,
                     std::span<size_t> out) const {
      const size_t m = std::min(keys.size(), out.size());
      Stripe().lookups.fetch_add(m, std::memory_order_relaxed);
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) {
        for (size_t i = 0; i < m; ++i) out[i] = 0;
        return;
      }
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      // Base ranks through the base's native batch path (the RMI software
      // pipeline), then the delta adjustment per key — with an empty
      // delta this runs at base batch throughput.
      index::LookupBatch(*s->base, keys, out);
      if (s->frozen.empty() && n == 0) return;
      const LogEntry* log = s->log.get();
      for (size_t i = 0; i < m; ++i) {
        int64_t adj = s->frozen.RankAdjustBelow(keys[i]);
        for (uint32_t j = 0; j < n; ++j) {
          if (log[j].key < keys[i]) adj += log[j].net;
        }
        out[i] = static_cast<size_t>(static_cast<int64_t>(out[i]) + adj);
      }
    }

    bool Contains(const key_type& key) const {
      ReadStripe& st = Stripe();
      st.lookups.fetch_add(1, std::memory_order_relaxed);
      st.contains.fetch_add(1, std::memory_order_relaxed);
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return false;
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      const LogEntry* log = s->log.get();
      for (uint32_t i = n; i-- > 0;) {  // newest write wins
        if (log[i].key == key) {
          st.delta_hits.fetch_add(1, std::memory_order_relaxed);
          return !log[i].tombstone;
        }
      }
      if (const auto e = s->frozen.Find(key)) {
        st.delta_hits.fetch_add(1, std::memory_order_relaxed);
        return !e->tombstone;
      }
      return BaseContainsIn(*s, key);
    }

    std::vector<key_type> Scan(const key_type& from, size_t limit) const {
      std::vector<key_type> out;
      if (limit == 0) return out;
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return out;
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      const LogEntry* log = s->log.get();
      // Newest-wins, sorted view of the log entries with key >= from.
      std::vector<std::pair<key_type, uint32_t>> lv;
      lv.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!(log[i].key < from)) lv.emplace_back(log[i].key, i);
      }
      std::sort(lv.begin(), lv.end());
      size_t w = 0;
      for (size_t i = 0; i < lv.size(); ++i) {
        if (i + 1 < lv.size() && lv[i + 1].first == lv[i].first) continue;
        lv[w++] = lv[i];  // last (newest) entry per key survives
      }
      lv.resize(w);
      // Streamed three-way merge — base array vs frozen delta vs log
      // view, newest source shadowing equal keys (log > frozen > base),
      // tombstones cancelling base keys as the frontier passes them.
      // Every delta entry up to the stop point is visited (never skipped
      // on a size heuristic: a run of base-key tombstones contributes no
      // output yet must keep cancelling), and the visit stops as soon as
      // the window fills — O(limit + delta-entries-before-stop) work.
      const std::vector<key_type>& bk = *s->base_keys;
      size_t bi = s->base->Lookup(from);
      size_t li = 0;
      bool done = false;
      auto emit = [&](const key_type& k, bool tombstone) {
        while (bi < bk.size() && bk[bi] < k && out.size() < limit) {
          out.push_back(bk[bi++]);
        }
        if (out.size() >= limit) {
          done = true;
          return;
        }
        if (bi < bk.size() && bk[bi] == k) ++bi;  // shadowed base copy
        if (!tombstone) out.push_back(k);
        done = out.size() >= limit;
      };
      s->frozen.VisitFrom(from, [&](const dynamic::DeltaEntry<key_type>& fe) {
        while (li < lv.size() && lv[li].first < fe.key && !done) {
          const LogEntry& e = log[lv[li].second];
          emit(e.key, e.tombstone);
          ++li;
        }
        if (done) return false;
        if (li < lv.size() && lv[li].first == fe.key) {
          const LogEntry& e = log[lv[li].second];
          emit(e.key, e.tombstone);  // log shadows frozen
          ++li;
        } else {
          emit(fe.key, fe.tombstone);
        }
        return !done;
      });
      while (li < lv.size() && !done) {
        const LogEntry& e = log[lv[li].second];
        emit(e.key, e.tombstone);
        ++li;
      }
      while (bi < bk.size() && out.size() < limit) out.push_back(bk[bi++]);
      return out;
    }

    size_t size() const {
      const int64_t n = live_count_.load(std::memory_order_relaxed);
      return n > 0 ? static_cast<size_t>(n) : 0;
    }

    size_t SizeBytes() const {
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return 0;
      return s->base->SizeBytes() + s->frozen.SizeBytes() +
             s->log_cap * sizeof(LogEntry);
    }

    // ---- write path ----

    bool Write(const key_type& key, bool tombstone) {
      std::unique_lock<std::mutex> lk(write_mu_, std::try_to_lock);
      if (!lk.owns_lock()) {
        writer_contended_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      // Log-then-apply: the WAL append happens under the writer mutex
      // before the in-memory log-entry publish, so WAL order == LSN
      // order == acknowledgement order, and a crash after the append
      // but before the publish at worst replays a write the caller was
      // never acked for (safe: replay goes through this same path).
      WalAppendLocked(key, tombstone);
      State* s = state_.load(std::memory_order_relaxed);
      uint32_t n = s->log_count.load(std::memory_order_relaxed);
      if (n == s->log_cap) {
        s = FreezeLocked(s, n);
        n = 0;
      }
      const bool live_before = LiveLocked(*s, n, key);
      LogEntry& e = s->log[n];
      e.key = key;
      e.tombstone = tombstone;
      e.live_before = live_before;
      e.net = static_cast<int8_t>((tombstone ? 0 : 1) - (live_before ? 1 : 0));
      s->log_count.store(n + 1, std::memory_order_release);
      live_count_.fetch_add(e.net, std::memory_order_relaxed);
      (tombstone ? erases_ : inserts_).fetch_add(1, std::memory_order_relaxed);
      ++writes_since_merge_;
      const size_t delta_entries = s->frozen.entry_count() + n + 1;
      if (dynamic::ShouldMerge(config_.policy, delta_entries,
                               s->base_keys->size(), writes_since_merge_,
                               ReadsSinceMerge())) {
        RequestMerge();
      }
      const bool changed = tombstone ? live_before : !live_before;
      DrainDeferredFrees(lk);  // heavy frees happen outside the lock
      return changed;
    }

    // ---- merge control ----

    void RequestMerge() {
      {
        std::lock_guard<std::mutex> lk(merge_mu_);
        merge_requested_ = true;
      }
      merge_cv_.notify_one();
    }

    Status Merge() {
      std::unique_lock<std::mutex> lk(merge_mu_);
      merge_requested_ = true;
      merge_cv_.notify_one();
      const uint64_t start = merge_cycles_;
      merge_done_cv_.wait(lk, [&] {
        return merge_cycles_ > start && !merge_requested_ && !merge_running_;
      });
      return last_merge_status_;
    }

    void WaitForMerges() {
      std::unique_lock<std::mutex> lk(merge_mu_);
      merge_done_cv_.wait(lk,
                          [&] { return !merge_requested_ && !merge_running_; });
    }

    Status last_merge_status() const {
      std::lock_guard<std::mutex> lk(merge_mu_);
      return last_merge_status_;
    }

    // ---- persistence ----

    Status WriteSections(snapshot::SnapshotWriter& writer,
                         const std::string& prefix) const {
      if constexpr (!kSnapshotCapable) {
        return Status::Unimplemented(
            "ConcurrentWritableIndex snapshots need a flat key type and a "
            "section-snapshottable base");
      } else {
        // Capture a consistent point-in-time version under the writer
        // mutex: writers and merge publishes are excluded for the O(delta)
        // fold only; readers are undisturbed.
        std::shared_ptr<const std::vector<key_type>> keys;
        std::shared_ptr<const Base> base;
        std::vector<dynamic::DeltaEntry<key_type>> folded;
        SnapshotCfg cfg;
        wal::WalSnapshotMeta wal_meta;
        bool durable = false;
        {
          std::lock_guard<std::mutex> lk(write_mu_);
          const State* s = state_.load(std::memory_order_relaxed);
          if (s == nullptr) {
            return Status::FailedPrecondition(
                "ConcurrentWritableIndex: not built");
          }
          const uint32_t n = s->log_count.load(std::memory_order_relaxed);
          // Redundancy drop is legal here regardless of a pending rebase:
          // the snapshot pairs the fold with this *same* captured base.
          folded = FoldedEntries(*s, n, /*drop_redundant=*/true);
          keys = s->base_keys;
          base = s->base;
          cfg.policy = config_.policy;
          cfg.log_cap = config_.log_cap;
          if (wal_ != nullptr) {
            // Every record up to last_lsn is reflected in this capture
            // (appends serialize on the same mutex), so the snapshot
            // covers it and truncation behind it is safe after publish.
            wal_meta.covered_lsn = wal_->stats().last_lsn;
            snapshot_covered_lsn_ = wal_meta.covered_lsn;
            durable = true;
          }
        }
        // Serialization outside the lock: every captured piece is
        // immutable and shared_ptr-pinned (a concurrent merge may retire
        // the version, not free these).
        LI_RETURN_IF_ERROR(writer.AddPod(prefix + "cfg", cfg));
        if (durable) {
          LI_RETURN_IF_ERROR(writer.AddPod(prefix + "wal", wal_meta));
        }
        LI_RETURN_IF_ERROR(
            writer.AddArray(prefix + "keys", std::span<const key_type>(*keys),
                            snapshot::SectionKind::kKeys));
        LI_RETURN_IF_ERROR(base->WriteSections(writer, prefix + "base/",
                                               /*include_keys=*/false));
        std::vector<key_type> dkeys;
        std::vector<uint8_t> dmeta;
        dkeys.reserve(folded.size());
        dmeta.reserve(folded.size());
        for (const dynamic::DeltaEntry<key_type>& e : folded) {
          dkeys.push_back(e.key);
          dmeta.push_back(static_cast<uint8_t>((e.tombstone ? 1 : 0) |
                                               (e.in_base ? 2 : 0)));
        }
        LI_RETURN_IF_ERROR(
            writer.AddArray(prefix + "dkeys", std::span<const key_type>(dkeys),
                            snapshot::SectionKind::kDelta));
        return writer.AddArray(prefix + "dmeta",
                               std::span<const uint8_t>(dmeta),
                               snapshot::SectionKind::kDelta);
      }
    }

    /// Rebuilds a live index from snapshot sections: fresh Impl only
    /// (build-then-share discipline, same as Build).
    Status LoadSections(const snapshot::SnapshotReader& reader,
                        const std::string& prefix) {
      if constexpr (!kSnapshotCapable) {
        return Status::Unimplemented(
            "ConcurrentWritableIndex snapshots need a flat key type and a "
            "section-snapshottable base");
      } else {
        SnapshotCfg cfg;
        LI_RETURN_IF_ERROR(reader.GetPod(prefix + "cfg", &cfg));
        auto keys = reader.GetArray<key_type>(prefix + "keys");
        if (!keys.ok()) return keys.status();
        auto dkeys = reader.GetArray<key_type>(prefix + "dkeys");
        if (!dkeys.ok()) return dkeys.status();
        auto dmeta = reader.GetArray<uint8_t>(prefix + "dmeta");
        if (!dmeta.ok()) return dmeta.status();
        if (dkeys.value().size() != dmeta.value().size()) {
          return Status::InvalidArgument(
              "ConcurrentWritableIndex snapshot delta arrays disagree in "
              "size");
        }
        // Copied, not mapped: merges replace the key array after restart.
        auto bk = std::make_shared<std::vector<key_type>>(
            keys.value().begin(), keys.value().end());
        auto base = std::make_shared<Base>();
        LI_RETURN_IF_ERROR(base->LoadSections(
            reader, prefix + "base/", std::span<const key_type>(*bk)));
        std::vector<dynamic::DeltaEntry<key_type>> entries;
        entries.reserve(dkeys.value().size());
        for (size_t i = 0; i < dkeys.value().size(); ++i) {
          const uint8_t m = dmeta.value()[i];
          if ((m & ~uint8_t{3}) != 0) {
            return Status::InvalidArgument(
                "ConcurrentWritableIndex snapshot delta flags are corrupt");
          }
          entries.push_back(dynamic::DeltaEntry<key_type>{
              dkeys.value()[i], (m & 1) != 0, (m & 2) != 0});
        }
        wal::WalSnapshotMeta wal_meta;  // absent in pre-durability snaps
        const Status wal_st = reader.GetPod(prefix + "wal", &wal_meta);
        if (wal_st.ok()) {
          covered_lsn_ = wal_meta.covered_lsn;
        } else if (wal_st.code() == StatusCode::kNotFound) {
          covered_lsn_ = 0;
        } else {
          return wal_st;
        }
        config_.policy = cfg.policy;
        config_.log_cap = std::max<size_t>(cfg.log_cap, 2);
        if constexpr (requires {
                        {
                          base->config()
                        } -> std::convertible_to<base_config_type>;
                      }) {
          config_.base = base->config();
        }
        State* s = new State;
        s->base_keys = std::move(bk);
        s->base = std::move(base);
        s->frozen = dynamic::DeltaBuffer<key_type>::FromSortedEntries(
            std::span<const dynamic::DeltaEntry<key_type>>(entries), 2);
        s->log = std::make_unique<LogEntry[]>(config_.log_cap);
        s->log_cap = config_.log_cap;
        const int64_t live = static_cast<int64_t>(s->base_keys->size()) +
                             s->frozen.LiveAdjustTotal();
        state_.store(s, std::memory_order_seq_cst);
        live_count_.store(live, std::memory_order_relaxed);
        worker_ = std::thread([this] { WorkerLoop(); });
        return Status::OK();
      }
    }

    // ---- durability ----

    Status EnableDurability(const wal::DurabilityConfig& cfg) {
      if constexpr (!kDurabilityCapable) {
        return Status::Unimplemented(
            "ConcurrentWritableIndex durability needs a flat key type");
      } else {
        std::lock_guard<std::mutex> lk(write_mu_);
        if (wal_ != nullptr) {
          return Status::FailedPrecondition("durability already enabled");
        }
        auto w = wal::WalWriter::Create(cfg.path, covered_lsn_,
                                        sizeof(key_type), cfg);
        if (!w.ok()) return w.status();
        wal_ = std::make_unique<wal::WalWriter>(w.take());
        wal_status_ = Status::OK();
        return Status::OK();
      }
    }

    Status RecoverFromWal(const wal::DurabilityConfig& cfg) {
      if constexpr (!kDurabilityCapable) {
        return Status::Unimplemented(
            "ConcurrentWritableIndex durability needs a flat key type");
      } else {
        {
          std::lock_guard<std::mutex> lk(write_mu_);
          if (wal_ != nullptr) {
            return Status::FailedPrecondition("durability already enabled");
          }
        }
        const uint64_t covered = covered_lsn_;
        // Replay through the normal write path (no wal_ attached yet, so
        // nothing re-logs); recovery is single-threaded by contract.
        auto replay = wal::Replay(
            cfg.path,
            [&](wal::WalRecordType type, uint64_t lsn, const void* payload,
                size_t len) -> Status {
              if (len != sizeof(key_type)) {
                return Status::InvalidArgument("WAL record size mismatch");
              }
              if (lsn <= covered) return Status::OK();
              key_type k;
              std::memcpy(&k, payload, sizeof(k));
              Write(k, type == wal::WalRecordType::kErase);
              return Status::OK();
            });
        if (!replay.ok()) {
          if (replay.status().code() == StatusCode::kNotFound) {
            return EnableDurability(cfg);  // no log yet: start one
          }
          return replay.status();
        }
        if (replay.value().base_lsn > covered) {
          return Status::InvalidArgument(
              "WAL gap: log starts past the snapshot's covered LSN");
        }
        auto w = wal::WalWriter::Open(cfg.path, cfg, nullptr);
        if (!w.ok()) return w.status();
        std::lock_guard<std::mutex> lk(write_mu_);
        wal_ = std::make_unique<wal::WalWriter>(w.take());
        wal_status_ = Status::OK();
        if (wal_->stats().last_lsn < covered) {
          // Stale log older than the snapshot: rotate so LSNs cannot
          // regress below the watermark.
          LI_RETURN_IF_ERROR(wal_->ResetTo(covered));
        }
        covered_lsn_ = wal_->stats().last_lsn;
        return Status::OK();
      }
    }

    void WalAppendLocked(const key_type& key, bool tombstone) {
      if (wal_ == nullptr) return;
      if constexpr (kDurabilityCapable) {
        auto r = wal_->Append(tombstone ? wal::WalRecordType::kErase
                                        : wal::WalRecordType::kInsert,
                              &key, sizeof(key));
        if (!r.ok()) wal_status_ = r.status();
      }
    }

    Status TruncateWalAfterPublish() const {
      std::lock_guard<std::mutex> lk(write_mu_);
      if (wal_ == nullptr) return Status::OK();
      // Under the writer mutex no append can race the rotation scan.
      return wal_->ResetTo(snapshot_covered_lsn_);
    }

    bool durable() const {
      std::lock_guard<std::mutex> lk(write_mu_);
      return wal_ != nullptr;
    }

    Status wal_status() const {
      std::lock_guard<std::mutex> lk(write_mu_);
      return wal_status_;
    }

    wal::WalStats DurabilityStats() const {
      std::lock_guard<std::mutex> lk(write_mu_);
      return wal_ != nullptr ? wal_->stats() : wal::WalStats{};
    }

    Status SyncWal() {
      std::lock_guard<std::mutex> lk(write_mu_);
      return wal_ != nullptr ? wal_->Sync() : Status::OK();
    }

    // ---- stats ----

    index::WritableIndexStats Stats() const {
      return FillStats<index::WritableIndexStats>();
    }

    index::ConcurrentIndexStats ConcurrentStats() const {
      index::ConcurrentIndexStats s =
          FillStats<index::ConcurrentIndexStats>();
      s.freezes = freezes_.load(std::memory_order_relaxed);
      s.background_merges = s.merges;
      s.writer_contended = writer_contended_.load(std::memory_order_relaxed);
      s.states_published = states_published_.load(std::memory_order_relaxed);
      s.states_retired = epoch_.retired_count();
      s.states_reclaimed = epoch_.reclaimed_count();
      s.epoch_fallback_pins = epoch_.fallback_pins();
      {
        EpochManager::Guard g(epoch_);
        const State* st = state_.load(std::memory_order_seq_cst);
        s.log_entries =
            st ? st->log_count.load(std::memory_order_acquire) : 0;
      }
      s.shards = 1;
      return s;
    }

    // ---- internals ----

    ReadStripe& Stripe() const {
      return read_stripes_[ThisThreadIndex() % kStripes];
    }

    uint64_t ReadTotal() const {
      uint64_t t = 0;
      for (const ReadStripe& s : read_stripes_) {
        t += s.lookups.load(std::memory_order_relaxed);
      }
      return t;
    }

    uint64_t ReadsSinceMerge() const {
      return ReadTotal() - reads_baseline_.load(std::memory_order_relaxed);
    }

    size_t RawLookupIn(const State& s, uint32_t n,
                       const key_type& key) const {
      int64_t rank = static_cast<int64_t>(s.base->Lookup(key)) +
                     s.frozen.RankAdjustBelow(key);
      const LogEntry* log = s.log.get();
      for (uint32_t i = 0; i < n; ++i) {
        if (log[i].key < key) rank += log[i].net;
      }
      return rank > 0 ? static_cast<size_t>(rank) : 0;
    }

    size_t LiveCountIn(const State& s, uint32_t n) const {
      int64_t c = static_cast<int64_t>(s.base_keys->size()) +
                  s.frozen.LiveAdjustTotal();
      const LogEntry* log = s.log.get();
      for (uint32_t i = 0; i < n; ++i) c += log[i].net;
      return c > 0 ? static_cast<size_t>(c) : 0;
    }

    bool BaseContainsIn(const State& s, const key_type& key) const {
      return index::ContainsViaLookup(
          *s.base, std::span<const key_type>(*s.base_keys), key);
    }

    /// Liveness of `key` under the writer mutex (no guard needed: only
    /// writers swap state, and we hold the writer mutex).
    bool LiveLocked(const State& s, uint32_t n, const key_type& key) const {
      const LogEntry* log = s.log.get();
      for (uint32_t i = n; i-- > 0;) {
        if (log[i].key == key) return !log[i].tombstone;
      }
      if (const auto e = s.frozen.Find(key)) return !e->tombstone;
      return BaseContainsIn(s, key);
    }

    /// Newest-wins fold of `s.frozen` + `s.log[0..n)` into one sorted
    /// entry list, `in_base` still relative to s's base. With
    /// `drop_redundant`, entries whose final state matches the base
    /// (re-insert of a base key, erase of an absent key) are dropped —
    /// valid only when the result is paired with the *same* base.
    std::vector<dynamic::DeltaEntry<key_type>> FoldedEntries(
        const State& s, uint32_t n, bool drop_redundant) const {
      const LogEntry* log = s.log.get();
      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (log[a].key < log[b].key) return true;
        if (log[b].key < log[a].key) return false;
        return a < b;
      });
      std::vector<dynamic::DeltaEntry<key_type>> out;
      out.reserve(s.frozen.entry_count() + n);
      size_t oi = 0;
      auto emit_group = [&](const dynamic::DeltaEntry<key_type>* shadowed) {
        const key_type& k = log[order[oi]].key;
        const LogEntry& first = log[order[oi]];
        size_t gend = oi;
        while (gend < order.size() && log[order[gend]].key == k) ++gend;
        const LogEntry& last = log[order[gend - 1]];
        // in_base: the shadowed frozen entry knows it; otherwise the first
        // log write's prior liveness *is* base membership (no frozen or
        // log predecessor existed).
        const bool in_base =
            shadowed != nullptr ? shadowed->in_base : first.live_before;
        if (!drop_redundant || last.tombstone == in_base) {
          out.push_back(
              dynamic::DeltaEntry<key_type>{k, last.tombstone, in_base});
        }
        oi = gend;
      };
      s.frozen.VisitAll([&](const dynamic::DeltaEntry<key_type>& fe) {
        while (oi < order.size() && log[order[oi]].key < fe.key) {
          emit_group(nullptr);
        }
        if (oi < order.size() && log[order[oi]].key == fe.key) {
          emit_group(&fe);
        } else {
          out.push_back(fe);
        }
        return true;
      });
      while (oi < order.size()) emit_group(nullptr);
      return out;
    }

    /// Folds the full write log into the frozen delta and publishes the
    /// result as a new version (same base). Caller holds the writer
    /// mutex. Returns the published version.
    ///
    /// The redundancy drop is only legal while no merge is in flight:
    /// dropping an entry whose final state matches the *current* base
    /// (e.g. the erase of a key the base does not hold) loses exactly the
    /// tombstone the publish-time rebase would need when that key was
    /// captured in the rotation snapshot and is being baked into the NEW
    /// base right now. With a rebase pending, every entry is kept
    /// (contribution-0 entries are semantically inert) and the publish
    /// step filters against the new base instead.
    State* FreezeLocked(State* s, uint32_t n) {
      auto folded =
          FoldedEntries(*s, n, /*drop_redundant=*/!merge_rebase_pending_);
      State* ns = new State;
      ns->base_keys = s->base_keys;
      ns->base = s->base;
      ns->frozen = dynamic::DeltaBuffer<key_type>::FromSortedEntries(
          std::span<const dynamic::DeltaEntry<key_type>>(folded), 2);
      ns->log = std::make_unique<LogEntry[]>(config_.log_cap);
      ns->log_cap = config_.log_cap;
      PublishLocked(ns, s);
      freezes_.fetch_add(1, std::memory_order_relaxed);
      return ns;
    }

    /// Swaps the version in and retires the old one. Reclaimable
    /// versions are only *collected* here (we hold the writer mutex);
    /// their destructors — the old base's key array and model tables —
    /// run in DrainDeferredFrees after the caller unlocks, so no writer
    /// ever pays a multi-megabyte free inside the lock.
    void PublishLocked(State* fresh, State* old) {
      state_.store(fresh, std::memory_order_seq_cst);
      states_published_.fetch_add(1, std::memory_order_relaxed);
      epoch_.Retire(old);
      epoch_.ReclaimTo(deferred_free_);
    }

    /// Runs deferred version destructions outside the writer mutex.
    /// `lk` must be the caller's held writer lock; released before the
    /// deleters run (callers are done with shared state by then).
    void DrainDeferredFrees(std::unique_lock<std::mutex>& lk) {
      if (deferred_free_.empty()) return;
      std::vector<EpochManager::Retired> batch;
      batch.swap(deferred_free_);
      lk.unlock();
      EpochManager::Free(batch);
    }

    /// One background merge cycle (the worker's body).
    Status DoBackgroundMerge() {
      Timer timer;
      std::shared_ptr<const std::vector<key_type>> old_keys;
      dynamic::DeltaBuffer<key_type> frozen_copy;
      {
        // Phase 1 — rotate: fold any pending log so the delta to merge is
        // an immutable snapshot, then copy it out (O(delta), brief).
        std::unique_lock<std::mutex> lk(write_mu_);
        State* s = state_.load(std::memory_order_relaxed);
        const uint32_t n = s->log_count.load(std::memory_order_relaxed);
        if (n > 0) s = FreezeLocked(s, n);
        if (s->frozen.empty()) {
          DrainDeferredFrees(lk);
          return Status::OK();
        }
        frozen_copy = s->frozen;
        old_keys = s->base_keys;
        // From here until publish, freezes must keep every fold entry:
        // the snapshot just taken is being baked into the next base, so
        // "redundant vs the old base" no longer implies droppable.
        merge_rebase_pending_ = true;
        DrainDeferredFrees(lk);
      }
      // Phase 2 — build off to the side: no locks, readers undisturbed.
      auto merged = std::make_shared<std::vector<key_type>>(
          dynamic::MergeLiveKeys(std::span<const key_type>(*old_keys),
                                 frozen_copy));
      auto new_base = std::make_shared<Base>();
      if (const Status st = new_base->Build(
              std::span<const key_type>(*merged), config_.base);
          !st.ok()) {
        std::lock_guard<std::mutex> lk(write_mu_);
        merge_rebase_pending_ = false;  // old base stays; drops legal again
        return st;
      }
      {
        // Phase 3 — publish: rebase the delta that accumulated during the
        // build onto the new base, swap the version in, retire the old.
        std::unique_lock<std::mutex> lk(write_mu_);
        State* s = state_.load(std::memory_order_relaxed);
        const uint32_t n = s->log_count.load(std::memory_order_relaxed);
        auto folded = FoldedEntries(*s, n, /*drop_redundant=*/false);
        std::vector<dynamic::DeltaEntry<key_type>> rebased;
        rebased.reserve(folded.size());
        for (const dynamic::DeltaEntry<key_type>& e : folded) {
          const bool in_nb =
              std::binary_search(merged->begin(), merged->end(), e.key);
          // Keep only entries the new base does not already reflect.
          if (e.tombstone == in_nb) {
            rebased.push_back(
                dynamic::DeltaEntry<key_type>{e.key, e.tombstone, in_nb});
          }
        }
        State* ns = new State;
        ns->base_keys = merged;
        ns->base = std::move(new_base);
        ns->frozen = dynamic::DeltaBuffer<key_type>::FromSortedEntries(
            std::span<const dynamic::DeltaEntry<key_type>>(rebased), 2);
        ns->log = std::make_unique<LogEntry[]>(config_.log_cap);
        ns->log_cap = config_.log_cap;
        PublishLocked(ns, s);
        merge_rebase_pending_ = false;
        merges_.fetch_add(1, std::memory_order_relaxed);
        merged_keys_.fetch_add(merged->size(), std::memory_order_relaxed);
        writes_since_merge_ = 0;
        reads_baseline_.store(ReadTotal(), std::memory_order_relaxed);
        DrainDeferredFrees(lk);
      }
      const uint64_t ns_elapsed = static_cast<uint64_t>(timer.ElapsedNanos());
      last_merge_ns_.store(ns_elapsed, std::memory_order_relaxed);
      total_merge_ns_.fetch_add(ns_elapsed, std::memory_order_relaxed);
      return Status::OK();
    }

    void WorkerLoop() {
      std::unique_lock<std::mutex> lk(merge_mu_);
      for (;;) {
        merge_cv_.wait(lk, [&] { return merge_requested_ || shutdown_; });
        if (shutdown_) return;  // pending work is dropped; delta stays valid
        merge_requested_ = false;
        merge_running_ = true;
        lk.unlock();
        const Status st = DoBackgroundMerge();
        lk.lock();
        merge_running_ = false;
        last_merge_status_ = st;
        ++merge_cycles_;
        merge_done_cv_.notify_all();
      }
    }

    template <typename S>
    S FillStats() const {
      S s{};
      uint64_t lookups = 0, contains = 0, hits = 0;
      for (const ReadStripe& r : read_stripes_) {
        lookups += r.lookups.load(std::memory_order_relaxed);
        contains += r.contains.load(std::memory_order_relaxed);
        hits += r.delta_hits.load(std::memory_order_relaxed);
      }
      s.lookups = lookups;
      s.contains = contains;
      s.delta_hits = hits;
      s.inserts = inserts_.load(std::memory_order_relaxed);
      s.erases = erases_.load(std::memory_order_relaxed);
      s.merges = merges_.load(std::memory_order_relaxed);
      s.merged_keys = merged_keys_.load(std::memory_order_relaxed);
      s.last_merge_ns =
          static_cast<double>(last_merge_ns_.load(std::memory_order_relaxed));
      s.total_merge_ns = static_cast<double>(
          total_merge_ns_.load(std::memory_order_relaxed));
      {
        EpochManager::Guard g(epoch_);
        const State* st = state_.load(std::memory_order_seq_cst);
        if (st != nullptr) {
          const uint32_t n = st->log_count.load(std::memory_order_acquire);
          s.delta_entries = st->frozen.entry_count() + n;
          s.delta_bytes =
              st->frozen.SizeBytes() + st->log_cap * sizeof(LogEntry);
          s.base_keys = st->base_keys->size();
        }
      }
      return s;
    }

    Config config_{};
    std::atomic<State*> state_{nullptr};
    // mutable: the const WriteSections capture quiesces writers on it.
    mutable std::mutex write_mu_;
    mutable EpochManager epoch_;
    std::atomic<int64_t> live_count_{0};
    // Reclaimed-but-not-freed versions (mutated under write_mu_ only;
    // drained outside it).
    std::vector<EpochManager::Retired> deferred_free_;

    // Merge worker machinery.
    std::thread worker_;
    mutable std::mutex merge_mu_;
    std::condition_variable merge_cv_;
    std::condition_variable merge_done_cv_;
    bool merge_requested_ = false;
    bool merge_running_ = false;
    bool shutdown_ = false;
    uint64_t merge_cycles_ = 0;
    Status last_merge_status_{};

    // Counters. Read stripes keep reader increments off one shared line.
    mutable ReadStripe read_stripes_[kStripes];
    std::atomic<uint64_t> reads_baseline_{0};
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> erases_{0};
    std::atomic<uint64_t> merges_{0};
    std::atomic<uint64_t> merged_keys_{0};
    std::atomic<uint64_t> freezes_{0};
    std::atomic<uint64_t> writer_contended_{0};
    std::atomic<uint64_t> states_published_{0};
    std::atomic<uint64_t> last_merge_ns_{0};
    std::atomic<uint64_t> total_merge_ns_{0};
    uint64_t writes_since_merge_ = 0;  // writer-mutex holders only
    // True between merge rotation and publish (writer-mutex holders
    // only): freeze folds must not drop entries then — see FreezeLocked.
    bool merge_rebase_pending_ = false;

    // Durability (guarded by write_mu_; mutable because the const
    // snapshot path stashes the covered LSN and truncates after publish).
    mutable std::unique_ptr<wal::WalWriter> wal_;
    Status wal_status_{};
    uint64_t covered_lsn_ = 0;  // watermark inherited from OpenSnapshot
    mutable uint64_t snapshot_covered_lsn_ = 0;
  };

  std::unique_ptr<Impl> impl_;
};

}  // namespace li::concurrent

#endif  // LI_CONCURRENT_CONCURRENT_WRITABLE_INDEX_H_
