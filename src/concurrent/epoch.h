// Epoch-based reclamation (EBR) — the memory-lifetime backbone of the
// concurrent write path. Readers traverse immutable published state
// (base + frozen delta + write-log prefix) without locks; writers and the
// background merge worker replace that state with an atomic pointer swap
// and *retire* the old version here instead of deleting it. A retired
// version is freed only once every reader that could possibly still hold
// a pointer into it has left its read-side critical section — the classic
// Bigtable/LSM "drain the epoch" discipline.
//
// Protocol:
//  * Readers wrap each operation in an `EpochManager::Guard`: the guard
//    pins the thread's slot to the current global epoch (one seq_cst
//    store), the reader then loads the published state pointer. Sequential
//    consistency between the pin store, the state load, the publisher's
//    state swap and the reclaimer's slot scan guarantees that a reclaimer
//    either sees the pin (and preserves the version) or the reader sees
//    the new state (and never touches the retired one).
//  * Writers call `Retire(ptr)` after unlinking a version, then
//    `Reclaim()`: advance the global epoch, compute the minimum pinned
//    epoch across slots, and free every retired version tagged with an
//    older epoch. With no active pins everything retired is freed.
//
// Threads lease a process-wide dense id (`ThisThreadIndex`) from a
// bitmask free-list: acquired on a thread's first pin, released when the
// thread exits, so ids recycle and a long-lived process spawning waves of
// short-lived threads never exhausts the table. Up to `kMaxThreads`
// *live* threads use per-thread cache-line-sized slots; a thread beyond
// that pins through a shared fallback counter that conservatively blocks
// all reclamation while held — correct, just not scalable past the slot
// table (documented; the table is sized well above the 1-16 thread range
// this library targets).

#ifndef LI_CONCURRENT_EPOCH_H_
#define LI_CONCURRENT_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace li::concurrent {

namespace internal {

/// Bitmask free-list of dense thread ids. Acquire/release use acq_rel
/// RMWs so a recycled slot's plain fields (guard depth) are handed off
/// with a happens-before edge from the dead thread to the new owner.
class ThreadIdRegistry {
 public:
  static constexpr size_t kMaxIds = 128;
  static constexpr size_t kInvalid = kMaxIds;

  static size_t Acquire() {
    for (size_t w = 0; w < kWords; ++w) {
      uint64_t mask = Word(w).load(std::memory_order_relaxed);
      while (mask != ~uint64_t{0}) {
        const int bit = __builtin_ctzll(~mask);
        if (Word(w).compare_exchange_weak(mask, mask | (uint64_t{1} << bit),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          return w * 64 + static_cast<size_t>(bit);
        }
      }
    }
    return kInvalid;  // > kMaxIds live threads: caller falls back
  }

  static void Release(size_t id) {
    Word(id / 64).fetch_and(~(uint64_t{1} << (id % 64)),
                            std::memory_order_acq_rel);
  }

 private:
  static constexpr size_t kWords = kMaxIds / 64;
  static std::atomic<uint64_t>& Word(size_t w) {
    static std::atomic<uint64_t> words[kWords];
    return words[w];
  }
};

}  // namespace internal

/// Dense thread id leased for this thread's lifetime and recycled at
/// thread exit. Ids >= EpochManager::kMaxThreads mean "no slot free"
/// (more live threads than the table holds); callers fall back.
/// Complexity: O(1) after the first call (thread-local cache); the
/// first call scans the id bitmask, O(kMaxIds/64) CAS attempts.
/// Thread-safety: safe from any thread; each thread gets its own lease.
inline size_t ThisThreadIndex() {
  struct Lease {
    size_t id = internal::ThreadIdRegistry::Acquire();
    ~Lease() {
      if (id != internal::ThreadIdRegistry::kInvalid) {
        internal::ThreadIdRegistry::Release(id);
      }
    }
  };
  thread_local const Lease lease;
  return lease.id;
}

class EpochManager {
 public:
  /// Per-thread pin slots. Threads beyond this use the fallback counter.
  static constexpr size_t kMaxThreads = 128;
  static_assert(kMaxThreads == internal::ThreadIdRegistry::kMaxIds);

  /// A version awaiting deletion, as handed out by ReclaimTo: callers
  /// run `deleter(ptr)` (or `Free`) outside their own critical sections.
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;  // global epoch at retire time
  };

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Frees everything still retired. The owner must have quiesced first:
  /// no guard may be alive and no further Retire may race the destructor.
  ~EpochManager() {
    std::lock_guard<std::mutex> lk(retired_mu_);
    for (const Retired& r : retired_) r.deleter(r.ptr);
    retired_.clear();
  }

  /// RAII read-side critical section.
  ///
  /// Semantics: while a Guard is alive, every version retired at or
  /// after the pin is preserved — any pointer loaded from a published
  /// atomic inside the guard stays valid until the guard drops.
  /// Complexity: one seq_cst store on entry, one release store on exit
  /// (nested guards on the same thread only bump a plain counter).
  /// Thread-safety: safe from any thread; re-entrant per thread; must
  /// not outlive the manager.
  class Guard {
   public:
    explicit Guard(EpochManager& mgr)
        : mgr_(mgr), tid_(ThisThreadIndex()) {
      if (tid_ < kMaxThreads) {
        Slot& s = mgr_.slots_[tid_];
        if (s.depth++ == 0) {
          // The pin value may lag a concurrent epoch advance by one; that
          // only makes reclamation more conservative, never unsafe.
          s.epoch.store(mgr_.global_epoch_.load(std::memory_order_relaxed),
                        std::memory_order_seq_cst);
        }
      } else {
        mgr_.fallback_active_.fetch_add(1, std::memory_order_seq_cst);
        mgr_.fallback_pins_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    ~Guard() {
      if (tid_ < kMaxThreads) {
        Slot& s = mgr_.slots_[tid_];
        if (--s.depth == 0) s.epoch.store(0, std::memory_order_release);
      } else {
        mgr_.fallback_active_.fetch_sub(1, std::memory_order_release);
      }
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochManager& mgr_;
    size_t tid_;
  };

  /// Hands `ptr` to the manager for deferred deletion. The caller must
  /// already have unlinked it from all shared pointers (no new reader can
  /// reach it); existing readers are what the epoch drain waits for.
  /// Complexity: O(1) amortized (one mutex-guarded push). Thread-safety:
  /// safe from any thread, including concurrently with Guards and
  /// Reclaim — but never retire the same pointer twice.
  template <typename T>
  void Retire(T* ptr) {
    const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(retired_mu_);
      retired_.push_back(
          Retired{ptr, [](void* p) { delete static_cast<T*>(p); }, e});
    }
    retired_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Advances the global epoch and moves every retired version no active
  /// reader can still reach into `out` — WITHOUT running deleters, so a
  /// caller inside a critical section (e.g. holding a writer mutex) can
  /// defer the potentially heavy destructions (key arrays, model tables)
  /// until after it unlocks. Complexity: O(kMaxThreads) slot scan +
  /// O(retired). Thread-safety: safe from any thread concurrently with
  /// Guards and Retire; concurrent reclaimers partition the retired set
  /// (each version is handed out exactly once).
  void ReclaimTo(std::vector<Retired>& out) {
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (fallback_active_.load(std::memory_order_seq_cst) > 0) return;
    uint64_t min_pin = UINT64_MAX;
    for (const Slot& s : slots_) {
      const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min_pin) min_pin = e;
    }
    std::lock_guard<std::mutex> lk(retired_mu_);
    size_t kept = 0, moved = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_pin) {
        out.push_back(r);
        ++moved;
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
    reclaimed_count_.fetch_add(moved, std::memory_order_relaxed);
  }

  /// Runs the deleters of versions handed out by ReclaimTo.
  /// Thread-safety: the batch is caller-owned; call outside any critical
  /// section (deleters may be heavy — key arrays, model tables, worker
  /// joins).
  static void Free(std::vector<Retired>& batch) {
    for (const Retired& r : batch) r.deleter(r.ptr);
    batch.clear();
  }

  /// Convenience: reclaim and free in one step (safe when the caller
  /// holds no locks). Returns the number of versions freed.
  size_t Reclaim() {
    std::vector<Retired> batch;
    ReclaimTo(batch);
    const size_t n = batch.size();
    Free(batch);
    return n;
  }

  /// Versions handed to Retire so far.
  uint64_t retired_count() const {
    return retired_count_.load(std::memory_order_relaxed);
  }
  /// Versions actually freed by Reclaim so far.
  uint64_t reclaimed_count() const {
    return reclaimed_count_.load(std::memory_order_relaxed);
  }
  /// Pins that had to take the shared fallback path (thread id beyond the
  /// slot table) — a deployment-sizing signal, not an error.
  uint64_t fallback_pins() const {
    return fallback_pins_.load(std::memory_order_relaxed);
  }
  /// Versions retired but not yet freed (awaiting an epoch drain).
  size_t pending() const {
    std::lock_guard<std::mutex> lk(retired_mu_);
    return retired_.size();
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = idle, else the pinned epoch
    uint32_t depth = 0;              // owning thread only: guard nesting
  };

  std::atomic<uint64_t> global_epoch_{1};  // pins are nonzero
  Slot slots_[kMaxThreads];
  std::atomic<uint64_t> fallback_active_{0};

  mutable std::mutex retired_mu_;
  std::vector<Retired> retired_;

  std::atomic<uint64_t> retired_count_{0};
  std::atomic<uint64_t> reclaimed_count_{0};
  std::atomic<uint64_t> fallback_pins_{0};
};

}  // namespace li::concurrent

#endif  // LI_CONCURRENT_EPOCH_H_
