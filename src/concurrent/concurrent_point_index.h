// ConcurrentPointIndex<Base> — the thread-safe write path over the
// static point-map families (ChainedHashMap, InplaceChainedMap,
// CuckooMap), behind the library-wide
// index::ConcurrentWritablePointIndex contract.
//
// Same version architecture as the range side
// (concurrent_writable_index.h), specialized to keyed records:
//
//   State = { base records + built Base map   (shared with older versions)
//           , frozen overlay                  (sorted, one entry per key,
//                                              newest sequence number wins)
//           , write log                       (append-only, bounded) }
//
// Readers pin an epoch, load the current version with one atomic load,
// and answer newest-first: log suffix -> frozen overlay -> base map. The
// log-count store is the serialization point. Every overlay entry carries
// the full record plus a monotone per-write sequence number; reads copy
// the record out under the pin (the contract is value-semantics exactly
// because a base pointer would dangle once a rebuild retires its
// version).
//
// Writers serialize on one mutex (contention is counted), append to the
// log, and publish the new count with a release store. A full log is
// *frozen*: folded into the sorted overlay, republished as a new version,
// the old one retired to the epoch manager.
//
// Rehash/resize runs on a background worker so no caller ever pays the
// table rebuild inline:
//   1. rotate: fold any pending log so the overlay to fold is a frozen,
//      immutable snapshot; record the snapshot sequence number (brief
//      writer lock);
//   2. build: apply the snapshot overlay over the base records and build
//      a replacement table over the merged set — off to the side, no
//      locks held. Cuckoo kick-chains run entirely against this private
//      table, never the published one, and an explicit slot budget is
//      rescaled to the merged record count (this is where resize
//      happens);
//   3. publish: keep only overlay entries written *after* the snapshot
//      sequence number (everything else is baked into the new table),
//      swap the version in atomically, retire the old one (brief writer
//      lock).
// The sequence-number rebase is what makes upserts safe: a payload
// update that raced the build keeps shadowing the new base, while
// anything the build captured is dropped without a by-key membership
// probe. Readers never block on any phase; a failed rebuild (e.g. a
// cuckoo table that cannot place at the configured load factor even
// after the fallback relaxations) leaves the old version serving and
// surfaces through last_rebuild_status().
//
// Single-threaded use degenerates to exact map semantics (same oracle
// conformance suite as the static families), which is what lets the LIF
// synthesizer qualify concurrent point candidates with the same contract
// as everything else.

#ifndef LI_CONCURRENT_CONCURRENT_POINT_INDEX_H_
#define LI_CONCURRENT_CONCURRENT_POINT_INDEX_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "concurrent/epoch.h"
#include "hash/record.h"
#include "index/concurrent_point_index.h"
#include "index/concurrent_writable_index.h"
#include "index/point_index.h"

namespace li::concurrent {

template <index::PointIndex Base>
class ConcurrentPointIndex {
 public:
  using base_type = Base;
  using base_config_type = typename Base::config_type;

  struct Config {
    base_config_type base{};
    /// Write-log capacity: how many writes a version absorbs before the
    /// log is folded into the sorted frozen overlay.
    size_t log_cap = 1024;
    /// Overlay entries (frozen + log) that trigger a background rebuild
    /// of the base table; 0 disables the automatic trigger
    /// (RequestRebuild still works).
    size_t rebuild_entries = 4096;
  };
  using config_type = Config;

  ConcurrentPointIndex() = default;
  ConcurrentPointIndex(ConcurrentPointIndex&&) noexcept = default;
  ConcurrentPointIndex& operator=(ConcurrentPointIndex&&) noexcept = default;

  /// Builds the initial version over `records` (any order, duplicate keys
  /// keep the FIRST record seen — the static families' Build contract)
  /// and starts the background rebuild worker. An empty span is allowed:
  /// the index starts empty and grows by Insert. Not thread-safe against
  /// other methods (build-then-share). On failure the handle reverts to
  /// the never-built state: reads answer absent, writes return false.
  Status Build(std::span<const hash::Record> records, const Config& config) {
    impl_ = std::make_unique<Impl>();
    const Status st = impl_->Build(records, config);
    if (!st.ok()) impl_.reset();
    return st;
  }

  // ---- reads: lock-free, safe from any thread ----

  /// Copies the stored record for `key` into `*out` and returns true, or
  /// returns false when absent (out untouched).
  bool Find(uint64_t key, hash::Record* out) const {
    return impl_ != nullptr && impl_->Find(key, out);
  }
  /// Batched copy-out probe: found[i] = 1 and recs[i] = the record when
  /// keys[i] is present, else found[i] = 0. Routed through the base
  /// map's native (SIMD-dispatched) batch path for the keys the overlay
  /// does not shadow. Mismatched span lengths clamp to the shortest.
  void FindBatch(std::span<const uint64_t> keys, std::span<hash::Record> recs,
                 std::span<uint8_t> found) const {
    if (impl_ != nullptr) {
      impl_->FindBatch(keys, recs, found);
    } else {
      const size_t n = std::min({keys.size(), recs.size(), found.size()});
      for (size_t i = 0; i < n; ++i) found[i] = 0;
    }
  }
  size_t num_records() const { return impl_ ? impl_->num_records() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  /// Occupancy stats of the published base table. The overlay is not a
  /// hashed structure; its size is ConcurrentStats().delta_entries.
  index::PointIndexStats Stats() const {
    return impl_ ? impl_->Stats() : index::PointIndexStats{};
  }
  index::ConcurrentIndexStats ConcurrentStats() const {
    return impl_ ? impl_->ConcurrentStats() : index::ConcurrentIndexStats{};
  }

  // ---- writes: safe from any thread, serialized internally ----

  /// First-wins insert: true iff the key was absent (an existing record
  /// is not overwritten, matching Build's dedup rule).
  bool Insert(const hash::Record& rec) {
    return impl_ != nullptr && impl_->Write(rec, WriteKind::kInsert);
  }
  /// Last-write-wins store: true iff the key was absent.
  bool Upsert(const hash::Record& rec) {
    return impl_ != nullptr && impl_->Write(rec, WriteKind::kUpsert);
  }
  /// True iff the key was present.
  bool Erase(uint64_t key) {
    return impl_ != nullptr &&
           impl_->Write(hash::Record{key, 0, 0}, WriteKind::kErase);
  }

  // ---- rebuild control ----

  /// Synchronous rebuild cycle: folds everything written before the call
  /// into a fresh base table. Blocks the caller only; readers stay
  /// lock-free.
  Status Rebuild() {
    return impl_ ? impl_->Rebuild()
                 : Status::FailedPrecondition(
                       "ConcurrentPointIndex: not built");
  }
  /// Asynchronous rebuild trigger; coalesces with a pending request.
  void RequestRebuild() {
    if (impl_ != nullptr) impl_->RequestRebuild();
  }
  /// Blocks until no rebuild is pending or running (the quiesce point).
  void WaitForRebuilds() {
    if (impl_ != nullptr) impl_->WaitForRebuilds();
  }
  /// Outcome of the most recent background rebuild cycle.
  Status last_rebuild_status() const {
    return impl_ ? impl_->last_rebuild_status() : Status::OK();
  }

  const Config& config() const {
    static const Config kEmpty{};
    return impl_ ? impl_->config_ : kEmpty;
  }

 private:
  enum class WriteKind { kInsert, kUpsert, kErase };

  /// One overlay entry: the full record, its tombstone flag, and the
  /// monotone sequence number of the write that produced it — the rebase
  /// watermark the publish step filters on.
  struct OvEntry {
    hash::Record rec{};
    uint64_t seq = 0;
    bool tombstone = false;
  };

  struct State {
    std::shared_ptr<const std::vector<hash::Record>> base_records;
    std::shared_ptr<const Base> base;  // built over *base_records
    std::vector<OvEntry> frozen;       // sorted by key, one entry per key
    std::unique_ptr<OvEntry[]> log;
    size_t log_cap = 0;
    std::atomic<uint32_t> log_count{0};
  };

  struct alignas(64) ReadStripe {
    std::atomic<uint64_t> lookups{0};
    std::atomic<uint64_t> overlay_hits{0};
  };
  static constexpr size_t kStripes = 16;

  struct Impl {
    ~Impl() {
      {
        std::lock_guard<std::mutex> lk(rebuild_mu_);
        shutdown_ = true;
      }
      rebuild_cv_.notify_all();
      if (worker_.joinable()) worker_.join();
      delete state_.load(std::memory_order_relaxed);
      EpochManager::Free(deferred_free_);
      // epoch_ frees everything still on its retired list.
    }

    Status Build(std::span<const hash::Record> records, const Config& config) {
      config_ = config;
      config_.log_cap = std::max<size_t>(config.log_cap, 2);
      // Sort + first-wins dedup so merges are a linear two-pointer pass.
      auto br = std::make_shared<std::vector<hash::Record>>(records.begin(),
                                                            records.end());
      std::stable_sort(br->begin(), br->end(),
                       [](const hash::Record& a, const hash::Record& b) {
                         return a.key < b.key;
                       });
      br->erase(std::unique(br->begin(), br->end(),
                            [](const hash::Record& a, const hash::Record& b) {
                              return a.key == b.key;
                            }),
                br->end());
      auto base = std::make_shared<Base>();
      if (!br->empty()) {
        LI_RETURN_IF_ERROR(
            base->Build(std::span<const hash::Record>(*br), config_.base));
      }
      // An explicit slot budget becomes a slots-per-record ratio so
      // rebuilds resize the table with the data instead of pinning the
      // original slot count forever.
      if constexpr (requires { config_.base.num_slots; }) {
        if (config_.base.num_slots != 0 && !br->empty()) {
          slots_per_record_ = static_cast<double>(config_.base.num_slots) /
                              static_cast<double>(br->size());
        }
      }
      live_count_.store(static_cast<int64_t>(br->size()),
                        std::memory_order_relaxed);
      State* s = new State;
      s->base_records = std::move(br);
      s->base = std::move(base);
      s->log = std::make_unique<OvEntry[]>(config_.log_cap);
      s->log_cap = config_.log_cap;
      state_.store(s, std::memory_order_seq_cst);
      worker_ = std::thread([this] { WorkerLoop(); });
      return Status::OK();
    }

    // ---- read path ----

    bool Find(uint64_t key, hash::Record* out) const {
      ReadStripe& stripe = Stripe();
      stripe.lookups.fetch_add(1, std::memory_order_relaxed);
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return false;
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      const int ov = OverlayFind(*s, n, key, out);
      if (ov >= 0) {
        stripe.overlay_hits.fetch_add(1, std::memory_order_relaxed);
        return ov == 1;
      }
      const hash::Record* r = s->base->Find(key);
      if (r == nullptr) return false;
      *out = *r;  // copied under the epoch pin; safe past it
      return true;
    }

    void FindBatch(std::span<const uint64_t> keys,
                   std::span<hash::Record> recs,
                   std::span<uint8_t> found) const {
      const size_t m = std::min({keys.size(), recs.size(), found.size()});
      ReadStripe& stripe = Stripe();
      stripe.lookups.fetch_add(m, std::memory_order_relaxed);
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) {
        for (size_t i = 0; i < m; ++i) found[i] = 0;
        return;
      }
      const uint32_t n = s->log_count.load(std::memory_order_acquire);
      const bool base_has_records = s->base->num_records() > 0;
      // Blocked: the base's native batch path (the SIMD slot kernels)
      // resolves each block, then the overlay patches the keys it
      // shadows — with an empty overlay this runs at base throughput.
      constexpr size_t kBlock = 128;
      const hash::Record* ptrs[kBlock];
      for (size_t beg = 0; beg < m; beg += kBlock) {
        const size_t len = std::min(kBlock, m - beg);
        if (base_has_records) {
          index::FindBatch(*s->base, keys.subspan(beg, len),
                           std::span<const hash::Record*>(ptrs, len));
        } else {
          for (size_t i = 0; i < len; ++i) ptrs[i] = nullptr;
        }
        for (size_t i = 0; i < len; ++i) {
          hash::Record tmp;
          const int ov = OverlayFind(*s, n, keys[beg + i], &tmp);
          if (ov >= 0) {
            stripe.overlay_hits.fetch_add(1, std::memory_order_relaxed);
            found[beg + i] = ov == 1 ? 1 : 0;
            if (ov == 1) recs[beg + i] = tmp;
          } else if (ptrs[i] != nullptr) {
            found[beg + i] = 1;
            recs[beg + i] = *ptrs[i];
          } else {
            found[beg + i] = 0;
          }
        }
      }
    }

    size_t num_records() const {
      const int64_t n = live_count_.load(std::memory_order_relaxed);
      return n > 0 ? static_cast<size_t>(n) : 0;
    }

    size_t SizeBytes() const {
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      if (s == nullptr) return 0;
      return s->base->SizeBytes() +
             s->base_records->size() * sizeof(hash::Record) +
             s->frozen.size() * sizeof(OvEntry) +
             s->log_cap * sizeof(OvEntry);
    }

    index::PointIndexStats Stats() const {
      EpochManager::Guard g(epoch_);
      const State* s = state_.load(std::memory_order_seq_cst);
      return s != nullptr ? s->base->Stats() : index::PointIndexStats{};
    }

    index::ConcurrentIndexStats ConcurrentStats() const {
      index::ConcurrentIndexStats cs;
      uint64_t lookups = 0, hits = 0;
      for (const ReadStripe& r : read_stripes_) {
        lookups += r.lookups.load(std::memory_order_relaxed);
        hits += r.overlay_hits.load(std::memory_order_relaxed);
      }
      cs.lookups = lookups;
      cs.delta_hits = hits;
      cs.inserts = inserts_.load(std::memory_order_relaxed);
      cs.erases = erases_.load(std::memory_order_relaxed);
      cs.merges = rebuilds_.load(std::memory_order_relaxed);
      cs.background_merges = cs.merges;
      cs.merged_keys = merged_records_.load(std::memory_order_relaxed);
      cs.last_merge_ns = static_cast<double>(
          last_rebuild_ns_.load(std::memory_order_relaxed));
      cs.total_merge_ns = static_cast<double>(
          total_rebuild_ns_.load(std::memory_order_relaxed));
      cs.freezes = freezes_.load(std::memory_order_relaxed);
      cs.writer_contended =
          writer_contended_.load(std::memory_order_relaxed);
      cs.states_published =
          states_published_.load(std::memory_order_relaxed);
      cs.states_retired = epoch_.retired_count();
      cs.states_reclaimed = epoch_.reclaimed_count();
      cs.epoch_fallback_pins = epoch_.fallback_pins();
      {
        EpochManager::Guard g(epoch_);
        const State* s = state_.load(std::memory_order_seq_cst);
        if (s != nullptr) {
          const uint32_t n = s->log_count.load(std::memory_order_acquire);
          cs.log_entries = n;
          cs.delta_entries = s->frozen.size() + n;
          cs.delta_bytes = (s->frozen.size() + s->log_cap) * sizeof(OvEntry);
          cs.base_keys = s->base_records->size();
        }
      }
      cs.shards = 1;
      return cs;
    }

    // ---- write path ----

    bool Write(const hash::Record& rec, WriteKind kind) {
      std::unique_lock<std::mutex> lk(write_mu_, std::try_to_lock);
      if (!lk.owns_lock()) {
        writer_contended_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      State* s = state_.load(std::memory_order_relaxed);
      uint32_t n = s->log_count.load(std::memory_order_relaxed);
      const bool live = LiveLocked(*s, n, rec.key);
      // No-op writes return without consuming log space: a first-wins
      // insert of a live key, or the erase of an absent one.
      if (kind == WriteKind::kInsert && live) {
        DrainDeferredFrees(lk);
        return false;
      }
      if (kind == WriteKind::kErase && !live) {
        DrainDeferredFrees(lk);
        return false;
      }
      if (n == s->log_cap) {
        s = FreezeLocked(s, n);
        n = 0;
      }
      OvEntry& e = s->log[n];
      e.rec = rec;
      e.seq = ++seq_last_;
      e.tombstone = kind == WriteKind::kErase;
      s->log_count.store(n + 1, std::memory_order_release);
      if (e.tombstone) {
        live_count_.fetch_add(-1, std::memory_order_relaxed);
        erases_.fetch_add(1, std::memory_order_relaxed);
      } else {
        if (!live) live_count_.fetch_add(1, std::memory_order_relaxed);
        inserts_.fetch_add(1, std::memory_order_relaxed);
      }
      if (config_.rebuild_entries != 0 &&
          s->frozen.size() + n + 1 >= config_.rebuild_entries) {
        RequestRebuild();
      }
      const bool changed = e.tombstone ? true : !live;
      DrainDeferredFrees(lk);  // heavy frees happen outside the lock
      return changed;
    }

    // ---- rebuild control ----

    void RequestRebuild() {
      {
        std::lock_guard<std::mutex> lk(rebuild_mu_);
        rebuild_requested_ = true;
      }
      rebuild_cv_.notify_one();
    }

    Status Rebuild() {
      std::unique_lock<std::mutex> lk(rebuild_mu_);
      rebuild_requested_ = true;
      rebuild_cv_.notify_one();
      const uint64_t start = rebuild_cycles_;
      rebuild_done_cv_.wait(lk, [&] {
        return rebuild_cycles_ > start && !rebuild_requested_ &&
               !rebuild_running_;
      });
      return last_rebuild_status_;
    }

    void WaitForRebuilds() {
      std::unique_lock<std::mutex> lk(rebuild_mu_);
      rebuild_done_cv_.wait(
          lk, [&] { return !rebuild_requested_ && !rebuild_running_; });
    }

    Status last_rebuild_status() const {
      std::lock_guard<std::mutex> lk(rebuild_mu_);
      return last_rebuild_status_;
    }

    // ---- internals ----

    ReadStripe& Stripe() const {
      return read_stripes_[ThisThreadIndex() % kStripes];
    }

    /// Overlay verdict for `key`: 1 = live (record copied into *out),
    /// 0 = tombstoned, -1 = not in the overlay (consult the base).
    /// Newest-first: log suffix before frozen.
    int OverlayFind(const State& s, uint32_t n, uint64_t key,
                    hash::Record* out) const {
      const OvEntry* log = s.log.get();
      for (uint32_t i = n; i-- > 0;) {  // newest write wins
        if (log[i].rec.key == key) {
          if (log[i].tombstone) return 0;
          *out = log[i].rec;
          return 1;
        }
      }
      const auto it = std::lower_bound(
          s.frozen.begin(), s.frozen.end(), key,
          [](const OvEntry& e, uint64_t k) { return e.rec.key < k; });
      if (it != s.frozen.end() && it->rec.key == key) {
        if (it->tombstone) return 0;
        *out = it->rec;
        return 1;
      }
      return -1;
    }

    /// Liveness of `key` under the writer mutex (no guard needed: only
    /// writers swap state, and we hold the writer mutex).
    bool LiveLocked(const State& s, uint32_t n, uint64_t key) const {
      hash::Record tmp;
      const int ov = OverlayFind(s, n, key, &tmp);
      if (ov >= 0) return ov == 1;
      return s.base->Find(key) != nullptr;
    }

    /// Newest-wins fold of `s.frozen` + `s.log[0..n)` into one sorted
    /// entry list. Log order is sequence order, so "last index in the
    /// group" is the newest write per key.
    std::vector<OvEntry> FoldedOverlay(const State& s, uint32_t n) const {
      const OvEntry* log = s.log.get();
      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (log[a].rec.key != log[b].rec.key) {
          return log[a].rec.key < log[b].rec.key;
        }
        return a < b;
      });
      std::vector<OvEntry> out;
      out.reserve(s.frozen.size() + n);
      size_t oi = 0;
      auto emit_group = [&] {
        const uint64_t k = log[order[oi]].rec.key;
        size_t gend = oi;
        while (gend < order.size() && log[order[gend]].rec.key == k) ++gend;
        out.push_back(log[order[gend - 1]]);  // newest per key
        oi = gend;
      };
      for (const OvEntry& fe : s.frozen) {
        while (oi < order.size() && log[order[oi]].rec.key < fe.rec.key) {
          emit_group();
        }
        if (oi < order.size() && log[order[oi]].rec.key == fe.rec.key) {
          emit_group();  // log shadows frozen (always the newer sequence)
        } else {
          out.push_back(fe);
        }
      }
      while (oi < order.size()) emit_group();
      return out;
    }

    /// Folds the full write log into the frozen overlay and publishes the
    /// result as a new version (same base). Caller holds the writer
    /// mutex. Returns the published version.
    State* FreezeLocked(State* s, uint32_t n) {
      State* ns = new State;
      ns->base_records = s->base_records;
      ns->base = s->base;
      ns->frozen = FoldedOverlay(*s, n);
      ns->log = std::make_unique<OvEntry[]>(config_.log_cap);
      ns->log_cap = config_.log_cap;
      PublishLocked(ns, s);
      freezes_.fetch_add(1, std::memory_order_relaxed);
      return ns;
    }

    void PublishLocked(State* fresh, State* old) {
      state_.store(fresh, std::memory_order_seq_cst);
      states_published_.fetch_add(1, std::memory_order_relaxed);
      epoch_.Retire(old);
      epoch_.ReclaimTo(deferred_free_);
    }

    void DrainDeferredFrees(std::unique_lock<std::mutex>& lk) {
      if (deferred_free_.empty()) return;
      std::vector<EpochManager::Retired> batch;
      batch.swap(deferred_free_);
      lk.unlock();
      EpochManager::Free(batch);
    }

    typename Base::config_type ScaledBaseConfig(size_t num_records) const {
      auto bc = config_.base;
      if constexpr (requires { bc.num_slots; }) {
        if (slots_per_record_ > 0.0) {
          bc.num_slots = std::max<size_t>(
              1, static_cast<size_t>(slots_per_record_ *
                                         static_cast<double>(num_records) +
                                     0.5));
        }
      }
      return bc;
    }

    /// Builds the replacement table, relaxing the placement knobs on
    /// failure where the config has them (a cuckoo table can run out of
    /// kicks + stash at an aggressive load factor; backing off the load
    /// factor and enabling the careful two-choice build always converges
    /// well before 0.5).
    static Status BuildBaseWithFallback(std::span<const hash::Record> records,
                                        typename Base::config_type bc,
                                        Base* out) {
      Status st = out->Build(records, bc);
      if constexpr (requires {
                      bc.load_factor;
                      bc.careful;
                    }) {
        while (!st.ok() && bc.load_factor > 0.5) {
          bc.load_factor = std::max(0.5, bc.load_factor * 0.85);
          bc.careful = true;
          *out = Base{};
          st = out->Build(records, bc);
        }
      }
      return st;
    }

    /// One background rebuild cycle (the worker's body).
    Status DoBackgroundRebuild() {
      Timer timer;
      std::shared_ptr<const std::vector<hash::Record>> old_records;
      std::vector<OvEntry> snapshot;
      uint64_t snapshot_seq = 0;
      {
        // Phase 1 — rotate: fold any pending log so the overlay to bake
        // in is an immutable snapshot (O(overlay), brief).
        std::unique_lock<std::mutex> lk(write_mu_);
        State* s = state_.load(std::memory_order_relaxed);
        const uint32_t n = s->log_count.load(std::memory_order_relaxed);
        if (n > 0) s = FreezeLocked(s, n);
        if (s->frozen.empty()) {
          DrainDeferredFrees(lk);
          return Status::OK();
        }
        snapshot = s->frozen;
        old_records = s->base_records;
        snapshot_seq = seq_last_;
        DrainDeferredFrees(lk);
      }
      // Phase 2 — build off to the side: no locks, readers undisturbed.
      // Kick-chains, probe placement, model training — everything runs
      // against this private table.
      auto merged = std::make_shared<std::vector<hash::Record>>();
      merged->reserve(old_records->size() + snapshot.size());
      {
        size_t bi = 0;
        const std::vector<hash::Record>& br = *old_records;
        for (const OvEntry& e : snapshot) {
          while (bi < br.size() && br[bi].key < e.rec.key) {
            merged->push_back(br[bi++]);
          }
          if (bi < br.size() && br[bi].key == e.rec.key) ++bi;  // shadowed
          if (!e.tombstone) merged->push_back(e.rec);
        }
        while (bi < br.size()) merged->push_back(br[bi++]);
      }
      auto new_base = std::make_shared<Base>();
      if (!merged->empty()) {
        if (const Status st = BuildBaseWithFallback(
                std::span<const hash::Record>(*merged),
                ScaledBaseConfig(merged->size()), new_base.get());
            !st.ok()) {
          return st;  // old version keeps serving; overlay keeps growing
        }
      }
      {
        // Phase 3 — publish: keep only overlay entries written after the
        // snapshot (the new table reflects everything at or before it).
        std::unique_lock<std::mutex> lk(write_mu_);
        State* s = state_.load(std::memory_order_relaxed);
        const uint32_t n = s->log_count.load(std::memory_order_relaxed);
        std::vector<OvEntry> folded = FoldedOverlay(*s, n);
        std::vector<OvEntry> rebased;
        rebased.reserve(folded.size());
        for (const OvEntry& e : folded) {
          if (e.seq > snapshot_seq) rebased.push_back(e);
        }
        State* ns = new State;
        ns->base_records = std::move(merged);
        ns->base = std::move(new_base);
        ns->frozen = std::move(rebased);
        ns->log = std::make_unique<OvEntry[]>(config_.log_cap);
        ns->log_cap = config_.log_cap;
        merged_records_.fetch_add(ns->base_records->size(),
                                  std::memory_order_relaxed);
        PublishLocked(ns, s);
        rebuilds_.fetch_add(1, std::memory_order_relaxed);
        DrainDeferredFrees(lk);
      }
      const uint64_t ns_elapsed =
          static_cast<uint64_t>(timer.ElapsedNanos());
      last_rebuild_ns_.store(ns_elapsed, std::memory_order_relaxed);
      total_rebuild_ns_.fetch_add(ns_elapsed, std::memory_order_relaxed);
      return Status::OK();
    }

    void WorkerLoop() {
      std::unique_lock<std::mutex> lk(rebuild_mu_);
      for (;;) {
        rebuild_cv_.wait(lk, [&] { return rebuild_requested_ || shutdown_; });
        if (shutdown_) return;  // pending work dropped; overlay stays valid
        rebuild_requested_ = false;
        rebuild_running_ = true;
        lk.unlock();
        const Status st = DoBackgroundRebuild();
        lk.lock();
        rebuild_running_ = false;
        last_rebuild_status_ = st;
        ++rebuild_cycles_;
        rebuild_done_cv_.notify_all();
      }
    }

    Config config_{};
    std::atomic<State*> state_{nullptr};
    mutable std::mutex write_mu_;
    mutable EpochManager epoch_;
    std::atomic<int64_t> live_count_{0};
    double slots_per_record_ = 0.0;  // 0 = base auto-sizes its table
    uint64_t seq_last_ = 0;          // writer-mutex holders only
    // Reclaimed-but-not-freed versions (mutated under write_mu_ only;
    // drained outside it).
    std::vector<EpochManager::Retired> deferred_free_;

    // Rebuild worker machinery.
    std::thread worker_;
    mutable std::mutex rebuild_mu_;
    std::condition_variable rebuild_cv_;
    std::condition_variable rebuild_done_cv_;
    bool rebuild_requested_ = false;
    bool rebuild_running_ = false;
    bool shutdown_ = false;
    uint64_t rebuild_cycles_ = 0;
    Status last_rebuild_status_{};

    // Counters. Read stripes keep reader increments off one shared line.
    mutable ReadStripe read_stripes_[kStripes];
    std::atomic<uint64_t> inserts_{0};
    std::atomic<uint64_t> erases_{0};
    std::atomic<uint64_t> rebuilds_{0};
    std::atomic<uint64_t> merged_records_{0};
    std::atomic<uint64_t> freezes_{0};
    std::atomic<uint64_t> writer_contended_{0};
    std::atomic<uint64_t> states_published_{0};
    std::atomic<uint64_t> last_rebuild_ns_{0};
    std::atomic<uint64_t> total_rebuild_ns_{0};
  };

  std::unique_ptr<Impl> impl_;
};

}  // namespace li::concurrent

#endif  // LI_CONCURRENT_CONCURRENT_POINT_INDEX_H_
