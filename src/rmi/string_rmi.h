// Learned index over string keys (§3.5, evaluated in Figure 6).
//
// Keys are tokenized to fixed-length ASCII feature vectors; the top model
// is a feed-forward net over the vector (0-2 hidden layers), the second
// stage holds vector linear models w.x + b, and — when a hybrid threshold
// is set — leaves whose error exceeds it are replaced by string B-Trees
// (the Figure-6 "Hybrid index" rows, thresholds t = 64 / 128). The
// "Learned QS" row is this class with Strategy::kBiasedQuaternary.

#ifndef LI_RMI_STRING_RMI_H_
#define LI_RMI_STRING_RMI_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "btree/string_btree.h"
#include "common/status.h"
#include "index/approx.h"
#include "models/nn.h"
#include "models/tokenizer.h"
#include "models/vec_linear.h"
#include "search/search.h"

namespace li::rmi {

struct StringRmiConfig {
  size_t num_leaf_models = 10'000;
  size_t max_len = 20;  // tokenizer truncation length N (§3.5)
  models::NNConfig top_nn;  // input_dim is overwritten with max_len
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  size_t top_train_sample = 60'000;
  /// 0 disables hybrid mode; otherwise leaves with |error| > threshold are
  /// replaced with string B-Trees (Figure 6, t = 64 / 128).
  int64_t hybrid_threshold = 0;
  size_t btree_keys_per_page = 32;
};

class StringRmi {
 public:
  using key_type = std::string;
  using config_type = StringRmiConfig;

  StringRmi() = default;

  /// Builds over sorted `keys`; the caller owns the vector.
  Status Build(std::span<const std::string> keys,
               const StringRmiConfig& config);

  struct Prediction {
    size_t pos, lo, hi;
    uint32_t leaf;
    float std_err;
    bool is_btree_leaf;
  };

  /// Model execution only (tokenize + top NN + leaf linear).
  Prediction Predict(const std::string& key) const;

  /// Contract view of Predict: the error-bound window, with the raw
  /// estimate clamped in (one-sided error bands can exclude it).
  index::Approx ApproxPos(const std::string& key) const {
    const Prediction p = Predict(key);
    return index::Approx{std::clamp(p.pos, p.lo, p.hi), p.lo, p.hi};
  }

  /// Full lookup with bounded search + boundary fix-up.
  size_t Lookup(const std::string& key) const;

  size_t LowerBound(const std::string& key) const { return Lookup(key); }

  bool Contains(const std::string& key) const {
    const size_t pos = Lookup(key);
    return pos < data_.size() && data_[pos] == key;
  }

  size_t SizeBytes() const;
  size_t num_btree_leaves() const { return btree_leaves_.size(); }
  const models::NeuralNet& top() const { return top_; }

 private:
  static constexpr uint32_t kNoBTree = UINT32_MAX;

  struct Leaf {
    models::VecLinearModel model;
    int32_t min_err = 0;
    int32_t max_err = 0;
    float std_err = 0.0f;
  };
  struct BTreeLeaf {
    uint32_t begin = 0, end = 0;
    std::unique_ptr<btree::StringBTree> tree;
  };

  uint32_t Route(const double* features) const;
  size_t ClampPos(double pred) const;

  std::span<const std::string> data_;
  StringRmiConfig config_;
  models::StringTokenizer tokenizer_{20};
  models::NeuralNet top_;
  std::vector<Leaf> leaves_;
  std::vector<uint32_t> leaf_to_btree_;
  std::vector<BTreeLeaf> btree_leaves_;
};

}  // namespace li::rmi

#endif  // LI_RMI_STRING_RMI_H_
