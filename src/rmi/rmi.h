// The Recursive Model Index (§3.2) — the paper's primary contribution.
//
// A two-stage model hierarchy: the top model learns the overall CDF shape
// and routes each key to one of M second-stage models via
// leaf = clamp(M * f0(key) / N); every leaf model (simple linear — "for
// the second stage, simple linear models had the best performance",
// §3.7.1) predicts the absolute position, and per-leaf worst-case error
// bounds turn the prediction into a B-Tree-grade guarantee: the true
// position of any *stored* key lies in [pred + min_err, pred + max_err]
// (§3.4). For absent lookup keys with a non-monotonic model the bound can
// miss, so lookups finish with a boundary fix-up (exponential search) —
// the §3.4 "automatically adjust the search area" escape hatch.
//
// Training is stage-wise per Algorithm 1: fit the top model on all
// (key, position) pairs, route every key by the top prediction, fit each
// leaf on its routed subset, then record min/max/std error per leaf.
//
// The core is generic over the key type: index::KeyTraits<Key> maps each
// key to the real-valued feature the models regress on, so uint64_t,
// double and string keys share this one implementation, and the class
// satisfies the index::RangeIndex contract (ApproxPos / Lookup /
// SizeBytes) that the LIF synthesizer and benches enumerate over.

#ifndef LI_RMI_RMI_H_
#define LI_RMI_RMI_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "index/approx.h"
#include "index/key_traits.h"
#include "index/snapshottable.h"
#include "models/linear.h"
#include "models/model.h"
#include "rmi/trainers.h"
#include "search/search.h"
#include "simd/dispatch.h"
#include "snapshot/arena.h"
#include "snapshot/snapshot.h"

namespace li::rmi {

struct RmiConfig {
  size_t num_leaf_models = 10'000;       // "2nd stage models" in Figure 4
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  TrainOptions train;
  /// Cap on keys used to train the *top* model (§3.6: the top model
  /// converges before a single scan of the data). Leaves always see all
  /// their routed keys. 0 = no cap.
  size_t top_train_sample = 100'000;
};

/// Per-leaf metadata: the linear model plus its error band.
struct Leaf {
  models::LinearModel model;
  int32_t min_err = 0;  // most negative (actual - predicted), floored
  int32_t max_err = 0;  // most positive (actual - predicted), ceiled
  float std_err = 0.0f;
  /// Precomputed σ-scaled sweep sub-window for the vectorized batch path,
  /// as offsets relative to the clamped prediction: sweep
  /// [pos + sweep_lo, pos + sweep_hi) — the 3σ band intersected with the
  /// worst-case window for tight leaves, the full window for wide ones
  /// (where a σ band would pin and escape too often). Computed at Build
  /// so the lookup window stage is two adds and two clamps per key.
  int32_t sweep_lo = 0;
  int32_t sweep_hi = 1;
};
static_assert(std::is_trivially_copyable_v<Leaf>,
              "Leaf is persisted verbatim in snapshot leaf sections");

template <typename Key, typename TopModel>
class RmiIndex {
 public:
  using key_type = Key;
  using config_type = RmiConfig;
  using Traits = index::KeyTraits<Key>;

  /// Linear top models evaluate through the shared scalar spec
  /// (simd::ScalarRoute1), which is what the vector route kernel
  /// replicates; other top models (NN, multivariate) stay on the generic
  /// Predict() path.
  static constexpr bool kTopIsLinear =
      std::is_same_v<TopModel, models::LinearModel>;
  /// The vectorized batch path needs a linear top AND a key type with a
  /// feature-extraction kernel (uint64 / double). String keys and NN tops
  /// use the pipelined scalar batch path.
  static constexpr bool kSimdCapable =
      kTopIsLinear &&
      (std::is_same_v<Key, uint64_t> || std::is_same_v<Key, double>);

  RmiIndex() = default;

  /// Builds over sorted, strictly-increasing `keys` (caller owns the data).
  Status Build(std::span<const Key> keys, const RmiConfig& config) {
    if (config.num_leaf_models == 0) {
      return Status::InvalidArgument("Rmi: need at least one leaf model");
    }
    data_ = keys;
    config_ = config;
    snapshot_keepalive_.reset();
    route_factor_ = 0.0;
    // Retrain-reuse (Appendix D.1 merge cycles): when the leaf table is
    // owned and already the right size, refit in place — keeping the old
    // per-leaf error state around long enough to skip re-deriving the 3σ
    // sweep sub-windows for leaves whose error bounds did not change.
    const bool refit_in_place = !leaves_.mapped() &&
                                leaves_.size() == config.num_leaf_models &&
                                !keys.empty();
    if (!refit_in_place) leaves_.assign(config.num_leaf_models, Leaf{});
    if (keys.empty()) return Status::OK();
    const size_t n = keys.size();
    // Precomputed M/N rescale: one multiply per key on the routing path
    // instead of a multiply plus a ~20-cycle divide.
    route_factor_ = static_cast<double>(config.num_leaf_models) /
                    static_cast<double>(n);

    // ---- Stage 1: train the top model on (key, position) ----
    std::vector<double> xs, ys;
    const size_t cap = config.top_train_sample;
    const size_t top_n = (cap == 0 || cap >= n) ? n : cap;
    xs.reserve(top_n);
    ys.reserve(top_n);
    const double stride = static_cast<double>(n) / static_cast<double>(top_n);
    for (size_t i = 0; i < top_n; ++i) {
      const size_t idx = static_cast<size_t>(i * stride);
      xs.push_back(Traits::ToDouble(keys[idx]));
      ys.push_back(static_cast<double>(idx));
    }
    LI_RETURN_IF_ERROR(TrainModel(&top_, xs, ys, config.train));

    // ---- Route every key to its leaf (Algorithm 1, lines 8-10) ----
    const size_t m = config.num_leaf_models;
    std::vector<uint32_t> leaf_of(n);
    std::vector<uint32_t> counts(m, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t leaf = RouteFromTop(Traits::ToDouble(keys[i]));
      leaf_of[i] = leaf;
      ++counts[leaf];
    }
    std::vector<uint32_t> offsets(m + 1, 0);
    for (size_t j = 0; j < m; ++j) offsets[j + 1] = offsets[j] + counts[j];
    std::vector<uint32_t> routed(n);  // key indices grouped by leaf
    {
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i) routed[cursor[leaf_of[i]]++] = i;
    }

    // ---- Stage 2: fit each leaf + error bounds (Alg. 1 lines 11-12) ----
    std::vector<double> lx, ly;
    double fill_pos = 0.0;  // last seen position, for empty leaves
    for (size_t j = 0; j < m; ++j) {
      Leaf& leaf = leaves_[j];
      const Leaf prev = leaf;  // pre-refit state, valid iff refit_in_place
      const uint32_t begin = offsets[j], end = offsets[j + 1];
      if (begin == end) {
        // Empty leaf: constant model at the running position so absent
        // keys routed here land near the right region. Reset explicitly —
        // an in-place refit does not get the table-wide wipe.
        leaf = Leaf{};
        leaf.model = models::LinearModel(0.0, fill_pos);
        continue;
      }
      lx.clear();
      ly.clear();
      lx.reserve(end - begin);
      ly.reserve(end - begin);
      for (uint32_t r = begin; r < end; ++r) {
        lx.push_back(Traits::ToDouble(keys[routed[r]]));
        ly.push_back(static_cast<double>(routed[r]));
      }
      LI_RETURN_IF_ERROR(leaf.model.Fit(lx, ly));
      // Error bounds must be computed against the *clamped integer*
      // prediction the lookup path will actually use — i.e. the shared
      // kernel spec, so the bounds cover every dispatch level.
      double min_e = 0.0, max_e = 0.0, sum = 0.0, sum_sq = 0.0;
      bool first = true;
      for (size_t i = 0; i < lx.size(); ++i) {
        const double pred =
            static_cast<double>(PredictPos1(leaf.model, lx[i]));
        const double e = ly[i] - pred;
        if (first) {
          min_e = max_e = e;
          first = false;
        } else {
          min_e = std::min(min_e, e);
          max_e = std::max(max_e, e);
        }
        sum += e;
        sum_sq += e * e;
      }
      const double cnt = static_cast<double>(lx.size());
      const double mean = sum / cnt;
      leaf.min_err = static_cast<int32_t>(std::floor(min_e));
      leaf.max_err = static_cast<int32_t>(std::ceil(max_e));
      leaf.std_err = static_cast<float>(
          std::sqrt(std::max(0.0, sum_sq / cnt - mean * mean)));
      // Sweep windows are a pure function of (min_err, max_err, std_err):
      // when a rebuild lands on identical bounds (the common case for an
      // unchanged key distribution), reuse the previous sub-window
      // instead of re-deriving it.
      if (refit_in_place && prev.min_err == leaf.min_err &&
          prev.max_err == leaf.max_err && prev.std_err == leaf.std_err) {
        leaf.sweep_lo = prev.sweep_lo;
        leaf.sweep_hi = prev.sweep_hi;
        ++sweep_windows_reused_;
        fill_pos = ly.back();
        continue;
      }
      const int64_t two_sigma = 2 * static_cast<int64_t>(leaf.std_err);
      if (two_sigma > static_cast<int64_t>(kMaxSweepHalf)) {
        leaf.sweep_lo = leaf.min_err;  // wide leaf: full worst-case window
        leaf.sweep_hi = leaf.max_err + 1;
      } else {
        // 3σ band (capped): one extra sweep iteration per key is cheaper
        // than the ~5% full-window pin retries a 2σ band incurs.
        const int64_t three_sigma = 3 * static_cast<int64_t>(leaf.std_err);
        const int32_t h = static_cast<int32_t>(std::min<int64_t>(
            std::max<int64_t>(three_sigma, kMinSweepHalf), kMaxSweepHalf));
        leaf.sweep_lo = std::max(leaf.min_err, -h);
        leaf.sweep_hi = std::min(leaf.max_err + 1, h + 1);
        // A heavily biased leaf (error band entirely to one side) can
        // produce an inverted band; keep it minimally non-empty — the pin
        // fix-up recovers exactness either way.
        leaf.sweep_hi = std::max(leaf.sweep_hi, leaf.sweep_lo + 1);
      }
      fill_pos = ly.back();
    }
    return Status::OK();
  }

  /// Retrain-reuse hook for delta-merge cycles (Appendix D.1): retrains
  /// over a new key array with the last Build's configuration. The leaf
  /// table is re-assigned in place, so a steady-state merge loop reuses
  /// its allocation instead of paying a fresh one per retrain.
  Status Rebuild(std::span<const Key> keys) {
    return Build(keys, RmiConfig(config_));  // copy: Build writes config_
  }

  /// The pure model-execution path (what Figure 4's "Model (ns)" column
  /// times): two model evaluations, no search.
  struct Prediction {
    size_t pos = 0;   // clamped position estimate
    size_t lo = 0;    // inclusive search window start
    size_t hi = 0;    // exclusive search window end
    uint32_t leaf = 0;
    float std_err = 0.0f;
  };

  Prediction Predict(const Key& key) const {
    if (data_.empty()) return Prediction{};
    const double x = Traits::ToDouble(key);
    return PredictAtLeaf(RouteFromTop(x), x);
  }

  /// The contract's model-only entry point: prediction plus worst-case
  /// window, as an index::Approx. The raw estimate is clamped into the
  /// window: a leaf whose model under/over-shoots every routed key has a
  /// one-sided error band (e.g. min_err > 0), putting the unclamped
  /// prediction outside its own bound.
  index::Approx ApproxPos(const Key& key) const {
    const Prediction p = Predict(key);
    return index::Approx{std::clamp(p.pos, p.lo, p.hi), p.lo, p.hi};
  }

  /// Full lookup: model + bounded search + boundary fix-up. Returns
  /// lower_bound semantics over the data array for *any* key.
  size_t Lookup(const Key& key) const {
    if (data_.empty()) return 0;
    const Prediction p = Predict(key);
    return search::FindInWindow(config_.strategy, data_.data(), data_.size(),
                                key, index::Approx{p.pos, p.lo, p.hi},
                                static_cast<size_t>(p.std_err) + 1);
  }

  /// Historical name; identical to Lookup.
  size_t LowerBound(const Key& key) const { return Lookup(key); }

  /// Batched lookup: software-pipelines the three phases (route, predict,
  /// search) over a block of keys so the leaf-table and data-array cache
  /// misses of neighboring keys overlap instead of serializing — the
  /// hot-path amortization the single-key path cannot do. When a vector
  /// dispatch level is active (and the Key/TopModel combination is
  /// kernel-capable), the phases run as SIMD kernels over 64-key blocks;
  /// at scalar level this is the pipelined per-key loop below — which is
  /// also the baseline the per-level benchmarks compare against.
  void LookupBatch(std::span<const Key> keys, std::span<size_t> out) const {
    const size_t n = std::min(keys.size(), out.size());
    if (data_.empty()) {
      for (size_t i = 0; i < n; ++i) out[i] = 0;
      return;
    }
    if constexpr (kSimdCapable) {
      if (simd::ActiveLevel() != simd::Level::kScalar) {
        LookupBatchSimd(simd::GetKernels(), keys, out, n);
        return;
      }
    }
    constexpr size_t kBlock = 16;
    double xs[kBlock];
    uint32_t leaf[kBlock];
    Prediction preds[kBlock];
    for (size_t base = 0; base < n; base += kBlock) {
      const size_t b = std::min(kBlock, n - base);
      // Phase 1: top-model routing; prefetch each leaf entry.
      for (size_t k = 0; k < b; ++k) {
        xs[k] = Traits::ToDouble(keys[base + k]);
        leaf[k] = RouteFromTop(xs[k]);
        PrefetchRead(&leaves_[leaf[k]]);
      }
      // Phase 2: leaf predictions; prefetch the predicted data positions.
      for (size_t k = 0; k < b; ++k) {
        preds[k] = PredictAtLeaf(leaf[k], xs[k]);
        PrefetchRead(&data_[preds[k].pos]);
      }
      // Phase 3: bounded search per key.
      for (size_t k = 0; k < b; ++k) {
        out[base + k] = search::FindInWindow(
            config_.strategy, data_.data(), data_.size(), keys[base + k],
            index::Approx{preds[k].pos, preds[k].lo, preds[k].hi},
            static_cast<size_t>(preds[k].std_err) + 1);
      }
    }
  }

  /// Batched model execution only: pos[i] = the clamped position estimate
  /// for keys[i] (no search). This is LearnedHash's batch primitive — it
  /// always runs through the kernel table (the scalar table at scalar
  /// level), which is spec-identical to the single-key Predict path, so
  /// slots computed here match slots computed at Build-insert time.
  void PredictPosBatch(std::span<const Key> keys,
                       std::span<uint64_t> pos) const {
    const size_t n = std::min(keys.size(), pos.size());
    if (data_.empty()) {
      for (size_t i = 0; i < n; ++i) pos[i] = 0;
      return;
    }
    if constexpr (kSimdCapable) {
      const simd::Kernels& kern = simd::GetKernels();
      constexpr size_t kBlock = 64;
      alignas(64) double xs[kBlock];
      alignas(64) uint32_t leaf[kBlock];
      const uint32_t max_leaf = static_cast<uint32_t>(leaves_.size() - 1);
      for (size_t base = 0; base < n; base += kBlock) {
        const size_t b = std::min(kBlock, n - base);
        LoadFeatures(kern, keys.data() + base, b, xs);
        kern.route(xs, b, top_.slope(), top_.intercept(), route_factor_,
                   max_leaf, leaf);
        PredictLeafRuns(kern, xs, leaf, b, pos.data() + base);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        pos[i] = static_cast<uint64_t>(Predict(keys[i]).pos);
      }
    }
  }

  /// True iff `key` is present in the data.
  bool Contains(const Key& key) const {
    const size_t pos = Lookup(key);
    return pos < data_.size() && data_[pos] == key;
  }

  /// Index overhead in bytes (top model + leaf table), excluding the data
  /// array — the paper's Figure-4 size accounting.
  size_t SizeBytes() const {
    return top_.SizeBytes() + leaves_.size() * sizeof(Leaf);
  }

  const TopModel& top() const { return top_; }
  std::span<const Leaf> leaves() const { return leaves_.span(); }
  std::span<const Key> data() const { return data_; }
  const RmiConfig& config() const { return config_; }

  /// Cumulative count of leaves whose 3σ sweep sub-window was carried
  /// over from the previous Build because the error bounds matched
  /// (retrain-reuse diagnostic; see Rebuild).
  size_t sweep_windows_reused() const {
    return static_cast<size_t>(sweep_windows_reused_);
  }
  /// True when the leaf table is a zero-copy view into an open snapshot.
  bool FromSnapshot() const { return leaves_.mapped(); }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  //
  // Only kernel-capable instantiations (linear top, uint64/double keys)
  // snapshot: those are the flat-layout serving configurations; NN and
  // string variants return Unimplemented. Sections under `prefix`:
  //   meta    routing/search scalars + the top model's coefficients
  //   leaves  the Leaf table verbatim (models + error bands + sweeps)
  //   keys    the sorted key array (omitted when the parent owns it)

  /// Stable type tag used by type-erased snapshots (LIF winners) to pick
  /// the OpenSnapshot instantiation; empty when not snapshottable.
  static constexpr const char* SnapshotKindName() {
    if constexpr (kTopIsLinear && std::is_same_v<Key, uint64_t>) {
      return "rmi.linear.u64";
    } else if constexpr (kTopIsLinear && std::is_same_v<Key, double>) {
      return "rmi.linear.f64";
    } else {
      return "";
    }
  }

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix,
                       bool include_keys = true) const {
    if constexpr (!kSimdCapable) {
      return Status::Unimplemented(
          "RmiIndex snapshots require a linear top and uint64/double keys");
    } else {
      SnapshotMeta meta;
      meta.key_kind = KeyKind();
      meta.top_kind = 1;
      meta.num_leaf_models = config_.num_leaf_models;
      meta.top_train_sample = config_.top_train_sample;
      meta.strategy = static_cast<uint32_t>(config_.strategy);
      meta.has_keys = include_keys ? 1u : 0u;
      meta.data_size = data_.size();
      meta.route_factor = route_factor_;
      meta.top_slope = top_.slope();
      meta.top_intercept = top_.intercept();
      LI_RETURN_IF_ERROR(writer.AddPod(prefix + "meta", meta));
      LI_RETURN_IF_ERROR(writer.AddArray(prefix + "leaves", leaves_.span(),
                                         snapshot::SectionKind::kLeaves));
      if (include_keys) {
        LI_RETURN_IF_ERROR(writer.AddArray(prefix + "keys", data_,
                                           snapshot::SectionKind::kKeys));
      }
      return Status::OK();
    }
  }

  /// Loads from sections written with include_keys=true (self-contained)
  /// or =false (model-only; see the data-span overload for the case where
  /// the parent owns the keys). All structural fields are validated so a
  /// corrupt table yields a Status, not UB.
  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    return LoadSectionsImpl(reader, prefix, std::span<const Key>(), false);
  }

  /// Load with the key array supplied by the caller (a parent index that
  /// persisted the keys once for several components).
  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix,
                      std::span<const Key> external_keys) {
    return LoadSectionsImpl(reader, prefix, external_keys, true);
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<RmiIndex> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<RmiIndex>(path, opts);
  }

  /// Worst |error| across leaves — the hybrid-threshold diagnostic.
  int64_t MaxAbsError() const {
    int64_t worst = 0;
    for (const Leaf& l : leaves_) {
      worst = std::max<int64_t>(worst, -int64_t{l.min_err});
      worst = std::max<int64_t>(worst, int64_t{l.max_err});
    }
    return worst;
  }

  /// Mean of per-leaf max absolute error, weighted uniformly.
  double MeanStdError() const {
    if (leaves_.empty()) return 0.0;
    double s = 0.0;
    for (const Leaf& l : leaves_) s += l.std_err;
    return s / static_cast<double>(leaves_.size());
  }

 private:
  /// Fixed 64-byte snapshot metadata record (format.h SectionKind::kMeta).
  struct SnapshotMeta {
    uint32_t key_kind = 0;        // 1 = uint64_t, 2 = double
    uint32_t top_kind = 0;        // 1 = models::LinearModel
    uint64_t num_leaf_models = 0;
    uint64_t top_train_sample = 0;
    uint32_t strategy = 0;        // search::Strategy
    uint32_t has_keys = 0;        // keys section present
    uint64_t data_size = 0;       // key count the model was trained over
    double route_factor = 0.0;
    double top_slope = 0.0;
    double top_intercept = 0.0;
  };
  static_assert(sizeof(SnapshotMeta) == 64 &&
                std::is_trivially_copyable_v<SnapshotMeta>);

  static constexpr uint32_t KeyKind() {
    if constexpr (std::is_same_v<Key, uint64_t>) {
      return 1;
    } else if constexpr (std::is_same_v<Key, double>) {
      return 2;
    } else {
      return 0;
    }
  }

  Status LoadSectionsImpl(const snapshot::SnapshotReader& reader,
                          const std::string& prefix,
                          std::span<const Key> external_keys,
                          bool use_external) {
    if constexpr (!kSimdCapable) {
      (void)reader;
      (void)prefix;
      (void)external_keys;
      (void)use_external;
      return Status::Unimplemented(
          "RmiIndex snapshots require a linear top and uint64/double keys");
    } else {
      SnapshotMeta meta;
      LI_RETURN_IF_ERROR(reader.GetPod(prefix + "meta", &meta));
      if (meta.key_kind != KeyKind() || meta.top_kind != 1) {
        return Status::InvalidArgument(
            "RmiIndex snapshot was written for a different key/top type");
      }
      if (meta.num_leaf_models == 0 ||
          meta.strategy > static_cast<uint32_t>(
                              search::Strategy::kInterpolation)) {
        return Status::InvalidArgument("RmiIndex snapshot meta is corrupt");
      }
      auto leaves = reader.GetArray<Leaf>(prefix + "leaves");
      if (!leaves.ok()) return leaves.status();
      if (leaves.value().size() != meta.num_leaf_models) {
        return Status::InvalidArgument(
            "RmiIndex snapshot leaf table size disagrees with meta");
      }
      if (use_external) {
        if (external_keys.size() != meta.data_size) {
          return Status::InvalidArgument(
              "RmiIndex snapshot external key array has the wrong size");
        }
        data_ = external_keys;
      } else if (meta.has_keys != 0) {
        auto keys = reader.GetArray<Key>(prefix + "keys");
        if (!keys.ok()) return keys.status();
        if (keys.value().size() != meta.data_size) {
          return Status::InvalidArgument(
              "RmiIndex snapshot key section size disagrees with meta");
        }
        data_ = keys.value();  // zero-copy: served out of the mapping
      } else {
        // Model-only load (LearnedHash's CDF model): reconstruct a span
        // with the right *size* but no dereferenceable keys — mirroring
        // the documented dangling-span semantics in hash_fn.h, where only
        // size()/empty() are ever used on this span.
        data_ = std::span<const Key>(
            reinterpret_cast<const Key*>(leaves.value().data()),
            meta.data_size);
      }
      config_.num_leaf_models = meta.num_leaf_models;
      config_.strategy = static_cast<search::Strategy>(meta.strategy);
      config_.top_train_sample = meta.top_train_sample;
      top_ = models::LinearModel(meta.top_slope, meta.top_intercept);
      route_factor_ = meta.route_factor;
      leaves_ = snapshot::FlatVec<Leaf>::View(leaves.value(),
                                              reader.keepalive());
      snapshot_keepalive_ = reader.keepalive();
      return Status::OK();
    }
  }

  uint32_t RouteFromTop(double x) const {
    if constexpr (kTopIsLinear) {
      // The shared kernel spec — what the vector route kernel computes.
      return simd::ScalarRoute1(x, top_.slope(), top_.intercept(),
                                route_factor_,
                                static_cast<uint32_t>(leaves_.size() - 1));
    } else {
      const double scaled = top_.Predict(x) * route_factor_;
      if (!(scaled > 0.0)) return 0;  // also catches NaN
      const double cap = static_cast<double>(leaves_.size() - 1);
      return static_cast<uint32_t>(scaled < cap ? scaled : cap);
    }
  }

  /// Clamped integer position via the kernel spec: round-to-nearest
  /// (truncation would bias half of all predictions one position low,
  /// ~25% extra hash conflicts, §4.2), clamped to [0, size-1].
  size_t PredictPos1(const models::LinearModel& m, double x) const {
    return static_cast<size_t>(simd::ScalarPredict1(
        x, m.slope(), m.intercept(), data_.size() - 1));
  }

  /// The worst-case search window around a clamped prediction.
  index::Approx WindowOf(const Leaf& leaf, size_t pos) const {
    const size_t lo =
        leaf.min_err < 0 && pos < static_cast<size_t>(-leaf.min_err)
            ? 0
            : pos + leaf.min_err;
    const size_t hi =
        std::min(data_.size(), pos + static_cast<size_t>(std::max(
                                         leaf.max_err, int32_t{0})) + 1);
    return index::Approx{pos, std::min(lo, data_.size()), hi};
  }

  Prediction PredictAtLeaf(uint32_t j, double x) const {
    const Leaf& leaf = leaves_[j];
    const index::Approx w = WindowOf(leaf, PredictPos1(leaf.model, x));
    return Prediction{w.pos, w.lo, w.hi, j, leaf.std_err};
  }

  /// Feature extraction for one block (the kernel analogue of
  /// Traits::ToDouble over arithmetic keys).
  void LoadFeatures(const simd::Kernels& kern, const Key* keys, size_t b,
                    double* xs) const {
    if constexpr (std::is_same_v<Key, uint64_t>) {
      kern.u64_to_f64(keys, b, xs);
    } else {
      for (size_t k = 0; k < b; ++k) xs[k] = Traits::ToDouble(keys[k]);
    }
  }

  /// Gather-free leaf predict: keys routed to the same leaf sit in runs
  /// (routing is monotone in the key for monotone tops, and real batches
  /// are often sorted or locally clustered), so detect runs and evaluate
  /// each with one broadcast-coefficient kernel call instead of gathering
  /// per-lane slopes. Short runs (< half a vector) go through the scalar
  /// spec directly — same results, no setup cost.
  void PredictLeafRuns(const simd::Kernels& kern, const double* xs,
                       const uint32_t* leaf, size_t b, uint64_t* pos) const {
    const uint64_t max_pos = data_.size() - 1;
    size_t k = 0;
    while (k < b) {
      size_t e = k + 1;
      while (e < b && leaf[e] == leaf[k]) ++e;
      const models::LinearModel& m = leaves_[leaf[k]].model;
      if (e - k >= 4) {
        kern.predict_run(xs + k, e - k, m.slope(), m.intercept(), max_pos,
                         pos + k);
      } else {
        for (size_t t = k; t < e; ++t) {
          pos[t] = simd::ScalarPredict1(xs[t], m.slope(), m.intercept(),
                                        max_pos);
        }
      }
      k = e;
    }
  }

  /// σ-scaled half-width bounds for the batched last mile. The sweep
  /// sub-window is `pos ± clamp(3σ, kMinSweepHalf, kMaxSweepHalf)`
  /// intersected with the worst-case window, so one branchless
  /// compare-and-accumulate pass (no internal bisection) covers the
  /// typical-error mass while outliers escape through the pin-to-edge
  /// fix-up.
  static constexpr size_t kMinSweepHalf = 8;
  static constexpr size_t kMaxSweepHalf = 31;

  /// The vectorized batch pipeline: 64-key blocks through the kernel
  /// table — feature conversion, top routing (+ leaf prefetch),
  /// run-grouped leaf predict, then the last mile as a single branchless
  /// sweep of a σ-scaled sub-window around each prediction. Sub-window
  /// cache lines for the whole block are prefetched before any sweep
  /// runs, so the misses a per-key binary search would serialize overlap
  /// across keys instead. Any choice of sub-window is lossless: a result
  /// strictly inside it is the exact global lower bound, and a result
  /// pinned to either edge escapes through ExponentialSearch exactly like
  /// the scalar path's §3.4 fix-up — so results stay bit-identical across
  /// dispatch levels.
  void LookupBatchSimd(const simd::Kernels& kern, std::span<const Key> keys,
                       std::span<size_t> out, size_t n) const {
    constexpr size_t kBlock = 64;
    alignas(64) double xs[kBlock];
    alignas(64) uint32_t leaf[kBlock];
    alignas(64) uint64_t pos[kBlock];
    size_t lo[kBlock], hi[kBlock];  // σ-scaled sweep sub-windows
    const Key* data = data_.data();
    const size_t size = data_.size();
    const uint32_t max_leaf = static_cast<uint32_t>(leaves_.size() - 1);
    for (size_t base = 0; base < n; base += kBlock) {
      const size_t b = std::min(kBlock, n - base);
      LoadFeatures(kern, keys.data() + base, b, xs);
      kern.route(xs, b, top_.slope(), top_.intercept(), route_factor_,
                 max_leaf, leaf);
      for (size_t k = 0; k < b; ++k) PrefetchRead(&leaves_[leaf[k]]);
      PredictLeafRuns(kern, xs, leaf, b, pos);
      const int64_t isize = static_cast<int64_t>(size);
      for (size_t k = 0; k < b; ++k) {
        const Leaf& lf = leaves_[leaf[k]];
        // Apply the Build-precomputed σ sub-window offsets (see Leaf):
        // two adds and two clamps per key, all cmovs — σ varies per leaf,
        // so anything branchy here would mispredict constantly. Outliers
        // pin to a sub-window edge and escape through the staged fix-up
        // below.
        const int64_t p = static_cast<int64_t>(pos[k]);
        const int64_t sl = std::clamp<int64_t>(p + lf.sweep_lo, 0, isize);
        const int64_t sh = std::clamp<int64_t>(p + lf.sweep_hi, sl, isize);
        lo[k] = static_cast<size_t>(sl);
        hi[k] = static_cast<size_t>(sh);
        // Prefetch ends + midpoint: the sweep's span for tight keys, the
        // first bisection probe for wide ones. A prefetch of the empty
        // window's degenerate address is harmless (prefetch never faults).
        PrefetchRead(&data[lo[k]]);
        PrefetchRead(&data[lo[k] + (hi[k] - lo[k]) / 2]);
        PrefetchRead(&data[hi[k] - (hi[k] != 0 ? 1 : 0)]);
      }
      size_t res[kBlock];
      if constexpr (std::is_same_v<Key, uint64_t>) {
        kern.lower_bound_u64_multi(data, lo, hi, keys.data() + base, b, res);
      } else {
        kern.lower_bound_f64_multi(data, lo, hi, keys.data() + base, b, res);
      }
      for (size_t k = 0; k < b; ++k) {
        size_t r = res[k];
        if (LI_UNLIKELY((r == lo[k] && lo[k] > 0) ||
                        (r == hi[k] && hi[k] < size))) {
          // Staged escape: a pin at a σ-sub-window edge first retries the
          // full worst-case window; only a pin at the *window* edge takes
          // the global §3.4 exponential fix-up.
          const Key& key = keys[base + k];
          const index::Approx w =
              WindowOf(leaves_[leaf[k]], static_cast<size_t>(pos[k]));
          if (lo[k] != w.lo || hi[k] != w.hi) {
            if constexpr (std::is_same_v<Key, uint64_t>) {
              r = kern.lower_bound_u64(data, w.lo, w.hi, key);
            } else {
              r = kern.lower_bound_f64(data, w.lo, w.hi, key);
            }
          }
          if ((r == w.lo && w.lo > 0) || (r == w.hi && w.hi < size)) {
            r = search::ExponentialSearch(data, size, key, r);
          }
        }
        out[base + k] = r;
      }
    }
  }

  std::span<const Key> data_;
  RmiConfig config_;
  TopModel top_;
  /// Owned when built, a zero-copy mapped view when opened from a
  /// snapshot; the read path is identical either way.
  snapshot::FlatVec<Leaf> leaves_;
  double route_factor_ = 0.0;
  uint64_t sweep_windows_reused_ = 0;
  /// Pins the mmap that data_ (and leaves_) may point into.
  std::shared_ptr<const void> snapshot_keepalive_;
};

/// The paper's evaluated configuration: integer keys (Figure 4/5).
template <typename TopModel>
using Rmi = RmiIndex<uint64_t, TopModel>;

/// The Figure-4 configuration: NN or linear top with linear leaves.
using LinearRmi = Rmi<models::LinearModel>;
using MultivariateRmi = Rmi<models::MultivariateModel>;
using NeuralRmi = Rmi<models::NeuralNet>;

/// Key-generic instantiations: same core, different KeyTraits.
using DoubleRmi = RmiIndex<double, models::LinearModel>;
using PrefixStringRmi = RmiIndex<std::string, models::LinearModel>;

}  // namespace li::rmi

#endif  // LI_RMI_RMI_H_
