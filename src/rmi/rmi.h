// The Recursive Model Index (§3.2) — the paper's primary contribution.
//
// A two-stage model hierarchy: the top model learns the overall CDF shape
// and routes each key to one of M second-stage models via
// leaf = clamp(M * f0(key) / N); every leaf model (simple linear — "for
// the second stage, simple linear models had the best performance",
// §3.7.1) predicts the absolute position, and per-leaf worst-case error
// bounds turn the prediction into a B-Tree-grade guarantee: the true
// position of any *stored* key lies in [pred + min_err, pred + max_err]
// (§3.4). For absent lookup keys with a non-monotonic model the bound can
// miss, so lookups finish with a boundary fix-up (exponential search) —
// the §3.4 "automatically adjust the search area" escape hatch.
//
// Training is stage-wise per Algorithm 1: fit the top model on all
// (key, position) pairs, route every key by the top prediction, fit each
// leaf on its routed subset, then record min/max/std error per leaf.
//
// The core is generic over the key type: index::KeyTraits<Key> maps each
// key to the real-valued feature the models regress on, so uint64_t,
// double and string keys share this one implementation, and the class
// satisfies the index::RangeIndex contract (ApproxPos / Lookup /
// SizeBytes) that the LIF synthesizer and benches enumerate over.

#ifndef LI_RMI_RMI_H_
#define LI_RMI_RMI_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "index/approx.h"
#include "index/key_traits.h"
#include "models/linear.h"
#include "models/model.h"
#include "rmi/trainers.h"
#include "search/search.h"

namespace li::rmi {

struct RmiConfig {
  size_t num_leaf_models = 10'000;       // "2nd stage models" in Figure 4
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  TrainOptions train;
  /// Cap on keys used to train the *top* model (§3.6: the top model
  /// converges before a single scan of the data). Leaves always see all
  /// their routed keys. 0 = no cap.
  size_t top_train_sample = 100'000;
};

/// Per-leaf metadata: the linear model plus its error band.
struct Leaf {
  models::LinearModel model;
  int32_t min_err = 0;  // most negative (actual - predicted), floored
  int32_t max_err = 0;  // most positive (actual - predicted), ceiled
  float std_err = 0.0f;
};

template <typename Key, typename TopModel>
class RmiIndex {
 public:
  using key_type = Key;
  using config_type = RmiConfig;
  using Traits = index::KeyTraits<Key>;

  RmiIndex() = default;

  /// Builds over sorted, strictly-increasing `keys` (caller owns the data).
  Status Build(std::span<const Key> keys, const RmiConfig& config) {
    if (config.num_leaf_models == 0) {
      return Status::InvalidArgument("Rmi: need at least one leaf model");
    }
    data_ = keys;
    config_ = config;
    leaves_.assign(config.num_leaf_models, Leaf{});
    if (keys.empty()) return Status::OK();
    const size_t n = keys.size();

    // ---- Stage 1: train the top model on (key, position) ----
    std::vector<double> xs, ys;
    const size_t cap = config.top_train_sample;
    const size_t top_n = (cap == 0 || cap >= n) ? n : cap;
    xs.reserve(top_n);
    ys.reserve(top_n);
    const double stride = static_cast<double>(n) / static_cast<double>(top_n);
    for (size_t i = 0; i < top_n; ++i) {
      const size_t idx = static_cast<size_t>(i * stride);
      xs.push_back(Traits::ToDouble(keys[idx]));
      ys.push_back(static_cast<double>(idx));
    }
    LI_RETURN_IF_ERROR(TrainModel(&top_, xs, ys, config.train));

    // ---- Route every key to its leaf (Algorithm 1, lines 8-10) ----
    const size_t m = config.num_leaf_models;
    std::vector<uint32_t> leaf_of(n);
    std::vector<uint32_t> counts(m, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t leaf = RouteFromTop(Traits::ToDouble(keys[i]));
      leaf_of[i] = leaf;
      ++counts[leaf];
    }
    std::vector<uint32_t> offsets(m + 1, 0);
    for (size_t j = 0; j < m; ++j) offsets[j + 1] = offsets[j] + counts[j];
    std::vector<uint32_t> routed(n);  // key indices grouped by leaf
    {
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i) routed[cursor[leaf_of[i]]++] = i;
    }

    // ---- Stage 2: fit each leaf + error bounds (Alg. 1 lines 11-12) ----
    std::vector<double> lx, ly;
    double fill_pos = 0.0;  // last seen position, for empty leaves
    for (size_t j = 0; j < m; ++j) {
      Leaf& leaf = leaves_[j];
      const uint32_t begin = offsets[j], end = offsets[j + 1];
      if (begin == end) {
        // Empty leaf: constant model at the running position so absent
        // keys routed here land near the right region.
        leaf.model = models::LinearModel(0.0, fill_pos);
        continue;
      }
      lx.clear();
      ly.clear();
      lx.reserve(end - begin);
      ly.reserve(end - begin);
      for (uint32_t r = begin; r < end; ++r) {
        lx.push_back(Traits::ToDouble(keys[routed[r]]));
        ly.push_back(static_cast<double>(routed[r]));
      }
      LI_RETURN_IF_ERROR(leaf.model.Fit(lx, ly));
      // Error bounds must be computed against the *clamped integer*
      // prediction the lookup path will actually use.
      double min_e = 0.0, max_e = 0.0, sum = 0.0, sum_sq = 0.0;
      bool first = true;
      for (size_t i = 0; i < lx.size(); ++i) {
        const double pred =
            static_cast<double>(ClampPos(leaf.model.Predict(lx[i])));
        const double e = ly[i] - pred;
        if (first) {
          min_e = max_e = e;
          first = false;
        } else {
          min_e = std::min(min_e, e);
          max_e = std::max(max_e, e);
        }
        sum += e;
        sum_sq += e * e;
      }
      const double cnt = static_cast<double>(lx.size());
      const double mean = sum / cnt;
      leaf.min_err = static_cast<int32_t>(std::floor(min_e));
      leaf.max_err = static_cast<int32_t>(std::ceil(max_e));
      leaf.std_err = static_cast<float>(
          std::sqrt(std::max(0.0, sum_sq / cnt - mean * mean)));
      fill_pos = ly.back();
    }
    return Status::OK();
  }

  /// Retrain-reuse hook for delta-merge cycles (Appendix D.1): retrains
  /// over a new key array with the last Build's configuration. The leaf
  /// table is re-assigned in place, so a steady-state merge loop reuses
  /// its allocation instead of paying a fresh one per retrain.
  Status Rebuild(std::span<const Key> keys) {
    return Build(keys, RmiConfig(config_));  // copy: Build writes config_
  }

  /// The pure model-execution path (what Figure 4's "Model (ns)" column
  /// times): two model evaluations, no search.
  struct Prediction {
    size_t pos = 0;   // clamped position estimate
    size_t lo = 0;    // inclusive search window start
    size_t hi = 0;    // exclusive search window end
    uint32_t leaf = 0;
    float std_err = 0.0f;
  };

  Prediction Predict(const Key& key) const {
    if (data_.empty()) return Prediction{};
    const double x = Traits::ToDouble(key);
    return PredictAtLeaf(RouteFromTop(x), x);
  }

  /// The contract's model-only entry point: prediction plus worst-case
  /// window, as an index::Approx. The raw estimate is clamped into the
  /// window: a leaf whose model under/over-shoots every routed key has a
  /// one-sided error band (e.g. min_err > 0), putting the unclamped
  /// prediction outside its own bound.
  index::Approx ApproxPos(const Key& key) const {
    const Prediction p = Predict(key);
    return index::Approx{std::clamp(p.pos, p.lo, p.hi), p.lo, p.hi};
  }

  /// Full lookup: model + bounded search + boundary fix-up. Returns
  /// lower_bound semantics over the data array for *any* key.
  size_t Lookup(const Key& key) const {
    if (data_.empty()) return 0;
    const Prediction p = Predict(key);
    return search::FindInWindow(config_.strategy, data_.data(), data_.size(),
                                key, index::Approx{p.pos, p.lo, p.hi},
                                static_cast<size_t>(p.std_err) + 1);
  }

  /// Historical name; identical to Lookup.
  size_t LowerBound(const Key& key) const { return Lookup(key); }

  /// Batched lookup: software-pipelines the three phases (route, predict,
  /// search) over a block of keys so the leaf-table and data-array cache
  /// misses of neighboring keys overlap instead of serializing — the
  /// hot-path amortization the single-key path cannot do.
  void LookupBatch(std::span<const Key> keys, std::span<size_t> out) const {
    const size_t n = std::min(keys.size(), out.size());
    if (data_.empty()) {
      for (size_t i = 0; i < n; ++i) out[i] = 0;
      return;
    }
    constexpr size_t kBlock = 16;
    double xs[kBlock];
    uint32_t leaf[kBlock];
    Prediction preds[kBlock];
    for (size_t base = 0; base < n; base += kBlock) {
      const size_t b = std::min(kBlock, n - base);
      // Phase 1: top-model routing; prefetch each leaf entry.
      for (size_t k = 0; k < b; ++k) {
        xs[k] = Traits::ToDouble(keys[base + k]);
        leaf[k] = RouteFromTop(xs[k]);
        PrefetchRead(&leaves_[leaf[k]]);
      }
      // Phase 2: leaf predictions; prefetch the predicted data positions.
      for (size_t k = 0; k < b; ++k) {
        preds[k] = PredictAtLeaf(leaf[k], xs[k]);
        PrefetchRead(&data_[preds[k].pos]);
      }
      // Phase 3: bounded search per key.
      for (size_t k = 0; k < b; ++k) {
        out[base + k] = search::FindInWindow(
            config_.strategy, data_.data(), data_.size(), keys[base + k],
            index::Approx{preds[k].pos, preds[k].lo, preds[k].hi},
            static_cast<size_t>(preds[k].std_err) + 1);
      }
    }
  }

  /// True iff `key` is present in the data.
  bool Contains(const Key& key) const {
    const size_t pos = Lookup(key);
    return pos < data_.size() && data_[pos] == key;
  }

  /// Index overhead in bytes (top model + leaf table), excluding the data
  /// array — the paper's Figure-4 size accounting.
  size_t SizeBytes() const {
    return top_.SizeBytes() + leaves_.size() * sizeof(Leaf);
  }

  const TopModel& top() const { return top_; }
  std::span<const Leaf> leaves() const { return leaves_; }
  std::span<const Key> data() const { return data_; }
  const RmiConfig& config() const { return config_; }

  /// Worst |error| across leaves — the hybrid-threshold diagnostic.
  int64_t MaxAbsError() const {
    int64_t worst = 0;
    for (const Leaf& l : leaves_) {
      worst = std::max<int64_t>(worst, -int64_t{l.min_err});
      worst = std::max<int64_t>(worst, int64_t{l.max_err});
    }
    return worst;
  }

  /// Mean of per-leaf max absolute error, weighted uniformly.
  double MeanStdError() const {
    if (leaves_.empty()) return 0.0;
    double s = 0.0;
    for (const Leaf& l : leaves_) s += l.std_err;
    return s / static_cast<double>(leaves_.size());
  }

 private:
  uint32_t RouteFromTop(double x) const {
    const double scaled = top_.Predict(x) *
                          static_cast<double>(leaves_.size()) /
                          static_cast<double>(data_.size());
    if (!(scaled > 0.0)) return 0;  // also catches NaN
    const size_t j = static_cast<size_t>(scaled);
    return static_cast<uint32_t>(std::min(j, leaves_.size() - 1));
  }

  Prediction PredictAtLeaf(uint32_t j, double x) const {
    const Leaf& leaf = leaves_[j];
    const size_t pos = ClampPos(leaf.model.Predict(x));
    const size_t lo =
        leaf.min_err < 0 && pos < static_cast<size_t>(-leaf.min_err)
            ? 0
            : pos + leaf.min_err;
    const size_t hi =
        std::min(data_.size(), pos + static_cast<size_t>(std::max(
                                         leaf.max_err, int32_t{0})) + 1);
    return Prediction{pos, std::min(lo, data_.size()), hi, j, leaf.std_err};
  }

  size_t ClampPos(double pred) const {
    // Round to nearest: truncation would bias half of all predictions one
    // position low, which alone costs ~25% extra hash conflicts (§4.2).
    if (!(pred > 0.0)) return 0;
    const size_t p = static_cast<size_t>(pred + 0.5);
    return std::min(p, data_.size() - 1);
  }

  std::span<const Key> data_;
  RmiConfig config_;
  TopModel top_;
  std::vector<Leaf> leaves_;
};

/// The paper's evaluated configuration: integer keys (Figure 4/5).
template <typename TopModel>
using Rmi = RmiIndex<uint64_t, TopModel>;

/// The Figure-4 configuration: NN or linear top with linear leaves.
using LinearRmi = Rmi<models::LinearModel>;
using MultivariateRmi = Rmi<models::MultivariateModel>;
using NeuralRmi = Rmi<models::NeuralNet>;

/// Key-generic instantiations: same core, different KeyTraits.
using DoubleRmi = RmiIndex<double, models::LinearModel>;
using PrefixStringRmi = RmiIndex<std::string, models::LinearModel>;

}  // namespace li::rmi

#endif  // LI_RMI_RMI_H_
