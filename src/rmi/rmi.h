// The Recursive Model Index (§3.2) — the paper's primary contribution.
//
// A two-stage model hierarchy: the top model learns the overall CDF shape
// and routes each key to one of M second-stage models via
// leaf = clamp(M * f0(key) / N); every leaf model (simple linear — "for
// the second stage, simple linear models had the best performance",
// §3.7.1) predicts the absolute position, and per-leaf worst-case error
// bounds turn the prediction into a B-Tree-grade guarantee: the true
// position of any *stored* key lies in [pred + min_err, pred + max_err]
// (§3.4). For absent lookup keys with a non-monotonic model the bound can
// miss, so lookups finish with a boundary fix-up (exponential search) —
// the §3.4 "automatically adjust the search area" escape hatch.
//
// Training is stage-wise per Algorithm 1: fit the top model on all
// (key, position) pairs, route every key by the top prediction, fit each
// leaf on its routed subset, then record min/max/std error per leaf.

#ifndef LI_RMI_RMI_H_
#define LI_RMI_RMI_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "models/linear.h"
#include "models/model.h"
#include "rmi/trainers.h"
#include "search/search.h"

namespace li::rmi {

struct RmiConfig {
  size_t num_leaf_models = 10'000;       // "2nd stage models" in Figure 4
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  TrainOptions train;
  /// Cap on keys used to train the *top* model (§3.6: the top model
  /// converges before a single scan of the data). Leaves always see all
  /// their routed keys. 0 = no cap.
  size_t top_train_sample = 100'000;
};

/// Per-leaf metadata: the linear model plus its error band.
struct Leaf {
  models::LinearModel model;
  int32_t min_err = 0;  // most negative (actual - predicted), floored
  int32_t max_err = 0;  // most positive (actual - predicted), ceiled
  float std_err = 0.0f;
};

template <typename TopModel>
class Rmi {
 public:
  Rmi() = default;

  /// Builds over sorted, strictly-increasing `keys` (caller owns the data).
  Status Build(std::span<const uint64_t> keys, const RmiConfig& config) {
    if (config.num_leaf_models == 0) {
      return Status::InvalidArgument("Rmi: need at least one leaf model");
    }
    data_ = keys;
    config_ = config;
    leaves_.assign(config.num_leaf_models, Leaf{});
    if (keys.empty()) return Status::OK();
    const size_t n = keys.size();

    // ---- Stage 1: train the top model on (key, position) ----
    std::vector<double> xs, ys;
    const size_t cap = config.top_train_sample;
    const size_t top_n = (cap == 0 || cap >= n) ? n : cap;
    xs.reserve(top_n);
    ys.reserve(top_n);
    const double stride = static_cast<double>(n) / static_cast<double>(top_n);
    for (size_t i = 0; i < top_n; ++i) {
      const size_t idx = static_cast<size_t>(i * stride);
      xs.push_back(static_cast<double>(keys[idx]));
      ys.push_back(static_cast<double>(idx));
    }
    LI_RETURN_IF_ERROR(TrainModel(&top_, xs, ys, config.train));

    // ---- Route every key to its leaf (Algorithm 1, lines 8-10) ----
    const size_t m = config.num_leaf_models;
    std::vector<uint32_t> leaf_of(n);
    std::vector<uint32_t> counts(m, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t leaf = RouteFromTop(static_cast<double>(keys[i]));
      leaf_of[i] = leaf;
      ++counts[leaf];
    }
    std::vector<uint32_t> offsets(m + 1, 0);
    for (size_t j = 0; j < m; ++j) offsets[j + 1] = offsets[j] + counts[j];
    std::vector<uint32_t> routed(n);  // key indices grouped by leaf
    {
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i) routed[cursor[leaf_of[i]]++] = i;
    }

    // ---- Stage 2: fit each leaf + error bounds (Alg. 1 lines 11-12) ----
    std::vector<double> lx, ly;
    double fill_pos = 0.0;  // last seen position, for empty leaves
    for (size_t j = 0; j < m; ++j) {
      Leaf& leaf = leaves_[j];
      const uint32_t begin = offsets[j], end = offsets[j + 1];
      if (begin == end) {
        // Empty leaf: constant model at the running position so absent
        // keys routed here land near the right region.
        leaf.model = models::LinearModel(0.0, fill_pos);
        continue;
      }
      lx.clear();
      ly.clear();
      lx.reserve(end - begin);
      ly.reserve(end - begin);
      for (uint32_t r = begin; r < end; ++r) {
        lx.push_back(static_cast<double>(keys[routed[r]]));
        ly.push_back(static_cast<double>(routed[r]));
      }
      LI_RETURN_IF_ERROR(leaf.model.Fit(lx, ly));
      // Error bounds must be computed against the *clamped integer*
      // prediction the lookup path will actually use.
      double min_e = 0.0, max_e = 0.0, sum = 0.0, sum_sq = 0.0;
      bool first = true;
      for (size_t i = 0; i < lx.size(); ++i) {
        const double pred =
            static_cast<double>(ClampPos(leaf.model.Predict(lx[i])));
        const double e = ly[i] - pred;
        if (first) {
          min_e = max_e = e;
          first = false;
        } else {
          min_e = std::min(min_e, e);
          max_e = std::max(max_e, e);
        }
        sum += e;
        sum_sq += e * e;
      }
      const double cnt = static_cast<double>(lx.size());
      const double mean = sum / cnt;
      leaf.min_err = static_cast<int32_t>(std::floor(min_e));
      leaf.max_err = static_cast<int32_t>(std::ceil(max_e));
      leaf.std_err = static_cast<float>(
          std::sqrt(std::max(0.0, sum_sq / cnt - mean * mean)));
      fill_pos = ly.back();
    }
    return Status::OK();
  }

  /// The pure model-execution path (what Figure 4's "Model (ns)" column
  /// times): two model evaluations, no search.
  struct Prediction {
    size_t pos;   // clamped position estimate
    size_t lo;    // inclusive search window start
    size_t hi;    // exclusive search window end
    uint32_t leaf;
    float std_err;
  };

  Prediction Predict(uint64_t key) const {
    const double x = static_cast<double>(key);
    const uint32_t j = RouteFromTop(x);
    const Leaf& leaf = leaves_[j];
    const size_t pos = ClampPos(leaf.model.Predict(x));
    const size_t lo =
        leaf.min_err < 0 && pos < static_cast<size_t>(-leaf.min_err)
            ? 0
            : pos + leaf.min_err;
    const size_t hi =
        std::min(data_.size(), pos + static_cast<size_t>(std::max(
                                         leaf.max_err, int32_t{0})) + 1);
    return Prediction{pos, std::min(lo, data_.size()), hi, j, leaf.std_err};
  }

  /// Full lookup: model + bounded search + boundary fix-up. Returns
  /// lower_bound semantics over the data array for *any* key.
  size_t LowerBound(uint64_t key) const {
    if (data_.empty()) return 0;
    const Prediction p = Predict(key);
    size_t pos;
    switch (config_.strategy) {
      case search::Strategy::kBinary:
        pos = search::BinarySearch(data_.data(), p.lo, p.hi, key);
        break;
      case search::Strategy::kBiasedBinary:
        pos = search::BiasedBinarySearch(data_.data(), p.lo, p.hi, key, p.pos);
        break;
      case search::Strategy::kBiasedQuaternary:
        pos = search::BiasedQuaternarySearch(
            data_.data(), p.lo, p.hi, key, p.pos,
            static_cast<size_t>(p.std_err) + 1);
        break;
      case search::Strategy::kExponential:
        // Window-free: gallops from the prediction (needs no stored error).
        return search::ExponentialSearch(data_.data(), data_.size(), key,
                                         p.pos);
      case search::Strategy::kInterpolation:
        pos = search::InterpolationSearch(data_.data(), p.lo, p.hi, key);
        break;
      default:
        pos = search::BinarySearch(data_.data(), p.lo, p.hi, key);
    }
    // §3.4 adjustment: if the result sits on the window boundary the true
    // answer may lie outside (absent key + non-monotonic model); gallop.
    if (LI_UNLIKELY((pos == p.lo && p.lo > 0) ||
                    (pos == p.hi && p.hi < data_.size()))) {
      return search::ExponentialSearch(data_.data(), data_.size(), key, pos);
    }
    return pos;
  }

  /// True iff `key` is present in the data.
  bool Contains(uint64_t key) const {
    const size_t pos = LowerBound(key);
    return pos < data_.size() && data_[pos] == key;
  }

  /// Index overhead in bytes (top model + leaf table), excluding the data
  /// array — the paper's Figure-4 size accounting.
  size_t SizeBytes() const {
    return top_.SizeBytes() + leaves_.size() * sizeof(Leaf);
  }

  const TopModel& top() const { return top_; }
  std::span<const Leaf> leaves() const { return leaves_; }
  std::span<const uint64_t> data() const { return data_; }
  const RmiConfig& config() const { return config_; }

  /// Worst |error| across leaves — the hybrid-threshold diagnostic.
  int64_t MaxAbsError() const {
    int64_t worst = 0;
    for (const Leaf& l : leaves_) {
      worst = std::max<int64_t>(worst, -int64_t{l.min_err});
      worst = std::max<int64_t>(worst, int64_t{l.max_err});
    }
    return worst;
  }

  /// Mean of per-leaf max absolute error, weighted uniformly.
  double MeanStdError() const {
    if (leaves_.empty()) return 0.0;
    double s = 0.0;
    for (const Leaf& l : leaves_) s += l.std_err;
    return s / static_cast<double>(leaves_.size());
  }

 private:
  uint32_t RouteFromTop(double x) const {
    const double scaled = top_.Predict(x) *
                          static_cast<double>(leaves_.size()) /
                          static_cast<double>(data_.size());
    if (!(scaled > 0.0)) return 0;  // also catches NaN
    const size_t j = static_cast<size_t>(scaled);
    return static_cast<uint32_t>(std::min(j, leaves_.size() - 1));
  }

  size_t ClampPos(double pred) const {
    // Round to nearest: truncation would bias half of all predictions one
    // position low, which alone costs ~25% extra hash conflicts (§4.2).
    if (!(pred > 0.0)) return 0;
    const size_t p = static_cast<size_t>(pred + 0.5);
    return std::min(p, data_.size() - 1);
  }

  std::span<const uint64_t> data_;
  RmiConfig config_;
  TopModel top_;
  std::vector<Leaf> leaves_;
};

/// The Figure-4 configuration: NN or linear top with linear leaves.
using LinearRmi = Rmi<models::LinearModel>;
using MultivariateRmi = Rmi<models::MultivariateModel>;
using NeuralRmi = Rmi<models::NeuralNet>;

}  // namespace li::rmi

#endif  // LI_RMI_RMI_H_
