// Hybrid RMI (§3.3, Algorithm 1 lines 11-14): after stage-wise training,
// any second-stage model whose absolute min/max-error exceeds `threshold`
// is replaced with a B-Tree over the key range routed to it. This bounds
// the worst-case at B-Tree performance: "in the case of an extremely
// difficult to learn data distribution, all models would be automatically
// replaced by B-Trees, making it virtually an entire B-Tree."

#ifndef LI_RMI_HYBRID_H_
#define LI_RMI_HYBRID_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "btree/readonly_btree.h"
#include "index/approx.h"
#include "rmi/rmi.h"

namespace li::rmi {

struct HybridConfig {
  RmiConfig rmi;
  int64_t threshold = 128;         // max tolerated |error| before B-Tree swap
  size_t btree_keys_per_page = 64; // page size of replacement B-Trees
};

template <typename TopModel>
class HybridRmi {
 public:
  using key_type = uint64_t;
  using config_type = HybridConfig;

  Status Build(std::span<const uint64_t> keys, const HybridConfig& config) {
    config_ = config;
    data_ = keys;
    LI_RETURN_IF_ERROR(rmi_.Build(keys, config.rmi));
    btree_leaves_.clear();
    leaf_to_btree_.assign(config.rmi.num_leaf_models, kNoBTree);
    if (keys.empty()) return Status::OK();

    // Find, per leaf, the contiguous position span of keys routed to it.
    const size_t m = config.rmi.num_leaf_models;
    std::vector<uint32_t> span_begin(m, UINT32_MAX), span_end(m, 0);
    for (size_t i = 0; i < keys.size(); ++i) {
      const uint32_t j = rmi_.Predict(keys[i]).leaf;
      span_begin[j] = std::min(span_begin[j], static_cast<uint32_t>(i));
      span_end[j] = std::max(span_end[j], static_cast<uint32_t>(i + 1));
    }
    // Replace over-threshold leaves (Algorithm 1 lines 13-14). Leaves
    // whose routed keys scatter across a large slice of the data signal a
    // non-monotonic routing artifact rather than a hard-to-learn region;
    // a B-Tree over such a span would duplicate separators massively, so
    // those leaves keep their model (the lookup fix-up stays correct).
    const auto leaves = rmi_.leaves();
    const uint32_t span_cap = static_cast<uint32_t>(
        std::min<size_t>(keys.size(), 16 * (keys.size() / m + 1)));
    for (size_t j = 0; j < m; ++j) {
      if (span_begin[j] == UINT32_MAX) continue;  // empty leaf
      if (span_end[j] - span_begin[j] > span_cap) continue;
      const int64_t abs_err = std::max<int64_t>(-int64_t{leaves[j].min_err},
                                                int64_t{leaves[j].max_err});
      if (abs_err <= config.threshold) continue;
      BTreeLeaf bl;
      bl.begin = span_begin[j];
      bl.end = span_end[j];
      bl.tree = std::make_unique<btree::ReadOnlyBTree>();
      LI_RETURN_IF_ERROR(bl.tree->Build(
          keys.subspan(bl.begin, bl.end - bl.begin),
          config.btree_keys_per_page));
      leaf_to_btree_[j] = static_cast<uint32_t>(btree_leaves_.size());
      btree_leaves_.push_back(std::move(bl));
    }
    return Status::OK();
  }

  /// Model-only window: the underlying RMI's error-bound window, which is
  /// valid for stored keys whether or not the routed leaf was replaced by
  /// a B-Tree (bounds are computed before the swap).
  index::Approx ApproxPos(uint64_t key) const { return rmi_.ApproxPos(key); }

  size_t Lookup(uint64_t key) const {
    if (data_.empty()) return 0;
    const auto p = rmi_.Predict(key);
    const uint32_t bt = leaf_to_btree_[p.leaf];
    if (bt == kNoBTree) {
      return search::FindInWindow(config_.rmi.strategy, data_.data(),
                                  data_.size(), key,
                                  index::Approx{p.pos, p.lo, p.hi},
                                  static_cast<size_t>(p.std_err) + 1);
    }
    const BTreeLeaf& bl = btree_leaves_[bt];
    size_t pos = bl.begin + bl.tree->LowerBound(key);
    // Boundary fix-up at the span edges, same escape hatch as the RMI.
    if (LI_UNLIKELY((pos == bl.begin && bl.begin > 0) ||
                    (pos == bl.end && bl.end < data_.size()))) {
      pos = search::ExponentialSearch(data_.data(), data_.size(), key, pos);
    }
    return pos;
  }

  size_t LowerBound(uint64_t key) const { return Lookup(key); }

  bool Contains(uint64_t key) const {
    const size_t pos = Lookup(key);
    return pos < data_.size() && data_[pos] == key;
  }

  size_t SizeBytes() const {
    size_t bytes = rmi_.SizeBytes() +
                   leaf_to_btree_.size() * sizeof(uint32_t);
    for (const BTreeLeaf& bl : btree_leaves_) bytes += bl.tree->SizeBytes();
    return bytes;
  }

  size_t num_btree_leaves() const { return btree_leaves_.size(); }
  const Rmi<TopModel>& rmi() const { return rmi_; }

 private:
  static constexpr uint32_t kNoBTree = UINT32_MAX;

  struct BTreeLeaf {
    uint32_t begin = 0, end = 0;
    std::unique_ptr<btree::ReadOnlyBTree> tree;
  };

  std::span<const uint64_t> data_;
  HybridConfig config_;
  Rmi<TopModel> rmi_;
  std::vector<uint32_t> leaf_to_btree_;
  std::vector<BTreeLeaf> btree_leaves_;
};

}  // namespace li::rmi

#endif  // LI_RMI_HYBRID_H_
