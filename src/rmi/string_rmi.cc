#include "rmi/string_rmi.h"

#include <algorithm>
#include <cmath>

namespace li::rmi {

uint32_t StringRmi::Route(const double* features) const {
  const double scaled =
      top_.PredictVec({features, config_.max_len}) *
      static_cast<double>(leaves_.size()) / static_cast<double>(data_.size());
  if (!(scaled > 0.0)) return 0;
  const size_t j = static_cast<size_t>(scaled);
  return static_cast<uint32_t>(std::min(j, leaves_.size() - 1));
}

size_t StringRmi::ClampPos(double pred) const {
  // Round to nearest (see Rmi::ClampPos).
  if (!(pred > 0.0)) return 0;
  const size_t p = static_cast<size_t>(pred + 0.5);
  return std::min(p, data_.size() - 1);
}

Status StringRmi::Build(std::span<const std::string> keys,
                        const StringRmiConfig& config) {
  if (config.num_leaf_models == 0) {
    return Status::InvalidArgument("StringRmi: need at least one leaf model");
  }
  if (config.max_len < 1 ||
      config.max_len > models::NeuralNet::kMaxWidth) {
    return Status::InvalidArgument("StringRmi: bad max_len");
  }
  data_ = keys;
  config_ = config;
  tokenizer_ = models::StringTokenizer(config.max_len);
  leaves_.assign(config.num_leaf_models, Leaf{});
  leaf_to_btree_.assign(config.num_leaf_models, kNoBTree);
  btree_leaves_.clear();
  if (keys.empty()) return Status::OK();
  const size_t n = keys.size();
  const size_t d = config.max_len;

  // ---- Train the top net on a strided sample ----
  const size_t cap = config.top_train_sample;
  const size_t top_n = (cap == 0 || cap >= n) ? n : cap;
  std::vector<double> feats(top_n * d);
  std::vector<double> ys(top_n);
  const double stride = static_cast<double>(n) / static_cast<double>(top_n);
  for (size_t i = 0; i < top_n; ++i) {
    const size_t idx = static_cast<size_t>(i * stride);
    tokenizer_.Tokenize(keys[idx], &feats[i * d]);
    ys[i] = static_cast<double>(idx);
  }
  models::NNConfig nn = config.top_nn;
  nn.input_dim = static_cast<int>(d);
  LI_RETURN_IF_ERROR(top_.FitVec(feats, top_n, ys, nn));

  // ---- Route all keys ----
  const size_t m = config.num_leaf_models;
  std::vector<uint32_t> leaf_of(n);
  std::vector<uint32_t> counts(m, 0);
  std::vector<double> buf(d);
  for (size_t i = 0; i < n; ++i) {
    tokenizer_.Tokenize(keys[i], buf.data());
    const uint32_t j = Route(buf.data());
    leaf_of[i] = j;
    ++counts[j];
  }
  std::vector<uint32_t> offsets(m + 1, 0);
  for (size_t j = 0; j < m; ++j) offsets[j + 1] = offsets[j] + counts[j];
  std::vector<uint32_t> routed(n);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < n; ++i) routed[cursor[leaf_of[i]]++] = i;
  }

  // ---- Fit leaves + error bounds; optionally swap in B-Trees ----
  std::vector<double> lf, ly;
  double fill_pos = 0.0;
  std::vector<uint32_t> span_begin(m, UINT32_MAX), span_end(m, 0);
  for (size_t j = 0; j < m; ++j) {
    Leaf& leaf = leaves_[j];
    const uint32_t begin = offsets[j], end = offsets[j + 1];
    if (begin == end) {
      std::vector<double> empty_feats;
      leaf.model.Fit(empty_feats, 0, d, {});
      // VecLinearModel with zero rows is a zero model; bias via refit below
      // is unnecessary — route fix-up covers absent keys. Record fill.
      (void)fill_pos;
      continue;
    }
    const size_t cnt = end - begin;
    lf.assign(cnt * d, 0.0);
    ly.resize(cnt);
    for (uint32_t r = begin; r < end; ++r) {
      tokenizer_.Tokenize(keys[routed[r]], &lf[(r - begin) * d]);
      ly[r - begin] = static_cast<double>(routed[r]);
    }
    LI_RETURN_IF_ERROR(leaf.model.Fit(lf, cnt, d, ly));
    double min_e = 0.0, max_e = 0.0, sum = 0.0, sum_sq = 0.0;
    bool first = true;
    for (size_t i = 0; i < cnt; ++i) {
      const double pred = static_cast<double>(
          ClampPos(leaf.model.PredictVec({&lf[i * d], d})));
      const double e = ly[i] - pred;
      if (first) {
        min_e = max_e = e;
        first = false;
      } else {
        min_e = std::min(min_e, e);
        max_e = std::max(max_e, e);
      }
      sum += e;
      sum_sq += e * e;
      span_begin[j] = std::min(span_begin[j],
                               static_cast<uint32_t>(ly[i]));
      span_end[j] =
          std::max(span_end[j], static_cast<uint32_t>(ly[i]) + 1);
    }
    const double dc = static_cast<double>(cnt);
    const double mean = sum / dc;
    leaf.min_err = static_cast<int32_t>(std::floor(min_e));
    leaf.max_err = static_cast<int32_t>(std::ceil(max_e));
    leaf.std_err =
        static_cast<float>(std::sqrt(std::max(0.0, sum_sq / dc - mean * mean)));
    fill_pos = ly.back();
  }

  if (config.hybrid_threshold > 0) {
    // Span cap: a leaf whose routed keys scatter across a large slice of
    // the data signals a *routing* problem (non-monotonic top model), not
    // a hard-to-learn region; replacing it with a B-Tree over that slice
    // would duplicate separators massively. Such leaves stay models.
    const uint32_t span_cap = static_cast<uint32_t>(
        std::min<size_t>(n, 16 * (n / m + 1)));
    for (size_t j = 0; j < m; ++j) {
      if (span_begin[j] == UINT32_MAX) continue;
      if (span_end[j] - span_begin[j] > span_cap) continue;
      const int64_t abs_err = std::max<int64_t>(
          -int64_t{leaves_[j].min_err}, int64_t{leaves_[j].max_err});
      if (abs_err <= config.hybrid_threshold) continue;
      BTreeLeaf bl;
      bl.begin = span_begin[j];
      bl.end = span_end[j];
      bl.tree = std::make_unique<btree::StringBTree>();
      LI_RETURN_IF_ERROR(
          bl.tree->Build(keys.subspan(bl.begin, bl.end - bl.begin),
                         config.btree_keys_per_page));
      leaf_to_btree_[j] = static_cast<uint32_t>(btree_leaves_.size());
      btree_leaves_.push_back(std::move(bl));
    }
  }
  return Status::OK();
}

StringRmi::Prediction StringRmi::Predict(const std::string& key) const {
  if (data_.empty()) return Prediction{0, 0, 0, 0, 0.0f, false};
  double buf[models::NeuralNet::kMaxWidth];
  tokenizer_.Tokenize(key, buf);
  const uint32_t j = Route(buf);
  const Leaf& leaf = leaves_[j];
  const size_t pos =
      ClampPos(leaf.model.PredictVec({buf, config_.max_len}));
  const size_t lo =
      leaf.min_err < 0 && pos < static_cast<size_t>(-leaf.min_err)
          ? 0
          : pos + leaf.min_err;
  const size_t hi = std::min(
      data_.size(),
      pos + static_cast<size_t>(std::max(leaf.max_err, int32_t{0})) + 1);
  return Prediction{pos,  std::min(lo, data_.size()),
                    hi,   j,
                    leaf.std_err, leaf_to_btree_[j] != kNoBTree};
}

size_t StringRmi::Lookup(const std::string& key) const {
  if (data_.empty()) return 0;
  const Prediction p = Predict(key);
  if (p.is_btree_leaf) {
    const BTreeLeaf& bl = btree_leaves_[leaf_to_btree_[p.leaf]];
    size_t pos = bl.begin + bl.tree->LowerBound(key);
    if (LI_UNLIKELY((pos == bl.begin && bl.begin > 0) ||
                    (pos == bl.end && bl.end < data_.size()))) {
      pos = search::ExponentialSearch(data_.data(), data_.size(), key, pos);
    }
    return pos;
  }
  return search::FindInWindow(config_.strategy, data_.data(), data_.size(),
                              key, index::Approx{p.pos, p.lo, p.hi},
                              static_cast<size_t>(p.std_err) + 1);
}

size_t StringRmi::SizeBytes() const {
  size_t bytes = top_.SizeBytes();
  // Leaf table: weights + bias + error metadata per leaf.
  bytes += leaves_.size() *
           ((config_.max_len + 1) * sizeof(double) + 2 * sizeof(int32_t) +
            sizeof(float));
  bytes += leaf_to_btree_.size() * sizeof(uint32_t);
  for (const BTreeLeaf& bl : btree_leaves_) bytes += bl.tree->SizeBytes();
  return bytes;
}

}  // namespace li::rmi
