// Uniform training entry points so the templated RMI can fit any top-model
// type (linear, multivariate with auto feature selection, neural net) via a
// single overload set — LIF's "given an index specification, generate
// different index configurations" in C++ templates instead of codegen.

#ifndef LI_RMI_TRAINERS_H_
#define LI_RMI_TRAINERS_H_

#include <span>

#include "common/status.h"
#include "models/isotonic.h"
#include "models/linear.h"
#include "models/multivariate.h"
#include "models/nn.h"

namespace li::rmi {

/// Per-index training knobs forwarded to models that need them.
struct TrainOptions {
  models::NNConfig nn;  // used only when the model is a NeuralNet
};

inline Status TrainModel(models::LinearModel* m, std::span<const double> xs,
                         std::span<const double> ys, const TrainOptions&) {
  return m->Fit(xs, ys);
}

inline Status TrainModel(models::OffsetModel* m, std::span<const double> xs,
                         std::span<const double> ys, const TrainOptions&) {
  return m->Fit(xs, ys);
}

inline Status TrainModel(models::MultivariateModel* m,
                         std::span<const double> xs,
                         std::span<const double> ys, const TrainOptions&) {
  return m->FitAutoSelect(xs, ys);
}

inline Status TrainModel(models::NeuralNet* m, std::span<const double> xs,
                         std::span<const double> ys,
                         const TrainOptions& opts) {
  return m->Fit(xs, ys, opts.nn);
}

/// Monotonic top model (§3.4): guarantees monotone routing, so error
/// bounds hold even for absent lookup keys at the routing stage.
inline Status TrainModel(models::IsotonicModel* m, std::span<const double> xs,
                         std::span<const double> ys, const TrainOptions&) {
  return m->Fit(xs, ys, /*max_knots=*/512);
}

}  // namespace li::rmi

#endif  // LI_RMI_TRAINERS_H_
