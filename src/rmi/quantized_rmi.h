// RMI with a quantized second stage (§3.7.1's quantization discussion):
// builds a standard 2-stage linear RMI, then re-encodes the leaf table at
// float32 or int16 precision, folding quantization drift into the error
// bounds so lower_bound semantics are preserved bit-for-bit.

#ifndef LI_RMI_QUANTIZED_RMI_H_
#define LI_RMI_QUANTIZED_RMI_H_

#include <algorithm>
#include <span>
#include <vector>

#include "index/approx.h"
#include "models/quantized.h"
#include "rmi/rmi.h"

namespace li::rmi {

struct QuantizedRmiConfig {
  RmiConfig rmi;
  models::QuantLevel level = models::QuantLevel::kFloat32;
};

class QuantizedRmi {
 public:
  using key_type = uint64_t;
  using config_type = QuantizedRmiConfig;

  QuantizedRmi() = default;

  Status Build(std::span<const uint64_t> keys,
               const QuantizedRmiConfig& config) {
    return Build(keys, config.rmi, config.level);
  }

  Status Build(std::span<const uint64_t> keys, const RmiConfig& config,
               models::QuantLevel level) {
    data_ = keys;
    LI_RETURN_IF_ERROR(rmi_.Build(keys, config));
    if (keys.empty()) {
      return table_.Encode({}, level);
    }
    // Recover each leaf's anchor key and span by routing every key once.
    const auto leaves = rmi_.leaves();
    const size_t m = leaves.size();
    std::vector<double> first_x(m, 0.0), last_x(m, 0.0);
    std::vector<bool> seen(m, false);
    for (const uint64_t key : keys) {
      const uint32_t j = rmi_.Predict(key).leaf;
      const double x = static_cast<double>(key);
      if (!seen[j]) {
        seen[j] = true;
        first_x[j] = x;
      }
      last_x[j] = x;
    }
    std::vector<models::QuantizedLeafTable::LeafRef> refs(m);
    for (size_t j = 0; j < m; ++j) {
      refs[j].slope = leaves[j].model.slope();
      refs[j].intercept = leaves[j].model.intercept();
      refs[j].min_err = leaves[j].min_err;
      refs[j].max_err = leaves[j].max_err;
      refs[j].anchor_x = first_x[j];
      refs[j].key_span = std::max(0.0, last_x[j] - first_x[j]);
    }
    return table_.Encode(refs, level);
  }

  /// Prediction through the quantized leaf table, with the drift-widened
  /// error window (top routing stays unquantized).
  index::Approx ApproxPos(uint64_t key) const {
    if (data_.empty()) return index::Approx{};
    const double x = static_cast<double>(key);
    const uint32_t j = rmi_.Predict(key).leaf;
    const double raw = table_.Predict(j, x);
    size_t pos = 0;
    if (raw > 0.0) {
      pos = std::min(static_cast<size_t>(raw + 0.5), data_.size() - 1);
    }
    const int32_t min_e = table_.min_err(j);
    const int32_t max_e = table_.max_err(j);
    const size_t lo = min_e < 0 && pos < static_cast<size_t>(-min_e)
                          ? 0
                          : pos + min_e;
    const size_t hi = std::min(
        data_.size(), pos + static_cast<size_t>(std::max(max_e, 0)) + 1);
    const size_t lo_c = std::min(lo, data_.size());
    // One-sided error bands can put the raw estimate outside its window.
    return index::Approx{std::clamp(pos, lo_c, hi), lo_c, hi};
  }

  size_t Lookup(uint64_t key) const {
    if (data_.empty()) return 0;
    return search::FindInWindow(rmi_.config().strategy, data_.data(),
                                data_.size(), key, ApproxPos(key));
  }

  size_t LowerBound(uint64_t key) const { return Lookup(key); }

  /// Top model + quantized leaf table bytes.
  size_t SizeBytes() const {
    return rmi_.top().SizeBytes() + table_.SizeBytes();
  }
  const models::QuantizedLeafTable& table() const { return table_; }

 private:
  std::span<const uint64_t> data_;
  Rmi<models::LinearModel> rmi_;
  models::QuantizedLeafTable table_;
};

}  // namespace li::rmi

#endif  // LI_RMI_QUANTIZED_RMI_H_
