// K-stage Recursive Model Index — the general form of §3.2's architecture
// ("at stage l there are M_l models ... we iteratively train each stage
// with loss L_l"). The 2-stage Rmi<> covers the paper's evaluation; this
// generalization exercises the full Algorithm-1 recursion with linear
// models at every stage and is used by the stage-count ablation.
//
// Stage 0 is one model over all keys; each inner stage routes by
// leaf = clamp(M_next * f(x) / N); the final stage carries the error
// bounds, exactly like the 2-stage index.

#ifndef LI_RMI_MULTISTAGE_H_
#define LI_RMI_MULTISTAGE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/approx.h"
#include "models/linear.h"
#include "search/search.h"

namespace li::rmi {

struct MultiStageConfig {
  /// Models per stage, excluding the implicit single stage-0 model.
  /// E.g. {100, 10'000} is a 3-stage index.
  std::vector<size_t> stage_sizes = {10'000};
  search::Strategy strategy = search::Strategy::kBiasedBinary;
};

class MultiStageRmi {
 public:
  using key_type = uint64_t;
  using config_type = MultiStageConfig;

  MultiStageRmi() = default;

  Status Build(std::span<const uint64_t> keys, const MultiStageConfig& config) {
    if (config.stage_sizes.empty()) {
      return Status::InvalidArgument("MultiStageRmi: need >= 1 stage");
    }
    for (const size_t m : config.stage_sizes) {
      if (m == 0) {
        return Status::InvalidArgument("MultiStageRmi: empty stage");
      }
    }
    data_ = keys;
    config_ = config;
    const size_t num_stages = config.stage_sizes.size();
    stages_.assign(num_stages, {});
    errors_.clear();
    if (keys.empty()) {
      top_ = models::LinearModel();
      errors_.assign(config.stage_sizes.back(), ErrorBand{});
      return Status::OK();
    }
    const size_t n = keys.size();

    // Stage 0: a single model over everything.
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = static_cast<double>(keys[i]);
      ys[i] = static_cast<double>(i);
    }
    LI_RETURN_IF_ERROR(top_.Fit(xs, ys));

    // `assignment[i]` = model index of key i at the stage being built.
    std::vector<uint32_t> assignment(n);
    for (size_t i = 0; i < n; ++i) {
      assignment[i] = Route(top_.Predict(xs[i]), config.stage_sizes[0]);
    }

    std::vector<double> lx, ly;
    for (size_t s = 0; s < num_stages; ++s) {
      const size_t m = config.stage_sizes[s];
      stages_[s].assign(m, models::LinearModel());
      // Group keys by assigned model (counting sort).
      std::vector<uint32_t> counts(m + 1, 0);
      for (size_t i = 0; i < n; ++i) ++counts[assignment[i] + 1];
      for (size_t j = 0; j < m; ++j) counts[j + 1] += counts[j];
      std::vector<uint32_t> order(n);
      {
        std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
        for (size_t i = 0; i < n; ++i) order[cursor[assignment[i]]++] = i;
      }
      const bool last = s + 1 == num_stages;
      if (last) errors_.assign(m, ErrorBand{});
      double fill = 0.0;
      for (size_t j = 0; j < m; ++j) {
        const uint32_t begin = counts[j], end = counts[j + 1];
        if (begin == end) {
          stages_[s][j] = models::LinearModel(0.0, fill);
          continue;
        }
        lx.clear();
        ly.clear();
        for (uint32_t r = begin; r < end; ++r) {
          lx.push_back(xs[order[r]]);
          ly.push_back(ys[order[r]]);
        }
        LI_RETURN_IF_ERROR(stages_[s][j].Fit(lx, ly));
        if (last) {
          ErrorBand& band = errors_[j];
          double min_e = 0, max_e = 0;
          bool first = true;
          for (size_t i = 0; i < lx.size(); ++i) {
            const double pred =
                static_cast<double>(ClampPos(stages_[s][j].Predict(lx[i])));
            const double e = ly[i] - pred;
            if (first) {
              min_e = max_e = e;
              first = false;
            } else {
              min_e = std::min(min_e, e);
              max_e = std::max(max_e, e);
            }
          }
          band.min_err = static_cast<int32_t>(std::floor(min_e));
          band.max_err = static_cast<int32_t>(std::ceil(max_e));
        }
        fill = ly.back();
      }
      if (!last) {
        const size_t next_m = config.stage_sizes[s + 1];
        for (size_t i = 0; i < n; ++i) {
          assignment[i] =
              Route(stages_[s][assignment[i]].Predict(xs[i]), next_m);
        }
      }
    }
    return Status::OK();
  }

  /// Descends all stages and returns the final-stage window.
  index::Approx ApproxPos(uint64_t key) const {
    if (data_.empty()) return index::Approx{};
    const double x = static_cast<double>(key);
    uint32_t j = Route(top_.Predict(x), config_.stage_sizes[0]);
    for (size_t s = 0; s + 1 < stages_.size(); ++s) {
      j = Route(stages_[s][j].Predict(x), config_.stage_sizes[s + 1]);
    }
    const size_t pos = ClampPos(stages_.back()[j].Predict(x));
    const ErrorBand& band = errors_[j];
    const size_t lo =
        band.min_err < 0 && pos < static_cast<size_t>(-band.min_err)
            ? 0
            : pos + band.min_err;
    const size_t hi = std::min(
        data_.size(),
        pos + static_cast<size_t>(std::max(band.max_err, int32_t{0})) + 1);
    const size_t lo_c = std::min(lo, data_.size());
    // One-sided error bands can put the raw estimate outside its window.
    return index::Approx{std::clamp(pos, lo_c, hi), lo_c, hi};
  }

  size_t Lookup(uint64_t key) const {
    if (data_.empty()) return 0;
    return search::FindInWindow(config_.strategy, data_.data(), data_.size(),
                                key, ApproxPos(key));
  }

  size_t LowerBound(uint64_t key) const { return Lookup(key); }

  size_t SizeBytes() const {
    size_t bytes = top_.SizeBytes();
    for (const auto& stage : stages_) {
      bytes += stage.size() * sizeof(models::LinearModel);
    }
    bytes += errors_.size() * sizeof(ErrorBand);
    return bytes;
  }

  size_t num_stages() const { return stages_.size() + 1; }
  int64_t MaxAbsError() const {
    int64_t worst = 0;
    for (const ErrorBand& b : errors_) {
      worst = std::max<int64_t>(worst, -int64_t{b.min_err});
      worst = std::max<int64_t>(worst, int64_t{b.max_err});
    }
    return worst;
  }

 private:
  struct ErrorBand {
    int32_t min_err = 0;
    int32_t max_err = 0;
  };

  uint32_t Route(double pred, size_t m) const {
    const double scaled =
        pred * static_cast<double>(m) / static_cast<double>(data_.size());
    if (!(scaled > 0.0)) return 0;
    return static_cast<uint32_t>(
        std::min(static_cast<size_t>(scaled), m - 1));
  }

  size_t ClampPos(double pred) const {
    if (!(pred > 0.0)) return 0;
    return std::min(static_cast<size_t>(pred + 0.5), data_.size() - 1);
  }

  std::span<const uint64_t> data_;
  MultiStageConfig config_;
  models::LinearModel top_;
  std::vector<std::vector<models::LinearModel>> stages_;
  std::vector<ErrorBand> errors_;
};

}  // namespace li::rmi

#endif  // LI_RMI_MULTISTAGE_H_
