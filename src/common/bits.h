// Bit tricks and memory hints shared across index implementations.

#ifndef LI_COMMON_BITS_H_
#define LI_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace li {

/// Smallest power of two >= x (x > 0).
inline uint64_t NextPow2(uint64_t x) { return std::bit_ceil(x); }

/// True iff x is a power of two.
inline bool IsPow2(uint64_t x) { return x && std::has_single_bit(x); }

/// floor(log2(x)) for x > 0.
inline unsigned Log2Floor(uint64_t x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// Software prefetch into all cache levels.
inline void PrefetchRead(const void* p) { __builtin_prefetch(p, 0, 3); }

#define LI_LIKELY(x) __builtin_expect(!!(x), 1)
#define LI_UNLIKELY(x) __builtin_expect(!!(x), 0)

inline constexpr size_t kCacheLineSize = 64;

}  // namespace li

#endif  // LI_COMMON_BITS_H_
