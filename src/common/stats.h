// Streaming statistics helpers (Welford mean/variance, min/max, simple
// percentile extraction) used by the error-bound machinery and the
// measurement harness.

#ifndef LI_COMMON_STATS_H_
#define LI_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace li {

/// Welford single-pass mean / variance plus min/max tracking.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) *
               static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// In-place percentile (linear interpolation). `q` in [0,1]. Sorts `v`.
inline double Percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace li

#endif  // LI_COMMON_STATS_H_
