// Deterministic, fast PRNGs used by dataset generators, training shufflers
// and benchmarks. All generators are seedable so every experiment in this
// repository is reproducible bit-for-bit.

#ifndef LI_COMMON_RANDOM_H_
#define LI_COMMON_RANDOM_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace li {

/// xorshift128+ — fast, good-quality 64-bit generator for workloads.
class Xorshift128Plus {
 public:
  explicit Xorshift128Plus(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = x ^ (x >> 31);
    }
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, bound). Uses multiply-shift rejection-free mapping;
  /// bias is negligible for bound << 2^64.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (caches the second variate).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Exponential with rate lambda.
  double NextExponential(double lambda) {
    double u;
    do {
      u = NextDouble();
    } while (u <= 1e-300);
    return -std::log(u) / lambda;
  }

 private:
  uint64_t s_[2];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

/// Zipf-distributed ranks over [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^s — rank 0 is the hottest. Samples by binary
/// search over a precomputed CDF table: O(n) setup, O(log n) per draw,
/// exact for any s >= 0 (s = 0 degenerates to uniform). Sized for the
/// workload generators (n up to a few million ranks).
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double s, uint64_t seed = 1) : rng_(seed) {
    cdf_.reserve(n > 0 ? n : 1);
    double sum = 0.0;
    for (size_t r = 0; r < (n > 0 ? n : 1); ++r) {
      sum += std::pow(static_cast<double>(r + 1), -s);
      cdf_.push_back(sum);
    }
    total_ = sum;
  }

  /// Next rank in [0, n).
  size_t Next() {
    const double u = rng_.NextDouble() * total_;
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
  Xorshift128Plus rng_;
};

/// Murmur3 finalizer — used as the "sufficiently randomized" baseline hash
/// function throughout the point-index experiments (the paper's
/// "MurmurHash3-like" baseline).
inline uint64_t Murmur3Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Murmur-style hash for byte strings (used for string keys / n-grams).
inline uint64_t MurmurHash64(const void* data, size_t len,
                             uint64_t seed = 0xc70f6907ULL) {
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  uint64_t h = seed ^ (len * m);
  const auto* p = static_cast<const unsigned char*>(data);
  const auto* end = p + (len & ~size_t{7});
  while (p != end) {
    uint64_t k;
    __builtin_memcpy(&k, p, 8);
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }
  uint64_t tail = 0;
  switch (len & 7) {
    case 7: tail ^= uint64_t{p[6]} << 48; [[fallthrough]];
    case 6: tail ^= uint64_t{p[5]} << 40; [[fallthrough]];
    case 5: tail ^= uint64_t{p[4]} << 32; [[fallthrough]];
    case 4: tail ^= uint64_t{p[3]} << 24; [[fallthrough]];
    case 3: tail ^= uint64_t{p[2]} << 16; [[fallthrough]];
    case 2: tail ^= uint64_t{p[1]} << 8; [[fallthrough]];
    case 1:
      tail ^= uint64_t{p[0]};
      h ^= tail;
      h *= m;
      break;
    default: break;
  }
  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

}  // namespace li

#endif  // LI_COMMON_RANDOM_H_
