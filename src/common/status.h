// Lightweight Status / Result types for fallible construction paths.
//
// Lookup paths in this library are noexcept and never allocate; builders
// (training, index construction) return Status so callers can surface
// configuration errors without exceptions, following the RocksDB idiom.

#ifndef LI_COMMON_STATUS_H_
#define LI_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace li {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// A cheap, movable status object. `ok()` is the common fast path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case StatusCode::kNotFound: name = "NOT_FOUND"; break;
      case StatusCode::kOutOfRange: name = "OUT_OF_RANGE"; break;
      case StatusCode::kFailedPrecondition: name = "FAILED_PRECONDITION"; break;
      case StatusCode::kInternal: name = "INTERNAL"; break;
      case StatusCode::kUnimplemented: name = "UNIMPLEMENTED"; break;
    }
    return std::string(name) + ": " + msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T>: a value or a Status. Minimal expected-like wrapper.
template <typename T>
class Result {
 public:
  Result(T value) : ok_(true), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : ok_(false), status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return ok_; }
  const Status& status() const { return status_; }
  T& value() {
    assert(ok_);
    return value_;
  }
  const T& value() const {
    assert(ok_);
    return value_;
  }
  T&& take() {
    assert(ok_);
    return std::move(value_);
  }

 private:
  bool ok_;
  T value_{};
  Status status_;
};

#define LI_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::li::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace li

#endif  // LI_COMMON_STATUS_H_
