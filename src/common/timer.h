// Timing utilities for the measurement harness (ns-resolution wall clock
// plus a serializing cycle counter for per-lookup latencies).

#ifndef LI_COMMON_TIMER_H_
#define LI_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace li {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedNanos() const {
    return std::chrono::duration<double, std::nano>(Clock::now() - start_)
        .count();
  }
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Serializing cycle read; falls back to chrono off x86.
inline uint64_t ReadCycles() {
#if defined(__x86_64__)
  unsigned aux;
  return __rdtscp(&aux);
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Prevents the compiler from optimizing away a computed value.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace li

#endif  // LI_COMMON_TIMER_H_
