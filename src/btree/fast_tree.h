// FAST-style architecture-sensitive tree (Kim et al., SIGMOD 2010 [44]) —
// the SIMD-optimized Figure-5 baseline. Reproduces FAST's two properties
// that matter for the comparison:
//
//  1. Branch-free, SIMD-width intra-node search: nodes hold 16 keys and
//     the child is selected by counting keys <= lookup key with packed
//     compares ("transform control dependencies to memory dependencies").
//  2. Power-of-2 allocation: FAST "always requires to allocate memory in
//     the power of 2", which is why Figure 5 reports a 1 GB index for a
//     190M-key dataset. We pad every level to the next power of two and
//     report the padded footprint.

#ifndef LI_BTREE_FAST_TREE_H_
#define LI_BTREE_FAST_TREE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/approx.h"

namespace li::btree {

class FastTree {
 public:
  static constexpr size_t kNodeKeys = 16;  // one SIMD block of 16 keys

  /// RangeIndex contract: FAST has no build knobs (16-key nodes are the
  /// SIMD width).
  struct BuildConfig {};
  using key_type = uint64_t;
  using config_type = BuildConfig;

  FastTree() = default;

  /// Builds over sorted `keys`. The caller owns the data array.
  Status Build(std::span<const uint64_t> keys);

  Status Build(std::span<const uint64_t> keys, const BuildConfig&) {
    return Build(keys);
  }

  /// The SIMD descent picks the 16-key data block; that block is the window.
  index::Approx ApproxPos(uint64_t key) const;

  /// lower_bound over the data array.
  size_t LowerBound(uint64_t key) const;

  size_t Lookup(uint64_t key) const { return LowerBound(key); }

  /// Allocated bytes including power-of-2 padding (the honest FAST cost).
  size_t SizeBytes() const;
  /// Bytes actually holding separators, for comparison.
  size_t UsefulBytes() const;

 private:
  std::span<const uint64_t> data_;
  std::vector<std::vector<uint64_t>> levels_;  // root-most first, padded
  std::vector<size_t> level_entries_;          // un-padded entry counts
  size_t allocated_bytes_ = 0;
};

}  // namespace li::btree

#endif  // LI_BTREE_FAST_TREE_H_
