// Fixed-size B-Tree with interpolation search — the Figure-5 baseline from
// the "case for B-tree index structures" blog response [1]: "we created a
// fixed-height B-Tree with interpolation search. The B-Tree height is set
// so that the total size of the tree is 1.5MB, similar to our learned
// model."
//
// Given a byte budget, the builder derives a sparse fanout so the whole
// index (all levels) fits the budget; every node is searched with
// interpolation instead of binary search, exploiting near-linear key
// distributions the same way a learned model does.

#ifndef LI_BTREE_INTERPOLATION_BTREE_H_
#define LI_BTREE_INTERPOLATION_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/approx.h"

namespace li::btree {

struct InterpolationBTreeConfig {
  size_t budget_bytes = 1'500'000;  // the Figure-5 "similar to our model" size
};

class InterpolationBTree {
 public:
  using key_type = uint64_t;
  using config_type = InterpolationBTreeConfig;

  InterpolationBTree() = default;

  /// Builds over sorted `keys`, sizing the index to at most `budget_bytes`.
  Status Build(std::span<const uint64_t> keys, size_t budget_bytes);

  Status Build(std::span<const uint64_t> keys,
               const InterpolationBTreeConfig& config) {
    return Build(keys, config.budget_bytes);
  }

  /// Two interpolated descents pick the data page; that page is the window.
  index::Approx ApproxPos(uint64_t key) const;

  /// lower_bound over the data array.
  size_t LowerBound(uint64_t key) const;

  size_t Lookup(uint64_t key) const { return LowerBound(key); }

  size_t SizeBytes() const;
  size_t page_size() const { return page_; }

 private:
  std::span<const uint64_t> data_;
  size_t page_ = 0;                    // data keys per sparse-index entry
  std::vector<uint64_t> index_;        // first key of every data page
  std::vector<uint64_t> top_;          // first key of every index node
  static constexpr size_t kNodeKeys = 256;
};

}  // namespace li::btree

#endif  // LI_BTREE_INTERPOLATION_BTREE_H_
