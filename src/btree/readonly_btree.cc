#include "btree/readonly_btree.h"

#include <algorithm>

#include "common/bits.h"
#include "search/search.h"

namespace li::btree {

Status ReadOnlyBTree::Build(std::span<const uint64_t> keys,
                            size_t keys_per_page) {
  if (keys_per_page < 2) {
    return Status::InvalidArgument("ReadOnlyBTree: keys_per_page must be >= 2");
  }
  if (!std::is_sorted(keys.begin(), keys.end())) {
    return Status::InvalidArgument("ReadOnlyBTree: keys must be sorted");
  }
  data_ = keys;
  fanout_ = keys_per_page;
  levels_.clear();
  if (keys.empty()) return Status::OK();

  // Leaf-most index level: the first key of every data page.
  std::vector<uint64_t> level;
  level.reserve((keys.size() + fanout_ - 1) / fanout_);
  for (size_t i = 0; i < keys.size(); i += fanout_) level.push_back(keys[i]);
  levels_.push_back(std::move(level));

  // Stack further levels until the top fits within one node.
  while (levels_.back().size() > fanout_) {
    const auto& below = levels_.back();
    std::vector<uint64_t> next;
    next.reserve((below.size() + fanout_ - 1) / fanout_);
    for (size_t i = 0; i < below.size(); i += fanout_) next.push_back(below[i]);
    levels_.push_back(std::move(next));
  }
  std::reverse(levels_.begin(), levels_.end());
  return Status::OK();
}

size_t ReadOnlyBTree::FindPage(uint64_t key) const {
  if (levels_.empty()) return 0;
  // At each level pick the last separator <= key (upper_bound - 1); the
  // chosen entry index is the node index at the level below.
  size_t node = 0;
  for (const auto& level : levels_) {
    const size_t begin = node * fanout_;
    const size_t end = std::min(begin + fanout_, level.size());
    const size_t ub = search::UpperBound(level.data(), begin, end, key);
    node = (ub == begin) ? begin : ub - 1;
  }
  return node;
}

size_t ReadOnlyBTree::SearchInPage(size_t page, uint64_t key) const {
  const size_t begin = page * fanout_;
  const size_t end = std::min(begin + fanout_, data_.size());
  const size_t pos = search::BinarySearch(data_.data(), begin, end, key);
  return pos;
}

size_t ReadOnlyBTree::LowerBound(uint64_t key) const {
  if (data_.empty()) return 0;
  const size_t page = FindPage(key);
  const size_t pos = SearchInPage(page, key);
  // If the whole page is < key the answer is the first slot of the next
  // page (which is the returned `end`), globally correct because pages are
  // contiguous in the sorted array.
  return pos;
}

index::Approx ReadOnlyBTree::ApproxPos(uint64_t key) const {
  if (data_.empty()) return index::Approx{};
  const size_t begin = FindPage(key) * fanout_;
  const size_t end = std::min(begin + fanout_, data_.size());
  return index::Approx{begin, begin, end};
}

size_t ReadOnlyBTree::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& level : levels_) bytes += level.size() * sizeof(uint64_t);
  return bytes;
}

}  // namespace li::btree
