#include "btree/dynamic_btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "search/search.h"

namespace li::btree {

struct BTreeMap::Node {
  bool is_leaf;
  int count;
};

struct BTreeMap::LeafNode {
  Node base;
  Key keys[kLeafCap];
  Value values[kLeafCap];
  LeafNode* next;
};

struct BTreeMap::InnerNode {
  Node base;
  Key seps[kInnerCap];          // count separators
  Node* children[kInnerCap + 1];  // count + 1 children
};

namespace {

/// First index in keys[0..count) with keys[i] >= key.
template <typename K>
int LowerIdx(const K* keys, int count, K key) {
  return static_cast<int>(
      search::BinarySearch(keys, 0, static_cast<size_t>(count), key));
}

/// First index with keys[i] > key (child selector for inner nodes).
template <typename K>
int UpperIdx(const K* keys, int count, K key) {
  return static_cast<int>(
      search::UpperBound(keys, 0, static_cast<size_t>(count), key));
}

}  // namespace

BTreeMap::BTreeMap() {
  auto* leaf = new LeafNode();
  leaf->base.is_leaf = true;
  leaf->base.count = 0;
  leaf->next = nullptr;
  root_ = &leaf->base;
  allocated_bytes_ = sizeof(LeafNode);
}

BTreeMap::~BTreeMap() { FreeRec(root_); }

BTreeMap::BTreeMap(BTreeMap&& other) noexcept
    : root_(other.root_),
      size_(other.size_),
      height_(other.height_),
      allocated_bytes_(other.allocated_bytes_),
      built_keys_(other.built_keys_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

BTreeMap& BTreeMap::operator=(BTreeMap&& other) noexcept {
  if (this != &other) {
    FreeRec(root_);
    root_ = std::exchange(other.root_, nullptr);
    size_ = std::exchange(other.size_, 0);
    height_ = other.height_;
    allocated_bytes_ = other.allocated_bytes_;
    built_keys_ = other.built_keys_;
  }
  return *this;
}

Status BTreeMap::Build(std::span<const Key> keys, const BuildConfig&) {
  if (!std::is_sorted(keys.begin(), keys.end())) {
    return Status::InvalidArgument("BTreeMap: keys must be sorted");
  }
  *this = BTreeMap();
  for (size_t i = 0; i < keys.size(); ++i) {
    // Skip duplicates so the stored value is the *first* position —
    // lower_bound semantics.
    if (i == 0 || keys[i] != keys[i - 1]) {
      Insert(keys[i], static_cast<Value>(i));
    }
  }
  built_keys_ = keys.size();
  return Status::OK();
}

size_t BTreeMap::Lookup(Key key) const {
  const Iterator it = LowerBound(key);
  // Clamp so a post-Build Insert (which stores user values, not
  // positions) can stretch the answer but never yield a malformed
  // Approx window; see the Build() contract note.
  return it.Valid() ? std::min(static_cast<size_t>(it.value()), built_keys_)
                    : built_keys_;
}

void BTreeMap::FreeRec(Node* node) {
  if (node == nullptr) return;
  if (node->is_leaf) {
    delete reinterpret_cast<LeafNode*>(node);
    return;
  }
  auto* inner = reinterpret_cast<InnerNode*>(node);
  for (int i = 0; i <= inner->base.count; ++i) FreeRec(inner->children[i]);
  delete inner;
}

BTreeMap::SplitResult BTreeMap::InsertRec(Node* node, Key key, Value value) {
  if (node->is_leaf) {
    auto* leaf = reinterpret_cast<LeafNode*>(node);
    const int idx = LowerIdx(leaf->keys, leaf->base.count, key);
    if (idx < leaf->base.count && leaf->keys[idx] == key) {
      leaf->values[idx] = value;  // overwrite
      return {};
    }
    ++size_;
    if (leaf->base.count < kLeafCap) {
      std::memmove(&leaf->keys[idx + 1], &leaf->keys[idx],
                   sizeof(Key) * (leaf->base.count - idx));
      std::memmove(&leaf->values[idx + 1], &leaf->values[idx],
                   sizeof(Value) * (leaf->base.count - idx));
      leaf->keys[idx] = key;
      leaf->values[idx] = value;
      ++leaf->base.count;
      return {};
    }
    // Split the leaf, then insert into the proper half.
    auto* right = new LeafNode();
    allocated_bytes_ += sizeof(LeafNode);
    right->base.is_leaf = true;
    const int mid = kLeafCap / 2;
    right->base.count = kLeafCap - mid;
    std::memcpy(right->keys, &leaf->keys[mid], sizeof(Key) * right->base.count);
    std::memcpy(right->values, &leaf->values[mid],
                sizeof(Value) * right->base.count);
    leaf->base.count = mid;
    right->next = leaf->next;
    leaf->next = right;
    --size_;  // the recursive insert below will re-count
    if (key < right->keys[0]) {
      InsertRec(&leaf->base, key, value);
    } else {
      InsertRec(&right->base, key, value);
    }
    return {true, right->keys[0], &right->base};
  }

  auto* inner = reinterpret_cast<InnerNode*>(node);
  const int child_idx = UpperIdx(inner->seps, inner->base.count, key);
  const SplitResult child_split =
      InsertRec(inner->children[child_idx], key, value);
  if (!child_split.did_split) return {};

  if (inner->base.count < kInnerCap) {
    const int idx = child_idx;
    std::memmove(&inner->seps[idx + 1], &inner->seps[idx],
                 sizeof(Key) * (inner->base.count - idx));
    std::memmove(&inner->children[idx + 2], &inner->children[idx + 1],
                 sizeof(Node*) * (inner->base.count - idx));
    inner->seps[idx] = child_split.separator;
    inner->children[idx + 1] = child_split.right;
    ++inner->base.count;
    return {};
  }
  // Split the inner node: middle separator moves up.
  auto* right = new InnerNode();
  allocated_bytes_ += sizeof(InnerNode);
  right->base.is_leaf = false;
  const int mid = kInnerCap / 2;
  const Key up_sep = inner->seps[mid];
  right->base.count = kInnerCap - mid - 1;
  std::memcpy(right->seps, &inner->seps[mid + 1],
              sizeof(Key) * right->base.count);
  std::memcpy(right->children, &inner->children[mid + 1],
              sizeof(Node*) * (right->base.count + 1));
  inner->base.count = mid;
  // Insert the pending child into the correct half.
  InnerNode* target = child_split.separator < up_sep ? inner : right;
  const Key pending_sep = child_split.separator;
  const int idx = UpperIdx(target->seps, target->base.count, pending_sep);
  std::memmove(&target->seps[idx + 1], &target->seps[idx],
               sizeof(Key) * (target->base.count - idx));
  std::memmove(&target->children[idx + 2], &target->children[idx + 1],
               sizeof(Node*) * (target->base.count - idx));
  target->seps[idx] = pending_sep;
  target->children[idx + 1] = child_split.right;
  ++target->base.count;
  return {true, up_sep, &right->base};
}

void BTreeMap::Insert(Key key, Value value) {
  const SplitResult split = InsertRec(root_, key, value);
  if (split.did_split) {
    auto* new_root = new InnerNode();
    allocated_bytes_ += sizeof(InnerNode);
    new_root->base.is_leaf = false;
    new_root->base.count = 1;
    new_root->seps[0] = split.separator;
    new_root->children[0] = root_;
    new_root->children[1] = split.right;
    root_ = &new_root->base;
    ++height_;
  }
}

std::optional<BTreeMap::Value> BTreeMap::Find(Key key) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    const auto* inner = reinterpret_cast<const InnerNode*>(node);
    node = inner->children[UpperIdx(inner->seps, inner->base.count, key)];
  }
  const auto* leaf = reinterpret_cast<const LeafNode*>(node);
  const int idx = LowerIdx(leaf->keys, leaf->base.count, key);
  if (idx < leaf->base.count && leaf->keys[idx] == key) {
    return leaf->values[idx];
  }
  return std::nullopt;
}

BTreeMap::Iterator BTreeMap::LowerBound(Key key) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    const auto* inner = reinterpret_cast<const InnerNode*>(node);
    node = inner->children[UpperIdx(inner->seps, inner->base.count, key)];
  }
  const auto* leaf = reinterpret_cast<const LeafNode*>(node);
  int idx = LowerIdx(leaf->keys, leaf->base.count, key);
  Iterator it;
  if (idx == leaf->base.count) {
    // Key larger than everything in this leaf: move to the next leaf.
    leaf = leaf->next;
    idx = 0;
    if (leaf != nullptr && leaf->base.count == 0) leaf = nullptr;
  }
  it.leaf_ = leaf;
  it.idx_ = idx;
  return it;
}

BTreeMap::Iterator BTreeMap::Begin() const { return LowerBound(0); }

BTreeMap::Key BTreeMap::Iterator::key() const {
  assert(Valid());
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->keys[idx_];
}

BTreeMap::Value BTreeMap::Iterator::value() const {
  assert(Valid());
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->values[idx_];
}

void BTreeMap::Iterator::Next() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  if (++idx_ >= leaf->base.count) {
    leaf_ = leaf->next;
    idx_ = 0;
  }
}

}  // namespace li::btree
