// Hierarchical lookup table with branch-free scans — the Figure-5 "Lookup
// Table w/ AVX search" baseline, constructed exactly as §3.7.1 describes:
// "taking every 64th key and putting it into an array including padding to
// make it a multiple of 64. Then we repeat that process one more time over
// the array without padding, creating two arrays in total. To lookup a key,
// we use binary search on the top table followed by an AVX optimized
// branch-free scan for the second table and the data itself."

#ifndef LI_BTREE_LOOKUP_TABLE_H_
#define LI_BTREE_LOOKUP_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/approx.h"

namespace li::btree {

class LookupTable {
 public:
  static constexpr size_t kStride = 64;

  /// RangeIndex contract: the 64-entry stride is fixed by the AVX width.
  struct BuildConfig {};
  using key_type = uint64_t;
  using config_type = BuildConfig;

  LookupTable() = default;

  /// Builds both tables over sorted `keys` (caller owns the array).
  Status Build(std::span<const uint64_t> keys);

  Status Build(std::span<const uint64_t> keys, const BuildConfig&) {
    return Build(keys);
  }

  /// lower_bound over the data array.
  size_t LowerBound(uint64_t key) const;

  size_t Lookup(uint64_t key) const { return LowerBound(key); }

  /// The table resolves lookups exactly; the window is one slot.
  index::Approx ApproxPos(uint64_t key) const {
    return index::Approx::Exact(LowerBound(key), data_.size());
  }

  size_t SizeBytes() const {
    return (second_.size() + top_.size()) * sizeof(uint64_t);
  }

 private:
  std::span<const uint64_t> data_;
  std::vector<uint64_t> second_;  // every 64th key, padded to 64-multiple
  std::vector<uint64_t> top_;     // every 64th key of `second_`, unpadded
  size_t second_entries_ = 0;     // un-padded entry count of `second_`
};

}  // namespace li::btree

#endif  // LI_BTREE_LOOKUP_TABLE_H_
