// Cache-optimized read-only B+-Tree — the paper's primary baseline:
// "a production quality B-Tree implementation which is similar to the
// stx::btree but with further cache-line optimization, dense pages (i.e.,
// fill factor of 100%), and very competitive performance" (§3.7.1).
//
// The tree is built bottom-up over the sorted key array with 100% dense
// nodes: level 1 holds the first key of every data page, level 2 the first
// key of every level-1 node, and so on. Page size is measured in keys, as
// in Figure 4. Lookups descend with an intra-node binary search and return
// lower_bound semantics over the data array. Reported size excludes the
// data array itself (index overhead only), matching the paper's accounting.

#ifndef LI_BTREE_READONLY_BTREE_H_
#define LI_BTREE_READONLY_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/approx.h"

namespace li::btree {

struct ReadOnlyBTreeConfig {
  size_t keys_per_page = 64;  // the paper's "page size" knob {32..512}
};

class ReadOnlyBTree {
 public:
  using key_type = uint64_t;
  using config_type = ReadOnlyBTreeConfig;

  ReadOnlyBTree() = default;

  /// Builds the tree over `keys` (must be sorted ascending). `keys_per_page`
  /// is the paper's "page size" knob {32..512}. The tree keeps a reference
  /// to the data; the caller owns it and must keep it alive.
  Status Build(std::span<const uint64_t> keys, size_t keys_per_page);

  Status Build(std::span<const uint64_t> keys,
               const ReadOnlyBTreeConfig& config) {
    return Build(keys, config.keys_per_page);
  }

  /// The B-Tree as a model (§2): traversal "predicts" the data page, so
  /// the window is that page and the worst-case error is the page size.
  index::Approx ApproxPos(uint64_t key) const;

  /// Index of the first key >= `key` (lower_bound); keys.size() if none.
  size_t LowerBound(uint64_t key) const;

  size_t Lookup(uint64_t key) const { return LowerBound(key); }

  /// Descends the inner levels only, returning the data page index —
  /// isolates "model execution time" (B-Tree traversal) from the final
  /// intra-page search, as the Figure-4 "Model (ns)" column does.
  size_t FindPage(uint64_t key) const;

  /// Lower bound given a page (the "search" part of a lookup).
  size_t SearchInPage(size_t page, uint64_t key) const;

  size_t SizeBytes() const;
  size_t height() const { return levels_.size(); }
  size_t keys_per_page() const { return fanout_; }

 private:
  std::span<const uint64_t> data_;
  size_t fanout_ = 0;
  // levels_[0] is the root-most level (smallest); the last entry indexes
  // data pages directly. Each level is a dense array of first-keys grouped
  // into nodes of `fanout_` entries.
  std::vector<std::vector<uint64_t>> levels_;
};

}  // namespace li::btree

#endif  // LI_BTREE_READONLY_BTREE_H_
