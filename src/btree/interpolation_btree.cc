#include "btree/interpolation_btree.h"

#include <algorithm>

#include "search/search.h"

namespace li::btree {

Status InterpolationBTree::Build(std::span<const uint64_t> keys,
                                 size_t budget_bytes) {
  if (budget_bytes < 64) {
    return Status::InvalidArgument("InterpolationBTree: budget too small");
  }
  if (!std::is_sorted(keys.begin(), keys.end())) {
    return Status::InvalidArgument("InterpolationBTree: keys must be sorted");
  }
  data_ = keys;
  index_.clear();
  top_.clear();
  if (keys.empty()) {
    page_ = 1;
    return Status::OK();
  }
  // Budget is split between the page index and its (much smaller) top
  // level: entries ~= budget/8; page = ceil(n / entries).
  const size_t max_entries = budget_bytes / sizeof(uint64_t);
  const size_t entries = std::max<size_t>(1, max_entries * kNodeKeys /
                                                 (kNodeKeys + 1));
  page_ = std::max<size_t>(1, (keys.size() + entries - 1) / entries);
  for (size_t i = 0; i < keys.size(); i += page_) index_.push_back(keys[i]);
  for (size_t i = 0; i < index_.size(); i += kNodeKeys) {
    top_.push_back(index_[i]);
  }
  return Status::OK();
}

index::Approx InterpolationBTree::ApproxPos(uint64_t key) const {
  if (data_.empty()) return index::Approx{};
  // Level 0: interpolation over the top separators.
  size_t t = search::InterpolationSearch(top_.data(), 0, top_.size(), key);
  // Convert lower_bound to "last separator <= key".
  if (t == top_.size() || top_[t] > key) t = (t == 0) ? 0 : t - 1;

  // Level 1: interpolation within one index node.
  const size_t ibegin = t * kNodeKeys;
  const size_t iend = std::min(ibegin + kNodeKeys, index_.size());
  size_t s = search::InterpolationSearch(index_.data(), ibegin, iend, key);
  if (s == iend || index_[s] > key) s = (s == ibegin) ? ibegin : s - 1;

  const size_t begin = s * page_;
  const size_t end = std::min(begin + page_, data_.size());
  return index::Approx{begin, begin, end};
}

size_t InterpolationBTree::LowerBound(uint64_t key) const {
  if (data_.empty()) return 0;
  // Level 2: interpolation within the data page picked by the descent.
  const index::Approx a = ApproxPos(key);
  return search::InterpolationSearch(data_.data(), a.lo, a.hi, key);
}

size_t InterpolationBTree::SizeBytes() const {
  return (index_.size() + top_.size()) * sizeof(uint64_t);
}

}  // namespace li::btree
