// Static read-only B+-Tree over sorted strings — the baseline for the
// string-data experiment (Figure 6). Same bottom-up dense construction as
// ReadOnlyBTree; separators are copies of the page-leading strings, and
// reported size counts separator characters plus per-entry overhead so the
// "Size (MB)" column scales with page size exactly as the paper's does.

#ifndef LI_BTREE_STRING_BTREE_H_
#define LI_BTREE_STRING_BTREE_H_

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/approx.h"
#include "search/search.h"

namespace li::btree {

struct StringBTreeConfig {
  size_t keys_per_page = 32;
};

class StringBTree {
 public:
  using key_type = std::string;
  using config_type = StringBTreeConfig;

  StringBTree() = default;

  Status Build(std::span<const std::string> keys,
               const StringBTreeConfig& config) {
    return Build(keys, config.keys_per_page);
  }

  Status Build(std::span<const std::string> keys, size_t keys_per_page) {
    if (keys_per_page < 2) {
      return Status::InvalidArgument("StringBTree: keys_per_page >= 2");
    }
    if (!std::is_sorted(keys.begin(), keys.end())) {
      return Status::InvalidArgument("StringBTree: keys must be sorted");
    }
    data_ = keys;
    fanout_ = keys_per_page;
    levels_.clear();
    if (keys.empty()) return Status::OK();
    std::vector<std::string> level;
    for (size_t i = 0; i < keys.size(); i += fanout_) level.push_back(keys[i]);
    levels_.push_back(std::move(level));
    while (levels_.back().size() > fanout_) {
      const auto& below = levels_.back();
      std::vector<std::string> next;
      for (size_t i = 0; i < below.size(); i += fanout_) {
        next.push_back(below[i]);
      }
      levels_.push_back(std::move(next));
    }
    std::reverse(levels_.begin(), levels_.end());
    return Status::OK();
  }

  /// Data-page index for `key` (the traversal / "model" part).
  size_t FindPage(const std::string& key) const {
    size_t node = 0;
    for (const auto& level : levels_) {
      const size_t begin = node * fanout_;
      const size_t end = std::min(begin + fanout_, level.size());
      const size_t ub = search::UpperBound(level.data(), begin, end, key);
      node = (ub == begin) ? begin : ub - 1;
    }
    return node;
  }

  /// The traversal-chosen page as the contract window.
  index::Approx ApproxPos(const std::string& key) const {
    if (data_.empty()) return index::Approx{};
    const size_t begin = FindPage(key) * fanout_;
    const size_t end = std::min(begin + fanout_, data_.size());
    return index::Approx{begin, begin, end};
  }

  size_t LowerBound(const std::string& key) const {
    if (data_.empty()) return 0;
    const index::Approx a = ApproxPos(key);
    return search::BinarySearch(data_.data(), a.lo, a.hi, key);
  }

  size_t Lookup(const std::string& key) const { return LowerBound(key); }

  size_t SizeBytes() const {
    size_t bytes = 0;
    for (const auto& level : levels_) {
      for (const auto& s : level) {
        bytes += s.size() + sizeof(void*) + sizeof(size_t);  // chars + header
      }
    }
    return bytes;
  }

 private:
  std::span<const std::string> data_;
  size_t fanout_ = 0;
  std::vector<std::vector<std::string>> levels_;
};

}  // namespace li::btree

#endif  // LI_BTREE_STRING_BTREE_H_
