#include "btree/lookup_table.h"

#include <algorithm>

#include "search/search.h"

namespace li::btree {

Status LookupTable::Build(std::span<const uint64_t> keys) {
  if (!std::is_sorted(keys.begin(), keys.end())) {
    return Status::InvalidArgument("LookupTable: keys must be sorted");
  }
  data_ = keys;
  second_.clear();
  top_.clear();
  if (keys.empty()) return Status::OK();

  for (size_t i = 0; i < keys.size(); i += kStride) second_.push_back(keys[i]);
  second_entries_ = second_.size();
  // Pad to a multiple of 64 with +inf so the branch-free scan stays in
  // whole blocks without selecting padding.
  while (second_.size() % kStride != 0) second_.push_back(UINT64_MAX);
  for (size_t i = 0; i < second_entries_; i += kStride) {
    top_.push_back(second_[i]);
  }
  return Status::OK();
}

size_t LookupTable::LowerBound(uint64_t key) const {
  if (data_.empty()) return 0;
  if (key == UINT64_MAX) {
    // The +inf padding sentinels would alias this key in the block scans.
    return search::BinarySearch(data_.data(), 0, data_.size(), key);
  }
  // Stage 1: binary search on the top table for the last entry <= key.
  const size_t ub = search::UpperBound(top_.data(), 0, top_.size(), key);
  const size_t top_slot = (ub == 0) ? 0 : ub - 1;

  // Stage 2: branch-free scan over one 64-entry block of the second table.
  const size_t sec_begin = top_slot * kStride;
  const size_t cnt =
      search::BranchFreeScan(second_.data() + sec_begin, kStride, key + 1);
  // cnt = #entries <= key in the block; pick the last such entry.
  const size_t sec_slot = sec_begin + (cnt == 0 ? 0 : cnt - 1);

  // Stage 3: branch-free scan over one 64-key block of the data.
  const size_t begin = sec_slot * kStride;
  const size_t len = std::min(kStride, data_.size() - begin);
  return begin + search::BranchFreeScan(data_.data() + begin, len, key);
}

}  // namespace li::btree
