#include "btree/fast_tree.h"

#include <algorithm>

#include "common/bits.h"
#include "search/search.h"

namespace li::btree {

namespace {

/// Branch-free count of keys in node[0..kNodeKeys) that are <= key.
/// With -march=native the compiler lowers this to packed 64-bit compares.
inline size_t CountLessEq(const uint64_t* node, uint64_t key) {
  size_t c = 0;
  for (size_t i = 0; i < FastTree::kNodeKeys; ++i) {
    c += static_cast<size_t>(node[i] <= key);
  }
  return c;
}

}  // namespace

Status FastTree::Build(std::span<const uint64_t> keys) {
  if (!std::is_sorted(keys.begin(), keys.end())) {
    return Status::InvalidArgument("FastTree: keys must be sorted");
  }
  data_ = keys;
  levels_.clear();
  level_entries_.clear();
  allocated_bytes_ = 0;
  if (keys.empty()) return Status::OK();

  // Leaf-most separators: first key of every 16-key data block.
  std::vector<uint64_t> level;
  for (size_t i = 0; i < keys.size(); i += kNodeKeys) level.push_back(keys[i]);
  levels_.push_back(std::move(level));
  while (levels_.back().size() > kNodeKeys) {
    const auto& below = levels_.back();
    std::vector<uint64_t> next;
    for (size_t i = 0; i < below.size(); i += kNodeKeys) {
      next.push_back(below[i]);
    }
    levels_.push_back(std::move(next));
  }
  std::reverse(levels_.begin(), levels_.end());

  // Pad each level: entries to a multiple of 16 with +inf sentinels (so
  // branch-free compares never select padding), then the allocation to the
  // next power of two — the FAST blow-up.
  for (auto& lvl : levels_) {
    level_entries_.push_back(lvl.size());
    const size_t padded_entries = ((lvl.size() + kNodeKeys - 1) / kNodeKeys) *
                                  kNodeKeys;
    lvl.resize(padded_entries, UINT64_MAX);
    const size_t wanted_bytes = lvl.size() * sizeof(uint64_t);
    const size_t alloc_bytes = NextPow2(wanted_bytes);
    lvl.resize(alloc_bytes / sizeof(uint64_t), UINT64_MAX);
    allocated_bytes_ += alloc_bytes;
  }
  return Status::OK();
}

index::Approx FastTree::ApproxPos(uint64_t key) const {
  if (data_.empty()) return index::Approx{};
  size_t node = 0;
  for (size_t l = 0; l < levels_.size(); ++l) {
    const uint64_t* base = levels_[l].data() + node * kNodeKeys;
    const size_t cnt = CountLessEq(base, key);
    // Child = index of last separator <= key (or 0 if none).
    const size_t entry = node * kNodeKeys + (cnt == 0 ? 0 : cnt - 1);
    node = std::min(entry, level_entries_[l] - 1);
  }
  // `node` is the 16-key data block the descent chose.
  const size_t begin = node * kNodeKeys;
  const size_t end = begin + std::min(kNodeKeys, data_.size() - begin);
  return index::Approx{begin, begin, end};
}

size_t FastTree::LowerBound(uint64_t key) const {
  if (data_.empty()) return 0;
  const index::Approx a = ApproxPos(key);
  // Branch-free scan inside the selected block.
  const size_t off =
      search::BranchFreeScan(data_.data() + a.lo, a.hi - a.lo, key);
  return a.lo + off;
}

size_t FastTree::SizeBytes() const { return allocated_bytes_; }

size_t FastTree::UsefulBytes() const {
  size_t bytes = 0;
  for (const size_t n : level_entries_) bytes += n * sizeof(uint64_t);
  return bytes;
}

}  // namespace li::btree
