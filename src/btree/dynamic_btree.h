// In-memory dynamic B+-Tree map (insertable) — the mutable counterpart of
// ReadOnlyBTree. Used by the Appendix-D.1 delta-index example (buffered
// inserts merged into a retrained learned index) and available as a
// worst-case-bounded leaf for hybrid indexes. Classic design: linked leaf
// nodes hold key/value pairs, inner nodes hold separators; splits propagate
// upward; lookups/scans use lower_bound semantics like every range index in
// this library.

#ifndef LI_BTREE_DYNAMIC_BTREE_H_
#define LI_BTREE_DYNAMIC_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "common/status.h"
#include "index/approx.h"

namespace li::btree {

class BTreeMap {
 public:
  static constexpr int kLeafCap = 64;
  static constexpr int kInnerCap = 64;

  using Key = uint64_t;
  using Value = uint64_t;

  /// RangeIndex contract: Build takes no knobs (node caps are compile-time).
  struct BuildConfig {};
  using key_type = Key;
  using config_type = BuildConfig;

  BTreeMap();
  ~BTreeMap();
  BTreeMap(const BTreeMap&) = delete;
  BTreeMap& operator=(const BTreeMap&) = delete;
  BTreeMap(BTreeMap&& other) noexcept;
  BTreeMap& operator=(BTreeMap&& other) noexcept;

  /// RangeIndex-contract bulk build: resets the map and inserts every key
  /// with its array position as value, so Lookup answers lower_bound over
  /// `keys` like the static indexes do. Inserting after Build invalidates
  /// the RangeIndex view (Lookup/ApproxPos describe the Build snapshot
  /// only); the map API (Insert/Find/iterators) remains fully usable.
  Status Build(std::span<const Key> keys, const BuildConfig& config);

  /// Inserts or overwrites.
  void Insert(Key key, Value value);

  /// Exact-match lookup.
  std::optional<Value> Find(Key key) const;

  /// Forward iterator over entries >= key, in key order.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    Key key() const;
    Value value() const;
    void Next();

   private:
    friend class BTreeMap;
    const void* leaf_ = nullptr;
    int idx_ = 0;
  };
  Iterator LowerBound(Key key) const;
  Iterator Begin() const;

  /// lower_bound position over the Build() key array (built_keys_ if the
  /// key is above everything). Only meaningful after Build().
  size_t Lookup(Key key) const;

  /// Dynamic trees answer exactly, so the window is a single slot.
  index::Approx ApproxPos(Key key) const {
    return index::Approx::Exact(Lookup(key), built_keys_);
  }

  size_t size() const { return size_; }
  size_t height() const { return height_; }
  size_t SizeBytes() const { return allocated_bytes_; }

 private:
  struct Node;
  struct LeafNode;
  struct InnerNode;

  struct SplitResult {
    bool did_split = false;
    Key separator = 0;
    Node* right = nullptr;
  };

  SplitResult InsertRec(Node* node, Key key, Value value);
  void FreeRec(Node* node);

  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t height_ = 1;
  size_t allocated_bytes_ = 0;
  size_t built_keys_ = 0;  // length of the array passed to Build()
};

}  // namespace li::btree

#endif  // LI_BTREE_DYNAMIC_BTREE_H_
