// Measurement harness (the "tests them automatically" half of LIF, §3.1):
// latency per lookup over a query workload, with warm-up and repetition,
// plus the paper-style table printer used by every figure bench.

#ifndef LI_LIF_MEASURE_H_
#define LI_LIF_MEASURE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "hash/record.h"

namespace li::lif {

/// Runs `fn(query)` over all queries `repeats` times and returns average
/// nanoseconds per call. `fn` must return something accumulable so the
/// compiler cannot elide the work.
template <typename Fn, typename Q>
double MeasureNsPerOp(const std::vector<Q>& queries, int repeats, Fn&& fn) {
  if (queries.empty()) return 0.0;
  uint64_t sink = 0;
  // Warm-up pass (caches, branch predictors).
  for (const auto& q : queries) sink += static_cast<uint64_t>(fn(q));
  Timer timer;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& q : queries) sink += static_cast<uint64_t>(fn(q));
  }
  const double ns = timer.ElapsedNanos();
  DoNotOptimize(sink);
  return ns / (static_cast<double>(queries.size()) * repeats);
}

/// Times one full batch call (warm-up run, then a timed run) and returns
/// average nanoseconds per item. `run_batch` must perform the entire
/// batch and return something tied to its output (e.g. `out.data()`) so
/// the work cannot be elided. The batched counterpart of MeasureNsPerOp,
/// shared by every bench that compares Find vs FindBatch.
template <typename BatchFn>
double MeasureBatchNsPerOp(size_t batch_size, BatchFn&& run_batch) {
  if (batch_size == 0) return 0.0;
  DoNotOptimize(run_batch());  // warm-up (caches, branch predictors)
  Timer timer;
  auto sink = run_batch();
  const double ns = timer.ElapsedNanos();
  DoNotOptimize(sink);
  return ns / static_cast<double>(batch_size);
}

/// Fixed-width table printer echoing the layout of the paper's figures
/// (config column, then metric columns, factors in parentheses).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Adds a full-width section label row (e.g. "Btree" / "Learned Index").
  void AddSection(std::string label);
  void Print() const;

  /// "12.34 (1.50x)" helpers used across benches.
  static std::string WithFactor(double value, double factor, int precision = 2);
  static std::string WithPercent(double value, double pct, int precision = 0);

 private:
  std::vector<std::string> headers_;
  struct Row {
    bool is_section = false;
    std::string section;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

/// Benchmark scale: number of keys in millions, overridable with the
/// REPRO_SCALE_M environment variable (paper scale would be 200).
size_t BenchScaleKeys(size_t default_millions = 2);

/// A mixed read/write evaluation workload over a sorted key set: held-out
/// keys form the insert stream (evenly spaced, so inserts match the data
/// distribution), lookup probes sample the build split, and a
/// deterministic schedule interleaves the two at the target insert ratio.
/// Shared by the LIF writable synthesizer and bench_readwrite, so the
/// bench's consistency checks exercise the same workload class the
/// synthesizer qualifies candidates on.
struct ReadWriteWorkload {
  std::vector<uint64_t> base;      // build split, sorted
  std::vector<uint64_t> inserts;   // held-out insert stream
  std::vector<uint64_t> lookups;   // probes over the build split
  std::vector<uint8_t> is_insert;  // op schedule, one entry per op
};

ReadWriteWorkload MakeReadWriteWorkload(std::span<const uint64_t> keys,
                                        size_t ops, double insert_ratio,
                                        size_t lookup_probes, uint64_t seed);

/// Shape of the insert stream's key placement — the knob that makes a
/// workload drift away from the build-time CDF (what online shard
/// re-balancing exists to absorb).
struct InsertSkew {
  enum class Kind {
    kUniform,        // inserts follow the build distribution (the default
                     // MakeReadWriteWorkload behavior)
    kZipf,           // insert positions zipf-ranked over the key space:
                     // the lowest key gaps are the hottest, so mass piles
                     // onto the head shards
    kMovingHotspot,  // inserts land in a narrow window of the key space
                     // that drifts low -> high as the stream progresses
  };
  Kind kind = Kind::kUniform;
  /// Zipf exponent for kZipf (1.0-1.3 are realistic serving skews).
  double zipf_s = 1.1;
  /// Window width for kMovingHotspot, as a fraction of the key span.
  double hotspot_fraction = 0.05;
};

/// Skewed-insert variant of MakeReadWriteWorkload: the base keeps *all*
/// of `keys`, and the insert stream is fresh keys synthesized into the
/// gaps the skew targets (zipf-hot gaps, or a moving hotspot window), so
/// the insert distribution deliberately drifts from the build CDF.
/// kUniform delegates to MakeReadWriteWorkload unchanged.
ReadWriteWorkload MakeSkewedReadWriteWorkload(std::span<const uint64_t> keys,
                                              size_t ops, double insert_ratio,
                                              size_t lookup_probes,
                                              uint64_t seed,
                                              const InsertSkew& skew);

/// The multi-threaded scheduled-stream core every mixed-workload driver
/// delegates to — range, point and existence streams are all the same
/// harness, only the per-op callables differ. The op schedule is cut
/// into per-thread slices (disjoint insert sub-streams, decorrelated
/// lookup offsets), all threads start on one flag, and the score is
/// aggregate wall-time per op. `ins(ii)` consumes insert-stream slot
/// `ii` (< insert_pool, strictly increasing per thread); `look(li)`
/// takes a raw probe counter and handles its own modulo. Both must be
/// thread-safe and return something accumulable.
template <typename InsertFn, typename LookupFn>
double RunScheduledStreamNs(std::span<const uint8_t> is_insert,
                            size_t insert_pool, size_t threads,
                            InsertFn&& ins, LookupFn&& look) {
  threads = std::max<size_t>(threads, 1);
  const size_t ops = is_insert.size();
  if (ops == 0) return 0.0;
  std::vector<size_t> ins_prefix(ops + 1, 0);
  for (size_t i = 0; i < ops; ++i) {
    ins_prefix[i + 1] = ins_prefix[i] + (is_insert[i] != 0 ? 1 : 0);
  }
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    const size_t lo = t * ops / threads;
    const size_t hi = (t + 1) * ops / threads;
    pool.emplace_back([&, t, lo, hi] {
      size_t ii = ins_prefix[lo];
      size_t li = t * 7919;  // decorrelate probe positions across threads
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      uint64_t sink = 0;
      for (size_t i = lo; i < hi; ++i) {
        if (is_insert[i] != 0 && ii < insert_pool) {
          sink += static_cast<uint64_t>(ins(ii++));
        } else {
          sink += static_cast<uint64_t>(look(li++));
        }
      }
      DoNotOptimize(sink);
    });
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  Timer timer;
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  return timer.ElapsedNanos() / static_cast<double>(ops);
}

/// Multi-threaded mixed-stream driver over a ReadWriteWorkload. The ONE
/// definition of this harness: the LIF writable synthesizer qualifies
/// concurrent candidates with it and bench_concurrent reports it, so the
/// qualification metric and the benched numbers cannot drift apart. With
/// threads == 1 it degenerates to the sequential stream. `idx` must be
/// safe for the given thread count (any ConcurrentWritableRangeIndex;
/// 1 for everything else).
template <typename Idx>
double RunMixedStreamNs(Idx& idx, const ReadWriteWorkload& w,
                        size_t threads) {
  return RunScheduledStreamNs(
      std::span<const uint8_t>(w.is_insert), w.inserts.size(), threads,
      [&idx, &w](size_t ii) -> uint64_t {
        return idx.Insert(w.inserts[ii]) ? 1 : 0;
      },
      [&idx, &w](size_t li) -> uint64_t {
        return idx.Lookup(w.lookups[li % w.lookups.size()]);
      });
}

/// Mixed read/write workload over keyed records — the point-class twin of
/// ReadWriteWorkload: held-out records form the insert stream, probe keys
/// sample the build split (so lookups hit), and the shared schedule
/// interleaves at the target ratio.
struct PointReadWriteWorkload {
  std::vector<hash::Record> base;     // build split (first-wins dedup'd)
  std::vector<hash::Record> inserts;  // held-out insert stream
  std::vector<uint64_t> lookups;      // probe keys over the build split
  std::vector<uint8_t> is_insert;     // op schedule, one entry per op
};

PointReadWriteWorkload MakePointReadWriteWorkload(
    std::span<const hash::Record> records, size_t ops, double insert_ratio,
    size_t lookup_probes, uint64_t seed);

/// Point-stream driver: Insert(record) / Find(key, &rec) through the
/// shared scheduled-stream core. `idx` must be a
/// ConcurrentWritablePointIndex for threads > 1.
template <typename Idx>
double RunPointMixedStreamNs(Idx& idx, const PointReadWriteWorkload& w,
                             size_t threads) {
  return RunScheduledStreamNs(
      std::span<const uint8_t>(w.is_insert), w.inserts.size(), threads,
      [&idx, &w](size_t ii) -> uint64_t {
        return idx.Insert(w.inserts[ii]) ? 1 : 0;
      },
      [&idx, &w](size_t li) -> uint64_t {
        hash::Record rec;
        return idx.Find(w.lookups[li % w.lookups.size()], &rec) ? 1 : 0;
      });
}

/// Mixed insert/probe workload over string keys — the existence-class
/// twin: held-out keys form the insert stream, probes mix members with
/// non-members (so the FPR path is exercised, not just hits).
struct ExistenceReadWriteWorkload {
  std::vector<std::string> base;     // corpus build split
  std::vector<std::string> inserts;  // held-out insert stream
  std::vector<std::string> lookups;  // probes: members + non-members
  std::vector<uint8_t> is_insert;    // op schedule, one entry per op
};

ExistenceReadWriteWorkload MakeExistenceReadWriteWorkload(
    std::span<const std::string> keys, std::span<const std::string> non_keys,
    size_t ops, double insert_ratio, size_t lookup_probes, uint64_t seed);

/// Existence-stream driver: Insert(key) / MightContain(key) through the
/// shared scheduled-stream core. `f` must be a ConcurrentExistenceIndex
/// for threads > 1.
template <typename F>
double RunExistenceMixedStreamNs(F& f, const ExistenceReadWriteWorkload& w,
                                 size_t threads) {
  return RunScheduledStreamNs(
      std::span<const uint8_t>(w.is_insert), w.inserts.size(), threads,
      [&f, &w](size_t ii) -> uint64_t {
        return f.Insert(std::string_view(w.inserts[ii])) ? 1 : 0;
      },
      [&f, &w](size_t li) -> uint64_t {
        return f.MightContain(
                   std::string_view(w.lookups[li % w.lookups.size()]))
                   ? 1
                   : 0;
      });
}

}  // namespace li::lif

#endif  // LI_LIF_MEASURE_H_
