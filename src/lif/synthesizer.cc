#include "lif/synthesizer.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "bloom/model_hash_bloom.h"
#include "btree/readonly_btree.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "concurrent/concurrent_point_index.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/rebuildable_existence.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/delta_range_index.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/inplace_chained_map.h"
#include "lif/measure.h"
#include "rangefilter/interval_bitmap_filter.h"
#include "rangefilter/learned_range_filter.h"
#include "rangefilter/workload.h"

namespace li::lif {

namespace {

template <typename TopModel>
Status EvaluateCandidate(std::span<const uint64_t> keys,
                         const SynthesisSpec& spec, const rmi::RmiConfig& rc,
                         const std::string& description,
                         const std::vector<uint64_t>& queries,
                         rmi::Rmi<TopModel>* out, CandidateReport* report) {
  LI_RETURN_IF_ERROR(out->Build(keys, rc));
  report->description = description;
  report->stage2 = rc.num_leaf_models;
  report->size_bytes = out->SizeBytes();
  report->max_abs_err = out->MaxAbsError();
  report->within_budget = report->size_bytes <= spec.size_budget_bytes;
  report->model_ns = MeasureNsPerOp(
      queries, 1, [&](uint64_t q) { return out->Predict(q).pos; });
  report->lookup_ns =
      MeasureNsPerOp(queries, 1, [&](uint64_t q) { return out->LowerBound(q); });
  return Status::OK();
}

}  // namespace

Status SynthesizedIndex::Synthesize(std::span<const uint64_t> keys,
                                    const SynthesisSpec& spec) {
  if (keys.empty()) {
    return Status::InvalidArgument("Synthesize: empty key set");
  }
  reports_.clear();
  const std::vector<uint64_t> key_vec(keys.begin(), keys.end());
  const std::vector<uint64_t> queries =
      data::SampleKeys(key_vec, spec.eval_queries, spec.seed);

  double best_ns = std::numeric_limits<double>::infinity();
  bool found = false;

  // Candidates are built concretely (Build is config-specific), then
  // type-erased into the uniform contract — the §3.1 "generate different
  // index configurations ... test them automatically" seam.
  auto consider = [&](auto&& idx, const CandidateReport& report) {
    reports_.push_back(report);
    if (!report.within_budget) return;
    if (report.lookup_ns < best_ns) {
      best_ns = report.lookup_ns;
      winner_ = index::AnyRangeIndex(std::move(idx));
      description_ = report.description;
      found = true;
    }
  };

  for (const size_t m : spec.stage2_sizes) {
    rmi::RmiConfig rc;
    rc.num_leaf_models = m;
    rc.strategy = spec.strategy;

    if (spec.try_linear_top) {
      rmi::Rmi<models::LinearModel> idx;
      CandidateReport report;
      LI_RETURN_IF_ERROR(EvaluateCandidate(
          keys, spec, rc, "linear top / " + std::to_string(m) + " leaves",
          queries, &idx, &report));
      consider(std::move(idx), report);
    }
    if (spec.try_multivariate_top) {
      rmi::Rmi<models::MultivariateModel> idx;
      CandidateReport report;
      LI_RETURN_IF_ERROR(EvaluateCandidate(
          keys, spec, rc,
          "multivariate top / " + std::to_string(m) + " leaves", queries,
          &idx, &report));
      consider(std::move(idx), report);
    }
    for (const auto& hidden : spec.nn_hidden) {
      rmi::RmiConfig nn_rc = rc;
      nn_rc.train.nn.hidden = hidden;
      nn_rc.train.nn.epochs = spec.nn_epochs;
      std::string desc = "nn[";
      for (size_t i = 0; i < hidden.size(); ++i) {
        if (i) desc += 'x';
        desc += std::to_string(hidden[i]);
      }
      desc += "] top / " + std::to_string(m) + " leaves";
      rmi::Rmi<models::NeuralNet> idx;
      CandidateReport report;
      LI_RETURN_IF_ERROR(
          EvaluateCandidate(keys, spec, nn_rc, desc, queries, &idx, &report));
      consider(std::move(idx), report);
    }
  }
  if (!found) {
    return Status::NotFound("Synthesize: no candidate fits the size budget");
  }
  return Status::OK();
}

Status SynthesizedIndex::WriteSnapshot(const std::string& path) const {
  const std::string kind = winner_.SnapshotKind();
  if (kind.empty()) {
    return Status::Unimplemented("SynthesizedIndex: winner '" + description_ +
                                 "' has no flat snapshot format");
  }
  snapshot::SnapshotWriter writer;
  LI_RETURN_IF_ERROR(writer.AddSection("lif/kind",
                                       snapshot::SectionKind::kMeta,
                                       kind.data(), kind.size()));
  LI_RETURN_IF_ERROR(writer.AddSection("lif/desc",
                                       snapshot::SectionKind::kMeta,
                                       description_.data(),
                                       description_.size()));
  LI_RETURN_IF_ERROR(winner_.WriteSections(writer, "w/"));
  return writer.WriteFile(path);
}

Result<SynthesizedIndex> SynthesizedIndex::OpenSnapshot(
    const std::string& path, const snapshot::OpenOptions& opts) {
  auto reader = snapshot::SnapshotReader::Open(path, opts);
  if (!reader.ok()) return reader.status();
  auto kind_bytes = reader.value().Get("lif/kind");
  if (!kind_bytes.ok()) return kind_bytes.status();
  auto desc_bytes = reader.value().Get("lif/desc");
  if (!desc_bytes.ok()) return desc_bytes.status();
  const std::string kind(
      reinterpret_cast<const char*>(kind_bytes.value().data()),
      kind_bytes.value().size());
  SynthesizedIndex out;
  out.description_.assign(
      reinterpret_cast<const char*>(desc_bytes.value().data()),
      desc_bytes.value().size());
  // The kind-tag registry: one entry per candidate type with a flat
  // snapshot format. New snapshottable candidates add a case here.
  if (kind == "rmi.linear.u64") {
    rmi::LinearRmi idx;
    LI_RETURN_IF_ERROR(idx.LoadSections(reader.value(), "w/"));
    out.winner_ = index::AnyRangeIndex(std::move(idx));
  } else {
    return Status::Unimplemented("SynthesizedIndex snapshot kind '" + kind +
                                 "' has no registered loader");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Point-index synthesis (§4): {random, learned-CDF} x slot sweep x family.
// ---------------------------------------------------------------------------

namespace {

/// How many of the workload's scheduled inserts the stream executes.
/// The schedule is budget-guarded (never more inserts than the pool),
/// and the harness consumes insert slots in prefix order per thread
/// slice, so it is exactly the scheduled count: the executed set is
/// always inserts[0..n).
size_t ExecutedInserts(const std::vector<uint8_t>& is_insert, size_t pool) {
  size_t n = 0;
  for (const uint8_t b : is_insert) n += b != 0 ? 1 : 0;
  return std::min(n, pool);
}

/// Drives a concurrent point candidate through the shared mixed stream
/// at `threads`, charging the drain of pending background rebuilds
/// inside the timed window (a config cannot score well by deferring its
/// fold CPU past the measurement), then oracle-verifies the quiesced
/// index against exact map semantics: every surviving record — build
/// split plus executed inserts — must come back with its exact payload,
/// and keys outside the set must miss. Internal on any mismatch.
template <typename Idx>
Status MeasureConcurrentPointCandidate(Idx& idx,
                                       const PointReadWriteWorkload& w,
                                       size_t threads, uint64_t seed,
                                       CandidateReport* report) {
  Timer timer;
  RunPointMixedStreamNs(idx, w, threads);
  idx.WaitForRebuilds();
  report->mixed_ns =
      timer.ElapsedNanos() /
      static_cast<double>(std::max<size_t>(w.is_insert.size(), 1));
  report->threads = threads;
  report->size_bytes = idx.SizeBytes();
  report->stage2 = idx.Stats().num_slots;
  report->max_abs_err =
      static_cast<int64_t>(idx.ConcurrentStats().delta_entries);
  report->lookup_ns = MeasureNsPerOp(w.lookups, 1, [&](uint64_t q) {
    hash::Record rec;
    return idx.Find(q, &rec) ? 1 : 0;
  });
  const size_t executed = ExecutedInserts(w.is_insert, w.inserts.size());
  auto expect_record = [&](const hash::Record& want) {
    hash::Record got{};
    if (!idx.Find(want.key, &got) || got.payload != want.payload) {
      return Status::Internal(
          "concurrent point oracle: wrong or missing record for key " +
          std::to_string(want.key));
    }
    return Status::OK();
  };
  for (const hash::Record& r : w.base) LI_RETURN_IF_ERROR(expect_record(r));
  for (size_t i = 0; i < executed; ++i) {
    LI_RETURN_IF_ERROR(expect_record(w.inserts[i]));
  }
  for (size_t i = executed; i < w.inserts.size(); ++i) {
    hash::Record got{};
    if (idx.Find(w.inserts[i].key, &got)) {
      return Status::Internal(
          "concurrent point oracle: unexecuted insert visible");
    }
  }
  // Random absent probes (base and inserts are sorted by key, so
  // membership is two binary searches).
  auto present = [&](uint64_t k) {
    const auto key_lt = [](const hash::Record& r, uint64_t key) {
      return r.key < key;
    };
    const auto bi = std::lower_bound(w.base.begin(), w.base.end(), k, key_lt);
    if (bi != w.base.end() && bi->key == k) return true;
    const auto ii =
        std::lower_bound(w.inserts.begin(), w.inserts.end(), k, key_lt);
    return ii != w.inserts.end() && ii->key == k;
  };
  Xorshift128Plus rng(seed ^ 0x7F4A7C15ULL);
  for (int probes = 0; probes < 256;) {
    const uint64_t k = rng.Next();
    if (present(k)) continue;
    ++probes;
    hash::Record got{};
    if (idx.Find(k, &got)) {
      return Status::Internal("concurrent point oracle: absent key found");
    }
  }
  return Status::OK();
}

}  // namespace

Status SynthesizedPointIndex::Synthesize(std::span<const hash::Record> records,
                                         const PointSynthesisSpec& spec) {
  if (records.empty()) {
    return Status::InvalidArgument("SynthesizePoint: empty record set");
  }
  reports_.clear();
  std::vector<uint64_t> keys;
  keys.reserve(records.size());
  for (const hash::Record& r : records) keys.push_back(r.key);
  const std::vector<uint64_t> queries =
      data::SampleKeys(keys, spec.eval_queries, spec.seed);

  double best_ns = std::numeric_limits<double>::infinity();
  bool found = false;

  auto consider = [&](auto&& map, CandidateReport report) {
    report.within_budget = report.size_bytes <= spec.size_budget_bytes;
    reports_.push_back(report);
    if (!report.within_budget) return;
    if (report.lookup_ns < best_ns) {
      best_ns = report.lookup_ns;
      winner_ = index::AnyPointIndex(std::move(map));
      description_ = report.description;
      found = true;
    }
  };

  // Every map family shares the measurement recipe; the hash-only cost
  // (model_ns) is measured once per hash config below.
  auto measure = [&](const auto& map, CandidateReport* report) {
    report->size_bytes = map.SizeBytes();
    const index::PointIndexStats stats = map.Stats();
    report->stage2 = stats.num_slots;
    report->max_abs_err = static_cast<int64_t>(stats.overflow);
    report->lookup_ns = MeasureNsPerOp(
        queries, 1, [&](uint64_t q) { return map.Find(q) != nullptr; });
  };

  std::vector<hash::HashConfig> hash_configs;
  if (spec.try_random_hash) {
    hash::HashConfig hc;
    hc.kind = hash::HashKind::kRandom;
    hc.seed = spec.seed;
    hash_configs.push_back(hc);
  }
  if (spec.try_learned_hash) {
    hash::HashConfig hc;
    hc.kind = hash::HashKind::kLearnedCdf;
    hc.seed = spec.seed;
    hc.cdf_leaf_models = spec.cdf_leaf_models;
    hash_configs.push_back(hc);
  }

  for (const hash::HashConfig& hc : hash_configs) {
    const bool learned = hc.kind == hash::HashKind::kLearnedCdf;
    const std::string hash_name = learned ? "learned-cdf" : "random";
    // Train the hash once per family (the learned CDF model depends only
    // on the keys); every candidate below copies + retargets it to its
    // own slot count instead of sorting and retraining per grid point.
    hash::PointHash fn;
    LI_RETURN_IF_ERROR(
        hash::BuildRecordHash(records, records.size(), hc, &fn));
    // Hash-only execution cost (the Figure-8 "model execution" column).
    const double hash_ns =
        MeasureNsPerOp(queries, 1, [&](uint64_t q) { return fn(q); });

    if (spec.try_chained) {
      for (const int pct : spec.slot_percents) {
        hash::ChainedHashMapConfig mc;
        mc.num_slots = std::max<uint64_t>(
            1, records.size() * static_cast<uint64_t>(pct) / 100);
        mc.hash = hc;
        hash::ChainedHashMap map;
        if (!map.Build(records, mc, fn).ok()) continue;
        CandidateReport report;
        report.description = "chained / " + hash_name + " / " +
                             std::to_string(pct) + "% slots";
        report.model_ns = hash_ns;
        measure(map, &report);
        consider(std::move(map), report);
      }
    }
    if (spec.try_inplace) {
      hash::InplaceChainedMapConfig mc;
      mc.hash = hc;
      hash::InplaceChainedMap map;
      if (map.Build(records, mc, fn).ok()) {
        CandidateReport report;
        report.description = "inplace-chained / " + hash_name;
        report.model_ns = hash_ns;
        measure(map, &report);
        consider(std::move(map), report);
      }
    }
  }

  if (spec.try_cuckoo) {
    // The cuckoo family hashes internally (two random choices); it
    // contributes the high-utilization baselines of Table 1 in both
    // careful modes.
    struct {
      double load_factor;
      bool careful;
      const char* name;
    } variants[] = {
        {spec.cuckoo_load_factor, false, "cuckoo / avx-style"},
        {std::min(spec.cuckoo_load_factor, 0.95), true,
         "cuckoo / commercial (careful)"},
    };
    for (const auto& v : variants) {
      hash::CuckooMapConfig mc;
      mc.load_factor = v.load_factor;
      mc.careful = v.careful;
      mc.seed = spec.seed | 1;
      hash::CuckooMap<hash::Record> map;
      if (!map.Build(records, mc).ok()) continue;
      CandidateReport report;
      report.description = v.name;
      measure(map, &report);
      consider(std::move(map), report);
    }
  }

  // ---- concurrent axis (report-only): the thread-safe write path over
  // the same families, qualified under the shared mixed stream. A
  // concurrent wrapper's Find is value-copy-out (a base pointer would
  // dangle once a rebuild retires its version), so it cannot erase into
  // AnyPointIndex; candidates report next to the static grid without
  // competing for the winner.
  if (spec.try_concurrent) {
    const PointReadWriteWorkload cw = MakePointReadWriteWorkload(
        records, spec.eval_ops, spec.insert_ratio, spec.eval_queries,
        spec.seed);
    if (spec.try_chained) {
      using Conc = concurrent::ConcurrentPointIndex<hash::ChainedHashMap>;
      Conc::Config cfg;
      cfg.base.num_slots = std::max<size_t>(1, cw.base.size());
      cfg.base.hash.kind = hash::HashKind::kRandom;
      cfg.base.hash.seed = spec.seed;
      cfg.log_cap = spec.log_cap;
      cfg.rebuild_entries = spec.rebuild_entries;
      Conc idx;
      LI_RETURN_IF_ERROR(
          idx.Build(std::span<const hash::Record>(cw.base), cfg));
      CandidateReport report;
      report.description = "concurrent-point[chained / random] x" +
                           std::to_string(spec.eval_threads) + "T";
      LI_RETURN_IF_ERROR(MeasureConcurrentPointCandidate(
          idx, cw, spec.eval_threads, spec.seed, &report));
      report.within_budget = report.size_bytes <= spec.size_budget_bytes;
      reports_.push_back(report);
    }
    if (spec.try_cuckoo) {
      using Conc =
          concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>;
      Conc::Config cfg;
      cfg.base.load_factor = std::min(spec.cuckoo_load_factor, 0.95);
      cfg.base.careful = true;
      cfg.base.seed = spec.seed | 1;
      cfg.log_cap = spec.log_cap;
      cfg.rebuild_entries = spec.rebuild_entries;
      Conc idx;
      LI_RETURN_IF_ERROR(
          idx.Build(std::span<const hash::Record>(cw.base), cfg));
      CandidateReport report;
      report.description = "concurrent-point[cuckoo / careful] x" +
                           std::to_string(spec.eval_threads) + "T";
      LI_RETURN_IF_ERROR(MeasureConcurrentPointCandidate(
          idx, cw, spec.eval_threads, spec.seed, &report));
      report.within_budget = report.size_bytes <= spec.size_budget_bytes;
      reports_.push_back(report);
    }
  }

  if (!found) {
    return Status::NotFound(
        "SynthesizePoint: no candidate fits the size budget");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Existence-index synthesis (§5): classifier capacity x construction x
// bitmap size, optimizing memory at a fixed target FPR.
// ---------------------------------------------------------------------------

namespace {

/// Classifier-owning wrappers: the erased winner must be self-contained,
/// so the trained model travels with the filter it calibrates.
struct OwnedLearnedBloom {
  std::shared_ptr<classifier::NgramLogistic> model;
  bloom::LearnedBloomFilter<classifier::NgramLogistic> filter;

  bool MightContain(std::string_view key) const {
    return filter.MightContain(key);
  }
  size_t SizeBytes() const { return filter.SizeBytes(); }
  double MeasuredFpr(std::span<const std::string> non_keys) const {
    return filter.MeasuredFpr(non_keys);
  }
};

struct OwnedModelHashBloom {
  std::shared_ptr<classifier::NgramLogistic> model;
  bloom::ModelHashBloomFilter<classifier::NgramLogistic> filter;

  bool MightContain(std::string_view key) const {
    return filter.MightContain(key);
  }
  size_t SizeBytes() const { return filter.SizeBytes(); }
  double MeasuredFpr(std::span<const std::string> non_keys) const {
    return filter.MeasuredFpr(non_keys);
  }
};

static_assert(index::ExistenceIndex<OwnedLearnedBloom>);
static_assert(index::ExistenceIndex<OwnedModelHashBloom>);

/// Drives a concurrent existence candidate through the shared mixed
/// stream at `threads` (rebuild drain charged inside the timed window),
/// then verifies the quiesced filter keeps the §5 guarantee online: no
/// false negative over the corpus or any executed insert. Internal on
/// any false negative.
template <typename F>
Status MeasureConcurrentExistenceCandidate(
    F& f, const ExistenceReadWriteWorkload& w, size_t threads,
    CandidateReport* report) {
  Timer timer;
  RunExistenceMixedStreamNs(f, w, threads);
  f.WaitForRebuilds();
  report->mixed_ns =
      timer.ElapsedNanos() /
      static_cast<double>(std::max<size_t>(w.is_insert.size(), 1));
  report->threads = threads;
  report->size_bytes = f.SizeBytes();
  report->lookup_ns = MeasureNsPerOp(w.lookups, 1, [&](const std::string& q) {
    return f.MightContain(std::string_view(q));
  });
  const size_t executed = ExecutedInserts(w.is_insert, w.inserts.size());
  for (const std::string& k : w.base) {
    if (!f.MightContain(std::string_view(k))) {
      return Status::Internal(
          "concurrent existence oracle: false negative on corpus key");
    }
  }
  for (size_t i = 0; i < executed; ++i) {
    if (!f.MightContain(std::string_view(w.inserts[i]))) {
      return Status::Internal(
          "concurrent existence oracle: false negative on inserted key");
    }
  }
  return Status::OK();
}

}  // namespace

Status SynthesizedExistenceIndex::Synthesize(
    std::span<const std::string> keys,
    std::span<const std::string> train_non_keys,
    std::span<const std::string> valid_non_keys,
    std::span<const std::string> eval_non_keys,
    const ExistenceSynthesisSpec& spec) {
  if (keys.empty()) {
    return Status::InvalidArgument("SynthesizeExistence: empty key set");
  }
  if (valid_non_keys.empty() || eval_non_keys.empty()) {
    return Status::InvalidArgument(
        "SynthesizeExistence: need validation and eval non-key sets");
  }
  if (spec.target_fpr <= 0.0 || spec.target_fpr >= 1.0) {
    return Status::InvalidArgument("SynthesizeExistence: bad target FPR");
  }
  reports_.clear();
  const std::vector<std::string> probes(eval_non_keys.begin(),
                                        eval_non_keys.end());
  const double fpr_cap = spec.target_fpr * spec.fpr_slack;

  size_t best_bytes = std::numeric_limits<size_t>::max();
  bool found = false;

  // Winner = smallest qualifying candidate: the §5 objective is memory at
  // a fixed FPR; a candidate whose measured FPR blows past the target is
  // not the same index, however small. Qualification uses the FPR on the
  // *validation* split so the eval split stays an unbiased test set
  // (report.fpr); picking by eval FPR would let the test set select the
  // winner.
  auto consider = [&](auto&& filter, CandidateReport report) {
    report.within_budget = report.size_bytes <= spec.size_budget_bytes;
    reports_.push_back(report);
    if (!report.within_budget || report.valid_fpr > fpr_cap) return;
    if (report.size_bytes < best_bytes) {
      best_bytes = report.size_bytes;
      winner_ = index::AnyExistenceIndex(std::move(filter));
      description_ = report.description;
      found = true;
    }
  };

  // Fills the report: eval-split FPR + probe latency for reporting, plus
  // the validation-split FPR consider() qualifies on.
  auto measure = [&](const auto& filter, CandidateReport* report) {
    report->size_bytes = filter.SizeBytes();
    report->fpr = filter.MeasuredFpr(probes);
    report->valid_fpr = filter.MeasuredFpr(valid_non_keys);
    report->lookup_ns = MeasureNsPerOp(probes, 1, [&](const std::string& q) {
      return filter.MightContain(std::string_view(q));
    });
  };

  if (spec.try_plain_bloom) {
    bloom::BloomFilter plain;
    if (plain.Init(keys.size(), spec.target_fpr).ok()) {
      for (const auto& k : keys) plain.Add(std::string_view(k));
      CandidateReport report;
      report.description = "plain bloom";
      measure(plain, &report);
      consider(std::move(plain), report);
    }
  }

  for (const size_t buckets : spec.ngram_buckets) {
    classifier::NgramConfig ncfg;
    ncfg.num_buckets = buckets;
    ncfg.seed = spec.seed;
    auto model = std::make_shared<classifier::NgramLogistic>();
    if (!model->Train(keys, train_non_keys, ncfg).ok()) continue;
    const double model_ns =
        MeasureNsPerOp(probes, 1, [&](const std::string& q) {
          return model->Predict(q) > 0.5;
        });

    if (spec.try_learned) {
      OwnedLearnedBloom cand;
      cand.model = model;
      if (cand.filter
              .Build(cand.model.get(), keys, valid_non_keys, spec.target_fpr)
              .ok()) {
        CandidateReport report;
        report.description =
            "ngram(" + std::to_string(buckets) + ") + overflow bloom";
        report.stage2 = buckets;
        report.model_ns = model_ns;
        measure(cand, &report);
        consider(std::move(cand), report);
      }
    }
    if (spec.try_model_hash) {
      for (const double bpk : spec.bitmap_bits_per_key) {
        const uint64_t m = std::max<uint64_t>(
            1024, static_cast<uint64_t>(
                      bpk * static_cast<double>(keys.size())));
        OwnedModelHashBloom cand;
        cand.model = model;
        if (!cand.filter
                 .Build(cand.model.get(), keys, valid_non_keys,
                        spec.target_fpr, m)
                 .ok()) {
          continue;
        }
        CandidateReport report;
        report.description = "ngram(" + std::to_string(buckets) +
                             ") model-hash m=" + std::to_string(m);
        report.stage2 = buckets;
        report.model_ns = model_ns;
        measure(cand, &report);
        consider(std::move(cand), report);
      }
    }
  }

  // ---- concurrent axis (report-only): insertable filters over the
  // same constructions, qualified under the shared mixed stream. A
  // filter with a background rebuild worker inside is not
  // interchangeable with the static winner, so candidates report next
  // to the grid without competing for it.
  if (spec.try_concurrent) {
    const ExistenceReadWriteWorkload cw = MakeExistenceReadWriteWorkload(
        keys, eval_non_keys, spec.eval_ops, spec.insert_ratio, spec.eval_ops,
        spec.seed);
    if (spec.try_plain_bloom) {
      using ConcBloom = concurrent::RebuildableExistence<bloom::BloomFilter>;
      ConcBloom::Config cfg;
      cfg.rebuild = concurrent::PlainBloomRebuilder(spec.target_fpr);
      cfg.staleness = spec.rebuild_staleness;
      cfg.log_cap = spec.side_log_cap;
      ConcBloom f;
      LI_RETURN_IF_ERROR(
          f.Build(std::span<const std::string>(cw.base), cfg));
      CandidateReport report;
      report.description = "concurrent-existence[plain bloom] x" +
                           std::to_string(spec.eval_threads) + "T";
      LI_RETURN_IF_ERROR(MeasureConcurrentExistenceCandidate(
          f, cw, spec.eval_threads, &report));
      report.fpr = f.MeasuredFpr(probes);
      report.valid_fpr = f.MeasuredFpr(valid_non_keys);
      report.within_budget = report.size_bytes <= spec.size_budget_bytes;
      reports_.push_back(report);
    }
    if (spec.try_learned && !spec.ngram_buckets.empty() &&
        !train_non_keys.empty()) {
      using ConcLearned = concurrent::RebuildableExistence<OwnedLearnedBloom>;
      classifier::NgramConfig ncfg;
      ncfg.num_buckets = spec.ngram_buckets.front();
      ncfg.seed = spec.seed;
      auto model = std::make_shared<classifier::NgramLogistic>();
      if (model->Train(cw.base, train_non_keys, ncfg).ok()) {
        // Every background rebuild re-calibrates the threshold and
        // re-forms the overflow Bloom against the validation split, so
        // the rebuilder owns a copy of it (the model is fixed: §5
        // retrains offline, not per insert batch).
        auto valid = std::make_shared<std::vector<std::string>>(
            valid_non_keys.begin(), valid_non_keys.end());
        const double target = spec.target_fpr;
        ConcLearned::Config cfg;
        cfg.rebuild = [model, valid, target](
                          std::span<const std::string> ks,
                          OwnedLearnedBloom* out) -> Status {
          out->model = model;
          return out->filter.Build(out->model.get(), ks,
                                   std::span<const std::string>(*valid),
                                   target);
        };
        cfg.staleness = spec.rebuild_staleness;
        cfg.log_cap = spec.side_log_cap;
        ConcLearned f;
        LI_RETURN_IF_ERROR(
            f.Build(std::span<const std::string>(cw.base), cfg));
        CandidateReport report;
        report.description =
            "concurrent-existence[ngram(" +
            std::to_string(spec.ngram_buckets.front()) +
            ") + overflow bloom] x" + std::to_string(spec.eval_threads) +
            "T";
        report.stage2 = spec.ngram_buckets.front();
        LI_RETURN_IF_ERROR(MeasureConcurrentExistenceCandidate(
            f, cw, spec.eval_threads, &report));
        report.fpr = f.MeasuredFpr(probes);
        report.valid_fpr = f.MeasuredFpr(valid_non_keys);
        report.within_budget = report.size_bytes <= spec.size_budget_bytes;
        reports_.push_back(report);
      }
    }
  }

  if (!found) {
    return Status::NotFound(
        "SynthesizeExistence: no candidate meets the FPR target within "
        "the size budget");
  }
  return Status::OK();
}

Status SynthesizedExistenceIndex::SynthesizeRange(
    std::span<const uint64_t> keys, const RangeFilterSynthesisSpec& spec) {
  if (keys.empty()) {
    return Status::InvalidArgument("SynthesizeRange: empty key set");
  }
  if (spec.target_range_fpr <= 0.0 || spec.target_range_fpr >= 1.0) {
    return Status::InvalidArgument("SynthesizeRange: bad target range-FPR");
  }
  range_reports_.clear();

  std::vector<uint64_t> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Validation / eval empty-range splits from disjoint seeds, so the
  // qualification gate and the reported FPR never share queries, plus
  // the witness set every candidate must answer true on (zero false
  // negatives is a contract, not a metric).
  rangefilter::EmptyQueryConfig qcfg;
  qcfg.max_width = spec.max_query_width;
  qcfg.correlated_fraction = spec.correlated_fraction;
  qcfg.count = spec.valid_queries;
  const std::vector<index::RangeQuery> valid_queries =
      rangefilter::GenEmptyRanges(sorted, spec.seed * 3 + 1, qcfg);
  qcfg.count = spec.eval_queries;
  const std::vector<index::RangeQuery> eval_queries =
      rangefilter::GenEmptyRanges(sorted, spec.seed * 3 + 2, qcfg);
  const std::vector<index::RangeQuery> witnesses =
      rangefilter::GenWitnessRanges(sorted, spec.seed * 3 + 3,
                                    spec.witness_queries,
                                    spec.max_query_width);
  if (valid_queries.empty() || eval_queries.empty()) {
    return Status::InvalidArgument(
        "SynthesizeRange: key set has no gaps to generate empty ranges "
        "from");
  }

  const double fpr_cap = spec.target_range_fpr * spec.fpr_slack;
  size_t best_bytes = std::numeric_limits<size_t>::max();
  bool found = false;

  // Same shape as the point-probe sweep above: measure fills the report,
  // consider applies the oracle + qualification gates and keeps the
  // smallest qualifying candidate.
  auto consider = [&](auto&& filter,
                      CandidateReport report) -> Status {
    for (const index::RangeQuery& w : witnesses) {
      if (!filter.MightContainRange(w.lo, w.hi)) {
        return Status::Internal("SynthesizeRange oracle: false negative (" +
                                report.description + ")");
      }
    }
    report.size_bytes = filter.SizeBytes();
    report.valid_fpr = filter.MeasuredRangeFpr(valid_queries);
    report.fpr = filter.MeasuredRangeFpr(eval_queries);
    report.lookup_ns =
        MeasureNsPerOp(eval_queries, 1, [&](const index::RangeQuery& q) {
          return filter.MightContainRange(q.lo, q.hi);
        });
    report.within_budget = report.size_bytes <= spec.size_budget_bytes;
    range_reports_.push_back(report);
    if (report.within_budget && report.valid_fpr <= fpr_cap &&
        report.size_bytes < best_bytes) {
      best_bytes = report.size_bytes;
      range_winner_ = index::AnyRangeFilter(std::move(filter));
      range_description_ = report.description;
      found = true;
    }
    return Status::OK();
  };

  for (const double bpk : spec.bits_per_key) {
    if (spec.try_learned) {
      for (const size_t kps : spec.keys_per_segment) {
        rangefilter::LearnedRangeFilterConfig cfg;
        cfg.bits_per_key = bpk;
        cfg.keys_per_segment = kps;
        rangefilter::LearnedRangeFilter f;
        if (!f.Build(sorted, cfg).ok()) continue;
        CandidateReport report;
        report.description = "learned-segmented bpk=" + std::to_string(bpk) +
                             " kps=" + std::to_string(kps);
        report.stage2 = f.num_segments();
        LI_RETURN_IF_ERROR(consider(std::move(f), std::move(report)));
      }
    }
    if (spec.try_interval) {
      rangefilter::IntervalBitmapFilterConfig cfg;
      cfg.bits_per_key = bpk;
      rangefilter::IntervalBitmapFilter f;
      if (!f.Build(sorted, cfg).ok()) continue;
      CandidateReport report;
      report.description = "interval-bitmap bpk=" + std::to_string(bpk);
      report.stage2 = 1;
      LI_RETURN_IF_ERROR(consider(std::move(f), std::move(report)));
    }
  }

  if (!found) {
    return Status::NotFound(
        "SynthesizeRange: no candidate meets the range-FPR target within "
        "the size budget");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Writable synthesis (Appendix D.1): which delta-wrapped base serves a
// mixed insert/lookup workload fastest?
// ---------------------------------------------------------------------------

namespace {

/// Builds a candidate over the base split, drives it through the op
/// stream via the shared harness (one thread: the sequential stream),
/// and fills the report (mixed_ns is the qualification metric;
/// lookup_ns is measured after the stream, delta populated).
template <typename Idx, typename BuildFn>
Status EvaluateWritableCandidate(const ReadWriteWorkload& w, BuildFn&& build,
                                 const std::string& description,
                                 CandidateReport* report) {
  Idx idx;
  LI_RETURN_IF_ERROR(build(std::span<const uint64_t>(w.base), &idx));
  report->description = description;
  report->mixed_ns = RunMixedStreamNs(idx, w, 1);
  report->lookup_ns = MeasureNsPerOp(w.lookups, 1,
                                     [&](uint64_t q) { return idx.Lookup(q); });
  report->size_bytes = idx.SizeBytes();
  return Status::OK();
}

/// Concurrent-candidate counterpart: mixed_ns additionally charges the
/// drain of deferred background work (WaitForRebalances + WaitForMerges
/// inside the timed window, in that order — a split publishes fresh
/// shards whose merges the second call then covers), so a config cannot
/// win by postponing merge or rebalance CPU past the measured stream —
/// single-threaded candidates pay their merges inline inside the same
/// metric. lookup_ns is post-quiesce (delta drained, boundaries
/// settled): the steady-state read latency the background workers are
/// buying, vs the populated-delta lookup_ns of the inline candidates.
template <typename Idx>
void MeasureConcurrentCandidate(Idx& idx, const ReadWriteWorkload& w,
                                size_t threads, CandidateReport* report) {
  Timer timer;
  RunMixedStreamNs(idx, w, threads);
  if constexpr (requires { idx.WaitForRebalances(); }) {
    idx.WaitForRebalances();
  }
  idx.WaitForMerges();
  report->mixed_ns =
      timer.ElapsedNanos() /
      static_cast<double>(std::max<size_t>(w.is_insert.size(), 1));
  report->threads = threads;
  report->lookup_ns = MeasureNsPerOp(
      w.lookups, 1, [&](uint64_t q) { return idx.Lookup(q); });
  report->size_bytes = idx.SizeBytes();
}

}  // namespace

Status SynthesizedWritableIndex::Synthesize(std::span<const uint64_t> keys,
                                            const WritableSynthesisSpec& spec) {
  if (keys.empty()) {
    return Status::InvalidArgument("SynthesizeWritable: empty key set");
  }
  if (spec.insert_ratio < 0.0 || spec.insert_ratio > 1.0) {
    return Status::InvalidArgument("SynthesizeWritable: bad insert ratio");
  }
  reports_.clear();
  const ReadWriteWorkload w = MakeReadWriteWorkload(
      keys, spec.eval_ops, spec.insert_ratio, spec.eval_ops, spec.seed);

  double best_ns = std::numeric_limits<double>::infinity();
  // The winner is re-built over the *full* key set (the measured instance
  // absorbed the held-out insert stream), then erased.
  std::function<Status()> rebuild_winner;

  auto consider = [&](const CandidateReport& report, auto&& rebuild) {
    reports_.push_back(report);
    if (!report.within_budget) return;
    if (report.mixed_ns < best_ns) {
      best_ns = report.mixed_ns;
      description_ = report.description;
      rebuild_winner = rebuild;
    }
  };

  if (spec.try_delta_rmi) {
    using DeltaRmi = dynamic::DeltaRangeIndex<rmi::LinearRmi>;
    for (const size_t m : spec.stage2_sizes) {
      DeltaRmi::Config cfg;
      cfg.base.num_leaf_models = m;
      cfg.base.strategy = spec.strategy;
      cfg.policy = spec.policy;
      auto build = [&cfg](std::span<const uint64_t> ks, DeltaRmi* out) {
        return out->Build(ks, cfg);
      };
      CandidateReport report;
      report.stage2 = m;
      LI_RETURN_IF_ERROR(EvaluateWritableCandidate<DeltaRmi>(
          w, build,
          "delta[rmi linear / " + std::to_string(m) + " leaves]", &report));
      report.within_budget = report.size_bytes <= spec.size_budget_bytes;
      consider(report, [this, cfg, keys]() {
        DeltaRmi full;
        LI_RETURN_IF_ERROR(full.Build(keys, cfg));
        winner_ = index::AnyWritableRangeIndex(std::move(full));
        return Status::OK();
      });
    }
  }
  if (spec.try_delta_btree) {
    using DeltaBtree = dynamic::DeltaRangeIndex<btree::ReadOnlyBTree>;
    for (const size_t page : spec.btree_pages) {
      DeltaBtree::Config cfg;
      cfg.base.keys_per_page = page;
      cfg.policy = spec.policy;
      auto build = [&cfg](std::span<const uint64_t> ks, DeltaBtree* out) {
        return out->Build(ks, cfg);
      };
      CandidateReport report;
      report.stage2 = page;
      LI_RETURN_IF_ERROR(EvaluateWritableCandidate<DeltaBtree>(
          w, build, "delta[btree / " + std::to_string(page) + " keys/page]",
          &report));
      report.within_budget = report.size_bytes <= spec.size_budget_bytes;
      consider(report, [this, cfg, keys]() {
        DeltaBtree full;
        LI_RETURN_IF_ERROR(full.Build(keys, cfg));
        winner_ = index::AnyWritableRangeIndex(std::move(full));
        return Status::OK();
      });
    }
  }

  // ---- concurrent axis: thread-safe front-ends under a multi-threaded
  // stream (aggregate ns/op, same throughput currency) ----
  if (spec.try_concurrent) {
    using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
    for (const size_t m : spec.stage2_sizes) {
      ConcRmi::Config cfg;
      cfg.base.num_leaf_models = m;
      cfg.base.strategy = spec.strategy;
      cfg.policy = spec.policy;
      cfg.log_cap = spec.log_cap;
      ConcRmi idx;
      LI_RETURN_IF_ERROR(idx.Build(std::span<const uint64_t>(w.base), cfg));
      CandidateReport report;
      report.description = "concurrent[rmi linear / " + std::to_string(m) +
                           " leaves] x" +
                           std::to_string(spec.eval_threads) + "T";
      report.stage2 = m;
      MeasureConcurrentCandidate(idx, w, spec.eval_threads, &report);
      report.within_budget = report.size_bytes <= spec.size_budget_bytes;
      consider(report, [this, cfg, keys]() {
        ConcRmi full;
        LI_RETURN_IF_ERROR(full.Build(keys, cfg));
        winner_ = index::AnyWritableRangeIndex(std::move(full));
        return Status::OK();
      });
    }
  }
  if (spec.try_sharded) {
    using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
    using Sharded = concurrent::ShardedIndex<ConcRmi>;
    const size_t m = spec.stage2_sizes.empty() ? 10'000
                                               : spec.stage2_sizes.front();
    // Sharded candidates qualify under the spec's insert skew (uniform
    // stays on the shared stream), so the rebalance axis is measured on
    // exactly the drift it exists to absorb.
    const bool skewed = spec.insert_skew.kind != InsertSkew::Kind::kUniform;
    const ReadWriteWorkload skewed_w =
        skewed ? MakeSkewedReadWriteWorkload(keys, spec.eval_ops,
                                             spec.insert_ratio, spec.eval_ops,
                                             spec.seed, spec.insert_skew)
               : ReadWriteWorkload{};
    const ReadWriteWorkload& sw = skewed ? skewed_w : w;
    const std::vector<double> factors = spec.shard_imbalance_factors.empty()
                                            ? std::vector<double>{0.0}
                                            : spec.shard_imbalance_factors;
    for (const size_t shards : spec.shard_counts) {
      for (const double factor : factors) {
        Sharded::Config cfg;
        // Leaf budget splits across shards: each shard indexes ~1/shards
        // of the keys, so the total model table stays comparable.
        cfg.inner.base.num_leaf_models =
            std::max<size_t>(64, m / std::max<size_t>(shards, 1));
        cfg.inner.base.strategy = spec.strategy;
        cfg.inner.policy = spec.policy;
        cfg.inner.log_cap = spec.log_cap;
        cfg.num_shards = shards;
        cfg.rebalance.enabled = factor > 0.0;
        if (factor > 0.0) cfg.rebalance.max_imbalance = factor;
        Sharded idx;
        LI_RETURN_IF_ERROR(
            idx.Build(std::span<const uint64_t>(sw.base), cfg));
        CandidateReport report;
        report.description =
            "sharded[" + std::to_string(shards) + " x rmi linear / " +
            std::to_string(cfg.inner.base.num_leaf_models) + " leaves" +
            (factor > 0.0
                 ? " / rebal@" + std::to_string(factor).substr(0, 3)
                 : "") +
            "] x" + std::to_string(spec.eval_threads) + "T";
        report.stage2 = m;
        MeasureConcurrentCandidate(idx, sw, spec.eval_threads, &report);
        report.within_budget = report.size_bytes <= spec.size_budget_bytes;
        consider(report, [this, cfg, keys]() {
          Sharded full;
          LI_RETURN_IF_ERROR(full.Build(keys, cfg));
          winner_ = index::AnyWritableRangeIndex(std::move(full));
          return Status::OK();
        });
      }
    }
  }

  if (!rebuild_winner) {
    return Status::NotFound(
        "SynthesizeWritable: no candidate fits the size budget");
  }
  return rebuild_winner();
}

}  // namespace li::lif
