#include "lif/synthesizer.h"

#include <algorithm>

#include "data/datasets.h"
#include "lif/measure.h"

namespace li::lif {

namespace {

template <typename TopModel>
Status EvaluateCandidate(std::span<const uint64_t> keys,
                         const SynthesisSpec& spec, const rmi::RmiConfig& rc,
                         const std::string& description,
                         const std::vector<uint64_t>& queries,
                         rmi::Rmi<TopModel>* out, CandidateReport* report) {
  LI_RETURN_IF_ERROR(out->Build(keys, rc));
  report->description = description;
  report->stage2 = rc.num_leaf_models;
  report->size_bytes = out->SizeBytes();
  report->max_abs_err = out->MaxAbsError();
  report->within_budget = report->size_bytes <= spec.size_budget_bytes;
  report->model_ns = MeasureNsPerOp(
      queries, 1, [&](uint64_t q) { return out->Predict(q).pos; });
  report->lookup_ns =
      MeasureNsPerOp(queries, 1, [&](uint64_t q) { return out->LowerBound(q); });
  return Status::OK();
}

}  // namespace

Status SynthesizedIndex::Synthesize(std::span<const uint64_t> keys,
                                    const SynthesisSpec& spec) {
  if (keys.empty()) {
    return Status::InvalidArgument("Synthesize: empty key set");
  }
  reports_.clear();
  const std::vector<uint64_t> key_vec(keys.begin(), keys.end());
  const std::vector<uint64_t> queries =
      data::SampleKeys(key_vec, spec.eval_queries, spec.seed);

  double best_ns = std::numeric_limits<double>::infinity();
  bool found = false;

  // Candidates are built concretely (Build is config-specific), then
  // type-erased into the uniform contract — the §3.1 "generate different
  // index configurations ... test them automatically" seam.
  auto consider = [&](auto&& idx, const CandidateReport& report) {
    reports_.push_back(report);
    if (!report.within_budget) return;
    if (report.lookup_ns < best_ns) {
      best_ns = report.lookup_ns;
      winner_ = index::AnyRangeIndex(std::move(idx));
      description_ = report.description;
      found = true;
    }
  };

  for (const size_t m : spec.stage2_sizes) {
    rmi::RmiConfig rc;
    rc.num_leaf_models = m;
    rc.strategy = spec.strategy;

    if (spec.try_linear_top) {
      rmi::Rmi<models::LinearModel> idx;
      CandidateReport report;
      LI_RETURN_IF_ERROR(EvaluateCandidate(
          keys, spec, rc, "linear top / " + std::to_string(m) + " leaves",
          queries, &idx, &report));
      consider(std::move(idx), report);
    }
    if (spec.try_multivariate_top) {
      rmi::Rmi<models::MultivariateModel> idx;
      CandidateReport report;
      LI_RETURN_IF_ERROR(EvaluateCandidate(
          keys, spec, rc,
          "multivariate top / " + std::to_string(m) + " leaves", queries,
          &idx, &report));
      consider(std::move(idx), report);
    }
    for (const auto& hidden : spec.nn_hidden) {
      rmi::RmiConfig nn_rc = rc;
      nn_rc.train.nn.hidden = hidden;
      nn_rc.train.nn.epochs = spec.nn_epochs;
      std::string desc = "nn[";
      for (size_t i = 0; i < hidden.size(); ++i) {
        if (i) desc += 'x';
        desc += std::to_string(hidden[i]);
      }
      desc += "] top / " + std::to_string(m) + " leaves";
      rmi::Rmi<models::NeuralNet> idx;
      CandidateReport report;
      LI_RETURN_IF_ERROR(
          EvaluateCandidate(keys, spec, nn_rc, desc, queries, &idx, &report));
      consider(std::move(idx), report);
    }
  }
  if (!found) {
    return Status::NotFound("Synthesize: no candidate fits the size budget");
  }
  return Status::OK();
}

}  // namespace li::lif
