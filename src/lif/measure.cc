#include "lif/measure.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <unordered_set>

#include "common/random.h"
#include "data/datasets.h"

namespace li::lif {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{false, "", std::move(cells)});
}

void Table::AddSection(std::string label) {
  rows_.push_back(Row{true, std::move(label), {}});
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.is_section) continue;
    for (size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  auto rule = [&] {
    size_t total = 1;
    for (const size_t w : widths) total += w + 3;
    for (size_t i = 0; i < total; ++i) putchar('-');
    putchar('\n');
  };
  rule();
  printf("|");
  for (size_t c = 0; c < headers_.size(); ++c) {
    printf(" %-*s |", static_cast<int>(widths[c]), headers_[c].c_str());
  }
  printf("\n");
  rule();
  for (const Row& row : rows_) {
    if (row.is_section) {
      printf("| %s\n", row.section.c_str());
      continue;
    }
    printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.cells.size() ? row.cells[c] : "";
      printf(" %*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    printf("\n");
  }
  rule();
}

std::string Table::WithFactor(double value, double factor, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f (%.2fx)", precision, value, factor);
  return buf;
}

std::string Table::WithPercent(double value, double pct, int precision) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f (%.1f%%)", precision, value, pct);
  return buf;
}

size_t BenchScaleKeys(size_t default_millions) {
  size_t millions = default_millions;
  if (const char* env = std::getenv("REPRO_SCALE_M")) {
    const long v = atol(env);
    if (v > 0) millions = static_cast<size_t>(v);
  }
  return millions * 1'000'000;
}

namespace {

/// Deterministic interleaved op schedule at the target insert ratio.
/// Fine-grained (2^-20) ratio resolution so small ratios still schedule
/// inserts; the budget guard keeps the stream honest when the held-out
/// pool is smaller than ratio * ops. One definition for every workload
/// class (range keys, point records, existence strings).
void FillScheduleVec(std::vector<uint8_t>& is_insert, size_t insert_pool,
                     size_t ops, double ratio, uint64_t seed) {
  Xorshift128Plus rng(seed ^ 0x9E3779B97F4A7C15ULL);
  is_insert.resize(ops);
  size_t budget = insert_pool;
  for (size_t i = 0; i < ops; ++i) {
    const bool ins = budget > 0 &&
                     static_cast<double>(rng.NextBounded(1u << 20)) <
                         ratio * static_cast<double>(1u << 20);
    if (ins) --budget;
    is_insert[i] = ins ? 1 : 0;
  }
}

void FillSchedule(ReadWriteWorkload& w, size_t ops, double ratio,
                  uint64_t seed) {
  FillScheduleVec(w.is_insert, w.inserts.size(), ops, ratio, seed);
}

}  // namespace

ReadWriteWorkload MakeReadWriteWorkload(std::span<const uint64_t> keys,
                                        size_t ops, double insert_ratio,
                                        size_t lookup_probes, uint64_t seed) {
  ReadWriteWorkload w;
  const double ratio = std::clamp(insert_ratio, 0.0, 1.0);
  const size_t want =
      std::min(keys.size() / 2,
               static_cast<size_t>(static_cast<double>(ops) * ratio));
  const size_t stride =
      want == 0 ? 0 : std::max<size_t>(2, keys.size() / want);
  w.base.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (stride != 0 && i % stride == 1 && w.inserts.size() < want) {
      w.inserts.push_back(keys[i]);
    } else {
      w.base.push_back(keys[i]);
    }
  }
  w.lookups =
      data::SampleKeys(w.base, std::max<size_t>(lookup_probes, 1), seed);
  FillSchedule(w, ops, ratio, seed);
  return w;
}

PointReadWriteWorkload MakePointReadWriteWorkload(
    std::span<const hash::Record> records, size_t ops, double insert_ratio,
    size_t lookup_probes, uint64_t seed) {
  PointReadWriteWorkload w;
  const double ratio = std::clamp(insert_ratio, 0.0, 1.0);
  // First-wins dedup, sorted by key so the held-out stride samples the
  // key distribution evenly (the same discipline as the range maker).
  std::vector<hash::Record> uniq(records.begin(), records.end());
  std::stable_sort(uniq.begin(), uniq.end(),
                   [](const hash::Record& a, const hash::Record& b) {
                     return a.key < b.key;
                   });
  uniq.erase(std::unique(uniq.begin(), uniq.end(),
                         [](const hash::Record& a, const hash::Record& b) {
                           return a.key == b.key;
                         }),
             uniq.end());
  const size_t want =
      std::min(uniq.size() / 2,
               static_cast<size_t>(static_cast<double>(ops) * ratio));
  const size_t stride =
      want == 0 ? 0 : std::max<size_t>(2, uniq.size() / want);
  w.base.reserve(uniq.size());
  for (size_t i = 0; i < uniq.size(); ++i) {
    if (stride != 0 && i % stride == 1 && w.inserts.size() < want) {
      w.inserts.push_back(uniq[i]);
    } else {
      w.base.push_back(uniq[i]);
    }
  }
  const size_t probes = std::max<size_t>(lookup_probes, 1);
  w.lookups.reserve(probes);
  Xorshift128Plus rng(seed ^ 0xC2B2AE3D27D4EB4FULL);
  for (size_t i = 0; i < probes && !w.base.empty(); ++i) {
    w.lookups.push_back(w.base[rng.NextBounded(w.base.size())].key);
  }
  if (w.lookups.empty()) w.lookups.push_back(0);
  FillScheduleVec(w.is_insert, w.inserts.size(), ops, ratio, seed);
  return w;
}

ExistenceReadWriteWorkload MakeExistenceReadWriteWorkload(
    std::span<const std::string> keys, std::span<const std::string> non_keys,
    size_t ops, double insert_ratio, size_t lookup_probes, uint64_t seed) {
  ExistenceReadWriteWorkload w;
  const double ratio = std::clamp(insert_ratio, 0.0, 1.0);
  std::vector<std::string> uniq(keys.begin(), keys.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const size_t want =
      std::min(uniq.size() / 2,
               static_cast<size_t>(static_cast<double>(ops) * ratio));
  const size_t stride =
      want == 0 ? 0 : std::max<size_t>(2, uniq.size() / want);
  w.base.reserve(uniq.size());
  for (size_t i = 0; i < uniq.size(); ++i) {
    if (stride != 0 && i % stride == 1 && w.inserts.size() < want) {
      w.inserts.push_back(std::move(uniq[i]));
    } else {
      w.base.push_back(std::move(uniq[i]));
    }
  }
  // Probes alternate members and non-members so the stream exercises the
  // filter's false-positive path, not just guaranteed hits.
  const size_t probes = std::max<size_t>(lookup_probes, 1);
  w.lookups.reserve(probes);
  Xorshift128Plus rng(seed ^ 0x165667B19E3779F9ULL);
  for (size_t i = 0; i < probes; ++i) {
    if ((i % 2 == 0 || non_keys.empty()) && !w.base.empty()) {
      w.lookups.push_back(w.base[rng.NextBounded(w.base.size())]);
    } else if (!non_keys.empty()) {
      w.lookups.push_back(non_keys[rng.NextBounded(non_keys.size())]);
    }
  }
  if (w.lookups.empty()) w.lookups.push_back(std::string("\x01"));
  FillScheduleVec(w.is_insert, w.inserts.size(), ops, ratio, seed);
  return w;
}

ReadWriteWorkload MakeSkewedReadWriteWorkload(std::span<const uint64_t> keys,
                                              size_t ops, double insert_ratio,
                                              size_t lookup_probes,
                                              uint64_t seed,
                                              const InsertSkew& skew) {
  if (skew.kind == InsertSkew::Kind::kUniform) {
    return MakeReadWriteWorkload(keys, ops, insert_ratio, lookup_probes, seed);
  }
  ReadWriteWorkload w;
  const double ratio = std::clamp(insert_ratio, 0.0, 1.0);
  w.base.assign(keys.begin(), keys.end());
  const size_t want =
      static_cast<size_t>(static_cast<double>(ops) * ratio);
  // Fresh keys synthesized into the targeted gaps; a used-set keeps the
  // stream duplicate-free, with sequential keys past the max as the
  // fallback when a drawn gap has no room left.
  std::unordered_set<uint64_t> used;
  used.reserve(want * 2);
  Xorshift128Plus rng(seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  // The CDF table costs O(n) pow() calls — only build it when the zipf
  // path will actually draw from it.
  std::optional<ZipfGenerator> zipf;
  if (skew.kind == InsertSkew::Kind::kZipf) {
    zipf.emplace(keys.size() > 1 ? keys.size() - 1 : 1, skew.zipf_s,
                 seed ^ 0x5bd1e995ULL);
  }
  uint64_t overflow_next = keys.empty() ? 1 : keys.back() + 1;
  const double frac = std::clamp(skew.hotspot_fraction, 1e-4, 1.0);
  const size_t gaps = keys.size() > 1 ? keys.size() - 1 : 0;
  const size_t window = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(gaps) * frac));
  w.inserts.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    uint64_t k = 0;
    bool ok = false;
    for (int attempt = 0; attempt < 8 && gaps > 0 && !ok; ++attempt) {
      size_t gi;
      if (skew.kind == InsertSkew::Kind::kZipf) {
        gi = zipf->Next();  // rank 0 = the lowest gap: head shards heat up
      } else {
        // Hotspot window slides across the gap range with stream
        // position, so the hot shard keeps changing.
        const size_t lo = gaps > window
                              ? static_cast<size_t>(
                                    static_cast<double>(i) /
                                    static_cast<double>(want) *
                                    static_cast<double>(gaps - window))
                              : 0;
        gi = lo + rng.NextBounded(window);
      }
      if (gi + 1 >= keys.size()) continue;
      const uint64_t a = keys[gi], b = keys[gi + 1];
      if (b - a < 2) continue;  // no fresh key fits this gap
      k = a + 1 + rng.NextBounded(b - a - 1);
      ok = used.insert(k).second;
    }
    if (!ok) {
      while (!used.insert(overflow_next).second) ++overflow_next;
      k = overflow_next++;
    }
    w.inserts.push_back(k);
  }
  w.lookups =
      data::SampleKeys(w.base, std::max<size_t>(lookup_probes, 1), seed);
  FillSchedule(w, ops, ratio, seed);
  return w;
}

}  // namespace li::lif
