// The Learning Index Framework (LIF, §3.1): "an index synthesis system;
// given an index specification, LIF generates different index
// configurations, optimizes them, and tests them automatically."
//
// The synthesizer is class-aware — it covers all three index classes of
// the paper behind the three library-wide contracts:
//
//  * SynthesizedIndex          (range, §3)    — grid-searches top-model
//    families (linear, multivariate with auto feature selection, NNs with
//    0-2 hidden layers and widths 4..32, the §3.7.1 space) crossed with
//    second-stage model counts; erases the winner into AnyRangeIndex.
//  * SynthesizedPointIndex     (point, §4)    — grid-searches
//    {random, learned-CDF} hash x slot-count sweep x map family
//    (separate-chaining, in-place chained, bucketized cuckoo); erases the
//    winner into AnyPointIndex.
//  * SynthesizedExistenceIndex (existence, §5) — searches classifier
//    capacity x construction (plain Bloom, classifier + overflow,
//    model-hash sandwich) x bitmap sizes at a fixed target FPR; erases
//    the winner into AnyExistenceIndex.
//  * SynthesizedWritableIndex  (writable, App. D.1) — grid-searches
//    delta-wrapped bases under a mixed insert/lookup stream, and — when
//    the spec opts in — concurrent and range-sharded front-ends
//    (src/concurrent/) qualified under the same stream driven by
//    multiple threads; erases the winner into AnyWritableRangeIndex.
//
// Every grid point is built, measured on a sampled workload with the
// measure.h harness, and reported as a CandidateReport so benches can
// print the full sweep, not just the winner.

#ifndef LI_LIF_SYNTHESIZER_H_
#define LI_LIF_SYNTHESIZER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/merge_policy.h"
#include "lif/measure.h"
#include "snapshot/snapshot.h"
#include "index/any_range_index.h"
#include "index/existence_index.h"
#include "index/point_index.h"
#include "index/range_filter.h"
#include "index/writable_range_index.h"
#include "rmi/rmi.h"

namespace li::lif {

struct SynthesisSpec {
  std::vector<size_t> stage2_sizes = {10'000, 50'000, 100'000, 200'000};
  bool try_linear_top = true;
  bool try_multivariate_top = true;
  std::vector<std::vector<int>> nn_hidden = {{8}, {16}, {16, 16}};
  int nn_epochs = 20;
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  size_t eval_queries = 20'000;  // lookups timed per candidate
  uint64_t seed = 99;
};

/// One evaluated candidate (every grid point is reported so benches can
/// print the full sweep, not just the winner). Shared by all three index
/// classes; fields that don't apply to a class stay at their defaults.
struct CandidateReport {
  std::string description;
  size_t stage2 = 0;          // range: leaf models; point: primary slots
  size_t size_bytes = 0;
  double lookup_ns = 0.0;
  double model_ns = 0.0;      // model/hash/classifier execution only
  int64_t max_abs_err = 0;    // range: |err| bound; point: overflow entries
  double fpr = 0.0;           // existence: measured FPR on the eval set
  double valid_fpr = 0.0;     // existence: FPR on the validation split
                              // (the qualification gate)
  double mixed_ns = 0.0;      // writable: ns/op over the read/write stream
                              // (the qualification metric for that class;
                              // for concurrent candidates this is
                              // *aggregate* wall-time ns/op at `threads`)
  size_t threads = 1;         // writable: threads driving the mixed stream
  bool within_budget = true;
};

/// The synthesized range index: whichever candidate won the grid search,
/// held through the type-erased index::AnyRangeIndex so LIF can enumerate
/// any RangeIndex implementation — not just RMIs — without changing this
/// API.
class SynthesizedIndex {
 public:
  SynthesizedIndex() = default;

  size_t Lookup(uint64_t key) const { return winner_.Lookup(key); }
  size_t LowerBound(uint64_t key) const { return winner_.Lookup(key); }
  index::Approx ApproxPos(uint64_t key) const {
    return winner_.ApproxPos(key);
  }
  void LookupBatch(std::span<const uint64_t> keys,
                   std::span<size_t> out) const {
    winner_.LookupBatch(keys, out);
  }
  size_t SizeBytes() const { return winner_.SizeBytes(); }
  const std::string& description() const { return description_; }
  const std::vector<CandidateReport>& reports() const { return reports_; }

  /// Runs the grid search over `keys` (sorted; caller owns the data).
  Status Synthesize(std::span<const uint64_t> keys, const SynthesisSpec& spec);

  // ---- Persistence (docs/PERSISTENCE.md) ----
  // The expensive part of LIF is the grid search; persisting the winner
  // makes it a build-once artifact. The file carries the winner's
  // snapshot-kind tag ("lif/kind") next to its sections ("w/..."), so
  // OpenSnapshot can dispatch back to the concrete index type without
  // the caller knowing which candidate won. Winners without a flat
  // snapshot format (NN / multivariate tops) return Unimplemented —
  // re-synthesize those on restart.

  Status WriteSnapshot(const std::string& path) const;
  static Result<SynthesizedIndex> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {});

 private:
  index::AnyRangeIndex winner_;
  std::string description_;
  std::vector<CandidateReport> reports_;
};

struct PointSynthesisSpec {
  /// Primary-slot budgets for the separate-chaining family, as percent of
  /// the record count — Figure 11's 75 / 100 / 125 sweep.
  std::vector<int> slot_percents = {75, 100, 125};
  bool try_random_hash = true;
  bool try_learned_hash = true;
  bool try_chained = true;
  bool try_inplace = true;
  bool try_cuckoo = true;
  double cuckoo_load_factor = 0.99;
  size_t cdf_leaf_models = 0;  // 0 = auto (min(100k, n/10), §4.2)
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  size_t eval_queries = 20'000;
  /// Concurrent candidate axis (opt in when the index will serve
  /// multi-threaded point traffic): wrap the chained and cuckoo families
  /// in concurrent::ConcurrentPointIndex and qualify them under the
  /// shared mixed insert/find stream driven by `eval_threads` threads,
  /// finishing with an exact-map oracle check over the quiesced index
  /// (every surviving record findable with its exact payload, absent
  /// keys miss). Their mixed_ns is aggregate wall-time per op.
  /// Concurrent candidates are report-only: value-semantics Find cannot
  /// erase into AnyPointIndex, so they never compete for the
  /// single-threaded winner.
  bool try_concurrent = false;
  size_t eval_threads = 4;
  /// Fraction of concurrent-stream ops that insert held-out records.
  double insert_ratio = 0.10;
  size_t eval_ops = 40'000;
  /// Write-log capacity and overlay rebuild trigger for the concurrent
  /// wrappers (see ConcurrentPointIndex::Config).
  size_t log_cap = 1024;
  size_t rebuild_entries = 4096;
  uint64_t seed = 99;
};

/// The synthesized point index: fastest probe within the size budget,
/// erased into index::AnyPointIndex.
class SynthesizedPointIndex {
 public:
  SynthesizedPointIndex() = default;

  const hash::Record* Find(uint64_t key) const { return winner_.Find(key); }
  void FindBatch(std::span<const uint64_t> keys,
                 std::span<const hash::Record*> out) const {
    winner_.FindBatch(keys, out);
  }
  size_t SizeBytes() const { return winner_.SizeBytes(); }
  index::PointIndexStats Stats() const { return winner_.Stats(); }
  const std::string& description() const { return description_; }
  const std::vector<CandidateReport>& reports() const { return reports_; }

  /// Runs the grid search over `records` (caller owns the data during
  /// Synthesize only).
  Status Synthesize(std::span<const hash::Record> records,
                    const PointSynthesisSpec& spec);

 private:
  index::AnyPointIndex winner_;
  std::string description_;
  std::vector<CandidateReport> reports_;
};

struct ExistenceSynthesisSpec {
  double target_fpr = 0.01;
  /// A candidate qualifies if its measured FPR on the validation split is
  /// at most target_fpr * fpr_slack (measured FPRs wobble with the split).
  double fpr_slack = 2.0;
  /// Classifier capacity sweep: hashed n-gram feature-table sizes.
  std::vector<size_t> ngram_buckets = {1024, 4096, 16384};
  bool try_plain_bloom = true;
  bool try_learned = true;
  bool try_model_hash = true;
  /// Model-hash bitmap sizes, in bits per key.
  std::vector<double> bitmap_bits_per_key = {0.3, 0.6};
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  /// Concurrent candidate axis: wrap the plain and learned
  /// constructions in concurrent::RebuildableExistence and qualify them
  /// under a mixed insert/probe stream driven by `eval_threads`
  /// threads, verifying zero false negatives over corpus + executed
  /// inserts once quiesced (the §5 guarantee extended to online keys).
  /// Report-only next to the static grid: a filter with a background
  /// rebuild worker inside is not interchangeable with the static
  /// winner, however small.
  bool try_concurrent = false;
  size_t eval_threads = 4;
  /// Fraction of concurrent-stream ops that insert held-out keys.
  double insert_ratio = 0.10;
  size_t eval_ops = 40'000;
  /// Side-set write-log capacity for the concurrent wrappers.
  size_t side_log_cap = 1024;
  /// Side-set/corpus ratio that triggers a background filter rebuild.
  double rebuild_staleness = 0.05;
  uint64_t seed = 99;
};

/// Range-query axis of the existence sweep: grid over the two range-filter
/// constructions (src/rangefilter/) at several bitmap budgets, qualified on
/// measured range-FPR over generated guaranteed-empty ranges — the same
/// smallest-qualifying-bytes objective as the point-probe sweep, with
/// MightContain the degenerate [k, k+1) case.
struct RangeFilterSynthesisSpec {
  double target_range_fpr = 0.05;
  /// Qualification gate: validation-split range-FPR must be at most
  /// target_range_fpr * fpr_slack.
  double fpr_slack = 2.0;
  /// Bitmap budget sweep, in block bits per distinct key.
  std::vector<double> bits_per_key = {8.0, 16.0, 32.0};
  /// Segment-granularity sweep for the learned construction.
  std::vector<size_t> keys_per_segment = {128, 256};
  bool try_learned = true;
  bool try_interval = true;
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  /// Empty-query splits generated per candidate set: validation (the
  /// qualification gate) and eval (the unbiased reported FPR), plus the
  /// present-range witness set every candidate must answer true on.
  size_t valid_queries = 8'000;
  size_t eval_queries = 8'000;
  size_t witness_queries = 4'000;
  /// Correlated (adjacent-gap) fraction of the generated empty queries;
  /// the rest are uniform over the domain. See rangefilter/workload.h.
  double correlated_fraction = 0.5;
  uint64_t max_query_width = 1024;
  uint64_t seed = 99;
};

/// The synthesized existence index: the *smallest* qualifying candidate
/// (the paper's §5 metric is memory at a fixed FPR, not latency), erased
/// into index::AnyExistenceIndex. Classifier ownership is folded into the
/// erased winner, so the handle is self-contained.
///
/// The class also carries the range-query axis: SynthesizeRange sweeps
/// the src/rangefilter/ constructions over an integer key set and erases
/// the smallest qualifying filter into an index::AnyRangeFilter, served
/// through MightContainRange. The two sweeps are independent — an LSM
/// table typically wants both a point filter over string keys and a
/// range filter over its integer key column.
class SynthesizedExistenceIndex {
 public:
  SynthesizedExistenceIndex() = default;

  bool MightContain(std::string_view key) const {
    return winner_.MightContain(key);
  }
  size_t SizeBytes() const { return winner_.SizeBytes(); }
  double MeasuredFpr(std::span<const std::string> non_keys) const {
    return winner_.MeasuredFpr(non_keys);
  }
  const std::string& description() const { return description_; }
  const std::vector<CandidateReport>& reports() const { return reports_; }

  /// Trains classifiers on (keys, train_non_keys), calibrates thresholds
  /// and qualifies candidates on valid_non_keys, and reports the winner's
  /// unbiased FPR on eval_non_keys — the §5.2 train / validation / test
  /// protocol. All spans are caller-owned and only read during Synthesize.
  Status Synthesize(std::span<const std::string> keys,
                    std::span<const std::string> train_non_keys,
                    std::span<const std::string> valid_non_keys,
                    std::span<const std::string> eval_non_keys,
                    const ExistenceSynthesisSpec& spec);

  // ---- Range-query axis ----

  /// Half-open [lo, hi) over the synthesized range winner. False until a
  /// successful SynthesizeRange (no winner = empty set).
  bool MightContainRange(uint64_t lo, uint64_t hi) const {
    return range_winner_.MightContainRange(lo, hi);
  }
  double MeasuredRangeFpr(
      std::span<const index::RangeQuery> empty_queries) const {
    return range_winner_.MeasuredRangeFpr(empty_queries);
  }
  size_t RangeSizeBytes() const { return range_winner_.SizeBytes(); }
  const std::string& range_description() const { return range_description_; }
  const std::vector<CandidateReport>& range_reports() const {
    return range_reports_;
  }

  /// Sweeps the range-filter grid over `keys` (any order, duplicates
  /// collapse; caller owns the data during the call only). Queries are
  /// generated internally from the key set's gap structure (validation /
  /// eval empty-range splits plus a present-range witness set); a false
  /// negative on any witness range fails the whole sweep with Internal.
  Status SynthesizeRange(std::span<const uint64_t> keys,
                         const RangeFilterSynthesisSpec& spec);

 private:
  index::AnyExistenceIndex winner_;
  std::string description_;
  std::vector<CandidateReport> reports_;
  index::AnyRangeFilter range_winner_;
  std::string range_description_;
  std::vector<CandidateReport> range_reports_;
};

/// Mixed read/write synthesis (the Appendix-D.1 workload class): which
/// delta-wrapped base serves a given insert ratio fastest?
struct WritableSynthesisSpec {
  /// RMI leaf-model counts for delta-wrapped RMI candidates.
  std::vector<size_t> stage2_sizes = {10'000, 50'000};
  bool try_delta_rmi = true;
  /// Delta-wrapped read-only B-Tree candidates (page sizes in keys).
  bool try_delta_btree = true;
  std::vector<size_t> btree_pages = {128};
  /// Fraction of evaluated ops that are inserts of previously-unseen keys;
  /// the rest are rank lookups.
  double insert_ratio = 0.10;
  size_t eval_ops = 40'000;
  dynamic::MergePolicy policy{};
  /// Concurrent candidate axis (opt in when the index will serve
  /// multi-threaded traffic): wrap delta-RMI bases in the thread-safe
  /// front-ends — concurrent::ConcurrentWritableIndex and
  /// concurrent::ShardedIndex — and qualify them under the same mixed
  /// stream driven by `eval_threads` threads. Their mixed_ns is aggregate
  /// wall-time per op, directly comparable with the single-threaded
  /// candidates' as a throughput score.
  bool try_concurrent = false;
  bool try_sharded = false;
  std::vector<size_t> shard_counts = {4};
  size_t eval_threads = 4;
  /// Write-log capacity for the concurrent candidates' front-ends.
  size_t log_cap = 1024;
  /// Online shard-rebalance axis for sharded candidates: each entry is an
  /// imbalance factor to qualify as its own grid point (0 = rebalancing
  /// off, the fixed-boundary front-end). Meaningful under a skewed
  /// insert stream (below), where adaptive boundaries keep shard mass —
  /// and so merge latency and writer contention — even.
  std::vector<double> shard_imbalance_factors = {0.0};
  /// Insert-stream shape the *sharded* candidates are qualified under
  /// (every other candidate class keeps the uniform stream, so their
  /// scores stay comparable across specs). kUniform leaves the shared
  /// stream in place.
  InsertSkew insert_skew{};
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  uint64_t seed = 99;
};

/// The synthesized writable index: every candidate is built over a split
/// of the keys, driven through a deterministic interleaved insert/lookup
/// stream, and scored on mixed ns/op; the winning configuration is then
/// rebuilt over the *full* key set and erased into AnyWritableRangeIndex.
class SynthesizedWritableIndex {
 public:
  SynthesizedWritableIndex() = default;

  bool Insert(uint64_t key) { return winner_.Insert(key); }
  bool Erase(uint64_t key) { return winner_.Erase(key); }
  bool Contains(uint64_t key) const { return winner_.Contains(key); }
  size_t Lookup(uint64_t key) const { return winner_.Lookup(key); }
  size_t LowerBound(uint64_t key) const { return winner_.Lookup(key); }
  void LookupBatch(std::span<const uint64_t> keys,
                   std::span<size_t> out) const {
    winner_.LookupBatch(keys, out);
  }
  std::vector<uint64_t> Scan(uint64_t from, size_t limit) const {
    return winner_.Scan(from, limit);
  }
  Status Merge() { return winner_.Merge(); }
  size_t size() const { return winner_.size(); }
  size_t SizeBytes() const { return winner_.SizeBytes(); }
  index::WritableIndexStats Stats() const { return winner_.Stats(); }
  const std::string& description() const { return description_; }
  const std::vector<CandidateReport>& reports() const { return reports_; }

  /// Runs the grid search over `keys` (sorted, strictly increasing;
  /// caller owns the data during Synthesize only).
  Status Synthesize(std::span<const uint64_t> keys,
                    const WritableSynthesisSpec& spec);

 private:
  index::AnyWritableRangeIndex winner_;
  std::string description_;
  std::vector<CandidateReport> reports_;
};

}  // namespace li::lif

#endif  // LI_LIF_SYNTHESIZER_H_
