// The Learning Index Framework (LIF, §3.1): "an index synthesis system;
// given an index specification, LIF generates different index
// configurations, optimizes them, and tests them automatically."
//
// The synthesizer grid-searches over top-model families (linear,
// multivariate with auto feature selection, NNs with 0-2 hidden layers and
// widths 4..32 — the §3.7.1 search space) crossed with second-stage model
// counts, builds each candidate, measures real lookup latency on a sampled
// workload, and returns the fastest index that fits the size budget.

#ifndef LI_LIF_SYNTHESIZER_H_
#define LI_LIF_SYNTHESIZER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "rmi/rmi.h"

namespace li::lif {

struct SynthesisSpec {
  std::vector<size_t> stage2_sizes = {10'000, 50'000, 100'000, 200'000};
  bool try_linear_top = true;
  bool try_multivariate_top = true;
  std::vector<std::vector<int>> nn_hidden = {{8}, {16}, {16, 16}};
  int nn_epochs = 20;
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  size_t eval_queries = 20'000;  // lookups timed per candidate
  uint64_t seed = 99;
};

/// One evaluated candidate (every grid point is reported so benches can
/// print the full sweep, not just the winner).
struct CandidateReport {
  std::string description;
  size_t stage2 = 0;
  size_t size_bytes = 0;
  double lookup_ns = 0.0;
  double model_ns = 0.0;
  int64_t max_abs_err = 0;
  bool within_budget = true;
};

/// Type-erased synthesized index: holds whichever Rmi<TopModel> won.
class SynthesizedIndex {
 public:
  using Variant = std::variant<rmi::Rmi<models::LinearModel>,
                               rmi::Rmi<models::MultivariateModel>,
                               rmi::Rmi<models::NeuralNet>>;

  SynthesizedIndex() = default;

  size_t LowerBound(uint64_t key) const {
    return std::visit([key](const auto& idx) { return idx.LowerBound(key); },
                      index_);
  }
  size_t SizeBytes() const {
    return std::visit([](const auto& idx) { return idx.SizeBytes(); }, index_);
  }
  const std::string& description() const { return description_; }
  const std::vector<CandidateReport>& reports() const { return reports_; }

  /// Runs the grid search over `keys` (sorted; caller owns the data).
  Status Synthesize(std::span<const uint64_t> keys, const SynthesisSpec& spec);

 private:
  Variant index_;
  std::string description_;
  std::vector<CandidateReport> reports_;
};

}  // namespace li::lif

#endif  // LI_LIF_SYNTHESIZER_H_
