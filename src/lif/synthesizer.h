// The Learning Index Framework (LIF, §3.1): "an index synthesis system;
// given an index specification, LIF generates different index
// configurations, optimizes them, and tests them automatically."
//
// The synthesizer grid-searches over top-model families (linear,
// multivariate with auto feature selection, NNs with 0-2 hidden layers and
// widths 4..32 — the §3.7.1 search space) crossed with second-stage model
// counts, builds each candidate, measures real lookup latency on a sampled
// workload, and returns the fastest index that fits the size budget.

#ifndef LI_LIF_SYNTHESIZER_H_
#define LI_LIF_SYNTHESIZER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/any_range_index.h"
#include "rmi/rmi.h"

namespace li::lif {

struct SynthesisSpec {
  std::vector<size_t> stage2_sizes = {10'000, 50'000, 100'000, 200'000};
  bool try_linear_top = true;
  bool try_multivariate_top = true;
  std::vector<std::vector<int>> nn_hidden = {{8}, {16}, {16, 16}};
  int nn_epochs = 20;
  search::Strategy strategy = search::Strategy::kBiasedBinary;
  size_t size_budget_bytes = std::numeric_limits<size_t>::max();
  size_t eval_queries = 20'000;  // lookups timed per candidate
  uint64_t seed = 99;
};

/// One evaluated candidate (every grid point is reported so benches can
/// print the full sweep, not just the winner).
struct CandidateReport {
  std::string description;
  size_t stage2 = 0;
  size_t size_bytes = 0;
  double lookup_ns = 0.0;
  double model_ns = 0.0;
  int64_t max_abs_err = 0;
  bool within_budget = true;
};

/// The synthesized index: whichever candidate won the grid search, held
/// through the type-erased index::AnyRangeIndex so LIF can enumerate any
/// RangeIndex implementation — not just RMIs — without changing this API.
class SynthesizedIndex {
 public:
  SynthesizedIndex() = default;

  size_t Lookup(uint64_t key) const { return winner_.Lookup(key); }
  size_t LowerBound(uint64_t key) const { return winner_.Lookup(key); }
  index::Approx ApproxPos(uint64_t key) const {
    return winner_.ApproxPos(key);
  }
  void LookupBatch(std::span<const uint64_t> keys,
                   std::span<size_t> out) const {
    winner_.LookupBatch(keys, out);
  }
  size_t SizeBytes() const { return winner_.SizeBytes(); }
  const std::string& description() const { return description_; }
  const std::vector<CandidateReport>& reports() const { return reports_; }

  /// Runs the grid search over `keys` (sorted; caller owns the data).
  Status Synthesize(std::span<const uint64_t> keys, const SynthesisSpec& spec);

 private:
  index::AnyRangeIndex winner_;
  std::string description_;
  std::vector<CandidateReport> reports_;
};

}  // namespace li::lif

#endif  // LI_LIF_SYNTHESIZER_H_
