// Separate-chaining hash map (Appendix B): "records are stored directly
// within an array and only in the case of a conflict is the record attached
// to the linked-list. That is without a conflict there is at most one cache
// miss." Each slot is the 20-byte record plus a 32-bit chain offset,
// "making it a 24Byte slot".
//
// The map is built once from a record set (the paper's experiments are
// read-only) and satisfies the index::PointIndex contract: the slot count
// and the hash family (random vs learned CDF) are build parameters, so the
// 75% / 100% / 125% sweep of Figure 11 and the Figure-8 hash comparison
// both fall out of one Build signature. Reported size *includes* the
// record storage (the explicit accounting difference Appendix B notes).

#ifndef LI_HASH_CHAINED_HASH_MAP_H_
#define LI_HASH_CHAINED_HASH_MAP_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "hash/hash_fn.h"
#include "hash/record.h"
#include "index/point_index.h"

namespace li::hash {

struct ChainedHashMapConfig {
  /// Primary slot count; 0 sizes the table at one slot per record.
  uint64_t num_slots = 0;
  HashConfig hash;
};

class ChainedHashMap {
 public:
  using config_type = ChainedHashMapConfig;

  ChainedHashMap() = default;

  /// Builds from `records`. Duplicate keys keep the first record.
  Status Build(std::span<const Record> records, const config_type& config) {
    const uint64_t num_slots =
        config.num_slots != 0 ? config.num_slots : records.size();
    if (num_slots == 0) {
      return Status::InvalidArgument("ChainedHashMap: no slots (empty build)");
    }
    LI_RETURN_IF_ERROR(
        BuildRecordHash(records, num_slots, config.hash, &hash_fn_));
    return Populate(records, num_slots);
  }

  /// Fast-path Build for callers that already trained a hash over this
  /// key set (the LIF slot sweep): copies `prebuilt` and re-aims it at
  /// this table's slot count instead of training the CDF model again.
  Status Build(std::span<const Record> records, const config_type& config,
               const PointHash& prebuilt) {
    const uint64_t num_slots =
        config.num_slots != 0 ? config.num_slots : records.size();
    if (num_slots == 0) {
      return Status::InvalidArgument("ChainedHashMap: no slots (empty build)");
    }
    hash_fn_ = prebuilt;
    hash_fn_.Retarget(num_slots);
    return Populate(records, num_slots);
  }

  /// Returns the record for `key`, or nullptr (including on a never-built
  /// or empty map).
  const Record* Find(uint64_t key) const {
    if (slots_.empty()) return nullptr;
    return FindFrom(&slots_[hash_fn_(key)], key);
  }

  /// Software-pipelined batch probe (vectorized home-slot batch +
  /// prefetch, then chain walks) — see hash::PipelinedFindBatchSlots.
  void FindBatch(std::span<const uint64_t> keys,
                 std::span<const Record*> out) const {
    const size_t n = std::min(keys.size(), out.size());
    if (slots_.empty()) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    PipelinedFindBatchSlots(
        keys, out,
        [&](const uint64_t* ks, size_t b, uint64_t* slots) {
          hash_fn_.SlotBatch(ks, b, slots);
        },
        [&](uint64_t slot) { return &slots_[slot]; },
        [&](const Slot* head, uint64_t key) { return FindFrom(head, key); });
  }

  /// Number of primary slots never filled — the "Empty Slots" / wasted
  /// space column of Figure 11.
  size_t EmptySlots() const {
    size_t empty = 0;
    for (const Slot& s : slots_) empty += !(s.meta & kOccupied);
    return empty;
  }

  size_t num_slots() const { return slots_.size(); }
  size_t num_records() const { return num_records_; }
  size_t overflow_size() const { return overflow_.size(); }

  /// Total bytes including record storage plus the hash function itself
  /// (per Appendix B accounting: the learned model is part of the index).
  size_t SizeBytes() const {
    return (slots_.size() + overflow_.size()) * sizeof(Slot) +
           hash_fn_.SizeBytes();
  }
  /// Bytes wasted in never-used primary slots.
  size_t EmptySlotBytes() const { return EmptySlots() * sizeof(Slot); }

  index::PointIndexStats Stats() const {
    index::PointIndexStats stats;
    stats.num_slots = slots_.size();
    stats.empty_slots = EmptySlots();
    stats.overflow = overflow_.size();
    if (num_records_ > 0) {
      // Every overflow entry at chain depth d costs d extra hops; summing
      // per-chain arithmetic series over the chain-length histogram.
      double total = 0.0;
      for (const Slot& s : slots_) {
        if (!(s.meta & kOccupied)) continue;
        size_t len = 1;
        const Slot* cursor = &s;
        while (cursor->next != kNull) {
          ++len;
          cursor = &overflow_[cursor->next - 1];
        }
        total += static_cast<double>(len * (len + 1)) / 2.0;
      }
      stats.mean_probe = total / static_cast<double>(num_records_);
    }
    return stats;
  }

 private:
  static constexpr uint32_t kNull = 0;
  static constexpr uint32_t kOccupied = 0x8000'0000u;  // internal meta bit

  struct Slot {
    Record record;
    uint32_t meta = 0;   // bit 31: occupied; low bits mirror record.meta
    uint32_t next = kNull;  // 1-based index into overflow_
  };

  Status Populate(std::span<const Record> records, uint64_t num_slots) {
    slots_.assign(num_slots, Slot{});
    overflow_.clear();
    num_records_ = 0;
    for (const Record& r : records) {
      Insert(r);
    }
    return Status::OK();
  }

  const Record* FindFrom(const Slot* slot, uint64_t key) const {
    if (!(slot->meta & kOccupied)) return nullptr;
    while (true) {
      if (slot->record.key == key) return &slot->record;
      if (slot->next == kNull) return nullptr;
      slot = &overflow_[slot->next - 1];
    }
  }

  void Insert(const Record& r) {
    Slot& head = slots_[hash_fn_(r.key)];
    if (!(head.meta & kOccupied)) {
      head.record = r;
      head.meta = kOccupied | (r.meta & ~kOccupied);
      head.next = kNull;
      ++num_records_;
      return;
    }
    // Walk the chain; ignore duplicates.
    Slot* cursor = &head;
    while (true) {
      if (cursor->record.key == r.key) return;
      if (cursor->next == kNull) break;
      cursor = &overflow_[cursor->next - 1];
    }
    Slot extra;
    extra.record = r;
    extra.meta = kOccupied | (r.meta & ~kOccupied);
    extra.next = kNull;
    // push_back may reallocate overflow_, so re-resolve the chain tail by
    // index if it lives there.
    const bool tail_in_overflow = cursor != &head;
    const size_t tail_idx =
        tail_in_overflow ? static_cast<size_t>(cursor - overflow_.data()) : 0;
    overflow_.push_back(extra);
    Slot* tail = tail_in_overflow ? &overflow_[tail_idx] : &head;
    tail->next = static_cast<uint32_t>(overflow_.size());
    ++num_records_;
  }

  PointHash hash_fn_;
  std::vector<Slot> slots_;
  std::vector<Slot> overflow_;
  size_t num_records_ = 0;
};

}  // namespace li::hash

#endif  // LI_HASH_CHAINED_HASH_MAP_H_
