// Separate-chaining hash map (Appendix B): "records are stored directly
// within an array and only in the case of a conflict is the record attached
// to the linked-list. That is without a conflict there is at most one cache
// miss." Each slot is the 20-byte record plus a 32-bit chain offset,
// "making it a 24Byte slot".
//
// The map is built once from a record set (the paper's experiments are
// read-only); the slot count is a build parameter so the 75% / 100% / 125%
// sweep of Figure 11 falls out directly. Reported size *includes* the
// record storage (the explicit accounting difference Appendix B notes).

#ifndef LI_HASH_CHAINED_HASH_MAP_H_
#define LI_HASH_CHAINED_HASH_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "hash/record.h"

namespace li::hash {

template <typename HashFn>
class ChainedHashMap {
 public:
  ChainedHashMap() = default;

  /// Builds from `records`; `hash_fn` must map keys into
  /// [0, num_slots). Duplicate keys keep the first record.
  Status Build(std::span<const Record> records, uint64_t num_slots,
               HashFn hash_fn) {
    if (num_slots == 0) {
      return Status::InvalidArgument("ChainedHashMap: num_slots == 0");
    }
    hash_fn_ = std::move(hash_fn);
    slots_.assign(num_slots, Slot{});
    overflow_.clear();
    num_records_ = 0;
    for (const Record& r : records) {
      Insert(r);
    }
    return Status::OK();
  }

  /// Returns the record for `key`, or nullptr.
  const Record* Find(uint64_t key) const {
    const Slot* slot = &slots_[hash_fn_(key)];
    if (!(slot->meta & kOccupied)) return nullptr;
    while (true) {
      if (slot->record.key == key) return &slot->record;
      if (slot->next == kNull) return nullptr;
      slot = &overflow_[slot->next - 1];
    }
  }

  /// Number of primary slots never filled — the "Empty Slots" / wasted
  /// space column of Figure 11.
  size_t EmptySlots() const {
    size_t empty = 0;
    for (const Slot& s : slots_) empty += !(s.meta & kOccupied);
    return empty;
  }

  size_t num_slots() const { return slots_.size(); }
  size_t num_records() const { return num_records_; }
  size_t overflow_size() const { return overflow_.size(); }

  /// Total bytes including record storage (per Appendix B accounting).
  size_t SizeBytes() const {
    return (slots_.size() + overflow_.size()) * sizeof(Slot);
  }
  /// Bytes wasted in never-used primary slots.
  size_t EmptySlotBytes() const { return EmptySlots() * sizeof(Slot); }

 private:
  static constexpr uint32_t kNull = 0;
  static constexpr uint32_t kOccupied = 0x8000'0000u;  // internal meta bit

  struct Slot {
    Record record;
    uint32_t meta = 0;   // bit 31: occupied; low bits mirror record.meta
    uint32_t next = kNull;  // 1-based index into overflow_
  };

  void Insert(const Record& r) {
    Slot& head = slots_[hash_fn_(r.key)];
    if (!(head.meta & kOccupied)) {
      head.record = r;
      head.meta = kOccupied | (r.meta & ~kOccupied);
      head.next = kNull;
      ++num_records_;
      return;
    }
    // Walk the chain; ignore duplicates.
    Slot* cursor = &head;
    while (true) {
      if (cursor->record.key == r.key) return;
      if (cursor->next == kNull) break;
      cursor = &overflow_[cursor->next - 1];
    }
    Slot extra;
    extra.record = r;
    extra.meta = kOccupied | (r.meta & ~kOccupied);
    extra.next = kNull;
    // push_back may reallocate overflow_, so re-resolve the chain tail by
    // index if it lives there.
    const bool tail_in_overflow = cursor != &head;
    const size_t tail_idx =
        tail_in_overflow ? static_cast<size_t>(cursor - overflow_.data()) : 0;
    overflow_.push_back(extra);
    Slot* tail = tail_in_overflow ? &overflow_[tail_idx] : &head;
    tail->next = static_cast<uint32_t>(overflow_.size());
    ++num_records_;
  }

  HashFn hash_fn_{};
  std::vector<Slot> slots_;
  std::vector<Slot> overflow_;
  size_t num_records_ = 0;
};

}  // namespace li::hash

#endif  // LI_HASH_CHAINED_HASH_MAP_H_
