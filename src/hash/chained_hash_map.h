// Separate-chaining hash map (Appendix B): "records are stored directly
// within an array and only in the case of a conflict is the record attached
// to the linked-list. That is without a conflict there is at most one cache
// miss." Each slot is the 20-byte record plus a 32-bit chain offset,
// "making it a 24Byte slot".
//
// The map is built once from a record set (the paper's experiments are
// read-only) and satisfies the index::PointIndex contract: the slot count
// and the hash family (random vs learned CDF) are build parameters, so the
// 75% / 100% / 125% sweep of Figure 11 and the Figure-8 hash comparison
// both fall out of one Build signature. Reported size *includes* the
// record storage (the explicit accounting difference Appendix B notes).

#ifndef LI_HASH_CHAINED_HASH_MAP_H_
#define LI_HASH_CHAINED_HASH_MAP_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "hash/hash_fn.h"
#include "hash/record.h"
#include "index/point_index.h"
#include "index/snapshottable.h"
#include "snapshot/arena.h"
#include "snapshot/snapshot.h"

namespace li::hash {

struct ChainedHashMapConfig {
  /// Primary slot count; 0 sizes the table at one slot per record.
  uint64_t num_slots = 0;
  HashConfig hash;
};

class ChainedHashMap {
 public:
  using config_type = ChainedHashMapConfig;

  ChainedHashMap() = default;

  /// Builds from `records`. Duplicate keys keep the first record.
  Status Build(std::span<const Record> records, const config_type& config) {
    const uint64_t num_slots =
        config.num_slots != 0 ? config.num_slots : records.size();
    if (num_slots == 0) {
      return Status::InvalidArgument("ChainedHashMap: no slots (empty build)");
    }
    LI_RETURN_IF_ERROR(
        BuildRecordHash(records, num_slots, config.hash, &hash_fn_));
    return Populate(records, num_slots);
  }

  /// Fast-path Build for callers that already trained a hash over this
  /// key set (the LIF slot sweep): copies `prebuilt` and re-aims it at
  /// this table's slot count instead of training the CDF model again.
  Status Build(std::span<const Record> records, const config_type& config,
               const PointHash& prebuilt) {
    const uint64_t num_slots =
        config.num_slots != 0 ? config.num_slots : records.size();
    if (num_slots == 0) {
      return Status::InvalidArgument("ChainedHashMap: no slots (empty build)");
    }
    hash_fn_ = prebuilt;
    hash_fn_.Retarget(num_slots);
    return Populate(records, num_slots);
  }

  /// Returns the record for `key`, or nullptr (including on a never-built
  /// or empty map).
  const Record* Find(uint64_t key) const {
    if (slots_.empty()) return nullptr;
    return FindFrom(&slots_[hash_fn_(key)], key);
  }

  /// Software-pipelined batch probe (vectorized home-slot batch +
  /// prefetch, then chain walks) — see hash::PipelinedFindBatchSlots.
  void FindBatch(std::span<const uint64_t> keys,
                 std::span<const Record*> out) const {
    const size_t n = std::min(keys.size(), out.size());
    if (slots_.empty()) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    PipelinedFindBatchSlots(
        keys, out,
        [&](const uint64_t* ks, size_t b, uint64_t* slots) {
          hash_fn_.SlotBatch(ks, b, slots);
        },
        [&](uint64_t slot) { return &slots_[slot]; },
        [&](const Slot* head, uint64_t key) { return FindFrom(head, key); });
  }

  /// Number of primary slots never filled — the "Empty Slots" / wasted
  /// space column of Figure 11.
  size_t EmptySlots() const {
    size_t empty = 0;
    for (const Slot& s : slots_) empty += !(s.meta & kOccupied);
    return empty;
  }

  size_t num_slots() const { return slots_.size(); }
  size_t num_records() const { return num_records_; }
  size_t overflow_size() const { return overflow_.size(); }

  /// Total bytes including record storage plus the hash function itself
  /// (per Appendix B accounting: the learned model is part of the index).
  size_t SizeBytes() const {
    return (slots_.size() + overflow_.size()) * sizeof(Slot) +
           hash_fn_.SizeBytes();
  }
  /// Bytes wasted in never-used primary slots.
  size_t EmptySlotBytes() const { return EmptySlots() * sizeof(Slot); }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // The slot and overflow arrays are flat 24-byte-slot tables already —
  // they persist verbatim and reopen as zero-copy views; the hash
  // function (including a learned CDF model) nests under "<prefix>hash/".

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    SnapshotMeta meta;
    meta.num_slots = slots_.size();
    meta.overflow_size = overflow_.size();
    meta.num_records = num_records_;
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "meta", meta));
    LI_RETURN_IF_ERROR(writer.AddArray(prefix + "slots", slots_.span(),
                                       snapshot::SectionKind::kSlots));
    LI_RETURN_IF_ERROR(writer.AddArray(prefix + "ovf", overflow_.span(),
                                       snapshot::SectionKind::kSlots));
    return hash_fn_.WriteSections(writer, prefix + "hash/");
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    SnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "meta", &meta));
    auto slots = reader.GetArray<Slot>(prefix + "slots");
    if (!slots.ok()) return slots.status();
    auto ovf = reader.GetArray<Slot>(prefix + "ovf");
    if (!ovf.ok()) return ovf.status();
    if (slots.value().size() != meta.num_slots ||
        ovf.value().size() != meta.overflow_size) {
      return Status::InvalidArgument(
          "ChainedHashMap snapshot table sizes disagree with meta");
    }
    LI_RETURN_IF_ERROR(hash_fn_.LoadSections(reader, prefix + "hash/"));
    // The hash must index exactly this table: a mismatched pair would
    // probe out of bounds.
    if (hash_fn_.num_slots() != slots.value().size()) {
      return Status::InvalidArgument(
          "ChainedHashMap snapshot hash range disagrees with slot table");
    }
    // Chain links must stay inside the overflow table (links are 1-based).
    const auto in_range = [&](const Slot& s) {
      return s.next <= ovf.value().size();
    };
    for (const Slot& s : slots.value()) {
      if (!in_range(s)) {
        return Status::InvalidArgument(
            "ChainedHashMap snapshot has an out-of-range chain link");
      }
    }
    for (const Slot& s : ovf.value()) {
      if (!in_range(s)) {
        return Status::InvalidArgument(
            "ChainedHashMap snapshot has an out-of-range chain link");
      }
    }
    slots_ = snapshot::FlatVec<Slot>::View(slots.value(), reader.keepalive());
    overflow_ = snapshot::FlatVec<Slot>::View(ovf.value(), reader.keepalive());
    num_records_ = meta.num_records;
    return Status::OK();
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<ChainedHashMap> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<ChainedHashMap>(path, opts);
  }

  index::PointIndexStats Stats() const {
    index::PointIndexStats stats;
    stats.num_slots = slots_.size();
    stats.empty_slots = EmptySlots();
    stats.overflow = overflow_.size();
    if (num_records_ > 0) {
      // Every overflow entry at chain depth d costs d extra hops; summing
      // per-chain arithmetic series over the chain-length histogram.
      double total = 0.0;
      for (const Slot& s : slots_) {
        if (!(s.meta & kOccupied)) continue;
        size_t len = 1;
        const Slot* cursor = &s;
        while (cursor->next != kNull) {
          ++len;
          cursor = &overflow_[cursor->next - 1];
        }
        total += static_cast<double>(len * (len + 1)) / 2.0;
      }
      stats.mean_probe = total / static_cast<double>(num_records_);
    }
    return stats;
  }

 private:
  static constexpr uint32_t kNull = 0;
  static constexpr uint32_t kOccupied = 0x8000'0000u;  // internal meta bit

  struct Slot {
    Record record;
    uint32_t meta = 0;   // bit 31: occupied; low bits mirror record.meta
    uint32_t next = kNull;  // 1-based index into overflow_
  };
  static_assert(std::is_trivially_copyable_v<Slot>,
                "Slot tables are persisted verbatim in snapshots");

  struct SnapshotMeta {
    uint64_t num_slots = 0;
    uint64_t overflow_size = 0;
    uint64_t num_records = 0;
  };

  /// Builds into local vectors, then adopts them as the flat tables —
  /// the incremental Insert path needs vector growth; the steady state
  /// (Find/FindBatch) only needs the flat layout.
  Status Populate(std::span<const Record> records, uint64_t num_slots) {
    std::vector<Slot> slots(num_slots);
    std::vector<Slot> overflow;
    num_records_ = 0;
    for (const Record& r : records) {
      Insert(slots, overflow, r);
    }
    slots_ = snapshot::FlatVec<Slot>::Adopt(std::move(slots));
    overflow_ = snapshot::FlatVec<Slot>::Adopt(std::move(overflow));
    return Status::OK();
  }

  const Record* FindFrom(const Slot* slot, uint64_t key) const {
    if (!(slot->meta & kOccupied)) return nullptr;
    while (true) {
      if (slot->record.key == key) return &slot->record;
      if (slot->next == kNull) return nullptr;
      slot = &overflow_[slot->next - 1];
    }
  }

  void Insert(std::vector<Slot>& slots, std::vector<Slot>& overflow,
              const Record& r) {
    Slot& head = slots[hash_fn_(r.key)];
    if (!(head.meta & kOccupied)) {
      head.record = r;
      head.meta = kOccupied | (r.meta & ~kOccupied);
      head.next = kNull;
      ++num_records_;
      return;
    }
    // Walk the chain; ignore duplicates.
    Slot* cursor = &head;
    while (true) {
      if (cursor->record.key == r.key) return;
      if (cursor->next == kNull) break;
      cursor = &overflow[cursor->next - 1];
    }
    Slot extra;
    extra.record = r;
    extra.meta = kOccupied | (r.meta & ~kOccupied);
    extra.next = kNull;
    // push_back may reallocate overflow, so re-resolve the chain tail by
    // index if it lives there.
    const bool tail_in_overflow = cursor != &head;
    const size_t tail_idx =
        tail_in_overflow ? static_cast<size_t>(cursor - overflow.data()) : 0;
    overflow.push_back(extra);
    Slot* tail = tail_in_overflow ? &overflow[tail_idx] : &head;
    tail->next = static_cast<uint32_t>(overflow.size());
    ++num_records_;
  }

  PointHash hash_fn_;
  /// Adopted from the build vectors, or zero-copy mapped views when
  /// opened from a snapshot; the probe path is identical either way.
  snapshot::FlatVec<Slot> slots_;
  snapshot::FlatVec<Slot> overflow_;
  size_t num_records_ = 0;
};

}  // namespace li::hash

#endif  // LI_HASH_CHAINED_HASH_MAP_H_
