// In-place chained hash map with learned hash functions (Appendix C):
// "a chained Hash-map which uses a two pass algorithm: in the first pass,
// the learned hash function is used to put items into slots. If a slot is
// already taken, the item is skipped. Afterwards we use a separate chaining
// approach for every skipped item except that we use the remaining free
// slots with offsets as pointers for them. As a result the utilization can
// be 100% ... the quality of the learned hash function can only make an
// impact on the performance not the size: the fewer conflicts, the fewer
// cache misses."
//
// Exactly n slots for n records; slot = record + chain offset + home flag.

#ifndef LI_HASH_INPLACE_CHAINED_MAP_H_
#define LI_HASH_INPLACE_CHAINED_MAP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "hash/record.h"

namespace li::hash {

template <typename HashFn>
class InplaceChainedMap {
 public:
  InplaceChainedMap() = default;

  /// `hash_fn` must map into [0, records.size()). Keys must be unique.
  Status Build(std::span<const Record> records, HashFn hash_fn) {
    hash_fn_ = std::move(hash_fn);
    const size_t n = records.size();
    slots_.assign(n, Slot{});
    if (n == 0) return Status::OK();

    // Pass 1: place records whose home slot is free.
    std::vector<uint32_t> skipped;
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t slot = hash_fn_(records[i].key);
      Slot& s = slots_[slot];
      if (s.flags & kOccupied) {
        skipped.push_back(i);
      } else {
        s.record = records[i];
        s.flags = kOccupied | kHome;
        s.next = kNull;
      }
    }
    // Pass 2: stream skipped records into the remaining free slots and
    // link them from their home slot's chain.
    size_t free_cursor = 0;
    for (const uint32_t i : skipped) {
      while (free_cursor < n && (slots_[free_cursor].flags & kOccupied)) {
        ++free_cursor;
      }
      if (free_cursor >= n) {
        return Status::Internal("InplaceChainedMap: no free slot (dup keys?)");
      }
      Slot& dst = slots_[free_cursor];
      dst.record = records[i];
      dst.flags = kOccupied;  // not home
      dst.next = kNull;
      // Append to the home chain.
      uint32_t cursor = static_cast<uint32_t>(hash_fn_(records[i].key));
      while (slots_[cursor].next != kNull) cursor = slots_[cursor].next - 1;
      slots_[cursor].next = static_cast<uint32_t>(free_cursor) + 1;
    }
    return Status::OK();
  }

  const Record* Find(uint64_t key) const {
    uint32_t cursor = static_cast<uint32_t>(hash_fn_(key));
    const Slot* s = &slots_[cursor];
    // A non-home occupant means no record hashes here — absent key.
    if (!(s->flags & kHome)) return nullptr;
    while (true) {
      if (s->record.key == key) return &s->record;
      if (s->next == kNull) return nullptr;
      s = &slots_[s->next - 1];
    }
  }

  size_t num_slots() const { return slots_.size(); }
  double utilization() const { return slots_.empty() ? 0.0 : 1.0; }
  size_t SizeBytes() const { return slots_.size() * sizeof(Slot); }

  /// Average probe-chain length over all stored records (cache-miss proxy).
  double MeanChainLength() const {
    if (slots_.empty()) return 0.0;
    double total = 0.0;
    size_t count = 0;
    for (const Slot& s : slots_) {
      if (!(s.flags & kHome)) continue;
      size_t len = 1;
      const Slot* cursor = &s;
      while (cursor->next != kNull) {
        ++len;
        cursor = &slots_[cursor->next - 1];
      }
      total += len;
      ++count;
    }
    return count ? total / static_cast<double>(count) : 0.0;
  }

 private:
  static constexpr uint32_t kNull = 0;
  static constexpr uint8_t kOccupied = 1;
  static constexpr uint8_t kHome = 2;

  struct Slot {
    Record record;
    uint32_t next = kNull;  // 1-based slot index
    uint8_t flags = 0;
  };

  HashFn hash_fn_{};
  std::vector<Slot> slots_;
};

}  // namespace li::hash

#endif  // LI_HASH_INPLACE_CHAINED_MAP_H_
