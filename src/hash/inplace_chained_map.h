// In-place chained hash map with learned hash functions (Appendix C):
// "a chained Hash-map which uses a two pass algorithm: in the first pass,
// the learned hash function is used to put items into slots. If a slot is
// already taken, the item is skipped. Afterwards we use a separate chaining
// approach for every skipped item except that we use the remaining free
// slots with offsets as pointers for them. As a result the utilization can
// be 100% ... the quality of the learned hash function can only make an
// impact on the performance not the size: the fewer conflicts, the fewer
// cache misses."
//
// Exactly n slots for n records; slot = record + chain offset + home flag.
// Satisfies the index::PointIndex contract: the hash family is build
// configuration, duplicate keys keep the first record (later duplicates
// are dropped, leaving their slot free).

#ifndef LI_HASH_INPLACE_CHAINED_MAP_H_
#define LI_HASH_INPLACE_CHAINED_MAP_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/status.h"
#include "hash/hash_fn.h"
#include "hash/record.h"
#include "index/point_index.h"

namespace li::hash {

struct InplaceChainedMapConfig {
  HashConfig hash;
};

class InplaceChainedMap {
 public:
  using config_type = InplaceChainedMapConfig;

  InplaceChainedMap() = default;

  Status Build(std::span<const Record> records, const config_type& config) {
    LI_RETURN_IF_ERROR(
        BuildRecordHash(records, records.size(), config.hash, &hash_fn_));
    return Populate(records);
  }

  /// Fast-path Build from an already-trained hash (see
  /// ChainedHashMap::Build): copied and re-aimed at this table's n slots.
  Status Build(std::span<const Record> records, const config_type& config,
               const PointHash& prebuilt) {
    (void)config;  // the hash half is superseded by `prebuilt`
    hash_fn_ = prebuilt;
    hash_fn_.Retarget(records.size());
    return Populate(records);
  }

  /// Returns the record for `key`, or nullptr (including on a never-built
  /// or empty map).
  const Record* Find(uint64_t key) const {
    if (slots_.empty()) return nullptr;
    return FindFrom(&slots_[hash_fn_(key)], key);
  }

  /// Software-pipelined batch probe (vectorized home-slot batch +
  /// prefetch, then chain walks) — see hash::PipelinedFindBatchSlots.
  void FindBatch(std::span<const uint64_t> keys,
                 std::span<const Record*> out) const {
    const size_t n = std::min(keys.size(), out.size());
    if (slots_.empty()) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    PipelinedFindBatchSlots(
        keys, out,
        [&](const uint64_t* ks, size_t b, uint64_t* slots) {
          hash_fn_.SlotBatch(ks, b, slots);
        },
        [&](uint64_t slot) { return &slots_[slot]; },
        [&](const Slot* head, uint64_t key) { return FindFrom(head, key); });
  }

  size_t num_slots() const { return slots_.size(); }
  size_t num_records() const { return num_records_; }
  double utilization() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(num_records_) /
                                static_cast<double>(slots_.size());
  }
  size_t SizeBytes() const {
    return slots_.size() * sizeof(Slot) + hash_fn_.SizeBytes();
  }

  /// Average probe depth (hops from the home slot, home = 1) over all
  /// stored records — the cache-miss proxy of Appendix C.
  double MeanChainLength() const { return Stats().mean_probe; }

  index::PointIndexStats Stats() const {
    index::PointIndexStats stats;
    stats.num_slots = slots_.size();
    double total = 0.0;
    for (const Slot& s : slots_) {
      if (!(s.flags & kOccupied)) {
        ++stats.empty_slots;
        continue;
      }
      if (!(s.flags & kHome)) {
        ++stats.overflow;
        continue;
      }
      size_t len = 1;
      const Slot* cursor = &s;
      while (cursor->next != kNull) {
        ++len;
        cursor = &slots_[cursor->next - 1];
      }
      total += static_cast<double>(len * (len + 1)) / 2.0;
    }
    if (num_records_ > 0) {
      stats.mean_probe = total / static_cast<double>(num_records_);
    }
    return stats;
  }

 private:
  static constexpr uint32_t kNull = 0;
  static constexpr uint8_t kOccupied = 1;
  static constexpr uint8_t kHome = 2;

  struct Slot {
    Record record;
    uint32_t next = kNull;  // 1-based slot index
    uint8_t flags = 0;
  };

  Status Populate(std::span<const Record> records) {
    const size_t n = records.size();
    slots_.assign(n, Slot{});
    num_records_ = 0;
    if (n == 0) return Status::OK();

    // Pass 1: place records whose home slot is free.
    std::vector<uint32_t> skipped;
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t slot = hash_fn_(records[i].key);
      Slot& s = slots_[slot];
      if (s.flags & kOccupied) {
        skipped.push_back(i);
      } else {
        s.record = records[i];
        s.flags = kOccupied | kHome;
        s.next = kNull;
        ++num_records_;
      }
    }
    // Pass 2: stream skipped records into the remaining free slots and
    // link them from their home slot's chain. A skipped record whose key
    // is already in the chain is a duplicate — dropped, first one wins.
    size_t free_cursor = 0;
    for (const uint32_t i : skipped) {
      uint32_t cursor = static_cast<uint32_t>(hash_fn_(records[i].key));
      bool duplicate = false;
      while (true) {
        if (slots_[cursor].record.key == records[i].key) {
          duplicate = true;
          break;
        }
        if (slots_[cursor].next == kNull) break;
        cursor = slots_[cursor].next - 1;
      }
      if (duplicate) continue;
      while (free_cursor < n && (slots_[free_cursor].flags & kOccupied)) {
        ++free_cursor;
      }
      if (free_cursor >= n) {
        return Status::Internal("InplaceChainedMap: no free slot");
      }
      Slot& dst = slots_[free_cursor];
      dst.record = records[i];
      dst.flags = kOccupied;  // not home
      dst.next = kNull;
      slots_[cursor].next = static_cast<uint32_t>(free_cursor) + 1;
      ++num_records_;
    }
    return Status::OK();
  }

  const Record* FindFrom(const Slot* s, uint64_t key) const {
    // A non-home occupant means no record hashes here — absent key.
    if (!(s->flags & kHome)) return nullptr;
    while (true) {
      if (s->record.key == key) return &s->record;
      if (s->next == kNull) return nullptr;
      s = &slots_[s->next - 1];
    }
  }

  PointHash hash_fn_;
  std::vector<Slot> slots_;
  size_t num_records_ = 0;
};

}  // namespace li::hash

#endif  // LI_HASH_INPLACE_CHAINED_MAP_H_
