// Hash functions for the point-index experiments (§4).
//
//  * RandomHash  — the "MurmurHash3-like" baseline: a finalizer-strength
//    mix mapped to [0, M) with a multiply-shift (no modulo on the hot
//    path).
//  * LearnedHash — the Hash-Model Index (§4.1): h(K) = F(K) * M, where F
//    is a 2-stage RMI over the key CDF ("100k models on the 2nd stage and
//    without any hidden layers", §4.2). If the model learned the empirical
//    CDF perfectly, no conflicts would exist.

#ifndef LI_HASH_HASH_FN_H_
#define LI_HASH_HASH_FN_H_

#include <cstdint>
#include <span>

#include "common/random.h"
#include "rmi/rmi.h"

namespace li::hash {

/// Uniformly randomizing baseline hash into [0, num_slots).
class RandomHash {
 public:
  RandomHash() = default;
  explicit RandomHash(uint64_t num_slots, uint64_t seed = 0)
      : num_slots_(num_slots), seed_(seed) {}

  uint64_t operator()(uint64_t key) const {
    const uint64_t h = Murmur3Fmix64(key ^ seed_);
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(h) * num_slots_) >> 64);
  }

  uint64_t num_slots() const { return num_slots_; }
  size_t SizeBytes() const { return 2 * sizeof(uint64_t); }

 private:
  uint64_t num_slots_ = 1;
  uint64_t seed_ = 0;
};

/// CDF-model hash: scales the RMI position estimate to the table size.
template <typename TopModel = models::LinearModel>
class LearnedHash {
 public:
  LearnedHash() = default;

  /// Trains the CDF model over `keys` (sorted); hashes into
  /// [0, num_slots). The caller owns `keys` during Build only — the hash
  /// function itself does not touch the data afterwards.
  Status Build(std::span<const uint64_t> keys, uint64_t num_slots,
               const rmi::RmiConfig& config) {
    num_slots_ = num_slots;
    num_keys_ = keys.size();
    return rmi_.Build(keys, config);
  }

  uint64_t operator()(uint64_t key) const {
    const size_t pos = rmi_.Predict(key).pos;
    // pos is in [0, N); rescale to [0, M).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(pos) * num_slots_) / num_keys_);
  }

  uint64_t num_slots() const { return num_slots_; }
  size_t SizeBytes() const { return rmi_.SizeBytes(); }

 private:
  uint64_t num_slots_ = 1;
  uint64_t num_keys_ = 1;
  rmi::Rmi<TopModel> rmi_;
};

/// Fraction of keys that land in an already-occupied slot — the Figure-8
/// metric ("% Conflicts"). Uses a bitmap over `num_slots`.
template <typename HashFn>
double ConflictRate(std::span<const uint64_t> keys, const HashFn& fn,
                    uint64_t num_slots) {
  std::vector<uint64_t> bitmap((num_slots + 63) / 64, 0);
  size_t conflicts = 0;
  for (const uint64_t key : keys) {
    const uint64_t slot = fn(key);
    uint64_t& word = bitmap[slot >> 6];
    const uint64_t bit = uint64_t{1} << (slot & 63);
    if (word & bit) {
      ++conflicts;
    } else {
      word |= bit;
    }
  }
  return keys.empty()
             ? 0.0
             : static_cast<double>(conflicts) / static_cast<double>(keys.size());
}

}  // namespace li::hash

#endif  // LI_HASH_HASH_FN_H_
