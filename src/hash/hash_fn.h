// Hash functions for the point-index experiments (§4).
//
//  * RandomHash  — the "MurmurHash3-like" baseline: a finalizer-strength
//    mix mapped to [0, M) with a multiply-shift (no modulo on the hot
//    path).
//  * LearnedHash — the Hash-Model Index (§4.1): h(K) = F(K) * M, where F
//    is a 2-stage RMI over the key CDF ("100k models on the 2nd stage and
//    without any hidden layers", §4.2). If the model learned the empirical
//    CDF perfectly, no conflicts would exist.
//  * PointHash  — the config-selected union of the two, so the map
//    families take the random-vs-learned choice as build configuration
//    (the PointIndex contract) instead of a template parameter smuggled in
//    by every caller.

#ifndef LI_HASH_HASH_FN_H_
#define LI_HASH_HASH_FN_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "hash/record.h"
#include "rmi/rmi.h"
#include "simd/dispatch.h"
#include "snapshot/snapshot.h"

namespace li::hash {

/// Uniformly randomizing baseline hash into [0, num_slots).
class RandomHash {
 public:
  RandomHash() = default;
  explicit RandomHash(uint64_t num_slots, uint64_t seed = 0)
      : num_slots_(num_slots), seed_(seed) {}

  uint64_t operator()(uint64_t key) const {
    return simd::ScalarHashSlot(key, seed_, num_slots_);
  }

  /// Batch slot computation through the SIMD kernel table (the scalar
  /// table at scalar level — spec-identical to operator(), so batch and
  /// single-key probes agree on every home slot).
  void SlotBatch(const uint64_t* keys, size_t n, uint64_t* slots) const {
    simd::GetKernels().hash_slots(keys, n, seed_, num_slots_, slots);
  }

  /// Re-aims the hash at a new table size (the multiply-shift needs no
  /// other state).
  void Retarget(uint64_t num_slots) { num_slots_ = num_slots; }

  uint64_t num_slots() const { return num_slots_; }
  uint64_t seed() const { return seed_; }
  size_t SizeBytes() const { return 2 * sizeof(uint64_t); }

 private:
  uint64_t num_slots_ = 1;
  uint64_t seed_ = 0;
};

/// CDF-model hash: scales the RMI position estimate to the table size.
template <typename TopModel = models::LinearModel>
class LearnedHash {
 public:
  LearnedHash() = default;

  /// Trains the CDF model over `keys` (sorted); hashes into
  /// [0, num_slots). The caller owns `keys` during Build only — the hash
  /// function itself does not touch the data afterwards.
  Status Build(std::span<const uint64_t> keys, uint64_t num_slots,
               const rmi::RmiConfig& config) {
    num_keys_ = std::max<uint64_t>(1, keys.size());
    Retarget(num_slots);
    return rmi_.Build(keys, config);
  }

  /// Re-aims the hash at a new table size without retraining: the CDF
  /// model depends only on the keys; num_slots enters through the rescale
  /// factor alone. Used by the LIF slot sweep to train once per key set.
  void Retarget(uint64_t num_slots) {
    num_slots_ = num_slots;
    // Fixed-point rescale factor: floor(M * 2^64 / N). The hot path then
    // maps pos in [0, N) to [0, M) with a multiply + shift instead of the
    // 128-bit division a naive (pos * M) / N would cost per lookup:
    //   (pos * scale) >> 64 <= floor(pos * M / N) < M.
    // The true product is < M * 2^64 < 2^128, so the mod-2^128 multiply
    // is exact.
    scale_ = (static_cast<unsigned __int128>(num_slots_) << 64) / num_keys_;
  }

  uint64_t operator()(uint64_t key) const {
    const size_t pos = rmi_.Predict(key).pos;  // pos in [0, N)
    return static_cast<uint64_t>((scale_ * pos) >> 64);
  }

  /// Batch slot computation: vectorized CDF-model execution
  /// (Rmi::PredictPosBatch), then the exact fixed-point rescale per slot.
  /// The rescale stays scalar — it is a 128-bit multiply the kernels do
  /// not model — and the predict path is spec-identical at every dispatch
  /// level, so SlotBatch(k) == operator()(k) always.
  void SlotBatch(const uint64_t* keys, size_t n, uint64_t* slots) const {
    rmi_.PredictPosBatch({keys, n}, {slots, n});
    for (size_t i = 0; i < n; ++i) {
      slots[i] = static_cast<uint64_t>((scale_ * slots[i]) >> 64);
    }
  }

  /// The pre-optimization reference path (per-lookup 128-bit division);
  /// kept so the microbenchmark can show the rescale delta and the tests
  /// can bound the divergence (at most 1 slot, always in range).
  uint64_t SlotViaDivision(uint64_t key) const {
    const size_t pos = rmi_.Predict(key).pos;
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(pos) * num_slots_) / num_keys_);
  }

  uint64_t num_slots() const { return num_slots_; }
  size_t SizeBytes() const { return rmi_.SizeBytes(); }

  // ---- Persistence (docs/PERSISTENCE.md) ----
  // The CDF model snapshots in *model-only* form (no key section): the
  // RMI's key span already dangles by design after Build (see the Build
  // comment), so the reopened model reconstructs only the span's size.
  // scale_ is recomputed from the persisted (num_slots, num_keys) via
  // Retarget — a derived value stays derived.

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    const SnapshotMeta meta{num_slots_, num_keys_};
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "meta", meta));
    return rmi_.WriteSections(writer, prefix + "rmi/",
                              /*include_keys=*/false);
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    SnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "meta", &meta));
    if (meta.num_keys == 0 || meta.num_slots == 0) {
      return Status::InvalidArgument("LearnedHash snapshot meta is corrupt");
    }
    LI_RETURN_IF_ERROR(rmi_.LoadSections(reader, prefix + "rmi/"));
    // The slot mapping is only in [0, num_slots) when the model's
    // position estimates stay below num_keys; a mismatched pair would
    // turn lookups into out-of-bounds slot indexes.
    if (rmi_.data().size() != meta.num_keys) {
      return Status::InvalidArgument(
          "LearnedHash snapshot key count disagrees with its CDF model");
    }
    num_keys_ = meta.num_keys;
    Retarget(meta.num_slots);
    return Status::OK();
  }

 private:
  struct SnapshotMeta {
    uint64_t num_slots = 1;
    uint64_t num_keys = 1;
  };

  uint64_t num_slots_ = 1;
  uint64_t num_keys_ = 1;
  unsigned __int128 scale_ = 0;
  rmi::Rmi<TopModel> rmi_;
};

/// Which hash-function family a point index builds with (§4.1 vs the
/// MurmurHash3-like baseline).
enum class HashKind {
  kRandom,
  kLearnedCdf,
};

/// The hash half of every point-index build config.
struct HashConfig {
  HashKind kind = HashKind::kRandom;
  uint64_t seed = 0;
  /// Second-stage model count for the learned CDF (§4.2's 100k). 0 picks
  /// min(100'000, max(1, n/10)) from the key count, the benches' default.
  size_t cdf_leaf_models = 0;
};

/// Config-selected hash function: random or learned CDF behind one call.
/// The kind branch is perfectly predicted; the learned path dominates it
/// by orders of magnitude (model execution), the random path by the mix.
class PointHash {
 public:
  PointHash() = default;

  /// `sorted_keys` is only read when kind == kLearnedCdf (CDF training)
  /// and only during Build; it must be sorted ascending.
  Status Build(std::span<const uint64_t> sorted_keys, uint64_t num_slots,
               const HashConfig& config) {
    kind_ = config.kind;
    if (kind_ == HashKind::kRandom) {
      random_ = RandomHash(num_slots, config.seed);
      return Status::OK();
    }
    rmi::RmiConfig rc;
    rc.num_leaf_models =
        config.cdf_leaf_models != 0
            ? config.cdf_leaf_models
            : std::min<size_t>(100'000,
                               std::max<size_t>(1, sorted_keys.size() / 10));
    return learned_.Build(sorted_keys, num_slots, rc);
  }

  uint64_t operator()(uint64_t key) const {
    return kind_ == HashKind::kLearnedCdf ? learned_(key) : random_(key);
  }

  /// Batch slot computation — one kind branch per batch instead of per
  /// key; see the per-family SlotBatch docs.
  void SlotBatch(const uint64_t* keys, size_t n, uint64_t* slots) const {
    if (kind_ == HashKind::kLearnedCdf) {
      learned_.SlotBatch(keys, n, slots);
    } else {
      random_.SlotBatch(keys, n, slots);
    }
  }

  /// Re-aims a built hash at a new table size without retraining the CDF
  /// model — a copy + Retarget replaces a full Build when only the slot
  /// count differs (the LIF slot sweep).
  void Retarget(uint64_t num_slots) {
    if (kind_ == HashKind::kLearnedCdf) {
      learned_.Retarget(num_slots);
    } else {
      random_.Retarget(num_slots);
    }
  }

  HashKind kind() const { return kind_; }
  uint64_t num_slots() const {
    return kind_ == HashKind::kLearnedCdf ? learned_.num_slots()
                                          : random_.num_slots();
  }
  size_t SizeBytes() const {
    return kind_ == HashKind::kLearnedCdf ? learned_.SizeBytes()
                                          : random_.SizeBytes();
  }

  // ---- Persistence (docs/PERSISTENCE.md) ----
  // One meta section covers the random family entirely (two scalars);
  // the learned family nests its CDF model under "<prefix>cdf/".

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    SnapshotMeta meta;
    meta.kind = static_cast<uint32_t>(kind_);
    meta.num_slots = num_slots();
    meta.seed = kind_ == HashKind::kRandom ? random_.seed() : 0;
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "meta", meta));
    if (kind_ == HashKind::kLearnedCdf) {
      LI_RETURN_IF_ERROR(learned_.WriteSections(writer, prefix + "cdf/"));
    }
    return Status::OK();
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    SnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "meta", &meta));
    if (meta.kind > static_cast<uint32_t>(HashKind::kLearnedCdf) ||
        meta.num_slots == 0) {
      return Status::InvalidArgument("PointHash snapshot meta is corrupt");
    }
    kind_ = static_cast<HashKind>(meta.kind);
    if (kind_ == HashKind::kLearnedCdf) {
      LI_RETURN_IF_ERROR(learned_.LoadSections(reader, prefix + "cdf/"));
      if (learned_.num_slots() != meta.num_slots) {
        return Status::InvalidArgument(
            "PointHash snapshot slot count disagrees with its CDF hash");
      }
    } else {
      random_ = RandomHash(meta.num_slots, meta.seed);
    }
    return Status::OK();
  }

 private:
  struct SnapshotMeta {
    uint32_t kind = 0;
    uint32_t reserved = 0;
    uint64_t num_slots = 1;
    uint64_t seed = 0;
  };

  HashKind kind_ = HashKind::kRandom;
  RandomHash random_;
  LearnedHash<models::LinearModel> learned_;
};

/// Builds the configured hash for a record set, hashing into
/// [0, num_slots) — the shared first step of every map family's Build.
/// The learned CDF trains on a sorted copy of the record keys; the keys
/// are only read during Build (the RMI never dereferences them afterwards).
inline Status BuildRecordHash(std::span<const Record> records,
                              uint64_t num_slots, const HashConfig& config,
                              PointHash* fn) {
  if (config.kind == HashKind::kRandom) {
    return fn->Build({}, num_slots, config);
  }
  std::vector<uint64_t> keys;
  keys.reserve(records.size());
  for (const Record& r : records) keys.push_back(r.key);
  std::sort(keys.begin(), keys.end());
  return fn->Build(keys, num_slots, config);
}

/// The shared software pipeline behind every single-home-slot map's
/// FindBatch: per 16-key block, phase 1 resolves each key's head slot via
/// `head_of(key)` and prefetches it, phase 2 answers via
/// `probe(head, key)` — so the per-probe cache miss of neighboring keys
/// overlaps instead of serializing (the same structure as the RMI
/// LookupBatch). Mismatched span lengths clamp to the shorter one.
template <typename HeadFn, typename ProbeFn>
void PipelinedFindBatch(std::span<const uint64_t> keys,
                        std::span<const Record*> out, HeadFn&& head_of,
                        ProbeFn&& probe) {
  using HeadPtr = std::invoke_result_t<HeadFn&, uint64_t>;
  const size_t n = std::min(keys.size(), out.size());
  constexpr size_t kBlock = 16;
  HeadPtr heads[kBlock];
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t b = std::min(kBlock, n - base);
    for (size_t k = 0; k < b; ++k) {
      heads[k] = head_of(keys[base + k]);
      PrefetchRead(heads[k]);
    }
    for (size_t k = 0; k < b; ++k) {
      out[base + k] = probe(heads[k], keys[base + k]);
    }
  }
}

/// Batch-slot variant of PipelinedFindBatch: phase 0 computes the whole
/// block's home slots with one `slots_of(keys, b, slots)` call (the
/// vectorized SlotBatch of the map's hash function), phase 1 resolves
/// slot -> head pointer and prefetches, phase 2 probes. The wider 64-key
/// block matches the SIMD kernel block so a LearnedHash's model execution
/// vectorizes fully; prefetch distance stays bounded by the block.
template <typename SlotsFn, typename HeadAtFn, typename ProbeFn>
void PipelinedFindBatchSlots(std::span<const uint64_t> keys,
                             std::span<const Record*> out, SlotsFn&& slots_of,
                             HeadAtFn&& head_at, ProbeFn&& probe) {
  using HeadPtr = std::invoke_result_t<HeadAtFn&, uint64_t>;
  const size_t n = std::min(keys.size(), out.size());
  constexpr size_t kBlock = 64;
  uint64_t slots[kBlock];
  HeadPtr heads[kBlock];
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t b = std::min(kBlock, n - base);
    slots_of(keys.data() + base, b, slots);
    for (size_t k = 0; k < b; ++k) {
      heads[k] = head_at(slots[k]);
      PrefetchRead(heads[k]);
    }
    for (size_t k = 0; k < b; ++k) {
      out[base + k] = probe(heads[k], keys[base + k]);
    }
  }
}

/// Fraction of keys that land in an already-occupied slot — the Figure-8
/// metric ("% Conflicts"). Uses a bitmap over `num_slots`.
template <typename HashFn>
double ConflictRate(std::span<const uint64_t> keys, const HashFn& fn,
                    uint64_t num_slots) {
  std::vector<uint64_t> bitmap((num_slots + 63) / 64, 0);
  size_t conflicts = 0;
  for (const uint64_t key : keys) {
    const uint64_t slot = fn(key);
    uint64_t& word = bitmap[slot >> 6];
    const uint64_t bit = uint64_t{1} << (slot & 63);
    if (word & bit) {
      ++conflicts;
    } else {
      word |= bit;
    }
  }
  return keys.empty()
             ? 0.0
             : static_cast<double>(conflicts) / static_cast<double>(keys.size());
}

}  // namespace li::hash

#endif  // LI_HASH_HASH_FN_H_
