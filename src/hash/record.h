// The record layout used across all hash-map experiments (Appendix B/C):
// "our records are 20 Bytes large and consist of a 64bit key, 64bit
// payload, and a 32bit meta-data field as commonly found in real
// applications (e.g., for delete flags, version numbers, etc.)".

#ifndef LI_HASH_RECORD_H_
#define LI_HASH_RECORD_H_

#include <cstdint>

namespace li::hash {

struct Record {
  uint64_t key = 0;
  uint64_t payload = 0;
  uint32_t meta = 0;
};
static_assert(sizeof(Record) <= 24, "Record must stay compact");

}  // namespace li::hash

#endif  // LI_HASH_RECORD_H_
