// Bucketized cuckoo hash map — the Table-1 (Appendix C) baselines.
//
// Two independent hash functions choose between two 8-slot buckets
// (the (2,8)-cuckoo regime whose load threshold ~0.989 supports the
// paper's "99% utilization" configuration); inserts evict via random-walk
// kicks with a small stash as the corner-case net. The probe of a bucket
// is branch-free (packed key compares), standing in for the AVX-optimized
// Stanford-DAWN implementation [7]. The `careful` flag models the
// "commercial" variant: full corner-case validation work per probe and a
// lower target load factor (95% vs 99%).
//
// Value is a template parameter so the 32-bit-value vs 20-byte-record rows
// of Table 1 use the same code. The Record instantiation additionally
// satisfies the index::PointIndex contract (record-span Build, duplicate
// keys keep the first record, Stats) so the LIF synthesizer and the
// conformance suite can enumerate it next to the chained maps.

#ifndef LI_HASH_CUCKOO_MAP_H_
#define LI_HASH_CUCKOO_MAP_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/random.h"
#include "common/status.h"
#include "hash/record.h"
#include "index/point_index.h"
#include "simd/dispatch.h"

namespace li::hash {

struct CuckooMapConfig {
  double load_factor = 0.95;  // table sized at n / load_factor
  bool careful = false;       // "commercial" mode: extra validation work
  uint64_t seed = 0x5bd1e995;
};

template <typename Value>
class CuckooMap {
 public:
  static constexpr size_t kBucketSlots = 8;
  static constexpr int kMaxKicks = 1024;
  static constexpr size_t kMaxStash = 128;

  using Config = CuckooMapConfig;
  using config_type = CuckooMapConfig;

  CuckooMap() = default;

  /// PointIndex-contract Build: key is taken from each record; duplicate
  /// keys keep the first record. Only for the Record instantiation.
  Status Build(std::span<const Record> records, const Config& config)
    requires std::same_as<Value, Record>
  {
    LI_RETURN_IF_ERROR(Prepare(records.size(), config));
    Xorshift128Plus rng(config.seed);
    for (const Record& r : records) {
      if (Find(r.key) != nullptr) continue;  // first record wins
      LI_RETURN_IF_ERROR(Insert(r.key, r, rng));
    }
    return Status::OK();
  }

  Status Build(std::span<const uint64_t> keys, std::span<const Value> values,
               const Config& config) {
    if (keys.size() != values.size()) {
      return Status::InvalidArgument("CuckooMap: |keys| != |values|");
    }
    LI_RETURN_IF_ERROR(Prepare(keys.size(), config));
    Xorshift128Plus rng(config.seed);
    for (size_t i = 0; i < keys.size(); ++i) {
      LI_RETURN_IF_ERROR(Insert(keys[i], values[i], rng));
    }
    return Status::OK();
  }

  /// Returns the value for `key`, or nullptr (including on a never-built
  /// map).
  const Value* Find(uint64_t key) const {
    if (buckets_.empty()) return nullptr;
    size_t b1, b2;
    Buckets(key, &b1, &b2);
    if (const Value* v = Probe(b1, key)) return v;
    if (const Value* v = Probe(b2, key)) return v;
    for (const auto& [k, v] : stash_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Software-pipelined batch probe: per 64-key block, phase 1 computes
  /// both candidate buckets for the whole block with the vectorized
  /// cuckoo_slots kernel (the distinct-bucket fix-up — a rare, cheap
  /// correction — stays scalar) and prefetches them, phase 2 probes —
  /// overlapping the (up to two) cache misses of neighboring keys.
  void FindBatch(std::span<const uint64_t> keys,
                 std::span<const Value*> out) const {
    const size_t n = std::min(keys.size(), out.size());
    if (buckets_.empty()) {
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
      return;
    }
    const simd::Kernels& kern = simd::GetKernels();
    constexpr size_t kBlock = 64;
    alignas(64) uint64_t b1[kBlock], b2[kBlock];
    for (size_t base = 0; base < n; base += kBlock) {
      const size_t b = std::min(kBlock, n - base);
      kern.cuckoo_slots(keys.data() + base, b, config_.seed, num_buckets_,
                        b1, b2);
      for (size_t k = 0; k < b; ++k) {
        if (b2[k] == b1[k]) b2[k] = (b1[k] + 1) % num_buckets_;
        PrefetchRead(&buckets_[b1[k]]);
        PrefetchRead(&buckets_[b2[k]]);
      }
      for (size_t k = 0; k < b; ++k) {
        const uint64_t key = keys[base + k];
        const Value* v = Probe(b1[k], key);
        if (v == nullptr) v = Probe(b2[k], key);
        if (v == nullptr) {
          for (const auto& [sk, sv] : stash_) {
            if (sk == key) {
              v = &sv;
              break;
            }
          }
        }
        out[base + k] = v;
      }
    }
  }

  size_t size() const { return size_; }
  size_t num_records() const { return size_; }
  double utilization() const {
    return static_cast<double>(size_) /
           static_cast<double>(num_buckets_ * kBucketSlots);
  }
  size_t SizeBytes() const {
    return num_buckets_ * sizeof(Bucket) +
           stash_.size() * sizeof(std::pair<uint64_t, Value>);
  }
  size_t stash_size() const { return stash_.size(); }

  index::PointIndexStats Stats() const {
    index::PointIndexStats stats;
    stats.num_slots = num_buckets_ * kBucketSlots;
    size_t occupied = 0;
    for (const Bucket& b : buckets_) {
      occupied += static_cast<size_t>(__builtin_popcount(b.occupied));
    }
    stats.empty_slots = stats.num_slots - occupied;
    stats.overflow = stash_.size();
    // Probe depth per stored key: 1 if it sits in its first-choice
    // bucket, 2 if it was kicked to the alternate (stash entries pay for
    // both buckets first).
    double total = 0.0;
    for (size_t bi = 0; bi < buckets_.size(); ++bi) {
      const Bucket& b = buckets_[bi];
      for (size_t s = 0; s < kBucketSlots; ++s) {
        if (!((b.occupied >> s) & 1)) continue;
        size_t h1, h2;
        Buckets(b.keys[s], &h1, &h2);
        total += (h1 == bi) ? 1.0 : 2.0;
      }
    }
    total += 2.0 * static_cast<double>(stash_.size());
    stats.mean_probe =
        size_ == 0 ? 0.0 : total / static_cast<double>(size_);
    return stats;
  }

 private:
  struct Bucket {
    uint64_t keys[kBucketSlots] = {};
    Value values[kBucketSlots] = {};
    uint16_t occupied = 0;  // bitmask
  };
  static constexpr uint16_t kFullMask =
      static_cast<uint16_t>((1u << kBucketSlots) - 1);

  /// Shared validation + table sizing for both Build overloads.
  Status Prepare(size_t n, const Config& config) {
    if (config.load_factor <= 0.0 || config.load_factor > 0.99) {
      return Status::InvalidArgument("CuckooMap: load_factor in (0, 0.99]");
    }
    config_ = config;
    const size_t want =
        static_cast<size_t>(static_cast<double>(n) / config.load_factor) +
        kBucketSlots;
    num_buckets_ = (want + kBucketSlots - 1) / kBucketSlots;
    if (num_buckets_ < 2) num_buckets_ = 2;
    buckets_.assign(num_buckets_, Bucket{});
    stash_.clear();
    size_ = 0;
    return Status::OK();
  }

  size_t Reduce(uint64_t h) const {
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(h) * num_buckets_) >> 64);
  }

  /// Two independent bucket choices; forced distinct so eviction always
  /// makes progress.
  void Buckets(uint64_t key, size_t* b1, size_t* b2) const {
    *b1 = Reduce(Murmur3Fmix64(key ^ config_.seed));
    *b2 = Reduce(Murmur3Fmix64(key + 0x9e3779b97f4a7c15ULL + config_.seed));
    if (*b2 == *b1) *b2 = (*b1 + 1) % num_buckets_;
  }

  const Value* Probe(size_t bucket, uint64_t key) const {
    const Bucket& b = buckets_[bucket];
    // Branch-free candidate mask over the slots.
    unsigned mask = 0;
    for (size_t i = 0; i < kBucketSlots; ++i) {
      mask |= static_cast<unsigned>(b.keys[i] == key) << i;
    }
    mask &= b.occupied;
    if (config_.careful) {
      // Commercial-grade validation pass: re-verify occupancy and key
      // equality slot by slot (the corner-case handling cost).
      for (size_t i = 0; i < kBucketSlots; ++i) {
        const bool hit = ((b.occupied >> i) & 1) && b.keys[i] == key;
        if (hit != (((mask >> i) & 1u) != 0)) mask = 0;  // never taken
      }
    }
    if (mask == 0) return nullptr;
    const unsigned slot = static_cast<unsigned>(__builtin_ctz(mask));
    return &b.values[slot];
  }

  bool TryPlace(size_t bucket, uint64_t key, const Value& value) {
    Bucket& b = buckets_[bucket];
    if (b.occupied == kFullMask) return false;
    const unsigned slot = static_cast<unsigned>(
        __builtin_ctz(~static_cast<unsigned>(b.occupied) & kFullMask));
    b.keys[slot] = key;
    b.values[slot] = value;
    b.occupied = static_cast<uint16_t>(b.occupied | (1u << slot));
    ++size_;
    return true;
  }

  Status Insert(uint64_t key, Value value, Xorshift128Plus& rng) {
    uint64_t cur_key = key;
    Value cur_val = value;
    size_t b1, b2;
    Buckets(cur_key, &b1, &b2);
    size_t bucket = b1;
    for (int kick = 0; kick < kMaxKicks; ++kick) {
      if (TryPlace(bucket, cur_key, cur_val)) return Status::OK();
      const size_t alt = (bucket == b1) ? b2 : b1;
      if (TryPlace(alt, cur_key, cur_val)) return Status::OK();
      // Evict a random victim from the current bucket and continue with it
      // in *its* alternate bucket.
      Bucket& b = buckets_[bucket];
      const unsigned victim =
          static_cast<unsigned>(rng.NextBounded(kBucketSlots));
      std::swap(cur_key, b.keys[victim]);
      std::swap(cur_val, b.values[victim]);
      Buckets(cur_key, &b1, &b2);
      bucket = (bucket == b1) ? b2 : b1;
    }
    // Kick budget exhausted: stash (the corner-case net).
    stash_.emplace_back(cur_key, cur_val);
    ++size_;
    if (stash_.size() > kMaxStash) {
      return Status::Internal("CuckooMap: stash overflow — table too full");
    }
    return Status::OK();
  }

  Config config_;
  size_t num_buckets_ = 0;
  size_t size_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<std::pair<uint64_t, Value>> stash_;
};

}  // namespace li::hash

#endif  // LI_HASH_CUCKOO_MAP_H_
