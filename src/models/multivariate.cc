#include "models/multivariate.h"

#include <algorithm>
#include <bit>

#include "linalg/matrix.h"
#include "models/model.h"

namespace li::models {

Status MultivariateModel::Fit(std::span<const double> xs,
                              std::span<const double> ys, uint32_t features) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("MultivariateModel::Fit: size mismatch");
  }
  features_ = features;
  num_features_ = std::popcount(features);
  w_.fill(0.0);
  if (xs.empty()) return Status::OK();

  // Normalize x into ~[0, 1]: log/sqrt/x^3 features are unusable on raw
  // 1e18-scale keys.
  double xmin = xs[0], xmax = xs[0];
  for (const double x : xs) {
    xmin = std::min(xmin, x);
    xmax = std::max(xmax, x);
  }
  x_shift_ = xmin;
  x_scale_ = (xmax > xmin) ? 1.0 / (xmax - xmin) : 1.0;

  const size_t d = static_cast<size_t>(num_features_) + 1;
  if (xs.size() < d) {
    // Underdetermined: constant model at the mean position.
    double mean = 0.0;
    for (const double y : ys) mean += y;
    w_[0] = mean / static_cast<double>(ys.size());
    features_ = 0;
    num_features_ = 0;
    return Status::OK();
  }

  linalg::Matrix design(xs.size(), d);
  for (size_t r = 0; r < xs.size(); ++r) {
    const double xn = (xs[r] - x_shift_) * x_scale_;
    design(r, 0) = 1.0;
    uint32_t m = features_;
    size_t c = 1;
    while (m) {
      const uint32_t f = m & (~m + 1);
      design(r, c++) = Eval(f, xn);
      m ^= f;
    }
  }
  std::vector<double> y(ys.begin(), ys.end());
  std::vector<double> w;
  LI_RETURN_IF_ERROR(linalg::LeastSquares(design, y, &w));
  for (size_t i = 0; i < w.size(); ++i) w_[i] = w[i];
  return Status::OK();
}

Status MultivariateModel::FitAutoSelect(std::span<const double> xs,
                                        std::span<const double> ys) {
  static const uint32_t kCandidates[] = {
      kFeatX,
      kFeatX | kFeatLog,
      kFeatX | kFeatSq,
      kFeatX | kFeatSqrt,
      kFeatX | kFeatLog | kFeatLogSq,
      kFeatX | kFeatSq | kFeatCube,
      kDefaultFeatures,
      kFeatX | kFeatLog | kFeatSq | kFeatSqrt | kFeatCube | kFeatLogSq,
  };
  double best_mse = std::numeric_limits<double>::infinity();
  MultivariateModel best;
  bool any = false;
  for (const uint32_t mask : kCandidates) {
    MultivariateModel candidate;
    if (!candidate.Fit(xs, ys, mask).ok()) continue;
    const double mse = MeanSquaredError(candidate, xs, ys);
    if (mse < best_mse) {
      best_mse = mse;
      best = candidate;
      any = true;
    }
  }
  if (!any) {
    return Status::Internal("MultivariateModel: all feature sets failed");
  }
  *this = best;
  return Status::OK();
}

}  // namespace li::models
