#include "models/nn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/random.h"

namespace li::models {

Status NeuralNet::Init(const NNConfig& config) {
  if (config.input_dim < 1 || config.input_dim > kMaxWidth) {
    return Status::InvalidArgument("NeuralNet: input_dim out of range");
  }
  if (config.hidden.size() > 2) {
    return Status::InvalidArgument("NeuralNet: at most 2 hidden layers");
  }
  for (const int h : config.hidden) {
    if (h < 1 || h > kMaxWidth) {
      return Status::InvalidArgument("NeuralNet: hidden width out of range");
    }
  }
  config_ = config;
  num_layers_ = static_cast<int>(config.hidden.size()) + 1;
  dims_[0] = config.input_dim;
  for (size_t i = 0; i < config.hidden.size(); ++i) {
    dims_[i + 1] = config.hidden[i];
  }
  dims_[num_layers_] = 1;

  Xorshift128Plus rng(config.seed);
  for (int l = 0; l < num_layers_; ++l) {
    const int in = dims_[l];
    const int out = dims_[l + 1];
    w_[l].assign(static_cast<size_t>(in) * out, 0.0);
    b_[l].assign(out, 0.0);
    // He initialization for ReLU layers.
    const double scale = std::sqrt(2.0 / in);
    for (auto& v : w_[l]) v = rng.NextGaussian() * scale;
  }
  x_mean_.assign(config.input_dim, 0.0);
  x_inv_std_.assign(config.input_dim, 1.0);
  return Status::OK();
}

double NeuralNet::Forward(const double* xn) const {
  double act[2][kMaxWidth];
  const double* in = xn;
  double* out = act[0];
  for (int l = 0; l < num_layers_; ++l) {
    const int in_dim = dims_[l];
    const int out_dim = dims_[l + 1];
    const double* w = w_[l].data();
    const double* b = b_[l].data();
    const bool relu = l + 1 < num_layers_;
    for (int o = 0; o < out_dim; ++o) {
      double acc = b[o];
      const double* wrow = w + static_cast<size_t>(o) * in_dim;
      for (int i = 0; i < in_dim; ++i) acc += wrow[i] * in[i];
      out[o] = relu && acc < 0.0 ? 0.0 : acc;
    }
    in = out;
    out = (out == act[0]) ? act[1] : act[0];
  }
  return in[0];
}

double NeuralNet::PredictVec(std::span<const double> x) const {
  assert(static_cast<int>(x.size()) == config_.input_dim);
  double xn[kMaxWidth];
  for (int d = 0; d < config_.input_dim; ++d) {
    xn[d] = (x[d] - x_mean_[d]) * x_inv_std_[d];
  }
  return Forward(xn) * y_scale_ + y_mean_;
}

size_t NeuralNet::SizeBytes() const {
  size_t bytes = 0;
  for (int l = 0; l < num_layers_; ++l) {
    bytes += (w_[l].size() + b_[l].size()) * sizeof(double);
  }
  bytes += (x_mean_.size() + x_inv_std_.size() + 2) * sizeof(double);
  return bytes;
}

size_t NeuralNet::OpsPerInference() const {
  size_t ops = 0;
  for (int l = 0; l < num_layers_; ++l) {
    ops += 2 * w_[l].size() + b_[l].size();
  }
  return ops;
}

NeuralNet::LayerView NeuralNet::layer(int l) const {
  assert(l >= 0 && l < num_layers_);
  return LayerView{w_[l].data(), b_[l].data(), dims_[l], dims_[l + 1],
                   l + 1 < num_layers_};
}

Status NeuralNet::Fit(std::span<const double> xs, std::span<const double> ys,
                      const NNConfig& config) {
  NNConfig c = config;
  c.input_dim = 1;
  LI_RETURN_IF_ERROR(Init(c));
  return TrainAdam(xs, xs.size(), ys);
}

Status NeuralNet::FitVec(std::span<const double> features, size_t n,
                         std::span<const double> ys, const NNConfig& config) {
  LI_RETURN_IF_ERROR(Init(config));
  if (features.size() != n * static_cast<size_t>(config.input_dim)) {
    return Status::InvalidArgument("NeuralNet::FitVec: bad feature matrix");
  }
  return TrainAdam(features, n, ys);
}

Status NeuralNet::TrainAdam(std::span<const double> features, size_t n,
                            std::span<const double> ys) {
  if (ys.size() != n) {
    return Status::InvalidArgument("NeuralNet: |ys| != n");
  }
  if (n == 0) return Status::OK();
  const int d = config_.input_dim;

  // Subsample for training speed; evenly strided so the sample spans the
  // key range (the data is typically sorted by caller).
  std::vector<size_t> sample;
  const size_t train_n = std::min(n, config_.max_train_samples);
  sample.reserve(train_n);
  const double stride = static_cast<double>(n) / static_cast<double>(train_n);
  for (size_t i = 0; i < train_n; ++i) {
    sample.push_back(static_cast<size_t>(i * stride));
  }

  // Input standardization per dimension + target normalization.
  for (int k = 0; k < d; ++k) {
    double mean = 0.0;
    for (const size_t i : sample) mean += features[i * d + k];
    mean /= static_cast<double>(train_n);
    double var = 0.0;
    for (const size_t i : sample) {
      const double dx = features[i * d + k] - mean;
      var += dx * dx;
    }
    var /= static_cast<double>(train_n);
    x_mean_[k] = mean;
    x_inv_std_[k] = var > 1e-30 ? 1.0 / std::sqrt(var) : 1.0;
  }
  double ymin = ys[sample[0]], ymax = ys[sample[0]];
  for (const size_t i : sample) {
    ymin = std::min(ymin, ys[i]);
    ymax = std::max(ymax, ys[i]);
  }
  y_mean_ = ymin;
  y_scale_ = (ymax > ymin) ? (ymax - ymin) : 1.0;

  // Adam state.
  std::vector<double> mw[kMaxLayers], vw[kMaxLayers], mb[kMaxLayers],
      vb[kMaxLayers];
  for (int l = 0; l < num_layers_; ++l) {
    mw[l].assign(w_[l].size(), 0.0);
    vw[l].assign(w_[l].size(), 0.0);
    mb[l].assign(b_[l].size(), 0.0);
    vb[l].assign(b_[l].size(), 0.0);
  }
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  double beta1_t = 1.0, beta2_t = 1.0;

  Xorshift128Plus rng(config_.seed + 17);
  std::vector<size_t> order(sample);

  // Per-example gradient buffers.
  double act[kMaxLayers + 1][kMaxWidth];   // activations per layer
  double delta[kMaxLayers + 1][kMaxWidth]; // backprop errors
  std::vector<double> gw[kMaxLayers], gb[kMaxLayers];
  for (int l = 0; l < num_layers_; ++l) {
    gw[l].assign(w_[l].size(), 0.0);
    gb[l].assign(b_[l].size(), 0.0);
  }

  const size_t batch = std::max<size_t>(1, config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher-Yates shuffle (randomized SGD passes, §3.6).
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    for (size_t start = 0; start < order.size(); start += batch) {
      const size_t end = std::min(start + batch, order.size());
      for (int l = 0; l < num_layers_; ++l) {
        std::fill(gw[l].begin(), gw[l].end(), 0.0);
        std::fill(gb[l].begin(), gb[l].end(), 0.0);
      }
      for (size_t bi = start; bi < end; ++bi) {
        const size_t idx = order[bi];
        // Forward with stored activations.
        for (int k = 0; k < d; ++k) {
          act[0][k] = (features[idx * d + k] - x_mean_[k]) * x_inv_std_[k];
        }
        for (int l = 0; l < num_layers_; ++l) {
          const int in_dim = dims_[l], out_dim = dims_[l + 1];
          const bool relu = l + 1 < num_layers_;
          for (int o = 0; o < out_dim; ++o) {
            double acc = b_[l][o];
            const double* wrow = &w_[l][static_cast<size_t>(o) * in_dim];
            for (int i = 0; i < in_dim; ++i) acc += wrow[i] * act[l][i];
            act[l + 1][o] = relu && acc < 0.0 ? 0.0 : acc;
          }
        }
        const double target = (ys[idx] - y_mean_) / y_scale_;
        delta[num_layers_][0] = act[num_layers_][0] - target;  // dMSE/2
        // Backward.
        for (int l = num_layers_ - 1; l >= 0; --l) {
          const int in_dim = dims_[l], out_dim = dims_[l + 1];
          if (l > 0) {
            for (int i = 0; i < in_dim; ++i) delta[l][i] = 0.0;
          }
          for (int o = 0; o < out_dim; ++o) {
            const double dl = delta[l + 1][o];
            if (dl == 0.0) continue;
            double* grow = &gw[l][static_cast<size_t>(o) * in_dim];
            const double* wrow = &w_[l][static_cast<size_t>(o) * in_dim];
            for (int i = 0; i < in_dim; ++i) {
              grow[i] += dl * act[l][i];
              if (l > 0) delta[l][i] += dl * wrow[i];
            }
            gb[l][o] += dl;
          }
          if (l > 0) {
            // ReLU derivative of the previous layer's activation.
            for (int i = 0; i < in_dim; ++i) {
              if (act[l][i] <= 0.0) delta[l][i] = 0.0;
            }
          }
        }
      }
      // Adam update.
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      beta1_t *= beta1;
      beta2_t *= beta2;
      const double corr =
          config_.learning_rate * std::sqrt(1.0 - beta2_t) / (1.0 - beta1_t);
      for (int l = 0; l < num_layers_; ++l) {
        for (size_t i = 0; i < w_[l].size(); ++i) {
          const double g = gw[l][i] * inv_batch;
          mw[l][i] = beta1 * mw[l][i] + (1.0 - beta1) * g;
          vw[l][i] = beta2 * vw[l][i] + (1.0 - beta2) * g * g;
          w_[l][i] -= corr * mw[l][i] / (std::sqrt(vw[l][i]) + eps);
        }
        for (size_t i = 0; i < b_[l].size(); ++i) {
          const double g = gb[l][i] * inv_batch;
          mb[l][i] = beta1 * mb[l][i] + (1.0 - beta1) * g;
          vb[l][i] = beta2 * vb[l][i] + (1.0 - beta2) * g * g;
          b_[l][i] -= corr * mb[l][i] / (std::sqrt(vb[l][i]) + eps);
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace li::models
