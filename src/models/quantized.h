// Quantized second-stage model tables — the §3.7.1 compression note:
// "neural nets can be compressed by using 4- or 8-bit integers instead of
// 32- or 64-bit floating point values to represent the model parameters
// (a process referred to as quantization). This level of compression can
// unlock additional gains for learned indexes."
//
// QuantizedLeafTable re-encodes an array of linear leaf models in anchored
// form pred(x) = slope * (x - x0) + y0, where x0 is the leaf's first key
// (reconstructible from the data, hence not charged to the index size) and
// y0 its predicted position there. Three precision levels:
//   kFloat64 — reference (8B slope, 8B intercept)
//   kFloat32 — 4B slope + 4B anchor position
//   kInt16   — 2B slope on a shared scale + 4B anchor position
// Quantization drift is folded into each leaf's error bounds at encode
// time, so lookups stay exactly correct — the windows just widen slightly.

#ifndef LI_MODELS_QUANTIZED_H_
#define LI_MODELS_QUANTIZED_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace li::models {

enum class QuantLevel { kFloat64, kFloat32, kInt16 };

inline const char* QuantLevelName(QuantLevel q) {
  switch (q) {
    case QuantLevel::kFloat64: return "float64";
    case QuantLevel::kFloat32: return "float32";
    case QuantLevel::kInt16: return "int16";
  }
  return "?";
}

class QuantizedLeafTable {
 public:
  /// Exact leaf description to be encoded.
  struct LeafRef {
    double slope = 0.0;
    double intercept = 0.0;
    int32_t min_err = 0;
    int32_t max_err = 0;
    double anchor_x = 0.0;   // leaf's first key
    double key_span = 0.0;   // last key - first key (drift horizon)
  };

  QuantizedLeafTable() = default;

  Status Encode(std::span<const LeafRef> leaves, QuantLevel level) {
    level_ = level;
    n_ = leaves.size();
    anchors_x_.resize(n_);
    anchors_y_.resize(n_);
    bounds_.resize(n_);
    slopes64_.clear();
    slopes32_.clear();
    slopes16_.clear();

    double max_slope = 0.0;
    for (const LeafRef& l : leaves) {
      max_slope = std::max(max_slope, std::fabs(l.slope));
    }
    slope_scale_ = max_slope > 0 ? max_slope / 32767.0 : 1.0;

    for (size_t i = 0; i < n_; ++i) {
      const LeafRef& l = leaves[i];
      anchors_x_[i] = l.anchor_x;
      const double exact_y0 = l.slope * l.anchor_x + l.intercept;
      anchors_y_[i] = static_cast<float>(exact_y0);

      double q_slope = l.slope;
      switch (level) {
        case QuantLevel::kFloat64:
          slopes64_.push_back(l.slope);
          break;
        case QuantLevel::kFloat32:
          slopes32_.push_back(static_cast<float>(l.slope));
          q_slope = static_cast<double>(slopes32_.back());
          break;
        case QuantLevel::kInt16:
          slopes16_.push_back(
              static_cast<int16_t>(std::lround(l.slope / slope_scale_)));
          q_slope = static_cast<double>(slopes16_.back()) * slope_scale_;
          break;
      }
      // Worst-case drift over the leaf's key span: slope error accumulates
      // linearly in (x - x0); anchor rounding adds at most half a ulp of
      // float, bounded by 1 position here.
      const double drift =
          std::fabs(q_slope - l.slope) * l.key_span +
          std::fabs(static_cast<double>(anchors_y_[i]) - exact_y0) + 1.0;
      const int32_t widen = static_cast<int32_t>(std::ceil(drift));
      bounds_[i] = {l.min_err - widen, l.max_err + widen};
    }
    return Status::OK();
  }

  double Predict(size_t i, double x) const {
    const double dx = x - anchors_x_[i];
    switch (level_) {
      case QuantLevel::kFloat64:
        return slopes64_[i] * dx + static_cast<double>(anchors_y_[i]);
      case QuantLevel::kFloat32:
        return static_cast<double>(slopes32_[i]) * dx +
               static_cast<double>(anchors_y_[i]);
      case QuantLevel::kInt16:
        return static_cast<double>(slopes16_[i]) * slope_scale_ * dx +
               static_cast<double>(anchors_y_[i]);
    }
    return 0.0;
  }

  int32_t min_err(size_t i) const { return bounds_[i].min_err; }
  int32_t max_err(size_t i) const { return bounds_[i].max_err; }
  size_t size() const { return n_; }
  QuantLevel level() const { return level_; }

  /// Portable bytes: slope storage + 4B anchor position + packed 2x2B
  /// error half-widths per leaf (anchor keys come from the data array).
  size_t SizeBytes() const {
    size_t per_leaf = sizeof(float) + 2 * sizeof(uint16_t);
    switch (level_) {
      case QuantLevel::kFloat64: per_leaf += sizeof(double); break;
      case QuantLevel::kFloat32: per_leaf += sizeof(float); break;
      case QuantLevel::kInt16: per_leaf += sizeof(int16_t); break;
    }
    return n_ * per_leaf + sizeof(double);
  }

 private:
  struct Bounds {
    int32_t min_err = 0;
    int32_t max_err = 0;
  };

  QuantLevel level_ = QuantLevel::kFloat64;
  size_t n_ = 0;
  double slope_scale_ = 1.0;
  std::vector<double> slopes64_;
  std::vector<float> slopes32_;
  std::vector<int16_t> slopes16_;
  std::vector<double> anchors_x_;
  std::vector<float> anchors_y_;
  std::vector<Bounds> bounds_;
};

}  // namespace li::models

#endif  // LI_MODELS_QUANTIZED_H_
