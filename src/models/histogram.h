// Histogram CDF models — the §3.7.1 "Histogram" baseline the paper
// discusses and dismisses: "In principle the answer is yes, but to enable
// fast data access, the histogram must be a low-error approximation of the
// CDF. Typically this requires a large number of buckets, which makes it
// expensive to search the histogram itself ... the obvious solutions to
// this issue would yield a B-Tree."
//
// Both variants are provided so `ablation_histogram` can demonstrate that
// trade-off empirically:
//  * EquiWidthHistogram — O(1) bucket lookup but unbounded per-bucket
//    error under skew.
//  * EquiDepthHistogram — bounded per-bucket error but requires a binary
//    search over bucket boundaries (the degeneration into a B-Tree).

#ifndef LI_MODELS_HISTOGRAM_H_
#define LI_MODELS_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace li::models {

class EquiWidthHistogram {
 public:
  EquiWidthHistogram() = default;

  /// Builds cumulative counts over `num_buckets` equal key-range buckets.
  Status Fit(std::span<const double> xs, std::span<const double> ys,
             size_t num_buckets = 1024) {
    if (xs.size() != ys.size()) {
      return Status::InvalidArgument("EquiWidthHistogram: size mismatch");
    }
    if (num_buckets < 1) {
      return Status::InvalidArgument("EquiWidthHistogram: no buckets");
    }
    cum_.assign(num_buckets + 1, 0.0);
    if (xs.empty()) {
      lo_ = 0.0;
      inv_width_ = 0.0;
      return Status::OK();
    }
    lo_ = xs.front();
    const double hi = xs.back();
    inv_width_ = hi > lo_ ? static_cast<double>(num_buckets) / (hi - lo_) : 0.0;
    // xs sorted: cum_[b] = highest position of any key in buckets < b.
    for (size_t i = 0; i < xs.size(); ++i) {
      const size_t b = BucketOf(xs[i]);
      cum_[b + 1] = std::max(cum_[b + 1], ys[i] + 1.0);
    }
    for (size_t b = 1; b <= num_buckets; ++b) {
      cum_[b] = std::max(cum_[b], cum_[b - 1]);
    }
    return Status::OK();
  }

  /// Linear interpolation inside the bucket — one multiply to locate it.
  double Predict(double x) const {
    if (cum_.size() < 2) return 0.0;
    const size_t b = BucketOf(x);
    const double base = cum_[b];
    return base + 0.5 * (cum_[b + 1] - base);  // bucket-midpoint estimate
  }

  size_t SizeBytes() const {
    return cum_.size() * sizeof(double) + 2 * sizeof(double);
  }
  static const char* Name() { return "equi-width-histogram"; }

 private:
  size_t BucketOf(double x) const {
    const double t = (x - lo_) * inv_width_;
    if (!(t > 0.0)) return 0;
    return std::min(static_cast<size_t>(t), cum_.size() - 2);
  }

  double lo_ = 0.0;
  double inv_width_ = 0.0;
  std::vector<double> cum_;
};

class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Boundaries at key quantiles; every bucket covers ~n/num_buckets keys.
  Status Fit(std::span<const double> xs, std::span<const double> ys,
             size_t num_buckets = 1024) {
    if (xs.size() != ys.size()) {
      return Status::InvalidArgument("EquiDepthHistogram: size mismatch");
    }
    if (num_buckets < 1) {
      return Status::InvalidArgument("EquiDepthHistogram: no buckets");
    }
    bounds_.clear();
    positions_.clear();
    if (xs.empty()) return Status::OK();
    const size_t buckets = std::min(num_buckets, xs.size());
    bounds_.reserve(buckets + 1);
    positions_.reserve(buckets + 1);
    for (size_t b = 0; b <= buckets; ++b) {
      const size_t idx = std::min(b * xs.size() / buckets, xs.size() - 1);
      bounds_.push_back(xs[idx]);
      positions_.push_back(ys[idx]);
    }
    return Status::OK();
  }

  /// Binary search over the quantile boundaries (the cost the paper calls
  /// out), then interpolate.
  double Predict(double x) const {
    if (bounds_.size() < 2) return positions_.empty() ? 0.0 : positions_[0];
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
    size_t hi = static_cast<size_t>(it - bounds_.begin());
    hi = std::clamp<size_t>(hi, 1, bounds_.size() - 1);
    const size_t lo = hi - 1;
    const double x0 = bounds_[lo], x1 = bounds_[hi];
    const double frac = x1 > x0 ? (x - x0) / (x1 - x0) : 0.0;
    return positions_[lo] +
           std::clamp(frac, 0.0, 1.0) * (positions_[hi] - positions_[lo]);
  }

  size_t SizeBytes() const {
    return (bounds_.size() + positions_.size()) * sizeof(double);
  }
  static const char* Name() { return "equi-depth-histogram"; }

 private:
  std::vector<double> bounds_;
  std::vector<double> positions_;
};

}  // namespace li::models

#endif  // LI_MODELS_HISTOGRAM_H_
