// Model concepts and error-bound machinery shared by all learned indexes.
//
// The paper's key observation (§2): a range index is a model of the CDF,
// p = F(key) * N, and any regression model qualifies as long as we can
// compute min/max error bounds over the stored keys (§3.4). Models in this
// library are concrete structs with inlined Predict() — mirroring LIF's
// code-generated inference kernels ("we are able to execute simple models
// on the order of 30 nano-seconds", §3.1) — plus a type-erased wrapper for
// the synthesis framework, which deliberately pays virtual-call overhead
// exactly as the paper describes for LIF.

#ifndef LI_MODELS_MODEL_H_
#define LI_MODELS_MODEL_H_

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>

namespace li::models {

/// A scalar position model: key (as double) -> predicted position.
template <typename M>
concept PositionModel = requires(const M m, double x) {
  { m.Predict(x) } -> std::convertible_to<double>;
  { m.SizeBytes() } -> std::convertible_to<size_t>;
};

/// Worst-case over/under-prediction of a model over the stored keys,
/// plus the standard error used by biased quaternary search.
///
/// For every stored (key, pos): pos is guaranteed to lie in
/// [pred + min_err, pred + max_err].
struct ErrorBounds {
  double min_err = 0.0;  // most negative (actual - predicted)
  double max_err = 0.0;  // most positive (actual - predicted)
  double std_err = 0.0;  // stddev of (actual - predicted)

  double MaxAbs() const { return std::max(std::fabs(min_err), max_err); }
};

/// Evaluates `model` on every (x, y) pair and records the worst over- and
/// under-prediction — the procedure §2 describes for obtaining B-Tree-like
/// guarantees from an arbitrary model.
template <PositionModel M>
ErrorBounds ComputeErrorBounds(const M& model, std::span<const double> xs,
                               std::span<const double> ys) {
  ErrorBounds b;
  if (xs.empty()) return b;
  b.min_err = std::numeric_limits<double>::infinity();
  b.max_err = -std::numeric_limits<double>::infinity();
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - model.Predict(xs[i]);
    b.min_err = std::min(b.min_err, e);
    b.max_err = std::max(b.max_err, e);
    sum += e;
    sum_sq += e * e;
  }
  const double n = static_cast<double>(xs.size());
  const double mean = sum / n;
  b.std_err = std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
  return b;
}

/// Checks whether the model is non-decreasing over the given sorted inputs
/// (monotonic models guarantee error bounds even for absent keys, §3.4).
template <PositionModel M>
bool IsMonotonicOn(const M& model, std::span<const double> sorted_xs) {
  double prev = -std::numeric_limits<double>::infinity();
  for (const double x : sorted_xs) {
    const double p = model.Predict(x);
    if (p < prev) return false;
    prev = p;
  }
  return true;
}

/// Mean squared error of a model over a sample.
template <PositionModel M>
double MeanSquaredError(const M& model, std::span<const double> xs,
                        std::span<const double> ys) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - model.Predict(xs[i]);
    s += e * e;
  }
  return s / static_cast<double>(xs.size());
}

}  // namespace li::models

#endif  // LI_MODELS_MODEL_H_
