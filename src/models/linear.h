// Closed-form simple linear regression — the workhorse second-stage model.
// "For the second stage, simple, linear models had the best performance...
// linear models can be learned optimally [in] a single pass" (§3.6/§3.7.1).
//
// Prediction is a single fused multiply-add; a zero-hidden-layer NN is
// exactly this model (§3.3).

#ifndef LI_MODELS_LINEAR_H_
#define LI_MODELS_LINEAR_H_

#include <cstddef>
#include <span>

#include "common/status.h"

namespace li::models {

class LinearModel {
 public:
  LinearModel() = default;
  LinearModel(double slope, double intercept)
      : slope_(slope), intercept_(intercept) {}

  /// Least-squares fit in one pass over (xs, ys). Degenerate inputs
  /// (constant x, or fewer than 2 points) fall back to a constant model.
  Status Fit(std::span<const double> xs, std::span<const double> ys) {
    if (xs.size() != ys.size()) {
      return Status::InvalidArgument("LinearModel::Fit: size mismatch");
    }
    const size_t n = xs.size();
    if (n == 0) {
      slope_ = 0.0;
      intercept_ = 0.0;
      return Status::OK();
    }
    // Shifted accumulation keeps the sums well-conditioned for huge keys.
    const double x0 = xs[0];
    const double y0 = ys[0];
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double dx = xs[i] - x0;
      const double dy = ys[i] - y0;
      sx += dx;
      sy += dy;
      sxx += dx * dx;
      sxy += dx * dy;
    }
    const double dn = static_cast<double>(n);
    const double denom = dn * sxx - sx * sx;
    if (denom <= 0.0) {
      slope_ = 0.0;
      intercept_ = y0 + sy / dn;
      return Status::OK();
    }
    slope_ = (dn * sxy - sx * sy) / denom;
    intercept_ = (y0 + sy / dn) - slope_ * (x0 + sx / dn);
    return Status::OK();
  }

  double Predict(double x) const { return slope_ * x + intercept_; }

  size_t SizeBytes() const { return 2 * sizeof(double); }

  double slope() const { return slope_; }
  double intercept() const { return intercept_; }

  /// Linear models are monotonic iff the slope is non-negative.
  bool IsMonotonic() const { return slope_ >= 0.0; }

  static const char* Name() { return "linear"; }

 private:
  double slope_ = 0.0;
  double intercept_ = 0.0;
};

/// The "key itself is the offset" model of the introduction: given dense
/// keys base..base+N, predicts position exactly with one subtraction.
class OffsetModel {
 public:
  OffsetModel() = default;

  Status Fit(std::span<const double> xs, std::span<const double> ys) {
    if (!xs.empty()) offset_ = xs[0] - ys[0];
    return Status::OK();
  }

  double Predict(double x) const { return x - offset_; }
  size_t SizeBytes() const { return sizeof(double); }
  static const char* Name() { return "offset"; }

 private:
  double offset_ = 0.0;
};

}  // namespace li::models

#endif  // LI_MODELS_LINEAR_H_
