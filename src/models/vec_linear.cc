#include "models/vec_linear.h"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.h"

namespace li::models {

Status VecLinearModel::Fit(std::span<const double> features, size_t n,
                           size_t dim, std::span<const double> ys) {
  if (features.size() != n * dim || ys.size() != n) {
    return Status::InvalidArgument("VecLinearModel::Fit: shape mismatch");
  }
  w_.assign(dim, 0.0);
  bias_ = 0.0;
  if (n == 0) return Status::OK();
  if (n <= dim + 1) {
    // Underdetermined: constant model at the mean target.
    double mean = 0.0;
    for (const double y : ys) mean += y;
    bias_ = mean / static_cast<double>(n);
    return Status::OK();
  }
  linalg::Matrix design(n, dim + 1);
  for (size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (size_t c = 0; c < dim; ++c) design(r, c + 1) = features[r * dim + c];
  }
  std::vector<double> y(ys.begin(), ys.end());
  std::vector<double> coef;
  // Stronger ridge than the scalar case: ASCII feature columns are highly
  // collinear within a leaf (shared prefixes).
  LI_RETURN_IF_ERROR(linalg::LeastSquares(design, y, &coef, 1e-7));
  bias_ = coef[0];
  for (size_t c = 0; c < dim; ++c) w_[c] = coef[c + 1];
  return Status::OK();
}

}  // namespace li::models
