#include "models/isotonic.h"

#include <algorithm>

namespace li::models {

Status IsotonicModel::Fit(std::span<const double> xs,
                          std::span<const double> ys, size_t max_knots) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("IsotonicModel::Fit: size mismatch");
  }
  if (max_knots < 2) {
    return Status::InvalidArgument("IsotonicModel::Fit: need >= 2 knots");
  }
  knot_x_.clear();
  knot_y_.clear();
  if (xs.empty()) return Status::OK();
  if (!std::is_sorted(xs.begin(), xs.end())) {
    return Status::InvalidArgument("IsotonicModel::Fit: xs must be sorted");
  }

  // Pool-Adjacent-Violators: merge blocks whose means violate monotonicity.
  struct Block {
    double sum;
    size_t count;
    size_t last;  // index of last element covered
    double mean() const { return sum / static_cast<double>(count); }
  };
  std::vector<Block> blocks;
  blocks.reserve(xs.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    blocks.push_back({ys[i], 1, i});
    while (blocks.size() > 1 &&
           blocks[blocks.size() - 2].mean() > blocks.back().mean()) {
      Block top = blocks.back();
      blocks.pop_back();
      blocks.back().sum += top.sum;
      blocks.back().count += top.count;
      blocks.back().last = top.last;
    }
  }

  // Materialize knots at block ends, subsampled to the knot budget.
  std::vector<double> kx, ky;
  kx.reserve(blocks.size());
  ky.reserve(blocks.size());
  for (const Block& b : blocks) {
    kx.push_back(xs[b.last]);
    ky.push_back(b.mean());
  }
  if (kx.size() <= max_knots) {
    knot_x_ = std::move(kx);
    knot_y_ = std::move(ky);
  } else {
    knot_x_.reserve(max_knots);
    knot_y_.reserve(max_knots);
    const double stride = static_cast<double>(kx.size() - 1) /
                          static_cast<double>(max_knots - 1);
    for (size_t i = 0; i < max_knots; ++i) {
      const size_t idx = static_cast<size_t>(i * stride);
      knot_x_.push_back(kx[idx]);
      knot_y_.push_back(ky[idx]);
    }
    knot_x_.back() = kx.back();
    knot_y_.back() = ky.back();
  }
  // The subsample preserves monotonicity (ky is non-decreasing), but
  // duplicate x knots would make interpolation ill-defined; dedupe.
  size_t w = 1;
  for (size_t i = 1; i < knot_x_.size(); ++i) {
    if (knot_x_[i] == knot_x_[w - 1]) {
      knot_y_[w - 1] = std::max(knot_y_[w - 1], knot_y_[i]);
    } else {
      knot_x_[w] = knot_x_[i];
      knot_y_[w] = knot_y_[i];
      ++w;
    }
  }
  knot_x_.resize(w);
  knot_y_.resize(w);
  return Status::OK();
}

}  // namespace li::models
