// String tokenization (§3.5): "we consider an n-length string to be a
// feature vector x in R^n where x_i is the ASCII decimal value ... we will
// set a maximum input length N ... truncate the keys to length N ... for
// strings with length n < N we set x_i = 0 for i > n."

#ifndef LI_MODELS_TOKENIZER_H_
#define LI_MODELS_TOKENIZER_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace li::models {

class StringTokenizer {
 public:
  explicit StringTokenizer(size_t max_len = 20) : max_len_(max_len) {}

  size_t max_len() const { return max_len_; }

  /// Writes the feature vector for `s` into out[0..max_len).
  void Tokenize(std::string_view s, double* out) const {
    const size_t n = std::min(s.size(), max_len_);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<double>(static_cast<unsigned char>(s[i]));
    }
    for (size_t i = n; i < max_len_; ++i) out[i] = 0.0;
  }

  std::vector<double> Tokenize(std::string_view s) const {
    std::vector<double> v(max_len_);
    Tokenize(s, v.data());
    return v;
  }

  /// Tokenizes a whole corpus into one row-major matrix (n x max_len).
  std::vector<double> TokenizeAll(std::span<const std::string> strs) const {
    std::vector<double> m(strs.size() * max_len_);
    for (size_t i = 0; i < strs.size(); ++i) {
      Tokenize(strs[i], &m[i * max_len_]);
    }
    return m;
  }

 private:
  size_t max_len_;
};

}  // namespace li::models

#endif  // LI_MODELS_TOKENIZER_H_
