#include "models/naive_executor.h"

#include <cassert>
#include <stdexcept>

namespace li::models {

namespace {

class MatMulOp : public NaiveOp {
 public:
  std::string name() const override { return "MatMul"; }
  std::shared_ptr<DynTensor> Execute(
      const std::vector<std::shared_ptr<DynTensor>>& inputs) const override {
    const auto& w = *inputs[0];  // [out, in]
    const auto& x = *inputs[1];  // [in]
    if (w.shape.size() != 2 || x.shape.size() != 1 ||
        w.shape[1] != x.shape[0]) {
      throw std::runtime_error("MatMul: shape mismatch");
    }
    auto out = std::make_shared<DynTensor>();
    out->shape = {w.shape[0]};
    out->values.resize(w.shape[0]);
    for (size_t o = 0; o < w.shape[0]; ++o) {
      double acc = 0.0;
      for (size_t i = 0; i < w.shape[1]; ++i) {
        acc += w.values[o * w.shape[1] + i] * x.values[i];
      }
      out->values[o] = acc;
    }
    return out;
  }
};

class AddOp : public NaiveOp {
 public:
  std::string name() const override { return "Add"; }
  std::shared_ptr<DynTensor> Execute(
      const std::vector<std::shared_ptr<DynTensor>>& inputs) const override {
    const auto& a = *inputs[0];
    const auto& b = *inputs[1];
    if (a.shape != b.shape) throw std::runtime_error("Add: shape mismatch");
    auto out = std::make_shared<DynTensor>();
    out->shape = a.shape;
    out->values.resize(a.values.size());
    for (size_t i = 0; i < a.values.size(); ++i) {
      out->values[i] = a.values[i] + b.values[i];
    }
    return out;
  }
};

class ReluOp : public NaiveOp {
 public:
  std::string name() const override { return "Relu"; }
  std::shared_ptr<DynTensor> Execute(
      const std::vector<std::shared_ptr<DynTensor>>& inputs) const override {
    const auto& a = *inputs[0];
    auto out = std::make_shared<DynTensor>();
    out->shape = a.shape;
    out->values.resize(a.values.size());
    for (size_t i = 0; i < a.values.size(); ++i) {
      out->values[i] = a.values[i] > 0.0 ? a.values[i] : 0.0;
    }
    return out;
  }
};

}  // namespace

NaiveGraphExecutor::NaiveGraphExecutor(const NeuralNet& net) : net_(net) {
  // Materialize named weight/bias constants and the named op sequence.
  for (int l = 0; l < net.num_layers(); ++l) {
    const auto layer = net.layer(l);
    const std::string suffix = "_" + std::to_string(l);
    auto w = std::make_shared<DynTensor>();
    w->shape = {static_cast<size_t>(layer.out_dim),
                static_cast<size_t>(layer.in_dim)};
    w->values.assign(layer.weights,
                     layer.weights + layer.out_dim * layer.in_dim);
    auto b = std::make_shared<DynTensor>();
    b->shape = {static_cast<size_t>(layer.out_dim)};
    b->values.assign(layer.biases, layer.biases + layer.out_dim);
    constants_["weights" + suffix] = std::move(w);
    constants_["biases" + suffix] = std::move(b);

    const std::string matmul = "matmul" + suffix;
    registry_[matmul] = std::make_unique<MatMulOp>();
    op_sequence_.push_back(matmul);
    op_inputs_.push_back({"weights" + suffix, ""});
    const std::string add = "add" + suffix;
    registry_[add] = std::make_unique<AddOp>();
    op_sequence_.push_back(add);
    op_inputs_.push_back({"", "biases" + suffix});
    if (layer.relu) {
      const std::string relu = "relu" + suffix;
      registry_[relu] = std::make_unique<ReluOp>();
      op_sequence_.push_back(relu);
      op_inputs_.push_back({""});
    }
  }
}

double NaiveGraphExecutor::Predict(double x) const {
  // Session-run emulation: a feed dict keyed by tensor name, per-op
  // name-resolution through the registry, shape re-validation, and a heap
  // tensor per intermediate result.
  std::map<std::string, std::shared_ptr<DynTensor>> feed;
  {
    auto input = std::make_shared<DynTensor>();
    input->shape = {1};
    input->values = {(x - net_.x_mean(0)) * net_.x_inv_std(0)};
    feed["input"] = std::move(input);
  }

  std::shared_ptr<DynTensor> cursor = feed.at("input");
  std::vector<std::shared_ptr<DynTensor>> inputs;
  for (size_t i = 0; i < op_sequence_.size(); ++i) {
    const auto op_it = registry_.find(op_sequence_[i]);
    if (op_it == registry_.end()) {
      throw std::runtime_error("unknown op: " + op_sequence_[i]);
    }
    inputs.clear();
    for (const std::string& src : op_inputs_[i]) {
      if (src.empty()) {
        inputs.push_back(cursor);
      } else {
        inputs.push_back(constants_.at(src));
      }
    }
    // Shape pre-validation pass (frameworks re-check shapes per run).
    size_t checked = 0;
    for (const auto& t : inputs) checked += t->NumElements();
    if (checked == 0) throw std::runtime_error("empty tensor");
    cursor = op_it->second->Execute(inputs);
  }
  return cursor->values[0] * net_.y_scale() + net_.y_mean();
}

}  // namespace li::models
