// Monotonic CDF models (§3.4): "one option is to force our RMI model to be
// monotonic, as has been studied in machine learning [41, 71]."
//
// IsotonicModel fits a non-decreasing step/interpolated function via the
// Pool-Adjacent-Violators Algorithm (PAVA) over (key, position) pairs and
// predicts by linear interpolation between pooled knots. A monotonic model
// guarantees the §3.4 min/max-error bounds hold for *absent* lookup keys
// too, eliminating the boundary fix-up entirely.

#ifndef LI_MODELS_ISOTONIC_H_
#define LI_MODELS_ISOTONIC_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace li::models {

class IsotonicModel {
 public:
  IsotonicModel() = default;

  /// Fits a non-decreasing function to (xs, ys); xs must be sorted
  /// ascending. `max_knots` caps memory by subsampling the pooled solution.
  Status Fit(std::span<const double> xs, std::span<const double> ys,
             size_t max_knots = 256);

  /// Piecewise-linear interpolation between pooled knots; clamps outside
  /// the fitted range. Non-decreasing by construction.
  double Predict(double x) const {
    if (knot_x_.empty()) return 0.0;
    if (x <= knot_x_.front()) return knot_y_.front();
    if (x >= knot_x_.back()) return knot_y_.back();
    // Binary search for the segment.
    size_t lo = 0, hi = knot_x_.size() - 1;
    while (hi - lo > 1) {
      const size_t mid = (lo + hi) / 2;
      if (knot_x_[mid] <= x) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double x0 = knot_x_[lo], x1 = knot_x_[hi];
    const double y0 = knot_y_[lo], y1 = knot_y_[hi];
    const double frac = x1 > x0 ? (x - x0) / (x1 - x0) : 0.0;
    return y0 + frac * (y1 - y0);
  }

  size_t SizeBytes() const {
    return (knot_x_.size() + knot_y_.size()) * sizeof(double);
  }
  size_t num_knots() const { return knot_x_.size(); }
  static const char* Name() { return "isotonic"; }

 private:
  std::vector<double> knot_x_, knot_y_;
};

}  // namespace li::models

#endif  // LI_MODELS_ISOTONIC_H_
