// Linear model over feature vectors: w . x + b. The second-stage model for
// string RMIs (§3.5: "Linear models w*x+b scale the number of
// multiplications and additions linearly with the input length N").
// Fit is closed-form ridge least squares via the shared Cholesky kernel.

#ifndef LI_MODELS_VEC_LINEAR_H_
#define LI_MODELS_VEC_LINEAR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace li::models {

class VecLinearModel {
 public:
  VecLinearModel() = default;

  /// `features`: row-major n x dim matrix.
  Status Fit(std::span<const double> features, size_t n, size_t dim,
             std::span<const double> ys);

  double PredictVec(std::span<const double> x) const {
    double acc = bias_;
    const size_t d = w_.size();
    for (size_t i = 0; i < d; ++i) acc += w_[i] * x[i];
    return acc;
  }

  size_t SizeBytes() const { return (w_.size() + 1) * sizeof(double); }
  size_t dim() const { return w_.size(); }
  static const char* Name() { return "vec-linear"; }

 private:
  std::vector<double> w_;
  double bias_ = 0.0;
};

}  // namespace li::models

#endif  // LI_MODELS_VEC_LINEAR_H_
