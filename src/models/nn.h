// Fully-connected ReLU networks with zero to two hidden layers — the model
// family the paper evaluates ("simple neural nets with zero to two
// fully-connected hidden layers and ReLU activation functions and a layer
// width of up to 32 neurons", §3.3).
//
// Training uses minibatch Adam on normalized inputs/targets (§3.6: "simple
// NNs can be efficiently trained using stochastic gradient descent and can
// converge in less than one to a few passes over the randomized data").
// Inference is a compiled fixed-bound loop over flat weight arrays,
// standing in for LIF's code generation (§3.1): no framework, no
// allocation, no virtual dispatch.
//
// The same class handles scalar keys (input_dim == 1) and tokenized string
// keys (input_dim == N, §3.5).

#ifndef LI_MODELS_NN_H_
#define LI_MODELS_NN_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace li::models {

struct NNConfig {
  int input_dim = 1;
  std::vector<int> hidden;       // 0, 1 or 2 entries; width <= kMaxWidth
  int epochs = 30;
  double learning_rate = 1e-3;
  size_t batch_size = 64;
  size_t max_train_samples = 100'000;  // top models converge on a subsample
  uint64_t seed = 1;
};

class NeuralNet {
 public:
  static constexpr int kMaxWidth = 64;
  static constexpr int kMaxLayers = 3;  // up to 2 hidden + output

  NeuralNet() = default;

  /// Trains on scalar inputs. `xs` and `ys` must have equal length.
  Status Fit(std::span<const double> xs, std::span<const double> ys,
             const NNConfig& config);

  /// Trains on row-major feature matrix (n rows x input_dim columns).
  Status FitVec(std::span<const double> features, size_t n,
                std::span<const double> ys, const NNConfig& config);

  /// Scalar fast path (input_dim must be 1).
  double Predict(double x) const {
    const double xn = (x - x_mean_[0]) * x_inv_std_[0];
    return Forward(&xn) * y_scale_ + y_mean_;
  }

  /// Vector input (length input_dim).
  double PredictVec(std::span<const double> x) const;

  size_t SizeBytes() const;
  int input_dim() const { return config_.input_dim; }
  int num_layers() const { return num_layers_; }
  const NNConfig& config() const { return config_; }

  /// Approximate multiply-add count per inference (for the §2.1 cost model).
  size_t OpsPerInference() const;

  static const char* Name() { return "nn"; }

  // Exposed for the naive-executor benchmark (§2.3): raw layer weights.
  struct LayerView {
    const double* weights;  // out_dim x in_dim, row-major
    const double* biases;   // out_dim
    int in_dim, out_dim;
    bool relu;
  };
  LayerView layer(int l) const;
  double y_scale() const { return y_scale_; }
  double y_mean() const { return y_mean_; }
  double x_mean(int d) const { return x_mean_[d]; }
  double x_inv_std(int d) const { return x_inv_std_[d]; }

 private:
  /// Raw forward pass on normalized input; returns normalized output.
  double Forward(const double* xn) const;

  Status Init(const NNConfig& config);
  Status TrainAdam(std::span<const double> features, size_t n,
                   std::span<const double> ys);

  NNConfig config_;
  int num_layers_ = 0;
  int dims_[kMaxLayers + 1] = {0};       // dims_[0] = input_dim, ... 1
  std::vector<double> w_[kMaxLayers];    // per-layer out x in
  std::vector<double> b_[kMaxLayers];    // per-layer out
  std::vector<double> x_mean_, x_inv_std_;
  double y_mean_ = 0.0, y_scale_ = 1.0;
};

}  // namespace li::models

#endif  // LI_MODELS_NN_H_
