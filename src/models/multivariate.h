// Multivariate linear regression over engineered key features — the top
// model of the Figure-5 "learned index without overhead": "simple automatic
// feature engineering ... key, log(key), key^2, etc. Multivariate linear
// regression is an interesting alternative to NN as it is particularly well
// suited to fit nonlinear patterns with only a few operations" (§3.7.1).
//
// Fit is closed form via the normal equations (Cholesky); feature subsets
// are selected automatically by validation MSE.

#ifndef LI_MODELS_MULTIVARIATE_H_
#define LI_MODELS_MULTIVARIATE_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace li::models {

/// Bitmask of candidate features; bias is always included.
enum Feature : uint32_t {
  kFeatX = 1u << 0,      // x
  kFeatLog = 1u << 1,    // log(1 + x)
  kFeatSq = 1u << 2,     // x^2
  kFeatSqrt = 1u << 3,   // sqrt(x)
  kFeatCube = 1u << 4,   // x^3
  kFeatLogSq = 1u << 5,  // log(1 + x)^2
};

class MultivariateModel {
 public:
  static constexpr uint32_t kDefaultFeatures =
      kFeatX | kFeatLog | kFeatSq | kFeatSqrt;
  static constexpr size_t kMaxFeatures = 7;  // bias + 6 candidates

  MultivariateModel() = default;

  /// Fits with an explicit feature set.
  Status Fit(std::span<const double> xs, std::span<const double> ys,
             uint32_t features = kDefaultFeatures);

  /// Tries each single feature plus the default combo and a few curated
  /// subsets; keeps the one with lowest training MSE ("automatically
  /// creating and selecting features", §3.7.1).
  Status FitAutoSelect(std::span<const double> xs, std::span<const double> ys);

  double Predict(double x) const {
    // Feature evaluation is branch-light: weights for unused features are
    // zero, so we evaluate only the features in the fitted mask.
    double acc = w_[0];
    uint32_t m = features_;
    int wi = 1;
    const double xn = (x - x_shift_) * x_scale_;
    while (m) {
      const uint32_t f = m & (~m + 1);  // lowest set bit
      acc += w_[wi++] * Eval(f, xn);
      m ^= f;
    }
    return acc;
  }

  size_t SizeBytes() const {
    return sizeof(double) * (1 + num_features_) + sizeof(uint32_t) +
           2 * sizeof(double);
  }

  uint32_t features() const { return features_; }
  static const char* Name() { return "multivariate"; }

 private:
  static double Eval(uint32_t feature, double xn) {
    switch (feature) {
      case kFeatX: return xn;
      case kFeatLog: return std::log1p(std::fabs(xn));
      case kFeatSq: return xn * xn;
      case kFeatSqrt: return std::sqrt(std::fabs(xn));
      case kFeatCube: return xn * xn * xn;
      case kFeatLogSq: {
        const double l = std::log1p(std::fabs(xn));
        return l * l;
      }
      default: return 0.0;
    }
  }

  uint32_t features_ = 0;
  int num_features_ = 0;
  double x_shift_ = 0.0;
  double x_scale_ = 1.0;
  std::array<double, kMaxFeatures> w_{};  // w_[0] is the bias
};

}  // namespace li::models

#endif  // LI_MODELS_MULTIVARIATE_H_
