// A deliberately framework-like neural-net executor used to reproduce the
// §2.3 naive-learned-index experiment: the same 2x32 ReLU network that the
// compiled kernel runs in tens of nanoseconds is executed here through a
// dynamic op graph with heap-allocated tensors, shape checking, virtual
// dispatch and per-call graph traversal — the class of overhead Tensorflow
// (plus a Python front end) imposes on tiny models ("Tensorflow was
// designed to efficiently run larger models, not small models, and thus has
// a significant invocation overhead").

#ifndef LI_MODELS_NAIVE_EXECUTOR_H_
#define LI_MODELS_NAIVE_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "models/nn.h"

namespace li::models {

/// Dynamically shaped, heap-backed tensor (mimics framework tensors).
struct DynTensor {
  std::vector<size_t> shape;
  std::vector<double> values;

  size_t NumElements() const {
    size_t n = 1;
    for (const size_t d : shape) n *= d;
    return n;
  }
};

/// Graph node with virtual Execute — each op validates shapes, allocates
/// its output and is dispatched through a registry lookup per call.
class NaiveOp {
 public:
  virtual ~NaiveOp() = default;
  virtual std::string name() const = 0;
  virtual std::shared_ptr<DynTensor> Execute(
      const std::vector<std::shared_ptr<DynTensor>>& inputs) const = 0;
};

/// Interprets a NeuralNet as an op graph (MatMul -> Add -> ReLU per layer)
/// and evaluates it one op at a time, exactly like a framework session run.
class NaiveGraphExecutor {
 public:
  explicit NaiveGraphExecutor(const NeuralNet& net);

  /// Runs the full graph for one scalar input; returns the denormalized
  /// position estimate (same semantics as NeuralNet::Predict). Each call
  /// builds a feed dict, resolves every op and input by name, validates
  /// shapes, and heap-allocates every intermediate — the per-invocation
  /// overhead §2.3 blames for the naive index's 80 µs predictions.
  double Predict(double x) const;

  size_t num_ops() const { return op_sequence_.size(); }

 private:
  const NeuralNet& net_;
  // Graph structure mimicking a framework session: ops are dispatched per
  // call through a string-keyed registry (the name-resolution cost real
  // frameworks pay), consuming named constant tensors.
  std::map<std::string, std::unique_ptr<NaiveOp>> registry_;
  std::vector<std::string> op_sequence_;          // execution order
  std::map<std::string, std::shared_ptr<DynTensor>> constants_;
  std::vector<std::vector<std::string>> op_inputs_;  // "" => previous output
};

}  // namespace li::models

#endif  // LI_MODELS_NAIVE_EXECUTOR_H_
