// Learned Bloom filter (§5.1.1): a probabilistic classifier f plus an
// overflow Bloom filter over f's false negatives.
//
//  * Threshold tau is tuned on a held-out non-key validation set so that
//    FPR_tau = p*/2; the overflow filter is sized for FPR_B = p*/2, giving
//    an overall FPR_O = FPR_tau + (1 - FPR_tau) FPR_B <= p* [53].
//  * The no-false-negative guarantee is structural: every key with
//    f(x) < tau is inserted into the overflow filter, so
//    MightContain(key) is always true for keys.
//
// Templated on the classifier (GruClassifier, NgramLogistic, ...), which
// must provide `double Predict(std::string_view)` and `SizeBytes()`. The
// classifier is held by pointer and must outlive the filter. Satisfies
// the index::ExistenceIndex contract.

#ifndef LI_BLOOM_LEARNED_BLOOM_H_
#define LI_BLOOM_LEARNED_BLOOM_H_

#include <algorithm>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/status.h"
#include "index/existence_index.h"

namespace li::bloom {

template <typename Classifier>
class LearnedBloomFilter {
 public:
  LearnedBloomFilter() = default;

  /// `classifier` must already be trained. `keys` are inserted;
  /// `validation_non_keys` calibrate tau for the target overall FPR.
  Status Build(const Classifier* classifier,
               std::span<const std::string> keys,
               std::span<const std::string> validation_non_keys,
               double target_fpr) {
    if (classifier == nullptr) {
      return Status::InvalidArgument("LearnedBloomFilter: null classifier");
    }
    if (target_fpr <= 0.0 || target_fpr >= 1.0) {
      return Status::InvalidArgument("LearnedBloomFilter: bad target FPR");
    }
    if (validation_non_keys.empty()) {
      return Status::InvalidArgument("LearnedBloomFilter: need validation set");
    }
    classifier_ = classifier;
    target_fpr_ = target_fpr;

    // ---- Tune tau: FPR_tau = p*/2 on the validation non-keys ----
    std::vector<double> scores;
    scores.reserve(validation_non_keys.size());
    for (const auto& s : validation_non_keys) {
      scores.push_back(classifier_->Predict(s));
    }
    std::sort(scores.begin(), scores.end());
    const double half = target_fpr / 2.0;
    // tau = (1 - p*/2) quantile of non-key scores; scores >= tau pass.
    const size_t cut = static_cast<size_t>(
        std::min<double>(static_cast<double>(scores.size() - 1),
                         std::ceil((1.0 - half) *
                                   static_cast<double>(scores.size()))));
    tau_ = std::min(scores[cut] + 1e-12, 1.0 + 1e-12);

    // ---- Overflow filter over the classifier's false negatives ----
    std::vector<const std::string*> false_negatives;
    for (const auto& k : keys) {
      if (classifier_->Predict(k) < tau_) false_negatives.push_back(&k);
    }
    fnr_ = keys.empty() ? 0.0
                        : static_cast<double>(false_negatives.size()) /
                              static_cast<double>(keys.size());
    if (!false_negatives.empty()) {
      LI_RETURN_IF_ERROR(overflow_.Init(false_negatives.size(), half));
      for (const auto* k : false_negatives) overflow_.Add(*k);
      has_overflow_ = true;
    } else {
      has_overflow_ = false;
    }
    return Status::OK();
  }

  /// Figure-9(c): model first; below-threshold queries fall through to the
  /// overflow filter. Never false-negative for inserted keys.
  bool MightContain(std::string_view key) const {
    if (classifier_ == nullptr) return false;  // never built: empty set
    if (classifier_->Predict(key) >= tau_) return true;
    return has_overflow_ && overflow_.MightContain(key);
  }

  /// Measured FPR over a test set of non-keys (the contract-wide metric).
  double MeasuredFpr(std::span<const std::string> test_non_keys) const {
    return index::MeasureFprOver(*this, test_non_keys);
  }

  double tau() const { return tau_; }
  double fnr() const { return fnr_; }
  size_t SizeBytes() const {
    return classifier_->SizeBytes() +
           (has_overflow_ ? overflow_.SizeBytes() : 0);
  }
  size_t OverflowBytes() const {
    return has_overflow_ ? overflow_.SizeBytes() : 0;
  }

  // ---- Persistence (docs/PERSISTENCE.md) ----
  // Persists the calibration scalars and the overflow bitmap; the
  // classifier itself is held by external pointer (see the class comment)
  // and is re-supplied at OpenSnapshot — the trained model's weights are
  // the caller's to persist, the filter snapshot pins everything derived
  // from them (tau, FNR, and the exact false-negative bitmap).

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    SnapshotMeta meta;
    meta.target_fpr = target_fpr_;
    meta.tau = tau_;
    meta.fnr = fnr_;
    meta.has_overflow = has_overflow_ ? 1 : 0;
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "meta", meta));
    if (has_overflow_) {
      LI_RETURN_IF_ERROR(overflow_.WriteSections(writer, prefix + "of/"));
    }
    return Status::OK();
  }

  /// `classifier` must be the same trained model the snapshot was built
  /// with: tau and the overflow bitmap are calibrated against its scores.
  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix,
                      const Classifier* classifier) {
    if (classifier == nullptr) {
      return Status::InvalidArgument("LearnedBloomFilter: null classifier");
    }
    SnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "meta", &meta));
    if (meta.has_overflow != 0) {
      LI_RETURN_IF_ERROR(overflow_.LoadSections(reader, prefix + "of/"));
    } else {
      overflow_ = BloomFilter();
    }
    classifier_ = classifier;
    target_fpr_ = meta.target_fpr;
    tau_ = meta.tau;
    fnr_ = meta.fnr;
    has_overflow_ = meta.has_overflow != 0;
    return Status::OK();
  }

  Status WriteSnapshot(const std::string& path) const {
    snapshot::SnapshotWriter writer;
    LI_RETURN_IF_ERROR(WriteSections(writer, ""));
    return writer.WriteFile(path);
  }

  static Result<LearnedBloomFilter> OpenSnapshot(
      const std::string& path, const Classifier* classifier,
      const snapshot::OpenOptions& opts = {}) {
    auto reader = snapshot::SnapshotReader::Open(path, opts);
    if (!reader.ok()) return reader.status();
    LearnedBloomFilter out;
    Status st = out.LoadSections(reader.value(), "", classifier);
    if (!st.ok()) return st;
    return out;
  }

 private:
  struct SnapshotMeta {
    double target_fpr = 0.01;
    double tau = 0.5;
    double fnr = 0.0;
    uint64_t has_overflow = 0;
  };

  const Classifier* classifier_ = nullptr;
  double target_fpr_ = 0.01;
  double tau_ = 0.5;
  double fnr_ = 0.0;
  bool has_overflow_ = false;
  BloomFilter overflow_;
};

}  // namespace li::bloom

#endif  // LI_BLOOM_LEARNED_BLOOM_H_
