// Standard Bloom filter (§5): m-bit array, k hash functions via
// Kirsch-Mitzenmacher double hashing. Sized from (n, target FPR) with the
// textbook optimum m = -n ln p / (ln 2)^2, k = (m/n) ln 2 — the formula
// behind the paper's "2.04 MB for 1% FPR over 1.7M keys" baseline.
// Satisfies the index::ExistenceIndex contract (MightContain / SizeBytes /
// MeasuredFpr), the baseline every learned variant is compared against.

#ifndef LI_BLOOM_BLOOM_FILTER_H_
#define LI_BLOOM_BLOOM_FILTER_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "index/existence_index.h"
#include "index/snapshottable.h"
#include "snapshot/arena.h"
#include "snapshot/snapshot.h"

namespace li::bloom {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `target_fpr`.
  Status Init(size_t expected_keys, double target_fpr) {
    if (expected_keys == 0 || target_fpr <= 0.0 || target_fpr >= 1.0) {
      return Status::InvalidArgument("BloomFilter: bad parameters");
    }
    const double ln2 = std::log(2.0);
    const double m = -static_cast<double>(expected_keys) *
                     std::log(target_fpr) / (ln2 * ln2);
    num_bits_ = std::max<uint64_t>(64, static_cast<uint64_t>(std::ceil(m)));
    num_hashes_ = std::max(
        1, static_cast<int>(std::round(
               m / static_cast<double>(expected_keys) * ln2)));
    bits_.assign((num_bits_ + 63) / 64, 0);
    return Status::OK();
  }

  /// Explicit geometry (used by the sandwiched model-hash construction).
  Status InitExplicit(uint64_t num_bits, int num_hashes) {
    if (num_bits == 0 || num_hashes < 1) {
      return Status::InvalidArgument("BloomFilter: bad explicit geometry");
    }
    num_bits_ = num_bits;
    num_hashes_ = num_hashes;
    bits_.assign((num_bits_ + 63) / 64, 0);
    return Status::OK();
  }

  void Add(uint64_t key) { AddHash(Murmur3Fmix64(key)); }
  void Add(std::string_view key) {
    AddHash(MurmurHash64(key.data(), key.size()));
  }

  bool MightContain(uint64_t key) const {
    return TestHash(Murmur3Fmix64(key));
  }
  bool MightContain(std::string_view key) const {
    return TestHash(MurmurHash64(key.data(), key.size()));
  }

  /// Measured FPR over a test set of non-keys (the contract-wide metric).
  double MeasuredFpr(std::span<const std::string> test_non_keys) const {
    return index::MeasureFprOver(*this, test_non_keys);
  }

  uint64_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t); }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // Sections: meta {num_bits, num_hashes} + the bit words verbatim. An
  // opened filter serves MightContain straight out of the mapping; Add on
  // a mapped filter is a programming error (asserted in debug builds).

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    const SnapshotMeta meta{num_bits_, static_cast<int64_t>(num_hashes_)};
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "meta", meta));
    return writer.AddArray(prefix + "bits", bits_.span(),
                           snapshot::SectionKind::kBitmap);
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    SnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "meta", &meta));
    if (meta.num_bits == 0 || meta.num_hashes < 1) {
      return Status::InvalidArgument("BloomFilter snapshot meta is corrupt");
    }
    auto bits = reader.GetArray<uint64_t>(prefix + "bits");
    if (!bits.ok()) return bits.status();
    if (bits.value().size() != (meta.num_bits + 63) / 64) {
      return Status::InvalidArgument(
          "BloomFilter snapshot bit section size disagrees with meta");
    }
    num_bits_ = meta.num_bits;
    num_hashes_ = static_cast<int>(meta.num_hashes);
    bits_ = snapshot::FlatVec<uint64_t>::View(bits.value(),
                                              reader.keepalive());
    return Status::OK();
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<BloomFilter> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<BloomFilter>(path, opts);
  }

 private:
  struct SnapshotMeta {
    uint64_t num_bits = 0;
    int64_t num_hashes = 0;
  };
  void AddHash(uint64_t h) {
    const uint64_t h1 = h;
    const uint64_t h2 = (h >> 33) | (h << 31) | 1;  // odd second hash
    for (int i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
      bits_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }
  }
  bool TestHash(uint64_t h) const {
    // A never-built filter is the empty set. Without this guard the
    // probe loop below runs zero iterations (num_hashes_ == 0) and
    // falls through to `true` — "contains everything".
    if (num_bits_ == 0) return false;
    const uint64_t h1 = h;
    const uint64_t h2 = (h >> 33) | (h << 31) | 1;
    for (int i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % num_bits_;
      if (!(bits_[bit >> 6] & (uint64_t{1} << (bit & 63)))) return false;
    }
    return true;
  }

  uint64_t num_bits_ = 0;
  int num_hashes_ = 0;
  /// Owned when built (Add mutates), a zero-copy mapped view when opened
  /// from a snapshot (read-only).
  snapshot::FlatVec<uint64_t> bits_;
};

}  // namespace li::bloom

#endif  // LI_BLOOM_BLOOM_FILTER_H_
