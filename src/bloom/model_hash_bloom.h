// Bloom filter with model-hashes (§5.1.2 + Appendix E): the classifier
// output is discretized into an m-bit bitmap, M[floor(m * f(x))] = 1 for
// every key — f is trained to push keys toward high outputs and non-keys
// toward low outputs, so the bitmap acts as a hash function with many
// key/key collisions and few key/non-key collisions.
//
// A query is predicted to be a key iff its bitmap bit is set AND a backup
// Bloom filter (over all keys) agrees; the overall FPR is
// FPR_m x FPR_B, so the backup is sized for FPR_B = p* / FPR_m
// (Appendix E). No false negatives: every key sets its bit and is in the
// backup filter. Satisfies the index::ExistenceIndex contract; the
// classifier is held by pointer and must outlive the filter.

#ifndef LI_BLOOM_MODEL_HASH_BLOOM_H_
#define LI_BLOOM_MODEL_HASH_BLOOM_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/status.h"
#include "index/existence_index.h"

namespace li::bloom {

template <typename Classifier>
class ModelHashBloomFilter {
 public:
  ModelHashBloomFilter() = default;

  /// `bitmap_bits` is the Appendix-E m parameter (e.g. 1,000,000).
  Status Build(const Classifier* classifier,
               std::span<const std::string> keys,
               std::span<const std::string> validation_non_keys,
               double target_fpr, uint64_t bitmap_bits) {
    if (classifier == nullptr || bitmap_bits == 0) {
      return Status::InvalidArgument("ModelHashBloom: bad arguments");
    }
    if (target_fpr <= 0.0 || target_fpr >= 1.0) {
      return Status::InvalidArgument("ModelHashBloom: bad target FPR");
    }
    classifier_ = classifier;
    m_ = bitmap_bits;
    bitmap_.assign((m_ + 63) / 64, 0);

    for (const auto& k : keys) {
      const uint64_t bit = Discretize(classifier_->Predict(k));
      bitmap_[bit >> 6] |= uint64_t{1} << (bit & 63);
    }

    // Measure FPR_m on the validation non-keys.
    size_t hits = 0;
    for (const auto& s : validation_non_keys) {
      hits += TestBit(Discretize(classifier_->Predict(s)));
    }
    fpr_m_ = validation_non_keys.empty()
                 ? 1.0
                 : static_cast<double>(hits) /
                       static_cast<double>(validation_non_keys.size());

    // Backup filter sized for FPR_B = p* / FPR_m (capped to a valid FPR).
    const double fpr_b =
        std::clamp(fpr_m_ > 0.0 ? target_fpr / fpr_m_ : 0.5, 1e-6, 0.5);
    LI_RETURN_IF_ERROR(backup_.Init(std::max<size_t>(1, keys.size()), fpr_b));
    for (const auto& k : keys) backup_.Add(k);
    return Status::OK();
  }

  bool MightContain(std::string_view key) const {
    if (classifier_ == nullptr) return false;  // never built: empty set
    if (!TestBit(Discretize(classifier_->Predict(key)))) return false;
    return backup_.MightContain(key);
  }

  /// Measured FPR over a test set of non-keys (the contract-wide metric).
  double MeasuredFpr(std::span<const std::string> test_non_keys) const {
    return index::MeasureFprOver(*this, test_non_keys);
  }

  double fpr_m() const { return fpr_m_; }
  uint64_t bitmap_bits() const { return m_; }
  size_t SizeBytes() const {
    return classifier_->SizeBytes() + bitmap_.size() * sizeof(uint64_t) +
           backup_.SizeBytes();
  }

 private:
  uint64_t Discretize(double p) const {
    const double clamped = std::clamp(p, 0.0, 1.0);
    const uint64_t bit = static_cast<uint64_t>(
        clamped * static_cast<double>(m_));
    return std::min(bit, m_ - 1);
  }
  bool TestBit(uint64_t bit) const {
    return (bitmap_[bit >> 6] >> (bit & 63)) & 1;
  }

  const Classifier* classifier_ = nullptr;
  uint64_t m_ = 0;
  double fpr_m_ = 1.0;
  std::vector<uint64_t> bitmap_;
  BloomFilter backup_;
};

}  // namespace li::bloom

#endif  // LI_BLOOM_MODEL_HASH_BLOOM_H_
