// DeltaRangeIndex<Base> — the writable-index subsystem's core (Appendix
// D.1): an immutable learned (or classic) base index over a sorted key
// array, plus a DeltaBuffer of unmerged writes, behind the library-wide
// WritableRangeIndex contract.
//
//  * Reads serve from base + delta: Lookup stays exact lower_bound over
//    the live key set (base rank + delta rank adjustment, two binary
//    searches over the delta runs); Contains checks the delta first
//    (newest write wins) and falls back to the base; Scan merges the two
//    sorted views, applying tombstones.
//  * Writes go to the delta only. Each write resolves the key's base
//    membership once (one base lookup) and freezes it in the entry, which
//    is what keeps the rank arithmetic exact until the next merge.
//  * Merge() folds the delta into a fresh sorted array and retrains the
//    base — through the base's Rebuild() retrain-reuse hook when it has
//    one (the RMI reuses its stored config and leaf-table allocation),
//    otherwise via a transactional Build of a fresh base. Pluggable
//    policies (merge_policy.h) decide when writes trigger this
//    automatically.
//
// Base can be *any* RangeIndex with uint64/double/string keys — the same
// genericity seam the rest of the library builds on — so a learned RMI, a
// read-only B-Tree or a lookup table all become writable by wrapping.

#ifndef LI_DYNAMIC_DELTA_RANGE_INDEX_H_
#define LI_DYNAMIC_DELTA_RANGE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "dynamic/delta_buffer.h"
#include "dynamic/merge_policy.h"
#include "index/approx.h"
#include "index/range_index.h"
#include "index/snapshottable.h"
#include "index/writable_range_index.h"
#include "snapshot/snapshot.h"

namespace li::dynamic {

/// True when the base ships a retrain hook that reuses its stored config
/// (and internal allocations) instead of a from-scratch Build.
template <typename B>
concept HasRebuild =
    requires(B& base, std::span<const typename B::key_type> keys) {
      { base.Rebuild(keys) } -> std::same_as<Status>;
    };

template <index::RangeIndex Base>
class DeltaRangeIndex {
 public:
  using key_type = typename Base::key_type;
  using base_config_type = typename Base::config_type;

  struct Config {
    base_config_type base{};
    MergePolicy policy{};
    /// Active-run capacity of the delta buffer: larger absorbs write
    /// bursts cheaper, smaller keeps consolidation latency lower.
    size_t active_cap = 256;
  };
  using config_type = Config;

  DeltaRangeIndex() = default;
  // The base holds a span into base_keys_; copying would alias the source's
  // storage, moving keeps the heap buffer (and the span) stable.
  DeltaRangeIndex(const DeltaRangeIndex&) = delete;
  DeltaRangeIndex& operator=(const DeltaRangeIndex&) = delete;
  DeltaRangeIndex(DeltaRangeIndex&&) noexcept = default;
  DeltaRangeIndex& operator=(DeltaRangeIndex&&) noexcept = default;

  /// Builds the immutable base over `keys` (sorted, strictly increasing;
  /// copied — unlike raw bases, the wrapper owns its data because merges
  /// replace it) and starts with an empty delta.
  Status Build(std::span<const key_type> keys, const Config& config) {
    config_ = config;
    base_keys_.assign(keys.begin(), keys.end());
    delta_ = DeltaBuffer<key_type>(config.active_cap);
    stats_ = {};
    writes_since_merge_ = 0;
    reads_since_merge_ = 0;
    return base_.Build(std::span<const key_type>(base_keys_), config.base);
  }

  // ---- RangeIndex: reads over the live key set ----

  /// lower_bound rank over the live keys: #live keys < `key`.
  size_t Lookup(const key_type& key) const {
    ++stats_.lookups;
    ++reads_since_merge_;
    return RawLookup(key);
  }

  size_t LowerBound(const key_type& key) const { return Lookup(key); }

  index::Approx ApproxPos(const key_type& key) const {
    return index::Approx::Exact(RawLookup(key), size());
  }

  /// Batched rank lookups: routes the base part through the base's native
  /// batch path (the RMI software pipeline), then applies the delta rank
  /// adjustment per key — so with an empty delta this runs at base batch
  /// throughput.
  void LookupBatch(std::span<const key_type> keys,
                   std::span<size_t> out) const {
    index::LookupBatch(base_, keys, out);
    const size_t n = std::min(keys.size(), out.size());
    stats_.lookups += n;
    reads_since_merge_ += n;
    if (delta_.empty()) return;
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<size_t>(static_cast<int64_t>(out[i]) +
                                   delta_.RankAdjustBelow(keys[i]));
    }
  }

  /// Base overhead + delta memory. The delta counts in full: it is the
  /// price of writability, unlike the base data array which stays
  /// excluded per the library's index-overhead accounting.
  size_t SizeBytes() const { return base_.SizeBytes() + delta_.SizeBytes(); }

  // ---- WritableRangeIndex: the write path ----

  /// Buffers an insert; true iff `key` was not live before.
  bool Insert(const key_type& key) {
    ++stats_.inserts;
    ++writes_since_merge_;
    const auto prev = delta_.Find(key);
    const bool in_base = prev ? prev->in_base : BaseContains(key);
    const bool was_live = prev ? !prev->tombstone : in_base;
    delta_.Upsert(key, /*tombstone=*/false, in_base);
    MaybeMerge();
    return !was_live;
  }

  /// Buffers an erase (tombstone); true iff `key` was live before.
  bool Erase(const key_type& key) {
    ++stats_.erases;
    ++writes_since_merge_;
    const auto prev = delta_.Find(key);
    const bool in_base = prev ? prev->in_base : BaseContains(key);
    const bool was_live = prev ? !prev->tombstone : in_base;
    delta_.Upsert(key, /*tombstone=*/true, in_base);
    MaybeMerge();
    return was_live;
  }

  /// Membership over the live key set; the delta answers first.
  bool Contains(const key_type& key) const {
    ++stats_.lookups;
    ++stats_.contains;
    ++reads_since_merge_;
    if (const auto e = delta_.Find(key)) {
      ++stats_.delta_hits;
      return !e->tombstone;
    }
    return BaseContains(key);
  }

  /// Up to `limit` live keys >= `from`, ascending: a three-way merge of
  /// the base array and the two delta runs, tombstones dropped, delta
  /// entries shadowing equal base keys.
  std::vector<key_type> Scan(const key_type& from, size_t limit) const {
    std::vector<key_type> out;
    if (limit == 0) return out;
    // The number of live keys >= `from` is known exactly up front from
    // the rank prefix sums the delta maintains at consolidation time, so
    // the result buffer is reserved once — Scan performs exactly one
    // allocation (the returned vector), never a growth-doubling chain.
    size_t bi = base_.Lookup(from);
    const size_t start_rank = static_cast<size_t>(
        static_cast<int64_t>(bi) +
        (delta_.empty() ? 0 : delta_.RankAdjustBelow(from)));
    out.reserve(std::min(limit, size() - start_rank));
    // Streamed merge: base keys are drained up to each visited delta
    // entry, and the visit stops as soon as the window fills — O(limit)
    // work, not O(delta).
    delta_.VisitFrom(from, [&](const DeltaEntry<key_type>& e) {
      while (bi < base_keys_.size() && base_keys_[bi] < e.key &&
             out.size() < limit) {
        out.push_back(base_keys_[bi++]);
      }
      if (out.size() >= limit) return false;
      if (bi < base_keys_.size() && base_keys_[bi] == e.key) ++bi;
      if (!e.tombstone) out.push_back(e.key);
      return out.size() < limit;
    });
    while (bi < base_keys_.size() && out.size() < limit) {
      out.push_back(base_keys_[bi++]);
    }
    return out;
  }

  /// Live key count: base keys + net delta contribution.
  size_t size() const {
    return static_cast<size_t>(static_cast<int64_t>(base_keys_.size()) +
                               delta_.LiveAdjustTotal());
  }

  /// The Appendix-D.1 cycle: fold the delta into a fresh sorted base
  /// array, retrain the base, clear the delta. On failure the previous
  /// base and delta are left intact (the index stays consistent).
  Status Merge() {
    if (delta_.empty()) return Status::OK();
    Timer timer;
    std::vector<key_type> merged = MergedLiveKeys();
    if constexpr (HasRebuild<Base>) {
      // In-place retrain. On failure, restore the previous key array and
      // retrain over it (that configuration built successfully before),
      // so the index stays consistent — delta intact, in_base flags still
      // valid against the restored base.
      std::swap(base_keys_, merged);
      const Status s = base_.Rebuild(std::span<const key_type>(base_keys_));
      if (!s.ok()) {
        std::swap(base_keys_, merged);
        (void)base_.Rebuild(std::span<const key_type>(base_keys_));
        return s;
      }
    } else {
      Base fresh;
      LI_RETURN_IF_ERROR(
          fresh.Build(std::span<const key_type>(merged), config_.base));
      base_keys_ = std::move(merged);  // heap buffer (and span) unmoved
      base_ = std::move(fresh);
    }
    stats_.merged_keys += base_keys_.size();
    ++stats_.merges;
    stats_.last_merge_ns = timer.ElapsedNanos();
    stats_.total_merge_ns += stats_.last_merge_ns;
    delta_.Clear();
    writes_since_merge_ = 0;
    reads_since_merge_ = 0;
    return Status::OK();
  }

  index::WritableIndexStats Stats() const {
    index::WritableIndexStats s = stats_;
    s.delta_entries = delta_.entry_count();
    s.delta_bytes = delta_.SizeBytes();
    s.base_keys = base_keys_.size();
    return s;
  }

  const Base& base() const { return base_; }
  std::span<const key_type> base_keys() const { return base_keys_; }
  size_t delta_entries() const { return delta_.entry_count(); }
  const Config& config() const { return config_; }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // Sections: the owned base key array (persisted once, the base model
  // loads against a span over the reopened copy — no retraining), the
  // base's model-only sections under "<prefix>base/", and the folded
  // delta as parallel key/flag arrays. The key array is *copied* on open
  // rather than mapped: merges replace it, so the wrapper stays writable
  // after restart.

  /// Snapshot support needs a flat key type and a base that can persist
  /// its model against a caller-owned key span (the RMI family).
  static constexpr bool kSnapshotCapable =
      std::is_trivially_copyable_v<key_type> &&
      index::DataSpanSnapshottable<Base>;

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    if constexpr (!kSnapshotCapable) {
      return Status::Unimplemented(
          "DeltaRangeIndex snapshots need a flat key type and a "
          "section-snapshottable base");
    } else {
      SnapshotCfg cfg;
      cfg.policy = config_.policy;
      cfg.active_cap = config_.active_cap;
      LI_RETURN_IF_ERROR(writer.AddPod(prefix + "cfg", cfg));
      LI_RETURN_IF_ERROR(
          writer.AddArray(prefix + "keys",
                          std::span<const key_type>(base_keys_),
                          snapshot::SectionKind::kKeys));
      LI_RETURN_IF_ERROR(
          base_.WriteSections(writer, prefix + "base/",
                              /*include_keys=*/false));
      std::vector<key_type> dkeys;
      std::vector<uint8_t> dmeta;
      dkeys.reserve(delta_.entry_count());
      dmeta.reserve(delta_.entry_count());
      delta_.VisitAll([&](const DeltaEntry<key_type>& e) {
        dkeys.push_back(e.key);
        dmeta.push_back(static_cast<uint8_t>((e.tombstone ? 1 : 0) |
                                             (e.in_base ? 2 : 0)));
        return true;
      });
      LI_RETURN_IF_ERROR(
          writer.AddArray(prefix + "dkeys", std::span<const key_type>(dkeys),
                          snapshot::SectionKind::kDelta));
      return writer.AddArray(prefix + "dmeta",
                             std::span<const uint8_t>(dmeta),
                             snapshot::SectionKind::kDelta);
    }
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    if constexpr (!kSnapshotCapable) {
      return Status::Unimplemented(
          "DeltaRangeIndex snapshots need a flat key type and a "
          "section-snapshottable base");
    } else {
      SnapshotCfg cfg;
      LI_RETURN_IF_ERROR(reader.GetPod(prefix + "cfg", &cfg));
      auto keys = reader.GetArray<key_type>(prefix + "keys");
      if (!keys.ok()) return keys.status();
      auto dkeys = reader.GetArray<key_type>(prefix + "dkeys");
      if (!dkeys.ok()) return dkeys.status();
      auto dmeta = reader.GetArray<uint8_t>(prefix + "dmeta");
      if (!dmeta.ok()) return dmeta.status();
      if (dkeys.value().size() != dmeta.value().size()) {
        return Status::InvalidArgument(
            "DeltaRangeIndex snapshot delta arrays disagree in size");
      }
      base_keys_.assign(keys.value().begin(), keys.value().end());
      LI_RETURN_IF_ERROR(
          base_.LoadSections(reader, prefix + "base/",
                             std::span<const key_type>(base_keys_)));
      std::vector<DeltaEntry<key_type>> entries;
      entries.reserve(dkeys.value().size());
      for (size_t i = 0; i < dkeys.value().size(); ++i) {
        const uint8_t m = dmeta.value()[i];
        if ((m & ~uint8_t{3}) != 0) {
          return Status::InvalidArgument(
              "DeltaRangeIndex snapshot delta flags are corrupt");
        }
        entries.push_back(DeltaEntry<key_type>{dkeys.value()[i],
                                               (m & 1) != 0, (m & 2) != 0});
      }
      config_.policy = cfg.policy;
      config_.active_cap = std::max<size_t>(cfg.active_cap, 2);
      if constexpr (requires {
                      {
                        base_.config()
                      } -> std::convertible_to<base_config_type>;
                    }) {
        config_.base = base_.config();
      }
      delta_ = DeltaBuffer<key_type>::FromSortedEntries(
          std::span<const DeltaEntry<key_type>>(entries), config_.active_cap);
      stats_ = {};
      writes_since_merge_ = 0;
      reads_since_merge_ = 0;
      last_auto_merge_status_ = Status::OK();
      return Status::OK();
    }
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<DeltaRangeIndex> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<DeltaRangeIndex>(path, opts);
  }

  /// Outcome of the most recent policy-triggered merge. Insert/Erase keep
  /// their boolean liveness contract, so a failed auto-merge (possible
  /// only with bases whose Build/Rebuild can fail) surfaces here; the
  /// index itself stays consistent either way (Merge is transactional).
  const Status& last_auto_merge_status() const {
    return last_auto_merge_status_;
  }

 private:
  struct SnapshotCfg {
    MergePolicy policy{};
    uint64_t active_cap = 256;
  };
  static_assert(std::is_trivially_copyable_v<MergePolicy>,
                "MergePolicy is persisted verbatim in snapshots");

  bool BaseContains(const key_type& key) const {
    return index::ContainsViaLookup(
        base_, std::span<const key_type>(base_keys_), key);
  }

  size_t RawLookup(const key_type& key) const {
    const int64_t rank = static_cast<int64_t>(base_.Lookup(key)) +
                         (delta_.empty() ? 0 : delta_.RankAdjustBelow(key));
    return static_cast<size_t>(rank);
  }

  void MaybeMerge() {
    if (ShouldMerge(config_.policy, delta_.entry_count(), base_keys_.size(),
                    writes_since_merge_, reads_since_merge_)) {
      last_auto_merge_status_ = Merge();
    }
  }

  /// The merged live key set: base keys + delta inserts - tombstones.
  std::vector<key_type> MergedLiveKeys() const {
    return MergeLiveKeys(std::span<const key_type>(base_keys_), delta_);
  }

  Config config_{};
  std::vector<key_type> base_keys_;  // the immutable base's data, owned
  Base base_{};
  DeltaBuffer<key_type> delta_{};
  mutable index::WritableIndexStats stats_{};
  mutable uint64_t writes_since_merge_ = 0;
  mutable uint64_t reads_since_merge_ = 0;
  Status last_auto_merge_status_{};
};

}  // namespace li::dynamic

#endif  // LI_DYNAMIC_DELTA_RANGE_INDEX_H_
